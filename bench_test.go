package fepia_test

// The benchmark harness: one testing.B target per reproduction experiment
// (E1–E8 of DESIGN.md — every figure/derivation of the paper), plus
// micro-benchmarks of the radius computations themselves. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the full experiment in quick mode and
// fails the run if any reproduction check regresses, so `-bench` doubles as
// a reproduction gate.

import (
	"context"
	"fmt"
	"testing"

	"fepia"
	"fepia/internal/exper"
	"fepia/internal/scenario"
	"fepia/internal/sched"
	"fepia/internal/stats"
	"fepia/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := exper.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	cfg := exper.Config{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			for _, c := range res.Checks {
				if !c.Pass {
					b.Fatalf("%s reproduction check failed: %s (%s)", id, c.Name, c.Detail)
				}
			}
		}
	}
}

// BenchmarkFig1BoundaryCurve regenerates Figure 1 (E1): boundary tracing,
// nearest boundary point, robustness radius.
func BenchmarkFig1BoundaryCurve(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkSingleParamRadius verifies the Section 3.1 Step-1 closed form
// (E2) across randomized sweeps.
func BenchmarkSingleParamRadius(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkSensitivityDegeneracy reproduces the 1/sqrt(n) degeneracy (E3).
func BenchmarkSensitivityDegeneracy(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkNormalizedRadius verifies the Section 3.2 closed form and its
// input dependence (E4).
func BenchmarkNormalizedRadius(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkOperatingPointCheck validates the recipe's soundness (E5).
func BenchmarkOperatingPointCheck(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkHiPerDMixed runs the mixed-kind HiPer-D analysis with DES
// cross-validation (E6).
func BenchmarkHiPerDMixed(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkHeuristicRanking ranks allocations by makespan vs robustness (E7).
func BenchmarkHeuristicRanking(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkWeightingAblation contrasts the two weighting schemes on system
// pairs (E8).
func BenchmarkWeightingAblation(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkThreeKindAnalysis adds the sensor load as a third perturbation
// kind with bilinear utilization features (E9).
func BenchmarkThreeKindAnalysis(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkNormAblation compares l1/l2/l-inf robustness radii (E10).
func BenchmarkNormAblation(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkMonteCarloVsRadius contrasts worst-case and probabilistic
// robustness (E11).
func BenchmarkMonteCarloVsRadius(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkFailureRecovery injects machine failures and compares recovery
// strategies (E12).
func BenchmarkFailureRecovery(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkMixedMakespan runs the two-kind staging+execution makespan
// analysis with DES cross-validation (E13).
func BenchmarkMixedMakespan(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkHeterogeneitySweep sweeps requirement tightness and workload
// heterogeneity (E14).
func BenchmarkHeterogeneitySweep(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkQueueingTier validates the numeric tier against M/M/1 closed
// forms and runs the capacity-planning sweep (E15).
func BenchmarkQueueingTier(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkClusterScatterGather pushes the same request stream through a
// bare daemon and through 1- and 3-worker cluster coordinators (E16).
func BenchmarkClusterScatterGather(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkStoreWarmStart serves a scenario stream cold, restarts over the
// persistent store, and times the warm-started restart against a storeless
// one (E17).
func BenchmarkStoreWarmStart(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkHardwareNumericTier runs the accelerated numeric tier's
// equivalence-and-throughput experiment: sharded cache, warm start, and
// k-probe kernels against the plain scalar search (E18).
func BenchmarkHardwareNumericTier(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkAllocationSearch runs the robustness-aware allocation search
// experiment: annealing/GA searches scored through the batch engine
// against the min-min baseline, with backend bit-identity checks (E19).
func BenchmarkAllocationSearch(b *testing.B) { benchExperiment(b, "E19") }

// --- micro-benchmarks of the core engine -----------------------------------

// BenchmarkRadiusAnalytic measures the exact hyperplane tier at growing
// dimension.
func BenchmarkRadiusAnalytic(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			k := make(fepia.Vector, n)
			orig := make(fepia.Vector, n)
			src := stats.NewSource(1)
			for i := range k {
				k[i] = src.Uniform(0.1, 10)
				orig[i] = src.Uniform(0.1, 10)
			}
			a, err := fepia.LinearOneElemAnalysis(k, orig, 1.3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRadiusNumeric measures the numeric level-set tier on a nonlinear
// impact function.
func BenchmarkRadiusNumeric(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			params := make([]fepia.Perturbation, n)
			for j := range params {
				params[j] = fepia.Perturbation{Name: fmt.Sprintf("p%d", j), Orig: fepia.Vector{1}}
			}
			a, err := fepia.NewAnalysis([]fepia.Feature{{
				Name:   "product",
				Bounds: fepia.MaxOnly(4),
				Impact: func(vs []fepia.Vector) float64 {
					p := 1.0
					for _, v := range vs {
						p *= v[0]
					}
					return p
				},
			}}, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSensitivityScales measures the sensitivity weighting, which
// recomputes every single-parameter radius.
func BenchmarkSensitivityScales(b *testing.B) {
	k := make(fepia.Vector, 32)
	orig := make(fepia.Vector, 32)
	src := stats.NewSource(2)
	for i := range k {
		k[i] = src.Uniform(0.1, 10)
		orig[i] = src.Uniform(0.1, 10)
	}
	a, err := fepia.LinearOneElemAnalysis(k, orig, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.CombinedRadius(0, fepia.Sensitivity{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHiPerDSimulation measures the discrete-event simulator on the
// default scenario.
func BenchmarkHiPerDSimulation(b *testing.B) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	e := sys.OrigExecTimes()
	m := sys.OrigMsgSizes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Simulate(e, m, 100, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRadiusQuadratic measures the exact ellipsoid tier at growing
// dimension (compare against BenchmarkRadiusNumeric: the analytic solve is
// orders of magnitude cheaper than the level-set search it replaces).
func BenchmarkRadiusQuadratic(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := stats.NewSource(3)
			av := make(fepia.Vector, n)
			cv := make(fepia.Vector, n)
			orig := make(fepia.Vector, n)
			for i := range av {
				av[i] = src.Uniform(0.5, 2)
				cv[i] = src.Uniform(-1, 1)
				orig[i] = cv[i] + src.Uniform(0.1, 0.5)
			}
			quad := &fepia.QuadImpact{A: []fepia.Vector{av}, C: []fepia.Vector{cv}}
			bound := quad.Eval([]fepia.Vector{orig}) + 10
			a, err := fepia.NewAnalysis([]fepia.Feature{{
				Name: "q", Bounds: fepia.MaxOnly(bound), Quad: quad,
			}}, []fepia.Perturbation{{Name: "x", Orig: orig}})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.RadiusSingle(0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarlo measures the probabilistic estimator.
func BenchmarkMonteCarlo(b *testing.B) {
	a, err := fepia.LinearOneElemAnalysis(fepia.Vector{2, 3, 5}, fepia.Vector{1, 2, 4}, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.MonteCarlo(fepia.MCOptions{
			Model: fepia.MCUniformBall, Spread: 0.2, Samples: 1000, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealMapper measures the simulated-annealing robust mapper.
func BenchmarkAnnealMapper(b *testing.B) {
	m, err := workload.Makespan(workload.DefaultMakespan(), stats.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	h := sched.Anneal(sched.AnnealOptions{Tau: 1.3, Steps: 2000, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTolerable measures the operating-point recipe end to end.
func BenchmarkTolerable(b *testing.B) {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	point := []fepia.Vector{{1.1, 2.1}, {4.2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Tolerable(point, fepia.Normalized{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCertifier measures the precompiled admission-control check
// against the uncompiled Tolerable path on the HiPer-D analysis.
func BenchmarkCertifier(b *testing.B) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	a, err := sys.Analysis()
	if err != nil {
		b.Fatal(err)
	}
	cert, err := a.NewCertifier(fepia.Normalized{})
	if err != nil {
		b.Fatal(err)
	}
	vals := []fepia.Vector{sys.OrigExecTimes().Scale(1.02), sys.OrigMsgSizes().Scale(1.02)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cert.Check(vals); err != nil {
			b.Fatal(err)
		}
	}
}

// expensiveQuadAnalysis builds a numeric-tier analysis whose impact function
// costs ~150 float iterations per call — an iterative solve standing in for
// an expensive model evaluation (DES run, queueing recursion, …). This is
// the regime the impact cache targets; see docs/performance.md.
func expensiveQuadAnalysis(b *testing.B) *fepia.Analysis {
	b.Helper()
	a, err := fepia.NewAnalysis([]fepia.Feature{{
		Name:   "sumsq",
		Bounds: fepia.MaxOnly(4),
		Impact: func(vs []fepia.Vector) float64 {
			s := vs[0][0]*vs[0][0] + vs[0][1]*vs[0][1]
			z := 1.0 + s
			for k := 0; k < 150; k++ {
				z = 0.5 * (z + s/z) // Newton sqrt, converges to sqrt(s)
			}
			return z * z // = s, the long way around
		},
	}}, []fepia.Perturbation{{Name: "x", Orig: fepia.Vector{1, 1}}})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkRadiusNumericCached contrasts the numeric level-set tier with and
// without the memoizing impact cache on the expensive impact function. The
// search is deterministic, so a repeated radius query revisits the same
// quantized points and the cached run serves nearly every evaluation from
// memory — this is the repeated-query regime of service loops and batch
// sweeps (a one-shot query sees no benefit).
func BenchmarkRadiusNumericCached(b *testing.B) {
	for _, cached := range []bool{false, true} {
		name := "uncached"
		if cached {
			name = "cached"
		}
		b.Run(name, func(b *testing.B) {
			a := expensiveQuadAnalysis(b)
			if cached {
				a.EnableImpactCache(0)
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err) // warm outside the timer
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRobustnessBatch contrasts a serial loop over weightings with the
// batch engine plus cache evaluating the same weightings together. The
// weightings share the analysis's native boundary, so the cached batch
// answers most of the later weightings' evaluations from the first one's
// stores even on a single core.
func BenchmarkRobustnessBatch(b *testing.B) {
	ws := []fepia.Weighting{
		fepia.Normalized{},
		fepia.Custom{Alphas: fepia.Vector{0.5}},
		fepia.Custom{Alphas: fepia.Vector{2}},
	}
	b.Run("serial-uncached", func(b *testing.B) {
		a := expensiveQuadAnalysis(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range ws {
				if _, err := a.RobustnessWith(context.Background(), w, fepia.EvalOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-cached", func(b *testing.B) {
		a := expensiveQuadAnalysis(b)
		a.EnableImpactCache(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, errs := a.RobustnessBatchCtx(context.Background(), ws, fepia.EvalOptions{})
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// numericKernelAnalysis builds a numeric-tier analysis through the scenario
// layer, so its features carry the vectorized ImpactK kernels the k-probe
// path batches through.
func numericKernelAnalysis(b *testing.B) *fepia.Analysis {
	b.Helper()
	mx := 60.0
	doc := scenario.AnalysisDoc{
		Params: []scenario.AnalysisParam{
			{Name: "load", Orig: []float64{1.2, 0.8}},
			{Name: "rate", Orig: []float64{0.9, 1.1, 1.3}},
		},
		Features: []scenario.AnalysisFeature{{
			Name: "prod", Impact: scenario.ImpactMultiplicative, Max: &mx,
			Scale: 1.5, Pows: [][]float64{{0.7, 1.1}, {0.5, 0.9, 0.6}},
		}},
	}
	a, err := doc.Build()
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkWarmStartSearch contrasts repeated numeric boundary searches cold
// and warm-started: the warm state replays memoized probe lines and
// revalidated brackets, skipping most of the scan and solve while staying
// bit-identical (the warm sub-benchmark measures the repeated-search regime
// of service loops; the first, recording search costs the same as cold).
func BenchmarkWarmStartSearch(b *testing.B) {
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			a := numericKernelAnalysis(b)
			if warm {
				a.EnableWarmStart()
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err) // record outside the timer
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedCache measures concurrent hit-path throughput of the
// sharded impact cache: every goroutine re-runs the same (deterministic)
// boundary search, so after the priming run nearly all evaluations are
// cache reads. One shard forces every reader through one generation
// structure; the sharded variants spread them (reads are lock-free in both,
// the spread decides contention on the shard mutexes taken by writes).
func BenchmarkShardedCache(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			a := expensiveQuadAnalysis(b)
			a.EnableImpactCacheWith(fepia.CacheOptions{Shards: shards})
			if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
				b.Fatal(err) // prime outside the timer
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := a.CombinedRadius(0, fepia.Normalized{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkKProbeKernel contrasts the scalar numeric search with the k-probe
// path, which evaluates whole probe blocks per call through the vectorized
// family kernels (internal/vec). Radii are bit-identical; the win is
// per-call overhead amortization on kernel-backed features.
func BenchmarkKProbeKernel(b *testing.B) {
	for _, k := range []int{0, 8} {
		name := "scalar"
		if k > 0 {
			name = fmt.Sprintf("kprobe=%d", k)
		}
		b.Run(name, func(b *testing.B) {
			a := numericKernelAnalysis(b)
			opt := fepia.EvalOptions{KProbe: k}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.CombinedRadiusWith(context.Background(), 0, fepia.Normalized{}, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRobustnessConcurrent measures the worker-pool robustness
// evaluation on an analysis dominated by numeric-tier features. The
// speedup tracks available cores (workers beyond GOMAXPROCS add nothing;
// on a single-core host the two sub-benchmarks coincide).
func BenchmarkRobustnessConcurrent(b *testing.B) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	a, err := sys.AnalysisWithLoad()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.RobustnessConcurrent(fepia.Normalized{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDeltaUpdate contrasts a cold full evaluation of the three-kind
// HiPer-D analysis (E9's instance, 47 features) with the incremental
// re-evaluation behind /v1/watch updates: re-search only a dirty window of
// n/8 features and splice the ancestor's radii for the rest
// (Analysis.RobustnessDelta). Results are bit-identical by the min-fold
// argument; the dirty window rotates with the iteration counter so the
// reported time averages over every feature's cost instead of a lucky
// cheap subset. E20 is the reproduction-checked form of this comparison.
func BenchmarkDeltaUpdate(b *testing.B) {
	sys, err := workload.HiPerD(workload.DefaultHiPerD(), stats.NewSource(1))
	if err != nil {
		b.Fatal(err)
	}
	a, err := sys.AnalysisWithLoad()
	if err != nil {
		b.Fatal(err)
	}
	n := len(a.Features)
	opt := fepia.EvalOptions{}
	prior, err := a.RobustnessWith(context.Background(), fepia.Normalized{}, opt)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := a.RobustnessWith(context.Background(), fepia.Normalized{}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	k := n / 8
	b.Run(fmt.Sprintf("dirty=%d", k), func(b *testing.B) {
		dirty := make([]int, k)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range dirty {
				dirty[j] = (i*k + j) % n
			}
			if _, err := a.RobustnessDelta(context.Background(), fepia.Normalized{}, opt, prior.PerFeature, dirty); err != nil {
				b.Fatal(err)
			}
		}
	})
}
