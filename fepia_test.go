package fepia_test

import (
	"math"
	"testing"

	"fepia"
)

// TestPublicAPIQuickstart exercises the doc-comment example end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	a, err := fepia.NewAnalysis(
		[]fepia.Feature{{
			Name:   "latency",
			Bounds: fepia.MaxOnly(42),
			Linear: &fepia.LinearImpact{Coeffs: []fepia.Vector{{2, 3}, {5}}},
		}},
		[]fepia.Perturbation{
			{Name: "exec-times", Unit: "s", Orig: fepia.Vector{1, 2}},
			{Name: "msg-lengths", Unit: "bytes", Orig: fepia.Vector{4}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Per-kind radii (Eq. 1).
	r0, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 14 / math.Sqrt(13); math.Abs(r0.Value-want) > 1e-12 {
		t.Errorf("exec-time radius = %v, want %v", r0.Value, want)
	}
	// Combined metric (Eq. 2, normalized).
	rho, err := a.Robustness(fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rho.Value > 0) {
		t.Errorf("rho = %v", rho.Value)
	}
	if rho.Weighting != "normalized" {
		t.Errorf("weighting = %q", rho.Weighting)
	}
	// Operating-point recipe.
	ok, err := a.Tolerable([]fepia.Vector{{1.01, 2.01}, {4.01}}, fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("slightly perturbed point must be tolerable")
	}
}

func TestPublicBounds(t *testing.T) {
	if b := fepia.MaxOnly(5); !b.Contains(4) || b.Contains(6) {
		t.Error("MaxOnly wrong")
	}
	if b := fepia.MinOnly(5); b.Contains(4) || !b.Contains(6) {
		t.Error("MinOnly wrong")
	}
	if b := fepia.Band(1, 2); !b.Contains(1.5) || b.Contains(0) {
		t.Error("Band wrong")
	}
}

func TestPublicPaperFormulas(t *testing.T) {
	k := fepia.Vector{2, 3}
	orig := fepia.Vector{1, 2}
	const beta = 1.5
	a, err := fepia.LinearOneElemAnalysis(k, orig, beta)
	if err != nil {
		t.Fatal(err)
	}
	// Degeneracy.
	rs, err := a.CombinedRadius(0, fepia.Sensitivity{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs.Value-fepia.SensitivityRadiusLinear(2)) > 1e-10 {
		t.Errorf("sensitivity radius %v != 1/sqrt(2)", rs.Value)
	}
	// Normalized closed form.
	rn, err := a.CombinedRadius(0, fepia.Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fepia.NormalizedRadiusLinear(k, orig, beta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rn.Value-want) > 1e-10 {
		t.Errorf("normalized radius %v != %v", rn.Value, want)
	}
	// Single-parameter formula.
	sp, err := fepia.SingleParamRadiusLinear(k, orig, 0, beta)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-r0.Value) > 1e-10 {
		t.Errorf("formula %v vs engine %v", sp, r0.Value)
	}
}

func TestPublicPSpaceRoundTrip(t *testing.T) {
	a, err := fepia.LinearOneElemAnalysis(fepia.Vector{1, 2}, fepia.Vector{3, 4}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	vals := []fepia.Vector{{3.3}, {4.4}}
	p, err := fepia.ToP(a, fepia.Normalized{}, 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := fepia.FromP(a, fepia.Normalized{}, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vals {
		if math.Abs(back[j][0]-vals[j][0]) > 1e-12 {
			t.Errorf("round trip block %d: %v -> %v", j, vals[j], back[j])
		}
	}
	pOrig, err := fepia.POrig(a, fepia.Normalized{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pOrig {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("P^orig = %v, want ones", pOrig)
		}
	}
}

func TestPublicSideConstants(t *testing.T) {
	if fepia.SideMax.String() != "beta-max" || fepia.SideMin.String() != "beta-min" || fepia.SideNone.String() != "none" {
		t.Error("side constants mis-exported")
	}
}
