package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fepia/internal/vec"
)

func TestHyperplaneNearestKnown(t *testing.T) {
	// 3x + 4y = 25 from the origin: distance 5, point (3, 4).
	h := Hyperplane{K: vec.Of(3, 4), B: 25}
	pt, d, err := h.Nearest(vec.Of(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("dist = %v, want 5", d)
	}
	if !pt.EqualApprox(vec.Of(3, 4), 1e-12) {
		t.Errorf("point = %v, want (3,4)", pt)
	}
}

func TestHyperplaneEval(t *testing.T) {
	h := Hyperplane{K: vec.Of(1, 1), B: 2}
	if v := h.Eval(vec.Of(1, 1)); v != 0 {
		t.Errorf("on-plane Eval = %v", v)
	}
	if v := h.Eval(vec.Of(0, 0)); v >= 0 {
		t.Errorf("inside Eval = %v, want negative", v)
	}
}

func TestHyperplaneDegenerate(t *testing.T) {
	h := Hyperplane{K: vec.Of(0, 0), B: 1}
	if _, _, err := h.Nearest(vec.Of(1, 2)); err == nil {
		t.Error("zero normal must error")
	}
}

func TestHyperplaneDimMismatch(t *testing.T) {
	h := Hyperplane{K: vec.Of(1, 2, 3), B: 1}
	if _, _, err := h.Nearest(vec.Of(1, 2)); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestPropHyperplaneNearestIsOnPlaneAndOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		k := make(vec.V, n)
		x0 := make(vec.V, n)
		for i := range k {
			k[i] = rng.NormFloat64()
			x0[i] = rng.NormFloat64() * 5
		}
		if k.Norm2() < 1e-3 {
			return true
		}
		h := Hyperplane{K: k, B: rng.NormFloat64() * 10}
		pt, d, err := h.Nearest(x0)
		if err != nil {
			return false
		}
		// Feasibility.
		if math.Abs(h.Eval(pt)) > 1e-8*(1+math.Abs(h.B)) {
			return false
		}
		// Distance consistency.
		if math.Abs(pt.Dist2(x0)-d) > 1e-9*(1+d) {
			return false
		}
		// Optimality: no random on-plane point may be closer.
		for trial := 0; trial < 10; trial++ {
			y := make(vec.V, n)
			for i := range y {
				y[i] = rng.NormFloat64() * 10
			}
			// Project y onto the plane.
			yp := y.AddScaled((h.B-k.Dot(y))/k.Dot(k), k)
			if yp.Dist2(x0) < d-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEllipsoidNearestSphere(t *testing.T) {
	// Unit-coefficient sphere of radius 5 about the origin, from (3, 0, 0):
	// nearest point (5, 0, 0) at distance 2.
	e := AxisEllipsoid{A: vec.Of(1, 1, 1), C: vec.New(3), R: 25}
	pt, d, err := e.Nearest(vec.Of(3, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-10 {
		t.Errorf("dist = %v, want 2", d)
	}
	if !pt.EqualApprox(vec.Of(5, 0, 0), 1e-8) {
		t.Errorf("point = %v, want (5,0,0)", pt)
	}
}

func TestEllipsoidNearestFromOutside(t *testing.T) {
	e := AxisEllipsoid{A: vec.Of(1, 1), C: vec.New(2), R: 1}
	pt, d, err := e.Nearest(vec.Of(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2) > 1e-10 || !pt.EqualApprox(vec.Of(1, 0), 1e-8) {
		t.Errorf("outside: point %v dist %v, want (1,0) dist 2", pt, d)
	}
}

func TestEllipsoidNearestAtCenter(t *testing.T) {
	// From the center of x²/1 + y²·4 = 4 (semi-axes 2 and 1): nearest
	// surface point is along the short axis, distance 1.
	e := AxisEllipsoid{A: vec.Of(1, 4), C: vec.New(2), R: 4}
	_, d, err := e.Nearest(vec.Of(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-10 {
		t.Errorf("center dist = %v, want semi-minor 1", d)
	}
}

func TestEllipsoidDegenerate(t *testing.T) {
	if _, _, err := (AxisEllipsoid{A: vec.Of(1, -1), C: vec.New(2), R: 1}).Nearest(vec.Of(0, 0)); err == nil {
		t.Error("negative curvature must error")
	}
	if _, _, err := (AxisEllipsoid{A: vec.Of(1, 1), C: vec.New(2), R: 0}).Nearest(vec.Of(0, 0)); err == nil {
		t.Error("zero level must error")
	}
	if _, _, err := (AxisEllipsoid{A: vec.Of(1, 1), C: vec.New(2), R: 1}).Nearest(vec.Of(0, 0, 0)); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestPropEllipsoidFeasibleAndBeatsNumeric(t *testing.T) {
	// The analytic KKT solve must land on the surface and never lose to the
	// generic numeric level-set search by more than tolerance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 2
		a := make(vec.V, n)
		c := make(vec.V, n)
		x0 := make(vec.V, n)
		for i := range a {
			a[i] = 0.5 + rng.Float64()*3
			c[i] = rng.NormFloat64()
			x0[i] = c[i] + rng.NormFloat64()
		}
		e := AxisEllipsoid{A: a, C: c, R: 1 + rng.Float64()*5}
		pt, d, err := e.Nearest(x0)
		if err != nil {
			return false
		}
		if math.Abs(e.Eval(pt)) > 1e-7*(1+e.R) {
			return false
		}
		ls := LevelSet{F: func(x vec.V) float64 { return e.Eval(x) + e.R }, Level: e.R}
		_, dNum, err := ls.Nearest(x0)
		if err != nil {
			return false
		}
		// Analytic must be ≤ numeric (+ tolerance); numeric can only be worse.
		return d <= dNum+1e-4*(1+dNum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLevelSetMatchesHyperplane(t *testing.T) {
	h := Hyperplane{K: vec.Of(2, 5), B: 30}
	ls := LevelSet{F: func(x vec.V) float64 { return h.K.Dot(x) }, Level: h.B}
	x0 := vec.Of(1, 1)
	_, dA, err := h.Nearest(x0)
	if err != nil {
		t.Fatal(err)
	}
	_, dN, err := ls.Nearest(x0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dA-dN) > 1e-5*(1+dA) {
		t.Errorf("analytic %v vs numeric %v", dA, dN)
	}
}

func TestTraceCurve2DHyperbola(t *testing.T) {
	// x·y = 4 over x ∈ [1, 4]: y = 4/x.
	pts, err := TraceCurve2D(func(x, y float64) float64 { return x * y }, 4, 1, 4, TraceOptions{Samples: 50, YMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 40 {
		t.Fatalf("only %d curve points found", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Y-4/p.X) > 1e-6 {
			t.Errorf("curve point (%v, %v) off y=4/x", p.X, p.Y)
		}
	}
}

func TestTraceCurve2DNoCrossing(t *testing.T) {
	if _, err := TraceCurve2D(func(x, y float64) float64 { return 0 }, 5, 0, 1, TraceOptions{Samples: 8, YMax: 10}); err == nil {
		t.Error("no crossings must error")
	}
}

func TestTraceCurve2DEmptyRange(t *testing.T) {
	if _, err := TraceCurve2D(func(x, y float64) float64 { return x + y }, 1, 2, 2, TraceOptions{}); err == nil {
		t.Error("empty x-range must error")
	}
}

func TestNearestOnPolyline(t *testing.T) {
	// Segment from (0,0) to (10,0); query (5, 3) → nearest (5, 0), dist 3.
	pts := []CurvePoint{{0, 0}, {10, 0}}
	near, d := NearestOnPolyline(pts, vec.Of(5, 3))
	if math.Abs(d-3) > 1e-12 || math.Abs(near.X-5) > 1e-12 {
		t.Errorf("nearest = %+v dist %v", near, d)
	}
	// Query beyond the endpoint clamps to it.
	near, d = NearestOnPolyline(pts, vec.Of(12, 0))
	if math.Abs(d-2) > 1e-12 || near.X != 10 {
		t.Errorf("clamped nearest = %+v dist %v", near, d)
	}
}

func TestNearestOnPolylineEmpty(t *testing.T) {
	if _, d := NearestOnPolyline(nil, vec.Of(0, 0)); !math.IsInf(d, 1) {
		t.Error("empty polyline must report +Inf")
	}
}

func TestTraceThenNearestMatchesAnalytic(t *testing.T) {
	// For x·y = 4 from (1, 1) the true nearest boundary point is (2, 2) at
	// distance √2. The traced polyline must agree to grid resolution.
	pts, err := TraceCurve2D(func(x, y float64) float64 { return x * y }, 4, 0.5, 6, TraceOptions{Samples: 400, YMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	_, d := NearestOnPolyline(pts, vec.Of(1, 1))
	if math.Abs(d-math.Sqrt2) > 1e-3 {
		t.Errorf("polyline dist = %v, want √2", d)
	}
}
