// Package geom models constraint boundaries — the level sets
// {π : f(π) = β} that separate robust from non-robust operation in the FePIA
// analysis — and provides exact nearest-point computations for the shapes
// that admit closed forms (hyperplanes, axis-aligned ellipsoids). The generic
// numeric fallback lives in internal/optimize; internal/core picks the
// cheapest applicable tier.
package geom

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// Boundary is a constraint surface with a nearest-point query. Nearest
// returns the boundary point closest (Euclidean) to x0 and its distance —
// the robustness radius contribution of this surface.
type Boundary interface {
	// Nearest returns the closest boundary point to x0 and its distance.
	Nearest(x0 vec.V) (vec.V, float64, error)
	// Eval returns f(x) − level: negative inside / below the surface,
	// positive beyond it (orientation is surface-specific but consistent).
	Eval(x vec.V) float64
}

// ErrDegenerate is returned for boundaries with no valid geometry (e.g. a
// hyperplane with a zero normal).
var ErrDegenerate = errors.New("geom: degenerate boundary")

// Hyperplane is the boundary {x : K·x = B}. Linear impact functions — the
// case the paper analyzes in closed form — produce exactly this shape.
type Hyperplane struct {
	K vec.V   // normal coefficients
	B float64 // offset
}

// Eval returns K·x − B.
func (h Hyperplane) Eval(x vec.V) float64 { return h.K.Dot(x) - h.B }

// Nearest projects x0 orthogonally onto the hyperplane:
//
//	x* = x0 + (B − K·x0)/‖K‖² · K,  distance |K·x0 − B|/‖K‖₂.
//
// This is the paper's Equation 4 specialized to the plane Σ aᵢxᵢ = b.
func (h Hyperplane) Nearest(x0 vec.V) (vec.V, float64, error) {
	if len(h.K) != len(x0) {
		return nil, 0, fmt.Errorf("geom: hyperplane dim %d vs point dim %d: %w", len(h.K), len(x0), vec.ErrDimMismatch)
	}
	n2 := h.K.Dot(h.K)
	if n2 == 0 {
		return nil, 0, fmt.Errorf("%w: zero normal", ErrDegenerate)
	}
	t := (h.B - h.K.Dot(x0)) / n2
	pt := x0.AddScaled(t, h.K)
	return pt, math.Abs(t) * math.Sqrt(n2), nil
}

// AxisEllipsoid is the boundary {x : Σ aᵢ·(xᵢ − cᵢ)² = r} with all aᵢ > 0.
// Quadratic impact functions (e.g. energy ∝ frequency², load-dependent
// queueing approximations) produce this shape.
type AxisEllipsoid struct {
	A vec.V   // positive curvature coefficients
	C vec.V   // center
	R float64 // level (must be > 0 for a non-empty surface)
}

// Eval returns Σ aᵢ(xᵢ−cᵢ)² − r.
func (e AxisEllipsoid) Eval(x vec.V) float64 {
	var s float64
	for i := range e.A {
		d := x[i] - e.C[i]
		s += e.A[i] * d * d
	}
	return s - e.R
}

// Nearest computes the closest point on the ellipsoid by solving the KKT
// system with a single Lagrange multiplier λ:
//
//	xᵢ(λ) = cᵢ + (x0ᵢ − cᵢ)/(1 + λ·aᵢ),  find λ so that x(λ) is on the surface.
//
// The multiplier equation is monotone on the relevant interval, so a
// bracketed Brent solve is exact to tolerance. Points at the center (where
// every direction is equidistant) take the cheapest axis.
func (e AxisEllipsoid) Nearest(x0 vec.V) (vec.V, float64, error) {
	n := len(e.A)
	if len(x0) != n || len(e.C) != n {
		return nil, 0, fmt.Errorf("geom: ellipsoid dims A=%d C=%d x0=%d: %w", n, len(e.C), len(x0), vec.ErrDimMismatch)
	}
	if e.R <= 0 {
		return nil, 0, fmt.Errorf("%w: ellipsoid level %g ≤ 0", ErrDegenerate, e.R)
	}
	for i, a := range e.A {
		if a <= 0 {
			return nil, 0, fmt.Errorf("%w: curvature A[%d]=%g ≤ 0", ErrDegenerate, i, a)
		}
	}
	d := x0.Sub(e.C)
	if d.Norm2() == 0 {
		// Center: nearest surface point lies along the axis with the largest
		// curvature-to-distance payoff, i.e. smallest semi-axis sqrt(r/aᵢ).
		best := 0
		for i := 1; i < n; i++ {
			if e.A[i] > e.A[best] {
				best = i
			}
		}
		pt := e.C.Clone()
		semi := math.Sqrt(e.R / e.A[best])
		pt[best] += semi
		return pt, semi, nil
	}

	phi := func(lambda float64) float64 {
		var s float64
		for i := 0; i < n; i++ {
			den := 1 + lambda*e.A[i]
			xi := d[i] / den
			s += e.A[i] * xi * xi
		}
		return s - e.R
	}
	// λ = 0 gives φ = Eval(x0) + r − r = Σa d² − r. Inside (φ(0) < 0) the
	// multiplier is negative; outside it is positive. Bracket accordingly,
	// keeping 1 + λaᵢ > 0 ⇒ λ > −1/max(aᵢ).
	maxA := e.A.Max()
	lo, hi := 0.0, 0.0
	if phi(0) > 0 {
		hi = 1.0
		for phi(hi) > 0 {
			hi *= 2
			if hi > 1e18 {
				return nil, 0, fmt.Errorf("%w: multiplier search diverged", ErrDegenerate)
			}
		}
	} else {
		floor := -1/maxA + 1e-15
		lo = -1 / (2 * maxA)
		for phi(lo) < 0 {
			lo = (lo + floor) / 2
			if lo <= floor+1e-18 {
				return nil, 0, fmt.Errorf("%w: multiplier search hit pole", ErrDegenerate)
			}
		}
		hi = 0
	}
	lambda, err := optimize.Brent(phi, lo, hi, 1e-14)
	if err != nil {
		return nil, 0, fmt.Errorf("geom: ellipsoid multiplier solve: %w", err)
	}
	pt := make(vec.V, n)
	for i := 0; i < n; i++ {
		pt[i] = e.C[i] + d[i]/(1+lambda*e.A[i])
	}
	return pt, pt.Dist2(x0), nil
}

// LevelSet is the generic numeric boundary {x : F(x) = Level}, solved by
// internal/optimize's multi-phase nearest-point search. It is the tier-3
// fallback for impact functions with no closed form.
type LevelSet struct {
	F     func(x vec.V) float64
	Level float64
	Opt   optimize.LevelSetOptions
}

// Eval returns F(x) − Level.
func (l LevelSet) Eval(x vec.V) float64 { return l.F(x) - l.Level }

// Nearest runs the numeric nearest-boundary-point search.
func (l LevelSet) Nearest(x0 vec.V) (vec.V, float64, error) {
	res, err := optimize.NearestOnLevelSet(func(x []float64) float64 {
		return l.F(vec.V(x))
	}, l.Level, x0, l.Opt)
	if err != nil {
		return nil, 0, err
	}
	return vec.V(res.Point), res.Dist, nil
}
