package geom

import (
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// CurvePoint is one sample of a traced 2-D boundary curve.
type CurvePoint struct {
	X, Y float64
}

// TraceOptions configure TraceCurve2D.
type TraceOptions struct {
	// Samples is the number of grid columns to probe. Zero selects 128.
	Samples int
	// YMin/YMax bound the vertical root search. YMax zero selects a span
	// derived from the grid width.
	YMin, YMax float64
	// Tol is the root tolerance. Zero selects 1e-10.
	Tol float64
}

// TraceCurve2D samples the boundary curve {(x, y) : f(x, y) = level} over
// x ∈ [xMin, xMax] by solving for y at each grid column. Columns where the
// curve does not cross the probed y-range are skipped, so the returned
// polyline may have fewer points than Samples. This regenerates the curve of
// the paper's Figure 1: the set of boundary points of a two-element
// perturbation vector.
func TraceCurve2D(f func(x, y float64) float64, level, xMin, xMax float64, opt TraceOptions) ([]CurvePoint, error) {
	if xMax <= xMin {
		return nil, fmt.Errorf("geom: TraceCurve2D range [%g, %g] is empty", xMin, xMax)
	}
	if opt.Samples <= 0 {
		opt.Samples = 128
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	yMin, yMax := opt.YMin, opt.YMax
	if yMax <= yMin {
		span := xMax - xMin
		yMin, yMax = 0, 10*span
	}
	pts := make([]CurvePoint, 0, opt.Samples)
	for i := 0; i < opt.Samples; i++ {
		x := xMin + (xMax-xMin)*float64(i)/float64(opt.Samples-1)
		g := func(y float64) float64 { return f(x, y) - level }
		a, b, ok := scanBracket(g, yMin, yMax, 64)
		if !ok {
			continue
		}
		y, err := optimize.Brent(g, a, b, opt.Tol)
		if err != nil {
			continue
		}
		pts = append(pts, CurvePoint{X: x, Y: y})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("geom: TraceCurve2D found no boundary crossings for level %g", level)
	}
	return pts, nil
}

// scanBracket scans [lo, hi] in steps looking for a sign change of g.
func scanBracket(g optimize.Func1, lo, hi float64, steps int) (a, b float64, ok bool) {
	prevX := lo
	prevG := g(lo)
	if prevG == 0 {
		return lo, lo, true
	}
	for i := 1; i <= steps; i++ {
		x := lo + (hi-lo)*float64(i)/float64(steps)
		gx := g(x)
		if gx == 0 || (gx > 0) != (prevG > 0) {
			return prevX, x, true
		}
		prevX, prevG = x, gx
	}
	return 0, 0, false
}

// NearestOnPolyline returns the point on the polyline nearest to p and its
// distance — used to cross-check the analytic robustness radius against the
// traced Figure-1 curve.
func NearestOnPolyline(pts []CurvePoint, p vec.V) (CurvePoint, float64) {
	if len(pts) == 0 {
		return CurvePoint{}, math.Inf(1)
	}
	best := CurvePoint{}
	bestD := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		var cand CurvePoint
		if i+1 < len(pts) {
			cand = closestOnSegment(pts[i], pts[i+1], p)
		} else {
			cand = pts[i]
		}
		d := math.Hypot(cand.X-p[0], cand.Y-p[1])
		if d < bestD {
			best, bestD = cand, d
		}
	}
	return best, bestD
}

// closestOnSegment projects p onto the segment ab, clamped to the endpoints.
func closestOnSegment(a, b CurvePoint, p vec.V) CurvePoint {
	dx, dy := b.X-a.X, b.Y-a.Y
	den := dx*dx + dy*dy
	if den == 0 {
		return a
	}
	t := ((p[0]-a.X)*dx + (p[1]-a.Y)*dy) / den
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return CurvePoint{X: a.X + t*dx, Y: a.Y + t*dy}
}
