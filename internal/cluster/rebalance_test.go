package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fepia/internal/server"
)

// getRing fetches GET /admin/ring.
func getRing(t *testing.T, front string) RingStatus {
	t.Helper()
	resp, err := http.Get(front + "/admin/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /admin/ring = %d", resp.StatusCode)
	}
	var st RingStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRingJoinCutsOverAndStaysExact(t *testing.T) {
	_, coord, front := newFleet(t, 2, nil)
	req := server.EvalRequest{Scenario: testDoc()}
	want := singleNode(t, req)

	before := getRing(t, front.URL)
	if before.Active != 2 || before.Generation != 1 {
		t.Fatalf("initial ring: %+v", before)
	}

	// A third worker joins live.
	s := server.New(workerConfig())
	extra := httptest.NewServer(s.Handler())
	t.Cleanup(extra.Close)
	resp, body := postJSON(t, front.URL+"/admin/ring/join", ringChangeRequest{URL: extra.URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join = %d, body %s", resp.StatusCode, body)
	}
	var ch RingChangeResponse
	if err := json.Unmarshal(body, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Generation != 2 || ch.Ring.Active != 3 || ch.Ring.Joins != 1 {
		t.Fatalf("join response: %+v", ch)
	}
	if got := coord.topology().gen; got != 2 {
		t.Fatalf("topology generation = %d, want 2", got)
	}

	// Joining the same worker again conflicts.
	resp, _ = postJSON(t, front.URL+"/admin/ring/join", ringChangeRequest{URL: extra.URL})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate join = %d, want 409", resp.StatusCode)
	}

	// Results across the re-homed ring stay bit-identical.
	resp, body = postJSON(t, front.URL+"/v1/robustness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-join robustness = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	sameEval(t, got.EvalResponse, want)
}

func TestRingJoinUnreachableWorkerFails(t *testing.T) {
	_, coord, front := newFleet(t, 2, func(c *Config) { c.ProbeTimeout = 50 * time.Millisecond })
	resp, body := postJSON(t, front.URL+"/admin/ring/join", ringChangeRequest{URL: "http://127.0.0.1:1"})
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unreachable join = %d, body %s", resp.StatusCode, body)
	}
	if got := coord.topology(); got.gen != 1 || len(got.active) != 2 {
		t.Fatalf("failed join must not touch the topology: gen=%d active=%d", got.gen, len(got.active))
	}
}

func TestRingLeaveDrainsThenCutsOver(t *testing.T) {
	_, coord, front := newFleet(t, 3, nil)
	victim := coord.topology().members[1].url

	resp, body := postJSON(t, front.URL+"/admin/ring/leave", ringChangeRequest{URL: victim})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave = %d, body %s", resp.StatusCode, body)
	}
	var ch RingChangeResponse
	if err := json.Unmarshal(body, &ch); err != nil {
		t.Fatal(err)
	}
	if !ch.Drained || ch.Ring.Active != 2 || ch.Ring.Leaves != 1 {
		t.Fatalf("leave response: %+v", ch)
	}
	if m := coord.topology().findMember(victim); m != nil {
		t.Fatalf("left worker %s still in the topology", victim)
	}

	// Unknown member 404s; the fleet still serves exact results.
	resp, _ = postJSON(t, front.URL+"/admin/ring/leave", ringChangeRequest{URL: "http://nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("leave unknown = %d, want 404", resp.StatusCode)
	}
	req := server.EvalRequest{Scenario: testDoc()}
	resp, body = postJSON(t, front.URL+"/v1/robustness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-leave robustness = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	sameEval(t, got.EvalResponse, singleNode(t, req))
}

func TestRingLeaveRefusesLastWorker(t *testing.T) {
	_, _, front := newFleet(t, 2, nil)
	st := getRing(t, front.URL)
	resp, _ := postJSON(t, front.URL+"/admin/ring/leave", ringChangeRequest{URL: st.Members[0].URL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first leave = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, front.URL+"/admin/ring/leave", ringChangeRequest{URL: st.Members[1].URL})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("last-worker leave = %d, body %s", resp.StatusCode, body)
	}
}

// TestRebalanceMidTrafficStaysExact hammers the fleet while a worker joins
// and another drains out, checking every response against the single-node
// reference. This is the hedging-safety + cutover-coherence stress.
func TestRebalanceMidTrafficStaysExact(t *testing.T) {
	_, coord, front := newFleet(t, 2, nil)
	req := server.EvalRequest{Scenario: testDoc()}
	want := singleNode(t, req)

	s := server.New(workerConfig())
	extra := httptest.NewServer(s.Handler())
	t.Cleanup(extra.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, body := postJSON(t, front.URL+"/v1/robustness", req)
				if resp.StatusCode != http.StatusOK {
					select {
					case errCh <- &testErr{string(body)}:
					default:
					}
					return
				}
				var got EvalResponse
				if err := json.Unmarshal(body, &got); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				sameEval(t, got.EvalResponse, want)
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := coord.AddWorker(ctx, extra.URL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	victim := coord.topology().members[0].url
	if _, err := coord.RemoveWorker(ctx, victim); err != nil {
		t.Fatalf("leave during traffic: %v", err)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("request failed during rebalance: %v", err)
	default:
	}
	if got := coord.topology(); got.gen < 4 || len(got.active) != 2 {
		t.Fatalf("final topology: gen=%d active=%d", got.gen, len(got.active))
	}
}

type testErr struct{ s string }

func (e *testErr) Error() string { return e.s }
