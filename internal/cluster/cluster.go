// Package cluster implements the fepiad coordinator: an HTTP front-end that
// fans one robustness evaluation out over a fleet of fepiad workers and
// merges the shards back into exactly the response a single node would have
// produced.
//
// The decomposition is exact because the metric is (see internal/core
// shard.go): ρ_μ(Φ, P) = min_i r_μ(φ_i, P) is a min-fold over per-feature
// radii that share no state, and shards evaluate features under their global
// indices, so degraded Monte-Carlo streams and error strings are identical
// to the single-node ones. The coordinator's job is therefore pure
// plumbing — and the plumbing is where the resilience lives:
//
//   - membership (membership.go): per-worker health from active /readyz
//     probes and passive scatter-path observations, with generation-counted
//     up/down/draining transitions;
//   - rebalancing (topology.go): the fleet itself changes live — workers
//     join (probe-then-cutover) and leave (drain-then-cutover) through
//     generation-bumped immutable topology snapshots, re-homing scenario
//     classes without a restart;
//   - placement (hash.go): a consistent-hash ring keyed by scenario class
//     keeps a class's traffic on the worker whose caches are warm for it,
//     with rendezvous-ordered fallback when that worker is out;
//   - scatter (scatter.go): bounded in-flight per worker, per-shard
//     deadlines derived from the request deadline minus a scatter budget,
//     and hedged retries that re-issue a slow shard to the next candidate
//     and take whichever response arrives first — safe because shard
//     results are deterministic;
//   - gather (handlers.go): radii merge back into feature order, the
//     lowest-index error wins (the same tie-break as the single-node
//     engine), and every shard's provenance (worker, attempts, hedged,
//     degraded tier) rides along in the response.
//
// Scattered shards bypass the workers' circuit breakers (/v1/shard evaluates
// exactly what it is told), so the coordinator runs its own per-class
// breaker set with single-node semantics and passes its verdict down as
// ForceDegraded.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"fepia/internal/server"
)

// Config tunes the coordinator. Workers is required; every other zero field
// takes the default noted on it.
type Config struct {
	// Workers are the base URLs of the fepiad worker fleet at startup (e.g.
	// "http://10.0.0.7:8080"). They seed the initial topology; workers may
	// join and leave live afterwards through AddWorker/RemoveWorker (POST
	// /admin/ring/join, /admin/ring/leave).
	Workers []string

	// HealthInterval is the /readyz probe period (default 2s); ProbeTimeout
	// bounds one probe (default 1s).
	HealthInterval time.Duration
	ProbeTimeout   time.Duration

	// MaxInflightPerWorker bounds concurrent requests per worker (default 32).
	MaxInflightPerWorker int

	// ScatterBudget is reserved out of each request's deadline for the
	// scatter/gather overhead: workers get the request deadline minus this
	// (default 250ms).
	ScatterBudget time.Duration

	// DefaultTimeout / MaxTimeout mirror the worker daemon's request
	// deadline policy (defaults 30s / 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// HedgeAfter is how long a shard may run before it is re-issued to the
	// next candidate worker (first response wins). 0 means adaptive: 3× the
	// primary's smoothed latency, clamped to [20ms, 2s].
	HedgeAfter time.Duration

	// MaxAttempts bounds how many workers one shard may be sent to,
	// counting the hedge (default 3).
	MaxAttempts int

	// VNodes is the virtual-node count per worker on the placement ring
	// (default 64).
	VNodes int

	// Breaker* mirror the worker daemon's per-class breaker tuning; the
	// coordinator runs its own breaker set for scattered traffic.
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	BreakerSeed       int64

	// EnableChaos forwards test-only chaos decorations to the workers
	// (which must also run with chaos enabled). Never in production.
	EnableChaos bool

	// StateDir, when set, makes the coordinator durable: ring membership
	// changes are journaled under it (see journal.go) and replayed on the
	// next start — a restarted coordinator serves the admin-configured
	// fleet, not the static Workers list — and search checkpoints are
	// persisted under <StateDir>/searches so POST /v1/search can resume a
	// crashed run bit-identically. Empty disables both (the pre-durability
	// behavior).
	StateDir string

	// MaxWatches bounds the live watches the coordinator keeps in memory
	// (default 64; <0 disables the bound); WatchEventCap bounds each
	// watch's event journal (default 1024; <0 unbounded). See watch.go.
	MaxWatches    int
	WatchEventCap int

	// RecoveryTimeout bounds the post-restart convergence window: a
	// coordinator that recovered its ring from the journal answers /readyz
	// 503 "recovering" until at least one journaled member probes up, or
	// this long has passed (default 15s). Evaluation traffic is still
	// served during recovery — the gate is advisory, for load balancers.
	RecoveryTimeout time.Duration

	// Client is the HTTP client for worker traffic (default: a dedicated
	// client with sane connection pooling and no global timeout — per-shard
	// contexts carry the deadlines).
	Client *http.Client

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.MaxInflightPerWorker <= 0 {
		c.MaxInflightPerWorker = 32
	}
	if c.ScatterBudget <= 0 {
		c.ScatterBudget = 250 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 15 * time.Second
	}
	if c.MaxWatches == 0 {
		c.MaxWatches = 64
	}
	if c.WatchEventCap == 0 {
		c.WatchEventCap = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator is the scatter-gather front-end. Create with New, mount
// Handler on an http.Server, and call Drain (or Close) on shutdown.
type Coordinator struct {
	cfg    Config
	client *http.Client
	brk    *server.Breakers

	// topo is the current fleet snapshot (see topology.go); request paths
	// load it once and never lock. topoMu serializes AddWorker/RemoveWorker.
	topo   atomic.Pointer[topology]
	topoMu sync.Mutex

	// base is cancelled at shutdown: it stops the probe loop and aborts
	// in-flight scatter work at the drain deadline.
	base       context.Context
	baseCancel context.CancelFunc
	probeWG    sync.WaitGroup

	// In-flight accounting for drain, mirroring the worker daemon.
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{}
	idleOnce sync.Once

	start    time.Time
	stats    coordStats
	searches *server.SearchTracker // allocation-search progress for /statz

	// Live watches (watch.go); cwstore is nil without Config.StateDir.
	cwatches *cwatchTracker
	cwstore  *cwatchStore

	// Durability (nil / immediately-converged without Config.StateDir).
	journal     *Journal                // ring membership log, or nil
	ckpts       *server.CheckpointStore // search checkpoints, or nil
	fromJournal bool                    // topology was recovered from the journal
	recovered   atomic.Bool             // /readyz gate: ring converged after restart
}

// coordStats are the coordinator's monotonic counters (see /statz).
type coordStats struct {
	accepted         atomic.Uint64
	rejectedDraining atomic.Uint64
	badRequests      atomic.Uint64
	completed        atomic.Uint64
	failed           atomic.Uint64

	shards       atomic.Uint64 // shard calls launched (incl. retries/hedges)
	hedges       atomic.Uint64 // shards re-issued by the hedge timer
	retries      atomic.Uint64 // shards re-routed after a retryable failure
	workerErrors atomic.Uint64 // transport-level worker failures

	joins  atomic.Uint64 // workers joined via AddWorker
	leaves atomic.Uint64 // workers drained out via RemoveWorker

	// Live-watch lifecycle and dirty-shard scatter outcomes (watch.go).
	watchCreated       atomic.Uint64
	watchResumed       atomic.Uint64
	watchClosed        atomic.Uint64
	watchUpdates       atomic.Uint64
	watchStructural    atomic.Uint64
	watchEvents        atomic.Uint64
	watchLagDrops      atomic.Uint64
	watchShardsSkipped atomic.Uint64 // clean shards never scattered
}

// New builds a Coordinator and starts its health-probe loop. With
// Config.StateDir set, the ring journal is replayed first: a journaled
// membership overrides the static Workers list, and the coordinator answers
// /readyz "recovering" until the recovered ring converges (one member probes
// up) or RecoveryTimeout lapses.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	client := cfg.Client
	if client == nil {
		t := http.DefaultTransport.(*http.Transport).Clone()
		t.MaxIdleConnsPerHost = cfg.MaxInflightPerWorker
		client = &http.Client{Transport: t}
	}
	base, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		client:     client,
		brk:        server.NewBreakers(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerMaxBackoff, cfg.BreakerSeed),
		base:       base,
		baseCancel: cancel,
		idle:       make(chan struct{}),
		start:      time.Now(),
		searches:   server.NewSearchTracker(64),
		cwatches:   newCWatchTracker(),
	}

	// The journaled membership, when present, is the truth: it reflects
	// every join/leave the fleet went through, which the static flag list
	// does not.
	workers := cfg.Workers
	gen := uint64(1)
	if cfg.StateDir != "" {
		j, err := OpenJournal(cfg.StateDir, cfg.Logf)
		if err != nil {
			cfg.Logf("cluster: ring journaling disabled: %v", err)
		} else {
			c.journal = j
			if recovered, jgen, ok := j.Recovered(); ok {
				workers = recovered
				if jgen > gen {
					gen = jgen
				}
				c.fromJournal = true
				cfg.Logf("cluster: recovered %d worker(s) at generation %d from %s", len(recovered), jgen, j.Path())
			}
		}
	}
	if len(workers) == 0 {
		if c.journal != nil {
			_ = c.journal.Close()
		}
		cancel()
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	members := make([]*member, 0, len(workers))
	for idx, url := range workers {
		members = append(members, newMember(url, idx, cfg.MaxInflightPerWorker))
	}
	c.topo.Store(newTopology(gen, members, cfg.VNodes))
	if c.journal != nil && !c.fromJournal {
		if err := c.journal.AppendSnapshot(workers, gen); err != nil {
			cfg.Logf("cluster: journaling initial membership: %v", err)
		}
	}

	if cfg.StateDir != "" {
		ws, err := openCWatchStore(filepath.Join(cfg.StateDir, "watches"))
		if err != nil {
			cfg.Logf("cluster: watch checkpointing disabled: %v", err)
		} else {
			c.cwstore = ws
		}
		ckpts, err := server.OpenCheckpointStore(filepath.Join(cfg.StateDir, "searches"))
		if err != nil {
			cfg.Logf("cluster: search checkpointing disabled: %v", err)
		} else {
			c.ckpts = ckpts
			if recs := ckpts.List(); len(recs) > 0 {
				for _, rec := range recs {
					c.searches.Update(rec.ResumableRow())
				}
				cfg.Logf("cluster: %d resumable search(es) on disk", len(recs))
			}
		}
	}

	if c.fromJournal {
		c.probeWG.Add(1)
		go c.recoveryLoop()
	} else {
		c.recovered.Store(true)
	}
	c.probeWG.Add(1)
	go c.probeLoop()
	return c, nil
}

// recoveryLoop re-probes the journal-recovered membership until at least one
// member answers up (ring converged with reality) or RecoveryTimeout lapses,
// then lifts the /readyz "recovering" gate either way. Recovery never blocks
// evaluation traffic — a stale-but-journaled ring still routes, and the
// scatter path's retries absorb members that stayed dead.
func (c *Coordinator) recoveryLoop() {
	defer c.probeWG.Done()
	deadline := time.NewTimer(c.cfg.RecoveryTimeout)
	defer deadline.Stop()
	for {
		c.probeOnce(c.base)
		for _, m := range c.topology().active {
			if m.up() {
				c.recovered.Store(true)
				c.cfg.Logf("cluster: recovery converged (worker %s is up)", m.url)
				return
			}
		}
		select {
		case <-c.base.Done():
			return
		case <-deadline.C:
			c.recovered.Store(true)
			c.cfg.Logf("cluster: recovery timeout (%s) lapsed with no journaled worker up; serving anyway", c.cfg.RecoveryTimeout)
			return
		case <-time.After(c.cfg.ProbeTimeout / 2):
		}
	}
}

// journalAppend best-effort logs one membership event; a failed append costs
// durability of that event, never the rebalance itself.
func (c *Coordinator) journalAppend(op, url string, gen uint64) {
	if c.journal == nil {
		return
	}
	if err := c.journal.Append(op, url, gen); err != nil {
		c.cfg.Logf("cluster: journaling %s of %s: %v", op, url, err)
	}
}

// Handler mounts the coordinator's routes behind the request-ID middleware.
// The API is the worker daemon's: /v1/robustness and /v1/batch scatter,
// /v1/radius forwards whole to the class's home worker (its sequential
// parameter sweep shares one impact cache, which per-parameter scatter
// would not reproduce bit-identically).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /statz", c.handleStatz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("POST /v1/robustness", c.handleRobustness)
	mux.HandleFunc("POST /v1/radius", c.handleRadius)
	mux.HandleFunc("POST /v1/batch", c.handleBatch)
	mux.HandleFunc("POST /v1/search", c.handleSearch)
	mux.HandleFunc("POST /v1/watch", c.handleWatch)
	mux.HandleFunc("POST /v1/watch/update", c.handleWatchUpdate)
	mux.HandleFunc("POST /v1/watch/close", c.handleWatchClose)
	mux.HandleFunc("GET /admin/ring", c.handleRingStatus)
	mux.HandleFunc("POST /admin/ring/join", c.handleRingJoin)
	mux.HandleFunc("POST /admin/ring/leave", c.handleRingLeave)
	return server.WithRequestID(mux)
}

// enter registers an accepted request for drain accounting (see the worker
// daemon's identical scheme).
func (c *Coordinator) enter() (func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, false
	}
	c.inflight++
	return func() {
		c.mu.Lock()
		c.inflight--
		signal := c.draining && c.inflight == 0
		c.mu.Unlock()
		if signal {
			c.signalIdle()
		}
	}, true
}

func (c *Coordinator) signalIdle() { c.idleOnce.Do(func() { close(c.idle) }) }

// Draining reports whether BeginDrain has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// BeginDrain stops admission: /readyz turns 503 and new evaluation requests
// are rejected. In-flight scatters continue.
func (c *Coordinator) BeginDrain() {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	idle := c.inflight == 0
	c.mu.Unlock()
	if !already {
		c.cfg.Logf("cluster: drain started")
		// End every watch stream; state is checkpointed and clients resume
		// byte-identically after restart (see watch.go).
		c.cwatches.closeAllSubs()
	}
	if idle {
		c.signalIdle()
	}
}

// Drain gracefully shuts down: stop accepting, wait for in-flight requests,
// and cancel them if ctx expires first. The probe loop stops either way.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.BeginDrain()
	var err error
	select {
	case <-c.idle:
		c.cfg.Logf("cluster: drain complete (all in-flight requests finished)")
	case <-ctx.Done():
		c.cfg.Logf("cluster: drain deadline reached, cancelling in-flight work")
		c.baseCancel()
		select {
		case <-c.idle:
			c.cfg.Logf("cluster: drain complete (in-flight work cancelled)")
		case <-time.After(5 * time.Second):
			c.mu.Lock()
			n := c.inflight
			c.mu.Unlock()
			err = fmt.Errorf("cluster: %d request(s) still in flight after drain cancellation", n)
		}
	}
	c.baseCancel()
	c.probeWG.Wait()
	if c.journal != nil {
		_ = c.journal.Close()
	}
	return err
}

// Close releases the coordinator without draining (tests, and the crash
// analog in the recovery differential).
func (c *Coordinator) Close() {
	c.baseCancel()
	c.probeWG.Wait()
	if c.journal != nil {
		_ = c.journal.Close()
	}
}
