package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// TestDoShardEmptyRingFailsCleanly pins the empty-candidate guard: a
// topology snapshot with no ring-eligible member (published while the last
// active worker drained out) must fail the shard, not panic indexing an
// empty candidate list.
func TestDoShardEmptyRingFailsCleanly(t *testing.T) {
	_, coord, _ := newFleet(t, 1, nil)
	empty := newTopology(2, nil, coord.cfg.VNodes)
	res := coord.doShard(context.Background(), empty, "class-x", "/v1/shard", []byte(`{}`), "rid")
	if res.err == nil {
		t.Fatalf("empty-ring shard returned no error: %+v", res)
	}
}

// TestLeaveDuringHedgeKeepsSnapshot is the regression for the
// leave-vs-hedge race: a request's whole attempt sequence — primary AND the
// hedge re-issue — must run against the one topology snapshot it took, even
// when /admin/ring/leave removes the hedge target from the live topology
// mid-request. The hedge target here is the last (and only) in-flight
// holder, so the leave's drain wait is racing exactly the hedge.
func TestLeaveDuringHedgeKeepsSnapshot(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(400 * time.Millisecond)
		_, _ = w.Write([]byte(`{"who":"slow"}`))
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte(`{"who":"fast"}`))
	}))
	defer fast.Close()

	coord, err := New(Config{
		Workers:        []string{slow.URL, fast.URL},
		HedgeAfter:     20 * time.Millisecond,
		HealthInterval: time.Hour, // no background probes mid-test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Pick a key whose primary is the slow worker, so the hedge goes to the
	// fast one.
	t0 := coord.topology()
	key := ""
	for i := 0; i < 1000; i++ {
		k := "k" + strconv.Itoa(i)
		if cands := t0.candidates(k); len(cands) > 1 && cands[0].url == slow.URL {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key routed to the slow worker")
	}

	// Concurrent leave of the hedge target, racing the hedge re-issue.
	leaveDone := make(chan error, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := coord.RemoveWorker(ctx, fast.URL)
		leaveDone <- err
	}()

	res := coord.doShard(context.Background(), t0, key, "/x", []byte(`{}`), "rid")
	if res.err != nil {
		t.Fatalf("shard failed: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("shard status %d", res.status)
	}
	// The winner must come from the snapshot's candidate list; whichever it
	// is, the request saw one coherent topology throughout.
	if res.worker != slow.URL && res.worker != fast.URL {
		t.Fatalf("winning worker %q not in the request's snapshot", res.worker)
	}
	if err := <-leaveDone; err != nil {
		t.Fatalf("leave: %v", err)
	}
	if m := coord.topology().findMember(fast.URL); m != nil {
		t.Fatal("left worker still in the live topology")
	}
	// The old snapshot still names it — that is the point.
	if m := t0.findMember(fast.URL); m == nil {
		t.Fatal("request snapshot lost the hedge target")
	}
}
