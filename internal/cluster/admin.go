package cluster

import (
	"encoding/json"
	"net/http"
	"strings"

	"fepia/internal/server"
)

// Admin API for live ring rebalancing:
//
//	GET  /admin/ring        — current topology (generation, members, ring share)
//	POST /admin/ring/join   — {"url": "..."}: probe-then-cutover AddWorker
//	POST /admin/ring/leave  — {"url": "..."}: drain-then-cutover RemoveWorker
//
// Join and leave run under the caller's request deadline: a join that cannot
// observe the worker ready in time fails without touching the topology; a
// leave whose drain outlives the deadline still completes the cutover and
// reports 200 with drained=false.

// RingMember is one worker's row in a RingStatus.
type RingMember struct {
	URL     string `json:"url"`
	State   string `json:"state"`
	Leaving bool   `json:"leaving,omitempty"`
	// RingShare is the fraction of the hash space whose primary is this
	// worker (≈1/active for a balanced ring; 0 while leaving).
	RingShare float64 `json:"ringShare"`
	Inflight  int     `json:"inflight"`
}

// RingStatus is the GET /admin/ring document.
type RingStatus struct {
	Generation uint64       `json:"generation"`
	VNodes     int          `json:"vnodes"`
	Active     int          `json:"active"`
	Joins      uint64       `json:"joins"`
	Leaves     uint64       `json:"leaves"`
	Members    []RingMember `json:"members"`
}

// ringStatus assembles the document from one snapshot.
func (c *Coordinator) ringStatus(t *topology) RingStatus {
	st := RingStatus{
		Generation: t.gen,
		VNodes:     c.cfg.VNodes,
		Active:     len(t.active),
		Joins:      c.stats.joins.Load(),
		Leaves:     c.stats.leaves.Load(),
	}
	// Each ring point owns the arc back to its predecessor; summing arc
	// lengths per member gives the share of the key space it is primary for.
	share := make(map[*member]uint64, len(t.active))
	pts := t.ring.points
	for i, p := range pts {
		var arc uint64
		if i == 0 {
			arc = p.hash + (^uint64(0) - pts[len(pts)-1].hash) + 1
		} else {
			arc = p.hash - pts[i-1].hash
		}
		share[p.m] += arc
	}
	for _, m := range t.members {
		st.Members = append(st.Members, RingMember{
			URL:       m.url,
			State:     stateName(m.state.Load()),
			Leaving:   m.leaving.Load(),
			RingShare: float64(share[m]) / float64(^uint64(0)),
			Inflight:  len(m.sem),
		})
	}
	return st
}

func (c *Coordinator) handleRingStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.ringStatus(c.topology()))
}

// ringChangeRequest is the body of the join/leave endpoints.
type ringChangeRequest struct {
	URL string `json:"url"`
}

// RingChangeResponse is the join/leave success body.
type RingChangeResponse struct {
	Generation uint64 `json:"generation"`
	// Drained is false when a leave's drain wait hit the request deadline
	// (the cutover still happened; in-flight shards finish on their own).
	Drained bool       `json:"drained"`
	Ring    RingStatus `json:"ring"`
}

func decodeRingChange(w http.ResponseWriter, r *http.Request, c *Coordinator) (string, bool) {
	rid := server.RequestIDFrom(r.Context())
	var req ringChangeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		c.stats.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "decoding request: " + err.Error(), Kind: "bad-request", RequestID: rid})
		return "", false
	}
	url := strings.TrimRight(strings.TrimSpace(req.URL), "/")
	if url == "" {
		c.stats.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "missing worker url", Kind: "bad-request", RequestID: rid})
		return "", false
	}
	return url, true
}

func (c *Coordinator) handleRingJoin(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	url, ok := decodeRingChange(w, r, c)
	if !ok {
		return
	}
	gen, err := c.AddWorker(r.Context(), url)
	if err != nil {
		status := http.StatusBadGateway // could not observe the worker ready
		kind := "join-failed"
		if strings.Contains(err.Error(), "already a member") {
			status, kind = http.StatusConflict, "already-member"
		} else if r.Context().Err() != nil {
			status, kind = http.StatusGatewayTimeout, "join-timeout"
		}
		writeJSON(w, status, server.ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
		return
	}
	c.cfg.Logf("cluster: rid=%s admin join %s -> generation %d", rid, url, gen)
	writeJSON(w, http.StatusOK, RingChangeResponse{Generation: gen, Drained: true, Ring: c.ringStatus(c.topology())})
}

func (c *Coordinator) handleRingLeave(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	url, ok := decodeRingChange(w, r, c)
	if !ok {
		return
	}
	gen, err := c.RemoveWorker(r.Context(), url)
	if err != nil && gen == 0 {
		status, kind := http.StatusNotFound, "not-a-member"
		if strings.Contains(err.Error(), "last active worker") {
			status, kind = http.StatusConflict, "last-worker"
		}
		writeJSON(w, status, server.ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
		return
	}
	drained := err == nil
	if !drained {
		c.cfg.Logf("cluster: rid=%s admin leave %s: %v", rid, url, err)
	}
	c.cfg.Logf("cluster: rid=%s admin leave %s -> generation %d (drained=%v)", rid, url, gen, drained)
	writeJSON(w, http.StatusOK, RingChangeResponse{Generation: gen, Drained: drained, Ring: c.ringStatus(c.topology())})
}
