package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fepia/internal/core"
	"fepia/internal/server"
)

// The gather half of the coordinator. Merge rules, all chosen to make a
// scattered evaluation indistinguishable from a single-node one:
//
//   - radii merge back into global feature order, and ρ is the strict-min
//     fold over them (lowest-index feature wins ties — foldRobustness's
//     tie-break);
//   - the lowest-index per-feature evaluation error wins and is relayed
//     with the status a single-node daemon would have chosen for it;
//   - an infrastructure failure (a shard no worker could serve) outranks
//     evaluation errors — the coordinator will not fabricate a complete
//     result from an incomplete gather;
//   - per-shard provenance (worker, attempts, hedged, degraded tier) is
//     attached under "cluster", a field single-node responses simply lack.

// maxBodyBytes mirrors the worker daemon's request-body bound.
const maxBodyBytes = 8 << 20

// ShardInfo is one shard's provenance in a coordinator response.
type ShardInfo struct {
	// Item is the batch item the shard belongs to (0 for single requests).
	Item  int `json:"item,omitempty"`
	Shard int `json:"shard"`
	// Worker is the URL of the worker whose response was used.
	Worker   string `json:"worker,omitempty"`
	Features []int  `json:"features,omitempty"`
	// Attempts counts workers this shard was sent to (retries + hedges).
	Attempts int `json:"attempts"`
	// Hedged marks that the winning response came from a hedge re-issue.
	Hedged bool `json:"hedged,omitempty"`
	// Degraded marks that at least one radius in the shard came from the
	// Monte-Carlo degraded tier.
	Degraded  bool    `json:"degraded,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// Provenance is the "cluster" block of a coordinator response.
type Provenance struct {
	Shards []ShardInfo `json:"shards"`
}

// EvalResponse is the coordinator's /v1/robustness body: the worker daemon's
// response plus scatter provenance.
type EvalResponse struct {
	server.EvalResponse
	Cluster *Provenance `json:"cluster,omitempty"`
}

// BatchResponse is the coordinator's /v1/batch body.
type BatchResponse struct {
	server.BatchResponse
	Cluster *Provenance `json:"cluster,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	rid := server.RequestIDFrom(r.Context())
	c.stats.badRequests.Add(1)
	c.cfg.Logf("cluster: rid=%s bad request: %v", rid, err)
	writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error(), Kind: "bad-request", RequestID: rid})
}

// requestTimeout mirrors the worker daemon's deadline policy.
func (c *Coordinator) requestTimeout(raw string) (time.Duration, error) {
	if raw == "" {
		return c.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %w", raw, err)
	}
	if d <= 0 {
		return c.cfg.DefaultTimeout, nil
	}
	if d > c.cfg.MaxTimeout {
		d = c.cfg.MaxTimeout
	}
	return d, nil
}

// workerTimeout is the deadline handed to workers: the request's budget
// minus the scatter budget, never less than half the budget.
func (c *Coordinator) workerTimeout(timeout time.Duration) time.Duration {
	d := timeout - c.cfg.ScatterBudget
	if d < timeout/2 {
		d = timeout / 2
	}
	return d
}

func weightingName(raw string) (string, error) {
	switch raw {
	case "", "normalized":
		return "normalized", nil
	case "sensitivity":
		return "sensitivity", nil
	case "unweighted":
		return "unweighted", nil
	default:
		return "", fmt.Errorf("unknown weighting %q (want normalized, sensitivity, or unweighted)", raw)
	}
}

// chaosGate mirrors the worker's policy check; fault validation itself is
// the worker's job.
func (c *Coordinator) chaosGate(w http.ResponseWriter, r *http.Request, specs []server.ChaosSpec) bool {
	if len(specs) == 0 || c.cfg.EnableChaos {
		return true
	}
	rid := server.RequestIDFrom(r.Context())
	c.stats.badRequests.Add(1)
	writeJSON(w, http.StatusForbidden, server.ErrorResponse{Error: "chaos injection is disabled on this server", Kind: "chaos", RequestID: rid})
	return false
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if c.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if !c.recovered.Load() {
		// Post-restart: the ring came from the journal and no journaled
		// member has probed up yet (see recoveryLoop). Load balancers should
		// hold traffic; requests sent anyway are still served.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
		return
	}
	up := 0
	for _, m := range c.topology().active {
		if m.up() {
			up++
		}
	}
	if up == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no-workers"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Statz is the coordinator's /statz document.
type Statz struct {
	UptimeMs int64 `json:"uptimeMs"`
	Draining bool  `json:"draining"`
	Inflight int   `json:"inflight"`

	// RingGeneration counts topology publishes (initial topology = 1, or
	// the journal-recovered generation after a restart); Joins/Leaves count
	// live rebalance events since startup.
	RingGeneration uint64 `json:"ringGeneration"`
	Joins          uint64 `json:"joins"`
	Leaves         uint64 `json:"leaves"`

	// Recovering is true between a journal-recovered restart and ring
	// convergence (see /readyz "recovering"). Journal, present when a state
	// dir is configured, is the ring journal's health.
	Recovering bool          `json:"recovering,omitempty"`
	Journal    *JournalStatz `json:"journal,omitempty"`

	Workers []WorkerStatz `json:"workers"`

	Accepted         uint64 `json:"accepted"`
	RejectedDraining uint64 `json:"rejectedDraining"`
	BadRequests      uint64 `json:"badRequests"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`

	Shards       uint64 `json:"shards"`
	Hedges       uint64 `json:"hedges"`
	Retries      uint64 `json:"retries"`
	WorkerErrors uint64 `json:"workerErrors"`

	// Watches reports the live-watch subsystem: active streams, lifecycle
	// counters, and WatchShardsSkipped — shards with no dirty feature that
	// were never scattered (the dirty-shard optimization's direct savings).
	Watches *WatchStatz `json:"watches,omitempty"`

	BreakerTrips uint64                   `json:"breakerTrips"`
	Breakers     []server.BreakerSnapshot `json:"breakers"`

	// Searches are the allocation searches the coordinator has run or is
	// running (see POST /v1/search), newest rows last.
	Searches []server.SearchStatz `json:"searches,omitempty"`
}

// WatchStatz is the coordinator's live-watch section of /statz.
type WatchStatz struct {
	Active        int    `json:"active"`
	Created       uint64 `json:"created"`
	Resumed       uint64 `json:"resumed"`
	Closed        uint64 `json:"closed"`
	Updates       uint64 `json:"updates"`
	Structural    uint64 `json:"structural"`
	Events        uint64 `json:"events"`
	LagDrops      uint64 `json:"lagDrops"`
	ShardsSkipped uint64 `json:"shardsSkipped"`
}

func (c *Coordinator) watchStatz() *WatchStatz {
	return &WatchStatz{
		Active:        c.cwatches.count(),
		Created:       c.stats.watchCreated.Load(),
		Resumed:       c.stats.watchResumed.Load(),
		Closed:        c.stats.watchClosed.Load(),
		Updates:       c.stats.watchUpdates.Load(),
		Structural:    c.stats.watchStructural.Load(),
		Events:        c.stats.watchEvents.Load(),
		LagDrops:      c.stats.watchLagDrops.Load(),
		ShardsSkipped: c.stats.watchShardsSkipped.Load(),
	}
}

// WorkerStatz is one fleet member's health in /statz.
type WorkerStatz struct {
	URL string `json:"url"`
	// State is up, draining, or down; Generation counts state transitions.
	State      string  `json:"state"`
	Generation uint64  `json:"generation"`
	EwmaMs     float64 `json:"ewmaMs,omitempty"`
	Inflight   int     `json:"inflight"`
	// Leaving marks a member draining out of the ring (RemoveWorker in
	// progress): it takes no new shards but still appears here until its
	// in-flight work finishes.
	Leaving bool `json:"leaving,omitempty"`
}

func (c *Coordinator) handleStatz(w http.ResponseWriter, _ *http.Request) {
	breakers, trips := c.brk.Snapshot()
	t := c.topology()
	c.mu.Lock()
	inflight, draining := c.inflight, c.draining
	c.mu.Unlock()
	st := Statz{
		UptimeMs:         time.Since(c.start).Milliseconds(),
		Draining:         draining,
		Inflight:         inflight,
		RingGeneration:   t.gen,
		Joins:            c.stats.joins.Load(),
		Leaves:           c.stats.leaves.Load(),
		Accepted:         c.stats.accepted.Load(),
		RejectedDraining: c.stats.rejectedDraining.Load(),
		BadRequests:      c.stats.badRequests.Load(),
		Completed:        c.stats.completed.Load(),
		Failed:           c.stats.failed.Load(),
		Shards:           c.stats.shards.Load(),
		Hedges:           c.stats.hedges.Load(),
		Retries:          c.stats.retries.Load(),
		WorkerErrors:     c.stats.workerErrors.Load(),
		BreakerTrips:     trips,
		Breakers:         breakers,
		Recovering:       !c.recovered.Load(),
		Journal:          c.journalStatz(),
		Searches:         c.searches.Snapshot(),
		Watches:          c.watchStatz(),
	}
	for _, m := range t.members {
		st.Workers = append(st.Workers, WorkerStatz{
			URL:        m.url,
			State:      stateName(m.state.Load()),
			Generation: m.gen.Load(),
			EwmaMs:     float64(m.ewmaNs.Load()) / 1e6,
			Inflight:   len(m.sem),
			Leaving:    m.leaving.Load(),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

// admitCoordinator runs the coordinator's light admission: drain gate plus
// deadline setup. (Worker-side admission control prices the actual work.)
func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request, timeout time.Duration) (context.Context, func(), bool) {
	rid := server.RequestIDFrom(r.Context())
	exit, ok := c.enter()
	if !ok {
		c.stats.rejectedDraining.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, server.ErrorResponse{Error: "server is draining", Kind: "draining", RequestID: rid})
		return nil, nil, false
	}
	c.stats.accepted.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stopAfter := context.AfterFunc(c.base, cancel)
	finish := func() {
		stopAfter()
		cancel()
		exit()
	}
	return ctx, finish, true
}

// relayFailure is an infrastructure failure gathered from the scatter: a
// worker's non-200 response to relay, or a transport error after every
// candidate was tried.
type relayFailure struct {
	status int // 0 = transport-level
	body   []byte
	err    error
}

// errorResponse converts the failure to (status, body), mapping context
// errors to the single-node kinds and everything else to 502 "upstream".
func (f *relayFailure) errorResponse(rid string) (int, server.ErrorResponse) {
	if f.status != 0 {
		var er server.ErrorResponse
		if json.Unmarshal(f.body, &er) != nil || er.Error == "" {
			er = server.ErrorResponse{Error: fmt.Sprintf("worker returned status %d", f.status), Kind: "upstream"}
		}
		er.RequestID = rid
		return f.status, er
	}
	switch {
	case errors.Is(f.err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, server.ErrorResponse{Error: f.err.Error(), Kind: "deadline-exceeded", RequestID: rid}
	case errors.Is(f.err, context.Canceled):
		return http.StatusServiceUnavailable, server.ErrorResponse{Error: f.err.Error(), Kind: "cancelled", RequestID: rid}
	default:
		return http.StatusBadGateway, server.ErrorResponse{Error: "no worker could serve the request: " + f.err.Error(), Kind: "upstream", RequestID: rid}
	}
}

// gathered is one scenario's merged scatter outcome.
type gathered struct {
	results []server.ShardFeatureResult // indexed by global feature
	prov    []ShardInfo
	fail    *relayFailure
}

// scatterShards fans one scenario's shard requests out (keys[i] places
// shardSets[i]) and gathers the per-feature results back into global feature
// order. Every shard runs against the caller's one topology snapshot.
func (c *Coordinator) scatterShards(ctx context.Context, t *topology, rid string, base server.ShardRequest, shardSets [][]int, keys []string) gathered {
	n := len(base.Scenario.Features)
	g := gathered{results: make([]server.ShardFeatureResult, n), prov: make([]ShardInfo, len(shardSets))}
	ress := make([]shardResult, len(shardSets))
	var wg sync.WaitGroup
	for i := range shardSets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sreq := base
			sreq.Features = shardSets[i]
			body, err := json.Marshal(sreq)
			if err != nil {
				ress[i] = shardResult{err: err}
				return
			}
			ress[i] = c.doShard(ctx, t, keys[i], "/v1/shard", body, rid)
		}(i)
	}
	wg.Wait()

	for i, res := range ress {
		g.prov[i] = ShardInfo{
			Shard:     i,
			Worker:    res.worker,
			Features:  shardSets[i],
			Attempts:  res.attempts,
			Hedged:    res.hedged,
			ElapsedMs: float64(res.elapsed.Microseconds()) / 1000,
		}
		switch {
		case res.err != nil:
			if g.fail == nil {
				g.fail = &relayFailure{err: res.err}
			}
		case res.status != http.StatusOK:
			if g.fail == nil {
				g.fail = &relayFailure{status: res.status, body: res.body}
			}
		default:
			var sh server.ShardResponse
			if err := json.Unmarshal(res.body, &sh); err != nil {
				if g.fail == nil {
					g.fail = &relayFailure{err: fmt.Errorf("decoding shard response from %s: %w", res.worker, err)}
				}
				continue
			}
			degraded := false
			for _, fr := range sh.Results {
				if fr.Feature >= 0 && fr.Feature < n {
					g.results[fr.Feature] = fr
				}
				if fr.Radius != nil && fr.Radius.Degraded {
					degraded = true
				}
			}
			g.prov[i].Degraded = degraded
		}
	}
	if g.fail == nil {
		for _, feats := range shardSets {
			for _, i := range feats {
				if fr := g.results[i]; fr.Radius == nil && fr.Error == "" {
					g.fail = &relayFailure{err: fmt.Errorf("incomplete shard response: feature %d missing", i)}
				}
			}
		}
	}
	return g
}

// merge folds a complete gather into the single-node response pieces: the
// combined metric, or the lowest-index evaluation error.
func merge(weighting string, results []server.ShardFeatureResult) (rj server.RobustnessJSON, errStr, errKind string) {
	for _, fr := range results {
		if fr.Error != "" {
			return rj, fr.Error, fr.Kind
		}
	}
	rj = server.RobustnessJSON{Value: nil, Critical: -1, Weighting: weighting}
	value := math.Inf(1)
	for _, fr := range results {
		r := *fr.Radius
		rj.PerFeature = append(rj.PerFeature, r)
		rj.Degraded = rj.Degraded || r.Degraded
		v := math.Inf(1)
		if r.Value != nil {
			v = *r.Value
		}
		if v < value {
			value, rj.Critical = v, r.Feature
		}
	}
	if math.IsInf(value, 1) {
		rj.Unbounded = true
	} else {
		rj.Value = &value
	}
	return rj, "", ""
}

// recordOutcome reports a terminal outcome to the coordinator's breaker with
// the single-node semantics (neutral outcomes only release probe slots).
func (c *Coordinator) recordOutcome(class string, probe, failed, neutral bool) {
	if !neutral && !probe {
		c.brk.Record(class, false, failed)
		return
	}
	if probe {
		if neutral {
			c.brk.Record(class, true, false)
		} else {
			c.brk.Record(class, true, failed)
		}
	}
}

func (c *Coordinator) handleRobustness(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.EvalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		c.badRequest(w, r, err)
		return
	}
	wname, err := weightingName(req.Weighting)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	timeout, err := c.requestTimeout(req.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	if !c.chaosGate(w, r, req.Chaos) {
		return
	}

	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return
	}
	defer finish()

	class := server.Classify(req.Scenario, len(req.Chaos) > 0)
	forced, probe, state := c.brk.Route(class)

	// One topology snapshot for the whole request: shard count and shard
	// placement stay coherent under a concurrent rebalance.
	t := c.topology()
	n := len(req.Scenario.Features)
	shardSets := core.ShardFeatures(n, len(t.active))
	keys := make([]string, len(shardSets))
	for i := range keys {
		keys[i] = class + "/s" + strconv.Itoa(i)
	}
	base := server.ShardRequest{
		Scenario:      req.Scenario,
		Weighting:     req.Weighting,
		Timeout:       c.workerTimeout(timeout).String(),
		Chaos:         req.Chaos,
		ForceDegraded: forced,
	}
	start := time.Now()
	g := c.scatterShards(ctx, t, rid, base, shardSets, keys)
	elapsed := time.Since(start)

	if g.fail != nil {
		status, er := g.fail.errorResponse(rid)
		c.stats.failed.Add(1)
		c.recordOutcome(class, probe, false, true) // infrastructure says nothing about the numeric tier
		c.cfg.Logf("cluster: rid=%s robustness class=%s failed upstream: %s", rid, class, er.Error)
		writeJSON(w, status, er)
		return
	}
	rj, errStr, errKind := merge(wname, g.results)
	if errStr != "" {
		neutral := errKind == "cancelled"
		c.stats.failed.Add(1)
		c.recordOutcome(class, probe, !neutral, neutral)
		c.cfg.Logf("cluster: rid=%s robustness class=%s failed (%s): %s", rid, class, errKind, errStr)
		writeJSON(w, server.StatusForKind(errKind), server.ErrorResponse{Error: errStr, Kind: errKind, RequestID: rid})
		return
	}
	c.stats.completed.Add(1)
	c.recordOutcome(class, probe, rj.Degraded && !forced, forced)
	c.cfg.Logf("cluster: rid=%s robustness class=%s shards=%d elapsed=%.1fms", rid, class, len(shardSets), float64(elapsed.Microseconds())/1000)
	writeJSON(w, http.StatusOK, EvalResponse{
		EvalResponse: server.EvalResponse{
			Robustness: rj,
			Class:      class,
			Breaker:    state,
			RequestID:  rid,
			ElapsedMs:  float64(elapsed.Microseconds()) / 1000,
		},
		Cluster: &Provenance{Shards: g.prov},
	})
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Items) == 0 {
		c.badRequest(w, r, errors.New("batch has no items"))
		return
	}
	timeout, err := c.requestTimeout(req.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	wnames := make([]string, len(req.Items))
	for k, it := range req.Items {
		if err := it.Scenario.Validate(); err != nil {
			c.badRequest(w, r, fmt.Errorf("item %d: %w", k, err))
			return
		}
		wraw := it.Weighting
		if wraw == "" {
			wraw = req.Weighting
		}
		if wnames[k], err = weightingName(wraw); err != nil {
			c.badRequest(w, r, fmt.Errorf("item %d: %w", k, err))
			return
		}
		if !c.chaosGate(w, r, it.Chaos) {
			return
		}
	}

	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return
	}
	defer finish()

	// Each item scatters as one whole-scenario shard placed by its bare
	// class — item-level placement keeps every item's impact-cache reuse on
	// a single worker, exactly as on a single node.
	t := c.topology()
	n := len(req.Items)
	classes := make([]string, n)
	forcedFlags := make([]bool, n)
	probeFlags := make([]bool, n)
	states := make([]string, n)
	gathers := make([]gathered, n)
	workerTimeout := c.workerTimeout(timeout).String()
	start := time.Now()
	var wg sync.WaitGroup
	for k, it := range req.Items {
		classes[k] = server.Classify(it.Scenario, len(it.Chaos) > 0)
		forcedFlags[k], probeFlags[k], states[k] = c.brk.Route(classes[k])
		wg.Add(1)
		go func(k int, it server.BatchItemRequest) {
			defer wg.Done()
			all := make([]int, len(it.Scenario.Features))
			for i := range all {
				all[i] = i
			}
			base := server.ShardRequest{
				Scenario:      it.Scenario,
				Weighting:     wnames[k],
				Timeout:       workerTimeout,
				Chaos:         it.Chaos,
				ForceDegraded: forcedFlags[k],
			}
			gathers[k] = c.scatterShards(ctx, t, rid, base, [][]int{all}, []string{classes[k]})
		}(k, it)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := BatchResponse{
		BatchResponse: server.BatchResponse{
			Results:   make([]server.BatchItemResponse, n),
			RequestID: rid,
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		},
		Cluster: &Provenance{},
	}
	for k := 0; k < n; k++ {
		item := server.BatchItemResponse{Class: classes[k], Breaker: states[k]}
		g := gathers[k]
		for i := range g.prov {
			info := g.prov[i]
			info.Item = k
			out.Cluster.Shards = append(out.Cluster.Shards, info)
		}
		if g.fail != nil {
			_, er := g.fail.errorResponse(rid)
			item.Error, item.Kind = er.Error, er.Kind
			c.recordOutcome(classes[k], probeFlags[k], false, true)
		} else {
			rj, errStr, errKind := merge(wnames[k], g.results)
			if errStr != "" {
				item.Error, item.Kind = errStr, errKind
				neutral := errKind == "cancelled"
				c.recordOutcome(classes[k], probeFlags[k], !neutral, neutral)
			} else {
				item.Robustness = &rj
				c.recordOutcome(classes[k], probeFlags[k], rj.Degraded && !forcedFlags[k], forcedFlags[k])
			}
		}
		out.Results[k] = item
	}
	c.stats.completed.Add(1)
	c.cfg.Logf("cluster: rid=%s batch items=%d elapsed=%.1fms", rid, n, out.ElapsedMs)
	writeJSON(w, http.StatusOK, out)
}

// handleRadius forwards the whole request to the class's home worker. The
// sequential parameter sweep of /v1/radius shares one impact cache across
// parameters on a single node; scattering parameters over workers would
// split that cache and change low-order bits, so the coordinator keeps the
// request intact and only chooses which warm worker runs it.
func (c *Coordinator) handleRadius(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.RadiusRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		c.badRequest(w, r, err)
		return
	}
	timeout, err := c.requestTimeout(req.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	if req.Param != nil && (*req.Param < 0 || *req.Param >= len(req.Scenario.Params)) {
		c.badRequest(w, r, fmt.Errorf("param %d out of range (%d params)", *req.Param, len(req.Scenario.Params)))
		return
	}
	if !c.chaosGate(w, r, req.Chaos) {
		return
	}

	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return
	}
	defer finish()

	class := server.Classify(req.Scenario, len(req.Chaos) > 0)
	body, err := json.Marshal(req)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	res := c.doShard(ctx, c.topology(), class, "/v1/radius", body, rid)
	if res.err != nil {
		f := relayFailure{err: res.err}
		status, er := f.errorResponse(rid)
		c.stats.failed.Add(1)
		c.cfg.Logf("cluster: rid=%s radius class=%s failed upstream: %s", rid, class, er.Error)
		writeJSON(w, status, er)
		return
	}
	if res.status == http.StatusOK {
		c.stats.completed.Add(1)
	} else {
		c.stats.failed.Add(1)
	}
	c.cfg.Logf("cluster: rid=%s radius class=%s worker=%s status=%d", rid, class, res.worker, res.status)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Fepia-Worker", res.worker)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}
