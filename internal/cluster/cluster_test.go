package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/scenario"
	"fepia/internal/server"
)

func f64(v float64) *float64 { return &v }

// testDoc is a scenario with an analytic and a numeric feature, so shards
// exercise both tiers.
func testDoc() scenario.AnalysisDoc {
	return scenario.AnalysisDoc{
		Params: []scenario.AnalysisParam{
			{Name: "load", Unit: "jobs", Orig: []float64{1, 2}},
			{Name: "mem", Unit: "GiB", Orig: []float64{4}},
		},
		Features: []scenario.AnalysisFeature{
			{Name: "lat", Max: f64(40), Coeffs: [][]float64{{2, 3}, {1}}},
			{Name: "mult", Impact: scenario.ImpactMultiplicative,
				Max: f64(100), Scale: 1, Pows: [][]float64{{1, 1}, {0.5}}},
			{Name: "quad", Max: f64(30),
				Impact: scenario.ImpactQuadratic,
				Curv:   [][]float64{{1, 0.5}, {2}},
				Center: [][]float64{{0.5, 1}, {1.5}}},
		},
	}
}

func workerConfig() server.Config {
	return server.Config{DegradeSamples: 64, EnableChaos: true}
}

// newFleet starts n workers and a coordinator over them.
func newFleet(t *testing.T, n int, mutate func(*Config)) ([]*httptest.Server, *Coordinator, *httptest.Server) {
	t.Helper()
	workers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range workers {
		s := server.New(workerConfig())
		workers[i] = httptest.NewServer(s.Handler())
		t.Cleanup(workers[i].Close)
		urls[i] = workers[i].URL
	}
	cfg := Config{Workers: urls, EnableChaos: true, HealthInterval: 100 * time.Millisecond}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	return workers, coord, front
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// sameEval compares two /v1/robustness responses bit-exactly, ignoring
// request IDs and timings.
func sameEval(t *testing.T, got, want server.EvalResponse) {
	t.Helper()
	if got.Class != want.Class || got.Breaker != want.Breaker {
		t.Fatalf("class/breaker: got %s/%s, want %s/%s", got.Class, got.Breaker, want.Class, want.Breaker)
	}
	g, w := got.Robustness, want.Robustness
	if g.Critical != w.Critical || g.Weighting != w.Weighting || g.Degraded != w.Degraded || g.Unbounded != w.Unbounded {
		t.Fatalf("robustness meta: got %+v, want %+v", g, w)
	}
	sameFloatPtr(t, "rho", g.Value, w.Value)
	if len(g.PerFeature) != len(w.PerFeature) {
		t.Fatalf("perFeature lengths: %d vs %d", len(g.PerFeature), len(w.PerFeature))
	}
	for i := range g.PerFeature {
		a, b := g.PerFeature[i], w.PerFeature[i]
		if a.Feature != b.Feature || a.Param != b.Param || a.Side != b.Side || a.Name != b.Name ||
			a.Analytic != b.Analytic || a.Degraded != b.Degraded || a.Unbounded != b.Unbounded {
			t.Fatalf("radius %d: got %+v, want %+v", i, a, b)
		}
		sameFloatPtr(t, "radius", a.Value, b.Value)
	}
}

func sameFloatPtr(t *testing.T, what string, a, b *float64) {
	t.Helper()
	switch {
	case a == nil && b == nil:
	case a == nil || b == nil:
		t.Fatalf("%s: one side nil (%v vs %v)", what, a, b)
	case math.Float64bits(*a) != math.Float64bits(*b):
		t.Fatalf("%s bits differ: %v vs %v", what, *a, *b)
	}
}

// singleNode evaluates the request on a fresh one-node daemon for reference.
func singleNode(t *testing.T, req server.EvalRequest) server.EvalResponse {
	t.Helper()
	s := server.New(workerConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/robustness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-node status = %d, body %s", resp.StatusCode, body)
	}
	var out server.EvalResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// testMembers builds a standalone member list for ring/rendezvous tests.
func testMembers(urls ...string) []*member {
	out := make([]*member, len(urls))
	for i, u := range urls {
		out[i] = newMember(u, i, 1)
	}
	return out
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	mems := testMembers("http://a", "http://b", "http://c")
	r1, r2 := newRing(mems, 64), newRing(mems, 64)
	counts := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := "class/d4/s" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		p := r1.primary(key)
		if p != r2.primary(key) {
			t.Fatalf("ring placement not deterministic for %q", key)
		}
		counts[p.url]++
	}
	for url, n := range counts {
		if n < 100 {
			t.Fatalf("worker %s got only %d/1000 keys — ring badly unbalanced: %v", url, n, counts)
		}
	}
}

func TestRendezvousOrderCoversAll(t *testing.T) {
	mems := testMembers("http://a", "http://b", "http://c", "http://d", "http://e")
	order := rendezvousOrder("some/class", mems)
	seen := map[string]bool{}
	for _, m := range order {
		seen[m.url] = true
	}
	if len(seen) != 5 {
		t.Fatalf("rendezvous order does not cover all workers: %v", seen)
	}
}

// TestRendezvousStableAcrossLeave checks the URL-keyed property live
// rebalancing relies on: removing one member must not reorder the survivors'
// fallback ranking for any key.
func TestRendezvousStableAcrossLeave(t *testing.T) {
	all := testMembers("http://a", "http://b", "http://c", "http://d")
	without := all[:3] // drop http://d
	for i := 0; i < 50; i++ {
		key := "class/d8/s" + string(rune('a'+i))
		full := rendezvousOrder(key, all)
		sub := rendezvousOrder(key, without)
		filtered := make([]*member, 0, 3)
		for _, m := range full {
			if m != all[3] {
				filtered = append(filtered, m)
			}
		}
		for j := range sub {
			if sub[j] != filtered[j] {
				t.Fatalf("key %q: survivor order changed after leave", key)
			}
		}
	}
}

func TestCandidatesSkipDownWorkers(t *testing.T) {
	_, coord, _ := newFleet(t, 3, nil)
	key := "multiplicative/d4/s0"
	topo := coord.topology()
	prim := topo.ring.primary(key)
	prim.setState(stateDown, coord.cfg.Logf)
	for _, m := range topo.candidates(key) {
		if m == prim {
			t.Fatalf("down worker %s still offered as candidate", prim.url)
		}
	}
	// All down: candidates must still offer the full fleet (stale-health
	// optimism) rather than none.
	for _, m := range topo.members {
		m.setState(stateDown, coord.cfg.Logf)
	}
	if len(topo.candidates(key)) != 3 {
		t.Fatalf("all-down fleet should fall back to trying everyone")
	}
}

func TestCoordinatorMatchesSingleNode(t *testing.T) {
	_, _, front := newFleet(t, 3, nil)
	for _, weighting := range []string{"", "sensitivity"} {
		req := server.EvalRequest{Scenario: testDoc(), Weighting: weighting}
		resp, body := postJSON(t, front.URL+"/v1/robustness", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator status = %d, body %s", resp.StatusCode, body)
		}
		var got EvalResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.Cluster == nil || len(got.Cluster.Shards) == 0 {
			t.Fatalf("response carries no shard provenance: %s", body)
		}
		sameEval(t, got.EvalResponse, singleNode(t, req))
	}
}

func TestCoordinatorErrorMatchesSingleNode(t *testing.T) {
	_, _, front := newFleet(t, 3, nil)
	req := server.EvalRequest{Scenario: testDoc(), Chaos: []server.ChaosSpec{{Feature: 2, Fault: "panic"}}}

	s := server.New(workerConfig())
	ref := httptest.NewServer(s.Handler())
	defer ref.Close()
	refResp, refBody := postJSON(t, ref.URL+"/v1/robustness", req)
	var want server.ErrorResponse
	if err := json.Unmarshal(refBody, &want); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, front.URL+"/v1/robustness", req)
	if resp.StatusCode != refResp.StatusCode {
		t.Fatalf("status = %d, single-node = %d (%s)", resp.StatusCode, refResp.StatusCode, body)
	}
	var got server.ErrorResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Error != want.Error || got.Kind != want.Kind {
		t.Fatalf("error = %q/%q, single-node = %q/%q", got.Error, got.Kind, want.Error, want.Kind)
	}
	if got.RequestID == "" {
		t.Fatal("coordinator error carries no request ID")
	}
}

func TestCoordinatorReroutesAroundDeadWorker(t *testing.T) {
	workers, coord, front := newFleet(t, 3, nil)
	// Kill one worker outright; the coordinator should discover it (or trip
	// over it) and re-route its shards.
	workers[1].CloseClientConnections()
	workers[1].Close()
	req := server.EvalRequest{Scenario: testDoc()}
	resp, body := postJSON(t, front.URL+"/v1/robustness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	sameEval(t, got.EvalResponse, singleNode(t, req))
	coord.ProbeNow(context.Background())
	dead := coord.topology().members[1]
	if dead.state.Load() != stateDown {
		t.Fatalf("dead worker not marked down after probe")
	}
	if gen := dead.gen.Load(); gen == 0 {
		t.Fatalf("dead worker's generation did not advance")
	}
}

func TestCoordinatorHedgesSlowShard(t *testing.T) {
	// Every worker's shard endpoint gets 100ms of added HTTP latency — well
	// past the 20ms hedge delay — so every shard hedges, and since the
	// latency sits outside the evaluation, the merged result is still exact.
	const delay = 100 * time.Millisecond
	urls := make([]string, 3)
	for i := range urls {
		s := server.New(workerConfig())
		h := s.Handler()
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				time.Sleep(delay)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	coord, err := New(Config{Workers: urls, HedgeAfter: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	req := server.EvalRequest{Scenario: testDoc()}
	resp, body := postJSON(t, front.URL+"/v1/robustness", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	sameEval(t, got.EvalResponse, singleNode(t, req))

	resp2, err := http.Get(front.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hedges == 0 {
		t.Fatalf("no hedges launched: %+v", st)
	}
}

func TestCoordinatorBatchMatchesSingleNode(t *testing.T) {
	_, _, front := newFleet(t, 3, nil)
	req := server.BatchRequest{Items: []server.BatchItemRequest{
		{Scenario: testDoc()},
		{Scenario: testDoc(), Weighting: "sensitivity"},
		{Scenario: testDoc(), Chaos: []server.ChaosSpec{{Feature: 0, Fault: "panic"}}},
	}}

	s := server.New(workerConfig())
	ref := httptest.NewServer(s.Handler())
	defer ref.Close()
	_, refBody := postJSON(t, ref.URL+"/v1/batch", req)
	var want server.BatchResponse
	if err := json.Unmarshal(refBody, &want); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, front.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("got %d results, want %d", len(got.Results), len(want.Results))
	}
	for k := range got.Results {
		g, w := got.Results[k], want.Results[k]
		if g.Error != w.Error || g.Kind != w.Kind || g.Class != w.Class || g.Breaker != w.Breaker {
			t.Fatalf("item %d: got %+v, want %+v", k, g, w)
		}
		if (g.Robustness == nil) != (w.Robustness == nil) {
			t.Fatalf("item %d: robustness presence differs", k)
		}
		if g.Robustness != nil {
			sameEval(t,
				server.EvalResponse{Robustness: *g.Robustness, Class: g.Class, Breaker: g.Breaker},
				server.EvalResponse{Robustness: *w.Robustness, Class: w.Class, Breaker: w.Breaker})
		}
	}
	if got.Cluster == nil || len(got.Cluster.Shards) != len(req.Items) {
		t.Fatalf("batch provenance missing or wrong size: %+v", got.Cluster)
	}
}

func TestCoordinatorRadiusForwards(t *testing.T) {
	_, _, front := newFleet(t, 3, nil)
	req := server.RadiusRequest{Scenario: testDoc()}

	s := server.New(workerConfig())
	ref := httptest.NewServer(s.Handler())
	defer ref.Close()
	_, refBody := postJSON(t, ref.URL+"/v1/radius", req)
	var want server.RadiusResponse
	if err := json.Unmarshal(refBody, &want); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, front.URL+"/v1/radius", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Fepia-Worker") == "" {
		t.Fatal("forwarded radius response names no worker")
	}
	var got server.RadiusResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Radii) != len(want.Radii) {
		t.Fatalf("got %d radii, want %d", len(got.Radii), len(want.Radii))
	}
	for i := range got.Radii {
		sameFloatPtr(t, "radius", got.Radii[i].Value, want.Radii[i].Value)
		if got.Radii[i].Param != want.Radii[i].Param || got.Radii[i].Feature != want.Radii[i].Feature {
			t.Fatalf("radius %d: got %+v, want %+v", i, got.Radii[i], want.Radii[i])
		}
	}
}

func TestCoordinatorDrain(t *testing.T) {
	_, coord, front := newFleet(t, 2, nil)
	coord.BeginDrain()
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	resp2, body := postJSON(t, front.URL+"/v1/robustness", server.EvalRequest{Scenario: testDoc()})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request while draining = %d, body %s", resp2.StatusCode, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "draining" {
		t.Fatalf("kind = %q, want draining", er.Kind)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestCoordinatorStatz(t *testing.T) {
	_, _, front := newFleet(t, 2, nil)
	if resp, body := postJSON(t, front.URL+"/v1/robustness", server.EvalRequest{Scenario: testDoc()}); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	resp, err := http.Get(front.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("statz reports %d workers, want 2", len(st.Workers))
	}
	if st.Completed != 1 || st.Shards == 0 {
		t.Fatalf("statz counters off: %+v", st)
	}
	for _, w := range st.Workers {
		if w.State != "up" {
			t.Fatalf("worker %s state = %q after a served request", w.URL, w.State)
		}
	}
}

// TestCoordinatorRequestIDForwarded checks the same correlation ID reaches
// the worker and comes back in the coordinator's response.
func TestCoordinatorRequestIDForwarded(t *testing.T) {
	_, _, front := newFleet(t, 2, nil)
	raw, _ := json.Marshal(server.EvalRequest{Scenario: testDoc()})
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/robustness", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.HeaderRequestID, "fleet-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(server.HeaderRequestID) != "fleet-trace-7" {
		t.Fatalf("response header rid = %q", resp.Header.Get(server.HeaderRequestID))
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.RequestID != "fleet-trace-7" {
		t.Fatalf("body rid = %q, want fleet-trace-7", got.RequestID)
	}
}
