package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"fepia/internal/server"
)

// The scatter layer: getting one shard's request to one worker, with the
// failure handling that makes a fleet usable.
//
//   - Bounded in-flight per worker: each member has a semaphore; a slow
//     worker backs its own queue up instead of soaking up every shard.
//   - Retries: a transport error (worker marked down on the spot), a 429
//     (admission shed), a 502, or a 503 (draining) re-routes the shard to
//     the next candidate worker, up to MaxAttempts. A 200 or any other 4xx
//     is terminal — evaluation failures ride inside 200 shard responses and
//     are never retried (they are deterministic; a second worker would
//     produce the identical error).
//   - Hedging: if the first attempt is still running after the hedge delay,
//     the shard is re-issued to the next candidate and whichever response
//     arrives first wins. Safe because shard evaluation is deterministic —
//     both responses are interchangeable. The delay is HedgeAfter, or
//     adaptively 3× the primary worker's smoothed latency.

// maxWorkerResponse bounds a worker response body read.
const maxWorkerResponse = 32 << 20

// shardResult is one shard call's outcome: a worker HTTP response (any
// status) or a transport-level error after all attempts.
type shardResult struct {
	status   int
	body     []byte
	worker   string
	attempts int
	hedged   bool // the winning response came from a hedge
	elapsed  time.Duration
	err      error
}

// post sends one request to one worker, observing health passively.
func (c *Coordinator) post(ctx context.Context, m *member, path string, body []byte, rid string, hedged bool) shardResult {
	res := shardResult{worker: m.url, hedged: hedged}
	if err := m.acquire(ctx); err != nil {
		res.err = err
		return res
	}
	defer m.release()
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+path, bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.HeaderRequestID, rid)
	resp, err := c.client.Do(req)
	if err != nil {
		// Don't let a cancelled context (deadline, drain, or a lost hedge
		// race) condemn the worker: only genuine transport failures do.
		if ctx.Err() == nil {
			m.setState(stateDown, c.cfg.Logf)
			c.stats.workerErrors.Add(1)
		}
		res.err = err
		return res
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxWorkerResponse))
	if err != nil {
		if ctx.Err() == nil {
			m.setState(stateDown, c.cfg.Logf)
			c.stats.workerErrors.Add(1)
		}
		res.err = err
		return res
	}
	res.elapsed = time.Since(start)
	m.observe(res.elapsed)
	switch resp.StatusCode {
	case http.StatusOK:
		m.setState(stateUp, c.cfg.Logf)
	case http.StatusServiceUnavailable:
		m.setState(stateDraining, c.cfg.Logf)
	}
	res.status, res.body = resp.StatusCode, data
	return res
}

// retryable reports whether a shard outcome should be re-routed to another
// worker.
func retryable(res shardResult) bool {
	if res.err != nil {
		return true
	}
	switch res.status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// hedgeDelay picks how long to wait before re-issuing a shard.
func (c *Coordinator) hedgeDelay(primary *member) time.Duration {
	if c.cfg.HedgeAfter > 0 {
		return c.cfg.HedgeAfter
	}
	ewma := time.Duration(primary.ewmaNs.Load())
	if ewma <= 0 {
		return 100 * time.Millisecond
	}
	d := 3 * ewma
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// doShard races one shard's request across the key's candidate workers:
// launch on the first candidate, hedge to the next after the hedge delay,
// re-route on retryable failures, and return the first terminal response.
// The whole race runs against the caller's ONE topology snapshot — a
// rebalance published mid-shard changes the next shard's placement, never
// this one's candidate list (hedging stays coherent).
func (c *Coordinator) doShard(ctx context.Context, t *topology, key, path string, body []byte, rid string) shardResult {
	cands := t.candidates(key)
	if len(cands) == 0 {
		// A snapshot published while the last active worker drains out has
		// an empty ring; a request holding it must fail cleanly, not index
		// into an empty candidate list.
		return shardResult{err: fmt.Errorf("no candidate worker for key %q (ring is empty)", key)}
	}
	maxAttempts := c.cfg.MaxAttempts
	if maxAttempts > len(cands) {
		maxAttempts = len(cands)
	}
	resCh := make(chan shardResult, maxAttempts)
	launched, inflight := 0, 0
	launch := func(hedged bool) bool {
		if launched >= maxAttempts {
			return false
		}
		m := cands[launched]
		launched++
		inflight++
		c.stats.shards.Add(1)
		go func() { resCh <- c.post(ctx, m, path, body, rid, hedged) }()
		return true
	}
	launch(false)

	hedge := time.NewTimer(c.hedgeDelay(cands[0]))
	defer hedge.Stop()

	var last shardResult
	for inflight > 0 {
		select {
		case res := <-resCh:
			inflight--
			res.attempts = launched
			if !retryable(res) {
				return res
			}
			last = res
			if inflight == 0 && launched < maxAttempts {
				c.stats.retries.Add(1)
				launch(false)
			}
		case <-hedge.C:
			if launch(true) {
				c.stats.hedges.Add(1)
			}
		case <-ctx.Done():
			return shardResult{attempts: launched, err: ctx.Err()}
		}
	}
	last.attempts = launched
	return last
}
