package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fepia/internal/core"
	"fepia/internal/etc"
	"fepia/internal/makespan"
	"fepia/internal/server"
)

// POST /v1/search on the coordinator: the same robustness-aware allocation
// search as the worker daemon's, but with every generation's feasible
// candidates scattered over the fleet. The scatter is exact for the same
// reason the per-feature one is — each candidate's radii are a pure function
// of (instance, allocation, bound), evaluated under core.Unweighted on
// whichever worker receives it — so the search trajectory, which depends
// only on the seed and the returned scores, is bit-identical to a
// single-node run. Worker kills mid-generation are absorbed by the scatter
// path's retry/hedge machinery: the chunk is re-issued to the next
// candidate worker and the gathered scores do not change.

// searchEvaluator implements sched.Evaluator over the worker fleet. Each
// Scores call (one generation's feasible candidates) takes one topology
// snapshot, splits the candidates into one contiguous chunk per active
// worker, and posts each chunk to /v1/batch through the hedged scatter
// path. Chunk keys are distinct per (search, generation, chunk) so the ring
// spreads a generation across the fleet instead of collapsing it onto the
// one worker that owns the instance's scenario class.
type searchEvaluator struct {
	c     *Coordinator
	m     *etc.Matrix
	bound float64
	id    string
	rid   string
	// workerTimeout is the per-chunk deadline handed to workers.
	workerTimeout time.Duration

	mu  sync.Mutex
	gen int // generations dispatched, for chunk-key uniqueness
}

func (e *searchEvaluator) Scores(ctx context.Context, allocs [][]int) ([]float64, error) {
	e.mu.Lock()
	gen := e.gen
	e.gen++
	e.mu.Unlock()

	t := e.c.topology()
	shards := len(t.active)
	if shards < 1 {
		shards = 1 // doShard will walk the ring and report the failure
	}
	if shards > len(allocs) {
		shards = len(allocs)
	}
	chunks := core.ShardFeatures(len(allocs), shards)

	out := make([]float64, len(allocs))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for ci := range chunks {
		wg.Add(1)
		go func(ci int, idxs []int) {
			defer wg.Done()
			errs[ci] = e.scoreChunk(ctx, t, gen, ci, idxs, allocs, out)
		}(ci, chunks[ci])
	}
	wg.Wait()
	// Lowest-chunk-index error wins: deterministic regardless of which
	// worker failed first.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// scoreChunk evaluates one chunk of candidates on one worker (plus retries
// and hedges) and writes their combined radii into out at their global
// indices.
func (e *searchEvaluator) scoreChunk(ctx context.Context, t *topology, gen, ci int, idxs []int, allocs [][]int, out []float64) error {
	items := make([]server.BatchItemRequest, len(idxs))
	for k, i := range idxs {
		sys, err := makespan.New(e.m, allocs[i])
		if err != nil {
			return fmt.Errorf("candidate %d: %w", i, err)
		}
		doc, err := sys.AnalysisDoc(e.bound)
		if err != nil {
			return fmt.Errorf("candidate %d: %w", i, err)
		}
		items[k] = server.BatchItemRequest{Scenario: doc}
	}
	body, err := json.Marshal(server.BatchRequest{
		Items:     items,
		Weighting: "unweighted",
		Timeout:   e.workerTimeout.String(),
	})
	if err != nil {
		return err
	}
	key := "search/" + e.id + "/g" + strconv.Itoa(gen) + "/c" + strconv.Itoa(ci)
	res := e.c.doShard(ctx, t, key, "/v1/batch", body, e.rid)
	if res.err != nil {
		f := relayFailure{err: res.err}
		_, er := f.errorResponse(e.rid)
		return fmt.Errorf("generation %d chunk %d: %s", gen, ci, er.Error)
	}
	if res.status != http.StatusOK {
		f := relayFailure{status: res.status, body: res.body}
		_, er := f.errorResponse(e.rid)
		return fmt.Errorf("generation %d chunk %d: worker %s: %s", gen, ci, res.worker, er.Error)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(res.body, &br); err != nil {
		return fmt.Errorf("generation %d chunk %d: decoding batch response from %s: %w", gen, ci, res.worker, err)
	}
	if len(br.Results) != len(idxs) {
		return fmt.Errorf("generation %d chunk %d: worker %s returned %d results for %d items", gen, ci, res.worker, len(br.Results), len(idxs))
	}
	for k, i := range idxs {
		item := br.Results[k]
		if item.Error != "" {
			return fmt.Errorf("generation %d candidate %d: %s", gen, i, item.Error)
		}
		if item.Robustness == nil || item.Robustness.Value == nil {
			// The engine never scores infeasible candidates, so an
			// unbounded/absent combined radius here is a contract breach.
			return fmt.Errorf("generation %d candidate %d: worker %s returned no combined radius", gen, i, res.worker)
		}
		out[i] = *item.Robustness.Value
	}
	return nil
}

// searchFailure maps a non-client search error to (status, body): context
// errors keep the single-node kinds, everything else — a chunk no worker
// could serve, or a worker-reported evaluation error — is 502 upstream.
func searchFailure(err error, rid string) (int, server.ErrorResponse) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, server.ErrorResponse{Error: err.Error(), Kind: "deadline-exceeded", RequestID: rid}
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, server.ErrorResponse{Error: err.Error(), Kind: "cancelled", RequestID: rid}
	default:
		return http.StatusBadGateway, server.ErrorResponse{Error: err.Error(), Kind: "upstream", RequestID: rid}
	}
}

func (c *Coordinator) handleSearch(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.SearchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, opt, id, persist, err := server.ResolveSearchRequest(req, c.ckpts)
	if err != nil {
		if status, kind, ok := server.ResumeFailure(err); ok {
			c.stats.badRequests.Add(1)
			c.cfg.Logf("cluster: rid=%s search resume %q refused: %v", rid, req.ResumeID, err)
			writeJSON(w, status, server.ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
			return
		}
		c.badRequest(w, r, err)
		return
	}
	timeout, err := c.requestTimeout(persist.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}

	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return
	}
	defer finish()

	if id == "" {
		id = req.SearchID
	}
	if id == "" {
		id = rid
	}
	ev := &searchEvaluator{
		c:             c,
		m:             m,
		bound:         opt.Bound,
		id:            id,
		rid:           rid,
		workerTimeout: c.workerTimeout(timeout),
	}
	start := time.Now()
	res, err := server.ExecuteSearch(ctx, m, opt, ev, c.searches, id, rid, c.ckpts, persist)
	if err != nil {
		if status, kind, ok := server.ResumeFailure(err); ok {
			c.stats.failed.Add(1)
			writeJSON(w, status, server.ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
			return
		}
		if server.SearchBadRequest(err) {
			c.badRequest(w, r, err)
			return
		}
		c.stats.failed.Add(1)
		status, er := searchFailure(err, rid)
		c.cfg.Logf("cluster: rid=%s search id=%s failed: %s", rid, id, er.Error)
		writeJSON(w, status, er)
		return
	}
	c.stats.completed.Add(1)
	c.cfg.Logf("cluster: rid=%s search id=%s algo=%s gens=%d candidates=%d radiusEvals=%d elapsed=%.1fms",
		rid, id, res.Algo, res.Generations, res.Candidates, res.RadiusEvals,
		float64(time.Since(start).Microseconds())/1000)
	writeJSON(w, http.StatusOK, res)
}
