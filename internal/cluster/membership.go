package cluster

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Membership: the coordinator's view of its worker fleet. The worker list is
// static (configured at startup); what changes is each worker's health
// state, learned two ways:
//
//   - actively, from a background probe loop hitting every worker's /readyz
//     on a fixed interval (200 = up, 503 = draining, anything else or a
//     transport error = down);
//   - passively, from the scatter path (a transport error on a shard marks
//     the worker down immediately; a served request marks it back up).
//
// Every state transition increments the member's generation counter, so
// operators (and tests) can distinguish "has been up the whole time" from
// "flapped twelve times since you last looked" — /statz reports both.
//
// New members start optimistically up: the first scatter may race the first
// probe, and trying a worker that turns out to be down costs one retried
// shard, while refusing to use a healthy worker until probed costs
// availability.

// Worker health states.
const (
	stateUp int32 = iota
	stateDraining
	stateDown
)

func stateName(s int32) string {
	switch s {
	case stateUp:
		return "up"
	case stateDraining:
		return "draining"
	default:
		return "down"
	}
}

// member is one worker in the fleet.
type member struct {
	url string
	idx int // position in the worker list at the time it was added

	state   atomic.Int32
	gen     atomic.Uint64 // state transitions observed
	ewmaNs  atomic.Int64  // smoothed request latency, 0 = no sample yet
	leaving atomic.Bool   // RemoveWorker drain in progress: excluded from the ring

	sem chan struct{} // bounds in-flight requests to this worker
}

func newMember(url string, idx, maxInflight int) *member {
	return &member{url: url, idx: idx, sem: make(chan struct{}, maxInflight)}
}

// setState transitions the member, bumping the generation on change.
func (m *member) setState(s int32, logf func(string, ...any)) {
	if m.state.Swap(s) != s {
		m.gen.Add(1)
		logf("cluster: worker %s is %s (generation %d)", m.url, stateName(s), m.gen.Load())
	}
}

func (m *member) up() bool { return m.state.Load() == stateUp }

// acquire bounds the in-flight requests to this worker; ctx aborts the wait.
func (m *member) acquire(ctx context.Context) error {
	select {
	case m.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m *member) release() { <-m.sem }

// observe feeds one served request's latency into the member's EWMA (the
// adaptive hedge delay keys off it).
func (m *member) observe(elapsed time.Duration) {
	ns := elapsed.Nanoseconds()
	for {
		old := m.ewmaNs.Load()
		next := ns
		if old > 0 {
			next = (old*4 + ns) / 5
		}
		if m.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// probeOnce sweeps every member's /readyz once (against the topology
// current at sweep start; a mid-sweep rebalance is picked up next sweep).
func (c *Coordinator) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, m := range c.topology().members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.url+"/readyz", nil)
			if err != nil {
				m.setState(stateDown, c.cfg.Logf)
				return
			}
			resp, err := c.client.Do(req)
			if err != nil {
				m.setState(stateDown, c.cfg.Logf)
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				m.setState(stateUp, c.cfg.Logf)
			case http.StatusServiceUnavailable:
				m.setState(stateDraining, c.cfg.Logf)
			default:
				m.setState(stateDown, c.cfg.Logf)
			}
		}(m)
	}
	wg.Wait()
}

// ProbeNow runs one synchronous health sweep (tests and startup use it to
// avoid waiting out the probe interval).
func (c *Coordinator) ProbeNow(ctx context.Context) { c.probeOnce(ctx) }

// probeLoop is the background health prober; it stops when the coordinator's
// base context is cancelled (Close or drained shutdown).
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.base.Done():
			return
		case <-t.C:
			c.probeOnce(c.base)
		}
	}
}
