package cluster

import (
	"net/http"
	"time"

	"fepia/internal/server"
)

// handleMetrics renders the coordinator's counters in the Prometheus text
// exposition format (same hand-rolled writer the worker daemon uses).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	t := c.topology()
	breakers, trips := c.brk.Snapshot()
	c.mu.Lock()
	inflight, draining := c.inflight, c.draining
	c.mu.Unlock()

	var p server.PromBuf
	p.Header("fepiac_uptime_seconds", "gauge", "Coordinator uptime.")
	p.Metric("fepiac_uptime_seconds", time.Since(c.start).Seconds())
	p.Header("fepiac_draining", "gauge", "1 while graceful drain is in progress.")
	v := 0.0
	if draining {
		v = 1
	}
	p.Metric("fepiac_draining", v)
	p.Header("fepiac_inflight", "gauge", "Accepted requests not yet answered.")
	p.Metric("fepiac_inflight", float64(inflight))

	p.Header("fepiac_ring_generation", "gauge", "Topology generation (bumped by every join/leave publish).")
	p.Metric("fepiac_ring_generation", float64(t.gen))
	p.Header("fepiac_recovering", "gauge", "1 between a journal-recovered restart and ring convergence.")
	rec := 0.0
	if !c.recovered.Load() {
		rec = 1
	}
	p.Metric("fepiac_recovering", rec)
	p.Header("fepiac_ring_active_workers", "gauge", "Workers currently on the placement ring.")
	p.Metric("fepiac_ring_active_workers", float64(len(t.active)))
	p.Header("fepiac_joins_total", "counter", "Workers joined live via AddWorker.")
	p.Metric("fepiac_joins_total", float64(c.stats.joins.Load()))
	p.Header("fepiac_leaves_total", "counter", "Workers drained out live via RemoveWorker.")
	p.Metric("fepiac_leaves_total", float64(c.stats.leaves.Load()))

	if js := c.journalStatz(); js != nil {
		p.Header("fepiac_journal_appends_total", "counter", "Ring journal records durably appended.")
		p.Metric("fepiac_journal_appends_total", float64(js.Appends))
		p.Header("fepiac_journal_append_errors_total", "counter", "Failed ring journal appends.")
		p.Metric("fepiac_journal_append_errors_total", float64(js.AppendErrors))
		p.Header("fepiac_journal_compactions_total", "counter", "Ring journal compactions.")
		p.Metric("fepiac_journal_compactions_total", float64(js.Compactions))
		p.Header("fepiac_journal_corrupt_skipped_total", "counter", "Corrupt ring journal lines quarantined at replay.")
		p.Metric("fepiac_journal_corrupt_skipped_total", float64(js.CorruptSkipped))
		p.Header("fepiac_journal_stale_skipped_total", "counter", "Ring journal records skipped as stale (non-advancing generation).")
		p.Metric("fepiac_journal_stale_skipped_total", float64(js.StaleSkipped))
		p.Header("fepiac_journal_replayed_total", "counter", "Ring journal records replayed at the last boot.")
		p.Metric("fepiac_journal_replayed_total", float64(js.Replayed))
	}

	p.Header("fepiac_accepted_total", "counter", "Requests accepted.")
	p.Metric("fepiac_accepted_total", float64(c.stats.accepted.Load()))
	p.Header("fepiac_rejected_draining_total", "counter", "Requests rejected because drain had begun.")
	p.Metric("fepiac_rejected_draining_total", float64(c.stats.rejectedDraining.Load()))
	p.Header("fepiac_bad_requests_total", "counter", "Malformed or invalid requests (400).")
	p.Metric("fepiac_bad_requests_total", float64(c.stats.badRequests.Load()))
	p.Header("fepiac_completed_total", "counter", "Requests answered 200.")
	p.Metric("fepiac_completed_total", float64(c.stats.completed.Load()))
	p.Header("fepiac_failed_total", "counter", "Requests answered with an error status.")
	p.Metric("fepiac_failed_total", float64(c.stats.failed.Load()))

	p.Header("fepiac_shards_total", "counter", "Shard calls launched (including retries and hedges).")
	p.Metric("fepiac_shards_total", float64(c.stats.shards.Load()))
	p.Header("fepiac_hedges_total", "counter", "Shards re-issued by the hedge timer.")
	p.Metric("fepiac_hedges_total", float64(c.stats.hedges.Load()))
	p.Header("fepiac_retries_total", "counter", "Shards re-routed after a retryable failure.")
	p.Metric("fepiac_retries_total", float64(c.stats.retries.Load()))
	p.Header("fepiac_worker_errors_total", "counter", "Transport-level worker failures.")
	p.Metric("fepiac_worker_errors_total", float64(c.stats.workerErrors.Load()))

	if ws := c.watchStatz(); ws != nil {
		p.Header("fepiac_watch_active", "gauge", "Live watches with in-memory state.")
		p.Metric("fepiac_watch_active", float64(ws.Active))
		p.Header("fepiac_watch_created_total", "counter", "Watches created.")
		p.Metric("fepiac_watch_created_total", float64(ws.Created))
		p.Header("fepiac_watch_resumed_total", "counter", "Watches resumed from checkpoints after a restart.")
		p.Metric("fepiac_watch_resumed_total", float64(ws.Resumed))
		p.Header("fepiac_watch_closed_total", "counter", "Watches closed by clients.")
		p.Metric("fepiac_watch_closed_total", float64(ws.Closed))
		p.Header("fepiac_watch_updates_total", "counter", "Accepted watch updates.")
		p.Metric("fepiac_watch_updates_total", float64(ws.Updates))
		p.Header("fepiac_watch_structural_updates_total", "counter", "Updates that forced a full re-scatter.")
		p.Metric("fepiac_watch_structural_updates_total", float64(ws.Structural))
		p.Header("fepiac_watch_events_total", "counter", "Events journaled and fanned out.")
		p.Metric("fepiac_watch_events_total", float64(ws.Events))
		p.Header("fepiac_watch_lag_drops_total", "counter", "Subscriptions dropped for lagging behind the stream.")
		p.Metric("fepiac_watch_lag_drops_total", float64(ws.LagDrops))
		p.Header("fepiac_watch_shards_skipped_total", "counter", "Clean shards never scattered by delta updates.")
		p.Metric("fepiac_watch_shards_skipped_total", float64(ws.ShardsSkipped))
	}

	p.Header("fepiac_breaker_trips_total", "counter", "Coordinator breaker trips across all classes.")
	p.Metric("fepiac_breaker_trips_total", float64(trips))
	if len(breakers) > 0 {
		p.Header("fepiac_class_breaker_trips_total", "counter", "Per-class coordinator breaker trips.")
		for _, b := range breakers {
			p.Metric("fepiac_class_breaker_trips_total", float64(b.Trips), "class", b.Class)
		}
	}

	p.Header("fepiac_worker_up", "gauge", "1 when the worker's last observation was healthy.")
	p.Header("fepiac_worker_leaving", "gauge", "1 while the worker drains out of the ring.")
	p.Header("fepiac_worker_inflight", "gauge", "In-flight shards held by the worker.")
	p.Header("fepiac_worker_generation", "counter", "Health-state transitions observed for the worker.")
	for _, m := range t.members {
		up := 0.0
		if m.up() {
			up = 1
		}
		leaving := 0.0
		if m.leaving.Load() {
			leaving = 1
		}
		p.Metric("fepiac_worker_up", up, "worker", m.url)
		p.Metric("fepiac_worker_leaving", leaving, "worker", m.url)
		p.Metric("fepiac_worker_inflight", float64(len(m.sem)), "worker", m.url)
		p.Metric("fepiac_worker_generation", float64(m.gen.Load()), "worker", m.url)
	}

	p.WriteTo(w)
}
