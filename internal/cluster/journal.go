package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"fepia/internal/durable"
)

// The ring journal makes topology administration durable: every join, leave,
// and snapshot is appended — checksummed and generation-stamped — to
// <state-dir>/ring.journal, and a restarted coordinator replays the file to
// recover the admin-configured fleet instead of falling back to the static
// -workers flag.
//
// Format: one JSON object per line, each wrapping a record with a kind tag,
// a format version, and an FNV-1a/64 checksum of the record bytes. A line
// that fails any check (shape, checksum, kind, unparseable record) marks the
// start of a corrupt tail: the tail's bytes are moved to
// ring.journal.quarantined (best-effort, for post-mortem), its lines are
// counted, and the journal is immediately compacted so the next boot reads a
// clean file. Records whose generation does not advance past the fold's
// (duplicates from a crashed append, replayed lines) are counted stale and
// skipped. Corruption is never fatal — the worst case is recovering an older
// ring, which the recovery probe loop then reconciles against reality.
//
// Compaction rewrites the file as a single snapshot line via the shared
// atomic-write discipline (internal/durable) once the live file grows past
// journalCompactAfter lines, so the journal's size is bounded by churn rate,
// not uptime.

const (
	journalKind    = "fepia-ring-journal"
	journalVersion = 1
	journalFile    = "ring.journal"

	// journal operations
	opJoin     = "join"
	opLeave    = "leave"
	opSnapshot = "snapshot"

	// journalCompactAfter is the live-line count that triggers an automatic
	// compaction on the next append.
	journalCompactAfter = 256
)

// journalLine is the on-disk shape of one journal entry.
type journalLine struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	// Sum is FNV-1a/64 of the raw Rec bytes, hex-encoded.
	Sum string          `json:"sum"`
	Rec json.RawMessage `json:"rec"`
}

// journalRecord is one topology admin event.
type journalRecord struct {
	// Seq orders records within the file; Gen is the topology generation the
	// event produced (the fold skips records that do not advance it).
	Seq uint64 `json:"seq"`
	Gen uint64 `json:"gen"`
	// Op is join, leave, or snapshot.
	Op string `json:"op"`
	// URL is the worker joining/leaving (empty for snapshot).
	URL string `json:"url,omitempty"`
	// Members is the full membership (snapshot only).
	Members []string `json:"members,omitempty"`
}

// JournalStats are the journal's monotonic counters.
type JournalStats struct {
	Appends        uint64 `json:"appends"`
	AppendErrors   uint64 `json:"appendErrors"`
	Compactions    uint64 `json:"compactions"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	StaleSkipped   uint64 `json:"staleSkipped"`
	Replayed       uint64 `json:"replayed"`
}

// Journal is the durable ring-membership log. All methods are safe for
// concurrent use.
type Journal struct {
	path string
	logf func(format string, args ...any)

	mu        sync.Mutex
	f         *os.File // O_APPEND handle; nil after Close
	closed    bool
	seq       uint64
	gen       uint64
	members   []string
	lines     int  // live lines on disk, for the compaction trigger
	recovered bool // replay applied at least one record
	stats     JournalStats
}

// OpenJournal opens (creating if needed) the ring journal under dir and
// replays it. Corrupt content is quarantined and compacted away; only an
// unusable directory or file handle is an error.
func OpenJournal(dir string, logf func(format string, args ...any)) (*Journal, error) {
	if dir == "" {
		return nil, fmt.Errorf("cluster: journal dir is empty")
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: opening journal: %w", err)
	}
	// Sweep temp files left by a crash mid-compaction; they were never the
	// live journal.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if !e.IsDir() && strings.HasPrefix(e.Name(), ".journal-") {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	j := &Journal{path: filepath.Join(dir, journalFile), logf: logf}
	corrupt := j.replay()
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening journal: %w", err)
	}
	j.f = f
	if corrupt {
		// Rewrite a clean single-snapshot file so the next boot replays no
		// quarantine path.
		j.mu.Lock()
		if err := j.compactLocked(); err != nil {
			logf("cluster: journal compaction after quarantine failed: %v", err)
		}
		j.mu.Unlock()
	}
	return j, nil
}

// replay folds the on-disk journal into memory. Returns whether a corrupt
// tail was found (and quarantined).
func (j *Journal) replay() bool {
	data, err := os.ReadFile(j.path)
	if err != nil {
		return false // no file yet (or unreadable: treated as empty)
	}
	offset := 0
	for offset < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		end := len(data)
		if nl >= 0 {
			end = offset + nl
		}
		line := bytes.TrimSpace(data[offset:end])
		if len(line) == 0 {
			offset = end + 1
			continue
		}
		rec, err := decodeJournalLine(line)
		if err != nil {
			j.quarantineTail(data[offset:])
			return true
		}
		j.stats.Replayed++
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		if j.recovered && rec.Gen <= j.gen {
			// A duplicate generation (torn re-append, replayed line) must not
			// rewind or re-apply membership.
			j.stats.StaleSkipped++
			j.lines++
			offset = end + 1
			continue
		}
		j.apply(rec)
		j.lines++
		offset = end + 1
	}
	return false
}

// decodeJournalLine verifies one line end to end.
func decodeJournalLine(line []byte) (journalRecord, error) {
	var jl journalLine
	var rec journalRecord
	if err := json.Unmarshal(line, &jl); err != nil {
		return rec, fmt.Errorf("cluster: journal line: %w", err)
	}
	if jl.Kind != journalKind || jl.Version != journalVersion {
		return rec, fmt.Errorf("cluster: journal line kind/version %q/%d, want %q/%d", jl.Kind, jl.Version, journalKind, journalVersion)
	}
	if got := durable.Checksum(jl.Rec); got != jl.Sum {
		return rec, fmt.Errorf("cluster: journal line checksum %s, recorded %s", got, jl.Sum)
	}
	if err := json.Unmarshal(jl.Rec, &rec); err != nil {
		return rec, fmt.Errorf("cluster: journal record: %w", err)
	}
	switch rec.Op {
	case opJoin, opLeave:
		if rec.URL == "" {
			return rec, fmt.Errorf("cluster: journal %s record without url", rec.Op)
		}
	case opSnapshot:
	default:
		return rec, fmt.Errorf("cluster: journal record op %q unknown", rec.Op)
	}
	return rec, nil
}

// apply folds one verified record into the membership.
func (j *Journal) apply(rec journalRecord) {
	switch rec.Op {
	case opSnapshot:
		j.members = append([]string(nil), rec.Members...)
	case opJoin:
		for _, u := range j.members {
			if u == rec.URL {
				j.stats.StaleSkipped++
				j.gen = rec.Gen
				j.recovered = true
				return
			}
		}
		j.members = append(j.members, rec.URL)
	case opLeave:
		kept := j.members[:0]
		found := false
		for _, u := range j.members {
			if u == rec.URL {
				found = true
				continue
			}
			kept = append(kept, u)
		}
		j.members = kept
		if !found {
			j.stats.StaleSkipped++
		}
	}
	j.gen = rec.Gen
	j.recovered = true
}

// quarantineTail moves the corrupt suffix to <journal>.quarantined
// (appending, best-effort) and counts its lines.
func (j *Journal) quarantineTail(tail []byte) {
	for _, line := range bytes.Split(tail, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) > 0 {
			j.stats.CorruptSkipped++
		}
	}
	q, err := os.OpenFile(j.path+".quarantined", os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err == nil {
		_, _ = q.Write(tail)
		_ = q.Close()
	}
	j.logf("cluster: journal: quarantined %d corrupt line(s)", j.stats.CorruptSkipped)
}

// Recovered reports the replayed membership and generation; ok is false when
// the journal had no applied records (fresh state dir).
func (j *Journal) Recovered() (members []string, gen uint64, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.recovered {
		return nil, 0, false
	}
	return append([]string(nil), j.members...), j.gen, true
}

// Members returns the current membership fold.
func (j *Journal) Members() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.members...)
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Append durably logs one join/leave event at the given generation and folds
// it into the in-memory membership. The write is fsynced before Append
// returns; once the file crosses the compaction threshold it is rewritten as
// a single snapshot.
func (j *Journal) Append(op, url string, gen uint64) error {
	return j.append(journalRecord{Op: op, URL: url, Gen: gen})
}

// AppendSnapshot durably logs the full membership at the given generation.
func (j *Journal) AppendSnapshot(members []string, gen uint64) error {
	return j.append(journalRecord{Op: opSnapshot, Members: append([]string(nil), members...), Gen: gen})
}

func (j *Journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("cluster: journal is closed")
	}
	j.seq++
	rec.Seq = j.seq
	line, err := encodeJournalLine(rec)
	if err != nil {
		j.stats.AppendErrors++
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		j.stats.AppendErrors++
		return fmt.Errorf("cluster: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.stats.AppendErrors++
		return fmt.Errorf("cluster: journal append: %w", err)
	}
	j.stats.Appends++
	j.apply(rec)
	j.lines++
	if j.lines > journalCompactAfter {
		if err := j.compactLocked(); err != nil {
			j.logf("cluster: journal auto-compaction failed: %v", err)
		}
	}
	return nil
}

func encodeJournalLine(rec journalRecord) ([]byte, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal append: %w", err)
	}
	line, err := json.Marshal(journalLine{
		Kind:    journalKind,
		Version: journalVersion,
		Sum:     durable.Checksum(raw),
		Rec:     raw,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: journal append: %w", err)
	}
	return append(line, '\n'), nil
}

// Compact rewrites the journal as a single snapshot of the current fold.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("cluster: journal is closed")
	}
	return j.compactLocked()
}

// compactLocked atomically replaces the file with one snapshot line and
// swaps the append handle onto it. Caller holds j.mu.
func (j *Journal) compactLocked() error {
	j.seq++
	line, err := encodeJournalLine(journalRecord{
		Seq:     j.seq,
		Gen:     j.gen,
		Op:      opSnapshot,
		Members: append([]string(nil), j.members...),
	})
	if err != nil {
		return err
	}
	if err := durable.WriteFileAtomic(j.path, line, ".journal-*"); err != nil {
		return fmt.Errorf("cluster: journal compaction: %w", err)
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: journal compaction: %w", err)
	}
	if j.f != nil {
		_ = j.f.Close()
	}
	j.f = f
	j.lines = 1
	j.stats.Compactions++
	return nil
}

// JournalStatz is the ring journal's section of the coordinator's /statz.
type JournalStatz struct {
	Path           string `json:"path"`
	Generation     uint64 `json:"generation"`
	Members        int    `json:"members"`
	Appends        uint64 `json:"appends"`
	AppendErrors   uint64 `json:"appendErrors"`
	Compactions    uint64 `json:"compactions"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	StaleSkipped   uint64 `json:"staleSkipped"`
	Replayed       uint64 `json:"replayed"`
}

// journalStatz snapshots the journal section; nil when no state dir is
// configured.
func (c *Coordinator) journalStatz() *JournalStatz {
	j := c.journal
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JournalStatz{
		Path:           j.path,
		Generation:     j.gen,
		Members:        len(j.members),
		Appends:        j.stats.Appends,
		AppendErrors:   j.stats.AppendErrors,
		Compactions:    j.stats.Compactions,
		CorruptSkipped: j.stats.CorruptSkipped,
		StaleSkipped:   j.stats.StaleSkipped,
		Replayed:       j.stats.Replayed,
	}
}

// Close releases the append handle. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f != nil {
		err := j.f.Close()
		j.f = nil
		return err
	}
	return nil
}
