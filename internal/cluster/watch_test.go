package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fepia/internal/scenario"
	"fepia/internal/server"
)

// cwatchDoc has four features that partition cleanly by parameter: features
// 0 and 1 depend only on param 0, features 2 and 3 only on param 1. With
// three workers the shard partition is [0,1],[2],[3], so a param-1 update
// dirties exactly features 2 and 3 and must skip the first shard entirely.
func cwatchDoc() scenario.AnalysisDoc {
	return scenario.AnalysisDoc{
		Params: []scenario.AnalysisParam{
			{Name: "load", Unit: "jobs", Orig: []float64{1, 2}},
			{Name: "mem", Unit: "gb", Orig: []float64{4}},
		},
		Features: []scenario.AnalysisFeature{
			{Name: "lat", Max: f64(40), Coeffs: [][]float64{{2, 3}, {0}}},
			{Name: "cpu", Max: f64(25), Coeffs: [][]float64{{1, 4}, {0}}},
			{Name: "mult", Impact: scenario.ImpactMultiplicative,
				Max: f64(100), Scale: 1, Pows: [][]float64{{0, 0}, {1}}},
			{Name: "swap", Max: f64(60), Coeffs: [][]float64{{0, 0}, {3}}},
		},
	}
}

// cwSSE reads one open coordinator /v1/watch stream frame by frame.
type cwSSE struct {
	resp *http.Response
	br   *bufio.Reader
}

func openCWatch(t *testing.T, baseURL string, req server.WatchRequest) *cwSSE {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch open = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch stream content type %q", ct)
	}
	c := &cwSSE{resp: resp, br: bufio.NewReader(resp.Body)}
	t.Cleanup(c.close)
	return c
}

func (c *cwSSE) frame(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended mid-frame: %v (partial %q)", err, b.String())
		}
		b.WriteString(line)
		if line == "\n" {
			return b.String()
		}
	}
}

func (c *cwSSE) close() { c.resp.Body.Close() }

func docPtr(d scenario.AnalysisDoc) *scenario.AnalysisDoc { return &d }

// TestClusterWatchDeltaMatchesCold pins the coordinator's delta contract: a
// partial update scatters only the dirty shards, yet the merged result is
// bit-identical to a cold full evaluation of the successor document.
func TestClusterWatchDeltaMatchesCold(t *testing.T) {
	_, coord, front := newFleet(t, 3, nil)
	c := openCWatch(t, front.URL, server.WatchRequest{ID: "cw-basic", Scenario: docPtr(cwatchDoc())})

	if snap := c.frame(t); !strings.HasPrefix(snap, "id: 1\nevent: snapshot\n") {
		t.Fatalf("first frame is not the snapshot: %q", snap)
	}

	// Move param 1 only: features 2 and 3 dirty, shard [0,1] never scattered.
	resp, body := postJSON(t, front.URL+"/v1/watch/update", server.WatchUpdateRequest{
		Watch: "cw-basic", Params: [][]float64{{1, 2}, {5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d, body %s", resp.StatusCode, body)
	}
	var up server.WatchUpdateResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Seq != 2 || up.Structural {
		t.Fatalf("update seq=%d structural=%v, want seq=2 structural=false", up.Seq, up.Structural)
	}
	if len(up.Dirty) != 2 || up.Dirty[0] != 2 || up.Dirty[1] != 3 || up.Clean != 2 {
		t.Fatalf("update dirty=%v clean=%d, want dirty=[2 3] clean=2", up.Dirty, up.Clean)
	}

	deltaFrame := c.frame(t)
	if !strings.HasPrefix(deltaFrame, "id: 2\nevent: delta\n") {
		t.Fatalf("second frame is not the delta: %q", deltaFrame)
	}
	if !strings.Contains(deltaFrame, `"dirty":[2,3]`) {
		t.Fatalf("delta frame does not carry the dirty set: %q", deltaFrame)
	}
	if strings.Contains(deltaFrame, `"cluster"`) || strings.Contains(deltaFrame, `"workers"`) {
		t.Fatalf("delta frame leaks provenance (breaks resume byte-identity): %q", deltaFrame)
	}

	succ := cwatchDoc()
	succ.Params[1].Orig = []float64{5}
	coldResp, coldBody := postJSON(t, front.URL+"/v1/robustness", server.EvalRequest{Scenario: succ})
	if coldResp.StatusCode != http.StatusOK {
		t.Fatalf("cold eval = %d, body %s", coldResp.StatusCode, coldBody)
	}
	var cold server.EvalResponse
	if err := json.Unmarshal(coldBody, &cold); err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(up.Robustness)
	jb, _ := json.Marshal(cold.Robustness)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("delta update diverged from cold cluster evaluation:\n%s\n%s", ja, jb)
	}

	ws := coord.watchStatz()
	if ws.Active != 1 || ws.Created != 1 || ws.Updates != 1 {
		t.Fatalf("watch statz: %+v", ws)
	}
	if ws.ShardsSkipped != 1 {
		t.Fatalf("shards skipped = %d, want 1 (the clean [0,1] shard)", ws.ShardsSkipped)
	}
}

// TestClusterWatchResumeByteIdentical restarts the coordinator (crash
// analog: Close with no drain) against the same live workers and state dir;
// a resumed subscription must replay the exact bytes of the uninterrupted
// stream, and the chain keeps advancing afterwards.
func TestClusterWatchResumeByteIdentical(t *testing.T) {
	stateDir := t.TempDir()
	workers, coord, front := newFleet(t, 3, func(cfg *Config) {
		cfg.StateDir = stateDir
	})
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.URL
	}

	c1 := openCWatch(t, front.URL, server.WatchRequest{ID: "cw-resume", Scenario: docPtr(cwatchDoc())})
	var control []string
	control = append(control, c1.frame(t))
	for _, mem := range []float64{5, 4.5} {
		resp, body := postJSON(t, front.URL+"/v1/watch/update", server.WatchUpdateRequest{
			Watch: "cw-resume", Params: [][]float64{{1, 2}, {mem}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update = %d, body %s", resp.StatusCode, body)
		}
		control = append(control, c1.frame(t))
	}
	c1.close()
	coord.Close()
	front.Close()

	coord2, err := New(Config{
		Workers:        urls,
		StateDir:       stateDir,
		EnableChaos:    true,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitForRecovery(t, coord2)
	front2 := httptest.NewServer(coord2.Handler())
	// LIFO cleanup: cancel the coordinator first so streaming handlers
	// unblock before the httptest server waits them out.
	t.Cleanup(front2.Close)
	t.Cleanup(coord2.Close)

	c2 := openCWatch(t, front2.URL, server.WatchRequest{ID: "cw-resume"})
	for i, want := range control {
		if got := c2.frame(t); got != want {
			t.Fatalf("resumed frame %d differs:\n%q\n%q", i+1, got, want)
		}
	}
	if ws := coord2.watchStatz(); ws.Resumed != 1 {
		t.Fatalf("resume not counted: %+v", ws)
	}

	// The resumed chain keeps advancing: a new update reuses the resumed
	// radii and fans out to the live subscription.
	resp, body := postJSON(t, front2.URL+"/v1/watch/update", server.WatchUpdateRequest{
		Watch: "cw-resume", Params: [][]float64{{1, 2}, {6}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-resume update = %d, body %s", resp.StatusCode, body)
	}
	if got := c2.frame(t); !strings.HasPrefix(got, "id: 4\nevent: delta\n") {
		t.Fatalf("post-resume live frame: %q", got)
	}
}

func TestClusterWatchClose(t *testing.T) {
	_, _, front := newFleet(t, 2, nil)
	c := openCWatch(t, front.URL, server.WatchRequest{ID: "cw-close", Scenario: docPtr(cwatchDoc())})
	c.frame(t)

	resp, body := postJSON(t, front.URL+"/v1/watch/close", server.WatchCloseRequest{Watch: "cw-close"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close = %d, body %s", resp.StatusCode, body)
	}
	if _, err := io.ReadAll(c.resp.Body); err != nil {
		t.Fatalf("reading closed stream: %v", err)
	}
	resp, body = postJSON(t, front.URL+"/v1/watch/update", server.WatchUpdateRequest{
		Watch: "cw-close", Params: [][]float64{{1, 2}, {5}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("update after close = %d, body %s", resp.StatusCode, body)
	}
}
