package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// Live ring rebalancing. The fleet is no longer fixed at startup: workers
// join and leave while the coordinator serves, and scenario classes re-home
// across the ring without a restart and without breaking the bit-identity
// guarantee (shards are deterministic, so WHERE a shard runs never changes
// WHAT it returns — rebalancing only moves cache warmth).
//
// The mechanism is an immutable topology snapshot behind an atomic pointer:
//
//   - Readers (scatter, candidates, /statz, /readyz) load the snapshot once
//     per request and use it throughout. A shard's whole attempt sequence —
//     primary, retries, hedge — runs against ONE topology, so a concurrent
//     rebalance can never hand the hedge a different candidate list than
//     the primary attempt saw (hedging-safety).
//   - Writers (AddWorker / RemoveWorker) are serialized by topoMu, build a
//     new snapshot with the generation bumped, and publish it with one
//     atomic store. There is no lock on the request path.
//
// Handoff semantics:
//
//   - Join is probe-then-cutover: the candidate worker's /readyz is polled
//     until it answers 200 (bounded by the caller's context), and only then
//     does the new topology — whose ring re-homes the classes adjacent to
//     the new worker's vnodes — get published. Traffic never cuts over to a
//     worker that was not observed ready.
//   - Leave is drain-then-cutover: the member is first marked leaving, and
//     an intermediate topology is published whose ring excludes it (new
//     work re-homes immediately) but whose member list still carries it
//     (operators see it draining in /statz). The coordinator then waits for
//     the member's in-flight shards to finish before publishing the final
//     topology without it. In-flight work holds *member references, so even
//     a timed-out drain strands nothing.

// topology is one immutable fleet snapshot.
type topology struct {
	gen     uint64
	members []*member // everyone, including leaving members (visibility)
	active  []*member // ring-eligible members (not leaving)
	ring    *ring     // over active
}

// newTopology assembles a snapshot from a full member list.
func newTopology(gen uint64, members []*member, vnodes int) *topology {
	active := make([]*member, 0, len(members))
	for _, m := range members {
		if !m.leaving.Load() {
			active = append(active, m)
		}
	}
	return &topology{gen: gen, members: members, active: active, ring: newRing(active, vnodes)}
}

// topology returns the current snapshot. Use one snapshot per request.
func (c *Coordinator) topology() *topology {
	return c.topo.Load()
}

// candidates returns the ordered workers to try for a key: the ring's
// primary if it is up, then every other up active worker in rendezvous
// order. When no active worker is up at all it returns the full rendezvous
// order anyway — health state may be stale, and trying beats failing
// without a request.
func (t *topology) candidates(key string) []*member {
	out := make([]*member, 0, len(t.active))
	prim := t.ring.primary(key)
	if prim != nil && prim.up() {
		out = append(out, prim)
	}
	order := rendezvousOrder(key, t.active)
	for _, m := range order {
		if m != prim && m.up() {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		out = order
	}
	return out
}

// findMember locates a member by URL in a snapshot.
func (t *topology) findMember(url string) *member {
	for _, m := range t.members {
		if m.url == url {
			return m
		}
	}
	return nil
}

// publish installs a new snapshot built from the given member list, bumping
// the generation. Caller holds c.topoMu.
func (c *Coordinator) publish(members []*member) *topology {
	next := newTopology(c.topo.Load().gen+1, members, c.cfg.VNodes)
	c.topo.Store(next)
	return next
}

// probeReady polls one worker's /readyz until it answers 200, the retry
// budget runs out, or ctx expires. Used by AddWorker's probe-then-cutover.
func (c *Coordinator) probeReady(ctx context.Context, url string) error {
	var lastErr error
	for {
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/readyz", nil)
		if err != nil {
			cancel()
			return fmt.Errorf("cluster: probing %s: %w", url, err)
		}
		resp, err := c.client.Do(req)
		cancel()
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz answered %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: worker %s never became ready: %v (last: %v)", url, ctx.Err(), lastErr)
		case <-time.After(c.cfg.ProbeTimeout / 4):
		}
	}
}

// AddWorker joins a worker to the fleet: probe its /readyz until it answers
// ready (bounded by ctx), then publish a new topology whose ring includes
// it. Returns the new topology generation.
func (c *Coordinator) AddWorker(ctx context.Context, url string) (uint64, error) {
	if url == "" {
		return 0, fmt.Errorf("cluster: join: empty worker url")
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	cur := c.topo.Load()
	if m := cur.findMember(url); m != nil {
		return 0, fmt.Errorf("cluster: join: %s is already a member", url)
	}
	if _, ok := ctx.Deadline(); !ok {
		// Never ready-poll forever on a deadline-less caller.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, 10*c.cfg.ProbeTimeout)
		defer cancel()
	}
	if err := c.probeReady(ctx, url); err != nil {
		return 0, err
	}
	m := newMember(url, len(cur.members), c.cfg.MaxInflightPerWorker)
	members := append(append([]*member{}, cur.members...), m)
	next := c.publish(members)
	c.stats.joins.Add(1)
	c.journalAppend(opJoin, url, next.gen)
	c.cfg.Logf("cluster: worker %s joined (generation %d, %d active)", url, next.gen, len(next.active))
	return next.gen, nil
}

// RemoveWorker drains a worker out of the fleet: mark it leaving, publish an
// intermediate topology whose ring excludes it (new shards re-home at once),
// wait — bounded by ctx — for its in-flight shards to finish, then publish
// the final topology without it. The member is removed even if the drain
// wait times out (its in-flight work holds the *member and completes
// normally); the returned error reports the incomplete drain.
func (c *Coordinator) RemoveWorker(ctx context.Context, url string) (uint64, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	cur := c.topo.Load()
	m := cur.findMember(url)
	if m == nil {
		return 0, fmt.Errorf("cluster: leave: %s is not a member", url)
	}
	if len(cur.active) <= 1 && !m.leaving.Load() {
		return 0, fmt.Errorf("cluster: leave: %s is the last active worker", url)
	}

	// Cutover: re-home the member's classes before touching its in-flight
	// work.
	m.leaving.Store(true)
	mid := c.publish(cur.members)
	c.cfg.Logf("cluster: worker %s draining out (generation %d)", url, mid.gen)

	// Drain: wait for the member's in-flight shards to finish.
	var drainErr error
	for len(m.sem) > 0 {
		select {
		case <-ctx.Done():
			drainErr = fmt.Errorf("cluster: leave: %s removed with %d shard(s) still in flight: %w", url, len(m.sem), ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
		if drainErr != nil {
			break
		}
	}

	members := make([]*member, 0, len(cur.members)-1)
	for _, mm := range cur.members {
		if mm != m {
			members = append(members, mm)
		}
	}
	next := c.publish(members)
	c.stats.leaves.Add(1)
	c.journalAppend(opLeave, url, next.gen)
	c.cfg.Logf("cluster: worker %s left (generation %d, %d active)", url, next.gen, len(next.active))
	return next.gen, drainErr
}
