package cluster

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fepia/internal/server"
)

// buildJournal writes a known event sequence and closes the journal:
// snapshot {a,b}@1, join c@2, leave a@3. Final fold: {b,c} at generation 3.
func buildJournal(t *testing.T, dir string) {
	t.Helper()
	j, err := OpenJournal(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSnapshot([]string{"http://a", "http://b"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(opJoin, "http://c", 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(opLeave, "http://a", 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func sameMembers(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("members: got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("members: got %v, want %v", got, want)
		}
	}
}

func TestJournalReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	buildJournal(t, dir)
	j, err := OpenJournal(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	members, gen, ok := j.Recovered()
	if !ok {
		t.Fatal("journal with records reported nothing recovered")
	}
	sameMembers(t, members, []string{"http://b", "http://c"})
	if gen != 3 {
		t.Fatalf("generation: got %d, want 3", gen)
	}
	st := j.Stats()
	if st.Replayed != 3 || st.CorruptSkipped != 0 || st.StaleSkipped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestJournalEmptyRecoversNothing(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, _, ok := j.Recovered(); ok {
		t.Fatal("empty journal claimed a recovered membership")
	}
}

// TestJournalSurvivesCorruption is the chaos matrix from the issue: every
// mutation must quarantine (count, never fail open) and recover the intact
// prefix.
func TestJournalSurvivesCorruption(t *testing.T) {
	cases := []struct {
		name        string
		mutate      func(t *testing.T, dir string, data []byte) []byte
		wantMembers []string
		wantGen     uint64
		wantCorrupt uint64 // minimum corrupt-skipped count
		wantStale   uint64
	}{
		{
			// Chop the file mid-way through the final line: the leave is
			// lost, the prefix (snapshot + join) survives.
			name: "truncated tail",
			mutate: func(t *testing.T, _ string, data []byte) []byte {
				return data[:len(data)-10]
			},
			wantMembers: []string{"http://a", "http://b", "http://c"},
			wantGen:     2,
			wantCorrupt: 1,
		},
		{
			// Flip one checksum hex digit on the last line: valid JSON, only
			// the checksum catches it.
			name: "flipped checksum byte",
			mutate: func(t *testing.T, _ string, data []byte) []byte {
				lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
				last := string(lines[len(lines)-1])
				i := strings.Index(last, `"sum":"`)
				if i < 0 {
					t.Fatal("no sum field in journal line")
				}
				b := []byte(last)
				pos := i + len(`"sum":"`)
				if b[pos] == '0' {
					b[pos] = '1'
				} else {
					b[pos] = '0'
				}
				lines[len(lines)-1] = b
				return append(bytes.Join(lines, []byte{'\n'}), '\n')
			},
			wantMembers: []string{"http://a", "http://b", "http://c"},
			wantGen:     2,
			wantCorrupt: 1,
		},
		{
			// Re-append the final line verbatim (a torn retry): same
			// generation must not re-apply.
			name: "duplicate generation",
			mutate: func(t *testing.T, _ string, data []byte) []byte {
				lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
				dup := lines[len(lines)-1]
				return append(append(data, dup...), '\n')
			},
			wantMembers: []string{"http://b", "http://c"},
			wantGen:     3,
			wantStale:   1,
		},
		{
			// A crash mid-compaction: a stray temp file holds a partial
			// snapshot line and garbage trails the live journal. The temp is
			// swept, the garbage quarantined, the fold intact.
			name: "interleaved partial compaction",
			mutate: func(t *testing.T, dir string, data []byte) []byte {
				temp := filepath.Join(dir, ".journal-123456")
				if err := os.WriteFile(temp, data[:len(data)/3], 0o644); err != nil {
					t.Fatal(err)
				}
				return append(data, []byte(`{"kind":"fepia-ring-jo`)...)
			},
			wantMembers: []string{"http://b", "http://c"},
			wantGen:     3,
			wantCorrupt: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			buildJournal(t, dir)
			path := filepath.Join(dir, journalFile)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mutate(t, dir, data), 0o644); err != nil {
				t.Fatal(err)
			}

			j, err := OpenJournal(dir, t.Logf)
			if err != nil {
				t.Fatalf("corruption was fatal: %v", err)
			}
			members, gen, ok := j.Recovered()
			if !ok {
				t.Fatal("nothing recovered")
			}
			sameMembers(t, members, c.wantMembers)
			if gen != c.wantGen {
				t.Fatalf("generation: got %d, want %d", gen, c.wantGen)
			}
			st := j.Stats()
			if st.CorruptSkipped < c.wantCorrupt {
				t.Fatalf("corruptSkipped: got %d, want >= %d", st.CorruptSkipped, c.wantCorrupt)
			}
			if st.StaleSkipped != c.wantStale {
				t.Fatalf("staleSkipped: got %d, want %d", st.StaleSkipped, c.wantStale)
			}
			if c.wantCorrupt > 0 {
				if _, err := os.Stat(path + ".quarantined"); err != nil {
					t.Fatalf("quarantine file: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			// No temp files survive an open.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasPrefix(e.Name(), ".journal-") {
					t.Fatalf("stray temp file %s survived", e.Name())
				}
			}

			// The post-quarantine compaction left a clean file: a third open
			// replays with zero corruption and the same fold.
			j2, err := OpenJournal(dir, t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			members2, gen2, ok := j2.Recovered()
			if !ok {
				t.Fatal("nothing recovered on second reopen")
			}
			sameMembers(t, members2, c.wantMembers)
			if gen2 != c.wantGen {
				t.Fatalf("second reopen generation: got %d, want %d", gen2, c.wantGen)
			}
			if st2 := j2.Stats(); st2.CorruptSkipped != 0 {
				t.Fatalf("second reopen still corrupt: %+v", st2)
			}
		})
	}
}

func TestJournalAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSnapshot([]string{"http://a"}, 1); err != nil {
		t.Fatal(err)
	}
	// Alternate joins and leaves of a churning member to cross the
	// compaction threshold without growing the membership.
	gen := uint64(1)
	for i := 0; i < journalCompactAfter+10; i += 2 {
		gen++
		if err := j.Append(opJoin, "http://churn", gen); err != nil {
			t.Fatal(err)
		}
		gen++
		if err := j.Append(opLeave, "http://churn", gen); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d appends: %+v", st.Appends, st)
	}
	if j.lines > journalCompactAfter+1 {
		t.Fatalf("journal still holds %d live lines after compaction", j.lines)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	members, gotGen, ok := j2.Recovered()
	if !ok {
		t.Fatal("nothing recovered after compaction")
	}
	sameMembers(t, members, []string{"http://a"})
	if gotGen != gen {
		t.Fatalf("generation: got %d, want %d", gotGen, gen)
	}
}

// TestCoordinatorRecoversJournaledRing proves the tentpole behavior end to
// end at the cluster layer: a coordinator restarted with the same state dir
// serves the journaled (post-join) ring even when started with a different
// static worker list, gates /readyz on convergence, and lifts the gate once
// a journaled member probes up.
func TestCoordinatorRecoversJournaledRing(t *testing.T) {
	stateDir := t.TempDir()
	workers, coord, _ := newFleet(t, 2, func(cfg *Config) {
		cfg.StateDir = stateDir
	})

	// Grow the fleet live so the journal diverges from the static list.
	extra := newTestWorker(t)
	ctx, cancel := contextWithTestTimeout(t)
	defer cancel()
	if _, err := coord.AddWorker(ctx, extra.URL); err != nil {
		t.Fatal(err)
	}
	wantGen := coord.topology().gen
	coord.Close() // crash analog: no drain, no cleanup

	// Restart with the stale static list: the journal must win.
	cfg := Config{
		Workers:        []string{workers[0].URL}, // stale
		StateDir:       stateDir,
		EnableChaos:    true,
		HealthInterval: 50 * time.Millisecond,
		ProbeTimeout:   200 * time.Millisecond,
	}
	coord2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if !coord2.fromJournal {
		t.Fatal("restarted coordinator ignored the journal")
	}
	topo := coord2.topology()
	if topo.gen != wantGen {
		t.Fatalf("recovered generation: got %d, want %d", topo.gen, wantGen)
	}
	var urls []string
	for _, m := range topo.members {
		urls = append(urls, m.url)
	}
	sameMembers(t, urls, []string{workers[0].URL, workers[1].URL, extra.URL})

	// The gate lifts once recovery converges (workers are live).
	waitForRecovery(t, coord2)
}

// TestCoordinatorRecoveryGate pins /readyz 503 "recovering" while every
// journaled member is unreachable, through to the RecoveryTimeout lapse.
func TestCoordinatorRecoveryGate(t *testing.T) {
	stateDir := t.TempDir()
	// Journal a fleet of one unreachable worker.
	j, err := OpenJournal(stateDir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSnapshot([]string{"http://127.0.0.1:1"}, 5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	coord, err := New(Config{
		StateDir:        stateDir,
		HealthInterval:  50 * time.Millisecond,
		ProbeTimeout:    50 * time.Millisecond,
		RecoveryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery: got %d, want 503", resp.StatusCode)
	}

	waitForRecovery(t, coord) // the timeout lapse lifts the gate anyway
}

func newTestWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(workerConfig())
	w := httptest.NewServer(s.Handler())
	t.Cleanup(w.Close)
	return w
}

func contextWithTestTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 5*time.Second)
}

func waitForRecovery(t *testing.T, c *Coordinator) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !c.recovered.Load() {
		if time.Now().After(deadline) {
			t.Fatal("recovery gate never lifted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
