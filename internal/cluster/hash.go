package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Placement: which worker should serve a given shard. Two requirements pull
// in different directions.
//
// Stability: the same key should land on the same worker run after run, so a
// worker's impact and scenario caches stay warm for the classes it serves.
// A consistent-hash ring with virtual nodes gives that, and adding a worker
// to the fleet only moves the keys adjacent to its vnodes.
//
// Availability: when the preferred worker is down or draining, the key needs
// a deterministic fallback order over the remaining workers — ideally one
// that spreads a dead worker's keys evenly instead of dumping them all on
// the ring's next neighbour. Rendezvous (highest-random-weight) hashing
// gives exactly that: every (key, worker) pair gets an independent score,
// and the fallback order is the workers sorted by score.
//
// So: the ring picks the home; rendezvous order picks the understudies.
// Both are keyed by worker URL, not list position, so a join or leave only
// perturbs the keys that actually re-home — every other (key, worker)
// score is unchanged.

// ring is a consistent-hash ring over fleet members with vnodes virtual
// points per member.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	m    *member
}

// fnv64 hashes a string and finalizes with a 64-bit avalanche mix: raw
// FNV-1a of short, similar strings ("http://a#0", "http://a#1", …) clusters
// badly on the ring, and the finalizer spreads those clusters uniformly.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// newRing builds the ring over the given members (the topology's active
// set).
func newRing(members []*member, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv64(m.url + "#" + strconv.Itoa(v)), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].m.url < r.points[j].m.url
	})
	return r
}

// primary returns the member owning the key: the first vnode clockwise from
// the key's hash. Nil only on an empty ring.
func (r *ring) primary(key string) *member {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].m
}

// rendezvousOrder returns the members sorted by descending rendezvous score
// for the key — the deterministic fallback order. Scores are keyed by URL,
// so the relative order of two surviving members never changes when a third
// joins or leaves.
func rendezvousOrder(key string, members []*member) []*member {
	type scored struct {
		score uint64
		m     *member
	}
	s := make([]scored, len(members))
	for i, m := range members {
		s[i] = scored{score: fnv64(key + "|" + m.url), m: m}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].m.url < s[j].m.url
	})
	out := make([]*member, len(members))
	for i, sc := range s {
		out[i] = sc.m
	}
	return out
}
