package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Placement: which worker should serve a given shard. Two requirements pull
// in different directions.
//
// Stability: the same key should land on the same worker run after run, so a
// worker's impact and scenario caches stay warm for the classes it serves.
// A consistent-hash ring with virtual nodes gives that, and adding a worker
// to the configured list only moves the keys adjacent to its vnodes.
//
// Availability: when the preferred worker is down or draining, the key needs
// a deterministic fallback order over the remaining workers — ideally one
// that spreads a dead worker's keys evenly instead of dumping them all on
// the ring's next neighbour. Rendezvous (highest-random-weight) hashing
// gives exactly that: every (key, worker) pair gets an independent score,
// and the fallback order is the workers sorted by score.
//
// So: the ring picks the home; rendezvous order picks the understudies.

// ring is a consistent-hash ring over worker indices with vnodes virtual
// points per worker.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	idx  int
}

// fnv64 hashes a string and finalizes with a 64-bit avalanche mix: raw
// FNV-1a of short, similar strings ("http://a#0", "http://a#1", …) clusters
// badly on the ring, and the finalizer spreads those clusters uniformly.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(workers []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodes)}
	for idx, url := range workers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: fnv64(url + "#" + strconv.Itoa(v)), idx: idx})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].idx < r.points[j].idx
	})
	return r
}

// primary returns the worker index owning the key: the first vnode clockwise
// from the key's hash.
func (r *ring) primary(key string) int {
	h := fnv64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

// rendezvousOrder returns all worker indices sorted by descending
// rendezvous score for the key — the deterministic fallback order.
func rendezvousOrder(key string, n int) []int {
	type scored struct {
		score uint64
		idx   int
	}
	s := make([]scored, n)
	for i := 0; i < n; i++ {
		s[i] = scored{score: fnv64(key + "|" + strconv.Itoa(i)), idx: i}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].idx < s[j].idx
	})
	out := make([]int, n)
	for i, sc := range s {
		out[i] = sc.idx
	}
	return out
}

// candidates returns the ordered workers to try for a key: the ring's
// primary if it is up, then every other up worker in rendezvous order. When
// no worker is up at all it returns the full rendezvous order anyway —
// health state may be stale, and trying beats failing without a request.
func (c *Coordinator) candidates(key string) []*member {
	out := make([]*member, 0, len(c.members))
	prim := c.ring.primary(key)
	if c.members[prim].up() {
		out = append(out, c.members[prim])
	}
	for _, idx := range rendezvousOrder(key, len(c.members)) {
		if idx != prim && c.members[idx].up() {
			out = append(out, c.members[idx])
		}
	}
	if len(out) == 0 {
		for _, idx := range rendezvousOrder(key, len(c.members)) {
			out = append(out, c.members[idx])
		}
	}
	return out
}
