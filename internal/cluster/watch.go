package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"fepia/internal/core"
	"fepia/internal/delta"
	"fepia/internal/durable"
	"fepia/internal/scenario"
	"fepia/internal/server"
)

// Cluster watches: the coordinator's half of the streaming incremental
// re-evaluation subsystem. The coordinator keeps each watch's current
// document and per-feature radii (as the exact RadiusJSON values its
// responses are rendered from), and on every update scatters ONLY the
// shards containing dirty features — placed by the same class+"/s"+index
// keys a full evaluation would use, so a dirty shard lands on the worker
// whose impact cache and warm-start registry are already hot for exactly
// that feature range. Clean features' radii are spliced back verbatim;
// shards with no dirty feature are never sent (watchShardsSkipped counts
// the savings).
//
// Failure semantics inherit the scatter layer's: a shard that no worker
// could serve fails the whole update with no commit — the watch stays at
// its last good state, the stream carries no partial event, and a client
// retry (absolute origins, idempotent) converges. A worker killed
// mid-update is indistinguishable from a slow one: the shard re-routes and
// the merged result is bit-identical, because shard evaluation is
// deterministic.
//
// Like the server's watch path, updates bypass the coordinator's breaker:
// forcing one update onto the degraded tier would break the chain's
// bit-identity with a cold evaluation.

// cwatchKind / cwatchVersion / cwatchSuffix shape the coordinator's watch
// checkpoints under <StateDir>/watches.
const (
	cwatchKind    = "fepia-cluster-watch"
	cwatchVersion = 1
	cwatchSuffix  = ".watch.json"
)

// errNoCWatch reports a watch id with no live state and no checkpoint.
var errNoCWatch = errors.New("cluster: unknown watch id")

// cwatchEnvelope is the on-disk shape of one coordinator watch file.
type cwatchEnvelope struct {
	Kind     string          `json:"kind"`
	Version  int             `json:"version"`
	ID       string          `json:"id"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// cwatchPayload is a coordinator watch checkpoint. Radii are the rendered
// RadiusJSON values (Go's shortest-round-trip float encoding makes their
// JSON byte-stable), Events the rendered journal — together they let a
// restarted coordinator resume both the delta chain and the subscription
// stream byte-identically.
type cwatchPayload struct {
	ID        string                 `json:"id"`
	Weighting string                 `json:"weighting"`
	Doc       scenario.AnalysisDoc   `json:"doc"`
	Seq       uint64                 `json:"seq"`
	Radii     []server.RadiusJSON    `json:"radii"`
	Events    []server.WatchEventRec `json:"events"`
}

// cwatchStore persists coordinator watch checkpoints, mirroring the worker
// daemon's durability discipline (atomic writes, checksums, quarantine).
type cwatchStore struct {
	dir string

	mu             sync.Mutex
	saves          uint64
	saveErrors     uint64
	corruptSkipped uint64
}

func openCWatchStore(dir string) (*cwatchStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: opening watch store: %w", err)
	}
	return &cwatchStore{dir: dir}, nil
}

func (ws *cwatchStore) path(id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	return filepath.Join(ws.dir, strconv.FormatUint(h.Sum64(), 16)+cwatchSuffix)
}

func (ws *cwatchStore) save(p cwatchPayload) error {
	raw, err := json.Marshal(p)
	if err == nil {
		env := cwatchEnvelope{Kind: cwatchKind, Version: cwatchVersion, ID: p.ID, Checksum: durable.Checksum(raw), Payload: raw}
		var data []byte
		if data, err = json.Marshal(env); err == nil {
			err = durable.WriteFileAtomic(ws.path(p.ID), data, ".watch-*")
		}
	}
	ws.mu.Lock()
	if err != nil {
		ws.saveErrors++
	} else {
		ws.saves++
	}
	ws.mu.Unlock()
	return err
}

func (ws *cwatchStore) load(id string) (cwatchPayload, error) {
	path := ws.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return cwatchPayload{}, fmt.Errorf("%w: %q", errNoCWatch, id)
	}
	var env cwatchEnvelope
	var p cwatchPayload
	decode := func() error {
		if err := json.Unmarshal(data, &env); err != nil {
			return err
		}
		if env.Kind != cwatchKind || env.Version != cwatchVersion {
			return fmt.Errorf("kind/version %q/%d", env.Kind, env.Version)
		}
		if got := durable.Checksum(env.Payload); got != env.Checksum {
			return fmt.Errorf("checksum %s, recorded %s", got, env.Checksum)
		}
		if err := json.Unmarshal(env.Payload, &p); err != nil {
			return err
		}
		if p.ID != id {
			return fmt.Errorf("payload id %q under %q's name", p.ID, id)
		}
		return nil
	}
	if derr := decode(); derr != nil {
		_ = os.Remove(path) // quarantine: rebuilt from a fresh create, never fatal
		ws.mu.Lock()
		ws.corruptSkipped++
		ws.mu.Unlock()
		return cwatchPayload{}, fmt.Errorf("%w: %q (%v)", errNoCWatch, id, derr)
	}
	return p, nil
}

func (ws *cwatchStore) delete(id string) { _ = os.Remove(ws.path(id)) }

// cwatch is one live coordinator watch. mu serializes updates (including
// their scatters — updates to one watch are a chain, not concurrent work)
// and guards all mutable state.
type cwatch struct {
	id        string
	weighting string

	mu     sync.Mutex
	doc    scenario.AnalysisDoc
	radii  []server.RadiusJSON
	seq    uint64
	events []server.WatchEventRec
	subs   map[chan []byte]struct{}
	closed bool
}

// cwatchEventJSON is the deterministic payload of one coordinator SSE
// event — same field set as the worker daemon's, carrying no provenance
// (workers, attempts, latencies are per-request facts, and the journal must
// replay byte-identically regardless of which workers served the update).
type cwatchEventJSON struct {
	Watch      string                `json:"watch"`
	Seq        uint64                `json:"seq"`
	Structural bool                  `json:"structural,omitempty"`
	Dirty      []int                 `json:"dirty,omitempty"`
	Robustness server.RobustnessJSON `json:"robustness"`
}

const cwatchSubBuf = 256

func cwatchFrame(rec server.WatchEventRec) []byte {
	return []byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", rec.Seq, rec.Type, rec.Data))
}

func (wt *cwatch) appendEvent(rec server.WatchEventRec, cap int, dropped *uint64) {
	wt.events = append(wt.events, rec)
	if cap > 0 && len(wt.events) > cap {
		wt.events = append(wt.events[:0:0], wt.events[len(wt.events)-cap:]...)
	}
	frame := cwatchFrame(rec)
	for ch := range wt.subs {
		select {
		case ch <- frame:
		default:
			delete(wt.subs, ch)
			close(ch)
			*dropped++
		}
	}
}

func (wt *cwatch) closeSubs() {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for ch := range wt.subs {
		close(ch)
	}
	wt.subs = make(map[chan []byte]struct{})
}

// cwatchTracker is the coordinator's live watch set.
type cwatchTracker struct {
	mu sync.Mutex
	m  map[string]*cwatch
}

func newCWatchTracker() *cwatchTracker { return &cwatchTracker{m: make(map[string]*cwatch)} }

func (t *cwatchTracker) get(id string) *cwatch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

func (t *cwatchTracker) register(wt *cwatch, maxTotal int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[wt.id]; ok {
		return fmt.Errorf("cluster: watch id %q already exists", wt.id)
	}
	if maxTotal > 0 && len(t.m) >= maxTotal {
		return fmt.Errorf("cluster: watch capacity (%d) exhausted", maxTotal)
	}
	t.m[wt.id] = wt
	return nil
}

func (t *cwatchTracker) remove(id string) *cwatch {
	t.mu.Lock()
	defer t.mu.Unlock()
	wt := t.m[id]
	delete(t.m, id)
	return wt
}

func (t *cwatchTracker) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

func (t *cwatchTracker) closeAllSubs() {
	t.mu.Lock()
	all := make([]*cwatch, 0, len(t.m))
	for _, wt := range t.m {
		all = append(all, wt)
	}
	t.mu.Unlock()
	for _, wt := range all {
		wt.closeSubs()
	}
}

// checkpointWatch persists wt under its lock; best-effort.
func (c *Coordinator) checkpointWatch(wt *cwatch) {
	if c.cwstore == nil {
		return
	}
	p := cwatchPayload{ID: wt.id, Weighting: wt.weighting, Doc: wt.doc, Seq: wt.seq, Radii: wt.radii, Events: wt.events}
	if err := c.cwstore.save(p); err != nil {
		c.cfg.Logf("cluster: watch %s checkpoint: %v", wt.id, err)
	}
}

// findWatch resolves a watch id, resuming from the checkpoint store after a
// restart.
func (c *Coordinator) findWatch(id string) (*cwatch, error) {
	if wt := c.cwatches.get(id); wt != nil {
		return wt, nil
	}
	if c.cwstore == nil {
		return nil, fmt.Errorf("%w: %q", errNoCWatch, id)
	}
	p, err := c.cwstore.load(id)
	if err != nil {
		return nil, err
	}
	wt := &cwatch{
		id:        p.ID,
		weighting: p.Weighting,
		doc:       p.Doc,
		radii:     p.Radii,
		seq:       p.Seq,
		events:    p.Events,
		subs:      make(map[chan []byte]struct{}),
	}
	if err := c.cwatches.register(wt, c.cfg.MaxWatches); err != nil {
		if got := c.cwatches.get(id); got != nil {
			return got, nil // lost a resume race: use the winner
		}
		return nil, err
	}
	c.stats.watchResumed.Add(1)
	c.cfg.Logf("cluster: watch %s resumed from checkpoint at seq %d", id, p.Seq)
	return wt, nil
}

// scatterEval runs one full or partial evaluation for a watch: shardSets
// over the current topology, placed by class+"/s"+origIdx home keys, merged
// against prior radii (nil prior means full evaluation — every feature must
// come back from the scatter).
func (c *Coordinator) scatterEval(r *http.Request, timeout time.Duration, rid string, doc scenario.AnalysisDoc, wname string, dirty []int, prior []server.RadiusJSON) (server.RobustnessJSON, []ShardInfo, *relayFailure, string, string, int) {
	t := c.topology()
	n := len(doc.Features)
	class := server.Classify(doc, false)
	full := core.ShardFeatures(n, len(t.active))

	dirtySet := make(map[int]bool, len(dirty))
	for _, i := range dirty {
		dirtySet[i] = true
	}
	var sets [][]int
	var keys []string
	skipped := 0
	for i, set := range full {
		if prior != nil {
			kept := set[:0:0]
			for _, f := range set {
				if dirtySet[f] {
					kept = append(kept, f)
				}
			}
			if len(kept) == 0 {
				skipped++
				continue
			}
			set = kept
		}
		sets = append(sets, set)
		keys = append(keys, class+"/s"+strconv.Itoa(i))
	}

	var g gathered
	if len(sets) > 0 {
		base := server.ShardRequest{
			Scenario:  doc,
			Weighting: wname,
			Timeout:   c.workerTimeout(timeout).String(),
		}
		g = c.scatterShards(r.Context(), t, rid, base, sets, keys)
		if g.fail != nil {
			return server.RobustnessJSON{}, g.prov, g.fail, "", "", skipped
		}
	} else {
		g.results = make([]server.ShardFeatureResult, n)
	}

	// Splice: clean features keep the watch's prior radii verbatim.
	results := make([]server.ShardFeatureResult, n)
	for i := 0; i < n; i++ {
		if prior != nil && !dirtySet[i] {
			r := prior[i]
			results[i] = server.ShardFeatureResult{Feature: i, Radius: &r}
			continue
		}
		results[i] = g.results[i]
	}
	rj, errStr, errKind := merge(wname, results)
	return rj, g.prov, nil, errStr, errKind, skipped
}

// handleWatch is the coordinator's POST /v1/watch: create (Scenario
// present) or (re)subscribe (bare id), then stream SSE.
func (c *Coordinator) handleWatch(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.WatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: "streaming unsupported by transport", Kind: "internal", RequestID: rid})
		return
	}

	id := req.ID
	var wt *cwatch
	if id != "" {
		if got, err := c.findWatch(id); err == nil {
			wt = got
		} else if req.Scenario == nil {
			writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: err.Error(), Kind: "watch-not-found", RequestID: rid})
			return
		}
	}
	if wt == nil {
		if req.Scenario == nil {
			c.badRequest(w, r, errors.New("watch request needs a scenario (create) or an existing id (subscribe)"))
			return
		}
		if id == "" {
			id = rid
		}
		wt = c.createWatch(w, r, id, req)
		if wt == nil {
			return
		}
	}

	wt.mu.Lock()
	if len(wt.events) > 0 && req.After+1 < wt.events[0].Seq {
		wt.mu.Unlock()
		writeJSON(w, http.StatusGone, server.ErrorResponse{
			Error:     fmt.Sprintf("events up to seq %d left the journal (requested after=%d)", wt.events[0].Seq-1, req.After),
			Kind:      "resume-horizon",
			RequestID: rid,
		})
		return
	}
	var replay [][]byte
	for _, rec := range wt.events {
		if rec.Seq > req.After {
			replay = append(replay, cwatchFrame(rec))
		}
	}
	if wt.closed {
		wt.mu.Unlock()
		writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: "watch is closed", Kind: "watch-not-found", RequestID: rid})
		return
	}
	ch := make(chan []byte, cwatchSubBuf)
	wt.subs[ch] = struct{}{}
	wt.mu.Unlock()
	defer func() {
		wt.mu.Lock()
		if _, live := wt.subs[ch]; live {
			delete(wt.subs, ch)
			close(ch)
		}
		wt.mu.Unlock()
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, frame := range replay {
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.base.Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// createWatch scatters the initial full evaluation and registers the watch.
// On failure it writes the response and returns nil.
func (c *Coordinator) createWatch(w http.ResponseWriter, r *http.Request, id string, req server.WatchRequest) *cwatch {
	rid := server.RequestIDFrom(r.Context())
	doc := *req.Scenario
	if err := doc.Validate(); err != nil {
		c.badRequest(w, r, err)
		return nil
	}
	wname, err := weightingName(req.Weighting)
	if err != nil {
		c.badRequest(w, r, err)
		return nil
	}
	timeout, err := c.requestTimeout(req.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return nil
	}
	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return nil
	}
	defer finish()
	r = r.WithContext(ctx)

	rj, _, fail, errStr, errKind, _ := c.scatterEval(r, timeout, rid, doc, wname, nil, nil)
	if fail != nil {
		status, er := fail.errorResponse(rid)
		c.stats.failed.Add(1)
		writeJSON(w, status, er)
		return nil
	}
	if errStr != "" {
		c.stats.failed.Add(1)
		writeJSON(w, server.StatusForKind(errKind), server.ErrorResponse{Error: errStr, Kind: errKind, RequestID: rid})
		return nil
	}

	radii := make([]server.RadiusJSON, len(rj.PerFeature))
	copy(radii, rj.PerFeature)
	wt := &cwatch{id: id, weighting: wname, doc: doc, radii: radii, seq: 1, subs: make(map[chan []byte]struct{})}
	data, err := json.Marshal(cwatchEventJSON{Watch: id, Seq: 1, Robustness: rj})
	if err != nil {
		c.stats.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: err.Error(), Kind: "internal", RequestID: rid})
		return nil
	}
	wt.events = []server.WatchEventRec{{Seq: 1, Type: "snapshot", Data: data}}
	if err := c.cwatches.register(wt, c.cfg.MaxWatches); err != nil {
		if got := c.cwatches.get(id); got != nil {
			return got // lost a create race: subscribe to the winner
		}
		c.stats.failed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, server.ErrorResponse{Error: err.Error(), Kind: "overloaded", RequestID: rid, RetryAfterMs: 1000})
		return nil
	}
	wt.mu.Lock()
	c.checkpointWatch(wt)
	wt.mu.Unlock()
	c.stats.watchCreated.Add(1)
	c.stats.watchEvents.Add(1)
	c.stats.completed.Add(1)
	c.cfg.Logf("cluster: rid=%s watch %s created (%d features)", rid, id, len(doc.Features))
	return wt
}

// handleWatchUpdate is the coordinator's POST /v1/watch/update: classify,
// scatter only the dirty shards to their home workers, splice, commit, fan
// out.
func (c *Coordinator) handleWatchUpdate(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.WatchUpdateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Watch == "" {
		c.badRequest(w, r, errors.New("update needs a watch id"))
		return
	}
	timeout, err := c.requestTimeout(req.Timeout)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	wt, err := c.findWatch(req.Watch)
	if err != nil {
		writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: err.Error(), Kind: "watch-not-found", RequestID: rid})
		return
	}
	ctx, finish, ok := c.admit(w, r, timeout)
	if !ok {
		return
	}
	defer finish()
	r = r.WithContext(ctx)

	wt.mu.Lock()
	defer wt.mu.Unlock()
	if wt.closed {
		writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: "watch is closed", Kind: "watch-not-found", RequestID: rid})
		return
	}
	successor, err := delta.ApplyParams(wt.doc, req.Params)
	if err != nil {
		c.badRequest(w, r, err)
		return
	}
	diff := delta.Classify(wt.doc, successor, wt.weighting)

	dirty := diff.Dirty
	prior := wt.radii
	if diff.Structural {
		prior = nil // full re-evaluation: no radius survives a shape change
	}
	start := time.Now()
	rj, prov, fail, errStr, errKind, skipped := c.scatterEval(r, timeout, rid, successor, wt.weighting, dirty, prior)
	elapsed := time.Since(start)
	if fail != nil {
		status, er := fail.errorResponse(rid)
		c.stats.failed.Add(1)
		c.cfg.Logf("cluster: rid=%s watch %s update failed upstream: %s", rid, wt.id, er.Error)
		writeJSON(w, status, er)
		return
	}
	if errStr != "" {
		c.stats.failed.Add(1)
		writeJSON(w, server.StatusForKind(errKind), server.ErrorResponse{Error: errStr, Kind: errKind, RequestID: rid})
		return
	}

	wt.doc = successor
	wt.radii = make([]server.RadiusJSON, len(rj.PerFeature))
	copy(wt.radii, rj.PerFeature)
	wt.seq++
	if dirty == nil {
		dirty = []int{}
	}
	data, err := json.Marshal(cwatchEventJSON{Watch: wt.id, Seq: wt.seq, Structural: diff.Structural, Dirty: dirty, Robustness: rj})
	if err != nil {
		c.stats.failed.Add(1)
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: err.Error(), Kind: "internal", RequestID: rid})
		return
	}
	var dropped uint64
	wt.appendEvent(server.WatchEventRec{Seq: wt.seq, Type: "delta", Data: data}, c.cfg.WatchEventCap, &dropped)
	c.checkpointWatch(wt)
	if dropped > 0 {
		c.stats.watchLagDrops.Add(dropped)
	}
	c.stats.watchUpdates.Add(1)
	if diff.Structural {
		c.stats.watchStructural.Add(1)
	}
	c.stats.watchEvents.Add(1)
	c.stats.watchShardsSkipped.Add(uint64(skipped))
	c.stats.completed.Add(1)
	c.cfg.Logf("cluster: rid=%s watch %s update seq=%d dirty=%d/%d shards-skipped=%d elapsed=%.1fms",
		rid, wt.id, wt.seq, len(dirty), len(successor.Features), skipped, float64(elapsed.Microseconds())/1000)
	writeJSON(w, http.StatusOK, struct {
		server.WatchUpdateResponse
		Cluster *Provenance `json:"cluster,omitempty"`
	}{
		WatchUpdateResponse: server.WatchUpdateResponse{
			Watch:      wt.id,
			Seq:        wt.seq,
			Structural: diff.Structural,
			Dirty:      dirty,
			Clean:      diff.CleanCount(),
			Robustness: rj,
			RequestID:  rid,
			ElapsedMs:  float64(elapsed.Microseconds()) / 1000,
		},
		Cluster: &Provenance{Shards: prov},
	})
}

// handleWatchClose is the coordinator's POST /v1/watch/close.
func (c *Coordinator) handleWatchClose(w http.ResponseWriter, r *http.Request) {
	rid := server.RequestIDFrom(r.Context())
	var req server.WatchCloseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		c.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	wt := c.cwatches.remove(req.Watch)
	if wt == nil {
		if c.cwstore != nil {
			if _, err := c.cwstore.load(req.Watch); err == nil {
				c.cwstore.delete(req.Watch)
				c.stats.watchClosed.Add(1)
				writeJSON(w, http.StatusOK, map[string]any{"watch": req.Watch, "closed": true, "requestId": rid})
				return
			}
		}
		writeJSON(w, http.StatusNotFound, server.ErrorResponse{Error: "unknown watch id", Kind: "watch-not-found", RequestID: rid})
		return
	}
	wt.mu.Lock()
	wt.closed = true
	for ch := range wt.subs {
		close(ch)
	}
	wt.subs = make(map[chan []byte]struct{})
	wt.mu.Unlock()
	if c.cwstore != nil {
		c.cwstore.delete(req.Watch)
	}
	c.stats.watchClosed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"watch": req.Watch, "closed": true, "requestId": rid})
}
