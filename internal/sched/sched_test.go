package sched

import (
	"math"
	"testing"

	"fepia/internal/etc"
	"fepia/internal/makespan"
	"fepia/internal/stats"
)

// tiny is a 3-task, 2-machine matrix with an obvious structure:
//
//	t0: [1, 10]  t1: [10, 1]  t2: [2, 2]
func tiny() *etc.Matrix {
	return &etc.Matrix{Tasks: 3, Machines: 2, Data: [][]float64{
		{1, 10}, {10, 1}, {2, 2},
	}}
}

func validAlloc(t *testing.T, m *etc.Matrix, alloc []int, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != m.Tasks {
		t.Fatalf("alloc len %d, want %d", len(alloc), m.Tasks)
	}
	for _, j := range alloc {
		if j < 0 || j >= m.Machines {
			t.Fatalf("machine %d out of range", j)
		}
	}
}

func TestEmptyMatrixRejected(t *testing.T) {
	for _, h := range []Heuristic{RoundRobin, MET, OLB, MCT, MinMin, MaxMin, Sufferage,
		Random(stats.NewSource(1)), GreedyRobust(1.3), HillClimbRobust(MinMin, 1.3, 0)} {
		if _, err := h(nil); err == nil {
			t.Fatal("nil matrix must error")
		}
		if _, err := h(&etc.Matrix{}); err == nil {
			t.Fatal("empty matrix must error")
		}
	}
}

func TestRoundRobin(t *testing.T) {
	m := tiny()
	alloc, err := RoundRobin(m)
	validAlloc(t, m, alloc, err)
	if alloc[0] != 0 || alloc[1] != 1 || alloc[2] != 0 {
		t.Errorf("alloc = %v", alloc)
	}
}

func TestMETPicksFastestMachine(t *testing.T) {
	m := tiny()
	alloc, err := MET(m)
	validAlloc(t, m, alloc, err)
	if alloc[0] != 0 || alloc[1] != 1 {
		t.Errorf("MET alloc = %v", alloc)
	}
}

func TestOLBBalancesAvailability(t *testing.T) {
	m := tiny()
	alloc, err := OLB(m)
	validAlloc(t, m, alloc, err)
	// t0 → m0 (both idle), t1 → m1 (m0 busy 1 > m1 0), t2 → whichever is
	// earlier: m1 available at 1 vs m0 at 1 → tie goes to m0.
	if alloc[0] != 0 || alloc[1] != 1 || alloc[2] != 0 {
		t.Errorf("OLB alloc = %v", alloc)
	}
}

func TestMCTTiny(t *testing.T) {
	m := tiny()
	alloc, err := MCT(m)
	validAlloc(t, m, alloc, err)
	// t0→m0 (1<10); t1→m1 (1<11); t2: m0 at 1+2=3, m1 at 1+2=3 → tie → m0.
	if alloc[0] != 0 || alloc[1] != 1 || alloc[2] != 0 {
		t.Errorf("MCT alloc = %v", alloc)
	}
}

func TestMinMinBeatsNaiveOnAverage(t *testing.T) {
	src := stats.NewSource(21)
	var mmWins int
	const trials = 30
	for i := 0; i < trials; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 40, Machines: 6, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RoundRobin(m)
		if err != nil {
			t.Fatal(err)
		}
		if makespanOf(m, mm) <= makespanOf(m, rr) {
			mmWins++
		}
	}
	if mmWins < trials*8/10 {
		t.Errorf("Min-Min beat round-robin only %d/%d times", mmWins, trials)
	}
}

func TestMaxMinAndSufferageProduceValidAllocations(t *testing.T) {
	src := stats.NewSource(5)
	m, err := etc.CVB(etc.CVBParams{Tasks: 25, Machines: 5, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5}, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Named{{"max-min", MaxMin}, {"sufferage", Sufferage}} {
		alloc, err := h.Fn(m)
		validAlloc(t, m, alloc, err)
	}
}

func TestSufferageSingleMachine(t *testing.T) {
	m := &etc.Matrix{Tasks: 3, Machines: 1, Data: [][]float64{{1}, {2}, {3}}}
	alloc, err := Sufferage(m)
	validAlloc(t, m, alloc, err)
	for _, j := range alloc {
		if j != 0 {
			t.Fatalf("single machine: alloc = %v", alloc)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := tiny()
	a1, _ := Random(stats.NewSource(3))(m)
	a2, _ := Random(stats.NewSource(3))(m)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must give same allocation")
		}
	}
}

func TestGreedyRobustImprovesRho(t *testing.T) {
	// Across random instances, greedy-robust should (usually) achieve a
	// robustness radius at least as good as Min-Min's.
	src := stats.NewSource(13)
	const tau = 1.3
	wins, trials := 0, 25
	for i := 0; i < trials; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 30, Machines: 5, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			t.Fatal(err)
		}
		rhoOf := func(alloc []int) float64 {
			s, err := makespan.New(m, alloc)
			if err != nil {
				t.Fatal(err)
			}
			_, rho, err := s.ClosedFormRadii(tau)
			if err != nil {
				t.Fatal(err)
			}
			return rho
		}
		mm, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := GreedyRobust(tau)(m)
		if err != nil {
			t.Fatal(err)
		}
		if rhoOf(gr) >= rhoOf(mm)-1e-12 {
			wins++
		}
	}
	if wins < trials*7/10 {
		t.Errorf("greedy-robust matched/beat Min-Min rho only %d/%d times", wins, trials)
	}
}

func TestGreedyRobustBadTau(t *testing.T) {
	if _, err := GreedyRobust(1.0)(tiny()); err == nil {
		t.Error("tau <= 1 must error")
	}
}

func TestHillClimbNeverWorsensRho(t *testing.T) {
	src := stats.NewSource(17)
	const tau = 1.25
	for i := 0; i < 15; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 20, Machines: 4, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5}, src)
		if err != nil {
			t.Fatal(err)
		}
		base, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		improved, err := HillClimbRobust(MinMin, tau, 0)(m)
		if err != nil {
			t.Fatal(err)
		}
		// Both radii measured against the same bound (tau × Min-Min makespan).
		bound := tau * makespanOf(m, base)
		rho := func(alloc []int) float64 {
			load := make([]float64, m.Machines)
			count := make([]int, m.Machines)
			for t2, j := range alloc {
				load[j] += m.At(t2, j)
				count[j]++
			}
			r := math.Inf(1)
			for j := range load {
				if count[j] == 0 {
					continue
				}
				if v := (bound - load[j]) / math.Sqrt(float64(count[j])); v < r {
					r = v
				}
			}
			return r
		}
		if rho(improved) < rho(base)-1e-9 {
			t.Fatalf("instance %d: hill climb worsened rho (%v -> %v)", i, rho(base), rho(improved))
		}
	}
}

func TestHillClimbBadTau(t *testing.T) {
	if _, err := HillClimbRobust(MinMin, 0.5, 0)(tiny()); err == nil {
		t.Error("tau <= 1 must error")
	}
}

func TestRegistryRuns(t *testing.T) {
	src := stats.NewSource(2)
	m, err := etc.CVB(etc.CVBParams{Tasks: 15, Machines: 4, MeanTask: 10, TaskCV: 0.3, MachineCV: 0.3}, src)
	if err != nil {
		t.Fatal(err)
	}
	reg := Registry(1.3, stats.NewSource(1))
	if len(reg) < 8 {
		t.Fatalf("registry too small: %d", len(reg))
	}
	seen := map[string]bool{}
	for _, h := range reg {
		if seen[h.Name] {
			t.Fatalf("duplicate heuristic name %q", h.Name)
		}
		seen[h.Name] = true
		alloc, err := h.Fn(m)
		validAlloc(t, m, alloc, err)
	}
}

func TestMakespanOf(t *testing.T) {
	m := tiny()
	if got := makespanOf(m, []int{0, 1, 0}); got != 3 {
		t.Errorf("makespanOf = %v, want 3", got)
	}
	if got := makespanOf(m, []int{0, 0, 0}); got != 13 {
		t.Errorf("makespanOf = %v, want 13", got)
	}
}

func TestDuplexPicksBetter(t *testing.T) {
	src := stats.NewSource(77)
	for i := 0; i < 20; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 30, Machines: 5, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5}, src)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := Duplex(m)
		if err != nil {
			t.Fatal(err)
		}
		mn, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		mx, err := MaxMin(m)
		if err != nil {
			t.Fatal(err)
		}
		best := makespanOf(m, mn)
		if other := makespanOf(m, mx); other < best {
			best = other
		}
		if makespanOf(m, dx) != best {
			t.Fatalf("instance %d: duplex %v, want min(minmin, maxmin) = %v", i, makespanOf(m, dx), best)
		}
	}
}

func TestDuplexEmpty(t *testing.T) {
	if _, err := Duplex(&etc.Matrix{}); err == nil {
		t.Error("empty matrix must error")
	}
}
