package sched

import (
	"testing"

	"fepia/internal/etc"
	"fepia/internal/stats"
)

func TestClosedFormScoreKnown(t *testing.T) {
	m := tiny() // t0: [1,10], t1: [10,1], t2: [2,2]
	// alloc {0,1,0}: loads (3, 1), counts (2, 1). bound 5:
	// m0: (5-3)/sqrt(2) = 1.414, m1: (5-1)/1 = 4 → rho = 1.414.
	got := ClosedFormScore(m, []int{0, 1, 0}, 5)
	want := 2 / sqrt2
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("ClosedFormScore = %v, want %v", got, want)
	}
}

const sqrt2 = 1.4142135623730951

func TestAnnealImprovesOrMatchesMinMin(t *testing.T) {
	src := stats.NewSource(31)
	const tau = 1.3
	for i := 0; i < 10; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 24, Machines: 4, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		bound := tau * makespanOf(m, mm)
		sa, err := Anneal(AnnealOptions{Tau: tau, Seed: int64(i), Steps: 2000})(m)
		if err != nil {
			t.Fatal(err)
		}
		validAlloc(t, m, sa, nil)
		if ClosedFormScore(m, sa, bound) < ClosedFormScore(m, mm, bound)-1e-9 {
			t.Fatalf("instance %d: annealing below its own starting point", i)
		}
	}
}

func TestAnnealDeterministic(t *testing.T) {
	m := tiny()
	h := Anneal(AnnealOptions{Tau: 1.3, Seed: 5, Steps: 500})
	a1, err := h(m)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("annealing must be deterministic per seed")
		}
	}
}

func TestAnnealBadTau(t *testing.T) {
	if _, err := Anneal(AnnealOptions{Tau: 1})(tiny()); err == nil {
		t.Error("tau <= 1 must error")
	}
}

func TestGeneticImprovesOrMatchesMinMin(t *testing.T) {
	src := stats.NewSource(41)
	const tau = 1.3
	for i := 0; i < 5; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 20, Machines: 4, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, src)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		bound := tau * makespanOf(m, mm)
		ga, err := Genetic(GAOptions{Tau: tau, Seed: int64(i), Generations: 40, Population: 24})(m)
		if err != nil {
			t.Fatal(err)
		}
		validAlloc(t, m, ga, nil)
		// Min-Min is in the seed population with elitism: the GA result can
		// never be worse.
		if ClosedFormScore(m, ga, bound) < ClosedFormScore(m, mm, bound)-1e-9 {
			t.Fatalf("instance %d: GA lost to a seed individual", i)
		}
	}
}

func TestGeneticDeterministic(t *testing.T) {
	m := tiny()
	h := Genetic(GAOptions{Tau: 1.3, Seed: 9, Generations: 10, Population: 10})
	a1, err := h(m)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("GA must be deterministic per seed")
		}
	}
}

func TestGeneticBadTau(t *testing.T) {
	if _, err := Genetic(GAOptions{Tau: 0.5})(tiny()); err == nil {
		t.Error("tau <= 1 must error")
	}
}

func TestMetaheuristicsRejectEmpty(t *testing.T) {
	if _, err := Anneal(AnnealOptions{Tau: 1.3})(&etc.Matrix{}); err == nil {
		t.Error("empty matrix must error")
	}
	if _, err := Genetic(GAOptions{Tau: 1.3})(&etc.Matrix{}); err == nil {
		t.Error("empty matrix must error")
	}
}

func TestMetaheuristicsBeatGreedyOnAverage(t *testing.T) {
	// On mid-size instances the annealer should usually reach at least the
	// hill-climber's robustness (both optimize the same objective; SA has
	// more moves available).
	src := stats.NewSource(55)
	const tau = 1.25
	wins, trials := 0, 10
	for i := 0; i < trials; i++ {
		m, err := etc.CVB(etc.CVBParams{Tasks: 24, Machines: 4, MeanTask: 10, TaskCV: 0.5, MachineCV: 0.5}, src)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := MinMin(m)
		if err != nil {
			t.Fatal(err)
		}
		bound := tau * makespanOf(m, mm)
		hc, err := HillClimbRobust(MinMin, tau, 0)(m)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := Anneal(AnnealOptions{Tau: tau, Seed: int64(i), Steps: 5000})(m)
		if err != nil {
			t.Fatal(err)
		}
		if ClosedFormScore(m, sa, bound) >= ClosedFormScore(m, hc, bound)-1e-9 {
			wins++
		}
	}
	if wins < trials/2 {
		t.Errorf("annealing matched hill climbing only %d/%d times", wins, trials)
	}
}
