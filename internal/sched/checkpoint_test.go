package sched

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"fepia/internal/etc"
	"fepia/internal/stats"
)

// These tests pin the crash-recovery contract: a search killed after any
// completed generation and resumed from its last checkpoint produces a
// result bit-identical to the uninterrupted run — same best allocation,
// same float bits, same counters.

func ckptMatrix(t *testing.T) *etc.Matrix {
	t.Helper()
	m, err := etc.CVB(etc.CVBParams{Tasks: 18, Machines: 4, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, stats.NewSource(7))
	if err != nil {
		t.Fatalf("CVB: %v", err)
	}
	return m
}

// killingEvaluator cancels the context after a fixed number of Scores
// calls, simulating a crash mid-generation.
type killingEvaluator struct {
	inner  Evaluator
	calls  int
	killAt int
	cancel context.CancelFunc
}

func (e *killingEvaluator) Scores(ctx context.Context, allocs [][]int) ([]float64, error) {
	e.calls++
	if e.calls > e.killAt {
		e.cancel()
		return nil, ctx.Err()
	}
	return e.inner.Scores(ctx, allocs)
}

func sameResult(t *testing.T, label string, got, want *SearchResult) {
	t.Helper()
	if len(got.Best) != len(want.Best) {
		t.Fatalf("%s: best length %d, want %d", label, len(got.Best), len(want.Best))
	}
	for i := range got.Best {
		if got.Best[i] != want.Best[i] {
			t.Fatalf("%s: best[%d] = %d, want %d", label, i, got.Best[i], want.Best[i])
		}
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"fitness", got.BestFitness, want.BestFitness},
		{"rho", got.BestRho, want.BestRho},
		{"makespan", got.BestMakespan, want.BestMakespan},
		{"bound", got.Bound, want.Bound},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Fatalf("%s: %s = %x, want %x", label, f.name, math.Float64bits(f.got), math.Float64bits(f.want))
		}
	}
	if got.Generations != want.Generations || got.Candidates != want.Candidates ||
		got.EngineCandidates != want.EngineCandidates || got.RadiusEvals != want.RadiusEvals ||
		got.Partial != want.Partial {
		t.Fatalf("%s: counters %+v, want %+v", label, got, want)
	}
}

// runInterrupted runs the search with a context-killing evaluator, collects
// the last checkpoint before death, then resumes from it (round-tripped
// through JSON, like the on-disk path) and returns the resumed result.
func runInterrupted(t *testing.T, m *etc.Matrix, opt SearchOptions, killAt int) *SearchResult {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	kopt := opt
	kopt.OnCheckpoint = func(cp *Checkpoint) { last = cp }
	ev := &killingEvaluator{
		inner:  ClosedFormEvaluator{M: m, Bound: opt.Bound},
		killAt: killAt,
		cancel: cancel,
	}
	res, err := Search(ctx, m, ev, kopt, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted search: err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("interrupted search: result %+v, want partial", res)
	}
	if last == nil {
		t.Fatal("interrupted search died before any checkpoint")
	}
	raw, err := json.Marshal(last)
	if err != nil {
		t.Fatalf("marshal checkpoint: %v", err)
	}
	var restored Checkpoint
	if err := json.Unmarshal(raw, &restored); err != nil {
		t.Fatalf("unmarshal checkpoint: %v", err)
	}
	ropt := opt
	ropt.Checkpoint = &restored
	resumed, err := Search(context.Background(), m, nil, ropt, nil)
	if err != nil {
		t.Fatalf("resumed search: %v", err)
	}
	return resumed
}

func TestGeneticResumeBitIdentical(t *testing.T) {
	m := ckptMatrix(t)
	opt := SearchOptions{
		Algo:        AlgoGA,
		Bound:       180,
		Seed:        41,
		Population:  12,
		Generations: 9,
	}
	control, err := Search(context.Background(), m, nil, opt, nil)
	if err != nil {
		t.Fatalf("control search: %v", err)
	}
	// Kill after the initial scoring call and after every generation's call.
	for killAt := 1; killAt <= 9; killAt += 2 {
		resumed := runInterrupted(t, m, opt, killAt)
		sameResult(t, "ga resume", resumed, control)
	}
}

func TestAnnealResumeBitIdentical(t *testing.T) {
	m := ckptMatrix(t)
	opt := SearchOptions{
		Algo:          AlgoAnneal,
		Bound:         180,
		Seed:          41,
		Steps:         96,
		ProposalBlock: 8,
	}
	control, err := Search(context.Background(), m, nil, opt, nil)
	if err != nil {
		t.Fatalf("control search: %v", err)
	}
	for killAt := 1; killAt <= 9; killAt += 2 {
		resumed := runInterrupted(t, m, opt, killAt)
		sameResult(t, "anneal resume", resumed, control)
	}
}

func TestResumeCompleteCheckpointReturnsFinal(t *testing.T) {
	m := ckptMatrix(t)
	opt := SearchOptions{Algo: AlgoGA, Bound: 180, Seed: 5, Population: 8, Generations: 4}
	var last *Checkpoint
	opt.OnCheckpoint = func(cp *Checkpoint) { last = cp }
	control, err := Search(context.Background(), m, nil, opt, nil)
	if err != nil {
		t.Fatalf("control search: %v", err)
	}
	if last == nil || last.Generation != 4 {
		t.Fatalf("final checkpoint %+v, want generation 4", last)
	}
	ropt := opt
	ropt.OnCheckpoint = nil
	ropt.Checkpoint = last
	resumed, err := Search(context.Background(), m, nil, ropt, nil)
	if err != nil {
		t.Fatalf("resume of complete run: %v", err)
	}
	sameResult(t, "complete resume", resumed, control)
}

func TestResumeMismatchRejected(t *testing.T) {
	m := ckptMatrix(t)
	opt := SearchOptions{Algo: AlgoGA, Bound: 180, Seed: 5, Population: 8, Generations: 4}
	var last *Checkpoint
	opt.OnCheckpoint = func(cp *Checkpoint) { last = cp }
	if _, err := Search(context.Background(), m, nil, opt, nil); err != nil {
		t.Fatalf("search: %v", err)
	}
	cases := map[string]SearchOptions{
		"different seed":       {Algo: AlgoGA, Bound: 180, Seed: 6, Population: 8, Generations: 4},
		"different algo":       {Algo: AlgoAnneal, Bound: 180, Seed: 5},
		"different bound":      {Algo: AlgoGA, Bound: 181, Seed: 5, Population: 8, Generations: 4},
		"different population": {Algo: AlgoGA, Bound: 180, Seed: 5, Population: 10, Generations: 4},
	}
	for name, ropt := range cases {
		ropt.Checkpoint = last
		if _, err := Search(context.Background(), m, nil, ropt, nil); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("%s: err = %v, want ErrCheckpointMismatch", name, err)
		}
	}
	// A structurally broken checkpoint is rejected too.
	bad := *last
	bad.Best.Alloc = []int{99}
	ropt := opt
	ropt.OnCheckpoint = nil
	ropt.Checkpoint = &bad
	if _, err := Search(context.Background(), m, nil, ropt, nil); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("malformed best: err = %v, want ErrCheckpointMismatch", err)
	}
}

func TestSourcePosSkipRoundTrip(t *testing.T) {
	a := stats.NewSource(99)
	for i := 0; i < 57; i++ {
		a.Float64()
		if i%5 == 0 {
			a.Intn(17)
		}
		if i%7 == 0 {
			a.Normal(0, 1)
		}
	}
	pos := a.Pos()
	b := stats.NewSource(99)
	b.Skip(pos)
	if b.Pos() != pos {
		t.Fatalf("Pos after Skip = %d, want %d", b.Pos(), pos)
	}
	for i := 0; i < 100; i++ {
		x, y := a.Float64(), b.Float64()
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("draw %d: %x != %x", i, math.Float64bits(x), math.Float64bits(y))
		}
	}
}
