package sched

import (
	"fmt"
	"math"

	"fepia/internal/etc"
	"fepia/internal/stats"
)

// This file adds the two metaheuristic mappers customary in the
// heterogeneous-computing evaluation methodology (simulated annealing and a
// genetic algorithm), configured to optimize the FePIA robustness radius
// directly. They trade runtime for solution quality beyond what the greedy
// and hill-climbing mappers reach, and serve as the "how much robustness is
// attainable" reference in ranking experiments.

// objective scores an allocation: the closed-form robustness radius under a
// fixed bound, with a strong penalty when some machine exceeds the bound
// outright (negative radius).
func objective(m *etc.Matrix, alloc []int, bound float64) float64 {
	load := make([]float64, m.Machines)
	count := make([]int, m.Machines)
	for t, j := range alloc {
		load[j] += m.At(t, j)
		count[j]++
	}
	rho := math.Inf(1)
	for j := 0; j < m.Machines; j++ {
		if count[j] == 0 {
			continue
		}
		if r := (bound - load[j]) / math.Sqrt(float64(count[j])); r < rho {
			rho = r
		}
	}
	return rho
}

// AnnealOptions configure the simulated-annealing mapper.
type AnnealOptions struct {
	// Tau sets the robustness requirement: bound = Tau · M(min-min).
	Tau float64
	// Steps is the number of proposals (default 200·tasks).
	Steps int
	// T0 is the initial temperature in objective units (default: 10% of
	// the initial objective magnitude, floored at 1e-3).
	T0 float64
	// Seed drives the proposal stream.
	Seed int64
}

// Anneal returns a simulated-annealing heuristic that maximizes the
// robustness radius under the fixed bound τ·M(min-min), starting from the
// Min-Min allocation and proposing single-task moves with a geometric
// cooling schedule. Deterministic for a fixed seed.
func Anneal(opt AnnealOptions) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		if err := check(m); err != nil {
			return nil, err
		}
		if opt.Tau <= 1 {
			return nil, fmt.Errorf("sched: Anneal tau = %g, want > 1", opt.Tau)
		}
		src := stats.NewSource(opt.Seed ^ 0xa22ea1)
		cur, err := MinMin(m)
		if err != nil {
			return nil, err
		}
		bound := opt.Tau * makespanOf(m, cur)
		steps := opt.Steps
		if steps <= 0 {
			steps = 200 * m.Tasks
		}
		curScore := objective(m, cur, bound)
		best := append([]int(nil), cur...)
		bestScore := curScore
		temp := opt.T0
		if temp <= 0 {
			temp = math.Max(1e-3, 0.1*math.Abs(curScore))
		}
		cooling := math.Pow(1e-3, 1/float64(steps)) // temp → 0.1% of T0
		for s := 0; s < steps; s++ {
			t := src.Intn(m.Tasks)
			from := cur[t]
			to := src.Intn(m.Machines)
			if to == from {
				temp *= cooling
				continue
			}
			cur[t] = to
			next := objective(m, cur, bound)
			accept := next >= curScore ||
				src.Float64() < math.Exp((next-curScore)/temp)
			if accept {
				curScore = next
				if next > bestScore {
					bestScore = next
					copy(best, cur)
				}
			} else {
				cur[t] = from
			}
			temp *= cooling
		}
		return best, nil
	}
}

// GAOptions configure the genetic-algorithm mapper.
type GAOptions struct {
	// Tau sets the robustness requirement as in AnnealOptions.
	Tau float64
	// Population size (default 40).
	Population int
	// Generations (default 100).
	Generations int
	// MutationRate is the per-gene mutation probability (default 2/tasks).
	MutationRate float64
	// Seed drives the evolutionary stream.
	Seed int64
}

// Genetic returns a generational GA mapper maximizing the robustness radius
// under the fixed bound τ·M(min-min). The population is seeded with the
// classical heuristics plus random allocations, uses tournament selection,
// single-point crossover, per-gene mutation, and elitism of one.
// Deterministic for a fixed seed.
func Genetic(opt GAOptions) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		if err := check(m); err != nil {
			return nil, err
		}
		if opt.Tau <= 1 {
			return nil, fmt.Errorf("sched: Genetic tau = %g, want > 1", opt.Tau)
		}
		src := stats.NewSource(opt.Seed ^ 0x9e4e71c)
		pop := opt.Population
		if pop <= 0 {
			pop = 40
		}
		gens := opt.Generations
		if gens <= 0 {
			gens = 100
		}
		mut := opt.MutationRate
		if mut <= 0 {
			mut = 2 / float64(m.Tasks)
		}

		mmAlloc, err := MinMin(m)
		if err != nil {
			return nil, err
		}
		bound := opt.Tau * makespanOf(m, mmAlloc)

		// Seed population: known heuristics + random fill.
		var population [][]int
		for _, h := range []Heuristic{MinMin, MaxMin, MCT, OLB, RoundRobin} {
			alloc, err := h(m)
			if err != nil {
				return nil, err
			}
			population = append(population, alloc)
		}
		for len(population) < pop {
			alloc := make([]int, m.Tasks)
			for t := range alloc {
				alloc[t] = src.Intn(m.Machines)
			}
			population = append(population, alloc)
		}
		population = population[:pop]

		scores := make([]float64, pop)
		evaluate := func() (bestIdx int) {
			for i, a := range population {
				scores[i] = objective(m, a, bound)
				if scores[i] > scores[bestIdx] {
					bestIdx = i
				}
			}
			return bestIdx
		}
		tournament := func() []int {
			a, b := src.Intn(pop), src.Intn(pop)
			if scores[a] >= scores[b] {
				return population[a]
			}
			return population[b]
		}

		bestIdx := evaluate()
		elite := append([]int(nil), population[bestIdx]...)
		eliteScore := scores[bestIdx]
		for g := 0; g < gens; g++ {
			next := make([][]int, 0, pop)
			next = append(next, append([]int(nil), elite...))
			for len(next) < pop {
				p1, p2 := tournament(), tournament()
				cut := src.Intn(m.Tasks)
				child := make([]int, m.Tasks)
				copy(child, p1[:cut])
				copy(child[cut:], p2[cut:])
				for t := range child {
					if src.Float64() < mut {
						child[t] = src.Intn(m.Machines)
					}
				}
				next = append(next, child)
			}
			population = next
			bestIdx = evaluate()
			if scores[bestIdx] > eliteScore {
				eliteScore = scores[bestIdx]
				copy(elite, population[bestIdx])
			}
		}
		return elite, nil
	}
}
