package sched

import (
	"context"

	"fepia/internal/etc"
)

// This file keeps the two metaheuristic mappers' historical Heuristic-shaped
// entry points (simulated annealing and a genetic algorithm, the mappers
// customary in the heterogeneous-computing evaluation methodology). Both are
// thin wrappers over Search (search.go) with the ClosedFormEvaluator fast
// path — the hand-rolled private objective() they used to carry is gone;
// candidate scoring now shares the search service's arithmetic, which
// TestClosedFormScoreMatchesEngine proves bit-identical to the engine.

// AnnealOptions configure the simulated-annealing mapper.
type AnnealOptions struct {
	// Tau sets the robustness requirement: bound = Tau · M(min-min).
	Tau float64
	// Steps is the number of proposals (default 200·tasks).
	Steps int
	// T0 is the initial temperature in objective units (default: 10% of
	// the initial objective magnitude, floored at 1e-3).
	T0 float64
	// Seed drives the proposal stream.
	Seed int64
}

// Anneal returns a simulated-annealing heuristic that maximizes the
// robustness radius under the fixed bound τ·M(min-min), starting from the
// Min-Min allocation and proposing single-task moves with a geometric
// cooling schedule. Deterministic for a fixed seed. Rejects a non-finite or
// ≤ 1 Tau with ErrBadTau.
func Anneal(opt AnnealOptions) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		res, err := Search(context.Background(), m, nil, SearchOptions{
			Algo:  AlgoAnneal,
			Tau:   opt.Tau,
			Steps: opt.Steps,
			T0:    opt.T0,
			Seed:  opt.Seed,
		}, nil)
		if err != nil {
			return nil, err
		}
		return res.Best, nil
	}
}

// GAOptions configure the genetic-algorithm mapper.
type GAOptions struct {
	// Tau sets the robustness requirement as in AnnealOptions.
	Tau float64
	// Population size (default 40).
	Population int
	// Generations (default 100).
	Generations int
	// MutationRate is the per-gene mutation probability (default
	// min(1, 2/tasks); explicit values must be finite in (0, 1]).
	MutationRate float64
	// Seed drives the evolutionary stream.
	Seed int64
}

// Genetic returns a generational GA mapper maximizing the robustness radius
// under the fixed bound τ·M(min-min). The population is seeded with the
// classical heuristics plus random allocations, uses tournament selection,
// single-point crossover, per-gene mutation, and elitism of one.
// Deterministic for a fixed seed. Rejects a non-finite or ≤ 1 Tau with
// ErrBadTau and a non-finite or out-of-(0,1] mutation rate with
// ErrBadMutationRate.
func Genetic(opt GAOptions) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		res, err := Search(context.Background(), m, nil, SearchOptions{
			Algo:         AlgoGA,
			Tau:          opt.Tau,
			Population:   opt.Population,
			Generations:  opt.Generations,
			MutationRate: opt.MutationRate,
			Seed:         opt.Seed,
		}, nil)
		if err != nil {
			return nil, err
		}
		return res.Best, nil
	}
}
