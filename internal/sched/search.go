package sched

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/etc"
	"fepia/internal/makespan"
	"fepia/internal/stats"
)

// This file is the robustness-aware allocation search: simulated annealing
// and a generational GA whose candidate allocations are scored by a
// pluggable Evaluator — the engine's batch tier on a single node, the
// cluster scatter path behind a coordinator, or the documented closed-form
// fast path (ClosedFormScore, proven bit-equal to the engine on the
// makespan family). One search turns into thousands of radius evaluations:
// every generation is handed to the evaluator as one batch.
//
// Determinism contract: for a fixed SearchOptions (including Seed and
// ProposalBlock) the search's random stream, candidate sequence, and result
// depend only on the options and the evaluator's *values* — and every
// shipped evaluator returns bit-identical scores for the same candidates
// (the oracle differential proves serial == batch == 3-worker cluster).
// Fixed seed therefore means bit-identical best allocation on any backend.

// Search algorithms.
const (
	// AlgoAnneal is simulated annealing over single-task moves.
	AlgoAnneal = "anneal"
	// AlgoGA is the generational genetic algorithm.
	AlgoGA = "ga"
)

// Search objectives.
const (
	// ObjectiveMaxRho maximizes the robustness radius ρ under the fixed
	// makespan bound (infeasible allocations are driven back toward
	// feasibility by their signed closed-form score).
	ObjectiveMaxRho = "max-rho"
	// ObjectiveMinMakespan minimizes the makespan subject to ρ ≥ RhoMin.
	// Candidates violating the constraint rank strictly below every
	// satisfying one, ordered by how far they are from satisfying it.
	ObjectiveMinMakespan = "min-makespan"
)

// Typed validation errors.
var (
	// ErrBadTau rejects a non-finite or ≤ 1 robustness requirement. (A τ of
	// NaN slips through a naive `tau <= 1` check and used to propagate NaN
	// objectives through a whole search.)
	ErrBadTau = errors.New("sched: tau must be finite and > 1")
	// ErrBadMutationRate rejects an explicit GA mutation rate that is not a
	// finite probability in (0, 1].
	ErrBadMutationRate = errors.New("sched: mutation rate must be finite in (0, 1]")
	// ErrBadSearch reports an invalid SearchOptions field not covered by a
	// more specific error.
	ErrBadSearch = errors.New("sched: invalid search options")
)

// Evaluator scores candidate allocations under the search's fixed makespan
// bound, returning the engine robustness radius ρ of each (one call per
// generation or proposal block). Callers only pass feasible allocations —
// ones whose makespan does not exceed the bound — because a robustness
// radius is a distance and cannot express "already violating"; the search
// scores infeasible candidates itself with the signed closed form.
//
// Implementations must be deterministic: the same allocations under the
// same bound return bit-identical scores, regardless of internal
// parallelism or placement.
type Evaluator interface {
	Scores(ctx context.Context, allocs [][]int) ([]float64, error)
}

// SearchOptions configure a robustness-aware allocation search.
type SearchOptions struct {
	// Algo selects AlgoAnneal or AlgoGA (default AlgoGA).
	Algo string
	// Objective selects ObjectiveMaxRho (default) or ObjectiveMinMakespan.
	Objective string
	// Tau sets the robustness requirement: bound = Tau · M(min-min).
	Tau float64
	// Bound, when > 0, is the explicit makespan requirement and overrides
	// Tau. Must be finite.
	Bound float64
	// RhoMin is the robustness constraint for ObjectiveMinMakespan
	// (values ≤ 0 mean "merely feasible").
	RhoMin float64
	// Seed drives every random draw of the search.
	Seed int64

	// Steps is the annealing proposal budget (default 200·tasks).
	Steps int
	// T0 is the initial annealing temperature in fitness units (default:
	// 10% of the initial fitness magnitude, floored at 1e-3).
	T0 float64
	// ProposalBlock is how many annealing proposals are drawn and scored
	// per evaluator call (default 16). Part of the deterministic trajectory:
	// accepting a proposal discards the rest of its block, so the block
	// size shapes the walk and must match across backends being compared.
	ProposalBlock int

	// Population size for AlgoGA (default 40).
	Population int
	// Generations for AlgoGA (default 100).
	Generations int
	// MutationRate is the GA per-gene mutation probability. Zero selects
	// the default min(1, 2/tasks); explicit values must be finite in
	// (0, 1].
	MutationRate float64

	// Resume, when non-nil, seeds the search with a previous best
	// allocation: annealing starts from it, the GA injects it into the
	// initial population. Lets an operator continue a deadline-truncated
	// search from the partial best reported in /statz.
	Resume []int

	// Checkpoint, when non-nil, restores serialized search state (a prior
	// OnCheckpoint emission) and continues the trajectory exactly where it
	// stopped: candidate set, best-so-far, counters, and random-stream
	// position. Unlike Resume — which merely seeds a fresh trajectory — a
	// checkpointed resume is bit-identical to the uninterrupted run.
	// Overrides Resume. Returns ErrCheckpointMismatch when the checkpoint
	// belongs to a different search (algorithm, instance, or tuning).
	Checkpoint *Checkpoint
	// OnCheckpoint, when non-nil, is called synchronously after the initial
	// scoring and after every completed generation (GA) or proposal block
	// (annealing) with the state needed to resume. The callback owns the
	// pointee.
	OnCheckpoint func(*Checkpoint)
}

// Progress is a snapshot handed to the progress callback after every scored
// generation (GA) or proposal block (annealing).
type Progress struct {
	Generation   int // completed generations / blocks
	Generations  int // planned total
	Best         []int
	BestFitness  float64
	BestRho      float64
	BestMakespan float64
	BestFeasible bool
	Candidates   int   // candidates scored so far (engine + closed-form-only)
	RadiusEvals  int64 // per-feature radius evaluations driven through the evaluator
}

// SearchResult is the outcome of a Search.
type SearchResult struct {
	// Best is the best allocation found.
	Best []int
	// BestFitness is Best's objective fitness (ρ for ObjectiveMaxRho).
	BestFitness float64
	// BestRho is Best's robustness radius under Bound; negative (the signed
	// closed-form score) when Best violates the bound.
	BestRho float64
	// BestMakespan is Best's estimated makespan.
	BestMakespan float64
	// BestFeasible reports BestMakespan ≤ Bound.
	BestFeasible bool
	// Bound is the resolved makespan requirement the search ran under.
	Bound float64
	// Generations counts completed generations (GA) or proposal blocks
	// (annealing).
	Generations int
	// Candidates counts every scored candidate allocation.
	Candidates int
	// EngineCandidates counts the candidates scored through the Evaluator.
	EngineCandidates int
	// RadiusEvals counts per-feature radius evaluations driven through the
	// Evaluator: one per non-empty machine of each engine-scored candidate.
	RadiusEvals int64
	// Partial reports the search stopped early (context cancelled or
	// deadline exceeded) and Best is the best of the completed part.
	Partial bool
}

// ResolveBound resolves the search's fixed makespan requirement: an explicit
// finite opt.Bound wins; otherwise Tau (validated against ErrBadTau) times
// the min-min makespan of the instance.
func ResolveBound(m *etc.Matrix, opt SearchOptions) (float64, error) {
	if opt.Bound != 0 {
		if !(opt.Bound > 0) || math.IsInf(opt.Bound, 0) {
			return 0, fmt.Errorf("%w: bound = %g, want finite > 0", ErrBadSearch, opt.Bound)
		}
		return opt.Bound, nil
	}
	if math.IsNaN(opt.Tau) || math.IsInf(opt.Tau, 0) || opt.Tau <= 1 {
		return 0, fmt.Errorf("%w (got %g)", ErrBadTau, opt.Tau)
	}
	mm, err := MinMin(m)
	if err != nil {
		return 0, err
	}
	return opt.Tau * makespanOf(m, mm), nil
}

// ClosedFormScore is the documented fast path for the makespan family: the
// signed robustness radius of the allocation under the fixed bound,
//
//	min over non-empty machines j of ((bound − F_j)/n_j) · √n_j,
//
// negative when some machine already exceeds the bound. For feasible
// allocations this replicates the engine's arithmetic operation for
// operation — the combined linear radius under core.Unweighted is
// |(B − K·C)/(K·K)| · √(K·K) with K·K = n_j exactly and K·C accumulating
// bit-identically to FinishTimes — so fast-path and engine scores are
// bitwise equal (TestClosedFormScoreMatchesEngine pins this). The naive
// one-rounding form (bound−F)/√n is NOT bit-identical and is what this
// replaces.
func ClosedFormScore(m *etc.Matrix, alloc []int, bound float64) float64 {
	load := make([]float64, m.Machines)
	count := make([]int, m.Machines)
	for t, j := range alloc {
		load[j] += m.At(t, j)
		count[j]++
	}
	rho := math.Inf(1)
	for j := 0; j < m.Machines; j++ {
		if count[j] == 0 {
			continue
		}
		n := float64(count[j])
		t := (bound - load[j]) / n
		if r := t * math.Sqrt(n); r < rho {
			rho = r
		}
	}
	return rho
}

// ClosedFormEvaluator scores candidates with ClosedFormScore — the in-process
// fast path used by the Anneal/Genetic heuristic wrappers and cmd/rank.
// Bit-identical to EngineEvaluator on the (feasible) candidates a Search
// passes to its evaluator.
type ClosedFormEvaluator struct {
	M     *etc.Matrix
	Bound float64
}

// Scores implements Evaluator.
func (e ClosedFormEvaluator) Scores(ctx context.Context, allocs [][]int) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]float64, len(allocs))
	for i, a := range allocs {
		out[i] = ClosedFormScore(e.M, a, e.Bound)
	}
	return out, nil
}

// EngineEvaluator scores candidates through the generic engine: each
// allocation becomes a makespan analysis under the shared bound and the
// whole generation runs through core.RobustnessBatch under the unweighted
// (native-units) weighting. Serial selects the one-at-a-time
// RobustnessWith reference backend instead (the oracle's baseline).
type EngineEvaluator struct {
	M     *etc.Matrix
	Bound float64
	// Workers sizes the batch pool (≤ 0 selects GOMAXPROCS).
	Workers int
	// Serial scores candidates one by one on one goroutine.
	Serial bool
}

// Scores implements Evaluator.
func (e *EngineEvaluator) Scores(ctx context.Context, allocs [][]int) ([]float64, error) {
	out := make([]float64, len(allocs))
	if e.Serial {
		for i, alloc := range allocs {
			a, err := e.analysis(alloc)
			if err != nil {
				return nil, err
			}
			res, err := a.RobustnessWith(ctx, core.Unweighted{}, core.EvalOptions{})
			if err != nil {
				return nil, err
			}
			out[i] = res.Value
		}
		return out, nil
	}
	items := make([]core.BatchItem, len(allocs))
	for i, alloc := range allocs {
		a, err := e.analysis(alloc)
		if err != nil {
			return nil, err
		}
		items[i] = core.BatchItem{A: a, W: core.Unweighted{}}
	}
	results, errs := core.RobustnessBatch(ctx, items, core.EvalOptions{Workers: e.Workers})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sched: engine evaluator candidate %d: %w", i, err)
		}
		out[i] = results[i].Value
	}
	return out, nil
}

func (e *EngineEvaluator) analysis(alloc []int) (*core.Analysis, error) {
	sys := &makespan.System{ETC: e.M, Alloc: alloc}
	return sys.AnalysisWithBound(e.Bound)
}

// scored is one candidate allocation with everything the search needs.
type scored struct {
	alloc    []int
	ms       float64 // estimated makespan
	rho      float64 // engine radius if feasible, signed closed form if not
	feasible bool
	fit      float64
	feats    int // non-empty machines = per-feature evaluations when engine-scored
}

// searchRun carries one Search invocation's fixed state.
type searchRun struct {
	m      *etc.Matrix
	ev     Evaluator
	bound  float64
	obj    string
	rhoMin float64

	candidates int
	engine     int
	radius     int64
}

// scoreBatch scores one generation: closed form for everyone (feasibility +
// makespan), evaluator for the feasible subset, fitness per the objective.
func (r *searchRun) scoreBatch(ctx context.Context, allocs [][]int) ([]scored, error) {
	out := make([]scored, len(allocs))
	var feasIdx []int
	var feasAllocs [][]int
	for i, alloc := range allocs {
		load := make([]float64, r.m.Machines)
		count := make([]int, r.m.Machines)
		for t, j := range alloc {
			load[j] += r.m.At(t, j)
			count[j]++
		}
		ms, feats := 0.0, 0
		fast := math.Inf(1)
		for j := 0; j < r.m.Machines; j++ {
			if load[j] > ms {
				ms = load[j]
			}
			if count[j] == 0 {
				continue
			}
			feats++
			n := float64(count[j])
			t := (r.bound - load[j]) / n
			if v := t * math.Sqrt(n); v < fast {
				fast = v
			}
		}
		out[i] = scored{alloc: alloc, ms: ms, rho: fast, feasible: fast >= 0, feats: feats}
		if out[i].feasible {
			feasIdx = append(feasIdx, i)
			feasAllocs = append(feasAllocs, alloc)
		}
	}
	if len(feasAllocs) > 0 {
		scores, err := r.ev.Scores(ctx, feasAllocs)
		if err != nil {
			return nil, err
		}
		if len(scores) != len(feasAllocs) {
			return nil, fmt.Errorf("sched: evaluator returned %d scores for %d candidates", len(scores), len(feasAllocs))
		}
		for k, i := range feasIdx {
			out[i].rho = scores[k]
			r.radius += int64(out[i].feats)
		}
		r.engine += len(feasAllocs)
	}
	for i := range out {
		c := &out[i]
		switch r.obj {
		case ObjectiveMinMakespan:
			if c.feasible && c.rho >= r.rhoMin {
				c.fit = -c.ms
			} else {
				// Rank strictly below every satisfying candidate (those
				// have fit ≥ −bound since feasible ⇒ ms ≤ bound), ordered
				// by makespan and by distance from the ρ constraint.
				c.fit = -c.ms - 2*r.bound - (r.rhoMin - c.rho)
			}
		default: // ObjectiveMaxRho
			c.fit = c.rho
		}
	}
	r.candidates += len(allocs)
	return out, nil
}

// Search runs a robustness-aware allocation search over m, scoring
// candidates through ev (nil selects the in-process ClosedFormEvaluator
// fast path). progress, when non-nil, is called after every scored
// generation or proposal block.
//
// On context cancellation or deadline after at least one completed
// generation, Search returns the best-so-far result with Partial set
// alongside the context error; callers that want the partial result must
// check both returns. Before the first completed generation it returns only
// the error.
func Search(ctx context.Context, m *etc.Matrix, ev Evaluator, opt SearchOptions, progress func(Progress)) (*SearchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := check(m); err != nil {
		return nil, err
	}
	algo := opt.Algo
	if algo == "" {
		algo = AlgoGA
	}
	obj := opt.Objective
	if obj == "" {
		obj = ObjectiveMaxRho
	}
	switch obj {
	case ObjectiveMaxRho, ObjectiveMinMakespan:
	default:
		return nil, fmt.Errorf("%w: unknown objective %q", ErrBadSearch, opt.Objective)
	}
	if math.IsNaN(opt.RhoMin) || math.IsInf(opt.RhoMin, 0) {
		return nil, fmt.Errorf("%w: rhoMin = %g, want finite", ErrBadSearch, opt.RhoMin)
	}
	rhoMin := opt.RhoMin
	if rhoMin < 0 {
		rhoMin = 0
	}
	b, err := ResolveBound(m, opt)
	if err != nil {
		return nil, err
	}
	if opt.Resume != nil {
		if len(opt.Resume) != m.Tasks {
			return nil, fmt.Errorf("%w: resume allocation has %d tasks, want %d", ErrBadSearch, len(opt.Resume), m.Tasks)
		}
		for t, j := range opt.Resume {
			if j < 0 || j >= m.Machines {
				return nil, fmt.Errorf("%w: resume task %d on machine %d of %d", ErrBadSearch, t, j, m.Machines)
			}
		}
	}
	if ev == nil {
		ev = ClosedFormEvaluator{M: m, Bound: b}
	}
	run := &searchRun{m: m, ev: ev, bound: b, obj: obj, rhoMin: rhoMin}
	switch algo {
	case AlgoAnneal:
		return run.anneal(ctx, opt, progress)
	case AlgoGA:
		return run.genetic(ctx, opt, progress)
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q", ErrBadSearch, opt.Algo)
	}
}

// result assembles the final SearchResult around the best candidate.
func (r *searchRun) result(best scored, gens int, partial bool) *SearchResult {
	return &SearchResult{
		Best:             append([]int(nil), best.alloc...),
		BestFitness:      best.fit,
		BestRho:          best.rho,
		BestMakespan:     best.ms,
		BestFeasible:     best.feasible,
		Bound:            r.bound,
		Generations:      gens,
		Candidates:       r.candidates,
		EngineCandidates: r.engine,
		RadiusEvals:      r.radius,
		Partial:          partial,
	}
}

func (r *searchRun) report(progress func(Progress), best scored, gen, total int) {
	if progress == nil {
		return
	}
	progress(Progress{
		Generation:   gen,
		Generations:  total,
		Best:         append([]int(nil), best.alloc...),
		BestFitness:  best.fit,
		BestRho:      best.rho,
		BestMakespan: best.ms,
		BestFeasible: best.feasible,
		Candidates:   r.candidates,
		RadiusEvals:  r.radius,
	})
}

// anneal is simulated annealing over single-task moves, batched: each block
// of proposals is drawn up front (consuming the random stream
// deterministically), scored in one evaluator call, then walked in order
// with the usual Metropolis acceptance; an accepted move invalidates the
// rest of its block (those proposals were relative to the pre-move
// allocation), so the block is discarded and the next one drawn.
func (r *searchRun) anneal(ctx context.Context, opt SearchOptions, progress func(Progress)) (*SearchResult, error) {
	m := r.m
	src := stats.NewSource(opt.Seed ^ 0xa22ea1)
	steps := opt.Steps
	if steps <= 0 {
		steps = 200 * m.Tasks
	}
	block := opt.ProposalBlock
	if block <= 0 {
		block = 16
	}
	totalBlocks := (steps + block - 1) / block
	sum := checkpointSum(m, AlgoAnneal, r.obj, opt.Seed,
		[]float64{r.bound, r.rhoMin, opt.T0}, []int{steps, block})

	var cur []int
	var curC, best scored
	var temp float64
	processed, blocks := 0, 0
	if cp := opt.Checkpoint; cp != nil {
		if err := checkCheckpoint(m, cp, AlgoAnneal, sum); err != nil {
			return nil, err
		}
		if cp.Current == nil || !allocWellFormed(m, cp.Current.Alloc) {
			return nil, fmt.Errorf("%w: current allocation malformed", ErrCheckpointMismatch)
		}
		if !(cp.Temp > 0) || math.IsInf(cp.Temp, 0) {
			return nil, fmt.Errorf("%w: temperature %g", ErrCheckpointMismatch, cp.Temp)
		}
		curC = fromScore(*cp.Current)
		cur = curC.alloc
		best = fromScore(cp.Best)
		temp = cp.Temp
		processed, blocks = cp.Processed, cp.Generation
		r.candidates, r.engine, r.radius = cp.Candidates, cp.EngineCandidates, cp.RadiusEvals
		src.Skip(cp.RNGPos)
		if processed >= steps {
			return r.result(best, blocks, false), nil
		}
	} else {
		var err error
		cur, err = MinMin(m)
		if err != nil {
			return nil, err
		}
		if opt.Resume != nil {
			cur = append([]int(nil), opt.Resume...)
		}
		init, err := r.scoreBatch(ctx, [][]int{append([]int(nil), cur...)})
		if err != nil {
			return nil, err
		}
		curC = init[0]
		best = curC
		if m.Machines == 1 {
			// No move exists; the start allocation is the only allocation.
			r.report(progress, best, 0, 0)
			return r.result(best, 0, false), nil
		}
		temp = opt.T0
		if temp <= 0 {
			temp = math.Max(1e-3, 0.1*math.Abs(curC.fit))
		}
		if opt.OnCheckpoint != nil {
			cp := r.annealCheckpoint(sum, opt.Seed, blocks, processed, src.Pos(), temp, cur, curC, best)
			opt.OnCheckpoint(&cp)
		}
	}
	cooling := math.Pow(1e-3, 1/float64(steps)) // temp → 0.1% of T0
	type prop struct{ t, to int }
	for processed < steps {
		if err := ctx.Err(); err != nil {
			return r.result(best, blocks, true), err
		}
		k := block
		if rem := steps - processed; k > rem {
			k = rem
		}
		props := make([]prop, k)
		allocs := make([][]int, k)
		for i := 0; i < k; i++ {
			t := src.Intn(m.Tasks)
			// Resample the target among the other machines: a self-move
			// (to == from) used to consume a step and cool the temperature
			// while proposing nothing — on 2 machines, half the budget.
			to := src.Intn(m.Machines - 1)
			if to >= cur[t] {
				to++
			}
			props[i] = prop{t, to}
			cand := append([]int(nil), cur...)
			cand[t] = to
			allocs[i] = cand
		}
		cands, err := r.scoreBatch(ctx, allocs)
		if err != nil {
			return r.result(best, blocks, true), err
		}
		for i := range props {
			c := cands[i]
			accept := c.fit >= curC.fit ||
				src.Float64() < math.Exp((c.fit-curC.fit)/temp)
			processed++
			temp *= cooling
			if accept {
				cur[props[i].t] = props[i].to
				curC = c
				if c.fit > best.fit {
					best = c
				}
				break // the rest of the block proposed against the old cur
			}
		}
		blocks++
		r.report(progress, best, blocks, totalBlocks)
		if opt.OnCheckpoint != nil {
			cp := r.annealCheckpoint(sum, opt.Seed, blocks, processed, src.Pos(), temp, cur, curC, best)
			opt.OnCheckpoint(&cp)
		}
	}
	return r.result(best, blocks, false), nil
}

// annealCheckpoint captures the walk after a completed block. cur is the
// authoritative current allocation (curC.alloc may alias it).
func (r *searchRun) annealCheckpoint(sum string, seed int64, blocks, processed int, pos uint64, temp float64, cur []int, curC, best scored) Checkpoint {
	current := toScore(curC)
	current.Alloc = append([]int(nil), cur...)
	return Checkpoint{
		Algo:             AlgoAnneal,
		Objective:        r.obj,
		OptionsSum:       sum,
		Seed:             seed,
		Generation:       blocks,
		RNGPos:           pos,
		Candidates:       r.candidates,
		EngineCandidates: r.engine,
		RadiusEvals:      r.radius,
		Best:             toScore(best),
		Current:          &current,
		Temp:             temp,
		Processed:        processed,
	}
}

// genetic is the generational GA: heuristic-seeded population, tournament
// selection, single-point crossover, per-gene mutation, elitism of one —
// with the whole population scored per generation in one evaluator call.
func (r *searchRun) genetic(ctx context.Context, opt SearchOptions, progress func(Progress)) (*SearchResult, error) {
	m := r.m
	src := stats.NewSource(opt.Seed ^ 0x9e4e71c)
	pop := opt.Population
	if pop <= 0 {
		pop = 40
	}
	gens := opt.Generations
	if gens <= 0 {
		gens = 100
	}
	mut := opt.MutationRate
	switch {
	case mut == 0:
		// The old default 2/tasks exceeds 1 when tasks < 2; clamp it.
		mut = math.Min(1, 2/float64(m.Tasks))
	case math.IsNaN(mut) || math.IsInf(mut, 0) || mut < 0 || mut > 1:
		return nil, fmt.Errorf("%w (got %g)", ErrBadMutationRate, opt.MutationRate)
	}

	sum := checkpointSum(m, AlgoGA, r.obj, opt.Seed,
		[]float64{r.bound, r.rhoMin, mut}, []int{pop, gens})

	var population [][]int
	var cands []scored
	var elite scored
	start := 0
	if cp := opt.Checkpoint; cp != nil {
		if err := checkCheckpoint(m, cp, AlgoGA, sum); err != nil {
			return nil, err
		}
		if len(cp.Population) != pop {
			return nil, fmt.Errorf("%w: population %d, want %d", ErrCheckpointMismatch, len(cp.Population), pop)
		}
		population = make([][]int, pop)
		cands = make([]scored, pop)
		for i, cs := range cp.Population {
			if !allocWellFormed(m, cs.Alloc) {
				return nil, fmt.Errorf("%w: population member %d malformed", ErrCheckpointMismatch, i)
			}
			cands[i] = fromScore(cs)
			population[i] = cands[i].alloc
		}
		elite = fromScore(cp.Best)
		r.candidates, r.engine, r.radius = cp.Candidates, cp.EngineCandidates, cp.RadiusEvals
		src.Skip(cp.RNGPos)
		start = cp.Generation
		if start >= gens {
			return r.result(elite, gens, false), nil
		}
	} else {
		// Seed population: resumed best first, then known heuristics, then
		// random fill.
		if opt.Resume != nil {
			population = append(population, append([]int(nil), opt.Resume...))
		}
		for _, h := range []Heuristic{MinMin, MaxMin, MCT, OLB, RoundRobin} {
			alloc, err := h(m)
			if err != nil {
				return nil, err
			}
			population = append(population, alloc)
		}
		for len(population) < pop {
			alloc := make([]int, m.Tasks)
			for t := range alloc {
				alloc[t] = src.Intn(m.Machines)
			}
			population = append(population, alloc)
		}
		population = population[:pop]

		var err error
		cands, err = r.scoreBatch(ctx, population)
		if err != nil {
			return nil, err
		}
		bestIdx := 0
		for i := range cands {
			if cands[i].fit > cands[bestIdx].fit {
				bestIdx = i
			}
		}
		elite = cands[bestIdx]
		elite.alloc = append([]int(nil), elite.alloc...)
		r.report(progress, elite, 0, gens)
		if opt.OnCheckpoint != nil {
			cp := r.gaCheckpoint(sum, opt.Seed, 0, src.Pos(), cands, elite)
			opt.OnCheckpoint(&cp)
		}
	}

	tournament := func() []int {
		a, b := src.Intn(pop), src.Intn(pop)
		if cands[a].fit >= cands[b].fit {
			return population[a]
		}
		return population[b]
	}
	for g := start; g < gens; g++ {
		if err := ctx.Err(); err != nil {
			return r.result(elite, g, true), err
		}
		next := make([][]int, 0, pop)
		next = append(next, append([]int(nil), elite.alloc...))
		for len(next) < pop {
			p1, p2 := tournament(), tournament()
			cut := src.Intn(m.Tasks)
			child := make([]int, m.Tasks)
			copy(child, p1[:cut])
			copy(child[cut:], p2[cut:])
			for t := range child {
				if src.Float64() < mut {
					child[t] = src.Intn(m.Machines)
				}
			}
			next = append(next, child)
		}
		population = next
		var err error
		cands, err = r.scoreBatch(ctx, population)
		if err != nil {
			return r.result(elite, g, true), err
		}
		bestIdx := 0
		for i := range cands {
			if cands[i].fit > cands[bestIdx].fit {
				bestIdx = i
			}
		}
		if cands[bestIdx].fit > elite.fit {
			elite = cands[bestIdx]
			elite.alloc = append([]int(nil), elite.alloc...)
		}
		r.report(progress, elite, g+1, gens)
		if opt.OnCheckpoint != nil {
			cp := r.gaCheckpoint(sum, opt.Seed, g+1, src.Pos(), cands, elite)
			opt.OnCheckpoint(&cp)
		}
	}
	return r.result(elite, gens, false), nil
}

// gaCheckpoint captures the GA after a completed generation: the scored
// population (allocations plus scores, so resume re-scores nothing), the
// elite, the counters, and the stream position.
func (r *searchRun) gaCheckpoint(sum string, seed int64, gen int, pos uint64, cands []scored, elite scored) Checkpoint {
	popScores := make([]CandidateScore, len(cands))
	for i, c := range cands {
		popScores[i] = toScore(c)
	}
	return Checkpoint{
		Algo:             AlgoGA,
		Objective:        r.obj,
		OptionsSum:       sum,
		Seed:             seed,
		Generation:       gen,
		RNGPos:           pos,
		Candidates:       r.candidates,
		EngineCandidates: r.engine,
		RadiusEvals:      r.radius,
		Best:             toScore(elite),
		Population:       popScores,
	}
}
