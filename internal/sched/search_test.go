package sched

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"

	"fepia/internal/etc"
	"fepia/internal/stats"
)

func searchMatrix(t *testing.T, tasks, machines int, seed int64) *etc.Matrix {
	t.Helper()
	m, err := etc.CVB(etc.CVBParams{Tasks: tasks, Machines: machines, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, stats.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestClosedFormScoreMatchesEngine is the acceptance proof for the fast
// path: on feasible allocations the signed closed form is BITWISE equal to
// the engine's combined radius under the unweighted weighting — same
// operations in the same order, not merely close.
func TestClosedFormScoreMatchesEngine(t *testing.T) {
	m := searchMatrix(t, 18, 5, 3)
	bound, err := ResolveBound(m, SearchOptions{Tau: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource(11)
	var allocs [][]int
	for _, h := range []Heuristic{MinMin, MaxMin, MCT, OLB, RoundRobin} {
		a, err := h(m)
		if err != nil {
			t.Fatal(err)
		}
		allocs = append(allocs, a)
	}
	for i := 0; i < 40; i++ {
		a := make([]int, m.Tasks)
		for t := range a {
			a[t] = src.Intn(m.Machines)
		}
		allocs = append(allocs, a)
	}
	// Keep only feasible candidates — the only ones a Search hands to its
	// evaluator (the engine cannot express "already violating").
	var feasible [][]int
	for _, a := range allocs {
		if ClosedFormScore(m, a, bound) >= 0 {
			feasible = append(feasible, a)
		}
	}
	if len(feasible) < 5 {
		t.Fatalf("fixture too tight: only %d feasible allocations", len(feasible))
	}
	serial := &EngineEvaluator{M: m, Bound: bound, Serial: true}
	batch := &EngineEvaluator{M: m, Bound: bound, Workers: 4}
	sGot, err := serial.Scores(context.Background(), feasible)
	if err != nil {
		t.Fatal(err)
	}
	bGot, err := batch.Scores(context.Background(), feasible)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range feasible {
		fast := ClosedFormScore(m, a, bound)
		if math.Float64bits(fast) != math.Float64bits(sGot[i]) {
			t.Errorf("alloc %d: closed form %x (%v) != serial engine %x (%v)",
				i, math.Float64bits(fast), fast, math.Float64bits(sGot[i]), sGot[i])
		}
		if math.Float64bits(fast) != math.Float64bits(bGot[i]) {
			t.Errorf("alloc %d: closed form %x != batch engine %x", i, math.Float64bits(fast), math.Float64bits(bGot[i]))
		}
	}
}

// TestSearchBackendsBitIdentical runs the same fixed-seed search through the
// fast path, the serial engine, and the batch engine, and demands identical
// best allocations and bit-identical scores and accounting.
func TestSearchBackendsBitIdentical(t *testing.T) {
	m := searchMatrix(t, 20, 4, 17)
	for _, algo := range []string{AlgoAnneal, AlgoGA} {
		for _, obj := range []string{ObjectiveMaxRho, ObjectiveMinMakespan} {
			opt := SearchOptions{
				Algo: algo, Objective: obj, Tau: 1.3, RhoMin: 0.5, Seed: 1,
				Steps: 600, Population: 16, Generations: 12,
			}
			bound, err := ResolveBound(m, opt)
			if err != nil {
				t.Fatal(err)
			}
			evs := map[string]Evaluator{
				"fast":   nil,
				"serial": &EngineEvaluator{M: m, Bound: bound, Serial: true},
				"batch":  &EngineEvaluator{M: m, Bound: bound, Workers: 4},
			}
			results := map[string]*SearchResult{}
			for name, ev := range evs {
				res, err := Search(context.Background(), m, ev, opt, nil)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", algo, obj, name, err)
				}
				results[name] = res
			}
			ref := results["fast"]
			for name, res := range results {
				if len(res.Best) != len(ref.Best) {
					t.Fatalf("%s/%s/%s: alloc length mismatch", algo, obj, name)
				}
				for i := range res.Best {
					if res.Best[i] != ref.Best[i] {
						t.Fatalf("%s/%s/%s: best alloc diverges at task %d", algo, obj, name, i)
					}
				}
				if math.Float64bits(res.BestRho) != math.Float64bits(ref.BestRho) ||
					math.Float64bits(res.BestFitness) != math.Float64bits(ref.BestFitness) ||
					math.Float64bits(res.BestMakespan) != math.Float64bits(ref.BestMakespan) {
					t.Fatalf("%s/%s/%s: scores diverge: %v vs %v", algo, obj, name, res, ref)
				}
				if res.Candidates != ref.Candidates || res.EngineCandidates != ref.EngineCandidates ||
					res.RadiusEvals != ref.RadiusEvals || res.Generations != ref.Generations {
					t.Fatalf("%s/%s/%s: accounting diverges: %+v vs %+v", algo, obj, name, res, ref)
				}
			}
			if obj == ObjectiveMinMakespan && results["fast"].BestFeasible {
				if results["fast"].BestRho < opt.RhoMin {
					t.Errorf("%s/%s: feasible best violates rho >= rhoMin: %v", algo, obj, results["fast"].BestRho)
				}
			}
		}
	}
}

// TestAnnealSeed1Trajectory pins the seed-1 annealing trajectory on a fixed
// instance — the regression test for the self-move bug, where `to == from`
// proposals consumed a step and cooled the temperature without moving. If
// the proposal distribution regresses (self-moves reappear, RNG order
// changes), the trajectory and final allocation change and this fails.
func TestAnnealSeed1Trajectory(t *testing.T) {
	m := searchMatrix(t, 12, 3, 7)
	var gens []int
	var bests []float64
	res, err := Search(context.Background(), m, nil, SearchOptions{
		Algo: AlgoAnneal, Tau: 1.3, Seed: 1, Steps: 160, ProposalBlock: 16,
	}, func(p Progress) {
		gens = append(gens, p.Generation)
		bests = append(bests, p.BestFitness)
	})
	if err != nil {
		t.Fatal(err)
	}
	wantAlloc := []int{1, 2, 2, 2, 1, 0, 0, 0, 1, 1, 0, 0}
	if len(res.Best) != len(wantAlloc) {
		t.Fatalf("alloc length %d, want %d", len(res.Best), len(wantAlloc))
	}
	for i := range wantAlloc {
		if res.Best[i] != wantAlloc[i] {
			t.Fatalf("seed-1 trajectory changed: best = %v, want %v", res.Best, wantAlloc)
		}
	}
	wantBest := 6.6174692503905792
	if math.Abs(res.BestFitness-wantBest) > 1e-12 {
		t.Fatalf("seed-1 best fitness = %.17g, want %.17g", res.BestFitness, wantBest)
	}
	if len(gens) == 0 || gens[len(gens)-1] != res.Generations {
		t.Fatalf("progress generations %v vs result %d", gens, res.Generations)
	}
	for i := 1; i < len(bests); i++ {
		if bests[i] < bests[i-1] {
			t.Fatalf("best fitness regressed within the trajectory: %v", bests)
		}
	}
}

// TestAnnealProposalsNeverSelfMove drives the proposal generator directly:
// on a 2-machine instance every proposal must target the other machine.
func TestAnnealProposalsNeverSelfMove(t *testing.T) {
	// With 2 machines the old sampler self-moved ~half the time and each
	// self-move burned a step. Fixed budget, tiny block: if self-moves
	// come back, acceptance bookkeeping shifts and the pinned trajectory
	// test above fails; here we sanity-check the resample arithmetic.
	src := stats.NewSource(1)
	for i := 0; i < 1000; i++ {
		from := src.Intn(2)
		to := src.Intn(2 - 1)
		if to >= from {
			to++
		}
		if to == from {
			t.Fatal("resampled proposal targeted its own machine")
		}
		if to < 0 || to > 1 {
			t.Fatalf("proposal out of range: %d", to)
		}
	}
}

func TestSearchTypedErrors(t *testing.T) {
	m := tiny()
	cases := []struct {
		name string
		opt  SearchOptions
		want error
	}{
		{"nan tau", SearchOptions{Algo: AlgoAnneal, Tau: math.NaN()}, ErrBadTau},
		{"inf tau", SearchOptions{Algo: AlgoGA, Tau: math.Inf(1)}, ErrBadTau},
		{"low tau", SearchOptions{Algo: AlgoGA, Tau: 1}, ErrBadTau},
		{"nan mutation", SearchOptions{Algo: AlgoGA, Tau: 1.3, MutationRate: math.NaN()}, ErrBadMutationRate},
		{"inf mutation", SearchOptions{Algo: AlgoGA, Tau: 1.3, MutationRate: math.Inf(1)}, ErrBadMutationRate},
		{"big mutation", SearchOptions{Algo: AlgoGA, Tau: 1.3, MutationRate: 1.5}, ErrBadMutationRate},
		{"negative mutation", SearchOptions{Algo: AlgoGA, Tau: 1.3, MutationRate: -0.1}, ErrBadMutationRate},
		{"bad algo", SearchOptions{Algo: "tabu", Tau: 1.3}, ErrBadSearch},
		{"bad objective", SearchOptions{Algo: AlgoGA, Objective: "min-cost", Tau: 1.3}, ErrBadSearch},
		{"bad bound", SearchOptions{Algo: AlgoGA, Bound: math.Inf(1)}, ErrBadSearch},
		{"short resume", SearchOptions{Algo: AlgoGA, Tau: 1.3, Resume: []int{0}}, ErrBadSearch},
		{"nan rhoMin", SearchOptions{Algo: AlgoGA, Tau: 1.3, RhoMin: math.NaN()}, ErrBadSearch},
	}
	for _, c := range cases {
		_, err := Search(context.Background(), m, nil, c.opt, nil)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// The wrappers surface the same typed errors.
	if _, err := Anneal(AnnealOptions{Tau: math.NaN()})(m); !errors.Is(err, ErrBadTau) {
		t.Errorf("Anneal NaN tau: %v", err)
	}
	if _, err := Genetic(GAOptions{Tau: 1.3, MutationRate: 2})(m); !errors.Is(err, ErrBadMutationRate) {
		t.Errorf("Genetic rate 2: %v", err)
	}
}

// TestGeneticDefaultMutationClamped: with one task the old default 2/tasks
// was a probability of 2; the clamp keeps the GA well-defined.
func TestGeneticDefaultMutationClamped(t *testing.T) {
	m := &etc.Matrix{Tasks: 1, Machines: 2, Data: [][]float64{{3, 5}}}
	alloc, err := Genetic(GAOptions{Tau: 1.5, Seed: 1, Generations: 3, Population: 6})(m)
	if err != nil {
		t.Fatal(err)
	}
	validAlloc(t, m, alloc, nil)
}

// TestSearchDeterministicAcrossGOMAXPROCS is the satellite determinism
// check: the same seed yields the same allocation whether the batch engine
// runs on one worker or many (run under -race in CI).
func TestSearchDeterministicAcrossGOMAXPROCS(t *testing.T) {
	m := searchMatrix(t, 16, 4, 23)
	opt := SearchOptions{Algo: AlgoGA, Tau: 1.3, Seed: 1, Population: 12, Generations: 8}
	bound, err := ResolveBound(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	run := func(procs, workers int) *SearchResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Search(context.Background(), m, &EngineEvaluator{M: m, Bound: bound, Workers: workers}, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1, 1)
	many := run(runtime.NumCPU(), 8)
	for i := range one.Best {
		if one.Best[i] != many.Best[i] {
			t.Fatalf("GOMAXPROCS=1 and =N disagree at task %d: %v vs %v", i, one.Best, many.Best)
		}
	}
	if math.Float64bits(one.BestRho) != math.Float64bits(many.BestRho) {
		t.Fatalf("rho bits diverge: %x vs %x", math.Float64bits(one.BestRho), math.Float64bits(many.BestRho))
	}

	optA := SearchOptions{Algo: AlgoAnneal, Tau: 1.3, Seed: 1, Steps: 400}
	runA := func(procs, workers int) *SearchResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		res, err := Search(context.Background(), m, &EngineEvaluator{M: m, Bound: bound, Workers: workers}, optA, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a1, aN := runA(1, 1), runA(runtime.NumCPU(), 8)
	for i := range a1.Best {
		if a1.Best[i] != aN.Best[i] {
			t.Fatalf("anneal GOMAXPROCS divergence at task %d", i)
		}
	}
}

// cancelAfterEvaluator cancels its context after n evaluator calls, so the
// partial-result path is exercised deterministically.
type cancelAfterEvaluator struct {
	inner  Evaluator
	cancel context.CancelFunc
	calls  int
	n      int
}

func (e *cancelAfterEvaluator) Scores(ctx context.Context, allocs [][]int) ([]float64, error) {
	e.calls++
	if e.calls > e.n {
		e.cancel()
		return nil, ctx.Err()
	}
	return e.inner.Scores(ctx, allocs)
}

func TestSearchPartialOnCancel(t *testing.T) {
	m := searchMatrix(t, 16, 4, 29)
	opt := SearchOptions{Algo: AlgoGA, Tau: 1.3, Seed: 1, Population: 10, Generations: 50}
	bound, err := ResolveBound(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ev := &cancelAfterEvaluator{inner: ClosedFormEvaluator{M: m, Bound: bound}, cancel: cancel, n: 4}
	res, err := Search(ctx, m, ev, opt, nil)
	if err == nil {
		t.Fatal("expected a context error")
	}
	if res == nil || !res.Partial {
		t.Fatalf("expected a partial result, got %+v", res)
	}
	if res.Generations == 0 || res.Generations >= 50 {
		t.Fatalf("partial generations = %d, want in (0, 50)", res.Generations)
	}
	if len(res.Best) != m.Tasks {
		t.Fatalf("partial best has %d tasks", len(res.Best))
	}
}

// TestSearchResume: resuming from a known-good allocation can never end
// worse (it seeds the population / starting point with elitism).
func TestSearchResume(t *testing.T) {
	m := searchMatrix(t, 16, 4, 31)
	opt := SearchOptions{Algo: AlgoGA, Tau: 1.3, Seed: 1, Population: 10, Generations: 6}
	first, err := Search(context.Background(), m, nil, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = first.Best
	opt.Seed = 2
	second, err := Search(context.Background(), m, nil, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.BestFitness < first.BestFitness {
		t.Fatalf("resumed search lost ground: %v -> %v", first.BestFitness, second.BestFitness)
	}
}

// TestSearchRadiusEvalAccounting: the radius-evaluation counter is the sum
// of non-empty machine counts over engine-scored candidates, and a default
// GA search drives ≥ 10⁴ of them (the acceptance workload).
func TestSearchRadiusEvalAccounting(t *testing.T) {
	m := searchMatrix(t, 32, 8, 37)
	res, err := Search(context.Background(), m, nil, SearchOptions{Algo: AlgoGA, Tau: 1.5, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RadiusEvals < 10_000 {
		t.Fatalf("default GA search drove only %d radius evals, want >= 10000", res.RadiusEvals)
	}
	if res.EngineCandidates == 0 || res.EngineCandidates > res.Candidates {
		t.Fatalf("engine candidates %d of %d", res.EngineCandidates, res.Candidates)
	}
}
