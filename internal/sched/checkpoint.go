package sched

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"

	"fepia/internal/etc"
)

// This file is the search's crash-recovery surface. A Search configured with
// an OnCheckpoint callback hands out a Checkpoint after the initial scoring
// and after every completed generation (GA) or proposal block (annealing);
// a Search configured with SearchOptions.Checkpoint restores that state and
// continues the trajectory. Because the search's only mutable state is the
// candidate set, the best-so-far, the counters, and the position in the
// seeded random stream, a restored run consumes the exact same draws and
// scores the exact same candidates as the uninterrupted one — resumed and
// uninterrupted results are bit-identical (the oracle differential kills a
// coordinator mid-generation and proves it).

// ErrCheckpointMismatch reports a checkpoint that does not belong to the
// search being resumed: different algorithm, instance, tuning, or a
// structurally invalid payload. Mapped to a conflict at the API layer.
var ErrCheckpointMismatch = errors.New("sched: checkpoint does not match search options")

// CandidateScore is one scored allocation in serializable form. All float
// fields are finite, so JSON round-trips them bit-exactly (Go emits the
// shortest representation that parses back to the same float64).
type CandidateScore struct {
	Alloc    []int   `json:"alloc"`
	Makespan float64 `json:"makespan"`
	Rho      float64 `json:"rho"`
	Feasible bool    `json:"feasible"`
	Fitness  float64 `json:"fitness"`
	Feats    int     `json:"feats"`
}

func toScore(c scored) CandidateScore {
	return CandidateScore{
		Alloc:    append([]int(nil), c.alloc...),
		Makespan: c.ms,
		Rho:      c.rho,
		Feasible: c.feasible,
		Fitness:  c.fit,
		Feats:    c.feats,
	}
}

func fromScore(c CandidateScore) scored {
	return scored{
		alloc:    append([]int(nil), c.Alloc...),
		ms:       c.Makespan,
		rho:      c.Rho,
		feasible: c.Feasible,
		fit:      c.Fitness,
		feats:    c.Feats,
	}
}

// Checkpoint is the complete resumable state of a search after a completed
// generation (GA) or proposal block (annealing).
type Checkpoint struct {
	// Identity: the checkpoint only resumes a search with the same
	// algorithm and the same OptionsSum (a hash of the instance and every
	// trajectory-shaping option).
	Algo       string `json:"algo"`
	Objective  string `json:"objective"`
	OptionsSum string `json:"optionsSum"`
	Seed       int64  `json:"seed"`

	// Generation counts completed generations (GA) or blocks (annealing);
	// it matches Progress.Generation at emission time.
	Generation int `json:"generation"`
	// RNGPos is the seeded stream's position (raw generator steps consumed).
	RNGPos uint64 `json:"rngPos"`

	// Counters, restored so a resumed run's totals equal the uninterrupted
	// run's.
	Candidates       int   `json:"candidates"`
	EngineCandidates int   `json:"engineCandidates"`
	RadiusEvals      int64 `json:"radiusEvals"`

	Best CandidateScore `json:"best"`

	// Population is the GA's current scored population (nil for annealing).
	Population []CandidateScore `json:"population,omitempty"`

	// Annealing walk state (nil/zero for the GA).
	Current   *CandidateScore `json:"current,omitempty"`
	Temp      float64         `json:"temp,omitempty"`
	Processed int             `json:"processed,omitempty"`
}

// checkpointSum fingerprints everything that shapes the search trajectory:
// the instance values and every resolved option the random stream or the
// scoring depends on. Two searches with equal sums walk identical
// trajectories, so a checkpoint from one resumes the other.
func checkpointSum(m *etc.Matrix, algo, obj string, seed int64, floats []float64, ints []int) string {
	h := fnv.New64a()
	var buf [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(algo))
	h.Write([]byte{0})
	h.Write([]byte(obj))
	h.Write([]byte{0})
	putU(uint64(seed))
	putU(uint64(m.Tasks))
	putU(uint64(m.Machines))
	for t := 0; t < m.Tasks; t++ {
		for j := 0; j < m.Machines; j++ {
			putU(math.Float64bits(m.At(t, j)))
		}
	}
	for _, f := range floats {
		putU(math.Float64bits(f))
	}
	for _, n := range ints {
		putU(uint64(n))
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// allocWellFormed reports whether alloc is a well-formed assignment for m.
func allocWellFormed(m *etc.Matrix, alloc []int) bool {
	if len(alloc) != m.Tasks {
		return false
	}
	for _, j := range alloc {
		if j < 0 || j >= m.Machines {
			return false
		}
	}
	return true
}

// checkCheckpoint validates the parts common to both algorithms.
func checkCheckpoint(m *etc.Matrix, cp *Checkpoint, algo, sum string) error {
	if cp.Algo != algo {
		return fmt.Errorf("%w: checkpoint algo %q, search algo %q", ErrCheckpointMismatch, cp.Algo, algo)
	}
	if cp.OptionsSum != sum {
		return fmt.Errorf("%w: options sum %s, want %s", ErrCheckpointMismatch, cp.OptionsSum, sum)
	}
	if !allocWellFormed(m, cp.Best.Alloc) {
		return fmt.Errorf("%w: best allocation malformed", ErrCheckpointMismatch)
	}
	if cp.Generation < 0 || cp.Candidates < 0 || cp.EngineCandidates < 0 || cp.RadiusEvals < 0 {
		return fmt.Errorf("%w: negative progress counters", ErrCheckpointMismatch)
	}
	return nil
}
