// Package sched implements the classical independent-task mapping heuristics
// of the heterogeneous-computing literature (OLB, MET, MCT, Min-Min,
// Max-Min, Sufferage, and friends) plus robustness-aware variants. The
// experiments rank the allocations these heuristics produce by estimated
// makespan and by the paper's robustness metric — demonstrating that the
// minimum-makespan mapping is not the most robust one, which is the
// motivation for a robustness metric in the first place.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fepia/internal/etc"
	"fepia/internal/stats"
)

// Heuristic maps an ETC matrix to an allocation (task → machine).
type Heuristic func(m *etc.Matrix) ([]int, error)

// ErrEmpty is returned for matrices without tasks or machines.
var ErrEmpty = errors.New("sched: empty ETC matrix")

func check(m *etc.Matrix) error {
	if m == nil || m.Tasks == 0 || m.Machines == 0 {
		return ErrEmpty
	}
	return nil
}

// RoundRobin assigns task t to machine t mod M — the naive baseline.
func RoundRobin(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	alloc := make([]int, m.Tasks)
	for t := range alloc {
		alloc[t] = t % m.Machines
	}
	return alloc, nil
}

// MET assigns every task to its minimum-execution-time machine, ignoring
// load. Fast but collapses onto the fastest machine in consistent matrices.
func MET(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	alloc := make([]int, m.Tasks)
	for t := 0; t < m.Tasks; t++ {
		best := 0
		for j := 1; j < m.Machines; j++ {
			if m.At(t, j) < m.At(t, best) {
				best = j
			}
		}
		alloc[t] = best
	}
	return alloc, nil
}

// OLB (opportunistic load balancing) assigns each task, in index order, to
// the machine that becomes available earliest, ignoring execution times.
func OLB(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	alloc := make([]int, m.Tasks)
	avail := make([]float64, m.Machines)
	for t := 0; t < m.Tasks; t++ {
		best := 0
		for j := 1; j < m.Machines; j++ {
			if avail[j] < avail[best] {
				best = j
			}
		}
		alloc[t] = best
		avail[best] += m.At(t, best)
	}
	return alloc, nil
}

// MCT assigns each task, in index order, to the machine with the minimum
// completion time (availability + execution time).
func MCT(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	alloc := make([]int, m.Tasks)
	avail := make([]float64, m.Machines)
	for t := 0; t < m.Tasks; t++ {
		best, bestCT := 0, avail[0]+m.At(t, 0)
		for j := 1; j < m.Machines; j++ {
			if ct := avail[j] + m.At(t, j); ct < bestCT {
				best, bestCT = j, ct
			}
		}
		alloc[t] = best
		avail[best] = bestCT
	}
	return alloc, nil
}

// minMinMaxMin implements the shared batch structure of Min-Min and Max-Min:
// repeatedly compute each unmapped task's best completion time, then map the
// task with the minimum (Min-Min) or maximum (Max-Min) of those bests.
func minMinMaxMin(m *etc.Matrix, pickMax bool) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	alloc := make([]int, m.Tasks)
	avail := make([]float64, m.Machines)
	unmapped := make([]bool, m.Tasks)
	for t := range unmapped {
		unmapped[t] = true
	}
	for left := m.Tasks; left > 0; left-- {
		pick, pickMach := -1, -1
		pickCT := 0.0
		for t := 0; t < m.Tasks; t++ {
			if !unmapped[t] {
				continue
			}
			best, bestCT := 0, avail[0]+m.At(t, 0)
			for j := 1; j < m.Machines; j++ {
				if ct := avail[j] + m.At(t, j); ct < bestCT {
					best, bestCT = j, ct
				}
			}
			take := pick == -1 ||
				(pickMax && bestCT > pickCT) ||
				(!pickMax && bestCT < pickCT)
			if take {
				pick, pickMach, pickCT = t, best, bestCT
			}
		}
		alloc[pick] = pickMach
		avail[pickMach] = pickCT
		unmapped[pick] = false
	}
	return alloc, nil
}

// MinMin maps, at each step, the task whose best completion time is
// smallest — the classic strong makespan heuristic.
func MinMin(m *etc.Matrix) ([]int, error) { return minMinMaxMin(m, false) }

// MaxMin maps, at each step, the task whose best completion time is largest,
// front-loading long tasks.
func MaxMin(m *etc.Matrix) ([]int, error) { return minMinMaxMin(m, true) }

// Sufferage maps, at each step, the task that would "suffer" most if denied
// its best machine (largest second-best − best completion-time gap).
func Sufferage(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	if m.Machines == 1 {
		return MCT(m) // sufferage undefined with a single machine
	}
	alloc := make([]int, m.Tasks)
	avail := make([]float64, m.Machines)
	unmapped := make([]bool, m.Tasks)
	for t := range unmapped {
		unmapped[t] = true
	}
	for left := m.Tasks; left > 0; left-- {
		pick, pickMach := -1, -1
		pickSuff, pickCT := -1.0, 0.0
		for t := 0; t < m.Tasks; t++ {
			if !unmapped[t] {
				continue
			}
			best, second := -1, -1
			var bestCT, secondCT float64
			for j := 0; j < m.Machines; j++ {
				ct := avail[j] + m.At(t, j)
				switch {
				case best == -1 || ct < bestCT:
					second, secondCT = best, bestCT
					best, bestCT = j, ct
				case second == -1 || ct < secondCT:
					second, secondCT = j, ct
				}
			}
			_ = second
			suff := secondCT - bestCT
			if suff > pickSuff {
				pick, pickMach, pickSuff, pickCT = t, best, suff, bestCT
			}
		}
		alloc[pick] = pickMach
		avail[pickMach] = pickCT
		unmapped[pick] = false
	}
	return alloc, nil
}

// Duplex runs Min-Min and Max-Min and keeps whichever achieves the smaller
// estimated makespan — the classical "duplex" heuristic that hedges between
// the two batch strategies.
func Duplex(m *etc.Matrix) ([]int, error) {
	if err := check(m); err != nil {
		return nil, err
	}
	mn, err := MinMin(m)
	if err != nil {
		return nil, err
	}
	mx, err := MaxMin(m)
	if err != nil {
		return nil, err
	}
	if makespanOf(m, mx) < makespanOf(m, mn) {
		return mx, nil
	}
	return mn, nil
}

// Random assigns tasks uniformly at random using the given stream; useful as
// the unstructured baseline in ranking experiments.
func Random(src *stats.Source) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		if err := check(m); err != nil {
			return nil, err
		}
		alloc := make([]int, m.Tasks)
		for t := range alloc {
			alloc[t] = src.Intn(m.Machines)
		}
		return alloc, nil
	}
}

// GreedyRobust maps tasks longest-first, assigning each to the machine that
// maximizes the allocation's incremental robustness radius
// (bound − F_j)/√n_j under the fixed makespan bound τ·M_ref, where M_ref is
// the Min-Min makespan of the same matrix. It trades a little makespan for
// boundary slack on every machine — the robustness-aware contender in the
// ranking experiment.
func GreedyRobust(tau float64) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		if err := check(m); err != nil {
			return nil, err
		}
		if tau <= 1 {
			return nil, fmt.Errorf("sched: GreedyRobust tau = %g, want > 1", tau)
		}
		ref, err := MinMin(m)
		if err != nil {
			return nil, err
		}
		bound := tau * makespanOf(m, ref)

		// Longest-first by mean execution time.
		order := make([]int, m.Tasks)
		for t := range order {
			order[t] = t
		}
		meanTime := func(t int) float64 { return stats.Mean(m.Row(t)) }
		sort.Slice(order, func(a, b int) bool {
			ta, tb := order[a], order[b]
			if meanTime(ta) != meanTime(tb) {
				return meanTime(ta) > meanTime(tb)
			}
			return ta < tb
		})

		alloc := make([]int, m.Tasks)
		load := make([]float64, m.Machines)
		count := make([]int, m.Machines)
		for _, t := range order {
			best, bestScore := -1, math.Inf(-1)
			for j := 0; j < m.Machines; j++ {
				// Radius of machine j if t lands there; other machines keep
				// their current radius — the assignment's score is the
				// resulting minimum.
				score := math.Inf(1)
				for jj := 0; jj < m.Machines; jj++ {
					l, c := load[jj], count[jj]
					if jj == j {
						l += m.At(t, j)
						c++
					}
					if c == 0 {
						continue
					}
					r := (bound - l) / math.Sqrt(float64(c))
					if r < score {
						score = r
					}
				}
				if score > bestScore {
					best, bestScore = j, score
				}
			}
			alloc[t] = best
			load[best] += m.At(t, best)
			count[best]++
		}
		return alloc, nil
	}
}

// HillClimbRobust refines an allocation by single-task reassignments that
// strictly improve the closed-form robustness radius under bound τ·M^orig
// of the *initial* allocation, stopping at a local optimum or after
// maxSteps moves.
func HillClimbRobust(inner Heuristic, tau float64, maxSteps int) Heuristic {
	return func(m *etc.Matrix) ([]int, error) {
		if err := check(m); err != nil {
			return nil, err
		}
		if tau <= 1 {
			return nil, fmt.Errorf("sched: HillClimbRobust tau = %g, want > 1", tau)
		}
		alloc, err := inner(m)
		if err != nil {
			return nil, err
		}
		bound := tau * makespanOf(m, alloc)
		load := make([]float64, m.Machines)
		count := make([]int, m.Machines)
		for t, j := range alloc {
			load[j] += m.At(t, j)
			count[j]++
		}
		rho := func() float64 {
			r := math.Inf(1)
			for j := 0; j < m.Machines; j++ {
				if count[j] == 0 {
					continue
				}
				if v := (bound - load[j]) / math.Sqrt(float64(count[j])); v < r {
					r = v
				}
			}
			return r
		}
		cur := rho()
		if maxSteps <= 0 {
			maxSteps = 10 * m.Tasks
		}
		for step := 0; step < maxSteps; step++ {
			improved := false
			for t := 0; t < m.Tasks && !improved; t++ {
				from := alloc[t]
				for j := 0; j < m.Machines; j++ {
					if j == from {
						continue
					}
					load[from] -= m.At(t, from)
					count[from]--
					load[j] += m.At(t, j)
					count[j]++
					if next := rho(); next > cur+1e-15 {
						alloc[t] = j
						cur = next
						improved = true
						break
					}
					// Revert.
					load[j] -= m.At(t, j)
					count[j]--
					load[from] += m.At(t, from)
					count[from]++
				}
			}
			if !improved {
				break
			}
		}
		return alloc, nil
	}
}

// makespanOf computes the estimated makespan of an allocation.
func makespanOf(m *etc.Matrix, alloc []int) float64 {
	load := make([]float64, m.Machines)
	for t, j := range alloc {
		load[j] += m.At(t, j)
	}
	var ms float64
	for _, l := range load {
		if l > ms {
			ms = l
		}
	}
	return ms
}

// Named couples a heuristic with its display name for experiment tables.
type Named struct {
	Name string
	Fn   Heuristic
}

// Registry returns the standard heuristic line-up used by the ranking
// experiments, in report order. The random heuristic is seeded from src.
func Registry(tau float64, src *stats.Source) []Named {
	return []Named{
		{"round-robin", RoundRobin},
		{"random", Random(src)},
		{"OLB", OLB},
		{"MET", MET},
		{"MCT", MCT},
		{"min-min", MinMin},
		{"max-min", MaxMin},
		{"duplex", Duplex},
		{"sufferage", Sufferage},
		{"greedy-robust", GreedyRobust(tau)},
		{"hillclimb-robust", HillClimbRobust(MinMin, tau, 0)},
	}
}
