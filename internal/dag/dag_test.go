package dag

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// diamond builds 0→1, 0→2, 1→3, 2→3.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestNewNegative(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative node count must error")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g, _ := New(3)
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge must error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative node must error")
	}
	if err := g.AddEdge(1, 1); err == nil {
		t.Error("self loop must error")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err == nil {
		t.Error("duplicate edge must error")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if got := g.Sources(); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Sinks = %v", got)
	}
}

func TestTopoSortDiamond(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violates topological order %v", e, order)
		}
	}
	// Deterministic: smallest index first gives exactly 0,1,2,3 here.
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3}) {
		t.Errorf("order = %v, want [0 1 2 3]", order)
	}
}

func TestTopoSortCycle(t *testing.T) {
	g, _ := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle must be detected")
	}
	if g.IsAcyclic() {
		t.Error("IsAcyclic wrong on a cycle")
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t)
	seen, err := g.Reachable(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("Reachable(1) = %v, want %v", seen, want)
	}
	if _, err := g.Reachable(9); err == nil {
		t.Error("out-of-range Reachable must error")
	}
}

func TestAllPathsDiamond(t *testing.T) {
	g := diamond(t)
	paths, err := g.AllPaths(0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 1, 3}, {0, 2, 3}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

func TestAllPathsCap(t *testing.T) {
	g := diamond(t)
	paths, err := g.AllPaths(0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("cap ignored: %d paths", len(paths))
	}
}

func TestAllPathsNoPath(t *testing.T) {
	g := diamond(t)
	paths, err := g.AllPaths(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("expected no paths, got %v", paths)
	}
}

func TestAllPathsErrors(t *testing.T) {
	g := diamond(t)
	if _, err := g.AllPaths(0, 9, 0); err == nil {
		t.Error("out-of-range must error")
	}
	c, _ := New(2)
	c.AddEdge(0, 1)
	c.AddEdge(1, 0)
	if _, err := c.AllPaths(0, 1, 0); err == nil {
		t.Error("cyclic AllPaths must error")
	}
}

func TestLongestPath(t *testing.T) {
	g := diamond(t)
	// Node weights: 1, 5, 2, 1 → critical path 0→1→3 with weight 7.
	dist, overall, err := g.LongestPath([]float64{1, 5, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if overall != 7 {
		t.Errorf("overall = %v, want 7", overall)
	}
	if dist[3] != 7 || dist[1] != 6 || dist[2] != 3 {
		t.Errorf("dist = %v", dist)
	}
}

func TestLongestPathErrors(t *testing.T) {
	g := diamond(t)
	if _, _, err := g.LongestPath([]float64{1, 2}); err == nil {
		t.Error("wrong weight count must error")
	}
	c, _ := New(2)
	c.AddEdge(0, 1)
	c.AddEdge(1, 0)
	if _, _, err := c.LongestPath([]float64{1, 1}); err == nil {
		t.Error("cyclic LongestPath must error")
	}
}

// randomDAG builds a random DAG by only adding forward edges under a random
// permutation — always acyclic by construction.
func randomDAG(rng *rand.Rand, n int, p float64) *Graph {
	g, _ := New(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(perm[i], perm[j])
			}
		}
	}
	return g
}

func TestPropTopoSortValidOnRandomDAGs(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		g := randomDAG(rng, n, 0.3)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropLongestPathAtLeastNodeWeight(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%15) + 2
		g := randomDAG(rng, n, 0.25)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		dist, overall, err := g.LongestPath(w)
		if err != nil {
			return false
		}
		for i := range w {
			if dist[i] < w[i]-1e-12 || dist[i] > overall+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
