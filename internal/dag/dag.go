// Package dag provides the directed-acyclic-graph substrate used by the
// HiPer-D application model: sensors feed chains of continuously-running
// applications that end in actuators, and the end-to-end latency feature is
// a maximum over source→sink paths. The package supplies construction,
// cycle detection, topological ordering, reachability, and path enumeration.
package dag

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a directed graph over nodes 0…N−1. Use New and AddEdge to build
// it; most queries require the graph to be acyclic and report an error
// otherwise.
type Graph struct {
	n   int
	adj [][]int // adjacency lists, edges i -> adj[i][k]
	rev [][]int // reverse adjacency
}

// New returns an empty graph with n nodes.
func New(n int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("dag: negative node count %d", n)
	}
	return &Graph{
		n:   n,
		adj: make([][]int, n),
		rev: make([][]int, n),
	}, nil
}

// Errors returned by graph operations.
var (
	ErrCycle    = errors.New("dag: graph contains a cycle")
	ErrNodeOOB  = errors.New("dag: node index out of range")
	ErrDupEdge  = errors.New("dag: duplicate edge")
	ErrSelfLoop = errors.New("dag: self loop")
)

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the directed edge u → v. Self loops and duplicates are
// rejected.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: edge (%d, %d) in graph of %d nodes", ErrNodeOOB, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: (%d, %d)", ErrSelfLoop, u, v)
	}
	for _, w := range g.adj[u] {
		if w == v {
			return fmt.Errorf("%w: (%d, %d)", ErrDupEdge, u, v)
		}
	}
	g.adj[u] = append(g.adj[u], v)
	g.rev[v] = append(g.rev[v], u)
	return nil
}

// Succ returns the successors of u (the slice aliases internal storage; do
// not modify).
func (g *Graph) Succ(u int) []int { return g.adj[u] }

// Pred returns the predecessors of u (alias; do not modify).
func (g *Graph) Pred(u int) []int { return g.rev[u] }

// Edges returns all edges in deterministic (source, insertion) order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, vs := range g.adj {
		for _, v := range vs {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Sources returns nodes with no incoming edges, ascending.
func (g *Graph) Sources() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.rev[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// Sinks returns nodes with no outgoing edges, ascending.
func (g *Graph) Sinks() []int {
	var out []int
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// TopoSort returns a topological ordering (Kahn's algorithm, smallest-index
// first for determinism) or ErrCycle.
func (g *Graph) TopoSort() ([]int, error) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.rev[v])
	}
	// Min-heap behavior via sorted frontier keeps output deterministic.
	frontier := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(frontier) > 0 {
		sort.Ints(frontier)
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range g.adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, ErrCycle
	}
	return order, nil
}

// IsAcyclic reports whether the graph has no directed cycles.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable returns the set of nodes reachable from u (including u) as a
// boolean mask.
func (g *Graph) Reachable(u int) ([]bool, error) {
	if u < 0 || u >= g.n {
		return nil, fmt.Errorf("%w: %d", ErrNodeOOB, u)
	}
	seen := make([]bool, g.n)
	stack := []int{u}
	seen[u] = true
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[x] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen, nil
}

// AllPaths enumerates every directed path from src to dst (inclusive). The
// graph must be acyclic. maxPaths caps the enumeration (0 means no cap); the
// HiPer-D latency feature needs all sensor→actuator paths, which for its
// graph sizes is small.
func (g *Graph) AllPaths(src, dst, maxPaths int) ([][]int, error) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return nil, fmt.Errorf("%w: path (%d, %d)", ErrNodeOOB, src, dst)
	}
	if !g.IsAcyclic() {
		return nil, ErrCycle
	}
	var out [][]int
	path := []int{src}
	var walk func(u int) bool
	walk = func(u int) bool {
		if u == dst {
			cp := make([]int, len(path))
			copy(cp, path)
			out = append(out, cp)
			return maxPaths > 0 && len(out) >= maxPaths
		}
		for _, v := range g.adj[u] {
			path = append(path, v)
			stop := walk(v)
			path = path[:len(path)-1]
			if stop {
				return true
			}
		}
		return false
	}
	walk(src)
	return out, nil
}

// LongestPath computes, for a DAG with non-negative node weights, the
// maximum total weight over all paths ending at each node (weights given per
// node). It returns the per-node longest-path value and the overall maximum.
// This is the critical-path computation used for latency-style features.
func (g *Graph) LongestPath(weight []float64) ([]float64, float64, error) {
	if len(weight) != g.n {
		return nil, 0, fmt.Errorf("dag: LongestPath got %d weights for %d nodes", len(weight), g.n)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, 0, err
	}
	dist := make([]float64, g.n)
	for _, u := range order {
		best := 0.0
		for _, p := range g.rev[u] {
			if dist[p] > best {
				best = dist[p]
			}
		}
		dist[u] = best + weight[u]
	}
	var overall float64
	for _, d := range dist {
		if d > overall {
			overall = d
		}
	}
	return dist, overall, nil
}
