// Package chaos is a fault-injection harness for the hardened evaluation
// runtime. It wraps caller-supplied impact functions with configurable
// faults — panics, NaN/Inf returns, slow evaluations that blow deadlines,
// dimension-corrupted parameter vectors — and runs analyses under a
// watchdog that captures panics and hangs. The test suites of core, des and
// cmd/fepia use it to assert that the public API never panics, always
// returns within its deadline, and reports the right typed error for each
// fault class.
//
// The package deliberately depends only on vec and the standard library, so
// it can be imported by the very packages whose behavior it attacks
// (including internal/core's own tests) without import cycles: it deals in
// the raw impact-function shape func([]vec.V) float64, which is assignable
// to core.ImpactFunc.
package chaos

import (
	"context"
	"math"
	"runtime/debug"
	"sync/atomic"
	"time"

	"fepia/internal/vec"
)

// Impact is the raw impact-function shape, assignable to core.ImpactFunc.
type Impact = func(params []vec.V) float64

// Fault enumerates the injectable failure modes.
type Fault int

const (
	// None passes every call through unchanged.
	None Fault = iota
	// PanicFault panics with a descriptive value.
	PanicFault
	// NaNFault returns math.NaN().
	NaNFault
	// PosInfFault returns math.Inf(1).
	PosInfFault
	// NegInfFault returns math.Inf(-1).
	NegInfFault
	// SlowFault sleeps Injector.Delay, then calls through. Use it to
	// exercise deadline and cancellation paths.
	SlowFault
	// CorruptDimsFault calls through with a copy of the parameter vectors
	// whose last non-empty block has lost its final element — the shape an
	// upstream data corruption would produce. Impact functions that index
	// their blocks will panic; the runtime must contain it.
	CorruptDimsFault
)

// String names the fault for test labels.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case PanicFault:
		return "panic"
	case NaNFault:
		return "nan"
	case PosInfFault:
		return "+inf"
	case NegInfFault:
		return "-inf"
	case SlowFault:
		return "slow"
	case CorruptDimsFault:
		return "corrupt-dims"
	default:
		return "unknown"
	}
}

// Injector wraps impact functions with one configurable fault. The zero
// value passes calls through unchanged. An Injector is safe for concurrent
// use (the evaluation runtime may call the wrapped function from many
// workers).
type Injector struct {
	// Fault selects the failure mode.
	Fault Fault
	// After delays the fault until the After-th call (0 = fault from the
	// first call). Earlier calls pass through, letting analyses that probe
	// the original operating point first get past validation.
	After int64
	// Delay is SlowFault's per-call sleep.
	Delay time.Duration
	// Ctx, when non-nil, makes SlowFault's latency cancellable: each
	// injected delay is a Sleep against this context, so a wrapped impact
	// stops occupying its worker the moment the context is cancelled —
	// exactly how a production impact blocked on a cancellable downstream
	// call behaves. A nil Ctx reproduces the legacy uninterruptible
	// time.Sleep (an impact that ignores cancellation), which is the
	// harder fault: the runtime can then only observe the cancellation
	// between evaluations. Set Ctx before handing wrapped functions to a
	// concurrent evaluation (it is read without synchronization).
	Ctx context.Context

	calls atomic.Int64
}

// Calls reports how many times wrapped functions have been invoked.
func (in *Injector) Calls() int64 { return in.calls.Load() }

// Wrap returns f with the injector's fault applied.
func (in *Injector) Wrap(f Impact) Impact {
	return func(params []vec.V) float64 {
		n := in.calls.Add(1)
		if n <= in.After {
			return f(params)
		}
		switch in.Fault {
		case PanicFault:
			panic("chaos: injected impact panic")
		case NaNFault:
			return math.NaN()
		case PosInfFault:
			return math.Inf(1)
		case NegInfFault:
			return math.Inf(-1)
		case SlowFault:
			Sleep(in.Ctx, in.Delay)
		case CorruptDimsFault:
			params = TruncateLastBlock(params)
		}
		return f(params)
	}
}

// Sleep is the context-aware latency probe: it blocks for d or until ctx is
// done, whichever comes first, and reports whether the full delay elapsed
// (false means the sleep was cut short by cancellation). A nil ctx means
// "not cancellable" and degrades to a plain time.Sleep. Tests and fault
// injectors should use it instead of ad-hoc time.Sleep so that injected
// latency never outlives the request or probe that carries it.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx == nil || ctx.Err() == nil
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	if ctx.Err() != nil {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// TruncateLastBlock returns a copy of the parameter vectors whose last
// non-empty block has lost its final element — a dimension corruption.
func TruncateLastBlock(params []vec.V) []vec.V {
	out := make([]vec.V, len(params))
	copy(out, params)
	for j := len(out) - 1; j >= 0; j-- {
		if len(out[j]) > 0 {
			out[j] = out[j][:len(out[j])-1]
			break
		}
	}
	return out
}

// Outcome describes one probed run of an API under fault injection.
type Outcome struct {
	// Err is the error the probed function returned (nil if it panicked,
	// hung, or succeeded).
	Err error
	// Panic is the recovered panic value when the probed function let a
	// panic escape — the one thing a hardened API must never do.
	Panic any
	// Stack is the goroutine stack captured when Panic is non-nil.
	Stack []byte
	// Elapsed is the wall-clock time until the function returned (or until
	// the watchdog gave up).
	Elapsed time.Duration
	// TimedOut reports that the function failed to return within
	// deadline+grace; its goroutine was abandoned.
	TimedOut bool
}

// Panicked reports whether a panic escaped the probed function.
func (o Outcome) Panicked() bool { return o.Panic != nil }

// Probe runs fn with a deadline context and full containment: escaped
// panics are captured into the Outcome instead of crashing the test
// process, and if fn ignores cancellation and overruns the deadline by
// grace, Probe abandons its goroutine and reports TimedOut. Probe always
// returns.
func Probe(deadline, grace time.Duration, fn func(ctx context.Context) error) Outcome {
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	return watch(deadline+grace, func() error { return fn(ctx) })
}

// ProbeCancel runs fn with a context that is cancelled after the given
// delay, measuring how long fn takes to come back once cancelled. The
// returned Outcome.Elapsed is the total run time; subtract `after` for the
// cancellation latency. Like Probe, it always returns.
func ProbeCancel(after, grace time.Duration, fn func(ctx context.Context) error) Outcome {
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(after, cancel)
	defer timer.Stop()
	defer cancel()
	return watch(after+grace, func() error { return fn(ctx) })
}

// watch runs fn on its own goroutine with panic capture and a hang
// watchdog.
func watch(limit time.Duration, fn func() error) Outcome {
	done := make(chan Outcome, 1)
	start := time.Now()
	go func() {
		var o Outcome
		defer func() {
			if r := recover(); r != nil {
				o.Panic, o.Stack = r, debug.Stack()
			}
			o.Elapsed = time.Since(start)
			done <- o
		}()
		o.Err = fn()
	}()
	select {
	case o := <-done:
		return o
	case <-time.After(limit):
		return Outcome{TimedOut: true, Elapsed: time.Since(start)}
	}
}
