package chaos

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"fepia/internal/vec"
)

func sum(params []vec.V) float64 {
	var s float64
	for _, p := range params {
		for _, x := range p {
			s += x
		}
	}
	return s
}

func TestInjectorPassthrough(t *testing.T) {
	var in Injector
	f := in.Wrap(sum)
	if got := f([]vec.V{{1, 2}, {3}}); got != 6 {
		t.Fatalf("passthrough sum = %g, want 6", got)
	}
	if in.Calls() != 1 {
		t.Fatalf("calls = %d, want 1", in.Calls())
	}
}

func TestInjectorAfterDelaysFault(t *testing.T) {
	in := Injector{Fault: NaNFault, After: 2}
	f := in.Wrap(sum)
	args := []vec.V{{1}}
	if v := f(args); v != 1 {
		t.Fatalf("call 1 = %g, want passthrough 1", v)
	}
	if v := f(args); v != 1 {
		t.Fatalf("call 2 = %g, want passthrough 1", v)
	}
	if v := f(args); !math.IsNaN(v) {
		t.Fatalf("call 3 = %g, want NaN", v)
	}
}

func TestInjectorFaults(t *testing.T) {
	args := []vec.V{{1, 2}}
	cases := []struct {
		fault Fault
		check func(t *testing.T, f Impact)
	}{
		{NaNFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsNaN(v) {
				t.Fatalf("got %g, want NaN", v)
			}
		}},
		{PosInfFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsInf(v, 1) {
				t.Fatalf("got %g, want +Inf", v)
			}
		}},
		{NegInfFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsInf(v, -1) {
				t.Fatalf("got %g, want -Inf", v)
			}
		}},
		{PanicFault, func(t *testing.T, f Impact) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic injected")
				}
			}()
			f(args)
		}},
	}
	for _, c := range cases {
		t.Run(c.fault.String(), func(t *testing.T) {
			in := Injector{Fault: c.fault}
			c.check(t, in.Wrap(sum))
		})
	}
}

func TestCorruptDims(t *testing.T) {
	in := Injector{Fault: CorruptDimsFault}
	var gotDims []int
	f := in.Wrap(func(params []vec.V) float64 {
		gotDims = nil
		for _, p := range params {
			gotDims = append(gotDims, len(p))
		}
		return 0
	})
	orig := []vec.V{{1, 2}, {3, 4, 5}}
	f(orig)
	if len(gotDims) != 2 || gotDims[0] != 2 || gotDims[1] != 2 {
		t.Fatalf("corrupted dims = %v, want [2 2]", gotDims)
	}
	// The caller's vectors must be untouched.
	if len(orig[1]) != 3 {
		t.Fatalf("original block mutated: %v", orig[1])
	}
}

func TestProbeCapturesPanic(t *testing.T) {
	o := Probe(time.Second, time.Second, func(ctx context.Context) error {
		panic("boom")
	})
	if !o.Panicked() || o.Panic != "boom" {
		t.Fatalf("outcome = %+v, want captured panic", o)
	}
	if len(o.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestProbeReportsHang(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	o := Probe(10*time.Millisecond, 20*time.Millisecond, func(ctx context.Context) error {
		<-block // ignores ctx entirely
		return nil
	})
	if !o.TimedOut {
		t.Fatalf("outcome = %+v, want TimedOut", o)
	}
}

func TestProbeCancelPropagates(t *testing.T) {
	o := ProbeCancel(5*time.Millisecond, time.Second, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if o.TimedOut || o.Panicked() {
		t.Fatalf("outcome = %+v", o)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.Err)
	}
}

func TestSleepFullDuration(t *testing.T) {
	start := time.Now()
	if !Sleep(context.Background(), 10*time.Millisecond) {
		t.Fatal("uncancelled Sleep reported cancellation")
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 10ms", el)
	}
	if !Sleep(nil, time.Millisecond) {
		t.Fatal("nil-ctx Sleep reported cancellation")
	}
}

func TestSleepCancellable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	if Sleep(ctx, time.Hour) {
		t.Fatal("cancelled Sleep reported a full delay")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancelled Sleep took %v, want prompt return", el)
	}
	// Already-cancelled context: no sleeping at all.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	start = time.Now()
	if Sleep(done, time.Hour) {
		t.Fatal("Sleep with dead context reported a full delay")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("dead-context Sleep took %v, want immediate return", el)
	}
}

func TestSlowFaultCancellableViaInjectorCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := &Injector{Fault: SlowFault, Delay: time.Hour, Ctx: ctx}
	f := in.Wrap(sum)
	done := make(chan float64, 1)
	go func() { done <- f([]vec.V{{1, 2}}) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case v := <-done:
		if v != 3 {
			t.Fatalf("slow impact returned %g, want 3", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SlowFault with Ctx did not return promptly after cancel")
	}
}
