package chaos

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"fepia/internal/vec"
)

func sum(params []vec.V) float64 {
	var s float64
	for _, p := range params {
		for _, x := range p {
			s += x
		}
	}
	return s
}

func TestInjectorPassthrough(t *testing.T) {
	var in Injector
	f := in.Wrap(sum)
	if got := f([]vec.V{{1, 2}, {3}}); got != 6 {
		t.Fatalf("passthrough sum = %g, want 6", got)
	}
	if in.Calls() != 1 {
		t.Fatalf("calls = %d, want 1", in.Calls())
	}
}

func TestInjectorAfterDelaysFault(t *testing.T) {
	in := Injector{Fault: NaNFault, After: 2}
	f := in.Wrap(sum)
	args := []vec.V{{1}}
	if v := f(args); v != 1 {
		t.Fatalf("call 1 = %g, want passthrough 1", v)
	}
	if v := f(args); v != 1 {
		t.Fatalf("call 2 = %g, want passthrough 1", v)
	}
	if v := f(args); !math.IsNaN(v) {
		t.Fatalf("call 3 = %g, want NaN", v)
	}
}

func TestInjectorFaults(t *testing.T) {
	args := []vec.V{{1, 2}}
	cases := []struct {
		fault Fault
		check func(t *testing.T, f Impact)
	}{
		{NaNFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsNaN(v) {
				t.Fatalf("got %g, want NaN", v)
			}
		}},
		{PosInfFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsInf(v, 1) {
				t.Fatalf("got %g, want +Inf", v)
			}
		}},
		{NegInfFault, func(t *testing.T, f Impact) {
			if v := f(args); !math.IsInf(v, -1) {
				t.Fatalf("got %g, want -Inf", v)
			}
		}},
		{PanicFault, func(t *testing.T, f Impact) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic injected")
				}
			}()
			f(args)
		}},
	}
	for _, c := range cases {
		t.Run(c.fault.String(), func(t *testing.T) {
			in := Injector{Fault: c.fault}
			c.check(t, in.Wrap(sum))
		})
	}
}

func TestCorruptDims(t *testing.T) {
	in := Injector{Fault: CorruptDimsFault}
	var gotDims []int
	f := in.Wrap(func(params []vec.V) float64 {
		gotDims = nil
		for _, p := range params {
			gotDims = append(gotDims, len(p))
		}
		return 0
	})
	orig := []vec.V{{1, 2}, {3, 4, 5}}
	f(orig)
	if len(gotDims) != 2 || gotDims[0] != 2 || gotDims[1] != 2 {
		t.Fatalf("corrupted dims = %v, want [2 2]", gotDims)
	}
	// The caller's vectors must be untouched.
	if len(orig[1]) != 3 {
		t.Fatalf("original block mutated: %v", orig[1])
	}
}

func TestProbeCapturesPanic(t *testing.T) {
	o := Probe(time.Second, time.Second, func(ctx context.Context) error {
		panic("boom")
	})
	if !o.Panicked() || o.Panic != "boom" {
		t.Fatalf("outcome = %+v, want captured panic", o)
	}
	if len(o.Stack) == 0 {
		t.Fatal("no stack captured")
	}
}

func TestProbeReportsHang(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	o := Probe(10*time.Millisecond, 20*time.Millisecond, func(ctx context.Context) error {
		<-block // ignores ctx entirely
		return nil
	})
	if !o.TimedOut {
		t.Fatalf("outcome = %+v, want TimedOut", o)
	}
}

func TestProbeCancelPropagates(t *testing.T) {
	o := ProbeCancel(5*time.Millisecond, time.Second, func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if o.TimedOut || o.Panicked() {
		t.Fatalf("outcome = %+v", o)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.Err)
	}
}
