package delta

import (
	"context"
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/scenario"
)

// testDoc builds a four-feature document over two parameters with a known
// dependence structure: f0 (linear) and f3 (queueing) depend only on param
// 0, f1 (quadratic) only on param 1, f2 (multiplicative) on both.
func testDoc() scenario.AnalysisDoc {
	fp := func(v float64) *float64 { return &v }
	return scenario.AnalysisDoc{
		Version: scenario.Version,
		Kind:    "fepia",
		Params: []scenario.AnalysisParam{
			{Name: "load", Unit: "req/s", Orig: []float64{1.5, 2.0}},
			{Name: "lat", Unit: "ms", Orig: []float64{3.0}},
		},
		Features: []scenario.AnalysisFeature{
			{Name: "f0", Impact: scenario.ImpactLinear, Max: fp(7),
				Coeffs: [][]float64{{0.8, -0.3}, {0}}, Const: 5},
			{Name: "f1", Impact: scenario.ImpactQuadratic, Max: fp(3),
				Curv: [][]float64{{0, 0}, {0.5}}, Center: [][]float64{{0, 0}, {3.0}}, Const: 1},
			{Name: "f2", Impact: scenario.ImpactMultiplicative, Max: fp(10),
				Pows: [][]float64{{0.5, 0}, {1}}, Scale: 0.1},
			{Name: "f3", Impact: scenario.ImpactQueueing, Max: fp(2),
				Wgts: [][]float64{{1, 0}, {0}}, Caps: [][]float64{{5, 5}, {5}}, Eps: 1e-6},
		},
	}
}

func classes(d *Diff) []Class { return d.Features }

func wantClasses(t *testing.T, d *Diff, want ...Class) {
	t.Helper()
	if len(d.Features) != len(want) {
		t.Fatalf("got %d feature classes, want %d", len(d.Features), len(want))
	}
	for i, c := range want {
		if d.Features[i] != c {
			t.Fatalf("feature %d classified %v, want %v (diff %+v)", i, d.Features[i], c, d)
		}
	}
}

func TestClassifyParamPerturbation(t *testing.T) {
	anc := testDoc()
	suc, err := ApplyParams(anc, [][]float64{{1.5, 2.0}, {3.1}})
	if err != nil {
		t.Fatal(err)
	}

	d := Classify(anc, suc, "normalized")
	wantClasses(t, d, Unchanged, Perturbed, Perturbed, Unchanged)
	if got, want := d.Dirty, []int{1, 2}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("dirty = %v, want %v", got, want)
	}
	if d.Structural {
		t.Fatalf("param perturbation misclassified structural: %+v", d)
	}
	if d.CleanCount() != 2 {
		t.Fatalf("CleanCount = %d, want 2", d.CleanCount())
	}

	// Outside the normalized P-space the origin itself moves: everything
	// is dirty.
	d = Classify(anc, suc, "unweighted")
	wantClasses(t, d, Perturbed, Perturbed, Perturbed, Perturbed)
}

func TestClassifyZeroOriginDirtiesAll(t *testing.T) {
	anc := testDoc()
	suc, err := ApplyParams(anc, [][]float64{{1.5, 0}, {3.0}})
	if err != nil {
		t.Fatal(err)
	}
	d := Classify(anc, suc, "normalized")
	wantClasses(t, d, Perturbed, Perturbed, Perturbed, Perturbed)
}

func TestClassifyFeatureEditAndAppend(t *testing.T) {
	anc := testDoc()
	suc := anc
	suc.Features = append([]scenario.AnalysisFeature(nil), anc.Features...)
	suc.Features[0].Coeffs = [][]float64{{0.9, -0.3}, {0}}
	extra := anc.Features[1]
	extra.Name = "f4"
	suc.Features = append(suc.Features, extra)

	d := Classify(anc, suc, "normalized")
	wantClasses(t, d, Changed, Unchanged, Unchanged, Unchanged, StructurallyNew)
	if len(d.Dirty) != 2 || d.Dirty[0] != 0 || d.Dirty[1] != 4 {
		t.Fatalf("dirty = %v, want [0 4]", d.Dirty)
	}
}

func TestClassifyStructural(t *testing.T) {
	anc := testDoc()

	suc := anc
	suc.Params = anc.Params[:1]
	if d := Classify(anc, suc, "normalized"); !d.Structural || len(d.Dirty) != len(suc.Features) {
		t.Fatalf("param removal not structural/all-dirty: %+v", d)
	}

	suc = anc
	suc.Features = anc.Features[:2]
	if d := Classify(anc, suc, "normalized"); !d.Structural {
		t.Fatalf("feature removal not structural: %+v", d)
	}

	suc = anc
	suc.Params = append([]scenario.AnalysisParam(nil), anc.Params...)
	suc.Params[1].Unit = "s"
	if d := Classify(anc, suc, "normalized"); !d.Structural {
		t.Fatalf("unit change not structural: %+v", d)
	}
}

func TestApplyParamsRejectsBadShapes(t *testing.T) {
	doc := testDoc()
	if _, err := ApplyParams(doc, [][]float64{{1}, {2}, {3}}); err == nil {
		t.Fatal("wrong param count accepted")
	}
	if _, err := ApplyParams(doc, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("wrong element count accepted")
	}
	if _, err := ApplyParams(doc, [][]float64{{1.5, math.NaN()}, {3}}); err == nil {
		t.Fatal("NaN origin accepted")
	}
	// The input must not alias the result.
	in := [][]float64{{9, 9}, {9}}
	out, err := ApplyParams(doc, in)
	if err != nil {
		t.Fatal(err)
	}
	in[0][0] = -1
	if out.Params[0].Orig[0] != 9 {
		t.Fatal("ApplyParams aliases caller memory")
	}
}

// sameRadius compares every field of two radii bit-for-bit.
func sameRadius(a, b core.Radius) bool {
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) ||
		a.Side != b.Side || a.Feature != b.Feature || a.Param != b.Param ||
		a.Analytic != b.Analytic || a.Degraded != b.Degraded ||
		len(a.Point) != len(b.Point) {
		return false
	}
	for i := range a.Point {
		if math.Float64bits(a.Point[i]) != math.Float64bits(b.Point[i]) {
			return false
		}
	}
	return true
}

// TestDeltaBitIdentical drives the differ and core.RobustnessDelta end to
// end: the incremental result of every update must equal a cold full
// evaluation of the successor in every bit, for each weighting that admits
// the scenario.
func TestDeltaBitIdentical(t *testing.T) {
	opt := core.EvalOptions{Workers: 2, DegradeOnNumeric: true, DegradeSamples: 32, DegradeSeed: 1, KProbe: 4}
	weightings := []core.Weighting{core.Normalized{}, core.Unweighted{}}

	anc := testDoc()
	successors := []struct {
		name  string
		origs [][]float64
		edit  func(*scenario.AnalysisDoc)
	}{
		{name: "param-shift", origs: [][]float64{{1.5, 2.0}, {3.2}}},
		{name: "both-params", origs: [][]float64{{1.4, 2.1}, {2.9}}},
		{name: "feature-edit", origs: nil, edit: func(d *scenario.AnalysisDoc) {
			d.Features = append([]scenario.AnalysisFeature(nil), d.Features...)
			d.Features[3].Wgts = [][]float64{{1.2, 0}, {0}}
		}},
		{name: "identity", origs: [][]float64{{1.5, 2.0}, {3.0}}},
	}

	for _, w := range weightings {
		aAnc, err := anc.Build()
		if err != nil {
			t.Fatal(err)
		}
		base, err := aAnc.RobustnessWith(context.Background(), w, opt)
		if err != nil {
			t.Fatalf("%s: ancestor eval: %v", w.Name(), err)
		}
		for _, tc := range successors {
			suc := anc
			if tc.origs != nil {
				if suc, err = ApplyParams(anc, tc.origs); err != nil {
					t.Fatal(err)
				}
			}
			if tc.edit != nil {
				tc.edit(&suc)
			}
			d := Classify(anc, suc, w.Name())

			aCold, err := suc.Build()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := aCold.RobustnessWith(context.Background(), w, opt)
			if err != nil {
				t.Fatalf("%s/%s: cold eval: %v", w.Name(), tc.name, err)
			}

			aDelta, err := suc.Build()
			if err != nil {
				t.Fatal(err)
			}
			inc, err := aDelta.RobustnessDelta(context.Background(), w, opt, base.PerFeature, d.Dirty)
			if err != nil {
				t.Fatalf("%s/%s: delta eval: %v", w.Name(), tc.name, err)
			}

			if math.Float64bits(inc.Value) != math.Float64bits(cold.Value) ||
				inc.Critical != cold.Critical || inc.Degraded != cold.Degraded ||
				inc.Weighting != cold.Weighting {
				t.Fatalf("%s/%s: delta %+v != cold %+v (dirty %v)", w.Name(), tc.name, inc, cold, d.Dirty)
			}
			for i := range cold.PerFeature {
				if !sameRadius(inc.PerFeature[i], cold.PerFeature[i]) {
					t.Fatalf("%s/%s: feature %d delta radius %+v != cold %+v (classified %v)",
						w.Name(), tc.name, i, inc.PerFeature[i], cold.PerFeature[i], classes(d)[i])
				}
			}
			if tc.name == "identity" && len(d.Dirty) != 0 {
				t.Fatalf("identity update produced dirty set %v", d.Dirty)
			}
		}
	}
}

func TestDeltaValidation(t *testing.T) {
	doc := testDoc()
	a, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := core.Normalized{}
	r, err := a.RobustnessWith(context.Background(), w, core.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RobustnessDelta(context.Background(), w, core.EvalOptions{}, r.PerFeature[:2], nil); err == nil {
		t.Fatal("short prior accepted")
	}
	if _, err := a.RobustnessDelta(context.Background(), w, core.EvalOptions{}, r.PerFeature, []int{7}); err == nil {
		t.Fatal("out-of-range dirty index accepted")
	}
	// Duplicate dirty indices are tolerated (deduped).
	inc, err := a.RobustnessDelta(context.Background(), w, core.EvalOptions{}, r.PerFeature, []int{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(inc.Value) != math.Float64bits(r.Value) {
		t.Fatalf("deduped delta %v != baseline %v", inc.Value, r.Value)
	}
}
