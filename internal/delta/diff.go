// Package delta classifies the difference between two versions of a
// scenario.AnalysisDoc — an evaluated ancestor and its successor, keyed by
// AnalysisDoc.Fingerprint ancestry — into a conservative per-feature dirty
// set: the features whose radii must be re-searched for the successor, with
// every feature outside the set guaranteed bit-identical to what a cold full
// evaluation of the successor would produce. core.RobustnessDelta consumes
// the set; the fepiad watch subsystem (internal/server, internal/cluster)
// drives the pair end to end for streaming parameter updates.
//
// The soundness argument rests on three facts about the engine:
//
//  1. ρ_μ is a min-fold over per-feature radii with no cross-feature state
//     (internal/core/shard.go), so reuse is decided feature by feature.
//  2. A feature whose dependence block on a parameter is identically zero
//     produces bit-identical impact values regardless of that parameter's
//     origin: the zero coefficients contribute exact float zeros to every
//     accumulation (0·x = ±0 and y + ±0 = y for y ≠ 0 in IEEE arithmetic,
//     and math.Pow(x, 0) = 1), in both the scalar impacts and the k-probe
//     kernels, which replicate the scalar accumulation order.
//  3. Under the paper's normalized weighting the search runs in a P-space
//     whose origin is the all-ones vector regardless of the parameter
//     origins, so an origin drift in an independent dimension moves neither
//     the probe positions (as seen by the feature, per fact 2) nor the
//     reported boundary point. Under the unweighted and sensitivity
//     weightings the P-space origin itself moves with the origins, so a
//     parameter change dirties every feature there (values would still
//     agree, but boundary Points and sensitivity scales would not, and the
//     contract is bit-identity of the whole result).
//
// Everything the classifier is unsure about is dirty. Structural changes —
// parameters added, removed, renamed, re-unit-ed, or resized; features
// removed or reordered (feature indices seed the degraded Monte-Carlo
// streams, so positional identity is the only identity) — dirty the entire
// feature set; the delta path then degenerates to a full evaluation with no
// correctness cliff.
package delta

import (
	"encoding/json"
	"fmt"
	"math"

	"fepia/internal/scenario"
)

// Class is the classification of one successor feature relative to the
// ancestor document.
type Class int

const (
	// Unchanged: the declaration is byte-identical and no parameter it
	// depends on changed — the ancestor's radius is reused verbatim.
	Unchanged Class = iota
	// Perturbed: the declaration is unchanged but a parameter the feature
	// depends on moved its origin — the radius is re-searched.
	Perturbed
	// Changed: the feature's own declaration differs from the ancestor's
	// at the same index — the radius is re-searched.
	Changed
	// StructurallyNew: the feature index does not exist in the ancestor —
	// there is no radius to reuse.
	StructurallyNew
)

// String implements fmt.Stringer for logs and metrics labels.
func (c Class) String() string {
	switch c {
	case Unchanged:
		return "unchanged"
	case Perturbed:
		return "perturbed"
	case Changed:
		return "changed"
	case StructurallyNew:
		return "new"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Diff is the classified difference between an ancestor document and its
// successor, sufficient to drive core.RobustnessDelta.
type Diff struct {
	// AncestorFP and SuccessorFP are the documents' fingerprints.
	AncestorFP, SuccessorFP string
	// Structural reports that the documents differ in shape (parameters or
	// feature positions) and the whole feature set is dirty; Reason says
	// why, for logs.
	Structural bool
	Reason     string
	// ParamsChanged lists parameter indices whose origin vectors differ
	// bit-for-bit (same shape). Empty when Structural.
	ParamsChanged []int
	// Features classifies each successor feature (parallel to
	// successor.Features).
	Features []Class
	// Dirty is the sorted list of successor feature indices that must be
	// re-searched; every index outside it is Unchanged and its ancestor
	// radius (same index) is reusable bit-for-bit.
	Dirty []int
}

// CleanCount returns the number of features whose radii are reused.
func (d *Diff) CleanCount() int { return len(d.Features) - len(d.Dirty) }

// Classify diffs successor against ancestor for an evaluation under the
// named weighting ("normalized", "unweighted", "sensitivity", …) and returns
// the conservative dirty set. Both documents should be valid (the caller
// builds the successor anyway, which validates); shape problems degrade to a
// Structural (all-dirty) diff rather than errors, because the delta path
// must never refuse work a full evaluation would accept.
func Classify(ancestor, successor scenario.AnalysisDoc, weighting string) *Diff {
	d := &Diff{Features: make([]Class, len(successor.Features))}
	d.AncestorFP, _ = ancestor.Fingerprint()
	d.SuccessorFP, _ = successor.Fingerprint()

	if reason := structuralReason(ancestor, successor); reason != "" {
		d.Structural = true
		d.Reason = reason
		for i := range d.Features {
			d.Features[i] = Changed
			d.Dirty = append(d.Dirty, i)
		}
		return d
	}

	for j := range successor.Params {
		if !sameVector(ancestor.Params[j].Orig, successor.Params[j].Orig) {
			d.ParamsChanged = append(d.ParamsChanged, j)
		}
	}

	// A moved origin is only invisible to independent features in the
	// normalized P-space (package comment, fact 3) — and even there a zero
	// origin element degenerates the weighting itself, so a change
	// touching zero dirties everything (the successor may error where the
	// ancestor did not, or vice versa).
	paramsDirtyAll := false
	if len(d.ParamsChanged) > 0 {
		if weighting != "normalized" {
			paramsDirtyAll = true
		}
		for _, j := range d.ParamsChanged {
			for e := range successor.Params[j].Orig {
				if ancestor.Params[j].Orig[e] == 0 || successor.Params[j].Orig[e] == 0 {
					paramsDirtyAll = true
				}
			}
		}
	}

	for i, f := range successor.Features {
		switch {
		case i >= len(ancestor.Features):
			d.Features[i] = StructurallyNew
		case !sameFeature(ancestor.Features[i], f):
			d.Features[i] = Changed
		case paramsDirtyAll && len(d.ParamsChanged) > 0:
			d.Features[i] = Perturbed
		default:
			d.Features[i] = Unchanged
			for _, j := range d.ParamsChanged {
				if dependsOn(f, j) {
					d.Features[i] = Perturbed
					break
				}
			}
		}
		if d.Features[i] != Unchanged {
			d.Dirty = append(d.Dirty, i)
		}
	}
	return d
}

// structuralReason reports why the documents differ in shape, or "" when
// positional feature identity and the parameter space are preserved.
func structuralReason(ancestor, successor scenario.AnalysisDoc) string {
	if len(successor.Params) != len(ancestor.Params) {
		return fmt.Sprintf("param count %d -> %d", len(ancestor.Params), len(successor.Params))
	}
	for j := range successor.Params {
		ap, sp := ancestor.Params[j], successor.Params[j]
		if ap.Name != sp.Name || ap.Unit != sp.Unit {
			return fmt.Sprintf("param %d identity %q/%q -> %q/%q", j, ap.Name, ap.Unit, sp.Name, sp.Unit)
		}
		if len(ap.Orig) != len(sp.Orig) {
			return fmt.Sprintf("param %d dim %d -> %d", j, len(ap.Orig), len(sp.Orig))
		}
	}
	if len(successor.Features) < len(ancestor.Features) {
		// Removals shift (or delete) positional identities; appended
		// features are handled per-index as StructurallyNew.
		return fmt.Sprintf("feature count %d -> %d", len(ancestor.Features), len(successor.Features))
	}
	return ""
}

// sameVector compares two origin vectors bit-for-bit. Bitwise — not
// numeric — equality is deliberate: −0 and +0 compare equal numerically but
// can steer sign-sensitive accumulations differently.
func sameVector(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// sameFeature compares two feature declarations by canonical JSON
// (encoding/json emits struct fields in declaration order, the same
// determinism Fingerprint relies on).
func sameFeature(a, b scenario.AnalysisFeature) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	if aerr != nil || berr != nil {
		return false // unencodable: assume changed
	}
	return string(ab) == string(bb)
}

// dependsOn reports whether the feature's impact can depend on parameter j:
// true unless the feature's dependence block on j is identically zero.
// Unknown impact families report true (conservative).
func dependsOn(f scenario.AnalysisFeature, j int) bool {
	block := func(blocks [][]float64) bool {
		if j >= len(blocks) {
			return true // malformed: assume dependent
		}
		for _, x := range blocks[j] {
			if x != 0 {
				return true
			}
		}
		return false
	}
	switch f.Impact {
	case "", scenario.ImpactLinear:
		return block(f.Coeffs)
	case scenario.ImpactQuadratic:
		return block(f.Curv)
	case scenario.ImpactMultiplicative:
		return block(f.Pows)
	case scenario.ImpactQueueing:
		return block(f.Wgts)
	}
	return true
}

// ApplyParams returns a deep copy of doc with every parameter's origin
// replaced by origs — the successor document of one streamed parameter
// update. Origins are absolute, not relative: re-applying the same update is
// a no-op diff, which is what makes watch updates idempotent across
// retries and daemon restarts. The shape must match the document's.
func ApplyParams(doc scenario.AnalysisDoc, origs [][]float64) (scenario.AnalysisDoc, error) {
	if len(origs) != len(doc.Params) {
		return scenario.AnalysisDoc{}, fmt.Errorf("delta: update has %d param vectors, scenario has %d", len(origs), len(doc.Params))
	}
	out := doc
	out.Params = make([]scenario.AnalysisParam, len(doc.Params))
	for j, p := range doc.Params {
		if len(origs[j]) != len(p.Orig) {
			return scenario.AnalysisDoc{}, fmt.Errorf("delta: update param %d has %d elements, scenario has %d", j, len(origs[j]), len(p.Orig))
		}
		for e, x := range origs[j] {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return scenario.AnalysisDoc{}, fmt.Errorf("delta: update param %d element %d is not finite", j, e)
			}
		}
		out.Params[j] = p
		out.Params[j].Orig = append([]float64(nil), origs[j]...)
	}
	return out, nil
}
