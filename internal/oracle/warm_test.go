package oracle

import (
	"context"
	"math"
	"testing"

	"fepia/internal/core"
)

// The warm-start / k-probe differential: for generated instances forced
// through the numeric tier, every acceleration mode must return radii
// BIT-IDENTICAL to the plain scalar search — warm starts and k-probe
// batching reorganize who evaluates which probe when, but never move a
// probe. The matrix crosses modes {base, warm (two passes), k-probe,
// warm+k-probe} with engines {serial, concurrent, batch}, uncached (the
// impact cache's quantized hits carry their own documented 1e-9 agreement
// and are covered by the cache property tests).
func TestWarmKProbeDifferentialBitIdentical(t *testing.T) {
	ctx := context.Background()
	engines := []struct {
		name string
		run  func(a *core.Analysis, opt core.EvalOptions) (core.Robustness, error)
	}{
		{"serial", func(a *core.Analysis, opt core.EvalOptions) (core.Robustness, error) {
			return a.RobustnessWith(ctx, core.Normalized{}, opt)
		}},
		{"concurrent", func(a *core.Analysis, opt core.EvalOptions) (core.Robustness, error) {
			opt.Workers = 4
			return a.RobustnessWith(ctx, core.Normalized{}, opt)
		}},
		{"batch", func(a *core.Analysis, opt core.EvalOptions) (core.Robustness, error) {
			opt.Workers = 4
			out, errs := a.RobustnessBatch([]core.Weighting{core.Normalized{}}, opt)
			return out[0], errs[0]
		}},
	}
	modes := []struct {
		name   string
		warm   bool
		passes int
		opt    core.EvalOptions
	}{
		{"warm", true, 2, core.EvalOptions{}},
		// KBlock 5 is deliberately odd and unequal to the scan's bracket
		// subdivision, so probe windows straddle refinement boundaries.
		{"kprobe", false, 1, core.EvalOptions{KProbe: 5}},
		{"warm+kprobe", true, 2, core.EvalOptions{KProbe: 5}},
	}
	for seed := int64(1); seed <= 10; seed++ {
		spec := Generate(seed)
		base, err := spec.BuildNumeric()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := base.RobustnessWith(ctx, core.Normalized{}, core.EvalOptions{})
		if err != nil {
			t.Fatalf("seed %d base: %v", seed, err)
		}
		for _, eng := range engines {
			for _, mode := range modes {
				a, err := spec.BuildNumeric()
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if mode.warm {
					a.EnableWarmStart()
				}
				for pass := 0; pass < mode.passes; pass++ {
					got, err := eng.run(a, mode.opt)
					if err != nil {
						t.Fatalf("seed %d %s/%s pass %d: %v", seed, eng.name, mode.name, pass, err)
					}
					if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
						t.Fatalf("seed %d %s/%s pass %d: rho %.17g != base %.17g",
							seed, eng.name, mode.name, pass, got.Value, want.Value)
					}
					for i := range want.PerFeature {
						if math.Float64bits(got.PerFeature[i].Value) != math.Float64bits(want.PerFeature[i].Value) {
							t.Fatalf("seed %d %s/%s pass %d feature %d: %.17g != %.17g",
								seed, eng.name, mode.name, pass, i,
								got.PerFeature[i].Value, want.PerFeature[i].Value)
						}
					}
				}
				if mode.warm {
					if ws := a.WarmStats(); ws.Invalidations != 0 {
						t.Errorf("seed %d %s/%s: invalidations on a frozen analysis: %+v",
							seed, eng.name, mode.name, ws)
					}
				}
			}
		}
	}
}

// Single-parameter radii go through the same warm and k-probe machinery;
// they must stay bit-identical too.
func TestWarmKProbeSingleRadiiBitIdentical(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed <= 6; seed++ {
		spec := Generate(seed)
		base, err := spec.BuildNumeric()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		warm, err := spec.BuildNumeric()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		warm.EnableWarmStart()
		for i := range base.Features {
			for j := range base.Params {
				want, err := base.RadiusSingleCtx(ctx, i, j)
				if err != nil {
					t.Fatalf("seed %d (%d,%d): %v", seed, i, j, err)
				}
				for pass := 0; pass < 2; pass++ {
					got, err := warm.RadiusSingleCtx(ctx, i, j)
					if err != nil {
						t.Fatalf("seed %d (%d,%d) warm pass %d: %v", seed, i, j, pass, err)
					}
					if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
						t.Fatalf("seed %d (%d,%d) warm pass %d: %.17g != %.17g",
							seed, i, j, pass, got.Value, want.Value)
					}
				}
			}
		}
	}
}
