package oracle

// The crash-recovery differential, the durability analog of the search
// differential: a durable coordinator is hard-killed mid-generation, a new
// coordinator is booted from nothing but the state dir (the ring journal
// supplies the fleet, the checkpoint store the search), the search is
// resumed — and the final best must be byte-for-byte the one an
// uninterrupted coordinator produces, which in turn is bit-identical to the
// serial single-process engine. Checkpointed state is only real state if a
// resumed trajectory cannot be told apart from an undisturbed one.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/scenario"
	"fepia/internal/sched"
	"fepia/internal/server"
)

func TestOracleCoordinatorCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-recovery differential is not short")
	}
	// Workers with added latency on /v1/batch — outside the evaluation, so
	// scores are untouched — so generations take long enough that the kill
	// deadline reliably lands mid-search.
	const delay = 40 * time.Millisecond
	urls := make([]string, 2)
	for i := range urls {
		h := server.New(clusterWorkerConfig()).Handler()
		ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/batch" {
				time.Sleep(delay)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ws.Close)
		urls[i] = ws.URL
	}

	m := searchOracleMatrix(t, 24, 6, 41)
	opt := sched.SearchOptions{Algo: sched.AlgoGA, Objective: sched.ObjectiveMaxRho, Tau: 1.4, Seed: 1, Population: 16, Generations: 10}
	bound, err := sched.ResolveBound(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	serial := searchVia(t, m, &sched.EngineEvaluator{M: m, Bound: bound, Serial: true}, opt)

	var inst bytes.Buffer
	if err := scenario.SaveMakespan(&inst, m, nil); err != nil {
		t.Fatal(err)
	}
	req := server.SearchRequest{
		Instance:    inst.Bytes(),
		Algo:        opt.Algo,
		Objective:   opt.Objective,
		Tau:         opt.Tau,
		Seed:        opt.Seed,
		Population:  opt.Population,
		Generations: opt.Generations,
		SearchID:    "crash",
	}

	// Control: the same search on an uninterrupted coordinator.
	ctrl, err := cluster.New(cluster.Config{Workers: urls, HealthInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	ctrlFront := httptest.NewServer(ctrl.Handler())
	t.Cleanup(ctrlFront.Close)
	status, body := clusterPost(t, ctrlFront.URL+"/v1/search", req)
	if status != http.StatusOK {
		t.Fatalf("control search = %d: %s", status, body)
	}
	var controlRes server.SearchResponse
	if err := json.Unmarshal(body, &controlRes); err != nil {
		t.Fatal(err)
	}
	sameSearchOutcome(t, "control-vs-serial", serial, controlRes.Best.Alloc, controlRes.Best.Rho, controlRes.Best.Makespan, controlRes.RadiusEvals)

	// Interrupted: a durable coordinator, killed mid-generation. The
	// deadline lands ~4 batch rounds in (10 generations need ~11), so the
	// search is guaranteed truncated with at least the initial checkpoint
	// durably on disk.
	stateDir := t.TempDir()
	c1, err := cluster.New(cluster.Config{
		Workers:        urls,
		StateDir:       stateDir,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front1 := httptest.NewServer(c1.Handler())
	killed := req
	killed.Timeout = (4 * delay).String()
	status, body = clusterPost(t, front1.URL+"/v1/search", killed)
	switch status {
	case http.StatusOK:
		var partial server.SearchResponse
		if err := json.Unmarshal(body, &partial); err != nil {
			t.Fatal(err)
		}
		if !partial.Partial {
			t.Fatalf("interrupted search completed %d generations inside %s", partial.Generations, killed.Timeout)
		}
	case http.StatusGatewayTimeout, http.StatusBadGateway:
		// The deadline fired between generations (504) or mid-scatter (502,
		// the in-flight chunk died with the context — the closest in-process
		// analog of a hard kill). Either way the last completed generation's
		// checkpoint is already durable.
	default:
		t.Fatalf("interrupted search = %d: %s", status, body)
	}
	front1.CloseClientConnections()
	front1.Close()
	c1.Close() // crash analog: no drain, no admin teardown

	// Recover: a coordinator booted from the state dir alone — no static
	// worker list; the ring journal must supply the fleet.
	c2, err := cluster.New(cluster.Config{
		StateDir:        stateDir,
		HealthInterval:  50 * time.Millisecond,
		RecoveryTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("restart from state dir: %v", err)
	}
	t.Cleanup(c2.Close)
	front2 := httptest.NewServer(c2.Handler())
	t.Cleanup(front2.Close)

	// The restarted coordinator advertises the search as resumable.
	resp, err := http.Get(front2.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st cluster.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, row := range st.Searches {
		if row.ID == "crash" && row.State == "resumable" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no resumable 'crash' row in restarted /statz: %+v", st.Searches)
	}
	if len(st.Workers) != len(urls) {
		t.Fatalf("journal recovered %d workers, want %d", len(st.Workers), len(urls))
	}

	// Resume, overriding the truncating deadline, and diff the final best
	// byte-for-byte against the uninterrupted control.
	status, body = clusterPost(t, front2.URL+"/v1/search", server.SearchRequest{ResumeID: "crash", Timeout: "2m"})
	if status != http.StatusOK {
		t.Fatalf("resume = %d: %s", status, body)
	}
	var resumed server.SearchResponse
	if err := json.Unmarshal(body, &resumed); err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed {
		t.Fatal("resumed response not marked Resumed")
	}
	if resumed.Partial {
		t.Fatal("resumed run still partial")
	}
	sameSearchOutcome(t, "resumed-vs-serial", serial, resumed.Best.Alloc, resumed.Best.Rho, resumed.Best.Makespan, resumed.RadiusEvals)
	gotBest, err := json.Marshal(resumed.Best)
	if err != nil {
		t.Fatal(err)
	}
	wantBest, err := json.Marshal(controlRes.Best)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBest, wantBest) {
		t.Fatalf("resumed best differs byte-for-byte:\n%s\n%s", gotBest, wantBest)
	}

	// The clean completion consumed the checkpoint: resuming again is 404.
	status, body = clusterPost(t, front2.URL+"/v1/search", server.SearchRequest{ResumeID: "crash"})
	if status != http.StatusNotFound {
		t.Fatalf("second resume = %d, want 404: %s", status, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "resume-not-found" {
		t.Fatalf("kind = %q, want resume-not-found", er.Kind)
	}
}
