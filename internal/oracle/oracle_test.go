package oracle

import (
	"math"
	"reflect"
	"testing"

	"fepia/internal/core"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// TestGenerateDeterministic: the generator is a pure function of the seed —
// a discrepancy report citing a seed must reproduce forever.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Fatal("distinct seeds produced identical instances")
	}
}

// TestOraclePropertySweep is the main property suite: generated instances
// must pass the full differential tier matrix, the paper invariants, and
// the degraded-tier checks with zero discrepancies. robustbench -oracle
// runs the same loop at 500 cases; CI runs this at -race.
func TestOraclePropertySweep(t *testing.T) {
	n := int64(16)
	if testing.Short() {
		n = 6
	}
	for seed := int64(1); seed <= n; seed++ {
		spec := Generate(seed)
		ds, err := Check(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: infrastructure failure: %v", seed, err)
		}
		for _, d := range ds {
			t.Errorf("seed %d: %s", seed, d)
		}
	}
}

// mkTier assembles a synthetic tier result for comparator tests.
func mkTier(name string, cached bool, vals ...float64) tierResult {
	per := make([]core.Radius, len(vals))
	min, crit := math.Inf(1), 0
	for i, v := range vals {
		per[i] = core.Radius{Value: v}
		if v < min {
			min, crit = v, i
		}
	}
	return tierResult{
		name: name, fam: famNumeric, cached: cached,
		rho: core.Robustness{Value: min, Critical: crit, PerFeature: per},
	}
}

// TestCompareTiersDetectsDefects proves the oracle's comparator actually
// fires on each defect class it exists to catch — a silent comparator is
// worse than none.
func TestCompareTiersDetectsDefects(t *testing.T) {
	spec := Spec{Seed: 7, Features: make([]FeatureSpec, 2), Params: make([]ParamSpec, 1)}
	w := core.Normalized{}
	opt := Options{}.withDefaults()

	t.Run("agreement is silent", func(t *testing.T) {
		tiers := []tierResult{
			mkTier("numeric/serial", false, 0.5, 0.8),
			mkTier("numeric/batch", false, 0.5, 0.8),
		}
		if ds := compareTiers(spec, w, tiers, opt); len(ds) != 0 {
			t.Fatalf("agreeing tiers reported discrepancies: %v", ds)
		}
	})
	t.Run("uncached tiers must agree bitwise", func(t *testing.T) {
		tiers := []tierResult{
			mkTier("numeric/serial", false, 0.5, 0.8),
			mkTier("numeric/batch", false, 0.5+1e-12, 0.8),
		}
		ds := compareTiers(spec, w, tiers, opt)
		if len(ds) != 1 || ds[0].Kind != "tier-mismatch" {
			t.Fatalf("want one tier-mismatch for a 1e-12 scheduling drift, got %v", ds)
		}
	})
	t.Run("cached tier gets quantization tolerance", func(t *testing.T) {
		tiers := []tierResult{
			mkTier("numeric/serial", false, 0.5, 0.8),
			mkTier("numeric/serial+cache", true, 0.5+1e-12, 0.8),
		}
		if ds := compareTiers(spec, w, tiers, opt); len(ds) != 0 {
			t.Fatalf("1e-12 cached drift must pass the 1e-9 budget, got %v", ds)
		}
		tiers[1] = mkTier("numeric/serial+cache", true, 0.5+1e-6, 0.8)
		ds := compareTiers(spec, w, tiers, opt)
		if len(ds) != 1 || ds[0].Kind != "tier-mismatch" {
			t.Fatalf("1e-6 cached drift must fail the 1e-9 budget, got %v", ds)
		}
	})
	t.Run("min-fold violation", func(t *testing.T) {
		broken := mkTier("numeric/serial", false, 0.5, 0.8)
		broken.rho.Value = 0.8 // not the min of {0.5, 0.8}
		ds := compareTiers(spec, w, []tierResult{broken}, opt)
		if len(ds) != 1 || ds[0].Kind != "min-fold" {
			t.Fatalf("want one min-fold, got %v", ds)
		}
	})
	t.Run("degraded flag mismatch", func(t *testing.T) {
		a := mkTier("numeric/serial", false, 0.5, 0.8)
		b := mkTier("numeric/batch", false, 0.5, 0.8)
		b.rho.PerFeature[1].Degraded = true
		ds := compareTiers(spec, w, []tierResult{a, b}, opt)
		if len(ds) != 1 || ds[0].Kind != "degraded-flag-mismatch" {
			t.Fatalf("want one degraded-flag-mismatch, got %v", ds)
		}
	})
	t.Run("error class mismatch", func(t *testing.T) {
		a := mkTier("numeric/serial", false, 0.5, 0.8)
		b := mkTier("numeric/batch", false)
		b.err = core.ErrNumeric
		ds := compareTiers(spec, w, []tierResult{a, b}, opt)
		if len(ds) != 1 || ds[0].Kind != "error-mismatch" {
			t.Fatalf("want one error-mismatch, got %v", ds)
		}
	})
}

// TestRescaledPreservesImpact: the unit-rescaling transform must satisfy
// φ'(u·π) = φ(π) pointwise for every impact family — this is the algebraic
// ground truth behind the scale-invariance invariant.
func TestRescaledPreservesImpact(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		spec := Generate(seed)
		src := stats.NewSource(seed)
		units := make([]float64, len(spec.Params))
		for j := range units {
			units[j] = src.Uniform(0.25, 4)
		}
		resc := spec.Rescaled(units)
		for _, mul := range []float64{1, 1.07, 0.93} {
			base := make([]vec.V, len(spec.Params))
			scaled := make([]vec.V, len(spec.Params))
			for j, p := range spec.Params {
				base[j] = make(vec.V, len(p.Orig))
				scaled[j] = make(vec.V, len(p.Orig))
				for e, o := range p.Orig {
					base[j][e] = o * mul
					scaled[j][e] = o * mul * units[j]
				}
			}
			for i, f := range spec.Features {
				want := f.impact()(base)
				got := resc.Features[i].impact()(scaled)
				if !approxEq(want, got, 1e-9) {
					t.Errorf("seed %d feature %d (%s) mul %.2f: φ=%g but rescaled φ'=%g",
						seed, i, f.Kind, mul, want, got)
				}
			}
		}
	}
}

// TestLoosenedWidensBounds: the bound-relaxation transform must strictly
// widen every finite bound away from φ(π^orig).
func TestLoosenedWidensBounds(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		spec := Generate(seed)
		loose := spec.Loosened(2)
		for i, f := range spec.Features {
			g := loose.Features[i]
			if f.HasMax != g.HasMax || f.HasMin != g.HasMin {
				t.Fatalf("seed %d feature %d: loosening changed bound sidedness", seed, i)
			}
			if f.HasMax && g.Max <= f.Max {
				t.Errorf("seed %d feature %d: max %g not widened (got %g)", seed, i, f.Max, g.Max)
			}
			if f.HasMin && g.Min >= f.Min {
				t.Errorf("seed %d feature %d: min %g not widened (got %g)", seed, i, f.Min, g.Min)
			}
		}
	}
}

// TestPoisonedGeometry: the poisoned twin must agree with the clean build
// everywhere inside the overshoot envelope and return NaN exactly where the
// clean value passes it — so the true radius is unchanged and only the
// certification machinery is forced into the degraded tier.
func TestPoisonedGeometry(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		spec := Generate(seed)
		const overshoot = 0.75
		p, err := spec.Poisoned(overshoot)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clean, err := spec.BuildNumeric()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sawNaN := false
		for _, mul := range []float64{1, 1.2, 2, 5, 50} {
			vs := make([]vec.V, len(spec.Params))
			for j, pp := range spec.Params {
				vs[j] = make(vec.V, len(pp.Orig))
				for e, o := range pp.Orig {
					vs[j][e] = o * mul
				}
			}
			for i, f := range spec.Features {
				hi, lo := math.Inf(1), math.Inf(-1)
				span := 1.0
				if f.HasMin && f.HasMax {
					span = f.Max - f.Min
				}
				if f.HasMax {
					hi = f.Max + overshoot*span
				}
				if f.HasMin {
					lo = f.Min - overshoot*span
				}
				v := clean.Features[i].Impact(vs)
				got := p.Features[i].Impact(vs)
				if v > hi || v < lo {
					sawNaN = true
					if !math.IsNaN(got) {
						t.Errorf("seed %d feature %d mul %g: clean φ=%g beyond envelope [%g,%g] but poisoned returned %g",
							seed, i, mul, v, lo, hi, got)
					}
				} else if got != v {
					t.Errorf("seed %d feature %d mul %g: poisoned φ=%g differs from clean φ=%g inside envelope",
						seed, i, mul, got, v)
				}
			}
		}
		_ = sawNaN // poisoning may be unreachable on min-only features; fine per instance
	}
}

// TestMinimizeWithShrinks: with an always-failing predicate the shrinking
// engine must reach the global minimum — one feature, one scalar parameter.
func TestMinimizeWithShrinks(t *testing.T) {
	spec := Generate(1) // 7 features, 4 params at this seed
	if len(spec.Features) < 2 || len(spec.Params) < 2 {
		t.Fatalf("seed 1 no longer produces a rich instance: %d features, %d params",
			len(spec.Features), len(spec.Params))
	}
	min := minimizeWith(spec, func(Spec) bool { return true })
	if len(min.Features) != 1 {
		t.Errorf("want 1 feature after shrink, got %d", len(min.Features))
	}
	if len(min.Params) != 1 || len(min.Params[0].Orig) != 1 {
		t.Errorf("want one scalar parameter after shrink, got %+v", min.Params)
	}

	// A predicate with a floor: shrinking must stop exactly at the floor.
	atLeastTwo := minimizeWith(spec, func(s Spec) bool { return len(s.Features) >= 2 })
	if len(atLeastTwo.Features) != 2 {
		t.Errorf("want exactly 2 features when the failure needs 2, got %d", len(atLeastTwo.Features))
	}
}

// TestMinimizeKeepsNonReproducing: when no candidate reproduces the target
// kind, Minimize must hand back the instance unchanged rather than a
// spec that no longer fails.
func TestMinimizeKeepsNonReproducing(t *testing.T) {
	spec := Generate(2) // small instance keeps the probe Checks cheap
	out := Minimize(spec, "no-such-kind", Options{SkipMetamorphic: true, SkipDegraded: true})
	if !reflect.DeepEqual(spec, out) {
		t.Fatalf("Minimize mutated a non-reproducing instance:\n in=%+v\nout=%+v", spec, out)
	}
}

// TestFuzzReportAggregation: a clean campaign reports Clean() and carries
// the seed window it covered.
func TestFuzzReportAggregation(t *testing.T) {
	rep := Fuzz(4, 100, Options{SkipDegraded: testing.Short()})
	if !rep.Clean() {
		for _, d := range rep.Discrepancies {
			t.Errorf("%s", d)
		}
		t.Fatalf("default seeds must be clean: %d failures", rep.Failures)
	}
	if rep.Cases != 4 || rep.BaseSeed != 100 {
		t.Fatalf("report window wrong: %+v", rep)
	}
}
