package oracle

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/stats"
	"fepia/internal/vec"
)

// Tolerances is the oracle's tolerance model: how far two tiers may
// legitimately disagree before the difference is a defect. The model is
// additive per comparison — each side contributes the uncertainty of the
// machinery it ran through — and documented in docs/failure-semantics.md
// §oracle together with the authority order used to assign blame.
type Tolerances struct {
	// Exact bounds tiers that execute bit-identical arithmetic (the serial,
	// concurrent, and batch dispatch of the same uncached searches). Any
	// nonzero difference here is a scheduling-dependent result — the class
	// of bug the batch engine must never have. Default 0.
	Exact float64
	// Analytic bounds two closed-form evaluations of the same geometry that
	// differ only in floating-point association (e.g. the rescaled
	// metamorphic variant). Default 1e-9.
	Analytic float64
	// Numeric bounds the level-set search against an exact closed form (or
	// against an independently converged search). It reflects genuine
	// search uncertainty: boundary tolerance, descent stalls, polish
	// truncation. Default 5e-4 relative.
	Numeric float64
	// Cached is the extra uncertainty contributed by one memoizing cache:
	// a hit returns the value of a point within quantization distance
	// (~4.4e-13 relative) of the query, which the enclosing search can
	// amplify but property tests bound by 1e-9 on the radius. Default 1e-9.
	Cached float64
	// Invariant bounds the paper's metamorphic invariants (composition
	// bound, monotonicity, degeneracy) when at least one side came from the
	// numeric tier. Default 1e-3 relative: invariant checks compound the
	// uncertainty of two searches plus the transform itself.
	Invariant float64
}

// DefaultTolerances is the tolerance model robustbench -oracle and the
// property suite run with.
func DefaultTolerances() Tolerances {
	return Tolerances{
		Exact:     0,
		Analytic:  1e-9,
		Numeric:   5e-4,
		Cached:    1e-9,
		Invariant: 1e-3,
	}
}

// Options configure Check.
type Options struct {
	// Tol is the tolerance model; zero-value fields are replaced by
	// DefaultTolerances.
	Tol Tolerances
	// Workers sizes the concurrent and batch pools (default 4).
	Workers int
	// SkipMetamorphic disables the rescaling / bound-loosening / degeneracy
	// invariants (differential tier comparison only).
	SkipMetamorphic bool
	// SkipDegraded disables the poisoned-instance degraded-tier checks.
	SkipDegraded bool
	// Ctx, when non-nil, cancels the underlying evaluations.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	d := DefaultTolerances()
	if o.Tol.Analytic == 0 {
		o.Tol.Analytic = d.Analytic
	}
	if o.Tol.Numeric == 0 {
		o.Tol.Numeric = d.Numeric
	}
	if o.Tol.Cached == 0 {
		o.Tol.Cached = d.Cached
	}
	if o.Tol.Invariant == 0 {
		o.Tol.Invariant = d.Invariant
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// Discrepancy is one verified disagreement: two tiers (or a tier and an
// invariant) outside the tolerance model. The zero Feature index is
// meaningful; Feature is −1 for whole-analysis discrepancies.
type Discrepancy struct {
	Seed      int64   `json:"seed"`
	Kind      string  `json:"kind"`
	Weighting string  `json:"weighting,omitempty"`
	Feature   int     `json:"feature"`
	TierA     string  `json:"tierA,omitempty"`
	TierB     string  `json:"tierB,omitempty"`
	A         float64 `json:"a"`
	B         float64 `json:"b"`
	Tol       float64 `json:"tol"`
	Detail    string  `json:"detail,omitempty"`
	// Spec is the (possibly minimized) instance that reproduces the
	// disagreement; populated by Fuzz, nil from plain Check calls.
	Spec *Spec `json:"spec,omitempty"`
}

func (d Discrepancy) String() string {
	s := fmt.Sprintf("[%s] seed=%d", d.Kind, d.Seed)
	if d.Weighting != "" {
		s += " w=" + d.Weighting
	}
	if d.Feature >= 0 {
		s += fmt.Sprintf(" feature=%d", d.Feature)
	}
	if d.TierA != "" || d.TierB != "" {
		s += fmt.Sprintf(" %s=%.12g vs %s=%.12g (tol %.3g)", d.TierA, d.A, d.TierB, d.B, d.Tol)
	}
	if d.Detail != "" {
		s += ": " + d.Detail
	}
	return s
}

// tierFamily marks what produced a tier's numbers, for the tolerance model.
type tierFamily int

const (
	famAnalytic tierFamily = iota
	famNumeric
)

// tierResult is one tier's full evaluation of one (instance, weighting).
type tierResult struct {
	name   string
	fam    tierFamily
	cached bool
	rho    core.Robustness
	err    error
}

// errClass buckets an evaluation error for cross-tier comparison; tiers
// must fail the same way, not just succeed the same way.
func errClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, core.ErrImpactPanic):
		return "panic"
	case errors.Is(err, core.ErrNumeric):
		return "numeric"
	case errors.Is(err, core.ErrDegenerateWeighting):
		return "degenerate-weighting"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "other"
	}
}

// approxEq compares two radii under a relative tolerance, treating two
// infinities of the same sign as equal.
func approxEq(a, b, tol float64) bool {
	if a == b {
		return true // covers ±Inf pairs and exact equality (tol 0)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := 1 + math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// Check evaluates every robustness radius of the instance through all
// evaluation tiers and returns the verified discrepancies (empty when the
// tiers agree and every invariant holds). The returned error reports
// infrastructure failures — a spec that cannot be built — not mismatches.
func Check(spec Spec, opt Options) ([]Discrepancy, error) {
	opt = opt.withDefaults()
	var ds []Discrepancy

	for _, w := range checkWeightings(spec) {
		tiers, err := runTiers(spec, w, opt)
		if err != nil {
			return ds, err
		}
		ds = append(ds, compareTiers(spec, w, tiers, opt)...)
	}
	if !opt.SkipMetamorphic {
		more, err := checkInvariants(spec, opt)
		if err != nil {
			return ds, err
		}
		ds = append(ds, more...)
	}
	if !opt.SkipDegraded {
		more, err := checkDegraded(spec, opt)
		if err != nil {
			return ds, err
		}
		ds = append(ds, more...)
	}
	return ds, nil
}

// checkWeightings selects the weightings the tier comparison runs under:
// the paper's normalized scheme always, plus a deterministic random Custom
// weighting derived from the instance seed (per-kind unit conversions).
func checkWeightings(spec Spec) []core.Weighting {
	src := stats.NewSource(spec.Seed ^ 0xa1fa5)
	alphas := make(vec.V, len(spec.Params))
	for j := range alphas {
		alphas[j] = src.Uniform(0.25, 4)
	}
	return []core.Weighting{
		core.Normalized{},
		core.Custom{Alphas: alphas, Label: "oracle-custom"},
	}
}

// runTiers evaluates one (instance, weighting) through the full tier
// matrix: serial/concurrent/batch dispatch × cached/uncached memoization ×
// analytic-where-available/numeric-forced impact declarations. Every tier
// builds its own Analysis so no state leaks between tiers.
func runTiers(spec Spec, w core.Weighting, opt Options) ([]tierResult, error) {
	type tierDef struct {
		name     string
		fam      tierFamily
		analytic bool
		cached   bool
		run      func(a *core.Analysis) (core.Robustness, error)
	}
	serial := func(a *core.Analysis) (core.Robustness, error) {
		return a.RobustnessWith(opt.Ctx, w, core.EvalOptions{})
	}
	concurrent := func(a *core.Analysis) (core.Robustness, error) {
		return a.RobustnessWith(opt.Ctx, w, core.EvalOptions{Workers: opt.Workers})
	}
	batch := func(a *core.Analysis) (core.Robustness, error) {
		outs, errs := core.RobustnessBatch(opt.Ctx, []core.BatchItem{{A: a, W: w}},
			core.EvalOptions{Workers: opt.Workers})
		return outs[0], errs[0]
	}
	defs := []tierDef{
		{"numeric/serial", famNumeric, false, false, serial},
		{"numeric/concurrent", famNumeric, false, false, concurrent},
		{"numeric/batch", famNumeric, false, false, batch},
		{"numeric/serial+cache", famNumeric, false, true, serial},
		{"numeric/batch+cache", famNumeric, false, true, batch},
	}
	if spec.AnyAnalytic() {
		defs = append(defs,
			tierDef{"analytic/serial", famAnalytic, true, false, serial},
			tierDef{"analytic/batch", famAnalytic, true, false, batch},
		)
	}

	out := make([]tierResult, 0, len(defs))
	for _, def := range defs {
		var (
			a   *core.Analysis
			err error
		)
		if def.analytic {
			a, err = spec.Build()
		} else {
			a, err = spec.BuildNumeric()
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: building %s tier: %w", def.name, err)
		}
		if def.cached {
			a.EnableImpactCache(0)
		}
		rho, rerr := def.run(a)
		out = append(out, tierResult{name: def.name, fam: def.fam, cached: def.cached, rho: rho, err: rerr})
	}
	return out, nil
}

// pairTol resolves the tolerance for one feature's radius between two
// tiers, from the per-radius Analytic flag (which tier of machinery
// actually produced the number) and each side's cache participation.
func pairTol(ra, rb core.Radius, aCached, bCached bool, tol Tolerances) float64 {
	var t float64
	if ra.Analytic != rb.Analytic {
		t = tol.Numeric // closed form vs numeric search
	} else if ra.Analytic {
		t = tol.Exact // same closed form, same arithmetic
	} else {
		t = tol.Exact // same numeric search, same arithmetic
	}
	if aCached {
		t += tol.Cached
	}
	if bCached {
		t += tol.Cached
	}
	return t
}

// compareTiers performs the pairwise differential comparison of the tier
// matrix for one weighting.
func compareTiers(spec Spec, w core.Weighting, tiers []tierResult, opt Options) []Discrepancy {
	var ds []Discrepancy

	// Error classification must agree across the whole matrix.
	baseClass := errClass(tiers[0].err)
	for _, tr := range tiers[1:] {
		if c := errClass(tr.err); c != baseClass {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "error-mismatch", Weighting: w.Name(), Feature: -1,
				TierA: tiers[0].name, TierB: tr.name,
				Detail: fmt.Sprintf("%s fails %q (%v) while %s fails %q (%v)",
					tiers[0].name, baseClass, tiers[0].err, tr.name, c, tr.err),
			})
		}
	}
	if baseClass != "" {
		return ds // consistently failing instance: nothing numeric to compare
	}

	// Per-tier minimality: ρ must be the exact min over per-feature radii.
	// Tiers that errored are excluded — the error-mismatch record above
	// already covers them and they carry no per-feature radii.
	for _, tr := range tiers {
		if tr.err != nil {
			continue
		}
		min := math.Inf(1)
		for _, r := range tr.rho.PerFeature {
			if r.Value < min {
				min = r.Value
			}
		}
		if tr.rho.Value != min {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "min-fold", Weighting: w.Name(), Feature: tr.rho.Critical,
				TierA: tr.name, TierB: tr.name, A: tr.rho.Value, B: min,
				Detail: "ρ is not the minimum of the per-feature radii",
			})
		}
	}

	// Pairwise per-feature agreement within the tolerance model.
	for x := 0; x < len(tiers); x++ {
		for y := x + 1; y < len(tiers); y++ {
			a, b := tiers[x], tiers[y]
			if a.err != nil || b.err != nil {
				continue
			}
			for i := range spec.Features {
				ra, rb := a.rho.PerFeature[i], b.rho.PerFeature[i]
				if ra.Degraded != rb.Degraded {
					ds = append(ds, Discrepancy{
						Seed: spec.Seed, Kind: "degraded-flag-mismatch", Weighting: w.Name(), Feature: i,
						TierA: a.name, TierB: b.name, A: ra.Value, B: rb.Value,
						Detail: fmt.Sprintf("degraded=%v vs degraded=%v", ra.Degraded, rb.Degraded),
					})
					continue
				}
				t := pairTol(ra, rb, a.cached, b.cached, opt.Tol)
				if !approxEq(ra.Value, rb.Value, t) {
					ds = append(ds, Discrepancy{
						Seed: spec.Seed, Kind: "tier-mismatch", Weighting: w.Name(), Feature: i,
						TierA: a.name, TierB: b.name, A: ra.Value, B: rb.Value, Tol: t,
						Detail: fmt.Sprintf("|Δ| = %.3g", math.Abs(ra.Value-rb.Value)),
					})
				}
			}
		}
	}
	return ds
}

// checkInvariants asserts the paper's exact invariants on the instance:
// the per-parameter composition bound, single-parameter tier agreement,
// normalized-weighting scale invariance, bound-loosening monotonicity, and
// the 1/√n sensitivity degeneracy on Section 3.1 instances.
func checkInvariants(spec Spec, opt Options) ([]Discrepancy, error) {
	var ds []Discrepancy
	a, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("oracle: invariants build: %w", err)
	}
	an, err := spec.BuildNumeric()
	if err != nil {
		return nil, fmt.Errorf("oracle: invariants numeric build: %w", err)
	}
	w := core.Weighting(core.Normalized{})

	// Combined radii (authoritative build) per feature.
	combined := make([]core.Radius, len(spec.Features))
	for i := range spec.Features {
		r, err := a.CombinedRadiusCtx(opt.Ctx, i, w)
		if err != nil {
			return ds, nil // consistently failing instances are covered by compareTiers
		}
		combined[i] = r
	}

	// Single-parameter radii: differential (analytic vs numeric) agreement
	// and the composition bound r_P ≤ dist_P(π_j*) for every finite r_ij.
	for i := range spec.Features {
		for j := range spec.Params {
			rij, err := a.RadiusSingleCtx(opt.Ctx, i, j)
			if err != nil {
				continue
			}
			nij, err := an.RadiusSingleCtx(opt.Ctx, i, j)
			if err != nil {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "error-mismatch", Feature: i,
					TierA: "single/analytic", TierB: "single/numeric",
					Detail: fmt.Sprintf("param %d: analytic r=%g but numeric tier fails: %v", j, rij.Value, err),
				})
				continue
			}
			t := opt.Tol.Exact
			if rij.Analytic != nij.Analytic {
				t = opt.Tol.Numeric
			}
			if !approxEq(rij.Value, nij.Value, t) {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "tier-mismatch", Feature: i,
					TierA: "single/analytic", TierB: "single/numeric",
					A: rij.Value, B: nij.Value, Tol: t,
					Detail: fmt.Sprintf("single-parameter radius, param %d", j),
				})
			}
			if math.IsInf(rij.Value, 1) || rij.Point == nil {
				continue
			}
			// Composition bound: the single-parameter boundary point is a
			// feasible combined-space boundary point, so the combined radius
			// can never exceed its P-distance (Eq. 1 minimality in P-space).
			values := a.OrigValues()
			values[j] = rij.Point
			p, err := core.ToP(a, w, i, values)
			if err != nil {
				continue
			}
			pOrig, err := core.POrig(a, w, i)
			if err != nil {
				continue
			}
			dP := p.Dist2(pOrig)
			if !math.IsInf(combined[i].Value, 1) &&
				combined[i].Value > dP+opt.Tol.Invariant*(1+dP) {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "composition-bound", Weighting: w.Name(), Feature: i,
					TierA: "combined", TierB: fmt.Sprintf("via-param-%d", j),
					A: combined[i].Value, B: dP, Tol: opt.Tol.Invariant,
					Detail: "combined radius exceeds the P-distance of a single-parameter boundary point",
				})
			}
		}
	}

	// Scale invariance: expressing every parameter in a different unit must
	// not move any normalized-weighting radius (dimensionless P-space).
	src := stats.NewSource(spec.Seed ^ 0x5ca1e)
	units := make([]float64, len(spec.Params))
	for j := range units {
		units[j] = src.Uniform(0.25, 4)
	}
	resc, err := spec.Rescaled(units).Build()
	if err != nil {
		return nil, fmt.Errorf("oracle: rescaled build: %w", err)
	}
	for i := range spec.Features {
		r2, err := resc.CombinedRadiusCtx(opt.Ctx, i, w)
		if err != nil {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "error-mismatch", Feature: i,
				TierA: "combined", TierB: "combined/rescaled",
				Detail: fmt.Sprintf("rescaled instance fails: %v", err),
			})
			continue
		}
		t := opt.Tol.Invariant
		if combined[i].Analytic && r2.Analytic {
			t = opt.Tol.Analytic
		}
		if !approxEq(combined[i].Value, r2.Value, t) {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "scale-invariance", Weighting: w.Name(), Feature: i,
				TierA: "combined", TierB: "combined/rescaled",
				A: combined[i].Value, B: r2.Value, Tol: t,
				Detail: fmt.Sprintf("units %v moved a normalized radius", units),
			})
		}
	}

	// Monotonicity in β: widening every tolerable interval around φ(π^orig)
	// shrinks the violation region, so no radius may decrease.
	loose, err := spec.Loosened(2).Build()
	if err != nil {
		return nil, fmt.Errorf("oracle: loosened build: %w", err)
	}
	for i := range spec.Features {
		r2, err := loose.CombinedRadiusCtx(opt.Ctx, i, w)
		if err != nil {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "error-mismatch", Feature: i,
				TierA: "combined", TierB: "combined/loosened",
				Detail: fmt.Sprintf("loosened instance fails: %v", err),
			})
			continue
		}
		if r2.Value < combined[i].Value-opt.Tol.Invariant*(1+combined[i].Value) {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "beta-monotonicity", Weighting: w.Name(), Feature: i,
				TierA: "combined", TierB: "combined/loosened",
				A: combined[i].Value, B: r2.Value, Tol: opt.Tol.Invariant,
				Detail: "loosening the bounds shrank a robustness radius",
			})
		}
	}

	// Sensitivity degeneracy: on the exact Section 3.1 setting the
	// sensitivity-weighted combined radius is 1/√n for every feature,
	// independent of coefficients, bounds, and originals.
	if spec.AllLinearOneElem() {
		want := core.SensitivityRadiusLinear(len(spec.Params))
		for i := range spec.Features {
			r, err := a.CombinedRadiusCtx(opt.Ctx, i, core.Sensitivity{})
			if err != nil {
				continue // degenerate weighting (zero/infinite single radius) is legitimate
			}
			if !approxEq(r.Value, want, opt.Tol.Analytic) {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "sensitivity-degeneracy", Weighting: "sensitivity", Feature: i,
					TierA: "combined", TierB: "paper-1/sqrt(n)",
					A: r.Value, B: want, Tol: opt.Tol.Analytic,
					Detail: "Section 3.1 degeneracy violated on a linear one-element instance",
				})
			}
		}
	}
	return ds, nil
}

// checkDegraded verifies the Monte-Carlo degraded tier on a poisoned twin
// of the instance: every evaluation path must report bit-identical degraded
// lower bounds (per-feature derived seeds make the fallback independent of
// scheduling), and no degraded estimate may exceed the clean radius by more
// than the statistical slack of the estimator.
func checkDegraded(spec Spec, opt Options) ([]Discrepancy, error) {
	var ds []Discrepancy
	w := core.Weighting(core.Normalized{})
	eo := core.EvalOptions{DegradeOnNumeric: true, DegradeSamples: 256, DegradeSeed: spec.Seed}

	clean, err := spec.BuildNumeric()
	if err != nil {
		return nil, fmt.Errorf("oracle: degraded clean build: %w", err)
	}
	cleanRho, cleanErr := clean.RobustnessWith(opt.Ctx, w, core.EvalOptions{})

	run := func(name string, o core.EvalOptions, batch bool) (tierResult, error) {
		p, err := spec.Poisoned(0.75)
		if err != nil {
			return tierResult{}, fmt.Errorf("oracle: poisoned build: %w", err)
		}
		if batch {
			outs, errs := core.RobustnessBatch(opt.Ctx, []core.BatchItem{{A: p, W: w}}, o)
			return tierResult{name: name, rho: outs[0], err: errs[0]}, nil
		}
		rho, rerr := p.RobustnessWith(opt.Ctx, w, o)
		return tierResult{name: name, rho: rho, err: rerr}, nil
	}

	serialOpt := eo
	concOpt := eo
	concOpt.Workers = opt.Workers
	tiers := make([]tierResult, 0, 3)
	for _, def := range []struct {
		name  string
		o     core.EvalOptions
		batch bool
	}{
		{"degraded/serial", serialOpt, false},
		{"degraded/concurrent", concOpt, false},
		{"degraded/batch", concOpt, true},
	} {
		tr, err := run(def.name, def.o, def.batch)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, tr)
	}

	base := tiers[0]
	for _, tr := range tiers[1:] {
		if c, bc := errClass(tr.err), errClass(base.err); c != bc {
			ds = append(ds, Discrepancy{
				Seed: spec.Seed, Kind: "error-mismatch", Weighting: w.Name(), Feature: -1,
				TierA: base.name, TierB: tr.name,
				Detail: fmt.Sprintf("%q (%v) vs %q (%v)", bc, base.err, c, tr.err),
			})
		}
	}
	if errClass(base.err) != "" {
		return ds, nil
	}
	for _, tr := range tiers[1:] {
		if errClass(tr.err) != "" {
			continue
		}
		for i := range spec.Features {
			ra, rb := base.rho.PerFeature[i], tr.rho.PerFeature[i]
			if ra.Degraded != rb.Degraded || ra.Value != rb.Value {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "degraded-nondeterminism", Weighting: w.Name(), Feature: i,
					TierA: base.name, TierB: tr.name, A: ra.Value, B: rb.Value, Tol: 0,
					Detail: fmt.Sprintf("degraded=%v/%v — fallback must be scheduling-independent",
						ra.Degraded, rb.Degraded),
				})
			}
		}
	}
	// Lower-bound sanity against the clean radii: a degraded estimate is an
	// empirical lower bound and gets generous statistical slack, but it must
	// not wildly exceed the certified value.
	if cleanErr == nil {
		for i := range spec.Features {
			rd := base.rho.PerFeature[i]
			rc := cleanRho.PerFeature[i]
			if !rd.Degraded || math.IsInf(rc.Value, 1) {
				continue
			}
			// 3× slack: with 256 samples per bisection round the estimator
			// can legitimately settle up to ~1.6× above the certified radius
			// when the violating cap subtends a small solid angle in
			// high-dimensional P-space (observed empirically); 3× is beyond
			// the statistical tail but well inside what a sign error or an
			// inverted violation predicate would produce.
			if rd.Value > rc.Value*3+opt.Tol.Invariant {
				ds = append(ds, Discrepancy{
					Seed: spec.Seed, Kind: "degraded-overshoot", Weighting: w.Name(), Feature: i,
					TierA: "degraded/serial", TierB: "numeric/serial",
					A: rd.Value, B: rc.Value, Tol: 2,
					Detail: "Monte-Carlo lower bound exceeds 3× the certified radius",
				})
			}
		}
	}
	return ds, nil
}
