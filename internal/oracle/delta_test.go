package oracle

// The delta differential: a watch's incremental re-evaluation chain —
// classify the parameter diff, re-search only the dirty features, splice the
// reused radii — must be bit-identical to a cold full evaluation of every
// successor document. The min-fold structure of rho_mu makes the reuse sound
// (no cross-feature search state); this test holds the implementation to
// that across generated instances on a single node, over long chained
// update sequences, through a 3-worker coordinator scattering only dirty
// shards, and with workers killed while a delta is in flight.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/delta"
	"fepia/internal/scenario"
	"fepia/internal/server"
)

// openDeltaWatch creates a watch and detaches from the stream: the create
// response status is the only thing the differential needs (the per-update
// radii ride on the update responses). Some generated instances are not
// evaluable under the requested weighting (degenerate sensitivity weights);
// those must fail creation with the same typed error a cold evaluation
// reports, and the chain is skipped.
func openDeltaWatch(t *testing.T, baseURL, refURL, id string, doc scenario.AnalysisDoc, weighting string) bool {
	t.Helper()
	raw, err := json.Marshal(server.WatchRequest{ID: id, Scenario: &doc, Weighting: weighting})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true
	}
	body, _ := io.ReadAll(resp.Body)
	rs, rb := clusterPost(t, refURL+"/v1/robustness", server.EvalRequest{Scenario: doc, Weighting: weighting})
	if rs != resp.StatusCode {
		t.Fatalf("watch %s create = %d but cold eval = %d\ncreate: %s\ncold: %s", id, resp.StatusCode, rs, body, rb)
	}
	var ce, re server.ErrorResponse
	if err := json.Unmarshal(body, &ce); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rb, &re); err != nil {
		t.Fatal(err)
	}
	if ce.Error != re.Error || ce.Kind != re.Kind {
		t.Fatalf("watch %s create error differs:\n  create %q kind %q\n  cold   %q kind %q", id, ce.Error, ce.Kind, re.Error, re.Kind)
	}
	return false
}

// perturbStep builds the step-th absolute parameter update for a document:
// one vector element moves, everything else re-sends its current origin.
// Stepping the target around the parameter list exercises every dirty
// pattern the differ can produce — from single-feature to all-dirty.
func perturbStep(doc scenario.AnalysisDoc, step int) [][]float64 {
	out := make([][]float64, len(doc.Params))
	for i, p := range doc.Params {
		out[i] = append([]float64(nil), p.Orig...)
	}
	pi := step % len(out)
	e := step % len(out[pi])
	// Small moves: generated bounds sit 5-40% of the feature scale from
	// phi^orig, so a large jump would mostly land successors outside their
	// own bounds. Infeasible successors still occur and are checked for
	// error parity in deltaStep.
	out[pi][e] += 0.01 + 0.005*float64(step)
	return out
}

// deltaStep posts one update and requires it bit-identical to a cold full
// evaluation of the successor document on the reference daemon — including
// the error path: an infeasible successor must fail both sides with the
// same typed error, and the watch must not commit (the caller keeps the
// ancestor). Returns the document the watch is left holding.
func deltaStep(t *testing.T, tag, frontURL, refURL, id string, cur scenario.AnalysisDoc, weighting string, step int) scenario.AnalysisDoc {
	t.Helper()
	params := perturbStep(cur, step)
	succ, err := delta.ApplyParams(cur, params)
	if err != nil {
		t.Fatalf("%s: %v", tag, err)
	}

	us, ub := clusterPost(t, frontURL+"/v1/watch/update", server.WatchUpdateRequest{Watch: id, Params: params})
	rs, rb := clusterPost(t, refURL+"/v1/robustness", server.EvalRequest{Scenario: succ, Weighting: weighting})
	if us != rs {
		t.Fatalf("%s: status %d (update) vs %d (cold)\nupdate: %s\ncold: %s", tag, us, rs, ub, rb)
	}
	if us != http.StatusOK {
		var ue, re server.ErrorResponse
		if err := json.Unmarshal(ub, &ue); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if err := json.Unmarshal(rb, &re); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if ue.Error != re.Error || ue.Kind != re.Kind {
			t.Fatalf("%s: error differs:\n  update %q kind %q\n  cold   %q kind %q", tag, ue.Error, ue.Kind, re.Error, re.Kind)
		}
		return cur // no commit: the watch still holds the ancestor
	}
	var up server.WatchUpdateResponse
	if err := json.Unmarshal(ub, &up); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	var cold server.EvalResponse
	if err := json.Unmarshal(rb, &cold); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	sameRobustness(t, tag, up.Robustness, cold.Robustness)
	if len(up.Dirty)+up.Clean != len(cur.Features) {
		t.Fatalf("%s: dirty %d + clean %d does not cover %d features", tag, len(up.Dirty), up.Clean, len(cur.Features))
	}
	return succ
}

// closeDeltaWatch releases a watch's quota slot once its chain is done.
func closeDeltaWatch(t *testing.T, baseURL, id string) {
	t.Helper()
	if s, b := clusterPost(t, baseURL+"/v1/watch/close", server.WatchCloseRequest{Watch: id}); s != http.StatusOK {
		t.Fatalf("watch %s close = %d, body %s", id, s, b)
	}
}

// TestOracleDeltaDifferential proves incremental re-evaluation bit-identical
// to cold full evaluation: serially on one daemon, over chained update
// batches, through a 3-worker cluster, and with workers killed mid-delta.
func TestOracleDeltaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("delta differential is not short")
	}

	t.Run("serial", func(t *testing.T) {
		// One daemon hosts the watches; a separate cold daemon is the
		// reference, so no cache or warm state can leak between the sides.
		host := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(host.Close)
		ref := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(ref.Close)

		weightings := []string{"", "sensitivity"}
		for seed := int64(1); seed <= 30; seed++ {
			doc := specToAnalysisDoc(Generate(seed))
			w := weightings[seed%2]
			id := "delta-serial-" + itoa(seed)
			if !openDeltaWatch(t, host.URL, ref.URL, id, doc, w) {
				continue
			}
			for step := 0; step < 3; step++ {
				tag := "seed " + itoa(seed) + " step " + itoa(int64(step))
				doc = deltaStep(t, tag, host.URL, ref.URL, id, doc, w, step)
			}
			closeDeltaWatch(t, host.URL, id)
		}
	})

	t.Run("batch-chain", func(t *testing.T) {
		// Long chains: ten updates deep, the accumulated splices must never
		// drift a bit from a cold evaluation of the latest document.
		host := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(host.Close)
		ref := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(ref.Close)

		for seed := int64(40); seed < 46; seed++ {
			doc := specToAnalysisDoc(Generate(seed))
			id := "delta-chain-" + itoa(seed)
			if !openDeltaWatch(t, host.URL, ref.URL, id, doc, "") {
				continue
			}
			for step := 0; step < 10; step++ {
				tag := "chain " + itoa(seed) + " step " + itoa(int64(step))
				doc = deltaStep(t, tag, host.URL, ref.URL, id, doc, "", step)
			}
			closeDeltaWatch(t, host.URL, id)
		}
	})

	t.Run("cluster", func(t *testing.T) {
		// The coordinator scatters only dirty shards and splices its stored
		// radii for the rest; the reference is a cold single node.
		fx := newClusterFixture(t, 3)
		weightings := []string{"", "sensitivity"}
		for seed := int64(60); seed < 80; seed++ {
			doc := specToAnalysisDoc(Generate(seed))
			w := weightings[seed%2]
			id := "delta-cluster-" + itoa(seed)
			if !openDeltaWatch(t, fx.front.URL, fx.ref.URL, id, doc, w) {
				continue
			}
			for step := 0; step < 3; step++ {
				tag := "cluster " + itoa(seed) + " step " + itoa(int64(step))
				doc = deltaStep(t, tag, fx.front.URL, fx.ref.URL, id, doc, w, step)
			}
			closeDeltaWatch(t, fx.front.URL, id)
		}
	})

	t.Run("killed-worker-mid-delta", func(t *testing.T) {
		// Shard calls sleep 400ms of pure HTTP latency (outside evaluation),
		// so the kill lands while the delta's dirty shards are in flight.
		const delay = 400 * time.Millisecond
		workers := make([]*httptest.Server, 3)
		urls := make([]string, 3)
		for i := range urls {
			h := server.New(clusterWorkerConfig()).Handler()
			ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/shard" {
					time.Sleep(delay)
				}
				h.ServeHTTP(w, r)
			}))
			t.Cleanup(ws.Close)
			workers[i] = ws
			urls[i] = ws.URL
		}
		coord, err := cluster.New(cluster.Config{
			Workers:        urls,
			EnableChaos:    true,
			HealthInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(coord.Close)
		front := httptest.NewServer(coord.Handler())
		t.Cleanup(front.Close)
		ref := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(ref.Close)

		doc := specToAnalysisDoc(Generate(90))
		if !openDeltaWatch(t, front.URL, ref.URL, "delta-kill", doc, "") {
			t.Fatal("kill scenario must be evaluable (pick another seed)")
		}

		params := perturbStep(doc, 0)
		succ, err := delta.ApplyParams(doc, params)
		if err != nil {
			t.Fatal(err)
		}
		type out struct {
			status int
			body   []byte
		}
		ch := make(chan out, 1)
		go func() {
			s, b := clusterPost(t, front.URL+"/v1/watch/update", server.WatchUpdateRequest{Watch: "delta-kill", Params: params})
			ch <- out{s, b}
		}()
		// Kill two of the three workers while the dirty shards sleep in
		// flight; the delta must re-route to the survivor and commit a
		// result bit-identical to the cold single node.
		time.Sleep(150 * time.Millisecond)
		for _, w := range workers[:2] {
			w.CloseClientConnections()
			w.Close()
		}
		got := <-ch
		if got.status != http.StatusOK {
			t.Fatalf("update through kill = %d, body %s", got.status, got.body)
		}
		var up server.WatchUpdateResponse
		if err := json.Unmarshal(got.body, &up); err != nil {
			t.Fatal(err)
		}
		rs, rb := clusterPost(t, ref.URL+"/v1/robustness", server.EvalRequest{Scenario: succ})
		if rs != http.StatusOK {
			t.Fatalf("cold reference = %d, body %s", rs, rb)
		}
		var cold server.EvalResponse
		if err := json.Unmarshal(rb, &cold); err != nil {
			t.Fatal(err)
		}
		sameRobustness(t, "killed-worker", up.Robustness, cold.Robustness)
	})
}
