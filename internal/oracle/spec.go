// Package oracle is the differential + metamorphic correctness subsystem of
// the robustness engine. The repository computes the same robustness radius
// through several independent tiers — analytic closed forms (hyperplane and
// ellipsoid geometry), the numeric level-set search, the memoizing impact
// cache, the per-feature worker pool, the (item, feature, side) batch
// scheduler, and the Monte-Carlo degraded fallback — and the production
// north star depends on the tiers never silently disagreeing.
//
// The oracle generates randomized analysis instances (Generate), evaluates
// every radius through all tiers (Check), and asserts
//
//   - pairwise tier agreement within the tolerance model of Tolerances
//     (docs/failure-semantics.md §oracle documents which tier is
//     authoritative when they disagree), and
//   - the paper's exact invariants: minimality of the combined radius
//     against the per-parameter composition bound r_P ≤ dist_P(π_j*),
//     scale-invariance of the normalized weighting under unit rescaling,
//     monotonicity of the radius in the tolerable bounds β, and the 1/√n
//     degeneracy of the sensitivity weighting on linear one-element
//     instances (Eslamnour & Ali 2005, Sections 3.1–3.2).
//
// Fuzz drives Check over many seeds and minimizes any failing instance to a
// small reproducible counterexample; cmd/robustbench -oracle wires the same
// loop into CI with JSON discrepancy reports.
package oracle

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/vec"
)

// ImpactKind names the impact-function families the generator draws from.
type ImpactKind string

// The generated impact families. Linear and quadratic instances carry their
// analytic declarations when built with Build, so they exercise the
// closed-form tiers; multiplicative and queueing instances are always
// numeric.
const (
	// KindLinear is φ = Const + Σ_j K_j·π_j (the paper's closed-form case).
	KindLinear ImpactKind = "linear"
	// KindQuadratic is φ = Const + Σ_j Σ_e A_je·(π_je − C_je)² with A ≥ 0
	// (the exact ellipsoid tier).
	KindQuadratic ImpactKind = "quadratic"
	// KindMultiplicative is φ = Const + Scale·Π_j Π_e |π_je|^{Pow_je} — a
	// smooth monotone-in-|π| nonlinearity (throughput/makespan products).
	KindMultiplicative ImpactKind = "multiplicative"
	// KindQueueing is φ = Σ_j Σ_e W_je / max(Cap_je − π_je, Eps_je) — the
	// M/M/1-latency shape with a softened pole, the hardest boundary
	// geometry the numeric tier faces in the experiments.
	KindQueueing ImpactKind = "queueing"
)

// ParamSpec describes one perturbation parameter π_j of a generated
// instance.
type ParamSpec struct {
	Name string    `json:"name"`
	Orig []float64 `json:"orig"`
}

// FeatureSpec describes one performance feature φ_i. Exactly the fields of
// its Kind are populated; all block-shaped fields are indexed [param][elem]
// and align with the instance's parameters. Bounds are carried as
// (HasMin, Min) / (HasMax, Max) pairs so the spec stays JSON-serializable
// (JSON has no ±Inf).
type FeatureSpec struct {
	Name string     `json:"name"`
	Kind ImpactKind `json:"kind"`

	HasMin bool    `json:"hasMin"`
	Min    float64 `json:"min,omitempty"`
	HasMax bool    `json:"hasMax"`
	Max    float64 `json:"max,omitempty"`

	// Linear.
	Coeffs [][]float64 `json:"coeffs,omitempty"`
	Const  float64     `json:"const,omitempty"`

	// Quadratic.
	Curv   [][]float64 `json:"curv,omitempty"`
	Center [][]float64 `json:"center,omitempty"`

	// Multiplicative.
	Scale float64     `json:"scale,omitempty"`
	Pows  [][]float64 `json:"pows,omitempty"`

	// Queueing.
	Wgts [][]float64 `json:"wgts,omitempty"`
	Caps [][]float64 `json:"caps,omitempty"`
	Eps  float64     `json:"eps,omitempty"`
}

// Spec is a complete generated analysis instance: the JSON-serializable
// ground truth every oracle tier is built from. A Spec is immutable by
// convention — transforms return deep copies.
type Spec struct {
	// Seed records the generator seed the instance came from (0 for
	// hand-written fixtures).
	Seed     int64         `json:"seed"`
	Params   []ParamSpec   `json:"params"`
	Features []FeatureSpec `json:"features"`
}

// bounds converts the serialized bound fields to core.Bounds.
func (f FeatureSpec) bounds() core.Bounds {
	b := core.Bounds{Min: math.Inf(-1), Max: math.Inf(1)}
	if f.HasMin {
		b.Min = f.Min
	}
	if f.HasMax {
		b.Max = f.Max
	}
	return b
}

// impact builds the feature's general impact closure. The closure copies
// the spec's blocks so later spec mutation (shrinking) cannot alias a
// previously built analysis.
func (f FeatureSpec) impact() core.ImpactFunc {
	switch f.Kind {
	case KindLinear:
		coeffs := deepCopy(f.Coeffs)
		c := f.Const
		return func(vs []vec.V) float64 {
			s := c
			for j, k := range coeffs {
				for e, ke := range k {
					s += ke * vs[j][e]
				}
			}
			return s
		}
	case KindQuadratic:
		curv, center := deepCopy(f.Curv), deepCopy(f.Center)
		c := f.Const
		return func(vs []vec.V) float64 {
			s := c
			for j := range curv {
				for e := range curv[j] {
					d := vs[j][e] - center[j][e]
					s += curv[j][e] * d * d
				}
			}
			return s
		}
	case KindMultiplicative:
		pows := deepCopy(f.Pows)
		c, scale := f.Const, f.Scale
		return func(vs []vec.V) float64 {
			p := scale
			for j := range pows {
				for e, pw := range pows[j] {
					p *= math.Pow(math.Abs(vs[j][e]), pw)
				}
			}
			return c + p
		}
	case KindQueueing:
		wgts, caps := deepCopy(f.Wgts), deepCopy(f.Caps)
		eps := f.Eps
		return func(vs []vec.V) float64 {
			s := 0.0
			for j := range wgts {
				for e, w := range wgts[j] {
					gap := caps[j][e] - vs[j][e]
					if gap < eps {
						gap = eps
					}
					s += w / gap
				}
			}
			return s
		}
	default:
		return nil
	}
}

// impactK builds the feature's batch (k-probe) evaluator, mirroring the
// scalar closure of impact() probe by probe with the SAME accumulation
// order — the ImpactK contract demands bit-identical values, so the linear
// kind replicates the flat single-accumulator loop of its scalar closure by
// hand (vec.LinearK reproduces core.LinearImpact's per-block partial dots,
// a different summation nesting), while the other kinds reuse the vec
// kernels, whose accumulation order matches these closures exactly.
func (f FeatureSpec) impactK() func(probes []vec.V, out []float64) {
	switch f.Kind {
	case KindLinear:
		coeffs := deepCopy(f.Coeffs)
		c := f.Const
		return func(probes []vec.V, out []float64) {
			for p, v := range probes {
				s := c
				off := 0
				for _, k := range coeffs {
					for e, ke := range k {
						s += ke * v[off+e]
					}
					off += len(k)
				}
				out[p] = s
			}
		}
	case KindQuadratic:
		curv, center := vecBlocks(f.Curv), vecBlocks(f.Center)
		c := f.Const
		return func(probes []vec.V, out []float64) {
			vec.QuadK(out, c, curv, center, probes)
		}
	case KindMultiplicative:
		pows := vecBlocks(f.Pows)
		c, scale := f.Const, f.Scale
		return func(probes []vec.V, out []float64) {
			vec.PowProdK(out, c, scale, pows, probes)
		}
	case KindQueueing:
		wgts, caps := vecBlocks(f.Wgts), vecBlocks(f.Caps)
		eps := f.Eps
		return func(probes []vec.V, out []float64) {
			vec.QueueK(out, wgts, caps, eps, probes)
		}
	default:
		return nil
	}
}

// feature assembles the core.Feature; analytic selects whether linear and
// quadratic kinds carry their closed-form declarations (the analytic tier)
// or only the general impact closure (forcing the numeric tier). Every
// feature carries its k-probe evaluator, so oracle runs exercise the
// batched path whenever a check opts into EvalOptions.KProbe.
func (f FeatureSpec) feature(analytic bool) (core.Feature, error) {
	imp := f.impact()
	if imp == nil {
		return core.Feature{}, fmt.Errorf("oracle: feature %q has unknown kind %q", f.Name, f.Kind)
	}
	out := core.Feature{Name: f.Name, Bounds: f.bounds(), Impact: imp, ImpactK: f.impactK()}
	if !analytic {
		return out, nil
	}
	switch f.Kind {
	case KindLinear:
		coeffs := make([]vec.V, len(f.Coeffs))
		for j, k := range f.Coeffs {
			coeffs[j] = vec.V(append([]float64(nil), k...))
		}
		out.Linear = &core.LinearImpact{Coeffs: coeffs, Const: f.Const}
	case KindQuadratic:
		q := &core.QuadImpact{Const: f.Const, A: make([]vec.V, len(f.Curv)), C: make([]vec.V, len(f.Center))}
		for j := range f.Curv {
			q.A[j] = vec.V(append([]float64(nil), f.Curv[j]...))
			q.C[j] = vec.V(append([]float64(nil), f.Center[j]...))
		}
		out.Quad = q
	}
	return out, nil
}

// Build assembles the instance with analytic declarations where the kind
// has them: linear and quadratic features go through the exact closed-form
// tiers.
func (s Spec) Build() (*core.Analysis, error) { return s.build(true) }

// BuildNumeric assembles the instance with impact closures only, forcing
// every feature through the numeric level-set tier — the differential
// counterpart of Build.
func (s Spec) BuildNumeric() (*core.Analysis, error) { return s.build(false) }

func (s Spec) build(analytic bool) (*core.Analysis, error) {
	params := make([]core.Perturbation, len(s.Params))
	for j, p := range s.Params {
		params[j] = core.Perturbation{
			Name: p.Name,
			Orig: vec.V(append([]float64(nil), p.Orig...)),
		}
	}
	features := make([]core.Feature, len(s.Features))
	for i, f := range s.Features {
		cf, err := f.feature(analytic)
		if err != nil {
			return nil, err
		}
		features[i] = cf
	}
	return core.NewAnalysis(features, params)
}

// AnyAnalytic reports whether the instance has at least one feature with a
// closed-form tier (so Build and BuildNumeric genuinely differ).
func (s Spec) AnyAnalytic() bool {
	for _, f := range s.Features {
		if f.Kind == KindLinear || f.Kind == KindQuadratic {
			return true
		}
	}
	return false
}

// AllLinearOneElem reports whether the instance is exactly the Section 3.1
// setting — every feature linear, every parameter one-element — where the
// sensitivity weighting must degenerate to the 1/√n radius.
func (s Spec) AllLinearOneElem() bool {
	for _, p := range s.Params {
		if len(p.Orig) != 1 {
			return false
		}
	}
	for _, f := range s.Features {
		if f.Kind != KindLinear {
			return false
		}
	}
	return len(s.Features) > 0 && len(s.Params) > 0
}

// Clone deep-copies the spec.
func (s Spec) Clone() Spec {
	out := Spec{Seed: s.Seed}
	out.Params = make([]ParamSpec, len(s.Params))
	for j, p := range s.Params {
		out.Params[j] = ParamSpec{Name: p.Name, Orig: append([]float64(nil), p.Orig...)}
	}
	out.Features = make([]FeatureSpec, len(s.Features))
	for i, f := range s.Features {
		g := f
		g.Coeffs = deepCopy(f.Coeffs)
		g.Curv = deepCopy(f.Curv)
		g.Center = deepCopy(f.Center)
		g.Pows = deepCopy(f.Pows)
		g.Wgts = deepCopy(f.Wgts)
		g.Caps = deepCopy(f.Caps)
		out.Features[i] = g
	}
	return out
}

// Rescaled applies the metamorphic unit-rescaling transform: parameter j's
// values are expressed in a new unit, π'_j = u_j·π_j, and every impact is
// transformed so that φ'(π') = φ(π) pointwise. Under the normalized
// weighting the P-space — and therefore every combined radius — must be
// invariant under this transform (the paper's dimensionlessness argument,
// Section 3.2). units must be positive and align with the parameters.
func (s Spec) Rescaled(units []float64) Spec {
	out := s.Clone()
	for j, u := range units {
		for e := range out.Params[j].Orig {
			out.Params[j].Orig[e] *= u
		}
	}
	for i := range out.Features {
		f := &out.Features[i]
		switch f.Kind {
		case KindLinear:
			for j, u := range units {
				for e := range f.Coeffs[j] {
					f.Coeffs[j][e] /= u
				}
			}
		case KindQuadratic:
			for j, u := range units {
				for e := range f.Curv[j] {
					f.Curv[j][e] /= u * u
					f.Center[j][e] *= u
				}
			}
		case KindMultiplicative:
			for j, u := range units {
				for _, pw := range f.Pows[j] {
					f.Scale /= math.Pow(u, pw)
				}
			}
		case KindQueueing:
			// w/(cap − π) is invariant under (w, cap, π) → (u·w, u·cap, u·π);
			// the pole softening floor scales with the unit too.
			minU := math.Inf(1)
			for j, u := range units {
				for e := range f.Wgts[j] {
					f.Wgts[j][e] *= u
					f.Caps[j][e] *= u
				}
				if u < minU {
					minU = u
				}
			}
			if len(units) > 0 && !math.IsInf(minU, 1) {
				f.Eps *= minU
			}
		}
	}
	return out
}

// Loosened applies the metamorphic bound-relaxation transform: every finite
// bound of every feature is moved away from its current position by the
// given factor ≥ 1 (the violation region shrinks), so every robustness
// radius must be monotonically non-decreasing. The reference point the
// bounds are widened around is each feature's value at π^orig.
func (s Spec) Loosened(factor float64) Spec {
	out := s.Clone()
	orig := make([]vec.V, len(out.Params))
	for j, p := range out.Params {
		orig[j] = vec.V(p.Orig)
	}
	for i := range out.Features {
		f := &out.Features[i]
		phi := f.impact()(orig)
		if f.HasMax {
			f.Max = phi + factor*(f.Max-phi)
		}
		if f.HasMin {
			f.Min = phi - factor*(phi-f.Min)
		}
	}
	return out
}

// Poisoned applies the fault-injection transform used by the degraded-tier
// checks: every feature's impact is wrapped (at build time, via the kind
// marker) to return NaN once the clean value passes the given multiple of
// its bound span beyond the bound. The NaN region lies strictly inside the
// violation region, so the true radius is unchanged, but the numeric tier
// must refuse to certify (ErrNumeric) whenever its search touches the
// region, and with EvalOptions.DegradeOnNumeric the Monte-Carlo fallback
// must report a deterministic lower bound instead.
//
// Poisoning is expressed as a derived analysis rather than a spec field:
// the spec stays serializable and the clean/poisoned pair share identical
// geometry by construction.
func (s Spec) Poisoned(overshoot float64) (*core.Analysis, error) {
	a, err := s.BuildNumeric()
	if err != nil {
		return nil, err
	}
	for i := range a.Features {
		f := &a.Features[i]
		b := f.Bounds
		span := 1.0
		if !math.IsInf(b.Max, 0) && !math.IsInf(b.Min, 0) {
			span = b.Max - b.Min
		}
		hi, lo := math.Inf(1), math.Inf(-1)
		if !math.IsInf(b.Max, 0) {
			hi = b.Max + overshoot*span
		}
		if !math.IsInf(b.Min, 0) {
			lo = b.Min - overshoot*span
		}
		inner := f.Impact
		f.Impact = func(vs []vec.V) float64 {
			v := inner(vs)
			if v > hi || v < lo {
				return math.NaN()
			}
			return v
		}
		f.ImpactK = nil // the clean batch evaluator would bypass the poison
	}
	return a, nil
}

func deepCopy(blocks [][]float64) [][]float64 {
	if blocks == nil {
		return nil
	}
	out := make([][]float64, len(blocks))
	for i, b := range blocks {
		out[i] = append([]float64(nil), b...)
	}
	return out
}

// vecBlocks deep-copies spec blocks into the vec.V form the k-probe
// kernels take.
func vecBlocks(blocks [][]float64) []vec.V {
	out := make([]vec.V, len(blocks))
	for i, b := range blocks {
		out[i] = vec.V(append([]float64(nil), b...))
	}
	return out
}
