package oracle

import (
	"fmt"
	"math"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// Generator bounds. The generator aims for *well-conditioned* instances:
// strictly positive originals (both weightings defined), bounds that
// enclose the original operating point with a healthy margin, coefficient
// magnitudes within two orders of magnitude of each other, and boundary
// geometry whose nearest point sits within a fraction of the P-space unit
// ball. Ill-conditioned instances don't sharpen the oracle — they blur the
// line between a genuine tier mismatch and legitimate numeric-search
// uncertainty.
const (
	maxParams      = 4
	maxDimPerParam = 3
	maxFeatures    = 8
)

// Generate derives a randomized analysis instance from the seed: 1–4
// perturbation kinds of 1–3 elements each, 1–8 features drawn from the
// four impact families, and one- or two-sided bounds placed 5–40% (in
// feature units) away from the original operating point. The same seed
// always yields the same instance.
func Generate(seed int64) Spec {
	src := stats.NewSource(seed ^ 0x0facc1e5)
	s := Spec{Seed: seed}

	nParams := 1 + src.Intn(maxParams)
	for j := 0; j < nParams; j++ {
		dim := 1 + src.Intn(maxDimPerParam)
		orig := make([]float64, dim)
		for e := range orig {
			orig[e] = src.Uniform(0.5, 5)
		}
		s.Params = append(s.Params, ParamSpec{Name: fmt.Sprintf("pi_%d", j+1), Orig: orig})
	}

	kinds := []ImpactKind{KindLinear, KindQuadratic, KindMultiplicative, KindQueueing}
	nFeatures := 1 + src.Intn(maxFeatures)
	for i := 0; i < nFeatures; i++ {
		kind := kinds[src.Intn(len(kinds))]
		f := genFeature(src, s.Params, kind, i)
		s.Features = append(s.Features, f)
	}
	return s
}

// genFeature draws one feature of the given kind and places its bounds
// around the feature's value at π^orig.
func genFeature(src *stats.Source, params []ParamSpec, kind ImpactKind, idx int) FeatureSpec {
	f := FeatureSpec{Name: fmt.Sprintf("phi_%d_%s", idx+1, kind), Kind: kind}
	switch kind {
	case KindLinear:
		f.Const = src.Uniform(-1, 1)
		f.Coeffs = genBlocks(src, params, func() float64 {
			k := src.Uniform(0.2, 2)
			if src.Float64() < 0.3 {
				k = -k
			}
			return k
		})
	case KindQuadratic:
		f.Const = src.Uniform(0, 1)
		f.Curv = genBlocks(src, params, func() float64 { return src.Uniform(0.1, 2) })
		f.Center = make([][]float64, len(params))
		for j, p := range params {
			f.Center[j] = make([]float64, len(p.Orig))
			for e := range p.Orig {
				// Centers near (but not at) the originals keep the ellipsoid
				// boundary within comfortable search range.
				f.Center[j][e] = p.Orig[e] + src.Uniform(-0.5, 0.5)
			}
		}
	case KindMultiplicative:
		f.Const = src.Uniform(0, 0.5)
		f.Scale = src.Uniform(0.5, 2)
		f.Pows = genBlocks(src, params, func() float64 {
			return []float64{0.5, 1, 2}[src.Intn(3)]
		})
	case KindQueueing:
		f.Wgts = genBlocks(src, params, func() float64 { return src.Uniform(0.5, 2) })
		f.Caps = make([][]float64, len(params))
		minCap := math.Inf(1)
		for j, p := range params {
			f.Caps[j] = make([]float64, len(p.Orig))
			for e, o := range p.Orig {
				f.Caps[j][e] = o * src.Uniform(1.5, 3)
				if f.Caps[j][e] < minCap {
					minCap = f.Caps[j][e]
				}
			}
		}
		f.Eps = 1e-6 * minCap
	}

	// Place bounds relative to φ^orig. The margin is drawn per side so
	// two-sided instances are asymmetric; 5–40% of the feature's own scale
	// keeps the nearest boundary well inside the search's comfort zone while
	// staying far enough from π^orig that radii are not degenerate.
	orig := origVecs(params)
	phi := f.impact()(orig)
	scale := 1 + math.Abs(phi)
	twoSided := src.Float64() < 0.5
	f.HasMax = true
	f.Max = phi + src.Uniform(0.05, 0.4)*scale
	if twoSided {
		f.HasMin = true
		f.Min = phi - src.Uniform(0.05, 0.4)*scale
	}
	// Occasionally flip to a min-only requirement (throughput-style).
	if !twoSided && src.Float64() < 0.3 {
		f.HasMax = false
		f.HasMin = true
		f.Min = phi - src.Uniform(0.05, 0.4)*scale
	}
	return f
}

// genBlocks draws one value per (param, element) with the given sampler.
func genBlocks(src *stats.Source, params []ParamSpec, draw func() float64) [][]float64 {
	out := make([][]float64, len(params))
	for j, p := range params {
		out[j] = make([]float64, len(p.Orig))
		for e := range p.Orig {
			out[j][e] = draw()
		}
	}
	return out
}

func origVecs(params []ParamSpec) []vec.V {
	out := make([]vec.V, len(params))
	for j, p := range params {
		out[j] = vec.V(p.Orig)
	}
	return out
}
