package oracle

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Report aggregates one fuzzing campaign: how many instances were checked,
// how many failed, and every verified discrepancy with its minimized
// reproducer attached.
type Report struct {
	// Cases is the number of generated instances.
	Cases int `json:"cases"`
	// BaseSeed is the first instance seed; instance c uses BaseSeed+c.
	BaseSeed int64 `json:"baseSeed"`
	// Failures counts instances with at least one discrepancy.
	Failures int `json:"failures"`
	// ByKind counts discrepancies per kind across the campaign.
	ByKind map[string]int `json:"byKind,omitempty"`
	// Discrepancies lists every recorded disagreement (at most
	// maxPerCase per instance), each carrying a minimized Spec.
	Discrepancies []Discrepancy `json:"discrepancies,omitempty"`
	// Elapsed is the wall-clock duration of the campaign.
	Elapsed time.Duration `json:"elapsedNs"`
}

// maxPerCase caps recorded discrepancies per instance: one defect usually
// fails many tier pairs at once, and the reproducer matters more than the
// enumeration.
const maxPerCase = 8

// Fuzz checks `cases` generated instances with consecutive seeds starting
// at baseSeed, minimizing a reproducer for every failing instance. It is
// the library entry behind both the property suite's long mode and
// `robustbench -oracle`.
func Fuzz(cases int, baseSeed int64, opt Options) Report {
	start := time.Now()
	rep := Report{Cases: cases, BaseSeed: baseSeed, ByKind: map[string]int{}}
	for c := 0; c < cases; c++ {
		seed := baseSeed + int64(c)
		spec := Generate(seed)
		ds, err := Check(spec, opt)
		if err != nil {
			rep.Failures++
			rep.ByKind["infrastructure"]++
			rep.Discrepancies = append(rep.Discrepancies, Discrepancy{
				Seed: seed, Kind: "infrastructure", Feature: -1, Detail: err.Error(),
			})
			continue
		}
		if len(ds) == 0 {
			continue
		}
		rep.Failures++
		min := Minimize(spec, ds[0].Kind, opt)
		if len(ds) > maxPerCase {
			ds = ds[:maxPerCase]
		}
		for i := range ds {
			rep.ByKind[ds[i].Kind]++
			ds[i].Spec = &min
		}
		rep.Discrepancies = append(rep.Discrepancies, ds...)
	}
	rep.Elapsed = time.Since(start)
	return rep
}

// Clean reports whether the campaign found no discrepancies.
func (r Report) Clean() bool { return r.Failures == 0 }

// WriteText renders a human-readable summary of the campaign.
func (r Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "oracle: %d cases (seeds %d..%d) in %s — ",
		r.Cases, r.BaseSeed, r.BaseSeed+int64(r.Cases)-1, r.Elapsed.Round(time.Millisecond))
	if r.Clean() {
		fmt.Fprintf(w, "all tiers agree, all invariants hold\n")
		return
	}
	fmt.Fprintf(w, "%d failing instance(s), %d discrepancy(ies)\n", r.Failures, len(r.Discrepancies))
	kinds := make([]string, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "  %-24s %d\n", k, r.ByKind[k])
	}
	for i, d := range r.Discrepancies {
		fmt.Fprintf(w, "  [%d] %s\n", i, d.String())
	}
}
