package oracle

// The cluster differential: a coordinator fronting a fleet of in-process
// fepiad workers must be bit-identical to a single-node daemon — same radii
// down to the last float bit, same typed errors, same breaker classes — on
// generated instances, on batches, under injected chaos faults, and while a
// worker is killed mid-batch. The decomposition argument (internal/core
// shard.go) says the scatter-gather is exact; this test holds it to that.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/scenario"
	"fepia/internal/server"
)

// specToAnalysisDoc converts a generated Spec to the daemon's wire document.
// The field blocks map 1:1; only the bound encoding differs (the spec's
// (Has, value) pairs become the document's optional pointers).
func specToAnalysisDoc(s Spec) scenario.AnalysisDoc {
	doc := scenario.AnalysisDoc{Version: scenario.Version, Kind: "fepia"}
	for _, p := range s.Params {
		doc.Params = append(doc.Params, scenario.AnalysisParam{
			Name: p.Name,
			Orig: append([]float64(nil), p.Orig...),
		})
	}
	for _, f := range s.Features {
		af := scenario.AnalysisFeature{
			Name:   f.Name,
			Impact: string(f.Kind),
			Coeffs: deepCopy(f.Coeffs),
			Const:  f.Const,
			Curv:   deepCopy(f.Curv),
			Center: deepCopy(f.Center),
			Scale:  f.Scale,
			Pows:   deepCopy(f.Pows),
			Wgts:   deepCopy(f.Wgts),
			Caps:   deepCopy(f.Caps),
			Eps:    f.Eps,
		}
		if f.HasMin {
			v := f.Min
			af.Min = &v
		}
		if f.HasMax {
			v := f.Max
			af.Max = &v
		}
		doc.Features = append(doc.Features, af)
	}
	return doc
}

// clusterWorkerConfig is the one config both sides of the differential run:
// any divergence (degrade sample count, cache policy) would be a test bug,
// not an engine bug.
func clusterWorkerConfig() server.Config {
	return server.Config{EnableChaos: true}
}

type clusterFixture struct {
	workers []*httptest.Server
	coord   *cluster.Coordinator
	front   *httptest.Server // coordinator
	ref     *httptest.Server // single-node reference
}

func newClusterFixture(t *testing.T, nWorkers int) *clusterFixture {
	t.Helper()
	fx := &clusterFixture{}
	urls := make([]string, nWorkers)
	for i := range urls {
		ws := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(ws.Close)
		fx.workers = append(fx.workers, ws)
		urls[i] = ws.URL
	}
	coord, err := cluster.New(cluster.Config{
		Workers:        urls,
		EnableChaos:    true,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	fx.coord = coord
	fx.front = httptest.NewServer(coord.Handler())
	t.Cleanup(fx.front.Close)
	fx.ref = httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
	t.Cleanup(fx.ref.Close)
	return fx
}

func clusterPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// bitEq compares float64 pointers by bit pattern — the differential's claim
// is bit-identity, not closeness.
func bitEq(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || math.Float64bits(*a) == math.Float64bits(*b)
}

func sameRobustness(t *testing.T, tag string, got, want RobustnessLike) {
	t.Helper()
	if !bitEq(got.Value, want.Value) || got.Unbounded != want.Unbounded ||
		got.Critical != want.Critical || got.Weighting != want.Weighting ||
		got.Degraded != want.Degraded {
		t.Fatalf("%s: robustness header differs:\n  got  %+v\n  want %+v", tag, got, want)
	}
	if len(got.PerFeature) != len(want.PerFeature) {
		t.Fatalf("%s: perFeature length %d vs %d", tag, len(got.PerFeature), len(want.PerFeature))
	}
	for i := range got.PerFeature {
		g, w := got.PerFeature[i], want.PerFeature[i]
		if !bitEq(g.Value, w.Value) {
			t.Fatalf("%s: perFeature[%d] value differs:\n  got  %+v\n  want %+v", tag, i, g, w)
		}
		g.Value, w.Value = nil, nil // compared above; the rest is comparable
		if g != w {
			t.Fatalf("%s: perFeature[%d] differs:\n  got  %+v\n  want %+v", tag, i, g, w)
		}
	}
}

// RobustnessLike lets the eval and batch bodies share one comparator.
type RobustnessLike = server.RobustnessJSON

// compareEval posts one EvalRequest to the coordinator and the single node
// and requires identical status and identical bodies up to requestId /
// elapsedMs / cluster provenance.
func compareEval(t *testing.T, fx *clusterFixture, tag string, req server.EvalRequest) {
	t.Helper()
	cs, cb := clusterPost(t, fx.front.URL+"/v1/robustness", req)
	rs, rb := clusterPost(t, fx.ref.URL+"/v1/robustness", req)
	if cs != rs {
		t.Fatalf("%s: status %d (cluster) vs %d (single)\ncluster: %s\nsingle: %s", tag, cs, rs, cb, rb)
	}
	if cs != http.StatusOK {
		var ce, re server.ErrorResponse
		if err := json.Unmarshal(cb, &ce); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if err := json.Unmarshal(rb, &re); err != nil {
			t.Fatalf("%s: %v", tag, err)
		}
		if ce.Error != re.Error || ce.Kind != re.Kind {
			t.Fatalf("%s: error differs:\n  cluster %q kind %q\n  single  %q kind %q", tag, ce.Error, ce.Kind, re.Error, re.Kind)
		}
		return
	}
	var ce cluster.EvalResponse
	var re server.EvalResponse
	if err := json.Unmarshal(cb, &ce); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if err := json.Unmarshal(rb, &re); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if ce.Class != re.Class || ce.Breaker != re.Breaker {
		t.Fatalf("%s: class/breaker %q/%q vs %q/%q", tag, ce.Class, ce.Breaker, re.Class, re.Breaker)
	}
	sameRobustness(t, tag, ce.Robustness, re.Robustness)
}

// TestOracleClusterDifferential is the scatter-gather correctness gate: a
// 3-worker cluster must be indistinguishable (bit-identical bodies, same
// typed errors) from a single node across generated instances, chaos
// faults, batches, and a worker killed mid-batch.
func TestOracleClusterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster differential is not short")
	}

	t.Run("robustness", func(t *testing.T) {
		fx := newClusterFixture(t, 3)
		weightings := []string{"", "sensitivity"}
		for seed := int64(1); seed <= 110; seed++ {
			doc := specToAnalysisDoc(Generate(seed))
			req := server.EvalRequest{Scenario: doc, Weighting: weightings[seed%2]}
			compareEval(t, fx, "seed "+itoa(seed), req)
		}
	})

	t.Run("chaos", func(t *testing.T) {
		fx := newClusterFixture(t, 3)
		for seed := int64(1); seed <= 8; seed++ {
			spec := Generate(seed)
			doc := specToAnalysisDoc(spec)
			// Fault a middle feature so the merge's lowest-index-error rule
			// is exercised across shard boundaries.
			target := len(spec.Features) / 2
			for _, fault := range []string{"nan", "panic"} {
				req := server.EvalRequest{
					Scenario: doc,
					Chaos:    []server.ChaosSpec{{Feature: target, Fault: fault}},
				}
				compareEval(t, fx, "seed "+itoa(seed)+" chaos "+fault, req)
			}
		}
	})

	t.Run("batch", func(t *testing.T) {
		fx := newClusterFixture(t, 3)
		for base := int64(200); base < 230; base += 3 {
			var req server.BatchRequest
			for k := int64(0); k < 3; k++ {
				req.Items = append(req.Items, server.BatchItemRequest{
					Scenario: specToAnalysisDoc(Generate(base + k)),
				})
			}
			// One chaos item per batch keeps the per-item error path hot.
			req.Items[1].Chaos = []server.ChaosSpec{{Feature: 0, Fault: "nan"}}
			compareBatch(t, fx, "base "+itoa(base), req)
		}
	})

	t.Run("killed-worker-mid-batch", func(t *testing.T) {
		// The workers get 400ms of added HTTP latency on the shard endpoint —
		// outside the evaluation, so results are untouched — which guarantees
		// the kill below lands while shards are genuinely in flight.
		const delay = 400 * time.Millisecond
		workers := make([]*httptest.Server, 3)
		urls := make([]string, 3)
		for i := range urls {
			h := server.New(clusterWorkerConfig()).Handler()
			ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/shard" {
					time.Sleep(delay)
				}
				h.ServeHTTP(w, r)
			}))
			t.Cleanup(ws.Close)
			workers[i] = ws
			urls[i] = ws.URL
		}
		coord, err := cluster.New(cluster.Config{
			Workers:        urls,
			EnableChaos:    true,
			HealthInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(coord.Close)
		front := httptest.NewServer(coord.Handler())
		t.Cleanup(front.Close)
		ref := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
		t.Cleanup(ref.Close)

		var req server.BatchRequest
		for k := int64(0); k < 6; k++ {
			req.Items = append(req.Items, server.BatchItemRequest{
				Scenario: specToAnalysisDoc(Generate(300 + k)),
			})
		}

		type out struct {
			status int
			body   []byte
		}
		ch := make(chan out, 1)
		go func() {
			s, b := clusterPost(t, front.URL+"/v1/batch", req)
			ch <- out{s, b}
		}()
		// Kill two of the three workers while their shards sleep in flight;
		// everything must re-route to the survivor and the merged batch must
		// still be bit-identical to the single node.
		time.Sleep(150 * time.Millisecond)
		for _, w := range workers[:2] {
			w.CloseClientConnections()
			w.Close()
		}
		got := <-ch

		rs, rb := clusterPost(t, ref.URL+"/v1/batch", req)
		if got.status != rs {
			t.Fatalf("status %d (cluster) vs %d (single)\ncluster: %s", got.status, rs, got.body)
		}
		sameBatchBodies(t, "killed-worker", got.body, rb, len(req.Items))
	})
}

func compareBatch(t *testing.T, fx *clusterFixture, tag string, req server.BatchRequest) {
	t.Helper()
	cs, cb := clusterPost(t, fx.front.URL+"/v1/batch", req)
	rs, rb := clusterPost(t, fx.ref.URL+"/v1/batch", req)
	if cs != rs {
		t.Fatalf("%s: status %d (cluster) vs %d (single)\ncluster: %s\nsingle: %s", tag, cs, rs, cb, rb)
	}
	sameBatchBodies(t, tag, cb, rb, len(req.Items))
}

func sameBatchBodies(t *testing.T, tag string, clusterBody, singleBody []byte, nItems int) {
	t.Helper()
	var cr cluster.BatchResponse
	var rr server.BatchResponse
	if err := json.Unmarshal(clusterBody, &cr); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if err := json.Unmarshal(singleBody, &rr); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if len(cr.Results) != nItems || len(rr.Results) != nItems {
		t.Fatalf("%s: result lengths %d / %d, want %d", tag, len(cr.Results), len(rr.Results), nItems)
	}
	for k := range cr.Results {
		c, r := cr.Results[k], rr.Results[k]
		if c.Error != r.Error || c.Kind != r.Kind || c.Class != r.Class || c.Breaker != r.Breaker {
			t.Fatalf("%s item %d: meta differs:\n  cluster %+v\n  single  %+v", tag, k, c, r)
		}
		if (c.Robustness == nil) != (r.Robustness == nil) {
			t.Fatalf("%s item %d: robustness presence differs", tag, k)
		}
		if c.Robustness != nil {
			sameRobustness(t, tag+" item "+itoa(int64(k)), *c.Robustness, *r.Robustness)
		}
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
