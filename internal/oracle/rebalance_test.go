package oracle

// The rebalance differentials: live ring changes and worker restarts are
// pure placement events — they move cache warmth around the fleet, never
// results. A cluster that joins a worker and re-homes scenario classes
// mid-batch, or restarts a worker that warm-starts from its persistent
// scenario store, must stay bit-identical to the single-node reference.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/server"
)

// TestOracleRebalanceMidBatchDifferential joins a worker and drains one out
// while a batch's shards are in flight (the shard endpoint carries added
// HTTP latency so the membership changes land mid-scatter), then keeps
// serving through the rebalanced ring. Every body must stay bit-identical
// to the single node.
func TestOracleRebalanceMidBatchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster differential is not short")
	}
	const delay = 300 * time.Millisecond
	slowWorker := func() *httptest.Server {
		h := server.New(clusterWorkerConfig()).Handler()
		ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/shard" {
				time.Sleep(delay)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ws.Close)
		return ws
	}
	w0, w1 := slowWorker(), slowWorker()
	coord, err := cluster.New(cluster.Config{
		Workers:        []string{w0.URL, w1.URL},
		EnableChaos:    true,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)
	ref := httptest.NewServer(server.New(clusterWorkerConfig()).Handler())
	t.Cleanup(ref.Close)

	var req server.BatchRequest
	for k := int64(0); k < 6; k++ {
		req.Items = append(req.Items, server.BatchItemRequest{
			Scenario: specToAnalysisDoc(Generate(500 + k)),
		})
	}

	type out struct {
		status int
		body   []byte
	}
	ch := make(chan out, 1)
	go func() {
		s, b := clusterPost(t, front.URL+"/v1/batch", req)
		ch <- out{s, b}
	}()

	// While the batch's shards sleep in flight: a third worker joins and one
	// original drains out. Both cutover paths run against live traffic.
	time.Sleep(100 * time.Millisecond)
	w2 := slowWorker()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := coord.AddWorker(ctx, w2.URL); err != nil {
		t.Fatalf("join mid-batch: %v", err)
	}
	if gen, err := coord.RemoveWorker(ctx, w0.URL); err != nil {
		t.Fatalf("leave mid-batch (gen %d): %v", gen, err)
	}

	got := <-ch
	rs, rb := clusterPost(t, ref.URL+"/v1/batch", req)
	if got.status != rs {
		t.Fatalf("status %d (cluster) vs %d (single)\ncluster: %s", got.status, rs, got.body)
	}
	sameBatchBodies(t, "rebalance-mid-batch", got.body, rb, len(req.Items))

	// The rebalanced ring (w1 + w2) keeps serving exactly: re-homed classes
	// included, since w0's former keys now land elsewhere cold.
	for seed := int64(500); seed < 512; seed++ {
		fx := &clusterFixture{front: front, ref: ref}
		compareEval(t, fx, "post-rebalance seed "+itoa(seed), server.EvalRequest{
			Scenario: specToAnalysisDoc(Generate(seed)),
		})
	}
}

// TestOracleRestartWarmStartDifferential restarts a worker over its
// persistent scenario store mid-fleet: the replacement warm-starts, rejoins
// the ring, and must serve the same scenarios bit-identically to the
// single-node reference (which kept its process-local caches the whole
// time) — the store round-trip must not perturb a single float bit.
func TestOracleRestartWarmStartDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster differential is not short")
	}
	storeDir := t.TempDir()
	workerCfg := clusterWorkerConfig()
	workerCfg.ScenarioCacheCap = 64

	// Worker A persists its scenarios; worker B is a plain peer.
	cfgA := workerCfg
	cfgA.StoreDir = storeDir
	wa := httptest.NewServer(server.New(cfgA).Handler())
	wb := httptest.NewServer(server.New(workerCfg).Handler())
	t.Cleanup(wb.Close)

	coord, err := cluster.New(cluster.Config{
		Workers:        []string{wa.URL, wb.URL},
		EnableChaos:    true,
		HealthInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	// The reference runs the same scenario-cache config so both sides see
	// the same cache discipline across repeated rounds.
	ref := httptest.NewServer(server.New(workerCfg).Handler())
	t.Cleanup(ref.Close)
	fx := &clusterFixture{front: front, ref: ref}

	// Round 1: establish the differential and populate A's store.
	seeds := []int64{601, 602, 603, 604, 605, 606, 607, 608}
	for _, seed := range seeds {
		compareEval(t, fx, "round1 seed "+itoa(seed), server.EvalRequest{
			Scenario: specToAnalysisDoc(Generate(seed)),
		})
	}

	// "Restart" A: kill the process, bring up a replacement over the same
	// store directory, warm-start it, and swap it into the ring.
	wa.CloseClientConnections()
	wa.Close()
	sa2 := server.New(cfgA)
	loaded, skipped := sa2.WarmStart()
	if loaded == 0 {
		t.Fatalf("replacement warm-started nothing (skipped %d); store round-trip broken", skipped)
	}
	wa2 := httptest.NewServer(sa2.Handler())
	t.Cleanup(wa2.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := coord.AddWorker(ctx, wa2.URL); err != nil {
		t.Fatalf("replacement join: %v", err)
	}
	if _, err := coord.RemoveWorker(ctx, wa.URL); err != nil {
		t.Fatalf("dead worker leave: %v", err)
	}

	// Round 2: the same scenarios through the rebuilt fleet. The replacement
	// serves its homed classes from warm-started analyses.
	for _, seed := range seeds {
		compareEval(t, fx, "round2 seed "+itoa(seed), server.EvalRequest{
			Scenario: specToAnalysisDoc(Generate(seed)),
		})
	}

	// The warm start must actually have been exercised, or this test proves
	// nothing: the replacement's statz shows warm-started cache hits.
	resp, err := http.Get(wa2.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil || st.Store.WarmLoaded == 0 {
		t.Fatalf("replacement store statz: %+v", st.Store)
	}
	if st.Store.WarmHits == 0 {
		t.Fatalf("replacement served no warm-started scenarios: %+v", st.Store)
	}
}
