package oracle

import (
	"math"
	"strconv"
)

// shrinkBudget caps the number of Check evaluations one minimization may
// spend. Each probe re-runs the full tier matrix, so the budget is the
// dominant cost knob of Fuzz on a failing corpus.
const shrinkBudget = 64

// Minimize shrinks a failing instance to a (locally) minimal one that still
// reproduces a discrepancy of the same kind: it greedily drops features,
// perturbation parameters, and parameter elements, then rounds the surviving
// numbers, re-running Check after every candidate reduction and keeping only
// reductions that preserve the failure. The result is what a human debugs
// instead of the original eight-feature instance.
func Minimize(spec Spec, kind string, opt Options) Spec {
	budget := shrinkBudget
	fails := func(s Spec) bool {
		if budget <= 0 {
			return false
		}
		budget--
		ds, err := Check(s, opt)
		if err != nil {
			return false
		}
		for _, d := range ds {
			if d.Kind == kind {
				return true
			}
		}
		return false
	}
	return minimizeWith(spec, fails)
}

// minimizeWith is the shrinking engine behind Minimize, parameterized on
// the failure predicate so the strategy is testable without a real defect.
// The predicate must be pure and must accept the input spec.
func minimizeWith(spec Spec, fails func(Spec) bool) Spec {
	cur := spec
	for improved := true; improved; {
		improved = false

		// Drop whole features (keep at least one).
		for i := 0; len(cur.Features) > 1 && i < len(cur.Features); i++ {
			cand := cur.Clone()
			cand.Features = append(cand.Features[:i:i], cand.Features[i+1:]...)
			if fails(cand) {
				cur, improved = cand, true
				i--
			}
		}
		// Drop whole perturbation parameters (keep at least one).
		for j := 0; len(cur.Params) > 1 && j < len(cur.Params); j++ {
			cand := dropParam(cur, j)
			if fails(cand) {
				cur, improved = cand, true
				j--
			}
		}
		// Drop parameter elements (keep each parameter at least scalar).
		for j := 0; j < len(cur.Params); j++ {
			for e := 0; len(cur.Params[j].Orig) > 1 && e < len(cur.Params[j].Orig); e++ {
				cand := dropElem(cur, j, e)
				if fails(cand) {
					cur, improved = cand, true
					e--
				}
			}
		}
	}
	// Finally simplify the surviving numbers to 4 significant digits — one
	// all-at-once attempt, kept only if the failure survives the rounding.
	if cand := rounded(cur); fails(cand) {
		cur = cand
	}
	return cur
}

// dropBlock removes block j from a per-parameter [][]float64, preserving nil.
func dropBlock(b [][]float64, j int) [][]float64 {
	if b == nil || j >= len(b) {
		return b
	}
	return append(b[:j:j], b[j+1:]...)
}

// dropRowElem removes element e from row j of a per-parameter block.
func dropRowElem(b [][]float64, j, e int) [][]float64 {
	if b == nil || j >= len(b) || e >= len(b[j]) {
		return b
	}
	b[j] = append(b[j][:e:e], b[j][e+1:]...)
	return b
}

// dropParam removes perturbation parameter j from the spec and from every
// feature's per-parameter blocks.
func dropParam(spec Spec, j int) Spec {
	out := spec.Clone()
	out.Params = append(out.Params[:j:j], out.Params[j+1:]...)
	for i := range out.Features {
		f := &out.Features[i]
		f.Coeffs = dropBlock(f.Coeffs, j)
		f.Curv = dropBlock(f.Curv, j)
		f.Center = dropBlock(f.Center, j)
		f.Pows = dropBlock(f.Pows, j)
		f.Wgts = dropBlock(f.Wgts, j)
		f.Caps = dropBlock(f.Caps, j)
	}
	return out
}

// dropElem removes element e of parameter j everywhere.
func dropElem(spec Spec, j, e int) Spec {
	out := spec.Clone()
	p := &out.Params[j]
	p.Orig = append(p.Orig[:e:e], p.Orig[e+1:]...)
	for i := range out.Features {
		f := &out.Features[i]
		f.Coeffs = dropRowElem(f.Coeffs, j, e)
		f.Curv = dropRowElem(f.Curv, j, e)
		f.Center = dropRowElem(f.Center, j, e)
		f.Pows = dropRowElem(f.Pows, j, e)
		f.Wgts = dropRowElem(f.Wgts, j, e)
		f.Caps = dropRowElem(f.Caps, j, e)
	}
	return out
}

// rounded rewrites every number of the spec at 4 significant digits.
func rounded(spec Spec) Spec {
	out := spec.Clone()
	r := func(x float64) float64 {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return x
		}
		v, err := strconv.ParseFloat(strconv.FormatFloat(x, 'g', 4, 64), 64)
		if err != nil {
			return x
		}
		return v
	}
	rBlock := func(b [][]float64) {
		for _, row := range b {
			for e := range row {
				row[e] = r(row[e])
			}
		}
	}
	for j := range out.Params {
		for e := range out.Params[j].Orig {
			out.Params[j].Orig[e] = r(out.Params[j].Orig[e])
		}
	}
	for i := range out.Features {
		f := &out.Features[i]
		f.Min, f.Max = r(f.Min), r(f.Max)
		f.Const, f.Scale, f.Eps = r(f.Const), r(f.Scale), r(f.Eps)
		rBlock(f.Coeffs)
		rBlock(f.Curv)
		rBlock(f.Center)
		rBlock(f.Pows)
		rBlock(f.Wgts)
		rBlock(f.Caps)
	}
	return out
}
