package oracle

import "testing"

// FuzzOracle drives the differential oracle from the fuzzing engine: any
// int64 becomes a generated instance, and every instance must pass the
// full tier matrix and invariant set. CI runs this with a short -fuzztime
// budget; `go test -run=FuzzOracle` executes just the seed corpus.
//
// A crasher here IS a minimized bug report: the seed reproduces the
// instance via Generate, and `robustbench -oracle -oracle-seed <seed>
// -oracle-cases 1` re-derives the full JSON discrepancy record.
func FuzzOracle(f *testing.F) {
	// 382 and 431 reproduced the level-set far-edge defect fixed in
	// internal/optimize (composition-bound violations); keep them in the
	// corpus forever.
	for _, seed := range []int64{1, 7, 42, 1234, -99, 382, 431} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		spec := Generate(seed)
		ds, err := Check(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: infrastructure failure: %v", seed, err)
		}
		for _, d := range ds {
			t.Errorf("seed %d: %s", seed, d)
		}
	})
}
