package oracle

// The allocation-search differential: a fixed-seed search must return the
// bit-identical best allocation no matter which backend scores its
// generations — the serial per-candidate engine, the single-node batch
// engine, or a coordinator scattering generations over a 3-worker fleet —
// and the cluster answer must survive a worker being killed mid-generation.
// The search trajectory depends only on the seed and the returned scores,
// and every backend computes the same scores bit-for-bit (unweighted
// engine radii coincide with the closed form), so any divergence here is
// an engine or transport bug, not noise.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fepia/internal/cluster"
	"fepia/internal/etc"
	"fepia/internal/scenario"
	"fepia/internal/sched"
	"fepia/internal/server"
	"fepia/internal/stats"
)

func searchOracleMatrix(t *testing.T, tasks, machines int, seed int64) *etc.Matrix {
	t.Helper()
	m, err := etc.CVB(etc.CVBParams{Tasks: tasks, Machines: machines, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, stats.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// searchVia runs the search in-process against the given evaluator.
func searchVia(t *testing.T, m *etc.Matrix, ev sched.Evaluator, opt sched.SearchOptions) *sched.SearchResult {
	t.Helper()
	res, err := sched.Search(context.Background(), m, ev, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// postSearch runs the search over HTTP against a daemon or coordinator.
func postSearch(t *testing.T, url string, m *etc.Matrix, opt sched.SearchOptions) server.SearchResponse {
	t.Helper()
	var buf bytes.Buffer
	if err := scenario.SaveMakespan(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	req := server.SearchRequest{
		Instance:    buf.Bytes(),
		Algo:        opt.Algo,
		Objective:   opt.Objective,
		Tau:         opt.Tau,
		RhoMin:      opt.RhoMin,
		Seed:        opt.Seed,
		Steps:       opt.Steps,
		Population:  opt.Population,
		Generations: opt.Generations,
	}
	status, body := clusterPost(t, url+"/v1/search", req)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/search = %d: %s", status, body)
	}
	var out server.SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameSearchOutcome(t *testing.T, tag string, want *sched.SearchResult, alloc []int, rho, makespan float64, radiusEvals int64) {
	t.Helper()
	if len(alloc) != len(want.Best) {
		t.Fatalf("%s: alloc length %d vs %d", tag, len(alloc), len(want.Best))
	}
	for i := range alloc {
		if alloc[i] != want.Best[i] {
			t.Fatalf("%s: best allocation diverged at task %d:\n%v\n%v", tag, i, alloc, want.Best)
		}
	}
	if math.Float64bits(rho) != math.Float64bits(want.BestRho) {
		t.Fatalf("%s: best rho bits %x vs %x (%v vs %v)", tag, math.Float64bits(rho), math.Float64bits(want.BestRho), rho, want.BestRho)
	}
	if math.Float64bits(makespan) != math.Float64bits(want.BestMakespan) {
		t.Fatalf("%s: best makespan %v vs %v", tag, makespan, want.BestMakespan)
	}
	if radiusEvals != want.RadiusEvals {
		t.Fatalf("%s: radius evals %d vs %d (backends scored different candidate sets)", tag, radiusEvals, want.RadiusEvals)
	}
}

// TestOracleSearchDifferential proves the fixed-seed search returns the
// bit-identical best allocation serial vs. batch vs. 3-worker cluster —
// including with a worker killed mid-generation.
func TestOracleSearchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("search differential is not short")
	}
	m := searchOracleMatrix(t, 24, 6, 41)
	grid := []sched.SearchOptions{
		{Algo: sched.AlgoGA, Objective: sched.ObjectiveMaxRho, Tau: 1.4, Seed: 1, Population: 16, Generations: 10},
		{Algo: sched.AlgoAnneal, Objective: sched.ObjectiveMaxRho, Tau: 1.4, Seed: 1, Steps: 400},
		{Algo: sched.AlgoGA, Objective: sched.ObjectiveMinMakespan, Tau: 1.4, RhoMin: 0.4, Seed: 1, Population: 16, Generations: 10},
	}

	fx := newClusterFixture(t, 3)
	for _, opt := range grid {
		tag := opt.Algo + "/" + opt.Objective
		bound, err := sched.ResolveBound(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		serial := searchVia(t, m, &sched.EngineEvaluator{M: m, Bound: bound, Serial: true}, opt)
		batch := searchVia(t, m, &sched.EngineEvaluator{M: m, Bound: bound, Workers: 4}, opt)
		sameSearchOutcome(t, tag+" batch-vs-serial", serial, batch.Best, batch.BestRho, batch.BestMakespan, batch.RadiusEvals)

		clusterRes := postSearch(t, fx.front.URL, m, opt)
		sameSearchOutcome(t, tag+" cluster-vs-serial", serial, clusterRes.Best.Alloc, clusterRes.Best.Rho, clusterRes.Best.Makespan, clusterRes.RadiusEvals)
	}

	t.Run("killed-worker-mid-generation", func(t *testing.T) {
		// 60ms of added HTTP latency on the workers' batch endpoint —
		// outside the evaluation, so scores are untouched — keeps chunks in
		// flight long enough that the kill lands mid-generation.
		const delay = 60 * time.Millisecond
		workers := make([]*httptest.Server, 3)
		urls := make([]string, 3)
		for i := range urls {
			h := server.New(clusterWorkerConfig()).Handler()
			ws := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/batch" {
					time.Sleep(delay)
				}
				h.ServeHTTP(w, r)
			}))
			t.Cleanup(ws.Close)
			workers[i] = ws
			urls[i] = ws.URL
		}
		coord, err := cluster.New(cluster.Config{
			Workers:        urls,
			HealthInterval: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(coord.Close)
		front := httptest.NewServer(coord.Handler())
		t.Cleanup(front.Close)

		opt := sched.SearchOptions{Algo: sched.AlgoGA, Tau: 1.4, Seed: 1, Population: 16, Generations: 10}
		bound, err := sched.ResolveBound(m, opt)
		if err != nil {
			t.Fatal(err)
		}
		serial := searchVia(t, m, &sched.EngineEvaluator{M: m, Bound: bound, Serial: true}, opt)

		ch := make(chan server.SearchResponse, 1)
		go func() {
			ch <- postSearch(t, front.URL, m, opt)
		}()
		// Kill one worker while generation chunks sleep in flight; its
		// chunks must re-route to the survivors with scores unchanged.
		time.Sleep(150 * time.Millisecond)
		workers[0].CloseClientConnections()
		workers[0].Close()
		got := <-ch

		sameSearchOutcome(t, "killed-worker", serial, got.Best.Alloc, got.Best.Rho, got.Best.Makespan, got.RadiusEvals)
	})
}
