package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fepia/internal/etc"
	"fepia/internal/scenario"
	"fepia/internal/sched"
)

// POST /v1/search — robustness-aware allocation search as a service: the
// rDLB-style closed loop where the robustness engine drives the allocation
// instead of merely scoring it. One request runs a whole
// annealing/GA search whose generations are scored through the batch
// engine (10⁴–10⁵ radius evaluations per request), so admission costs it
// by the generation in flight, the deadline is enforced between evaluator
// calls, and a deadline mid-search returns the best-so-far as a partial
// result instead of wasting the completed generations. Progress (and the
// partial best, for resuming) is visible in /statz while the search runs.

// SearchRequest is the body of POST /v1/search.
type SearchRequest struct {
	// Instance is the ETC instance as a scenario makespan document
	// ({"version":1,"kind":"makespan","etc":[[...]]}) — the exact format
	// `rank -save` writes. A document-level alloc, if present, is ignored:
	// the search produces the allocation.
	Instance json.RawMessage `json:"instance"`
	// Algo is sched.AlgoAnneal or sched.AlgoGA (default "ga").
	Algo string `json:"algo,omitempty"`
	// Objective is "max-rho" (default) or "min-makespan".
	Objective string `json:"objective,omitempty"`
	// Tau sets the makespan requirement bound = Tau·M(min-min); Bound > 0
	// overrides it with an explicit requirement.
	Tau   float64 `json:"tau,omitempty"`
	Bound float64 `json:"bound,omitempty"`
	// RhoMin is the robustness constraint for objective "min-makespan".
	RhoMin float64 `json:"rhoMin,omitempty"`
	// Seed fixes the search trajectory; equal seeds return bit-identical
	// results on any backend.
	Seed int64 `json:"seed"`

	// Annealing knobs (see sched.SearchOptions).
	Steps         int `json:"steps,omitempty"`
	ProposalBlock int `json:"proposalBlock,omitempty"`
	// GA knobs.
	Population   int     `json:"population,omitempty"`
	Generations  int     `json:"generations,omitempty"`
	MutationRate float64 `json:"mutationRate,omitempty"`

	// Resume seeds the search with a previous (possibly partial) best
	// allocation, e.g. the bestAlloc of a truncated search's /statz row.
	Resume []int `json:"resume,omitempty"`
	// ResumeID resumes a checkpointed search by its id: the stored request
	// supplies the instance and options (every other field of this request
	// except Timeout is ignored) and the search continues from its last
	// completed generation, bit-identical to an uninterrupted run. Requires
	// a server started with a state dir; unknown or corrupt checkpoints are
	// 404 "resume-not-found", a checkpoint that no longer matches its
	// stored options is 409 "resume-mismatch".
	ResumeID string `json:"resumeId,omitempty"`
	// SearchID names the search in /statz (default: the request ID).
	SearchID string `json:"searchId,omitempty"`
	// Timeout bounds the whole search (e.g. "30s"); server limits apply.
	Timeout string `json:"timeout,omitempty"`
}

// SearchBest describes one allocation and its scores under the search bound.
type SearchBest struct {
	Alloc []int `json:"alloc"`
	// Rho is the robustness radius; negative (signed closed form) when the
	// allocation violates the bound.
	Rho      float64 `json:"rho"`
	Makespan float64 `json:"makespan"`
	Feasible bool    `json:"feasible"`
}

// SearchResponse is the body of a successful (or partial) search.
type SearchResponse struct {
	SearchID  string     `json:"searchId"`
	Algo      string     `json:"algo"`
	Objective string     `json:"objective"`
	Bound     float64    `json:"bound"`
	Best      SearchBest `json:"best"`
	// Baseline is the min-min allocation scored under the same bound — the
	// paper's point in one response: how much robustness the search bought
	// over the makespan-greedy mapping.
	Baseline SearchBest `json:"baseline"`
	// Generations completed; Candidates scored; EngineCandidates of those
	// through the engine; RadiusEvals per-feature radius evaluations.
	Generations      int   `json:"generations"`
	Candidates       int   `json:"candidates"`
	EngineCandidates int   `json:"engineCandidates"`
	RadiusEvals      int64 `json:"radiusEvals"`
	// Partial marks a deadline-truncated search: Best is the best of the
	// completed generations (resume via Resume to continue).
	Partial bool `json:"partial,omitempty"`
	// Resumed marks a run continued from a checkpoint; ResumedFrom is the
	// generation (GA) or block (annealing) count it restarted at.
	Resumed     bool    `json:"resumed,omitempty"`
	ResumedFrom int     `json:"resumedFrom,omitempty"`
	RequestID   string  `json:"requestId,omitempty"`
	ElapsedMs   float64 `json:"elapsedMs"`
}

// SearchStatz is one allocation search's row in /statz.
type SearchStatz struct {
	ID           string  `json:"id"`
	Algo         string  `json:"algo"`
	Objective    string  `json:"objective"`
	State        string  `json:"state"` // running | done | partial | failed | resumable
	Generation   int     `json:"generation"`
	Generations  int     `json:"generations"`
	BestRho      float64 `json:"bestRho"`
	BestMakespan float64 `json:"bestMakespan"`
	// BestAlloc is the best allocation so far — what a client passes as
	// resume after a truncation.
	BestAlloc   []int   `json:"bestAlloc,omitempty"`
	Candidates  int     `json:"candidates"`
	RadiusEvals int64   `json:"radiusEvals"`
	ElapsedMs   float64 `json:"elapsedMs"`
}

// SearchTracker is a bounded registry of search progress rows, shared by
// the worker server and the cluster coordinator (both expose it in /statz).
// At capacity the oldest row is evicted; an in-flight search's row is
// updated in place on every progress callback.
type SearchTracker struct {
	mu    sync.Mutex
	cap   int
	order []string
	rows  map[string]*SearchStatz
}

// NewSearchTracker returns a tracker bounded to capacity rows (minimum 1).
func NewSearchTracker(capacity int) *SearchTracker {
	if capacity < 1 {
		capacity = 1
	}
	return &SearchTracker{cap: capacity, rows: make(map[string]*SearchStatz)}
}

// Update upserts a row by ID.
func (t *SearchTracker) Update(row SearchStatz) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[row.ID]; !ok {
		if len(t.order) >= t.cap {
			delete(t.rows, t.order[0])
			t.order = t.order[1:]
		}
		t.order = append(t.order, row.ID)
	}
	t.rows[row.ID] = &row
}

// Snapshot returns the rows, oldest first.
func (t *SearchTracker) Snapshot() []SearchStatz {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SearchStatz, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, *t.rows[id])
	}
	return out
}

// ParseSearchRequest validates the request body and resolves it into the
// instance matrix and search options (bound already resolved into
// opt.Bound). Errors are client errors (HTTP 400).
func ParseSearchRequest(req SearchRequest) (*etc.Matrix, sched.SearchOptions, error) {
	var opt sched.SearchOptions
	if len(req.Instance) == 0 {
		return nil, opt, errors.New("missing instance (a scenario makespan document)")
	}
	m, _, err := scenario.LoadMakespan(bytes.NewReader(req.Instance))
	if err != nil {
		return nil, opt, fmt.Errorf("instance: %w", err)
	}
	opt = sched.SearchOptions{
		Algo:          req.Algo,
		Objective:     req.Objective,
		Tau:           req.Tau,
		Bound:         req.Bound,
		RhoMin:        req.RhoMin,
		Seed:          req.Seed,
		Steps:         req.Steps,
		ProposalBlock: req.ProposalBlock,
		Population:    req.Population,
		Generations:   req.Generations,
		MutationRate:  req.MutationRate,
		Resume:        req.Resume,
	}
	bound, err := sched.ResolveBound(m, opt)
	if err != nil {
		return nil, opt, err
	}
	opt.Bound = bound
	return m, opt, nil
}

// ResolveSearchRequest resolves a search request into the instance matrix,
// the search options, and the request to persist in future checkpoints.
// For a fresh request it delegates to ParseSearchRequest and returns id ""
// (the caller picks SearchID or the request id). For a resume request
// (ResumeID set) it loads the checkpoint, re-parses the *stored* request —
// only the new request's Timeout, when set, overrides — and arms
// opt.Checkpoint, so the continued trajectory is bit-identical to an
// uninterrupted run. Returns ErrNoCheckpoint when the id has no loadable
// checkpoint (including cs == nil: no state dir configured).
func ResolveSearchRequest(req SearchRequest, cs *CheckpointStore) (*etc.Matrix, sched.SearchOptions, string, SearchRequest, error) {
	if req.ResumeID == "" {
		persist := req
		persist.ResumeID = ""
		m, opt, err := ParseSearchRequest(req)
		return m, opt, "", persist, err
	}
	if cs == nil {
		return nil, sched.SearchOptions{}, "", req, fmt.Errorf("%w: %q (no state dir configured)", ErrNoCheckpoint, req.ResumeID)
	}
	p, err := cs.Load(req.ResumeID)
	if err != nil {
		return nil, sched.SearchOptions{}, "", req, err
	}
	stored := p.Request
	stored.ResumeID = ""
	if req.Timeout != "" {
		stored.Timeout = req.Timeout
	}
	m, opt, err := ParseSearchRequest(stored)
	if err != nil {
		// The stored request was valid when the checkpoint was written; if
		// it no longer parses, the checkpoint does not match this server.
		return nil, opt, "", stored, fmt.Errorf("%w: stored request: %v", sched.ErrCheckpointMismatch, err)
	}
	state := p.State
	opt.Checkpoint = &state
	return m, opt, req.ResumeID, stored, nil
}

// SearchCost is the admission cost of a search: the generation in flight
// at any moment (the batch the engine actually holds), costed like a batch
// of per-machine analytic features. The whole search is far more work, but
// admission protects instantaneous memory/CPU, and a search between
// generations holds nothing. Exported for the cluster coordinator, which
// admits searches with the same pricing.
func SearchCost(m *etc.Matrix, opt sched.SearchOptions) int64 {
	gen := opt.Population
	if opt.Algo == sched.AlgoAnneal {
		gen = opt.ProposalBlock
		if gen <= 0 {
			gen = 16
		}
	} else if gen <= 0 {
		gen = 40
	}
	cost := int64(gen) * int64(m.Machines) * costAnalyticFeature
	if cost < 1 {
		cost = 1
	}
	return cost
}

// ExecuteSearch runs the search with progress mirrored into the tracker and
// assembles the response. On a context error after ≥ 1 completed
// generation it returns the partial response and no error; earlier or
// non-context failures return the error (the partial response too when one
// exists, for the tracker's benefit).
//
// When cs is non-nil, every completed generation's checkpoint is persisted
// under id together with persist (the request future resumes re-parse), and
// a search that finishes cleanly deletes its checkpoint; a partial or
// failed one keeps it, resumable via ResumeID. Checkpoint saves are
// best-effort — a failed save is counted in the store's stats and costs
// resumability from that generation, never the search.
func ExecuteSearch(ctx context.Context, m *etc.Matrix, opt sched.SearchOptions, ev sched.Evaluator, tracker *SearchTracker, id, rid string, cs *CheckpointStore, persist SearchRequest) (*SearchResponse, error) {
	start := time.Now()
	resumedFrom, resumed := 0, false
	if opt.Checkpoint != nil {
		resumed, resumedFrom = true, opt.Checkpoint.Generation
	}
	if cs != nil && id != "" {
		prev := opt.OnCheckpoint
		opt.OnCheckpoint = func(cp *sched.Checkpoint) {
			_ = cs.Save(id, CheckpointPayload{Request: persist, State: *cp})
			if prev != nil {
				prev(cp)
			}
		}
	}
	algo := opt.Algo
	if algo == "" {
		algo = sched.AlgoGA
	}
	obj := opt.Objective
	if obj == "" {
		obj = sched.ObjectiveMaxRho
	}
	row := func(state string, p sched.Progress) SearchStatz {
		return SearchStatz{
			ID: id, Algo: algo, Objective: obj, State: state,
			Generation: p.Generation, Generations: p.Generations,
			BestRho: p.BestRho, BestMakespan: p.BestMakespan,
			BestAlloc: p.Best, Candidates: p.Candidates, RadiusEvals: p.RadiusEvals,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		}
	}
	var progress func(sched.Progress)
	if tracker != nil {
		tracker.Update(SearchStatz{ID: id, Algo: algo, Objective: obj, State: "running"})
		progress = func(p sched.Progress) { tracker.Update(row("running", p)) }
	}
	res, err := sched.Search(ctx, m, ev, opt, progress)
	finalProgress := func(r *sched.SearchResult) sched.Progress {
		return sched.Progress{
			Generation: r.Generations, Generations: r.Generations,
			Best: r.Best, BestRho: r.BestRho, BestMakespan: r.BestMakespan,
			Candidates: r.Candidates, RadiusEvals: r.RadiusEvals,
		}
	}
	if err != nil && (res == nil || !res.Partial || res.Generations == 0 ||
		!(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))) {
		if tracker != nil {
			state := SearchStatz{ID: id, Algo: algo, Objective: obj, State: "failed",
				ElapsedMs: float64(time.Since(start).Microseconds()) / 1000}
			if res != nil {
				state = row("failed", finalProgress(res))
			}
			tracker.Update(state)
		}
		return nil, err
	}
	state := "done"
	if res.Partial {
		state = "partial"
	} else if cs != nil && id != "" {
		// A finished search needs no resume; a partial one keeps its
		// checkpoint so ResumeID can continue it after a restart too.
		cs.Delete(id)
	}
	if tracker != nil {
		tracker.Update(row(state, finalProgress(res)))
	}
	// Score the min-min baseline under the same bound with the same fast
	// path the search used for feasibility (bit-identical to the engine on
	// feasible allocations).
	out := &SearchResponse{
		SearchID:  id,
		Algo:      algo,
		Objective: obj,
		Bound:     res.Bound,
		Best: SearchBest{
			Alloc: res.Best, Rho: res.BestRho,
			Makespan: res.BestMakespan, Feasible: res.BestFeasible,
		},
		Generations:      res.Generations,
		Candidates:       res.Candidates,
		EngineCandidates: res.EngineCandidates,
		RadiusEvals:      res.RadiusEvals,
		Partial:          res.Partial,
		Resumed:          resumed,
		ResumedFrom:      resumedFrom,
		RequestID:        rid,
		ElapsedMs:        float64(time.Since(start).Microseconds()) / 1000,
	}
	if mm, mmErr := sched.MinMin(m); mmErr == nil {
		rho := sched.ClosedFormScore(m, mm, res.Bound)
		ms := 0.0
		loads := make([]float64, m.Machines)
		for t, j := range mm {
			loads[j] += m.At(t, j)
		}
		for _, l := range loads {
			if l > ms {
				ms = l
			}
		}
		out.Baseline = SearchBest{Alloc: mm, Rho: rho, Makespan: ms, Feasible: rho >= 0}
	}
	return out, nil
}

// SearchBadRequest reports whether the error is a client error (bad search
// options rather than an evaluation failure).
func SearchBadRequest(err error) bool {
	return errors.Is(err, sched.ErrBadTau) ||
		errors.Is(err, sched.ErrBadMutationRate) ||
		errors.Is(err, sched.ErrBadSearch)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req SearchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, opt, id, persist, err := ResolveSearchRequest(req, s.ckpts)
	if err != nil {
		if status, kind, ok := ResumeFailure(err); ok {
			writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
			return
		}
		s.badRequest(w, r, err)
		return
	}
	timeout, err := s.requestTimeout(persist.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	ctx, finish, ok := s.admit(w, r, SearchCost(m, opt), timeout)
	if !ok {
		return
	}
	defer finish()

	if id == "" {
		id = req.SearchID
	}
	if id == "" {
		id = rid
	}
	ev := &sched.EngineEvaluator{M: m, Bound: opt.Bound, Workers: s.cfg.MaxConcurrent}
	res, err := ExecuteSearch(ctx, m, opt, ev, s.searches, id, rid, s.ckpts, persist)
	if err != nil {
		if status, kind, ok := ResumeFailure(err); ok {
			writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
			return
		}
		if SearchBadRequest(err) {
			s.badRequest(w, r, err)
			return
		}
		s.writeEvalError(w, r, err)
		return
	}
	s.stats.completedOK.Add(1)
	writeJSON(w, http.StatusOK, res)
}

// ResumeFailure maps checkpoint-resume errors to their HTTP status and
// error kind: a missing/corrupt checkpoint is 404 "resume-not-found", a
// checkpoint that does not match its search is 409 "resume-mismatch".
// Shared with the cluster coordinator's /v1/search handler.
func ResumeFailure(err error) (status int, kind string, ok bool) {
	switch {
	case errors.Is(err, ErrNoCheckpoint):
		return http.StatusNotFound, "resume-not-found", true
	case errors.Is(err, sched.ErrCheckpointMismatch):
		return http.StatusConflict, "resume-mismatch", true
	}
	return 0, "", false
}
