package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"fepia/internal/etc"
	"fepia/internal/scenario"
	"fepia/internal/stats"
)

// searchInstance builds a CVB ETC instance serialized as the makespan
// document /v1/search expects (the format `rank -save` writes).
func searchInstance(t *testing.T, tasks, machines int, seed int64) json.RawMessage {
	t.Helper()
	m, err := etc.CVB(etc.CVBParams{Tasks: tasks, Machines: machines, MeanTask: 10, TaskCV: 0.4, MachineCV: 0.4}, stats.NewSource(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scenario.SaveMakespan(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSearchEndpoint is the end-to-end acceptance check for the search
// service: one POST /v1/search drives ≥10⁴ radius evaluations through the
// batch engine, repeats bit-identically, and leaves a "done" row in /statz.
func TestSearchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SearchRequest{
		Instance: searchInstance(t, 32, 8, 37),
		Algo:     "ga",
		Tau:      1.5,
		Seed:     1,
		SearchID: "e2e",
	}
	resp, body := postJSON(t, ts.URL+"/v1/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/search = %d: %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Partial {
		t.Fatal("untimed search reported partial")
	}
	if out.RadiusEvals < 10000 {
		t.Fatalf("RadiusEvals = %d, want >= 10000 (one request must drive 10^4 evaluations through the engine)", out.RadiusEvals)
	}
	if !out.Best.Feasible || out.Best.Rho <= 0 {
		t.Fatalf("best = %+v, want feasible with positive rho", out.Best)
	}
	if len(out.Baseline.Alloc) != 32 {
		t.Fatalf("baseline alloc has %d tasks, want 32", len(out.Baseline.Alloc))
	}
	if out.Best.Rho < out.Baseline.Rho {
		t.Fatalf("search rho %v < min-min baseline rho %v", out.Best.Rho, out.Baseline.Rho)
	}

	// Equal seeds are bit-identical across runs.
	resp2, body2 := postJSON(t, ts.URL+"/v1/search", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST /v1/search = %d: %s", resp2.StatusCode, body2)
	}
	var out2 SearchResponse
	if err := json.Unmarshal(body2, &out2); err != nil {
		t.Fatal(err)
	}
	if !slicesEqual(out.Best.Alloc, out2.Best.Alloc) {
		t.Fatalf("best allocation differs across identical requests:\n%v\n%v", out.Best.Alloc, out2.Best.Alloc)
	}
	if math.Float64bits(out.Best.Rho) != math.Float64bits(out2.Best.Rho) {
		t.Fatalf("best rho differs bitwise: %x vs %x", math.Float64bits(out.Best.Rho), math.Float64bits(out2.Best.Rho))
	}
	if out.RadiusEvals != out2.RadiusEvals {
		t.Fatalf("RadiusEvals differs: %d vs %d", out.RadiusEvals, out2.RadiusEvals)
	}

	st := getStatz(t, ts)
	var row *SearchStatz
	for i := range st.Searches {
		if st.Searches[i].ID == "e2e" {
			row = &st.Searches[i]
		}
	}
	if row == nil {
		t.Fatalf("no e2e row in /statz searches: %+v", st.Searches)
	}
	if row.State != "done" || row.RadiusEvals != out2.RadiusEvals {
		t.Fatalf("statz row = %+v, want done with %d radius evals", row, out2.RadiusEvals)
	}
}

// TestSearchBadRequests maps each client mistake to 400.
func TestSearchBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := searchInstance(t, 8, 3, 5)
	cases := []struct {
		name string
		req  SearchRequest
	}{
		{"missing instance", SearchRequest{Tau: 1.3}},
		{"bad tau", SearchRequest{Instance: inst, Tau: 0.9}},
		{"bad algo", SearchRequest{Instance: inst, Tau: 1.3, Algo: "tabu"}},
		{"bad objective", SearchRequest{Instance: inst, Tau: 1.3, Objective: "min-flow"}},
		{"bad mutation", SearchRequest{Instance: inst, Tau: 1.3, MutationRate: 1.5}},
		{"bad resume", SearchRequest{Instance: inst, Tau: 1.3, Resume: []int{0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/search", tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, data)
			}
		})
	}
}

// TestSearchPartialOnDeadline: a deadline mid-search returns 200 with the
// best of the completed generations and Partial set, and the /statz row
// lands in state "partial" carrying the resume allocation.
func TestSearchPartialOnDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SearchRequest{
		Instance:    searchInstance(t, 48, 10, 7),
		Tau:         1.5,
		Seed:        3,
		Generations: 100000, // far more than the deadline allows
		Population:  40,
		SearchID:    "truncated",
		Timeout:     "250ms",
	}
	resp, body := postJSON(t, ts.URL+"/v1/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/search = %d, want 200 partial: %s", resp.StatusCode, body)
	}
	var out SearchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Partial {
		t.Fatalf("response not partial: %+v", out)
	}
	if out.Generations <= 0 || out.Generations >= 100000 {
		t.Fatalf("partial generations = %d, want in (0, 100000)", out.Generations)
	}
	if len(out.Best.Alloc) != 48 {
		t.Fatalf("partial best alloc has %d tasks, want 48", len(out.Best.Alloc))
	}
	st := getStatz(t, ts)
	found := false
	for _, row := range st.Searches {
		if row.ID == "truncated" {
			found = true
			if row.State != "partial" {
				t.Fatalf("statz state = %q, want partial", row.State)
			}
			if len(row.BestAlloc) != 48 {
				t.Fatalf("statz row carries no resume allocation: %+v", row)
			}
		}
	}
	if !found {
		t.Fatalf("no truncated row in /statz: %+v", st.Searches)
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
