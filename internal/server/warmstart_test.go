package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"fepia/internal/scenario"
)

// postEval posts one evaluation and returns the decoded success body.
func postEval(t *testing.T, url string, doc any) EvalResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/robustness", map[string]any{"scenario": doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var er EvalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	return er
}

// sameRobustness compares the deterministic part of two evaluation
// responses byte-for-byte (request IDs and timings excluded by shape).
func sameRobustness(t *testing.T, a, b EvalResponse) {
	t.Helper()
	ja, err := json.Marshal(a.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("robustness diverged:\n  %s\n  %s", ja, jb)
	}
}

// TestWarmStartServesFromStore is the restart round-trip: traffic persists
// the scenario, a fresh server over the same directory warm-starts it, and
// the first post-restart request is a warm cache hit with a bit-identical
// result.
func TestWarmStartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: dir}

	_, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	st1 := getStatz(t, ts1)
	if st1.Store == nil || st1.Store.Puts != 1 {
		t.Fatalf("first server did not persist the scenario: %+v", st1.Store)
	}
	ts1.Close()

	// "Restart": a new server over the same store directory.
	s2, ts2 := newTestServer(t, cfg)
	loaded, skipped := s2.WarmStart()
	if loaded != 1 || skipped != 0 {
		t.Fatalf("WarmStart = (%d, %d), want (1, 0)", loaded, skipped)
	}
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)

	st2 := getStatz(t, ts2)
	if st2.Store == nil {
		t.Fatal("store statz missing")
	}
	if st2.Store.WarmLoaded != 1 || st2.Store.WarmHits != 1 {
		t.Fatalf("warm-start statz: %+v", st2.Store)
	}
	if st2.Store.HitRate <= 0 || st2.Store.HitRate > 1 {
		t.Fatalf("store hit rate = %v", st2.Store.HitRate)
	}
}

// TestWarmStartCapBoundsLoad verifies WarmStart never loads past the
// scenario cache capacity.
func TestWarmStartCapBoundsLoad(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{ScenarioCacheCap: 8, StoreDir: dir})
	postEval(t, ts1.URL, analyticDoc())
	postEval(t, ts1.URL, numericDoc())
	ts1.Close()

	s2, _ := newTestServer(t, Config{ScenarioCacheCap: 1, StoreDir: dir})
	loaded, skipped := s2.WarmStart()
	if loaded != 1 || skipped != 0 {
		t.Fatalf("WarmStart over cap 1 = (%d, %d), want (1, 0)", loaded, skipped)
	}
}

// TestWarmStartSkipsCorruptFileAndRebuilds: a corrupt store file costs the
// warm start only; the daemon still serves the scenario and re-persists it.
func TestWarmStartSkipsCorruptFileAndRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: dir}

	_, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	ts1.Close()

	// Truncate the stored file mid-envelope, as a crashed disk write would.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("store files: %v (err %v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, cfg)
	loaded, skipped := s2.WarmStart()
	if loaded != 0 || skipped != 1 {
		t.Fatalf("WarmStart over corrupt store = (%d, %d), want (0, 1)", loaded, skipped)
	}
	// The request still serves (cold) and is bit-identical; the miss
	// re-persists a clean file.
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)
	st := getStatz(t, ts2)
	if st.Store == nil || st.Store.Puts != 1 || st.Store.WarmSkipped != 1 {
		t.Fatalf("store statz after heal: %+v", st.Store)
	}
	names, err = filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("store not healed: %v (err %v)", names, err)
	}
	if _, err := decodeEnvelopeFile(names[0]); err != nil {
		t.Fatalf("healed file still corrupt: %v", err)
	}
}

// decodeEnvelopeFile sanity-checks a healed store file by reading it back
// through the store (name = fingerprint).
func decodeEnvelopeFile(path string) (any, error) {
	dir := filepath.Dir(path)
	fp := filepath.Base(path)
	fp = fp[:len(fp)-len(".json")]
	st, err := scenario.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return st.Get(fp)
}
