package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"fepia/internal/scenario"
)

// postEval posts one evaluation and returns the decoded success body.
func postEval(t *testing.T, url string, doc any) EvalResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/robustness", map[string]any{"scenario": doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var er EvalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	return er
}

// sameRobustness compares the deterministic part of two evaluation
// responses byte-for-byte (request IDs and timings excluded by shape).
func sameRobustness(t *testing.T, a, b EvalResponse) {
	t.Helper()
	ja, err := json.Marshal(a.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Robustness)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("robustness diverged:\n  %s\n  %s", ja, jb)
	}
}

// TestWarmStartServesFromStore is the restart round-trip: traffic persists
// the scenario, a fresh server over the same directory warm-starts it, and
// the first post-restart request is a warm cache hit with a bit-identical
// result.
func TestWarmStartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: dir}

	_, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	st1 := getStatz(t, ts1)
	if st1.Store == nil || st1.Store.Puts != 1 {
		t.Fatalf("first server did not persist the scenario: %+v", st1.Store)
	}
	ts1.Close()

	// "Restart": a new server over the same store directory.
	s2, ts2 := newTestServer(t, cfg)
	loaded, skipped := s2.WarmStart()
	if loaded != 1 || skipped != 0 {
		t.Fatalf("WarmStart = (%d, %d), want (1, 0)", loaded, skipped)
	}
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)

	st2 := getStatz(t, ts2)
	if st2.Store == nil {
		t.Fatal("store statz missing")
	}
	if st2.Store.WarmLoaded != 1 || st2.Store.WarmHits != 1 {
		t.Fatalf("warm-start statz: %+v", st2.Store)
	}
	if st2.Store.HitRate <= 0 || st2.Store.HitRate > 1 {
		t.Fatalf("store hit rate = %v", st2.Store.HitRate)
	}
}

// TestWarmStartCapBoundsLoad verifies WarmStart never loads past the
// scenario cache capacity.
func TestWarmStartCapBoundsLoad(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Config{ScenarioCacheCap: 8, StoreDir: dir})
	postEval(t, ts1.URL, analyticDoc())
	postEval(t, ts1.URL, numericDoc())
	ts1.Close()

	s2, _ := newTestServer(t, Config{ScenarioCacheCap: 1, StoreDir: dir})
	loaded, skipped := s2.WarmStart()
	if loaded != 1 || skipped != 0 {
		t.Fatalf("WarmStart over cap 1 = (%d, %d), want (1, 0)", loaded, skipped)
	}
}

// TestWarmStartSkipsCorruptFileAndRebuilds: a corrupt store file costs the
// warm start only; the daemon still serves the scenario and re-persists it.
func TestWarmStartSkipsCorruptFileAndRebuilds(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: dir}

	_, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	ts1.Close()

	// Truncate the stored file mid-envelope, as a crashed disk write would.
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("store files: %v (err %v)", names, err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[0], data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, cfg)
	loaded, skipped := s2.WarmStart()
	if loaded != 0 || skipped != 1 {
		t.Fatalf("WarmStart over corrupt store = (%d, %d), want (0, 1)", loaded, skipped)
	}
	// The request still serves (cold) and is bit-identical; the miss
	// re-persists a clean file.
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)
	st := getStatz(t, ts2)
	if st.Store == nil || st.Store.Puts != 1 || st.Store.WarmSkipped != 1 {
		t.Fatalf("store statz after heal: %+v", st.Store)
	}
	names, err = filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(names) != 1 {
		t.Fatalf("store not healed: %v (err %v)", names, err)
	}
	if _, err := decodeEnvelopeFile(names[0]); err != nil {
		t.Fatalf("healed file still corrupt: %v", err)
	}
}

// decodeEnvelopeFile sanity-checks a healed store file by reading it back
// through the store (name = fingerprint).
func decodeEnvelopeFile(path string) (any, error) {
	dir := filepath.Dir(path)
	fp := filepath.Base(path)
	fp = fp[:len(fp)-len(".json")]
	st, err := scenario.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return st.Get(fp)
}

// TestWarmRegistryCarriesAcrossStoreReload extends the generation carry to
// a full scenario-store reload: drain persists every fingerprint's warm
// registry into <StateDir>/warm, and the next process's WarmStart restores
// them before rebuilding the store's documents — so the rebuilt analysis's
// *first* search already replays the previous process's recorded brackets.
// The assertion is differential against a control restart with no persisted
// warm state: same bit-identical result, strictly more reuse.
func TestWarmRegistryCarriesAcrossStoreReload(t *testing.T) {
	storeDir, stateDir := t.TempDir(), t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: storeDir, StateDir: stateDir}

	// Generation 1: build warm state, then drain (which persists it).
	s1, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	postEval(t, ts1.URL, numericDoc())
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	files, err := filepath.Glob(filepath.Join(stateDir, "warm", "*"+warmRegSuffix))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted warm registries: %v (err %v)", files, err)
	}

	// Control restart: same store, but an empty state dir — the rebuilt
	// analysis's first request searches with a fresh registry.
	coldCfg := cfg
	coldCfg.StateDir = t.TempDir()
	sc, tsc := newTestServer(t, coldCfg)
	if loaded, _ := sc.WarmStart(); loaded != 1 {
		t.Fatalf("control warm start loaded %d", loaded)
	}
	control := postEval(t, tsc.URL, numericDoc())
	sameRobustness(t, before, control)
	ec := scacheEntryFor(t, sc, numericDoc())
	coldStats := ec.a.WarmStats()

	// Restored restart: the persisted registry must be found, re-attached,
	// and actually used by the first request.
	s2, ts2 := newTestServer(t, cfg)
	if loaded, _ := s2.WarmStart(); loaded != 1 {
		t.Fatalf("warm start loaded %d", loaded)
	}
	st := s2.statz()
	if st.WarmRegistries == nil || st.WarmRegistries.Loaded != 1 || st.WarmRegistries.CorruptSkipped != 0 {
		t.Fatalf("warm registry statz after restore: %+v", st.WarmRegistries)
	}
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)
	e2 := scacheEntryFor(t, s2, numericDoc())
	warmStats := e2.a.WarmStats()
	if warmStats.Invalidations != 0 {
		t.Fatalf("restored registry invalidated against live objective: %+v", warmStats)
	}
	if warmStats.RayReuses+warmStats.MemoHits <= coldStats.RayReuses+coldStats.MemoHits {
		t.Fatalf("restored registry no warmer than cold restart: reuse %d (restored) vs %d (cold)",
			warmStats.RayReuses+warmStats.MemoHits, coldStats.RayReuses+coldStats.MemoHits)
	}
	ts2.Close()
	tsc.Close()
}

// TestWarmRegistryRestoreSkipsCorrupt: a torn warm-registry file costs the
// warm searches only — quarantined and counted, with serving unaffected.
func TestWarmRegistryRestoreSkipsCorrupt(t *testing.T) {
	storeDir, stateDir := t.TempDir(), t.TempDir()
	cfg := Config{ScenarioCacheCap: 8, StoreDir: storeDir, StateDir: stateDir}

	s1, ts1 := newTestServer(t, cfg)
	before := postEval(t, ts1.URL, numericDoc())
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	files, err := filepath.Glob(filepath.Join(stateDir, "warm", "*"+warmRegSuffix))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted warm registries: %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, cfg)
	s2.WarmStart()
	st := s2.statz()
	if st.WarmRegistries == nil || st.WarmRegistries.Loaded != 0 || st.WarmRegistries.CorruptSkipped != 1 {
		t.Fatalf("warm registry statz after corrupt restore: %+v", st.WarmRegistries)
	}
	if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt warm file not quarantined: %v", err)
	}
	after := postEval(t, ts2.URL, numericDoc())
	sameRobustness(t, before, after)
	ts2.Close()
}

// scacheEntryFor fetches the scenario-cache entry of a request document the
// way lookupScenario keys it.
func scacheEntryFor(t *testing.T, s *Server, doc scenario.AnalysisDoc) *scacheEntry {
	t.Helper()
	doc.Version = scenario.Version
	doc.Kind = "fepia"
	fp, err := doc.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := s.scache.get(fp)
	if !ok {
		t.Fatalf("document %s not in the scenario cache", fp)
	}
	return e
}

// TestWarmRegistryCarriesAcrossEvictions is the fix for warm starts going
// cold when the scenario cache turns over: the warm-start registry is keyed
// by document fingerprint and owned by the server, so a scache eviction and
// rebuild of the same document re-attaches the old registry and the rebuilt
// analysis's searches continue warm instead of restarting cold.
func TestWarmRegistryCarriesAcrossEvictions(t *testing.T) {
	s, ts := newTestServer(t, Config{ScenarioCacheCap: 1})

	docA := numericDoc()
	// Stamp the envelope the way lookupScenario does before fingerprinting.
	stamped := docA
	stamped.Version = scenario.Version
	stamped.Kind = "fepia"
	fpA, err := stamped.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Round 1: evaluate A twice so the cached analysis records warm state
	// and demonstrably reuses it.
	first := postEval(t, ts.URL, docA)
	postEval(t, ts.URL, docA)
	e1, ok := s.scache.get(fpA)
	if !ok {
		t.Fatal("doc A not in the scenario cache after round 1")
	}
	w1 := e1.a.WarmStats()
	if w1.Searches == 0 || w1.RayReuses+w1.MemoHits == 0 {
		t.Fatalf("round 1 recorded no warm state: %+v", w1)
	}

	// Evict A: a different document fills the cap-1 cache.
	docB := numericDoc()
	docB.Params[0].Orig = []float64{3, 4}
	postEval(t, ts.URL, docB)
	if _, ok := s.scache.get(fpA); ok {
		t.Fatal("doc A survived eviction from a cap-1 cache")
	}

	// Round 2: the rebuilt analysis must re-attach the same registry —
	// counters continue from round 1 instead of restarting at zero — and
	// its first search must already reuse round-1 state.
	again := postEval(t, ts.URL, docA)
	sameRobustness(t, first, again)
	e2, ok := s.scache.get(fpA)
	if !ok {
		t.Fatal("doc A not rebuilt into the scenario cache")
	}
	if e2.a == e1.a {
		t.Fatal("fixture broken: doc A was never evicted (same analysis)")
	}
	w2 := e2.a.WarmStats()
	if w2.Searches <= w1.Searches {
		t.Fatalf("warm registry did not carry over: round-2 Searches %d <= round-1 %d (fresh registry)", w2.Searches, w1.Searches)
	}
	if w2.RayReuses+w2.MemoHits <= w1.RayReuses+w1.MemoHits {
		t.Fatalf("rebuilt analysis searched cold: reuse %d -> %d", w1.RayReuses+w1.MemoHits, w2.RayReuses+w2.MemoHits)
	}
}
