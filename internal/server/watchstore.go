package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fepia/internal/core"
	"fepia/internal/durable"
	"fepia/internal/scenario"
	"fepia/internal/vec"
)

// Watch checkpoint store: one file per live watch under
// <state-dir>/watches, rewritten after every accepted update, so a SIGKILL
// between updates loses nothing — the restarted daemon reloads the watch's
// current document, its per-feature radii (bit-exact), and its rendered
// event journal, and a client resuming the subscription replays the exact
// bytes it would have received from the uninterrupted stream. Same
// durability discipline as the search checkpoints (internal/durable):
// atomic writes, checksummed payloads, quarantine-not-fatal reads.

const (
	watchKind    = "fepia-watch"
	watchVersion = 1
	watchSuffix  = ".watch.json"
)

// ErrNoWatch reports a watch id with no loadable checkpoint. Mapped to
// HTTP 404 kind "watch-not-found".
var ErrNoWatch = errors.New("server: no checkpoint for watch id")

// watchEnvelope is the on-disk shape of one watch file.
type watchEnvelope struct {
	Kind     string          `json:"kind"`
	Version  int             `json:"version"`
	ID       string          `json:"id"`
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// radiusWire is a bit-exact serialization of one core.Radius: Value and
// Point coordinates are stored as IEEE-754 bit patterns (Value can be +Inf,
// which JSON numbers cannot carry, and resumed delta evaluations splice
// these radii back verbatim — any rounding would break the bit-identity
// contract).
type radiusWire struct {
	Value    uint64   `json:"value"`
	Point    []uint64 `json:"point,omitempty"`
	Side     int      `json:"side"`
	Feature  int      `json:"feature"`
	Param    int      `json:"param"`
	Analytic bool     `json:"analytic,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
}

func radiusToWire(r core.Radius) radiusWire {
	w := radiusWire{
		Value:    math.Float64bits(r.Value),
		Side:     int(r.Side),
		Feature:  r.Feature,
		Param:    r.Param,
		Analytic: r.Analytic,
		Degraded: r.Degraded,
	}
	if r.Point != nil {
		w.Point = make([]uint64, len(r.Point))
		for i, v := range r.Point {
			w.Point[i] = math.Float64bits(v)
		}
	}
	return w
}

func radiusFromWire(w radiusWire) core.Radius {
	r := core.Radius{
		Value:    math.Float64frombits(w.Value),
		Side:     core.BoundarySide(w.Side),
		Feature:  w.Feature,
		Param:    w.Param,
		Analytic: w.Analytic,
		Degraded: w.Degraded,
	}
	if w.Point != nil {
		r.Point = make(vec.V, len(w.Point))
		for i, b := range w.Point {
			r.Point[i] = math.Float64frombits(b)
		}
	}
	return r
}

// WatchEventRec is one rendered event of a watch's journal: the exact SSE
// payload bytes sent to subscribers, kept so a resumed subscription replays
// them byte-identically.
type WatchEventRec struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"` // "snapshot" or "delta"
	Data json.RawMessage `json:"data"`
}

// WatchPayload is what a watch checkpoint carries: enough to resume both
// halves of the subsystem — the delta chain (current document + prior
// radii, bit-exact) and the subscription stream (the rendered journal).
type WatchPayload struct {
	ID        string               `json:"id"`
	Tenant    string               `json:"tenant,omitempty"`
	Weighting string               `json:"weighting"`
	// AncestorFP is the fingerprint of the watch's original document; the
	// warm-start registry for the whole update chain is keyed by it (every
	// update produces a new fingerprint, but the chain shares one registry).
	AncestorFP string               `json:"ancestorFp,omitempty"`
	Doc        scenario.AnalysisDoc `json:"doc"`
	Seq        uint64               `json:"seq"`
	Radii      []radiusWire         `json:"radii"`
	Events     []WatchEventRec      `json:"events"`
}

// WatchStoreStats are the watch store's monotonic counters.
type WatchStoreStats struct {
	Saves          uint64 `json:"saves"`
	SaveErrors     uint64 `json:"saveErrors"`
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	Deletes        uint64 `json:"deletes"`
}

// watchStore persists watch checkpoints in a directory. All methods are
// safe for concurrent use.
type watchStore struct {
	dir string

	mu    sync.Mutex
	stats WatchStoreStats
}

func openWatchStore(dir string) (*watchStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: watch store dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: opening watch store: %w", err)
	}
	return &watchStore{dir: dir}, nil
}

func (ws *watchStore) Stats() WatchStoreStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.stats
}

// path names id's file by a hash of the id, so client-chosen watch ids
// never become path components.
func (ws *watchStore) path(id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	return filepath.Join(ws.dir, strconv.FormatUint(h.Sum64(), 16)+watchSuffix)
}

// Save atomically replaces id's checkpoint.
func (ws *watchStore) Save(p WatchPayload) error {
	raw, err := json.Marshal(p)
	if err != nil {
		ws.countSaveErr()
		return fmt.Errorf("server: watch checkpoint save: %w", err)
	}
	env := watchEnvelope{
		Kind:     watchKind,
		Version:  watchVersion,
		ID:       p.ID,
		Checksum: durable.Checksum(raw),
		Payload:  raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		ws.countSaveErr()
		return fmt.Errorf("server: watch checkpoint save: %w", err)
	}
	if err := durable.WriteFileAtomic(ws.path(p.ID), data, ".watch-*"); err != nil {
		ws.countSaveErr()
		return fmt.Errorf("server: watch checkpoint save: %w", err)
	}
	ws.mu.Lock()
	ws.stats.Saves++
	ws.mu.Unlock()
	return nil
}

func (ws *watchStore) countSaveErr() {
	ws.mu.Lock()
	ws.stats.SaveErrors++
	ws.mu.Unlock()
}

// decodeWatch verifies one watch file end to end.
func decodeWatch(data []byte) (WatchPayload, error) {
	var env watchEnvelope
	var p WatchPayload
	if err := json.Unmarshal(data, &env); err != nil {
		return p, fmt.Errorf("server: watch file: %w", err)
	}
	if env.Kind != watchKind || env.Version != watchVersion {
		return p, fmt.Errorf("server: watch file kind/version %q/%d, want %q/%d", env.Kind, env.Version, watchKind, watchVersion)
	}
	if got := durable.Checksum(env.Payload); got != env.Checksum {
		return p, fmt.Errorf("server: watch file checksum %s, recorded %s", got, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return p, fmt.Errorf("server: watch payload: %w", err)
	}
	if p.ID != env.ID {
		return p, fmt.Errorf("server: watch payload id %q under envelope id %q", p.ID, env.ID)
	}
	return p, nil
}

// Load retrieves id's checkpoint. A missing file returns ErrNoWatch; a
// corrupt one is quarantined (removed, counted) and reported as ErrNoWatch
// too.
func (ws *watchStore) Load(id string) (WatchPayload, error) {
	path := ws.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return WatchPayload{}, fmt.Errorf("%w: %q", ErrNoWatch, id)
		}
		return WatchPayload{}, fmt.Errorf("server: watch load: %w", err)
	}
	p, err := decodeWatch(data)
	if err == nil && p.ID != id {
		err = fmt.Errorf("server: watch file for id %q found under %q's name", p.ID, id)
	}
	if err != nil {
		ws.quarantine(path)
		return WatchPayload{}, fmt.Errorf("%w: %q (%v)", ErrNoWatch, id, err)
	}
	ws.mu.Lock()
	ws.stats.Loaded++
	ws.mu.Unlock()
	return p, nil
}

// Delete removes id's checkpoint (a closed watch needs no resume).
func (ws *watchStore) Delete(id string) {
	if err := os.Remove(ws.path(id)); err != nil {
		return
	}
	ws.mu.Lock()
	ws.stats.Deletes++
	ws.mu.Unlock()
}

// quarantine removes a file Load refused, best-effort, and counts it.
func (ws *watchStore) quarantine(path string) {
	_ = os.Remove(path)
	ws.mu.Lock()
	ws.stats.CorruptSkipped++
	ws.mu.Unlock()
}

// List returns the ids of every intact checkpoint, sorted, for /statz.
// Corrupt files are quarantined and skipped, never fatal.
func (ws *watchStore) List() []string {
	entries, err := os.ReadDir(ws.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), watchSuffix) {
			continue
		}
		path := filepath.Join(ws.dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			ws.quarantine(path)
			continue
		}
		p, err := decodeWatch(data)
		if err != nil {
			ws.quarantine(path)
			continue
		}
		out = append(out, p.ID)
	}
	sort.Strings(out)
	return out
}
