package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSanitizeTenant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", DefaultTenant},
		{"  ", DefaultTenant},
		{"alice", "alice"},
		{"team-a.prod_7", "team-a.prod_7"},
		{"evil tenant\n{}", "evil_tenant___"},
		{strings.Repeat("x", 100), strings.Repeat("x", maxTenantNameLen)},
	}
	for _, c := range cases {
		if got := SanitizeTenant(c.in); got != c.want {
			t.Errorf("SanitizeTenant(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTenantQuotaSheds(t *testing.T) {
	ad := newAdmission(2, 1000)
	ad.tenantQuota = 100

	if sc := ad.reserveFor("a", 80); sc != shedNone {
		t.Fatalf("first reservation shed: %v", sc)
	}
	// Over the tenant quota while the tenant has work in flight: shed
	// tenant-scoped even though the global queue has room.
	if sc := ad.reserveFor("a", 50); sc != shedTenant {
		t.Fatalf("over-quota reservation = %v, want shedTenant", sc)
	}
	// Another tenant is unaffected.
	if sc := ad.reserveFor("b", 50); sc != shedNone {
		t.Fatalf("other tenant shed: %v", sc)
	}
	// Global bound still applies across tenants.
	if sc := ad.reserveFor("c", 10_000); sc != shedGlobal {
		t.Fatalf("global overflow = %v, want shedGlobal", sc)
	}
	ad.releaseFor("a", 80)
	ad.releaseFor("b", 50)

	// Tenant idle exception: a single scenario above the tenant quota is
	// admitted when the tenant has nothing else in flight.
	if sc := ad.reserveFor("a", 500); sc != shedNone {
		t.Fatalf("idle oversize reservation shed: %v", sc)
	}
	ad.releaseFor("a", 500)

	st := ad.tenantStatz()
	if len(st) != 3 {
		t.Fatalf("tenantStatz rows = %d, want 3", len(st))
	}
	for _, row := range st {
		switch row.Tenant {
		case "a":
			if row.Accepted != 2 || row.Shed != 1 {
				t.Fatalf("tenant a counters: %+v", row)
			}
		case "c":
			if row.Shed != 1 {
				t.Fatalf("tenant c counters: %+v", row)
			}
		}
	}
}

func TestTenantQuotaScalesWithWeight(t *testing.T) {
	ad := newAdmission(2, 1000)
	ad.tenantQuota = 100
	ad.weights = map[string]float64{"big": 3}
	if sc := ad.reserveFor("big", 80); sc != shedNone {
		t.Fatal("first reservation shed")
	}
	// 80+200 < 300 = quota × weight: still admitted.
	if sc := ad.reserveFor("big", 200); sc != shedNone {
		t.Fatalf("weighted tenant shed under its scaled quota")
	}
	if sc := ad.reserveFor("big", 50); sc != shedTenant {
		t.Fatalf("weighted tenant not shed over its scaled quota")
	}
}

// grantOrder enqueues waiters one at a time (so arrival order is fixed),
// then releases the held slot and records the order grants cascade in.
func grantOrder(t *testing.T, ad *admission, reqs []struct {
	tenant string
	cost   int64
}) []string {
	t.Helper()
	if err := ad.acquireFair(context.Background(), "holder", 1); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, len(reqs))
	for i, r := range reqs {
		go func(tenant string, cost int64) {
			if err := ad.acquireFair(context.Background(), tenant, cost); err != nil {
				t.Error(err)
				return
			}
			order <- tenant
			ad.releaseSlot()
		}(r.tenant, r.cost)
		// Wait until this waiter is queued before adding the next, so
		// virtual finish stamps are assigned in a known order.
		deadline := time.Now().Add(2 * time.Second)
		for {
			ad.mu.Lock()
			n := ad.waiters.Len()
			ad.mu.Unlock()
			if n == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	ad.releaseSlot() // grants cascade from here
	got := make([]string, 0, len(reqs))
	for range reqs {
		select {
		case name := <-order:
			got = append(got, name)
		case <-time.After(2 * time.Second):
			t.Fatalf("grant order stalled after %v", got)
		}
	}
	return got
}

// TestWeightedFairQueueingInterleavesTenants is the discipline's core
// property: a light tenant's request slots in ahead of a heavy tenant's
// backlog instead of behind all of it (FIFO would return quiet last).
func TestWeightedFairQueueingInterleavesTenants(t *testing.T) {
	ad := newAdmission(1, 1<<20)
	got := grantOrder(t, ad, []struct {
		tenant string
		cost   int64
	}{
		{"noisy", 100}, {"noisy", 100}, {"noisy", 100}, {"quiet", 100},
	})
	// noisy's three requests stamp virtual finishes 100, 200, 300; quiet
	// arrives last but stamps ~101 — it must be granted second, not last.
	if got[len(got)-1] == "quiet" {
		t.Fatalf("fair queue degenerated to FIFO: %v", got)
	}
	if got[0] != "noisy" || got[1] != "quiet" {
		t.Fatalf("grant order = %v, want noisy first then quiet", got)
	}
}

// TestWeightedFairQueueingHonorsWeights doubles quiet's weight, halving its
// virtual cost: it should overtake even noisy's first queued request.
func TestWeightedFairQueueingHonorsWeights(t *testing.T) {
	ad := newAdmission(1, 1<<20)
	ad.weights = map[string]float64{"quiet": 4}
	got := grantOrder(t, ad, []struct {
		tenant string
		cost   int64
	}{
		{"noisy", 100}, {"noisy", 100}, {"quiet", 100},
	})
	if got[0] != "quiet" {
		t.Fatalf("grant order = %v, want quiet first (weight 4)", got)
	}
}

func TestAcquireFairCancelWhileQueued(t *testing.T) {
	ad := newAdmission(1, 1<<20)
	if err := ad.acquireFair(context.Background(), "a", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- ad.acquireFair(ctx, "b", 1) }()
	deadline := time.Now().Add(2 * time.Second)
	for {
		ad.mu.Lock()
		n := ad.waiters.Len()
		ad.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled acquire returned nil")
	}
	// The abandoned waiter must not leak a slot: the next acquire succeeds
	// as soon as the holder releases.
	ad.releaseSlot()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := ad.acquireFair(ctx2, "c", 1); err != nil {
		t.Fatalf("slot leaked by cancelled waiter: %v", err)
	}
}

func TestTenantQuotaShedOverHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantQuotaCost: 10})
	// Fill alice's quota out of band, as the existing shedding test does for
	// the global bound.
	if sc := s.adm.reserveFor("alice", 9); sc != shedNone {
		t.Fatal("setup reservation shed")
	}
	defer s.adm.releaseFor("alice", 9)

	body, _ := json.Marshal(EvalRequest{Scenario: analyticDoc()})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/robustness", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderTenant, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant shed carries no Retry-After")
	}
	if resp.Header.Get(HeaderTenant) != "alice" {
		t.Fatalf("tenant echo header = %q", resp.Header.Get(HeaderTenant))
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "tenant-quota" || er.Tenant != "alice" || er.RetryAfterMs < 1000 {
		t.Fatalf("error body: %+v", er)
	}

	// The same request from another tenant sails through.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/robustness", bytes.NewReader(body))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set(HeaderTenant, "bob")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status = %d, want 200", resp2.StatusCode)
	}

	st := getStatz(t, ts)
	var alice, bob *TenantStatz
	for i := range st.Tenants {
		switch st.Tenants[i].Tenant {
		case "alice":
			alice = &st.Tenants[i]
		case "bob":
			bob = &st.Tenants[i]
		}
	}
	if alice == nil || alice.Shed != 1 {
		t.Fatalf("alice statz: %+v", st.Tenants)
	}
	if bob == nil || bob.Accepted != 1 || bob.Shed != 0 {
		t.Fatalf("bob statz: %+v", st.Tenants)
	}
}

// TestNoisyNeighborLatencyBounded is the two-tenant isolation end-to-end: a
// flooding tenant saturates the daemon while a quiet tenant keeps sending;
// the quiet tenant's latency must stay within 2× its solo baseline. Chaos
// slow faults pin the service times, so the bound is deterministic up to
// scheduler noise; FIFO queueing would blow it by queuing quiet behind the
// whole flood.
func TestNoisyNeighborLatencyBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	_, ts := newTestServer(t, Config{
		MaxConcurrent:   1,
		EnableChaos:     true,
		TenantQuotaCost: -1, // isolate the fairness effect from quota sheds
	})
	// The slow fault sleeps per impact call and the numeric radius search
	// makes many calls, so single-digit millisecond delays already produce
	// service times in the hundreds of milliseconds.
	slowReq := func(delayMs int) []byte {
		body, _ := json.Marshal(EvalRequest{
			Scenario: analyticDoc(),
			Chaos:    []ChaosSpec{{Feature: 0, Fault: "slow", DelayMs: delayMs}},
		})
		return body
	}
	send := func(tenant string, body []byte) (time.Duration, int) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/robustness", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(HeaderTenant, tenant)
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return 0, 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(start), resp.StatusCode
	}

	quietBody, noisyBody := slowReq(4), slowReq(1)

	// Solo baseline for the quiet tenant.
	baseline, code := send("quiet", quietBody)
	if code != http.StatusOK {
		t.Fatalf("baseline status %d", code)
	}

	// Flood from the noisy tenant: 4 goroutines, back to back.
	stop := make(chan struct{})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
					send("noisy", noisyBody)
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the flood back up

	worst, code := send("quiet", quietBody)
	if code != http.StatusOK {
		t.Fatalf("quiet request under load: status %d", code)
	}
	close(stop)
	for g := 0; g < 4; g++ {
		<-done
	}

	if worst > 2*baseline {
		t.Fatalf("quiet tenant latency %v under load exceeds 2x solo baseline %v", worst, baseline)
	}
}

// TestStatzRatesFiniteWithZeroTraffic is the NaN/Inf regression guard: a
// fresh daemon's /statz (and /metrics) must render with all rates finite —
// encoding/json refuses NaN outright, which would lose the whole document.
func TestStatzRatesFiniteWithZeroTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statz = %d", resp.StatusCode)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("zero-traffic /statz does not decode: %v", err)
	}
	if st.CacheHitRate != 0 {
		t.Fatalf("zero-lookup cache hit rate = %v, want 0", st.CacheHitRate)
	}
	if safeRate(0, 0) != 0 {
		t.Fatal("safeRate(0,0) != 0")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", mresp.StatusCode)
	}
	text := string(raw)
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(text, bad) {
			t.Fatalf("zero-traffic /metrics contains %s:\n%s", bad, text)
		}
	}
	if !strings.Contains(text, "fepiad_cache_hit_rate 0") {
		t.Fatalf("metrics missing zero hit rate:\n%s", text)
	}
}

func TestMetricsExposesTenantCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantQuotaCost: 10})
	if sc := s.adm.reserveFor("alice", 9); sc != shedNone {
		t.Fatal("setup reservation shed")
	}
	body, _ := json.Marshal(EvalRequest{Scenario: analyticDoc()})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/robustness", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderTenant, "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.adm.releaseFor("alice", 9)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	if !strings.Contains(text, `fepiad_tenant_shed_total{tenant="alice"} 1`) {
		t.Fatalf("metrics missing alice's quota shed:\n%s", text)
	}
}
