package server

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkTenantAdmission measures the full admission cycle — quota
// reservation, weighted-fair slot acquisition, slot release, reservation
// release — under concurrent load. The tenant-count axis shows how the
// per-tenant bookkeeping and the virtual-clock discipline scale with fleet
// multi-tenancy; the queued variant (one slot, a yield while holding it)
// makes acquisitions overlap so the waiter-heap hand-off path is costed too.
func BenchmarkTenantAdmission(b *testing.B) {
	cycle := func(b *testing.B, ad *admission, nTenants int, hold bool) {
		tenants := make([]string, nTenants)
		for i := range tenants {
			tenants[i] = fmt.Sprintf("tenant-%02d", i)
		}
		ctx := context.Background()
		var next atomic.Uint64
		var sheds, errs atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			tenant := tenants[int(next.Add(1))%nTenants]
			for pb.Next() {
				if ad.reserveFor(tenant, 64) != shedNone {
					sheds.Add(1)
					continue
				}
				if err := ad.acquireFair(ctx, tenant, 64); err != nil {
					errs.Add(1)
				} else {
					if hold {
						runtime.Gosched()
					}
					ad.releaseSlot()
				}
				ad.releaseFor(tenant, 64)
			}
		})
		b.StopTimer()
		if s := sheds.Load(); s != 0 {
			b.Fatalf("%d unexpected sheds (bound sized to never shed)", s)
		}
		if e := errs.Load(); e != 0 {
			b.Fatalf("%d acquireFair errors", e)
		}
	}

	for _, nTenants := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("tenants=%d", nTenants), func(b *testing.B) {
			// Slots match the parallelism so the benchmark prices the
			// bookkeeping, not artificial queueing; the cost bound is far
			// above what the goroutines can reserve at once.
			cycle(b, newAdmission(runtime.GOMAXPROCS(0), 1<<40), nTenants, false)
		})
	}
	b.Run("tenants=4/queued", func(b *testing.B) {
		cycle(b, newAdmission(1, 1<<40), 4, true)
	})
}
