package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestDrainUnderLoadWithSIGTERM is the graceful-shutdown contract test, run
// the way fepiad runs in production: a real SIGTERM delivered mid-burst
// through signal.NotifyContext. Every request the server accepted before the
// signal must still reach a terminal response — a result, a typed error, or
// a cancellation — and Drain must return nil within its deadline. Requests
// arriving after drain begins are rejected with 503, which is also terminal.
// The test runs under -race in CI; it doubles as the data-race check on the
// admission/drain accounting.
func TestDrainUnderLoadWithSIGTERM(t *testing.T) {
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	s := New(Config{
		EnableChaos:    true,
		MaxConcurrent:  4,
		DefaultTimeout: 5 * time.Second,
		DrainGrace:     2 * time.Second,
		DegradeSamples: 32,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Request bodies: half the burst is fast analytic work, half carries
	// injected latency so plenty of requests are mid-flight at the signal.
	fast, err := json.Marshal(EvalRequest{Scenario: analyticDoc()})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := json.Marshal(EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "slow", DelayMs: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}

	terminal := map[int]bool{
		http.StatusOK:                  true, // completed (possibly degraded)
		http.StatusTooManyRequests:     true, // shed at admission
		http.StatusServiceUnavailable:  true, // draining, or cancelled by drain
		http.StatusGatewayTimeout:      true, // deadline while queued or running
		http.StatusInternalServerError: true, // contained fault
	}

	const n = 48
	var (
		wg        sync.WaitGroup
		responses atomic.Int64
		badStatus atomic.Int64
		transport atomic.Int64
	)
	for i := 0; i < n; i++ {
		body := fast
		if i%2 == 1 {
			body = slow
		}
		wg.Add(1)
		go func(body []byte) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/robustness", "application/json", bytes.NewReader(body))
			if err != nil {
				transport.Add(1)
				return
			}
			resp.Body.Close()
			responses.Add(1)
			if !terminal[resp.StatusCode] {
				badStatus.Add(1)
				t.Errorf("non-terminal status %d", resp.StatusCode)
			}
		}(body)
		// Deliver SIGTERM mid-burst, exactly as the platform would.
		if i == n/2 {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatalf("sending SIGTERM: %v", err)
			}
		}
	}

	select {
	case <-sigCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never delivered")
	}

	// The fepiad shutdown sequence: bounded drain after the signal.
	drainCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	wg.Wait()
	if got := responses.Load() + transport.Load(); got != n {
		t.Fatalf("accounted for %d of %d requests", got, n)
	}
	if transport.Load() != 0 {
		t.Fatalf("%d requests died without an HTTP response", transport.Load())
	}
	if badStatus.Load() != 0 {
		t.Fatalf("%d non-terminal statuses", badStatus.Load())
	}

	// After a clean drain nothing is in flight and new work is rejected.
	st := s.statz()
	if st.Inflight != 0 || st.Running != 0 || st.QueuedCost != 0 {
		t.Fatalf("post-drain residue: inflight=%d running=%d queuedCost=%d",
			st.Inflight, st.Running, st.QueuedCost)
	}
	resp, err := http.Post(ts.URL+"/v1/robustness", "application/json", bytes.NewReader(fast))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: status = %d, want 503", resp.StatusCode)
	}
}

// TestDrainCancelsStuckWork asserts the harder half of the drain contract:
// in-flight work that will not finish on its own is cancelled at the drain
// deadline and still produces a terminal response, so Drain returns nil
// instead of hanging.
func TestDrainCancelsStuckWork(t *testing.T) {
	s := New(Config{
		EnableChaos:    true,
		MaxConcurrent:  2,
		DefaultTimeout: 30 * time.Second, // far beyond the drain deadline
		DrainGrace:     2 * time.Second,
		DegradeSamples: 32,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stuck, err := json.Marshal(EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "slow", DelayMs: 250}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/robustness", "application/json", bytes.NewReader(stuck))
		if err != nil {
			got <- -1
			return
		}
		resp.Body.Close()
		got <- resp.StatusCode
	}()

	// Wait until the request holds a slot before draining.
	deadline := time.Now().Add(2 * time.Second)
	for s.statz().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	select {
	case status := <-got:
		// Drain cancellation surfaces as 503 (cancelled); a request that
		// squeaked through in time may legitimately be 200.
		if status != http.StatusServiceUnavailable && status != http.StatusOK {
			t.Fatalf("stuck request status = %d", status)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("stuck request never got its terminal response")
	}
}
