package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"fepia/internal/chaos"
	"fepia/internal/core"
	"fepia/internal/scenario"
)

// maxBodyBytes bounds request bodies; a scenario that large is a client
// bug, not a workload.
const maxBodyBytes = 8 << 20

// degradeSeed pins the Monte-Carlo fallback streams so degraded responses
// are reproducible across requests, replicas, and restarts.
const degradeSeed = 1

// EvalRequest is the body of POST /v1/robustness.
type EvalRequest struct {
	Scenario scenario.AnalysisDoc `json:"scenario"`
	// Weighting is "normalized" (default) or "sensitivity".
	Weighting string `json:"weighting,omitempty"`
	// Timeout is this request's wall-clock budget as a Go duration
	// ("500ms", "10s"); empty uses the server default, and any value is
	// clamped to the server maximum. The budget includes queue wait.
	Timeout string `json:"timeout,omitempty"`
	// Chaos decorates features with injected faults — accepted only when
	// the daemon runs with chaos enabled (tests, smoke jobs).
	Chaos []ChaosSpec `json:"chaos,omitempty"`
}

// RadiusRequest is the body of POST /v1/radius (single-kind radii, Eq. 1).
type RadiusRequest struct {
	Scenario scenario.AnalysisDoc `json:"scenario"`
	// Param restricts the response to one perturbation parameter; nil
	// computes every parameter's radius.
	Param   *int        `json:"param,omitempty"`
	Timeout string      `json:"timeout,omitempty"`
	Chaos   []ChaosSpec `json:"chaos,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Items []BatchItemRequest `json:"items"`
	// Weighting is the default for items that name none.
	Weighting string `json:"weighting,omitempty"`
	Timeout   string `json:"timeout,omitempty"`
}

// BatchItemRequest is one candidate of a batch.
type BatchItemRequest struct {
	Scenario  scenario.AnalysisDoc `json:"scenario"`
	Weighting string               `json:"weighting,omitempty"`
	Chaos     []ChaosSpec          `json:"chaos,omitempty"`
}

// ChaosSpec injects one fault into one feature (test-only; requires
// Config.EnableChaos). Slow faults are cancellable: the injected latency is
// bound to the request context, so cancellation frees the worker at once.
type ChaosSpec struct {
	Feature int `json:"feature"`
	// Fault is one of none, panic, nan, +inf, -inf, slow, corrupt-dims.
	Fault string `json:"fault"`
	// DelayMs is the per-call latency of a slow fault.
	DelayMs int `json:"delayMs,omitempty"`
	// After passes the first After calls through unfaulted.
	After int64 `json:"after,omitempty"`
}

// RadiusJSON serializes one robustness radius (JSON has no ±Inf: an
// unreachable boundary is value null + unbounded true).
type RadiusJSON struct {
	Feature   int      `json:"feature"`
	Name      string   `json:"name,omitempty"`
	Param     int      `json:"param"`
	Value     *float64 `json:"value"`
	Unbounded bool     `json:"unbounded,omitempty"`
	Side      string   `json:"side"`
	Analytic  bool     `json:"analytic,omitempty"`
	Degraded  bool     `json:"degraded,omitempty"`
}

// RobustnessJSON serializes the combined metric ρ with its breakdown.
type RobustnessJSON struct {
	Value      *float64     `json:"value"`
	Unbounded  bool         `json:"unbounded,omitempty"`
	Critical   int          `json:"critical"`
	Weighting  string       `json:"weighting"`
	Degraded   bool         `json:"degraded,omitempty"`
	PerFeature []RadiusJSON `json:"perFeature"`
}

// EvalResponse is the success body of /v1/robustness.
type EvalResponse struct {
	Robustness RobustnessJSON `json:"robustness"`
	// Class is the scenario's breaker class; Breaker the state the request
	// was routed under ("open" means the numeric tier was skipped and the
	// result is a forced Monte-Carlo estimate).
	Class   string `json:"class"`
	Breaker string `json:"breaker"`
	// RequestID is the request's correlation ID (also in the X-Request-ID
	// response header).
	RequestID string  `json:"requestId,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// RadiusResponse is the success body of /v1/radius.
type RadiusResponse struct {
	Radii     []RadiusJSON `json:"radii"`
	RequestID string       `json:"requestId,omitempty"`
	ElapsedMs float64      `json:"elapsedMs"`
}

// BatchItemResponse is one item's outcome in a BatchResponse: exactly one
// of Robustness and Error is set.
type BatchItemResponse struct {
	Robustness *RobustnessJSON `json:"robustness,omitempty"`
	Error      string          `json:"error,omitempty"`
	Kind       string          `json:"kind,omitempty"`
	Class      string          `json:"class"`
	Breaker    string          `json:"breaker"`
}

// BatchResponse is the body of /v1/batch; Results is parallel to the
// request's Items. The HTTP status is 200 whenever the batch itself ran —
// per-item failures (including cancellation) are reported per item.
type BatchResponse struct {
	Results   []BatchItemResponse `json:"results"`
	RequestID string              `json:"requestId,omitempty"`
	ElapsedMs float64             `json:"elapsedMs"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is the machine-readable class; docs/failure-semantics.md
	// §server maps kinds to the engine's typed errors.
	Kind         string `json:"kind,omitempty"`
	RequestID    string `json:"requestId,omitempty"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
	// Tenant is the admission tenant a shed was charged to; "tenant-quota"
	// kinds are scoped to it (other tenants are still being served).
	Tenant string `json:"tenant,omitempty"`
}

// StatusForKind is the inverse of errKind's status mapping: the HTTP status
// a response of the given machine kind carries. The cluster coordinator uses
// it to relay a worker-reported evaluation failure with the same status a
// single-node daemon would have chosen.
func StatusForKind(kind string) int {
	switch kind {
	case "deadline-exceeded":
		return http.StatusGatewayTimeout
	case "cancelled", "draining":
		return http.StatusServiceUnavailable
	case "overloaded", "tenant-quota":
		return http.StatusTooManyRequests
	case "bad-request":
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statz())
}

// badRequest rejects with 400, counts it, and logs it under the request ID.
func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, err error) {
	rid := RequestIDFrom(r.Context())
	s.stats.badRequests.Add(1)
	s.cfg.Logf("server: rid=%s bad request: %v", rid, err)
	writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Kind: "bad-request", RequestID: rid})
}

// requestTimeout resolves a request's deadline from its raw timeout field.
func (s *Server) requestTimeout(raw string) (time.Duration, error) {
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid timeout %q: %w", raw, err)
	}
	if d <= 0 {
		return s.cfg.DefaultTimeout, nil
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

func parseWeighting(raw string) (core.Weighting, error) {
	switch raw {
	case "", "normalized":
		return core.Normalized{}, nil
	case "sensitivity":
		return core.Sensitivity{}, nil
	case "unweighted":
		// Native units: what the allocation-search scatter path requests so
		// worker radii match the closed-form makespan arithmetic bit-for-bit.
		return core.Unweighted{}, nil
	default:
		return nil, fmt.Errorf("unknown weighting %q (want normalized, sensitivity, or unweighted)", raw)
	}
}

// checkChaos validates chaos decorations against the server policy and the
// document shape.
func (s *Server) checkChaos(specs []ChaosSpec, doc scenario.AnalysisDoc) (int, error) {
	if len(specs) == 0 {
		return 0, nil
	}
	if !s.cfg.EnableChaos {
		return http.StatusForbidden, errors.New("chaos injection is disabled on this server")
	}
	for _, sp := range specs {
		if sp.Feature < 0 || sp.Feature >= len(doc.Features) {
			return http.StatusBadRequest, fmt.Errorf("chaos spec targets feature %d of %d", sp.Feature, len(doc.Features))
		}
		if _, err := chaosFault(sp.Fault); err != nil {
			return http.StatusBadRequest, err
		}
	}
	return 0, nil
}

func chaosFault(name string) (chaos.Fault, error) {
	switch name {
	case "", "none":
		return chaos.None, nil
	case "panic":
		return chaos.PanicFault, nil
	case "nan":
		return chaos.NaNFault, nil
	case "+inf", "inf":
		return chaos.PosInfFault, nil
	case "-inf":
		return chaos.NegInfFault, nil
	case "slow":
		return chaos.SlowFault, nil
	case "corrupt-dims":
		return chaos.CorruptDimsFault, nil
	default:
		return chaos.None, fmt.Errorf("unknown chaos fault %q", name)
	}
}

// applyChaos wraps the targeted features' impacts with fault injectors
// bound to the request context. Faulted features lose their closed-form
// declarations so the fault actually sits on the evaluated path (the
// analytic tiers never call Impact).
func applyChaos(a *core.Analysis, specs []ChaosSpec, ctx context.Context) error {
	for _, sp := range specs {
		fault, err := chaosFault(sp.Fault)
		if err != nil {
			return err
		}
		f := &a.Features[sp.Feature]
		var base core.ImpactFunc
		switch {
		case f.Impact != nil:
			base = f.Impact
		case f.Linear != nil:
			base = f.Linear.Eval
		case f.Quad != nil:
			base = f.Quad.Eval
		default:
			return fmt.Errorf("chaos spec targets feature %d with no impact", sp.Feature)
		}
		in := &chaos.Injector{
			Fault: fault,
			After: sp.After,
			Delay: time.Duration(sp.DelayMs) * time.Millisecond,
			Ctx:   ctx,
		}
		f.Impact = in.Wrap(base)
		f.Linear, f.Quad = nil, nil
	}
	return nil
}

// admit runs the full admission sequence for one evaluation request: drain
// gate, tenant quota and cost-bounded queue (429 + Retry-After on shed,
// tenant-scoped when the tenant's own quota refused it), deadline setup, and
// the weighted-fair wait for an evaluation slot. On success it returns the
// request context and a finish func to run after the terminal response; on
// failure it has already written the response.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cost int64, timeout time.Duration) (context.Context, func(), bool) {
	rid := RequestIDFrom(r.Context())
	tenant := TenantFrom(r, s.cfg.TenantHeader)
	exit, ok := s.enter()
	if !ok {
		s.stats.rejectedDraining.Add(1)
		s.cfg.Logf("server: rid=%s rejected: draining", rid)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining", Kind: "draining", RequestID: rid})
		return nil, nil, false
	}
	if sc := s.adm.reserveFor(tenant, cost); sc != shedNone {
		exit()
		s.stats.shed.Add(1)
		ra := s.adm.retryAfterFor(tenant, sc)
		er := ErrorResponse{
			Error:        "admission queue full, request shed",
			Kind:         "overloaded",
			RequestID:    rid,
			RetryAfterMs: ra.Milliseconds(),
			Tenant:       tenant,
		}
		if sc == shedTenant {
			er.Error = "tenant " + tenant + " over its admission quota, request shed"
			er.Kind = "tenant-quota"
		}
		s.cfg.Logf("server: rid=%s shed (%s): tenant=%s cost=%d retry in %v", rid, er.Kind, tenant, cost, ra)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(ra.Seconds()))))
		w.Header().Set(s.cfg.TenantHeader, tenant)
		writeJSON(w, http.StatusTooManyRequests, er)
		return nil, nil, false
	}
	s.stats.accepted.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	stopAfter := context.AfterFunc(s.base, cancel) // drain cancellation reaches in-flight work

	if err := s.adm.acquireFair(ctx, tenant, cost); err != nil {
		stopAfter()
		cancel()
		s.adm.releaseFor(tenant, cost)
		s.writeEvalError(w, r, fmt.Errorf("while queued for an evaluation slot: %w", err))
		exit()
		return nil, nil, false
	}

	start := time.Now()
	finish := func() {
		s.adm.releaseSlot()
		s.adm.observe(cost, time.Since(start))
		s.adm.releaseFor(tenant, cost)
		stopAfter()
		cancel()
		exit()
	}
	return ctx, finish, true
}

// errKind maps an evaluation error to (HTTP status, machine kind).
func errKind(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline-exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "cancelled"
	case errors.Is(err, core.ErrImpactPanic):
		return http.StatusInternalServerError, "impact-panic"
	case errors.Is(err, core.ErrNumeric):
		return http.StatusInternalServerError, "numeric"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeEvalError responds with the mapped status, counts the outcome, and
// logs it under the request ID.
func (s *Server) writeEvalError(w http.ResponseWriter, r *http.Request, err error) {
	rid := RequestIDFrom(r.Context())
	status, kind := errKind(err)
	switch status {
	case http.StatusGatewayTimeout:
		s.stats.errDeadline.Add(1)
	case http.StatusServiceUnavailable:
		s.stats.errCancelled.Add(1)
	default:
		s.stats.errInternal.Add(1)
	}
	s.cfg.Logf("server: rid=%s evaluation failed (%s): %v", rid, kind, err)
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: kind, RequestID: rid})
}

// outcomeFailed classifies a terminal evaluation outcome for the breaker:
// true means the numeric tier failed (error or silent degradation), false a
// clean success; neutral (second return) means the outcome says nothing
// about tier health (cancellation by client or drain).
func outcomeFailed(res core.Robustness, err error, forced bool) (failed, neutral bool) {
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return false, true
		}
		return true, false
	}
	if forced {
		// Forced-degraded results never touched the numeric tier.
		return false, true
	}
	return res.Degraded, false
}

func floatPtr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

func radiusJSON(a *core.Analysis, r core.Radius) RadiusJSON {
	out := RadiusJSON{
		Feature:   r.Feature,
		Param:     r.Param,
		Value:     floatPtr(r.Value),
		Unbounded: math.IsInf(r.Value, 1),
		Side:      r.Side.String(),
		Analytic:  r.Analytic,
		Degraded:  r.Degraded,
	}
	if r.Feature >= 0 && r.Feature < len(a.Features) {
		out.Name = a.Features[r.Feature].Name
	}
	return out
}

func robustnessJSON(a *core.Analysis, res core.Robustness) RobustnessJSON {
	out := RobustnessJSON{
		Value:     floatPtr(res.Value),
		Unbounded: math.IsInf(res.Value, 1),
		Critical:  res.Critical,
		Weighting: res.Weighting,
		Degraded:  res.Degraded,
	}
	for _, r := range res.PerFeature {
		out.PerFeature = append(out.PerFeature, radiusJSON(a, r))
	}
	return out
}

// evalOptions assembles the engine options for one request.
func (s *Server) evalOptions(forced bool) core.EvalOptions {
	return core.EvalOptions{
		Workers:          s.cfg.Workers,
		DegradeOnNumeric: true,
		DegradeSamples:   s.cfg.DegradeSamples,
		DegradeSeed:      degradeSeed,
		ForceDegraded:    forced,
	}
}

// buildAnalysis builds and decorates one scenario for evaluation. When the
// scenario cache is enabled and the request carries no chaos decorations
// (which mutate features in place), the analysis may be a shared cached one;
// the returned entry is non-nil in that case and must be passed to
// reportCache for delta accounting.
func (s *Server) buildAnalysis(doc scenario.AnalysisDoc, specs []ChaosSpec, ctx context.Context) (*core.Analysis, *scacheEntry, error) {
	if s.scache != nil && len(specs) == 0 {
		a, e, err := s.lookupScenario(doc)
		if err != nil {
			return nil, nil, err
		}
		if a != nil {
			return a, e, nil
		}
	}
	a, err := doc.Build()
	if err != nil {
		return nil, nil, err
	}
	s.enableImpactCache(a)
	if err := applyChaos(a, specs, ctx); err != nil {
		return nil, nil, err
	}
	return a, nil, nil
}

func (s *Server) handleRobustness(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req EvalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		s.badRequest(w, r, err)
		return
	}
	weighting, err := parseWeighting(req.Weighting)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	if status, err := s.checkChaos(req.Chaos, req.Scenario); err != nil {
		s.stats.badRequests.Add(1)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: "chaos", RequestID: rid})
		return
	}
	cost := estimateCost(req.Scenario)

	ctx, finish, ok := s.admit(w, r, cost, timeout)
	if !ok {
		return
	}
	defer finish()

	a, entry, err := s.buildAnalysis(req.Scenario, req.Chaos, ctx)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	class := classify(req.Scenario, len(req.Chaos) > 0)
	forced, probe, state := s.brk.route(class)

	start := time.Now()
	res, evalErr := a.RobustnessWith(ctx, weighting, s.evalOptions(forced))
	elapsed := time.Since(start)
	s.reportCache(class, a, entry)

	failed, neutral := outcomeFailed(res, evalErr, forced)
	if !neutral || probe {
		// A neutral probe outcome must still release the probe slot; it
		// re-opens the breaker only on genuine failure.
		if neutral && probe {
			s.brk.record(class, true, false)
		} else {
			s.brk.record(class, probe, failed)
		}
	}

	if evalErr != nil {
		s.writeEvalError(w, r, evalErr)
		return
	}
	if res.Degraded {
		s.stats.completedDegr.Add(1)
	} else {
		s.stats.completedOK.Add(1)
	}
	s.cfg.Logf("server: rid=%s robustness class=%s breaker=%s elapsed=%.1fms", rid, class, state, float64(elapsed.Microseconds())/1000)
	writeJSON(w, http.StatusOK, EvalResponse{
		Robustness: robustnessJSON(a, res),
		Class:      class,
		Breaker:    state,
		RequestID:  rid,
		ElapsedMs:  float64(elapsed.Microseconds()) / 1000,
	})
}

func (s *Server) handleRadius(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req RadiusRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		s.badRequest(w, r, err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	if req.Param != nil && (*req.Param < 0 || *req.Param >= len(req.Scenario.Params)) {
		s.badRequest(w, r, fmt.Errorf("param %d out of range (%d params)", *req.Param, len(req.Scenario.Params)))
		return
	}
	if status, err := s.checkChaos(req.Chaos, req.Scenario); err != nil {
		s.stats.badRequests.Add(1)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: "chaos", RequestID: rid})
		return
	}
	cost := estimateCost(req.Scenario)

	ctx, finish, ok := s.admit(w, r, cost, timeout)
	if !ok {
		return
	}
	defer finish()

	a, entry, err := s.buildAnalysis(req.Scenario, req.Chaos, ctx)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	class := classify(req.Scenario, len(req.Chaos) > 0)

	params := make([]int, 0, len(a.Params))
	if req.Param != nil {
		params = append(params, *req.Param)
	} else {
		for j := range a.Params {
			params = append(params, j)
		}
	}
	start := time.Now()
	radii := make([]RadiusJSON, 0, len(params))
	for _, j := range params {
		rad, rerr := a.RobustnessSingleCtx(ctx, j)
		if rerr != nil {
			s.reportCache(class, a, entry)
			s.writeEvalError(w, r, fmt.Errorf("param %d: %w", j, rerr))
			return
		}
		rj := radiusJSON(a, rad)
		rj.Param = j
		radii = append(radii, rj)
	}
	s.reportCache(class, a, entry)
	s.stats.completedOK.Add(1)
	writeJSON(w, http.StatusOK, RadiusResponse{
		Radii:     radii,
		RequestID: rid,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Items) == 0 {
		s.badRequest(w, r, errors.New("batch has no items"))
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	var cost int64
	weightings := make([]core.Weighting, len(req.Items))
	for k, it := range req.Items {
		if err := it.Scenario.Validate(); err != nil {
			s.badRequest(w, r, fmt.Errorf("item %d: %w", k, err))
			return
		}
		wname := it.Weighting
		if wname == "" {
			wname = req.Weighting
		}
		weightings[k], err = parseWeighting(wname)
		if err != nil {
			s.badRequest(w, r, fmt.Errorf("item %d: %w", k, err))
			return
		}
		if status, cerr := s.checkChaos(it.Chaos, it.Scenario); cerr != nil {
			s.stats.badRequests.Add(1)
			writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf("item %d: %v", k, cerr), Kind: "chaos", RequestID: rid})
			return
		}
		cost += estimateCost(it.Scenario)
	}

	ctx, finish, ok := s.admit(w, r, cost, timeout)
	if !ok {
		return
	}
	defer finish()

	n := len(req.Items)
	analyses := make([]*core.Analysis, n)
	entries := make([]*scacheEntry, n)
	classes := make([]string, n)
	forcedFlags := make([]bool, n)
	probeFlags := make([]bool, n)
	states := make([]string, n)
	for k, it := range req.Items {
		a, entry, berr := s.buildAnalysis(it.Scenario, it.Chaos, ctx)
		if berr != nil {
			s.badRequest(w, r, fmt.Errorf("item %d: %w", k, berr))
			return
		}
		analyses[k], entries[k] = a, entry
		classes[k] = classify(it.Scenario, len(it.Chaos) > 0)
		forcedFlags[k], probeFlags[k], states[k] = s.brk.route(classes[k])
	}

	// Store entries in use stay pinned for the whole evaluation: a running
	// search scores its generations through this path, and the size bound's
	// LRU sweep must never evict a scenario out from under an in-flight
	// generation (pins nest, so concurrent batches sharing a scenario are
	// safe).
	if s.store != nil {
		for _, e := range entries {
			if e != nil {
				s.store.Pin(e.key)
			}
		}
		defer func() {
			for _, e := range entries {
				if e != nil {
					s.store.Unpin(e.key)
				}
			}
		}()
	}

	// Partition by breaker routing: open classes run the bounded
	// Monte-Carlo path, everything else the full engine. Results merge
	// back into request order.
	var normalIdx, forcedIdx []int
	for k, f := range forcedFlags {
		if f {
			forcedIdx = append(forcedIdx, k)
		} else {
			normalIdx = append(normalIdx, k)
		}
	}
	results := make([]core.Robustness, n)
	errs := make([]error, n)
	start := time.Now()
	runSubset := func(idx []int, forced bool) {
		if len(idx) == 0 {
			return
		}
		items := make([]core.BatchItem, len(idx))
		for q, k := range idx {
			items[q] = core.BatchItem{A: analyses[k], W: weightings[k]}
		}
		opt := s.evalOptions(forced)
		opt.Workers = s.cfg.MaxConcurrent // the batch pool is the request's slot
		sub, subErrs := core.RobustnessBatch(ctx, items, opt)
		for q, k := range idx {
			results[k], errs[k] = sub[q], subErrs[q]
		}
	}
	runSubset(normalIdx, false)
	runSubset(forcedIdx, true)
	elapsed := time.Since(start)

	out := BatchResponse{Results: make([]BatchItemResponse, n), RequestID: rid, ElapsedMs: float64(elapsed.Microseconds()) / 1000}
	anyDegraded, allOK := false, true
	for k := 0; k < n; k++ {
		s.reportCache(classes[k], analyses[k], entries[k])
		failed, neutral := outcomeFailed(results[k], errs[k], forcedFlags[k])
		if !neutral || probeFlags[k] {
			if neutral && probeFlags[k] {
				s.brk.record(classes[k], true, false)
			} else {
				s.brk.record(classes[k], probeFlags[k], failed)
			}
		}
		item := BatchItemResponse{Class: classes[k], Breaker: states[k]}
		if errs[k] != nil {
			allOK = false
			_, kind := errKind(errs[k])
			item.Error, item.Kind = errs[k].Error(), kind
		} else {
			rj := robustnessJSON(analyses[k], results[k])
			item.Robustness = &rj
			anyDegraded = anyDegraded || results[k].Degraded
		}
		out.Results[k] = item
	}
	if allOK && !anyDegraded {
		s.stats.completedOK.Add(1)
	} else {
		s.stats.completedDegr.Add(1)
	}
	s.cfg.Logf("server: rid=%s batch items=%d elapsed=%.1fms", rid, n, out.ElapsedMs)
	writeJSON(w, http.StatusOK, out)
}
