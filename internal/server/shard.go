package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"fepia/internal/scenario"
)

// POST /v1/shard is the worker half of the cluster's scatter-gather path: it
// evaluates the combined radii of an explicit subset of a scenario's
// features, identified by their GLOBAL indices in the full document. The
// coordinator always ships the complete scenario and only narrows the
// feature list — global indices are what keep a scattered evaluation
// bit-identical to a single-node one (degraded Monte-Carlo seeds and error
// strings are derived from the feature index).
//
// The endpoint deliberately bypasses the worker's own circuit breaker: a
// shard request is not an independent decision point. The coordinator owns
// classification and breaker routing for scattered traffic and passes its
// verdict down in ForceDegraded; the worker evaluates exactly what it is
// told. Admission control and drain gating still apply — an overloaded or
// draining worker sheds the shard and the coordinator re-routes it.
//
// The response is 200 whenever the shard itself ran; per-feature failures
// ride inside the body (error string + machine kind) so the coordinator can
// merge them positionally and re-raise the lowest-index one with single-node
// semantics.

// ShardRequest is the body of POST /v1/shard.
type ShardRequest struct {
	Scenario scenario.AnalysisDoc `json:"scenario"`
	// Features lists the global feature indices to evaluate; empty means
	// every feature.
	Features  []int  `json:"features,omitempty"`
	Weighting string `json:"weighting,omitempty"`
	Timeout   string `json:"timeout,omitempty"`
	// Chaos decorations apply to the whole scenario (global feature
	// indices); only faults landing on evaluated features matter here.
	Chaos []ChaosSpec `json:"chaos,omitempty"`
	// ForceDegraded is the coordinator's breaker verdict: evaluate every
	// feature on the Monte-Carlo degraded tier.
	ForceDegraded bool `json:"forceDegraded,omitempty"`
}

// ShardFeatureResult is one feature's outcome: exactly one of Radius and
// Error is set.
type ShardFeatureResult struct {
	Feature int         `json:"feature"`
	Radius  *RadiusJSON `json:"radius,omitempty"`
	Error   string      `json:"error,omitempty"`
	Kind    string      `json:"kind,omitempty"`
}

// ShardResponse is the body of a completed shard evaluation; Results is
// parallel to the request's feature list.
type ShardResponse struct {
	Results   []ShardFeatureResult `json:"results"`
	Class     string               `json:"class"`
	RequestID string               `json:"requestId,omitempty"`
	ElapsedMs float64              `json:"elapsedMs"`
}

func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req ShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		s.badRequest(w, r, err)
		return
	}
	features := req.Features
	if len(features) == 0 {
		features = make([]int, len(req.Scenario.Features))
		for i := range features {
			features[i] = i
		}
	}
	for _, i := range features {
		if i < 0 || i >= len(req.Scenario.Features) {
			s.badRequest(w, r, fmt.Errorf("feature index %d out of range (%d features)", i, len(req.Scenario.Features)))
			return
		}
	}
	weighting, err := parseWeighting(req.Weighting)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	if status, err := s.checkChaos(req.Chaos, req.Scenario); err != nil {
		s.stats.badRequests.Add(1)
		writeJSON(w, status, ErrorResponse{Error: err.Error(), Kind: "chaos", RequestID: rid})
		return
	}
	cost := estimateCostFeatures(req.Scenario, features)

	ctx, finish, ok := s.admit(w, r, cost, timeout)
	if !ok {
		return
	}
	defer finish()

	a, entry, err := s.buildAnalysis(req.Scenario, req.Chaos, ctx)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	class := classify(req.Scenario, len(req.Chaos) > 0)

	start := time.Now()
	radii, errs := a.RobustnessShardCtx(ctx, features, weighting, s.evalOptions(req.ForceDegraded))
	elapsed := time.Since(start)
	s.reportCache(class, a, entry)

	resp := ShardResponse{
		Results:   make([]ShardFeatureResult, len(features)),
		Class:     class,
		RequestID: rid,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	}
	var firstErr error
	degraded := false
	for q, i := range features {
		out := ShardFeatureResult{Feature: i}
		if errs[q] != nil {
			out.Error = errs[q].Error()
			_, out.Kind = errKind(errs[q])
			if firstErr == nil {
				firstErr = errs[q]
			}
		} else {
			rj := radiusJSON(a, radii[q])
			out.Radius = &rj
			degraded = degraded || radii[q].Degraded
		}
		resp.Results[q] = out
	}
	// The outcome counters see one terminal per shard, classified like a
	// whole-request outcome would be (lowest-index failure wins).
	switch {
	case firstErr == nil && !degraded:
		s.stats.completedOK.Add(1)
	case firstErr == nil:
		s.stats.completedDegr.Add(1)
	}
	if firstErr != nil {
		switch status, _ := errKind(firstErr); status {
		case http.StatusGatewayTimeout:
			s.stats.errDeadline.Add(1)
		case http.StatusServiceUnavailable:
			s.stats.errCancelled.Add(1)
		default:
			s.stats.errInternal.Add(1)
		}
		s.cfg.Logf("server: rid=%s shard class=%s features=%d failed: %v", rid, class, len(features), firstErr)
	} else {
		s.cfg.Logf("server: rid=%s shard class=%s features=%d elapsed=%.1fms", rid, class, len(features), resp.ElapsedMs)
	}
	writeJSON(w, http.StatusOK, resp)
}
