package server

import (
	"container/heap"
	"context"
	"net/http"
	"sort"
	"strings"
	"time"
)

// This file is the multi-tenant half of admission control. The cost-bounded
// queue in admission.go protects the daemon from aggregate overload; this
// layer protects tenants from each other:
//
//   - Identity: every request carries a tenant name in the X-Tenant header
//     (Config.TenantHeader); requests without one share the "default"
//     tenant. Names are sanitized to a small safe charset so they can be
//     used as log tokens and Prometheus label values.
//   - Quotas: each tenant may hold at most quota cost units of reserved
//     (queued + running) work, where quota = TenantQuotaCost × weight. A
//     tenant over its quota is shed with 429 and a Retry-After derived from
//     ITS OWN backlog and weighted share of the slot pool — other tenants'
//     queues do not inflate the estimate. The idle exception mirrors the
//     global one: a tenant with nothing in flight may hold one oversize
//     scenario.
//   - Weighted-fair queueing: evaluation slots are granted by a
//     virtual-clock discipline, not FIFO. Each arriving request is stamped
//     with a virtual finish time vf = max(vclock, tenant.vtime) + cost/weight
//     and waiters are served in vf order, so a tenant flooding the queue
//     only pushes its OWN virtual time forward — a light tenant's next
//     request slots in ahead of the flood's backlog instead of behind it.
//     Idle tenants re-enter at the current virtual clock (max(vclock, ·)),
//     so saving up credit by idling is impossible.

// HeaderTenant is the default tenant-identity header.
const HeaderTenant = "X-Tenant"

// DefaultTenant is the tenant charged when a request names none.
const DefaultTenant = "default"

// maxTenantNameLen bounds sanitized tenant names.
const maxTenantNameLen = 64

// TenantFrom extracts and sanitizes the request's tenant identity.
func TenantFrom(r *http.Request, header string) string {
	if header == "" {
		header = HeaderTenant
	}
	return SanitizeTenant(r.Header.Get(header))
}

// SanitizeTenant maps a raw tenant name onto [A-Za-z0-9._-], truncated to
// maxTenantNameLen; empty input becomes DefaultTenant. Sanitizing here means
// tenant names are always safe as log tokens and metric label values.
func SanitizeTenant(raw string) string {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return DefaultTenant
	}
	if len(raw) > maxTenantNameLen {
		raw = raw[:maxTenantNameLen]
	}
	var b strings.Builder
	b.Grow(len(raw))
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// tenantState is one tenant's admission bookkeeping; all fields are guarded
// by the owning admission's mutex.
type tenantState struct {
	name   string
	weight float64

	reserved int64 // cost units reserved (queued + running)
	requests int   // requests reserved (queued + running)
	vtime    float64

	accepted uint64
	shed     uint64
}

// waiter is one request waiting for an evaluation slot under the fair queue.
type waiter struct {
	ch      chan struct{} // closed on grant
	tenant  *tenantState
	vfinish float64
	granted bool
	index   int // heap position; -1 once popped or abandoned
}

// waiterHeap is a min-heap of waiters by virtual finish time. Ties break by
// insertion order through the monotone seq stamp, keeping grants stable.
type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].vfinish < h[j].vfinish }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x interface{}) { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.index = -1
	*h = old[:n-1]
	return w
}

// tenantFor resolves (creating on first use) a tenant's state. Caller holds
// ad.mu.
func (ad *admission) tenantFor(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	t := ad.tenants[name]
	if t == nil {
		w := 1.0
		if ad.weights != nil {
			if cw, ok := ad.weights[name]; ok && cw > 0 {
				w = cw
			}
		}
		t = &tenantState{name: name, weight: w}
		ad.tenants[name] = t
	}
	return t
}

// quotaFor is the tenant's reserved-cost ceiling: the configured per-tenant
// quota scaled by its weight. Caller holds ad.mu.
func (ad *admission) quotaFor(t *tenantState) int64 {
	q := ad.tenantQuota
	if q <= 0 {
		return ad.maxCost // quota disabled: only the global bound applies
	}
	scaled := int64(float64(q) * t.weight)
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}

// shedScope classifies why a reservation was refused.
type shedScope int

const (
	shedNone   shedScope = iota
	shedGlobal           // aggregate queue bound
	shedTenant           // the tenant's own quota
)

// reserveFor admits cost units for a tenant, or reports which bound refused
// them. Both the global and the per-tenant bound keep the idle exception: a
// request with nothing else (of its scope) in flight is always admitted, so
// a single scenario larger than a whole budget remains servable — just never
// behind other work.
func (ad *admission) reserveFor(tenant string, cost int64) (sc shedScope) {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	t := ad.tenantFor(tenant)
	if ad.requests > 0 && ad.reserved+cost > ad.maxCost {
		t.shed++
		return shedGlobal
	}
	if t.requests > 0 && t.reserved+cost > ad.quotaFor(t) {
		t.shed++
		return shedTenant
	}
	ad.reserved += cost
	ad.requests++
	t.reserved += cost
	t.requests++
	t.accepted++
	return shedNone
}

// releaseFor returns a tenant's reservation (after the terminal response).
func (ad *admission) releaseFor(tenant string, cost int64) {
	ad.mu.Lock()
	t := ad.tenantFor(tenant)
	ad.reserved -= cost
	ad.requests--
	t.reserved -= cost
	t.requests--
	ad.mu.Unlock()
}

// activeWeight sums the weights of tenants with reserved work. Caller holds
// ad.mu.
func (ad *admission) activeWeight() float64 {
	sum := 0.0
	for _, t := range ad.tenants {
		if t.requests > 0 {
			sum += t.weight
		}
	}
	if sum <= 0 {
		sum = 1
	}
	return sum
}

// retryAfterFor estimates how long a shed caller should wait before
// retrying. A global shed prices the whole backlog against the whole pool; a
// tenant shed prices only the TENANT's backlog against its weighted slot
// share, so a noisy neighbour's queue never inflates a well-behaved tenant's
// wait. Clamped to [1s, 60s] so the header is always actionable.
func (ad *admission) retryAfterFor(tenant string, sc shedScope) time.Duration {
	ad.mu.Lock()
	backlog, perUnit := ad.reserved, ad.perUnitEMA
	share := 1.0
	if sc == shedTenant {
		t := ad.tenantFor(tenant)
		backlog = t.reserved
		share = t.weight / ad.activeWeight()
		if share <= 0 || share > 1 {
			share = 1
		}
	}
	ad.mu.Unlock()
	d := time.Duration(float64(backlog) * perUnit / (float64(ad.slots) * share))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// TenantStatz is one tenant's row in /statz.
type TenantStatz struct {
	Tenant       string  `json:"tenant"`
	Weight       float64 `json:"weight"`
	QuotaCost    int64   `json:"quotaCost"`
	ReservedCost int64   `json:"reservedCost"`
	Requests     int     `json:"requests"`
	Accepted     uint64  `json:"accepted"`
	Shed         uint64  `json:"shed"`
}

// tenantStatz snapshots every tenant seen since startup, sorted by name.
func (ad *admission) tenantStatz() []TenantStatz {
	ad.mu.Lock()
	defer ad.mu.Unlock()
	if len(ad.tenants) == 0 {
		return nil
	}
	out := make([]TenantStatz, 0, len(ad.tenants))
	for _, t := range ad.tenants {
		out = append(out, TenantStatz{
			Tenant:       t.name,
			Weight:       t.weight,
			QuotaCost:    ad.quotaFor(t),
			ReservedCost: t.reserved,
			Requests:     t.requests,
			Accepted:     t.accepted,
			Shed:         t.shed,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// acquireFair waits for an evaluation slot under the weighted-fair
// discipline; ctx aborts the wait (deadline while queued, client gone, or
// drain cancellation).
func (ad *admission) acquireFair(ctx context.Context, tenant string, cost int64) error {
	ad.mu.Lock()
	t := ad.tenantFor(tenant)
	vf := t.vtime
	if ad.vclock > vf {
		vf = ad.vclock
	}
	w := t.weight
	if w <= 0 {
		w = 1
	}
	vf += float64(cost) / w
	t.vtime = vf
	if ad.running < ad.slots && ad.waiters.Len() == 0 {
		ad.running++
		if vf > ad.vclock {
			ad.vclock = vf
		}
		ad.mu.Unlock()
		return nil
	}
	wt := &waiter{ch: make(chan struct{}), tenant: t, vfinish: vf}
	heap.Push(&ad.waiters, wt)
	ad.mu.Unlock()

	select {
	case <-wt.ch:
		return nil
	case <-ctx.Done():
		ad.mu.Lock()
		if wt.granted {
			// Lost the race: a slot was granted while we were cancelling.
			// Hand it straight to the next waiter (or free it).
			ad.releaseSlotLocked()
			ad.mu.Unlock()
			return ctx.Err()
		}
		if wt.index >= 0 {
			heap.Remove(&ad.waiters, wt.index)
		}
		ad.mu.Unlock()
		return ctx.Err()
	}
}

// releaseSlotLocked frees one evaluation slot, passing it to the waiter with
// the lowest virtual finish time if any. Caller holds ad.mu.
func (ad *admission) releaseSlotLocked() {
	if ad.waiters.Len() > 0 {
		w := heap.Pop(&ad.waiters).(*waiter)
		w.granted = true
		if w.vfinish > ad.vclock {
			ad.vclock = w.vfinish
		}
		close(w.ch)
		return // the slot transfers; running is unchanged
	}
	ad.running--
}

// releaseSlot frees an evaluation slot.
func (ad *admission) releaseSlot() {
	ad.mu.Lock()
	ad.releaseSlotLocked()
	ad.mu.Unlock()
}
