package server

import (
	"encoding/json"
	"math"
	"net/http"
	"path/filepath"
	"testing"

	"fepia/internal/sched"
)

// sameSearchResult compares two completed search responses bit-exactly.
func sameSearchResult(t *testing.T, got, want SearchResponse) {
	t.Helper()
	if !slicesEqual(got.Best.Alloc, want.Best.Alloc) {
		t.Fatalf("best alloc: got %v, want %v", got.Best.Alloc, want.Best.Alloc)
	}
	if math.Float64bits(got.Best.Rho) != math.Float64bits(want.Best.Rho) {
		t.Fatalf("best rho bits: %v vs %v", got.Best.Rho, want.Best.Rho)
	}
	if math.Float64bits(got.Best.Makespan) != math.Float64bits(want.Best.Makespan) {
		t.Fatalf("best makespan bits: %v vs %v", got.Best.Makespan, want.Best.Makespan)
	}
	if got.Best.Feasible != want.Best.Feasible {
		t.Fatalf("feasible: %v vs %v", got.Best.Feasible, want.Best.Feasible)
	}
	if got.Generations != want.Generations || got.Candidates != want.Candidates ||
		got.EngineCandidates != want.EngineCandidates || got.RadiusEvals != want.RadiusEvals {
		t.Fatalf("counters: got gens=%d cands=%d engine=%d evals=%d, want gens=%d cands=%d engine=%d evals=%d",
			got.Generations, got.Candidates, got.EngineCandidates, got.RadiusEvals,
			want.Generations, want.Candidates, want.EngineCandidates, want.RadiusEvals)
	}
}

// TestSearchResumeAfterRestart is the worker-level crash/recovery flow: a
// search interrupted by its deadline leaves a checkpoint; a NEW server over
// the same state dir lists it resumable in /statz; resuming completes the
// run bit-identically to an uninterrupted control; the consumed checkpoint
// is gone afterwards.
func TestSearchResumeAfterRestart(t *testing.T) {
	inst := searchInstance(t, 48, 10, 7)
	req := SearchRequest{
		Instance:    inst,
		Tau:         1.5,
		Seed:        11,
		Population:  24,
		Generations: 400, // long enough that a 60ms deadline lands mid-run
		SearchID:    "crashme",
	}

	// Control: the same search, uninterrupted.
	_, control := newTestServer(t, Config{})
	resp, body := postJSON(t, control.URL+"/v1/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control = %d: %s", resp.StatusCode, body)
	}
	var want SearchResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if want.Partial {
		t.Fatal("control run was partial")
	}

	// Interrupt: run with a deadline that truncates the search. The
	// checkpoint of the last completed generation survives either outcome
	// (200 partial, or 504 when not even one generation fit).
	stateDir := t.TempDir()
	_, ts := newTestServer(t, Config{StateDir: stateDir})
	interrupted := false
	timeout := "60ms"
	for _, timeout = range []string{"60ms", "150ms", "400ms", "1s"} {
		r := req
		r.Timeout = timeout
		resp, body = postJSON(t, ts.URL+"/v1/search", r)
		if resp.StatusCode == http.StatusOK {
			var out SearchResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if !out.Partial {
				t.Skip("search completed inside the interrupt window; nothing to resume")
			}
			interrupted = true
			break
		}
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("interrupted run = %d: %s", resp.StatusCode, body)
		}
	}
	if !interrupted {
		t.Fatalf("no timeout in the ladder truncated the search (last %s)", timeout)
	}

	// "Crash" and restart: a fresh server over the same state dir.
	s2, ts2 := newTestServer(t, Config{StateDir: stateDir})
	if n := s2.LoadResumableSearches(); n != 1 {
		t.Fatalf("LoadResumableSearches = %d, want 1", n)
	}
	st := getStatz(t, ts2)
	found := false
	for _, row := range st.Searches {
		if row.ID == "crashme" {
			found = true
			if row.State != "resumable" {
				t.Fatalf("statz state = %q, want resumable", row.State)
			}
		}
	}
	if !found {
		t.Fatalf("no resumable row in /statz: %+v", st.Searches)
	}

	// Resume: bit-identical to the uninterrupted control. The stored request
	// kept the truncating deadline, so the resume must override Timeout (the
	// one field a resume request may change).
	resp, body = postJSON(t, ts2.URL+"/v1/search", SearchRequest{ResumeID: "crashme", Timeout: "2m"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume = %d: %s", resp.StatusCode, body)
	}
	var got SearchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Resumed {
		t.Fatal("resumed response not marked Resumed")
	}
	if got.Partial {
		t.Fatal("resumed run still partial")
	}
	sameSearchResult(t, got, want)

	// Clean completion consumed the checkpoint.
	resp, body = postJSON(t, ts2.URL+"/v1/search", SearchRequest{ResumeID: "crashme"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second resume = %d, want 404: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "resume-not-found" {
		t.Fatalf("kind = %q, want resume-not-found", er.Kind)
	}
}

func TestSearchResumeUnknownAndUnconfigured(t *testing.T) {
	// With a state dir: unknown id is 404 resume-not-found.
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	resp, body := postJSON(t, ts.URL+"/v1/search", SearchRequest{ResumeID: "never-saved"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown resume = %d: %s", resp.StatusCode, body)
	}

	// Without one: resume is also 404 (nothing could ever be loaded).
	_, ts2 := newTestServer(t, Config{})
	resp, body = postJSON(t, ts2.URL+"/v1/search", SearchRequest{ResumeID: "whatever"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unconfigured resume = %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "resume-not-found" {
		t.Fatalf("kind = %q, want resume-not-found", er.Kind)
	}
}

// TestSearchResumeMismatchRejected: a checkpoint whose state does not match
// its stored request (here: a forged options sum) is refused with 409
// resume-mismatch, not silently re-run.
func TestSearchResumeMismatchRejected(t *testing.T) {
	stateDir := t.TempDir()
	cs, err := OpenCheckpointStore(filepath.Join(stateDir, "searches"))
	if err != nil {
		t.Fatal(err)
	}
	req := SearchRequest{
		Instance:    searchInstance(t, 12, 4, 3),
		Tau:         1.5,
		Seed:        5,
		Population:  8,
		Generations: 4,
	}
	state := sched.Checkpoint{
		Algo:       sched.AlgoGA,
		Objective:  sched.ObjectiveMaxRho,
		OptionsSum: "bogus",
		Generation: 1,
	}
	if err := cs.Save("forged", CheckpointPayload{Request: req, State: state}); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{StateDir: stateDir})
	resp, body := postJSON(t, ts.URL+"/v1/search", SearchRequest{ResumeID: "forged"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("forged resume = %d, want 409: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "resume-mismatch" {
		t.Fatalf("kind = %q, want resume-mismatch", er.Kind)
	}
}
