package server

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fepia/internal/scenario"
)

// This file is the circuit breaker around the numeric level-set tier. The
// daemon classifies every request by the structural signature of its
// scenario (which numeric impact families it uses, how many P-space
// dimensions) and keeps one breaker per class:
//
//   - closed: requests evaluate normally (numeric tier, with the
//     Monte-Carlo degradation of observed numeric failures). Consecutive
//     failures — ErrNumeric/ErrImpactPanic outcomes, per-request deadline
//     blowouts, or results the numeric tier could only produce degraded —
//     count toward the trip threshold; any clean success resets the count.
//   - open: the numeric tier is skipped outright: requests evaluate with
//     EvalOptions.ForceDegraded (Monte-Carlo lower bounds, flagged
//     Degraded), keeping the class responsive at bounded cost while its
//     numeric path is presumed broken.
//   - half-open: once the backoff expires, exactly one request per class is
//     let through the numeric tier as a probe. Success closes the breaker;
//     failure re-opens it with doubled (jittered, capped) backoff.
//
// Cancellations caused by the client or by drain are neutral: they say
// nothing about the health of the tier.

// Breaker states.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breakerConfig tunes the breaker set; zero fields take defaults.
type breakerConfig struct {
	// threshold is the number of consecutive failures that trips a closed
	// breaker.
	threshold int
	// backoff is the initial open interval; each failed probe doubles it
	// up to maxBackoff. ±25% jitter decorrelates half-open probes of many
	// daemons sharing a faulty downstream.
	backoff    time.Duration
	maxBackoff time.Duration
	// now and rng are injectable for tests.
	now func() time.Time
	rng *rand.Rand
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.threshold <= 0 {
		c.threshold = 5
	}
	if c.backoff <= 0 {
		c.backoff = time.Second
	}
	if c.maxBackoff <= 0 {
		c.maxBackoff = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c
}

// breakerSet holds one breaker per scenario class.
type breakerSet struct {
	cfg breakerConfig

	mu    sync.Mutex
	m     map[string]*breaker
	trips uint64
}

type breaker struct {
	state   string
	consec  int           // consecutive failures while closed
	backoff time.Duration // current open interval
	until   time.Time     // when an open breaker becomes half-open
	probing bool          // a half-open probe is in flight
	trips   uint64        // times this class tripped closed → open
}

func newBreakerSet(cfg breakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker)}
}

// route decides how a request of the given class must be evaluated right
// now: forced to the degraded tier, or through the numeric tier — possibly
// as the class's half-open probe. It returns the state it decided under.
func (bs *breakerSet) route(class string) (forceDegraded, probe bool, state string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[class]
	if b == nil {
		b = &breaker{state: BreakerClosed}
		bs.m[class] = b
	}
	switch b.state {
	case BreakerOpen:
		if bs.cfg.now().Before(b.until) {
			return true, false, BreakerOpen
		}
		b.state = BreakerHalfOpen
		fallthrough
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return false, true, BreakerHalfOpen
		}
		return true, false, BreakerHalfOpen
	default:
		return false, false, BreakerClosed
	}
}

// record reports a request's terminal outcome back to its class's breaker.
// probe must be the flag route returned for this request; neutral outcomes
// (cancellation) must not be recorded at all.
func (bs *breakerSet) record(class string, probe, failed bool) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.m[class]
	if b == nil {
		return
	}
	if probe {
		b.probing = false
		if failed {
			bs.reopen(b)
		} else {
			b.state = BreakerClosed
			b.consec = 0
			b.backoff = 0
		}
		return
	}
	if b.state != BreakerClosed {
		// Forced-degraded traffic says nothing about the numeric tier.
		return
	}
	if !failed {
		b.consec = 0
		return
	}
	b.consec++
	if b.consec >= bs.cfg.threshold {
		bs.reopen(b)
		bs.trips++
		b.trips++
	}
}

// reopen (re-)trips b, doubling the backoff with ±25% jitter.
func (bs *breakerSet) reopen(b *breaker) {
	if b.backoff <= 0 {
		b.backoff = bs.cfg.backoff
	} else {
		b.backoff *= 2
		if b.backoff > bs.cfg.maxBackoff {
			b.backoff = bs.cfg.maxBackoff
		}
	}
	jittered := time.Duration(float64(b.backoff) * (0.75 + 0.5*bs.cfg.rng.Float64()))
	b.state = BreakerOpen
	b.consec = 0
	b.until = bs.cfg.now().Add(jittered)
}

// BreakerSnapshot is one class's state in /statz.
type BreakerSnapshot struct {
	Class               string `json:"class"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutiveFailures,omitempty"`
	ReopenInMs          int64  `json:"reopenInMs,omitempty"`
	// Trips counts how many times this class tripped closed → open (failed
	// half-open probes re-open without counting as new trips, matching the
	// daemon-wide breakerTrips counter).
	Trips uint64 `json:"trips,omitempty"`
}

// snapshot lists every known class, sorted for stable output, plus the
// total trip count.
func (bs *breakerSet) snapshot() ([]BreakerSnapshot, uint64) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	now := bs.cfg.now()
	out := make([]BreakerSnapshot, 0, len(bs.m))
	for class, b := range bs.m {
		s := BreakerSnapshot{Class: class, State: b.state, ConsecutiveFailures: b.consec, Trips: b.trips}
		if b.state == BreakerOpen {
			if d := b.until.Sub(now); d > 0 {
				s.ReopenInMs = d.Milliseconds()
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out, bs.trips
}

// Classify is the exported scenario-class key: the cluster coordinator uses
// the same classification as the daemon's circuit breaker for its
// consistent-hash placement, so repeated traffic for a class lands on the
// worker whose impact cache is already warm for it.
func Classify(doc scenario.AnalysisDoc, chaos bool) string { return classify(doc, chaos) }

// Breakers is the exported handle on a per-class breaker set. The cluster
// coordinator runs one for the requests it serves — scattered shards bypass
// the workers' own breakers (workers evaluate exactly what they are told),
// so the coordinator must make the degrade-don't-fail decision itself, with
// the same semantics as a single-node daemon.
type Breakers struct{ bs *breakerSet }

// NewBreakers builds a breaker set with the given trip threshold and
// backoff shape; zero values take the daemon defaults, seed 0 time-seeds
// the jitter stream.
func NewBreakers(threshold int, backoff, maxBackoff time.Duration, seed int64) *Breakers {
	cfg := breakerConfig{threshold: threshold, backoff: backoff, maxBackoff: maxBackoff}
	if seed != 0 {
		cfg.rng = rand.New(rand.NewSource(seed))
	}
	return &Breakers{bs: newBreakerSet(cfg)}
}

// Route decides how a request of the class must be evaluated right now; see
// breakerSet.route.
func (b *Breakers) Route(class string) (forceDegraded, probe bool, state string) {
	return b.bs.route(class)
}

// Record reports a request's terminal outcome; see breakerSet.record.
func (b *Breakers) Record(class string, probe, failed bool) { b.bs.record(class, probe, failed) }

// Snapshot lists every known class plus the total trip count.
func (b *Breakers) Snapshot() ([]BreakerSnapshot, uint64) { return b.bs.snapshot() }

// classify maps a scenario document to its breaker class: the distinct
// numeric impact families it uses (or "analytic" when every feature has a
// closed form), a power-of-two bucket of its total P-space dimension, and a
// "+chaos" marker when test-only fault injection decorates the request —
// chaos traffic must trip its own breakers, never production classes.
func classify(doc scenario.AnalysisDoc, chaos bool) string {
	fams := make(map[string]bool)
	for _, f := range doc.Features {
		if f.NumericTier() {
			fams[f.Impact] = true
		}
	}
	var parts []string
	for fam := range fams {
		parts = append(parts, fam)
	}
	sort.Strings(parts)
	name := "analytic"
	if len(parts) > 0 {
		name = strings.Join(parts, "+")
	}
	if chaos {
		name += "+chaos"
	}
	dim := 0
	for _, p := range doc.Params {
		dim += len(p.Orig)
	}
	bucket := 1
	for bucket < dim {
		bucket *= 2
	}
	return name + "/d" + strconv.Itoa(bucket)
}
