package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fepia/internal/core"
	"fepia/internal/delta"
	"fepia/internal/scenario"
)

// Live watches: the streaming half of the incremental re-evaluation
// subsystem (internal/delta computes *what* changed; this file keeps
// long-lived per-scenario state and streams *results* of those changes).
//
//   POST /v1/watch         opens (or resumes) a Server-Sent-Events stream
//   POST /v1/watch/update  applies new parameter origins to a watch
//   POST /v1/watch/close   tears a watch down and deletes its checkpoint
//
// A watch owns one scenario document and its latest per-feature radii.
// Each update is diffed against the current document (delta.Classify);
// only dirty features are re-searched (core.RobustnessDelta), seeded from
// the watch's warm-start registry — one registry shared across the whole
// update chain, keyed by the *ancestor* fingerprint, so state recorded at
// one operating point is replayed when the parameters wobble back.
// Admission prices an update by its dirty features only
// (estimateCostFeatures), so a small perturbation of a large scenario is
// admitted as the small evaluation it is.
//
// Determinism contract: event payloads carry no timestamps, request ids,
// or other nondeterminism, and every event is journaled in the watch's
// checkpoint — so a subscription resumed after a daemon restart (or a
// SIGKILL mid-stream) replays byte-identical frames. Updates to one watch
// are serialized (watch.mu); events are totally ordered by seq.
//
// Watch evaluations deliberately bypass the circuit breaker: like
// /v1/shard, an update is not an independent decision point — forcing a
// degraded Monte-Carlo result for one update would break the delta chain's
// bit-identity with a cold evaluation.

// WatchRequest is the body of POST /v1/watch. Scenario creates a new watch;
// a bare ID (re)subscribes to an existing one, replaying journaled events
// with seq > After before going live.
type WatchRequest struct {
	ID        string                `json:"id,omitempty"`
	Scenario  *scenario.AnalysisDoc `json:"scenario,omitempty"`
	Weighting string                `json:"weighting,omitempty"`
	Timeout   string                `json:"timeout,omitempty"` // initial evaluation budget
	After     uint64                `json:"after,omitempty"`
}

// WatchUpdateRequest is the body of POST /v1/watch/update: new ABSOLUTE
// parameter origins (not deltas), outer slice parallel to the scenario's
// params. Absolute origins make updates idempotent across client retries
// and daemon restarts.
type WatchUpdateRequest struct {
	Watch   string      `json:"watch"`
	Params  [][]float64 `json:"params"`
	Timeout string      `json:"timeout,omitempty"`
}

// WatchUpdateResponse is the success body of /v1/watch/update.
type WatchUpdateResponse struct {
	Watch      string         `json:"watch"`
	Seq        uint64         `json:"seq"`
	Structural bool           `json:"structural,omitempty"`
	Dirty      []int          `json:"dirty"`
	Clean      int            `json:"clean"`
	Robustness RobustnessJSON `json:"robustness"`
	RequestID  string         `json:"requestId,omitempty"`
	ElapsedMs  float64        `json:"elapsedMs"`
}

// WatchCloseRequest is the body of POST /v1/watch/close.
type WatchCloseRequest struct {
	Watch string `json:"watch"`
}

// watchEventJSON is the deterministic payload of one SSE event. Field
// set and order are part of the byte-identity contract — do not add
// request-scoped values here.
type watchEventJSON struct {
	Watch      string         `json:"watch"`
	Seq        uint64         `json:"seq"`
	Structural bool           `json:"structural,omitempty"`
	Dirty      []int          `json:"dirty,omitempty"`
	Robustness RobustnessJSON `json:"robustness"`
}

// watch is one live watch: current document, latest radii, the event
// journal, and the fan-out set. mu serializes updates and guards all
// mutable fields; the subscription channels decouple slow readers (a
// subscriber that falls subscriberBuf frames behind is dropped, counted,
// and must resume via After).
type watch struct {
	id         string
	tenant     string
	weighting  string
	ancestorFP string

	mu     sync.Mutex
	doc    scenario.AnalysisDoc
	a      *core.Analysis
	reg    *core.WarmRegistry
	radii  []core.Radius
	seq    uint64
	events []WatchEventRec
	subs   map[chan []byte]struct{}
	closed bool
}

// subscriberBuf is each subscriber's frame buffer; a reader further behind
// than this is dropped rather than allowed to stall updates.
const subscriberBuf = 256

// maxWatchIDLen bounds client-chosen watch ids (they appear in logs and
// hash into checkpoint file names).
const maxWatchIDLen = 128

// sseFrame renders one journaled event as its SSE wire frame. The format
// string is part of the byte-identity contract.
func sseFrame(rec WatchEventRec) []byte {
	return []byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", rec.Seq, rec.Type, rec.Data))
}

// appendEvent journals an event under w.mu and fans it out.
func (wt *watch) appendEvent(rec WatchEventRec, cap int, dropped *uint64) {
	wt.events = append(wt.events, rec)
	if cap > 0 && len(wt.events) > cap {
		wt.events = append(wt.events[:0:0], wt.events[len(wt.events)-cap:]...)
	}
	frame := sseFrame(rec)
	for ch := range wt.subs {
		select {
		case ch <- frame:
		default:
			delete(wt.subs, ch)
			close(ch)
			*dropped++
		}
	}
}

// closeSubs closes every subscription; the watch state itself survives
// (checkpointed) unless the caller also removes it from the tracker.
func (wt *watch) closeSubs() {
	wt.mu.Lock()
	defer wt.mu.Unlock()
	for ch := range wt.subs {
		close(ch)
	}
	wt.subs = make(map[chan []byte]struct{})
}

// watchTracker is the server's set of live watches with per-tenant
// occupancy, enforcing Config.MaxWatches / Config.MaxWatchesPerTenant at
// registration.
type watchTracker struct {
	mu        sync.Mutex
	m         map[string]*watch
	perTenant map[string]int
}

func newWatchTracker() *watchTracker {
	return &watchTracker{m: make(map[string]*watch), perTenant: make(map[string]int)}
}

func (t *watchTracker) get(id string) *watch {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[id]
}

var (
	errWatchExists = errors.New("watch id already exists")
	errWatchQuota  = errors.New("tenant watch quota exhausted")
	errWatchFull   = errors.New("watch capacity exhausted")
)

// register installs a watch, enforcing the global and per-tenant caps.
func (t *watchTracker) register(wt *watch, maxTotal, maxPerTenant int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[wt.id]; ok {
		return errWatchExists
	}
	if maxTotal > 0 && len(t.m) >= maxTotal {
		return errWatchFull
	}
	if maxPerTenant > 0 && t.perTenant[wt.tenant] >= maxPerTenant {
		return errWatchQuota
	}
	t.m[wt.id] = wt
	t.perTenant[wt.tenant]++
	return nil
}

// remove detaches a watch; the caller closes its subscriptions.
func (t *watchTracker) remove(id string) *watch {
	t.mu.Lock()
	defer t.mu.Unlock()
	wt := t.m[id]
	if wt == nil {
		return nil
	}
	delete(t.m, id)
	if n := t.perTenant[wt.tenant]; n <= 1 {
		delete(t.perTenant, wt.tenant)
	} else {
		t.perTenant[wt.tenant] = n - 1
	}
	return wt
}

// all snapshots the live watches.
func (t *watchTracker) all() []*watch {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*watch, 0, len(t.m))
	for _, wt := range t.m {
		out = append(out, wt)
	}
	return out
}

func (t *watchTracker) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// closeAllSubs ends every subscription stream (drain path). Watch state and
// checkpoints survive for post-restart resume.
func (t *watchTracker) closeAllSubs() {
	for _, wt := range t.all() {
		wt.closeSubs()
	}
}

// decorateWatchAnalysis prepares a (re)built watch analysis: impact cache
// plus the chain's shared warm-start registry.
func (s *Server) decorateWatchAnalysis(a *core.Analysis, reg *core.WarmRegistry) {
	s.enableImpactCache(a)
	a.EnableWarmStartWith(reg)
}

// watchRegistry resolves the warm registry for a watch chain: the server's
// fingerprint-keyed cache when available (so it participates in the
// drain-time persistence of warmdisk.go), else a private registry.
func (s *Server) watchRegistry(ancestorFP string) *core.WarmRegistry {
	if ancestorFP != "" && s.warmRegs != nil {
		return s.warmRegs.get(ancestorFP)
	}
	return core.NewWarmRegistry()
}

// checkpointWatch persists the watch's current state under its lock.
// Best-effort: a failed save costs restart resume, not the stream.
func (s *Server) checkpointWatch(wt *watch) {
	if s.wstore == nil {
		return
	}
	p := WatchPayload{
		ID:         wt.id,
		Tenant:     wt.tenant,
		Weighting:  wt.weighting,
		AncestorFP: wt.ancestorFP,
		Doc:        wt.doc,
		Seq:        wt.seq,
		Events:     wt.events,
	}
	p.Radii = make([]radiusWire, len(wt.radii))
	for i, r := range wt.radii {
		p.Radii[i] = radiusToWire(r)
	}
	if err := s.wstore.Save(p); err != nil {
		s.cfg.Logf("server: watch %s checkpoint: %v", wt.id, err)
	}
}

// resumeWatch rebuilds a watch from its checkpoint after a restart. The
// rebuilt analysis re-attaches the chain's warm registry (restored from
// disk by loadWarmRegistries when the daemon drained cleanly).
func (s *Server) resumeWatch(id string) (*watch, error) {
	if s.wstore == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoWatch, id)
	}
	p, err := s.wstore.Load(id)
	if err != nil {
		return nil, err
	}
	a, err := p.Doc.Build()
	if err != nil {
		return nil, fmt.Errorf("server: watch %s checkpoint no longer builds: %w", id, err)
	}
	reg := s.watchRegistry(p.AncestorFP)
	s.decorateWatchAnalysis(a, reg)
	wt := &watch{
		id:         p.ID,
		tenant:     p.Tenant,
		weighting:  p.Weighting,
		ancestorFP: p.AncestorFP,
		doc:        p.Doc,
		a:          a,
		reg:        reg,
		seq:        p.Seq,
		events:     p.Events,
		subs:       make(map[chan []byte]struct{}),
	}
	wt.radii = make([]core.Radius, len(p.Radii))
	for i, rw := range p.Radii {
		wt.radii[i] = radiusFromWire(rw)
	}
	if err := s.watches.register(wt, s.cfg.MaxWatches, s.cfg.MaxWatchesPerTenant); err != nil {
		if errors.Is(err, errWatchExists) {
			// Lost a resume race: use the winner.
			return s.watches.get(wt.id), nil
		}
		return nil, err
	}
	s.stats.watchResumed.Add(1)
	s.cfg.Logf("server: watch %s resumed from checkpoint at seq %d", id, p.Seq)
	return wt, nil
}

// findWatch resolves a watch id against the live set, falling back to the
// checkpoint store.
func (s *Server) findWatch(id string) (*watch, error) {
	if wt := s.watches.get(id); wt != nil {
		return wt, nil
	}
	return s.resumeWatch(id)
}

// writeWatchQuotaErr maps a tracker registration failure onto the admission
// vocabulary (429 + Retry-After, tenant-scoped when the tenant's own quota
// refused it).
func (s *Server) writeWatchQuotaErr(w http.ResponseWriter, r *http.Request, tenant string, err error) {
	rid := RequestIDFrom(r.Context())
	if errors.Is(err, errWatchExists) {
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: "watch id already exists (subscribe with {\"id\": ...} instead)", Kind: "watch-exists", RequestID: rid,
		})
		return
	}
	s.stats.shed.Add(1)
	er := ErrorResponse{
		Error:        "watch capacity exhausted",
		Kind:         "overloaded",
		RequestID:    rid,
		RetryAfterMs: 1000,
		Tenant:       tenant,
	}
	if errors.Is(err, errWatchQuota) {
		er.Error = "tenant " + tenant + " over its watch quota"
		er.Kind = "tenant-quota"
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set(s.cfg.TenantHeader, tenant)
	writeJSON(w, http.StatusTooManyRequests, er)
}

// handleWatch is POST /v1/watch: create a watch (Scenario present) or
// (re)subscribe to one (bare ID), then stream its events as SSE.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req WatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.ID) > maxWatchIDLen {
		s.badRequest(w, r, fmt.Errorf("watch id longer than %d bytes", maxWatchIDLen))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "streaming unsupported by transport", Kind: "internal", RequestID: rid})
		return
	}

	id := req.ID
	var wt *watch
	if id != "" {
		if got, err := s.findWatch(id); err == nil {
			wt = got
		} else if req.Scenario == nil {
			writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error(), Kind: "watch-not-found", RequestID: rid})
			return
		}
	}
	if wt == nil {
		if req.Scenario == nil {
			s.badRequest(w, r, errors.New("watch request needs a scenario (create) or an existing id (subscribe)"))
			return
		}
		if id == "" {
			id = rid
		}
		var err error
		wt, err = s.createWatch(w, r, id, req)
		if wt == nil {
			if err != nil {
				s.cfg.Logf("server: rid=%s watch create failed: %v", rid, err)
			}
			return // createWatch wrote the response
		}
	}

	// Subscribe: replay journaled events past After, then go live. The
	// replay snapshot and the registration happen under one lock so no
	// event is missed or duplicated between replay and live frames.
	wt.mu.Lock()
	if len(wt.events) > 0 && req.After+1 < wt.events[0].Seq {
		wt.mu.Unlock()
		writeJSON(w, http.StatusGone, ErrorResponse{
			Error:     fmt.Sprintf("events up to seq %d left the journal (requested after=%d)", wt.events[0].Seq-1, req.After),
			Kind:      "resume-horizon",
			RequestID: rid,
		})
		return
	}
	var replay [][]byte
	for _, rec := range wt.events {
		if rec.Seq > req.After {
			replay = append(replay, sseFrame(rec))
		}
	}
	if wt.closed {
		wt.mu.Unlock()
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "watch is closed", Kind: "watch-not-found", RequestID: rid})
		return
	}
	ch := make(chan []byte, subscriberBuf)
	wt.subs[ch] = struct{}{}
	wt.mu.Unlock()
	defer func() {
		wt.mu.Lock()
		if _, live := wt.subs[ch]; live {
			delete(wt.subs, ch)
			close(ch)
		}
		wt.mu.Unlock()
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, frame := range replay {
		if _, err := w.Write(frame); err != nil {
			return
		}
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.base.Done(): // drain: end the stream; the client resumes later
			return
		case frame, ok := <-ch:
			if !ok {
				return // dropped (lagging) or watch closed
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// createWatch runs the admission-gated initial evaluation and registers the
// watch. On failure it writes the HTTP response and returns nil.
func (s *Server) createWatch(w http.ResponseWriter, r *http.Request, id string, req WatchRequest) (*watch, error) {
	doc := *req.Scenario
	if err := doc.Validate(); err != nil {
		s.badRequest(w, r, err)
		return nil, nil
	}
	weighting, err := parseWeighting(req.Weighting)
	if err != nil {
		s.badRequest(w, r, err)
		return nil, nil
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return nil, nil
	}
	tenant := TenantFrom(r, s.cfg.TenantHeader)

	ctx, finish, ok := s.admit(w, r, estimateCost(doc), timeout)
	if !ok {
		return nil, nil
	}
	// The admission slot covers only the initial evaluation; the stream
	// itself holds no slot (it costs nothing but a goroutine and is ended
	// by drain via s.base).
	defer finish()

	// Stamp and fingerprint the way lookupScenario does, so the watch
	// chain's warm registry is shared with (and persisted alongside) the
	// plain evaluation path's registries.
	doc.Version = scenario.Version
	doc.Kind = "fepia"
	fp, _ := doc.Fingerprint()
	reg := s.watchRegistry(fp)
	a, err := doc.Build()
	if err != nil {
		s.badRequest(w, r, err)
		return nil, nil
	}
	s.decorateWatchAnalysis(a, reg)

	res, evalErr := a.RobustnessWith(ctx, weighting, s.evalOptions(false))
	if evalErr != nil {
		s.writeEvalError(w, r, evalErr)
		return nil, nil
	}

	wt := &watch{
		id:         id,
		tenant:     tenant,
		weighting:  weighting.Name(),
		ancestorFP: fp,
		doc:        doc,
		a:          a,
		reg:        reg,
		radii:      res.PerFeature,
		seq:        1,
		subs:       make(map[chan []byte]struct{}),
	}
	data, err := json.Marshal(watchEventJSON{Watch: id, Seq: 1, Robustness: robustnessJSON(a, res)})
	if err != nil {
		s.writeEvalError(w, r, err)
		return nil, nil
	}
	wt.events = []WatchEventRec{{Seq: 1, Type: "snapshot", Data: data}}

	if err := s.watches.register(wt, s.cfg.MaxWatches, s.cfg.MaxWatchesPerTenant); err != nil {
		if errors.Is(err, errWatchExists) {
			// Lost a create race for this id: subscribe to the winner.
			return s.watches.get(id), nil
		}
		s.writeWatchQuotaErr(w, r, tenant, err)
		return nil, nil
	}
	wt.mu.Lock()
	s.checkpointWatch(wt)
	wt.mu.Unlock()
	s.stats.watchCreated.Add(1)
	s.stats.watchEvents.Add(1)
	s.stats.completedOK.Add(1)
	s.cfg.Logf("server: rid=%s watch %s created (tenant=%s, %d features)", RequestIDFrom(r.Context()), id, tenant, len(doc.Features))
	return wt, nil
}

// handleWatchUpdate is POST /v1/watch/update.
func (s *Server) handleWatchUpdate(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req WatchUpdateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Watch == "" || len(req.Watch) > maxWatchIDLen {
		s.badRequest(w, r, errors.New("update needs a valid watch id"))
		return
	}
	timeout, err := s.requestTimeout(req.Timeout)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	wt, err := s.findWatch(req.Watch)
	if err != nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error(), Kind: "watch-not-found", RequestID: rid})
		return
	}

	// Pre-admission costing: classify against a snapshot of the current
	// document. The post-admission evaluation reclassifies under the watch
	// lock; a concurrent update in the gap only shifts the price estimate,
	// never correctness.
	wt.mu.Lock()
	curDoc := wt.doc
	wt.mu.Unlock()
	successor, err := delta.ApplyParams(curDoc, req.Params)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	preDiff := delta.Classify(curDoc, successor, wt.weighting)
	cost := estimateCostFeatures(successor, preDiff.Dirty)

	ctx, finish, ok := s.admit(w, r, cost, timeout)
	if !ok {
		return
	}
	defer finish()

	weighting, err := parseWeighting(wt.weighting)
	if err != nil {
		s.writeEvalError(w, r, err)
		return
	}

	wt.mu.Lock()
	defer wt.mu.Unlock()
	if wt.closed {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "watch is closed", Kind: "watch-not-found", RequestID: rid})
		return
	}
	successor, err = delta.ApplyParams(wt.doc, req.Params)
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	diff := delta.Classify(wt.doc, successor, wt.weighting)

	a2, err := successor.Build()
	if err != nil {
		s.badRequest(w, r, err)
		return
	}
	s.decorateWatchAnalysis(a2, wt.reg)

	start := time.Now()
	var res core.Robustness
	var evalErr error
	if diff.Structural {
		res, evalErr = a2.RobustnessWith(ctx, weighting, s.evalOptions(false))
	} else {
		res, evalErr = a2.RobustnessDelta(ctx, weighting, s.evalOptions(false), wt.radii, diff.Dirty)
	}
	elapsed := time.Since(start)
	if evalErr != nil {
		// No commit: the watch stays at its last good state, and the event
		// stream carries no partial update (chaos-killed updates must be
		// invisible).
		s.writeEvalError(w, r, evalErr)
		return
	}

	wt.doc = successor
	wt.a = a2
	wt.radii = res.PerFeature
	wt.seq++
	dirty := diff.Dirty
	if dirty == nil {
		dirty = []int{}
	}
	data, err := json.Marshal(watchEventJSON{
		Watch:      wt.id,
		Seq:        wt.seq,
		Structural: diff.Structural,
		Dirty:      dirty,
		Robustness: robustnessJSON(a2, res),
	})
	if err != nil {
		s.writeEvalError(w, r, err)
		return
	}
	var droppedSubs uint64
	wt.appendEvent(WatchEventRec{Seq: wt.seq, Type: "delta", Data: data}, s.cfg.WatchEventCap, &droppedSubs)
	s.checkpointWatch(wt)
	if droppedSubs > 0 {
		s.stats.watchLagDrops.Add(droppedSubs)
	}
	s.stats.watchUpdates.Add(1)
	if diff.Structural {
		s.stats.watchStructural.Add(1)
	}
	s.stats.watchEvents.Add(1)
	s.stats.watchDirtyFeatures.Add(uint64(len(diff.Dirty)))
	s.stats.watchCleanFeatures.Add(uint64(diff.CleanCount()))
	if res.Degraded {
		s.stats.completedDegr.Add(1)
	} else {
		s.stats.completedOK.Add(1)
	}
	s.cfg.Logf("server: rid=%s watch %s update seq=%d dirty=%d/%d structural=%v elapsed=%.1fms",
		rid, wt.id, wt.seq, len(diff.Dirty), len(wt.doc.Features), diff.Structural, float64(elapsed.Microseconds())/1000)
	writeJSON(w, http.StatusOK, WatchUpdateResponse{
		Watch:      wt.id,
		Seq:        wt.seq,
		Structural: diff.Structural,
		Dirty:      dirty,
		Clean:      diff.CleanCount(),
		Robustness: robustnessJSON(a2, res),
		RequestID:  rid,
		ElapsedMs:  float64(elapsed.Microseconds()) / 1000,
	})
}

// handleWatchClose is POST /v1/watch/close: end the streams, drop the live
// state, and delete the checkpoint.
func (s *Server) handleWatchClose(w http.ResponseWriter, r *http.Request) {
	rid := RequestIDFrom(r.Context())
	var req WatchCloseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.badRequest(w, r, fmt.Errorf("decoding request: %w", err))
		return
	}
	wt := s.watches.remove(req.Watch)
	if wt == nil {
		// Not live; a checkpoint may still exist (e.g. never resumed).
		if s.wstore != nil {
			if _, err := s.wstore.Load(req.Watch); err == nil {
				s.wstore.Delete(req.Watch)
				s.stats.watchClosed.Add(1)
				writeJSON(w, http.StatusOK, map[string]any{"watch": req.Watch, "closed": true, "requestId": rid})
				return
			}
		}
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown watch id", Kind: "watch-not-found", RequestID: rid})
		return
	}
	wt.mu.Lock()
	wt.closed = true
	for ch := range wt.subs {
		close(ch)
	}
	wt.subs = make(map[chan []byte]struct{})
	wt.mu.Unlock()
	if s.wstore != nil {
		s.wstore.Delete(req.Watch)
	}
	s.stats.watchClosed.Add(1)
	s.cfg.Logf("server: rid=%s watch %s closed", rid, req.Watch)
	writeJSON(w, http.StatusOK, map[string]any{"watch": req.Watch, "closed": true, "requestId": rid})
}

// WatchStatz is the live-watch section of /statz.
type WatchStatz struct {
	Active    int `json:"active"`
	Resumable int `json:"resumable,omitempty"`
	// Created / Resumed / Closed count watch lifecycle transitions.
	Created uint64 `json:"created"`
	Resumed uint64 `json:"resumed"`
	Closed  uint64 `json:"closed"`
	// Updates counts accepted /v1/watch/update calls; Structural the subset
	// that forced a full re-evaluation.
	Updates    uint64 `json:"updates"`
	Structural uint64 `json:"structural"`
	// Events counts journaled events; LagDrops subscriptions dropped for
	// falling behind.
	Events   uint64 `json:"events"`
	LagDrops uint64 `json:"lagDrops"`
	// DirtyFeatures / CleanFeatures sum the per-update diff outcome: clean
	// features are searches the delta path never ran.
	DirtyFeatures uint64 `json:"dirtyFeatures"`
	CleanFeatures uint64 `json:"cleanFeatures"`
	// Store reports the checkpoint files backing restart resume.
	Store *WatchStoreStats `json:"store,omitempty"`
}

// watchStatz snapshots the watch section; nil when watches have never been
// enabled (no tracker — cannot happen in practice, the tracker is always
// built).
func (s *Server) watchStatz() *WatchStatz {
	st := &WatchStatz{
		Active:        s.watches.count(),
		Created:       s.stats.watchCreated.Load(),
		Resumed:       s.stats.watchResumed.Load(),
		Closed:        s.stats.watchClosed.Load(),
		Updates:       s.stats.watchUpdates.Load(),
		Structural:    s.stats.watchStructural.Load(),
		Events:        s.stats.watchEvents.Load(),
		LagDrops:      s.stats.watchLagDrops.Load(),
		DirtyFeatures: s.stats.watchDirtyFeatures.Load(),
		CleanFeatures: s.stats.watchCleanFeatures.Load(),
	}
	if s.wstore != nil {
		stats := s.wstore.Stats()
		st.Store = &stats
		st.Resumable = len(s.wstore.List())
	}
	return st
}

// watchMetrics renders the fepiad_watch_* family into the exposition
// buffer.
func watchMetrics(p *PromBuf, st *WatchStatz) {
	if st == nil {
		return
	}
	p.Header("fepiad_watch_active", "gauge", "Live watches with in-memory state.")
	p.Metric("fepiad_watch_active", float64(st.Active))
	p.Header("fepiad_watch_created_total", "counter", "Watches created.")
	p.Metric("fepiad_watch_created_total", float64(st.Created))
	p.Header("fepiad_watch_resumed_total", "counter", "Watches resumed from checkpoints after a restart.")
	p.Metric("fepiad_watch_resumed_total", float64(st.Resumed))
	p.Header("fepiad_watch_closed_total", "counter", "Watches closed by clients.")
	p.Metric("fepiad_watch_closed_total", float64(st.Closed))
	p.Header("fepiad_watch_updates_total", "counter", "Accepted watch updates.")
	p.Metric("fepiad_watch_updates_total", float64(st.Updates))
	p.Header("fepiad_watch_structural_updates_total", "counter", "Updates that forced a full re-evaluation.")
	p.Metric("fepiad_watch_structural_updates_total", float64(st.Structural))
	p.Header("fepiad_watch_events_total", "counter", "Events journaled and fanned out.")
	p.Metric("fepiad_watch_events_total", float64(st.Events))
	p.Header("fepiad_watch_lag_drops_total", "counter", "Subscriptions dropped for lagging behind the stream.")
	p.Metric("fepiad_watch_lag_drops_total", float64(st.LagDrops))
	p.Header("fepiad_watch_dirty_features_total", "counter", "Features re-searched by delta updates.")
	p.Metric("fepiad_watch_dirty_features_total", float64(st.DirtyFeatures))
	p.Header("fepiad_watch_clean_features_total", "counter", "Features whose radii were reused without a search.")
	p.Metric("fepiad_watch_clean_features_total", float64(st.CleanFeatures))
	if st.Store != nil {
		p.Header("fepiad_watch_checkpoint_saves_total", "counter", "Watch checkpoints persisted.")
		p.Metric("fepiad_watch_checkpoint_saves_total", float64(st.Store.Saves))
		p.Header("fepiad_watch_checkpoint_save_errors_total", "counter", "Failed watch checkpoint writes.")
		p.Metric("fepiad_watch_checkpoint_save_errors_total", float64(st.Store.SaveErrors))
		p.Header("fepiad_watch_checkpoint_corrupt_skipped_total", "counter", "Corrupt watch checkpoints skipped and quarantined.")
		p.Metric("fepiad_watch_checkpoint_corrupt_skipped_total", float64(st.Store.CorruptSkipped))
		p.Header("fepiad_watch_resumable", "gauge", "Intact watch checkpoints on disk.")
		p.Metric("fepiad_watch_resumable", float64(st.Resumable))
	}
}
