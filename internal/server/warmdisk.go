package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fepia/internal/core"
	"fepia/internal/durable"
)

// Warm-registry persistence: the piece that carries warm-start state across
// scenario-store *reload generations*. The warmRegCache already keeps
// registries alive across in-process scenario-cache evictions; this file
// extends the carry across a daemon restart (or any store-reload cycle):
// Drain snapshots every fingerprint's registry into <StateDir>/warm, and
// WarmStart restores them before reloading the store, so the rebuilt
// analyses' first boundary searches replay recorded brackets and memoized
// scans instead of starting cold.
//
// The usual durability discipline applies (internal/durable): atomic
// writes, checksummed payloads, quarantine-not-fatal reads. And the usual
// warm-start safety net applies on top: restored states revalidate their
// identity bit-for-bit and their brackets against the live objective, so a
// stale snapshot — a scenario edited on disk, an engine change — costs a
// cold re-run, never a wrong radius.

const (
	warmRegKind    = "fepia-warm-registry"
	warmRegVersion = 1
	warmRegSuffix  = ".warm.json"
)

// warmRegEnvelope is the on-disk shape of one fingerprint's registry.
type warmRegEnvelope struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	// ID is the scenario fingerprint the registry belongs to.
	ID string `json:"id"`
	// Checksum is FNV-1a/64 of the raw Payload bytes, hex-encoded.
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// SaveWarmRegistries snapshots every cached warm-start registry to the
// state dir, one file per scenario fingerprint. Called by Drain; safe to
// call at any time (states checked out by in-flight searches are skipped
// inside the snapshot). Best-effort: a failed write costs the next
// restart's warm searches for that scenario, never the shutdown. Returns
// the number of registries persisted.
func (s *Server) SaveWarmRegistries() int {
	if s.warmRegDir == "" || s.warmRegs == nil {
		return 0
	}
	saved := 0
	for _, e := range s.warmRegs.snapshotRegs() {
		raw, err := e.reg.Snapshot()
		if err != nil {
			s.stats.warmRegSaveErrors.Add(1)
			s.cfg.Logf("server: warm registry snapshot %s: %v", e.key, err)
			continue
		}
		env := warmRegEnvelope{
			Kind:     warmRegKind,
			Version:  warmRegVersion,
			ID:       e.key,
			Checksum: durable.Checksum(raw),
			Payload:  raw,
		}
		data, err := json.Marshal(env)
		if err != nil {
			s.stats.warmRegSaveErrors.Add(1)
			s.cfg.Logf("server: warm registry envelope %s: %v", e.key, err)
			continue
		}
		path := filepath.Join(s.warmRegDir, e.key+warmRegSuffix)
		if err := durable.WriteFileAtomic(path, data, ".warm-*"); err != nil {
			s.stats.warmRegSaveErrors.Add(1)
			s.cfg.Logf("server: warm registry write %s: %v", e.key, err)
			continue
		}
		saved++
	}
	s.stats.warmRegSaved.Add(uint64(saved))
	if saved > 0 {
		s.cfg.Logf("server: persisted %d warm registr(ies)", saved)
	}
	return saved
}

// loadWarmRegistries restores persisted registries into the warm-registry
// cache. Called by WarmStart before the store reload, so the analyses it
// rebuilds attach their restored registries through the usual
// decorateCachedAnalysis path. Corrupt or mismatched files are quarantined
// (removed and counted) — they cost warm searches, never the start-up.
func (s *Server) loadWarmRegistries() (loaded, skipped int) {
	if s.warmRegDir == "" || s.warmRegs == nil {
		return 0, 0
	}
	entries, err := os.ReadDir(s.warmRegDir)
	if err != nil {
		return 0, 0
	}
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), warmRegSuffix) {
			continue
		}
		path := filepath.Join(s.warmRegDir, de.Name())
		reg, fp, err := decodeWarmRegFile(path)
		if err != nil {
			_ = os.Remove(path)
			skipped++
			s.cfg.Logf("server: warm registry file %s quarantined: %v", de.Name(), err)
			continue
		}
		if s.warmRegs.install(fp, reg) {
			loaded++
		}
	}
	s.stats.warmRegLoaded.Add(uint64(loaded))
	s.stats.warmRegSkipped.Add(uint64(skipped))
	if loaded+skipped > 0 {
		s.cfg.Logf("server: restored %d warm registr(ies), skipped %d", loaded, skipped)
	}
	return loaded, skipped
}

// decodeWarmRegFile verifies and decodes one registry file end to end.
func decodeWarmRegFile(path string) (*core.WarmRegistry, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var env warmRegEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, "", fmt.Errorf("envelope: %w", err)
	}
	if env.Kind != warmRegKind || env.Version != warmRegVersion {
		return nil, "", fmt.Errorf("kind/version %q/%d, want %q/%d", env.Kind, env.Version, warmRegKind, warmRegVersion)
	}
	if got := durable.Checksum(env.Payload); got != env.Checksum {
		return nil, "", fmt.Errorf("checksum %s, recorded %s", got, env.Checksum)
	}
	base := strings.TrimSuffix(filepath.Base(path), warmRegSuffix)
	if env.ID != base {
		return nil, "", fmt.Errorf("registry for %q found under %q's name", env.ID, base)
	}
	reg, err := core.RestoreWarmRegistry(env.Payload)
	if err != nil {
		return nil, "", err
	}
	return reg, env.ID, nil
}

// WarmRegStatz is the warm-registry persistence section of /statz; nil
// when no state dir is configured.
type WarmRegStatz struct {
	Dir string `json:"dir"`
	// Saved / SaveErrors count registries persisted (at drain) since
	// startup.
	Saved      uint64 `json:"saved"`
	SaveErrors uint64 `json:"saveErrors"`
	// Loaded / CorruptSkipped are the restore outcome: registries restored
	// into the cache at startup vs files quarantined as corrupt or
	// mismatched.
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
}

// warmRegStatz snapshots the warm-registry section.
func (s *Server) warmRegStatz() *WarmRegStatz {
	if s.warmRegDir == "" {
		return nil
	}
	return &WarmRegStatz{
		Dir:            s.warmRegDir,
		Saved:          s.stats.warmRegSaved.Load(),
		SaveErrors:     s.stats.warmRegSaveErrors.Load(),
		Loaded:         s.stats.warmRegLoaded.Load(),
		CorruptSkipped: s.stats.warmRegSkipped.Load(),
	}
}
