// Package server implements fepiad, the resilient robustness-evaluation
// daemon: an HTTP JSON service exposing the engine's single-kind, combined,
// and batch evaluations on top of the hardened Ctx/batch/cache tiers, built
// to stay correct and responsive when its inputs and environment misbehave.
//
// The resilience mechanisms, in request order:
//
//   - Admission control (admission.go): every request is costed from its
//     scenario size; a cost-bounded queue sheds excess load with 429 and a
//     backlog-derived Retry-After instead of queuing without bound.
//   - Deadlines: every request runs under a context deadline — its own
//     requested timeout clamped to a server maximum, or the server default —
//     threaded into the evaluation engine, which cancels within one
//     impact-function evaluation.
//   - Circuit breaking (breaker.go): consecutive numeric-tier failures for
//     a scenario class trip that class to the Monte-Carlo degraded tier
//     (EvalOptions.ForceDegraded) and recover through jittered-backoff
//     half-open probes.
//   - Graceful drain: BeginDrain flips /readyz to 503 and rejects new work;
//     Drain then waits for in-flight requests, cancelling them at the
//     deadline so every accepted request still gets a terminal response.
//
// /healthz, /readyz, and /statz expose liveness, readiness, and a counters
// snapshot (queue depth, shed count, breaker states, cache hit rate).
// docs/operations.md is the operator manual; docs/failure-semantics.md
// §server maps HTTP statuses to the engine's typed errors.
package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fepia/internal/core"
	"fepia/internal/scenario"
)

// Config tunes the daemon. The zero value serves with the defaults noted on
// each field.
type Config struct {
	// DefaultTimeout applies when a request names no timeout (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps any requested timeout (default 2m).
	MaxTimeout time.Duration
	// MaxConcurrent is the number of evaluation slots (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueueCost bounds the admission queue in cost units — estimated
	// impact evaluations of queued-plus-running work (default 1<<20).
	MaxQueueCost int64
	// TenantHeader names the header carrying the tenant identity (default
	// "X-Tenant"); requests without it are charged to the "default" tenant.
	TenantHeader string
	// TenantQuotaCost is the per-tenant reserved-cost ceiling at weight 1:
	// a tenant over quota is shed with 429 and a tenant-scoped Retry-After
	// even when the aggregate queue has room. 0 defaults to MaxQueueCost/4;
	// <0 disables per-tenant quotas (only the aggregate bound applies).
	TenantQuotaCost int64
	// TenantWeights sets per-tenant weights for the weighted-fair slot
	// queue and scales quotas; unlisted tenants weigh 1.
	TenantWeights map[string]float64
	// Workers is the per-evaluation worker-pool size handed to the engine
	// (default 1: concurrency comes from serving many requests).
	Workers int
	// DegradeSamples is the Monte-Carlo fallback's sampling budget per
	// bisection round (default 256; tests shrink it).
	DegradeSamples int
	// CacheCap enables the per-analysis impact cache: >0 sets the entry
	// capacity, 0 uses the engine default, <0 disables caching.
	CacheCap int
	// CacheShards overrides the impact cache's shard count (rounded up to a
	// power of two by the engine). 0 lets the engine derive it from
	// GOMAXPROCS; raise it if /statz cacheShards shows contended shards on
	// wide machines. Ignored when CacheCap < 0.
	CacheShards int
	// ScenarioCacheCap enables the cross-request scenario cache: >0 keeps
	// that many built analyses — with their warm impact caches — in an LRU
	// keyed by scenario fingerprint, so repeated traffic for a scenario
	// skips the rebuild and starts cache-warm. 0 (the default) disables it;
	// see scache.go for the bit-stability trade-off. Chaos-decorated
	// requests always bypass it.
	ScenarioCacheCap int
	// StoreDir enables the persistent scenario store: every scenario the
	// cache builds is also written (content-addressed by fingerprint,
	// atomic + checksummed) under this directory, and WarmStart reloads it
	// after a restart so the scenario cache starts warm instead of cold.
	// Requires ScenarioCacheCap > 0 to have any effect; empty disables
	// persistence. Corrupt store files are skipped and rebuilt from
	// traffic, never fatal.
	StoreDir string
	// StoreMaxBytes bounds the persistent scenario store's on-disk
	// footprint: after every write the least-recently-accessed unpinned
	// entries are evicted until the store fits (fepiad_store_evictions_total
	// counts them). Entries pinned by a running search are never evicted.
	// ≤ 0 (the default) leaves the store unbounded.
	StoreMaxBytes int64
	// StateDir enables search checkpointing: every completed generation of
	// a /v1/search run is persisted (atomic + checksummed) under
	// <StateDir>/searches, surviving checkpoints appear as "resumable" rows
	// in /statz after a restart (call LoadResumableSearches), and a request
	// with resumeId continues the run bit-identically. Empty disables
	// checkpointing. Corrupt checkpoint files are quarantined, never fatal.
	StateDir string
	// MaxWatches bounds the live watches the daemon keeps in memory
	// (default 64; <0 disables the bound).
	MaxWatches int
	// MaxWatchesPerTenant bounds one tenant's live watches (default 8;
	// <0 disables the per-tenant bound). Over-quota creates are shed with
	// 429 kind "tenant-quota", mirroring admission.
	MaxWatchesPerTenant int
	// WatchEventCap bounds each watch's in-memory (and checkpointed) event
	// journal; a subscriber resuming from before the journal's horizon gets
	// 410 and must re-create its view (default 1024; <0 unbounded).
	WatchEventCap int
	// BreakerThreshold is the consecutive-failure count that trips a
	// class's breaker (default 5).
	BreakerThreshold int
	// BreakerBackoff / BreakerMaxBackoff shape the open interval: it
	// starts at BreakerBackoff (default 1s) and doubles per failed probe
	// up to BreakerMaxBackoff (default 2m), ±25% jitter.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// BreakerSeed seeds the jitter stream (0 = time-seeded).
	BreakerSeed int64
	// DrainGrace is how long Drain keeps waiting after cancelling
	// in-flight work at its deadline (default 5s).
	DrainGrace time.Duration
	// EnableChaos accepts test-only fault-injection decorations on
	// requests (see docs/operations.md §chaos). Never enable in
	// production: it lets callers inject panics and latency.
	EnableChaos bool
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueueCost <= 0 {
		c.MaxQueueCost = 1 << 20
	}
	if c.TenantHeader == "" {
		c.TenantHeader = HeaderTenant
	}
	if c.TenantQuotaCost == 0 {
		c.TenantQuotaCost = c.MaxQueueCost / 4
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.MaxWatches == 0 {
		c.MaxWatches = 64
	}
	if c.MaxWatchesPerTenant == 0 {
		c.MaxWatchesPerTenant = 8
	}
	if c.WatchEventCap == 0 {
		c.WatchEventCap = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the daemon's request-independent state. Create with New, mount
// Handler on an http.Server, and call Drain on shutdown.
type Server struct {
	cfg      Config
	adm      *admission
	brk      *breakerSet
	scache   *scenarioCache
	store    *scenario.Store  // nil unless Config.StoreDir is set and opened
	warmRegs *warmRegCache    // warm-start registries that outlive scache evictions
	searches *SearchTracker   // allocation-search progress for /statz
	ckpts    *CheckpointStore // nil unless Config.StateDir is set and opened
	watches  *watchTracker    // live watch subscriptions (watch.go)
	wstore   *watchStore      // nil unless Config.StateDir is set and opened

	// warmRegDir persists warm-start registries across restarts (see
	// warmdisk.go); empty unless Config.StateDir is set and usable.
	warmRegDir string

	// Warm-start outcome (set once by WarmStart, read by /statz).
	warmLoaded  atomic.Int64
	warmSkipped atomic.Int64

	// Per-class impact-cache counters for /statz (classMu guards the map;
	// classes are few — one per structural scenario signature).
	classMu    sync.Mutex
	classCache map[string]*classCacheCounters

	// base is cancelled at the drain deadline to abort in-flight work; all
	// request contexts are tied to it.
	base       context.Context
	baseCancel context.CancelFunc

	// In-flight accounting for drain. draining also gates admission.
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{}
	idleOnce sync.Once

	start time.Time
	stats serverStats
}

// serverStats are the daemon's monotonic counters, all atomics: they are
// bumped from request goroutines and read by /statz without locks.
type serverStats struct {
	accepted         atomic.Uint64 // requests admitted past the queue bound
	shed             atomic.Uint64 // 429s from admission control
	rejectedDraining atomic.Uint64 // 503s because drain had begun
	badRequests      atomic.Uint64 // 400s (malformed/invalid scenarios)
	completedOK      atomic.Uint64 // 200s with certified (non-degraded) results
	completedDegr    atomic.Uint64 // 200s with at least one degraded radius
	errDeadline      atomic.Uint64 // 504s
	errCancelled     atomic.Uint64 // 503s (drain/client cancellation mid-flight)
	errInternal      atomic.Uint64 // 500s (panic/numeric/unexpected)

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	// Scenario-cache lookups (distinct from the impact-cache counters
	// above): a hit reuses a built analysis, a warm hit reuses one the
	// store warm-started after a restart.
	scenarioHits   atomic.Uint64
	scenarioMisses atomic.Uint64
	storeWarmHits  atomic.Uint64

	// Warm-registry persistence outcomes (see warmdisk.go).
	warmRegSaved      atomic.Uint64
	warmRegSaveErrors atomic.Uint64
	warmRegLoaded     atomic.Uint64
	warmRegSkipped    atomic.Uint64

	// Live-watch lifecycle and delta outcomes (see watch.go).
	watchCreated       atomic.Uint64
	watchResumed       atomic.Uint64
	watchClosed        atomic.Uint64
	watchUpdates       atomic.Uint64
	watchStructural    atomic.Uint64
	watchEvents        atomic.Uint64
	watchLagDrops      atomic.Uint64
	watchDirtyFeatures atomic.Uint64
	watchCleanFeatures atomic.Uint64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	bcfg := breakerConfig{
		threshold:  cfg.BreakerThreshold,
		backoff:    cfg.BreakerBackoff,
		maxBackoff: cfg.BreakerMaxBackoff,
	}
	if cfg.BreakerSeed != 0 {
		bcfg.rng = rand.New(rand.NewSource(cfg.BreakerSeed))
	}
	adm := newAdmission(cfg.MaxConcurrent, cfg.MaxQueueCost)
	if cfg.TenantQuotaCost > 0 {
		adm.tenantQuota = cfg.TenantQuotaCost
	}
	adm.weights = cfg.TenantWeights
	s := &Server{
		cfg:        cfg,
		adm:        adm,
		brk:        newBreakerSet(bcfg),
		scache:     newScenarioCache(cfg.ScenarioCacheCap),
		warmRegs:   newWarmRegCache(4 * cfg.ScenarioCacheCap),
		searches:   NewSearchTracker(64),
		watches:    newWatchTracker(),
		classCache: make(map[string]*classCacheCounters),
		base:       base,
		baseCancel: cancel,
		idle:       make(chan struct{}),
		start:      time.Now(),
	}
	if cfg.StoreDir != "" {
		st, err := scenario.OpenStore(cfg.StoreDir)
		if err != nil {
			// Persistence is best-effort: a store that cannot open costs the
			// warm start, never the daemon.
			cfg.Logf("server: scenario store disabled: %v", err)
		} else {
			s.store = st
			if cfg.StoreMaxBytes > 0 {
				st.SetMaxBytes(cfg.StoreMaxBytes)
			}
		}
	}
	if cfg.StateDir != "" {
		cs, err := OpenCheckpointStore(filepath.Join(cfg.StateDir, "searches"))
		if err != nil {
			// Same best-effort stance: losing checkpointing costs resume,
			// never the daemon.
			cfg.Logf("server: search checkpointing disabled: %v", err)
		} else {
			s.ckpts = cs
		}
		wdir := filepath.Join(cfg.StateDir, "warm")
		if err := os.MkdirAll(wdir, 0o755); err != nil {
			cfg.Logf("server: warm registry persistence disabled: %v", err)
		} else {
			s.warmRegDir = wdir
		}
		ws, err := openWatchStore(filepath.Join(cfg.StateDir, "watches"))
		if err != nil {
			cfg.Logf("server: watch checkpointing disabled: %v", err)
		} else {
			s.wstore = ws
		}
	}
	return s
}

// LoadResumableSearches publishes every intact on-disk checkpoint as a
// "resumable" /statz row, so a restarted daemon advertises what a client
// can pass as resumeId. Call it once, before serving. Returns the count.
func (s *Server) LoadResumableSearches() int {
	if s.ckpts == nil {
		return 0
	}
	recs := s.ckpts.List()
	for _, rec := range recs {
		s.searches.Update(rec.ResumableRow())
	}
	if len(recs) > 0 {
		s.cfg.Logf("server: %d resumable search(es) on disk", len(recs))
	}
	return len(recs)
}

// WarmStart reloads the persistent scenario store into the scenario cache,
// so the first post-restart request for a known scenario is served from a
// built analysis instead of a cold rebuild. Call it once, before serving.
// Corrupt store files are skipped (and quarantined for rebuild); a document
// that no longer builds under the current engine is skipped too. Returns
// (loaded, skipped).
func (s *Server) WarmStart() (loaded, skipped int) {
	// Restore persisted warm-start registries first: the analyses rebuilt
	// below re-attach them through decorateCachedAnalysis, so their first
	// boundary searches replay the previous process's recorded state.
	s.loadWarmRegistries()
	if s.store == nil || s.scache == nil {
		return 0, 0
	}
	rep, err := s.store.Load(func(fp string, doc scenario.AnalysisDoc) bool {
		a, err := doc.Build()
		if err != nil {
			skipped++
			return true
		}
		s.decorateCachedAnalysis(fp, a)
		s.scache.put(fp, a, true)
		loaded++
		return loaded < s.cfg.ScenarioCacheCap
	})
	if err != nil {
		s.cfg.Logf("server: warm start aborted: %v", err)
	}
	skipped += rep.Skipped
	s.warmLoaded.Store(int64(loaded))
	s.warmSkipped.Store(int64(skipped))
	s.cfg.Logf("server: warm start loaded %d scenario(s), skipped %d", loaded, skipped)
	return loaded, skipped
}

// enableImpactCache decorates a freshly built analysis with the sharded
// impact cache per Config.CacheCap / Config.CacheShards; a no-op when
// caching is disabled.
func (s *Server) enableImpactCache(a *core.Analysis) {
	if s.cfg.CacheCap < 0 {
		return
	}
	a.EnableImpactCacheWith(core.CacheOptions{
		Capacity: s.cfg.CacheCap,
		Shards:   s.cfg.CacheShards,
	})
}

// decorateCachedAnalysis prepares an analysis that will live in the
// scenario cache and serve repeat traffic: the sharded impact cache plus
// warm-started boundary searches (bit-exact replay of the previous
// search's trajectory — see docs/performance.md). One-shot analyses (the
// handlers' fresh-build fallback) get only the impact cache: warm state
// there would be recorded and never reused.
//
// The warm-start registry is keyed by the scenario fingerprint and owned by
// the server, not the analysis: when a scenario-cache eviction later forces
// a rebuild of the same document, the rebuilt analysis re-attaches the
// registry and its boundary searches start warm instead of cold (warm
// states self-validate bit-for-bit, so a stale registry only ever costs a
// cold re-run). An empty fingerprint (un-fingerprintable document) falls
// back to a private registry.
func (s *Server) decorateCachedAnalysis(fp string, a *core.Analysis) {
	s.enableImpactCache(a)
	if fp == "" || s.warmRegs == nil {
		a.EnableWarmStart()
		return
	}
	a.EnableWarmStartWith(s.warmRegs.get(fp))
}

// Handler mounts the daemon's routes behind the request-ID middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/robustness", s.handleRobustness)
	mux.HandleFunc("POST /v1/radius", s.handleRadius)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/shard", s.handleShard)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/watch", s.handleWatch)
	mux.HandleFunc("POST /v1/watch/update", s.handleWatchUpdate)
	mux.HandleFunc("POST /v1/watch/close", s.handleWatchClose)
	return WithRequestID(mux)
}

// enter registers an accepted request for drain accounting; it fails once
// draining has begun. The returned func must run exactly once, after the
// request's terminal response.
func (s *Server) enter() (func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false
	}
	s.inflight++
	return func() {
		s.mu.Lock()
		s.inflight--
		signal := s.draining && s.inflight == 0
		s.mu.Unlock()
		if signal {
			s.signalIdle()
		}
	}, true
}

func (s *Server) signalIdle() { s.idleOnce.Do(func() { close(s.idle) }) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// BeginDrain stops admission: /readyz turns 503 and every new evaluation
// request is rejected with 503. In-flight requests continue.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	idle := s.inflight == 0
	s.mu.Unlock()
	if !already {
		s.cfg.Logf("server: drain started")
		// End every watch stream: subscriptions hold no admission slot, so
		// drain would otherwise never see them. Watch state was checkpointed
		// at its last update; clients resume byte-identically after restart.
		s.watches.closeAllSubs()
	}
	if idle {
		s.signalIdle()
	}
}

// Drain performs the graceful shutdown sequence: stop accepting, wait for
// in-flight requests to reach their terminal responses, and — if ctx
// expires first — cancel them (they abort within one impact evaluation and
// still respond, with 503) and keep waiting up to DrainGrace. A nil error
// means every accepted request got its terminal response.
func (s *Server) Drain(ctx context.Context) error {
	// Persist warm-start state whatever the drain outcome: states checked
	// out by still-running searches are skipped inside the snapshot, so
	// saving is safe even if the wait below times out.
	defer s.SaveWarmRegistries()
	s.BeginDrain()
	select {
	case <-s.idle:
		s.cfg.Logf("server: drain complete (all in-flight requests finished)")
		return nil
	case <-ctx.Done():
	}
	s.cfg.Logf("server: drain deadline reached, cancelling in-flight work")
	s.baseCancel()
	select {
	case <-s.idle:
		s.cfg.Logf("server: drain complete (in-flight work cancelled)")
		return nil
	case <-time.After(s.cfg.DrainGrace):
		s.mu.Lock()
		n := s.inflight
		s.mu.Unlock()
		return fmt.Errorf("server: %d request(s) still in flight %v after drain cancellation", n, s.cfg.DrainGrace)
	}
}

// classCacheCounters are one class's impact-cache counters for /statz.
type classCacheCounters struct{ hits, misses uint64 }

// reportCache charges one request's impact-cache activity to the daemon-wide
// aggregate and to its scenario class. For analyses shared through the
// scenario cache, only the growth since the entry's last report is charged
// (the entry's delta watermark); fresh per-request analyses report their
// whole counters.
func (s *Server) reportCache(class string, a *core.Analysis, e *scacheEntry) {
	var st core.CacheStats
	if e != nil {
		st = e.delta()
	} else {
		st = a.CacheStats()
	}
	s.stats.cacheHits.Add(st.Hits)
	s.stats.cacheMisses.Add(st.Misses)
	if class == "" {
		return
	}
	s.classMu.Lock()
	c := s.classCache[class]
	if c == nil {
		c = &classCacheCounters{}
		s.classCache[class] = c
	}
	c.hits += st.Hits
	c.misses += st.Misses
	s.classMu.Unlock()
}

// Statz is the /statz document.
type Statz struct {
	UptimeMs int64 `json:"uptimeMs"`
	Draining bool  `json:"draining"`

	Inflight     int   `json:"inflight"`     // accepted, not yet responded
	Running      int   `json:"running"`      // holding an evaluation slot
	QueuedCost   int64 `json:"queuedCost"`   // reserved cost units
	MaxQueueCost int64 `json:"maxQueueCost"` //
	Slots        int   `json:"slots"`        // evaluation slot count

	Accepted         uint64 `json:"accepted"`
	Shed             uint64 `json:"shed"`
	RejectedDraining uint64 `json:"rejectedDraining"`
	BadRequests      uint64 `json:"badRequests"`
	CompletedOK      uint64 `json:"completedOk"`
	CompletedDegr    uint64 `json:"completedDegraded"`
	ErrDeadline      uint64 `json:"deadlineExceeded"`
	ErrCancelled     uint64 `json:"cancelled"`
	ErrInternal      uint64 `json:"internalErrors"`

	BreakerTrips uint64            `json:"breakerTrips"`
	Breakers     []BreakerSnapshot `json:"breakers"`

	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`

	// CacheShards breaks the impact-cache counters down per shard,
	// aggregated across the scenario cache's long-lived analyses (the only
	// ones whose caches outlive a request). A shard whose hit rate trails
	// the others signals probe-key skew — see docs/operations.md
	// §performance troubleshooting. Omitted when the scenario cache is
	// empty or disabled.
	CacheShards []ShardStatz `json:"cacheShards,omitempty"`

	// Tenants breaks admission down per tenant (weight, quota, reserved
	// backlog, accepted/shed counts), sorted by tenant name.
	Tenants []TenantStatz `json:"tenants,omitempty"`

	// Store reports the persistent scenario store, when configured.
	Store *StoreStatz `json:"store,omitempty"`

	// Checkpoints reports the search checkpoint store, when a state dir is
	// configured.
	Checkpoints *CheckpointStatz `json:"checkpoints,omitempty"`

	// WarmRegistries reports warm-registry persistence (save at drain,
	// restore at warm start), when a state dir is configured.
	WarmRegistries *WarmRegStatz `json:"warmRegistries,omitempty"`

	// Watches reports the live-watch subsystem (subscriptions, delta
	// updates, checkpoint store).
	Watches *WatchStatz `json:"watches,omitempty"`

	// Classes breaks the cache and breaker counters down per scenario class
	// (the same classification the breaker and the cluster coordinator key
	// on), sorted by class name.
	Classes []ClassStatz `json:"classes,omitempty"`

	// Searches lists recent and in-flight allocation searches (bounded,
	// oldest evicted). A deadline-truncated search's row carries the
	// partial best allocation, which a client can pass back as the next
	// request's resume field.
	Searches []SearchStatz `json:"searches,omitempty"`
}

// StoreStatz is the persistent scenario store's section of /statz.
type StoreStatz struct {
	Dir string `json:"dir"`
	// Puts / PutErrors count persistence writes since startup.
	Puts      uint64 `json:"puts"`
	PutErrors uint64 `json:"putErrors"`
	// WarmLoaded / WarmSkipped are the WarmStart outcome: documents loaded
	// into the scenario cache at startup vs files skipped as corrupt,
	// truncated, or unbuildable.
	WarmLoaded  int64 `json:"warmLoaded"`
	WarmSkipped int64 `json:"warmSkipped"`
	// CorruptSkipped counts store files refused (and quarantined) since
	// startup, warm start included.
	CorruptSkipped uint64 `json:"corruptSkipped"`
	// WarmHits counts scenario-cache hits served by warm-started entries;
	// HitRate is WarmHits over all scenario-cache lookups (0 until there
	// have been lookups).
	WarmHits uint64  `json:"warmHits"`
	HitRate  float64 `json:"hitRate"`
	// Evictions counts entries removed by the size bound's LRU sweep
	// (Config.StoreMaxBytes); SizeBytes is the current indexed footprint.
	Evictions uint64 `json:"evictions"`
	SizeBytes int64  `json:"sizeBytes"`
}

// storeStatz snapshots the store section; nil when no store is configured.
func (s *Server) storeStatz() *StoreStatz {
	if s.store == nil {
		return nil
	}
	st := s.store.Stats()
	lookups := s.stats.scenarioHits.Load() + s.stats.scenarioMisses.Load()
	warmHits := s.stats.storeWarmHits.Load()
	return &StoreStatz{
		Dir:            s.store.Dir(),
		Puts:           st.Puts,
		PutErrors:      st.PutErrors,
		WarmLoaded:     s.warmLoaded.Load(),
		WarmSkipped:    s.warmSkipped.Load(),
		CorruptSkipped: st.CorruptSkipped,
		WarmHits:       warmHits,
		HitRate:        safeRate(warmHits, lookups),
		Evictions:      st.Evictions,
		SizeBytes:      s.store.SizeBytes(),
	}
}

// ShardStatz is one impact-cache shard's row in /statz: absolute counters
// summed index-wise over the scenario cache's analyses. Absolute, not
// deltas: shard rows diagnose imbalance, and the per-class delta accounting
// (reportCache) stays the source of request-attributed rates.
type ShardStatz struct {
	Shard     int     `json:"shard"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Stores    uint64  `json:"stores"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRate   float64 `json:"hitRate"`
}

// cacheShardStatz aggregates per-shard impact-cache counters across the
// scenario cache's entries. Analyses built under one Config share a shard
// count, so index-wise summation lines up; nil when there is nothing to
// report.
func (s *Server) cacheShardStatz() []ShardStatz {
	if s.scache == nil {
		return nil
	}
	var rows []ShardStatz
	for _, e := range s.scache.entries() {
		for i, sh := range e.a.CacheShardStats() {
			if i >= len(rows) {
				rows = append(rows, ShardStatz{Shard: i})
			}
			rows[i].Hits += sh.Hits
			rows[i].Misses += sh.Misses
			rows[i].Stores += sh.Stores
			rows[i].Evictions += sh.Evictions
			rows[i].Entries += sh.Entries
		}
	}
	for i := range rows {
		rows[i].HitRate = safeRate(rows[i].Hits, rows[i].Hits+rows[i].Misses)
	}
	return rows
}

// ClassStatz is one scenario class's row in /statz: its impact-cache hit
// rate and its circuit-breaker history.
type ClassStatz struct {
	Class        string  `json:"class"`
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	BreakerState string  `json:"breakerState,omitempty"`
	BreakerTrips uint64  `json:"breakerTrips,omitempty"`
}

// statz assembles the snapshot.
func (s *Server) statz() Statz {
	_, running, cost := s.adm.depths()
	breakers, trips := s.brk.snapshot()
	s.mu.Lock()
	inflight, draining := s.inflight, s.draining
	s.mu.Unlock()
	st := Statz{
		UptimeMs:         time.Since(s.start).Milliseconds(),
		Draining:         draining,
		Inflight:         inflight,
		Running:          running,
		QueuedCost:       cost,
		MaxQueueCost:     s.cfg.MaxQueueCost,
		Slots:            s.adm.slots,
		Accepted:         s.stats.accepted.Load(),
		Shed:             s.stats.shed.Load(),
		RejectedDraining: s.stats.rejectedDraining.Load(),
		BadRequests:      s.stats.badRequests.Load(),
		CompletedOK:      s.stats.completedOK.Load(),
		CompletedDegr:    s.stats.completedDegr.Load(),
		ErrDeadline:      s.stats.errDeadline.Load(),
		ErrCancelled:     s.stats.errCancelled.Load(),
		ErrInternal:      s.stats.errInternal.Load(),
		BreakerTrips:     trips,
		Breakers:         breakers,
		CacheHits:        s.stats.cacheHits.Load(),
		CacheMisses:      s.stats.cacheMisses.Load(),
	}
	st.CacheHitRate = safeRate(st.CacheHits, st.CacheHits+st.CacheMisses)
	st.CacheShards = s.cacheShardStatz()
	st.Tenants = s.adm.tenantStatz()
	st.Store = s.storeStatz()
	st.Checkpoints = checkpointStatz(s.ckpts)
	st.WarmRegistries = s.warmRegStatz()
	st.Watches = s.watchStatz()
	st.Classes = s.classStatz(breakers)
	st.Searches = s.searches.Snapshot()
	return st
}

// safeRate is hits/total guarded against the zero-lookup case: JSON cannot
// carry NaN/Inf (encoding/json errors out and the whole /statz body would be
// lost), so a rate with no observations is reported as 0.
func safeRate(hits, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// classStatz joins the per-class cache counters with the breaker snapshot:
// one row per class known to either side, sorted by name.
func (s *Server) classStatz(breakers []BreakerSnapshot) []ClassStatz {
	rows := make(map[string]*ClassStatz)
	s.classMu.Lock()
	for class, c := range s.classCache {
		rows[class] = &ClassStatz{Class: class, CacheHits: c.hits, CacheMisses: c.misses}
	}
	s.classMu.Unlock()
	for _, b := range breakers {
		row := rows[b.Class]
		if row == nil {
			row = &ClassStatz{Class: b.Class}
			rows[b.Class] = row
		}
		row.BreakerState, row.BreakerTrips = b.State, b.Trips
	}
	if len(rows) == 0 {
		return nil
	}
	out := make([]ClassStatz, 0, len(rows))
	for _, row := range rows {
		row.CacheHitRate = safeRate(row.CacheHits, row.CacheHits+row.CacheMisses)
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
