package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// sameRadiusJSON compares two serialized radii bit-exactly (pointers by
// pointee, floats by bits).
func sameRadiusJSON(t *testing.T, got, want RadiusJSON) {
	t.Helper()
	if got.Feature != want.Feature || got.Param != want.Param || got.Side != want.Side ||
		got.Name != want.Name || got.Analytic != want.Analytic || got.Degraded != want.Degraded ||
		got.Unbounded != want.Unbounded {
		t.Fatalf("radius mismatch: got %+v, want %+v", got, want)
	}
	switch {
	case got.Value == nil && want.Value == nil:
	case got.Value == nil || want.Value == nil:
		t.Fatalf("radius value mismatch: got %+v, want %+v", got, want)
	case math.Float64bits(*got.Value) != math.Float64bits(*want.Value):
		t.Fatalf("radius value bits differ: got %v, want %v", *got.Value, *want.Value)
	}
}

// TestShardEquivalence scatters a scenario's features over two /v1/shard
// requests and checks the merged radii are bit-identical to the whole
// /v1/robustness evaluation — the invariant the cluster coordinator rests
// on.
func TestShardEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doc := numericDoc()

	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: doc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("robustness status = %d, body %s", resp.StatusCode, body)
	}
	var whole EvalResponse
	if err := json.Unmarshal(body, &whole); err != nil {
		t.Fatal(err)
	}

	perFeature := make(map[int]RadiusJSON)
	for _, features := range [][]int{{0}, {1}} {
		resp, body := postJSON(t, ts.URL+"/v1/shard", ShardRequest{Scenario: doc, Features: features})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("shard status = %d, body %s", resp.StatusCode, body)
		}
		var sh ShardResponse
		if err := json.Unmarshal(body, &sh); err != nil {
			t.Fatal(err)
		}
		if sh.Class != whole.Class {
			t.Fatalf("shard class = %q, robustness class = %q", sh.Class, whole.Class)
		}
		if len(sh.Results) != len(features) {
			t.Fatalf("shard returned %d results for %d features", len(sh.Results), len(features))
		}
		for _, res := range sh.Results {
			if res.Error != "" {
				t.Fatalf("shard feature %d failed: %s (%s)", res.Feature, res.Error, res.Kind)
			}
			perFeature[res.Feature] = *res.Radius
		}
	}

	if len(whole.Robustness.PerFeature) != len(perFeature) {
		t.Fatalf("whole evaluation has %d per-feature radii, shards produced %d",
			len(whole.Robustness.PerFeature), len(perFeature))
	}
	for _, want := range whole.Robustness.PerFeature {
		got, ok := perFeature[want.Feature]
		if !ok {
			t.Fatalf("no shard result for feature %d", want.Feature)
		}
		sameRadiusJSON(t, got, want)
	}
}

// TestShardErrorReporting checks a failing feature rides inside a 200 shard
// response with the same error string a whole evaluation reports, while
// healthy features in the same shard still answer.
func TestShardErrorReporting(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableChaos: true})
	doc := numericDoc()
	chaos := []ChaosSpec{{Feature: 1, Fault: "panic"}}

	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: doc, Chaos: chaos})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("robustness status = %d, body %s", resp.StatusCode, body)
	}
	var whole ErrorResponse
	if err := json.Unmarshal(body, &whole); err != nil {
		t.Fatal(err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/shard", ShardRequest{Scenario: doc, Chaos: chaos})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard status = %d, body %s", resp.StatusCode, body)
	}
	var sh ShardResponse
	if err := json.Unmarshal(body, &sh); err != nil {
		t.Fatal(err)
	}
	if len(sh.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(sh.Results))
	}
	if sh.Results[0].Error != "" || sh.Results[0].Radius == nil {
		t.Fatalf("healthy feature 0 did not answer: %+v", sh.Results[0])
	}
	if sh.Results[1].Error != whole.Error {
		t.Fatalf("shard error %q, whole-evaluation error %q", sh.Results[1].Error, whole.Error)
	}
	if sh.Results[1].Kind != whole.Kind {
		t.Fatalf("shard kind %q, whole-evaluation kind %q", sh.Results[1].Kind, whole.Kind)
	}
	if StatusForKind(sh.Results[1].Kind) != http.StatusInternalServerError {
		t.Fatalf("StatusForKind(%q) = %d", sh.Results[1].Kind, StatusForKind(sh.Results[1].Kind))
	}
}

func TestShardBadFeatureIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/shard", ShardRequest{Scenario: analyticDoc(), Features: []int{7}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

// TestRequestIDPropagation checks the correlation ID round-trip: echoed when
// supplied, generated when absent, present in the response header, success
// bodies, and error bodies alike.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(HeaderRequestID, "trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(HeaderRequestID); got != "trace-42" {
		t.Fatalf("echoed request ID = %q, want trace-42", got)
	}

	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: analyticDoc()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var ok EvalResponse
	if err := json.Unmarshal(body, &ok); err != nil {
		t.Fatal(err)
	}
	if ok.RequestID == "" || ok.RequestID != resp.Header.Get(HeaderRequestID) {
		t.Fatalf("success body requestId %q, header %q", ok.RequestID, resp.Header.Get(HeaderRequestID))
	}

	resp, body = postJSON(t, ts.URL+"/v1/robustness", EvalRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var bad ErrorResponse
	if err := json.Unmarshal(body, &bad); err != nil {
		t.Fatal(err)
	}
	if bad.RequestID == "" || bad.RequestID != resp.Header.Get(HeaderRequestID) {
		t.Fatalf("error body requestId %q, header %q", bad.RequestID, resp.Header.Get(HeaderRequestID))
	}
}

// TestStatzClasses checks /statz breaks cache counters down per scenario
// class and joins in breaker state.
func TestStatzClasses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	st := getStatz(t, ts)
	if len(st.Classes) == 0 {
		t.Fatal("statz has no per-class rows")
	}
	var row *ClassStatz
	for i := range st.Classes {
		if st.Classes[i].Class == "multiplicative/d2" {
			row = &st.Classes[i]
		}
	}
	if row == nil {
		t.Fatalf("no multiplicative/d2 row in %+v", st.Classes)
	}
	if row.CacheHits+row.CacheMisses == 0 {
		t.Fatalf("class row has no cache activity: %+v", row)
	}
	if row.BreakerState != BreakerClosed {
		t.Fatalf("breaker state = %q, want closed", row.BreakerState)
	}
	if row.CacheHits != st.CacheHits || row.CacheMisses != st.CacheMisses {
		t.Fatalf("single-class counters should match totals: row %+v, totals %d/%d",
			row, st.CacheHits, st.CacheMisses)
	}
}

// TestScenarioCacheReuse checks the cross-request scenario cache: with it
// enabled, a repeated scenario is served from a warm analysis (impact-cache
// hits on the second request) and still returns identical radii.
func TestScenarioCacheReuse(t *testing.T) {
	_, ts := newTestServer(t, Config{ScenarioCacheCap: 4})
	doc := numericDoc()

	var first, second EvalResponse
	for i, out := range []*EvalResponse{&first, &second} {
		resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: doc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d status = %d, body %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatal(err)
		}
	}
	for i := range first.Robustness.PerFeature {
		sameRadiusJSON(t, second.Robustness.PerFeature[i], first.Robustness.PerFeature[i])
	}
	st := getStatz(t, ts)
	if st.CacheHits == 0 {
		t.Fatalf("expected warm-cache hits on the repeated scenario, statz %+v", st)
	}
}
