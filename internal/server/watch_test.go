package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"fepia/internal/scenario"
)

// watchDoc is a two-parameter scenario whose features partition cleanly:
// "lat" depends only on param 0, "mult" only on param 1 — so a param-1
// update must dirty exactly feature 1.
func watchDoc() scenario.AnalysisDoc {
	return scenario.AnalysisDoc{
		Params: []scenario.AnalysisParam{
			{Name: "load", Unit: "jobs", Orig: []float64{1, 2}},
			{Name: "mem", Unit: "gb", Orig: []float64{4}},
		},
		Features: []scenario.AnalysisFeature{
			{Name: "lat", Max: f64(40), Coeffs: [][]float64{{2, 3}, {0}}},
			{Name: "mult", Impact: scenario.ImpactMultiplicative,
				Max: f64(100), Scale: 1, Pows: [][]float64{{0, 0}, {1}}},
		},
	}
}

// sseClient reads one open /v1/watch stream frame by frame.
type sseClient struct {
	resp *http.Response
	br   *bufio.Reader
}

// openWatch posts a watch request and expects a 200 SSE stream.
func openWatch(t *testing.T, baseURL string, req WatchRequest) *sseClient {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/watch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch open = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch stream content type %q", ct)
	}
	c := &sseClient{resp: resp, br: bufio.NewReader(resp.Body)}
	t.Cleanup(c.close)
	return c
}

// frame blocks until one full SSE frame ("\n\n"-terminated) arrives.
func (c *sseClient) frame(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended mid-frame: %v (partial %q)", err, b.String())
		}
		b.WriteString(line)
		if line == "\n" {
			return b.String()
		}
	}
}

func (c *sseClient) close() { c.resp.Body.Close() }

func TestWatchCreateUpdateStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	c := openWatch(t, ts.URL, WatchRequest{ID: "w-basic", Scenario: ptrDoc(watchDoc())})

	snap := c.frame(t)
	if !strings.HasPrefix(snap, "id: 1\nevent: snapshot\n") {
		t.Fatalf("first frame is not the snapshot: %q", snap)
	}

	// Move param 1 only: feature 1 dirty, feature 0's radius reused.
	resp, body := postJSON(t, ts.URL+"/v1/watch/update", WatchUpdateRequest{
		Watch: "w-basic", Params: [][]float64{{1, 2}, {5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d, body %s", resp.StatusCode, body)
	}
	var up WatchUpdateResponse
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}
	if up.Seq != 2 || up.Structural {
		t.Fatalf("update seq=%d structural=%v, want seq=2 structural=false", up.Seq, up.Structural)
	}
	if len(up.Dirty) != 1 || up.Dirty[0] != 1 || up.Clean != 1 {
		t.Fatalf("update dirty=%v clean=%d, want dirty=[1] clean=1", up.Dirty, up.Clean)
	}

	deltaFrame := c.frame(t)
	if !strings.HasPrefix(deltaFrame, "id: 2\nevent: delta\n") {
		t.Fatalf("second frame is not the delta: %q", deltaFrame)
	}
	if !strings.Contains(deltaFrame, `"dirty":[1]`) {
		t.Fatalf("delta frame does not carry the dirty set: %q", deltaFrame)
	}

	// The delta result must be bit-identical to a cold full evaluation of
	// the successor document.
	succ := watchDoc()
	succ.Params[1].Orig = []float64{5}
	coldResp, coldBody := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: succ})
	if coldResp.StatusCode != http.StatusOK {
		t.Fatalf("cold eval = %d, body %s", coldResp.StatusCode, coldBody)
	}
	var cold EvalResponse
	if err := json.Unmarshal(coldBody, &cold); err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(up.Robustness)
	jb, _ := json.Marshal(cold.Robustness)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("delta update diverged from cold evaluation:\n%s\n%s", ja, jb)
	}

	st := s.statz()
	if st.Watches == nil || st.Watches.Active != 1 || st.Watches.Updates != 1 {
		t.Fatalf("watch statz: %+v", st.Watches)
	}
	if st.Watches.DirtyFeatures != 1 || st.Watches.CleanFeatures != 1 {
		t.Fatalf("watch feature accounting: %+v", st.Watches)
	}
}

func ptrDoc(d scenario.AnalysisDoc) *scenario.AnalysisDoc { return &d }

// TestWatchResumeByteIdentical is the restart contract: after a drain and a
// cold restart from the same state dir, a resumed subscription replays the
// exact bytes of the uninterrupted stream.
func TestWatchResumeByteIdentical(t *testing.T) {
	stateDir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StateDir: stateDir})
	c1 := openWatch(t, ts1.URL, WatchRequest{ID: "w-resume", Scenario: ptrDoc(watchDoc())})

	var control []string
	control = append(control, c1.frame(t))
	for _, mem := range []float64{5, 4.5} {
		resp, body := postJSON(t, ts1.URL+"/v1/watch/update", WatchUpdateRequest{
			Watch: "w-resume", Params: [][]float64{{1, 2}, {mem}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update = %d, body %s", resp.StatusCode, body)
		}
		control = append(control, c1.frame(t))
	}
	c1.close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StateDir: stateDir})
	c2 := openWatch(t, ts2.URL, WatchRequest{ID: "w-resume"})
	for i, want := range control {
		if got := c2.frame(t); got != want {
			t.Fatalf("resumed frame %d differs:\n%q\n%q", i+1, got, want)
		}
	}
	if got := s2.statz().Watches; got == nil || got.Resumed != 1 {
		t.Fatalf("resume not counted: %+v", got)
	}

	// A partial resume skips acknowledged frames, and the chain keeps
	// advancing: a new update fans out to the resumed subscription.
	c3 := openWatch(t, ts2.URL, WatchRequest{ID: "w-resume", After: 2})
	if got := c3.frame(t); got != control[2] {
		t.Fatalf("after=2 resume replayed %q, want %q", got, control[2])
	}
	resp, body := postJSON(t, ts2.URL+"/v1/watch/update", WatchUpdateRequest{
		Watch: "w-resume", Params: [][]float64{{1, 2}, {6}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-resume update = %d, body %s", resp.StatusCode, body)
	}
	if got := c3.frame(t); !strings.HasPrefix(got, "id: 4\nevent: delta\n") {
		t.Fatalf("post-resume live frame: %q", got)
	}
}

func TestWatchTenantQuota(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWatchesPerTenant: 1})
	openWatch(t, ts.URL, WatchRequest{ID: "w-q1", Scenario: ptrDoc(watchDoc())})

	resp, body := postJSON(t, ts.URL+"/v1/watch", WatchRequest{ID: "w-q2", Scenario: ptrDoc(watchDoc())})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create = %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "tenant-quota" || er.Tenant != "default" {
		t.Fatalf("over-quota error: %+v", er)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-quota response has no Retry-After")
	}
}

func TestWatchResumeHorizon(t *testing.T) {
	_, ts := newTestServer(t, Config{WatchEventCap: 2})
	c := openWatch(t, ts.URL, WatchRequest{ID: "w-h", Scenario: ptrDoc(watchDoc())})
	c.frame(t)
	for _, mem := range []float64{5, 6} {
		resp, body := postJSON(t, ts.URL+"/v1/watch/update", WatchUpdateRequest{
			Watch: "w-h", Params: [][]float64{{1, 2}, {mem}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update = %d, body %s", resp.StatusCode, body)
		}
		c.frame(t)
	}

	// The journal holds seqs [2,3]; a subscriber needing seq 1 is behind the
	// horizon.
	resp, body := postJSON(t, ts.URL+"/v1/watch", WatchRequest{ID: "w-h"})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("behind-horizon subscribe = %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "resume-horizon" {
		t.Fatalf("behind-horizon kind %q", er.Kind)
	}

	// after=1 needs exactly the journal's oldest frame: still served.
	c2 := openWatch(t, ts.URL, WatchRequest{ID: "w-h", After: 1})
	if got := c2.frame(t); !strings.HasPrefix(got, "id: 2\nevent: delta\n") {
		t.Fatalf("horizon-edge resume frame: %q", got)
	}
}

func TestWatchClose(t *testing.T) {
	_, ts := newTestServer(t, Config{StateDir: t.TempDir()})
	c := openWatch(t, ts.URL, WatchRequest{ID: "w-close", Scenario: ptrDoc(watchDoc())})
	c.frame(t)

	resp, body := postJSON(t, ts.URL+"/v1/watch/close", WatchCloseRequest{Watch: "w-close"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close = %d, body %s", resp.StatusCode, body)
	}
	// The stream ends (channel closed) — reading past the snapshot fails.
	if _, err := io.ReadAll(c.resp.Body); err != nil {
		t.Fatalf("reading closed stream: %v", err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/watch/update", WatchUpdateRequest{
		Watch: "w-close", Params: [][]float64{{1, 2}, {5}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("update after close = %d, body %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/watch", WatchRequest{ID: "w-close"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("subscribe after close = %d, body %s", resp.StatusCode, body)
	}
}

// TestWatchUpdateIdempotent re-applies the same absolute origins: the diff
// is empty, no feature is re-searched, and the event still advances the seq
// (clients can treat it as an acknowledgement).
func TestWatchUpdateIdempotent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	c := openWatch(t, ts.URL, WatchRequest{ID: "w-idem", Scenario: ptrDoc(watchDoc())})
	c.frame(t)

	var first WatchUpdateResponse
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/watch/update", WatchUpdateRequest{
			Watch: "w-idem", Params: [][]float64{{1, 2}, {5}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d = %d, body %s", i, resp.StatusCode, body)
		}
		var up WatchUpdateResponse
		if err := json.Unmarshal(body, &up); err != nil {
			t.Fatal(err)
		}
		c.frame(t)
		if i == 0 {
			first = up
			continue
		}
		if len(up.Dirty) != 0 || up.Clean != 2 {
			t.Fatalf("repeat update dirty=%v clean=%d, want an empty diff", up.Dirty, up.Clean)
		}
		ja, _ := json.Marshal(first.Robustness)
		jb, _ := json.Marshal(up.Robustness)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("repeat update changed the result:\n%s\n%s", ja, jb)
		}
	}
}
