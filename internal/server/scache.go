package server

import (
	"container/list"
	"sync"

	"fepia/internal/core"
	"fepia/internal/scenario"
)

// This file is the cross-request scenario cache: a bounded LRU of built
// analyses keyed by scenario fingerprint, so repeated traffic for the same
// scenario reuses one *core.Analysis — and with it a *warm impact cache* —
// instead of rebuilding from scratch per request. This is what makes the
// cluster coordinator's class-affinity placement pay off: radii of a class
// keep landing on the worker whose caches already hold that class's impact
// evaluations.
//
// Correctness constraints:
//
//   - The cache is OFF by default (Config.ScenarioCacheCap 0). Sharing an
//     impact cache across requests makes a request's exact low-order bits
//     depend on what ran before it (cached values are quantized-input
//     lookups); per-request caches keep results a pure function of the
//     request. Enable it on fleets where throughput on repetitive traffic
//     matters more than cross-request bit-stability.
//   - Chaos-decorated requests always bypass it: applyChaos mutates the
//     analysis's features in place, which must never touch a shared one.
//   - A cached analysis is frozen (built once, then read-only); the impact
//     cache inside it is thread-safe, so concurrent requests may share it.
//
// Per-request cache-hit accounting still works through snapshot deltas:
// each entry remembers the counter state it last reported, and reportCache
// charges only the delta since then to the requesting class.

// scenarioCache is the bounded LRU of built analyses.
type scenarioCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

// scacheEntry is one cached analysis plus its delta-accounting state.
type scacheEntry struct {
	key  string
	a    *core.Analysis
	warm bool // seeded by WarmStart from the persistent store

	mu   sync.Mutex
	last core.CacheStats // counters as of the last reportCache delta
}

// delta returns the impact-cache counter growth since the last call,
// advancing the watermark. Concurrent requests sharing the entry split the
// growth between them approximately — fine for statistics, which is all
// this feeds.
func (e *scacheEntry) delta() core.CacheStats {
	now := e.a.CacheStats()
	e.mu.Lock()
	defer e.mu.Unlock()
	d := core.CacheStats{
		Hits:        now.Hits - e.last.Hits,
		Misses:      now.Misses - e.last.Misses,
		Stores:      now.Stores - e.last.Stores,
		Evictions:   now.Evictions - e.last.Evictions,
		Entries:     now.Entries,
		ScaleHits:   now.ScaleHits - e.last.ScaleHits,
		ScaleMisses: now.ScaleMisses - e.last.ScaleMisses,
	}
	e.last = now
	return d
}

func newScenarioCache(capacity int) *scenarioCache {
	if capacity <= 0 {
		return nil
	}
	return &scenarioCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		ll:  list.New(),
	}
}

// get returns the cached entry for the fingerprint, refreshing recency.
func (c *scenarioCache) get(fp string) (*scacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*scacheEntry), true
	}
	return nil, false
}

// put stores a built analysis, evicting the least-recently-used entry at
// capacity. A racing earlier store for the same fingerprint wins (the two
// analyses are interchangeable; keeping the first preserves its warm
// cache). warm marks entries seeded from the persistent store at startup.
func (c *scenarioCache) put(fp string, a *core.Analysis, warm bool) *scacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*scacheEntry)
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*scacheEntry).key)
	}
	e := &scacheEntry{key: fp, a: a, warm: warm}
	c.m[fp] = c.ll.PushFront(e)
	return e
}

// entries snapshots the cached entries (order unspecified) for statistics.
func (c *scenarioCache) entries() []*scacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*scacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*scacheEntry))
	}
	return out
}

// warmRegCache keeps warm-start registries alive across scenario-cache
// *generations*: the scache bounds built analyses, and before this cache
// existed an eviction also dropped the evicted analysis's warm-start state,
// so the next rebuild of the same document searched cold (ROADMAP
// "warm-state sharing across scenario-cache generations"). Registries are
// tiny relative to built analyses (brackets, grid memos, step scales — no
// impact cache), so this LRU is sized to several scache generations and a
// rebuilt analysis almost always finds its old registry waiting.
type warmRegCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used
}

type warmRegEntry struct {
	key string
	reg *core.WarmRegistry
}

func newWarmRegCache(capacity int) *warmRegCache {
	if capacity <= 0 {
		return nil
	}
	return &warmRegCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		ll:  list.New(),
	}
}

// get returns the registry for the fingerprint, creating it on first use
// and evicting the least-recently-used registry at capacity.
func (c *warmRegCache) get(fp string) *core.WarmRegistry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[fp]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*warmRegEntry).reg
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*warmRegEntry).key)
	}
	e := &warmRegEntry{key: fp, reg: core.NewWarmRegistry()}
	c.m[fp] = c.ll.PushFront(e)
	return e.reg
}

// snapshotRegs copies the cache's (fingerprint, registry) pairs, most
// recently used first, for persistence.
func (c *warmRegCache) snapshotRegs() []warmRegEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]warmRegEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*warmRegEntry)
		out = append(out, warmRegEntry{key: e.key, reg: e.reg})
	}
	return out
}

// install places a restored registry under its fingerprint (as least
// recently used, so live traffic outranks restored state in the LRU). A
// fingerprint already present keeps its live registry — live state is never
// displaced by a disk copy.
func (c *warmRegCache) install(fp string, reg *core.WarmRegistry) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[fp]; ok {
		return false
	}
	if c.ll.Len() >= c.cap {
		return false // full of live registries: they win
	}
	c.m[fp] = c.ll.PushBack(&warmRegEntry{key: fp, reg: reg})
	return true
}

// lookupScenario resolves a scenario through the cache: a hit returns the
// shared analysis, a miss builds (and decorates with the impact cache and
// warm-started searches),
// stores — persisting to the scenario store when one is configured, so the
// next restart warm-starts with it — and returns it. Callers must bypass
// this for chaos-decorated requests. The second return is the entry for
// delta accounting (nil when the cache is disabled or the fingerprint
// failed).
func (s *Server) lookupScenario(doc scenario.AnalysisDoc) (*core.Analysis, *scacheEntry, error) {
	if s.scache == nil {
		return nil, nil, nil
	}
	// Stamp the envelope fields the way the store's Put does before
	// fingerprinting: a request doc (typically unversioned) and its stored
	// form must share one fingerprint, or warm-started entries would never
	// be hit.
	doc.Version = scenario.Version
	doc.Kind = "fepia"
	fp, err := doc.Fingerprint()
	if err != nil {
		return nil, nil, nil // un-fingerprintable: fall back to a fresh build
	}
	if e, ok := s.scache.get(fp); ok {
		s.stats.scenarioHits.Add(1)
		if e.warm {
			s.stats.storeWarmHits.Add(1)
		}
		return e.a, e, nil
	}
	s.stats.scenarioMisses.Add(1)
	a, err := doc.Build()
	if err != nil {
		return nil, nil, err
	}
	s.decorateCachedAnalysis(fp, a)
	e := s.scache.put(fp, a, false)
	if s.store != nil {
		// Best-effort persistence; a failed write costs the next warm
		// start, not this request.
		if _, perr := s.store.Put(doc); perr != nil {
			s.cfg.Logf("server: scenario store put %s: %v", fp, perr)
		}
	}
	return e.a, e, nil
}
