package server

import (
	"context"
	"sync"
	"time"

	"fepia/internal/scenario"
)

// This file is the admission controller: a cost-bounded work queue in front
// of a fixed pool of evaluation slots. Every request is costed from its
// scenario's size before any work is spent on it; when the reserved cost of
// queued-plus-running work would exceed the bound, the request is shed with
// 429 and a Retry-After estimated from the backlog and a running average of
// observed per-unit service time. Shedding at the door — instead of letting
// a queue grow without bound — is what keeps tail latency flat and drain
// fast under overload.
//
// The per-tenant quota and the weighted-fair slot queue layered on top of
// this live in tenant.go; this file keeps the aggregate bound, the cost
// model, and the service-time EWMA.

// admission is the cost-bounded queue + weighted-fair slot pool.
type admission struct {
	maxCost     int64
	slots       int   // evaluation slot count
	tenantQuota int64 // per-tenant reserved-cost ceiling at weight 1 (<=0 disables)

	mu         sync.Mutex
	running    int // evaluations holding a slot
	waiters    waiterHeap
	tenants    map[string]*tenantState
	weights    map[string]float64 // configured per-tenant weights (nil = all 1)
	reserved   int64              // cost units reserved (queued + running)
	requests   int                // requests reserved (queued + running)
	perUnitEMA float64            // EWMA of observed ns per cost unit
	vclock     float64            // weighted-fair virtual clock
}

// initialPerUnitNanos seeds the service-time estimate before any request
// has been observed (≈20µs per estimated impact evaluation).
const initialPerUnitNanos = 20_000

func newAdmission(maxConcurrent int, maxCost int64) *admission {
	return &admission{
		maxCost:    maxCost,
		slots:      maxConcurrent,
		tenants:    make(map[string]*tenantState),
		perUnitEMA: initialPerUnitNanos,
	}
}

// reserve admits cost units for the default tenant (tests and single-tenant
// callers); see reserveFor. An otherwise-idle queue admits any cost — a
// single scenario larger than the whole budget must be servable when nothing
// else is waiting, just never behind other work.
func (ad *admission) reserve(cost int64) bool {
	return ad.reserveFor(DefaultTenant, cost) == shedNone
}

// release returns a default-tenant reservation (after the terminal
// response).
func (ad *admission) release(cost int64) { ad.releaseFor(DefaultTenant, cost) }

// acquire waits for an evaluation slot as the default tenant; ctx aborts the
// wait (deadline while queued, client gone, or drain cancellation).
func (ad *admission) acquire(ctx context.Context) error {
	return ad.acquireFair(ctx, DefaultTenant, 1)
}

// observe feeds one completed evaluation into the service-time EWMA.
func (ad *admission) observe(cost int64, elapsed time.Duration) {
	if cost <= 0 || elapsed <= 0 {
		return
	}
	perUnit := float64(elapsed.Nanoseconds()) / float64(cost)
	ad.mu.Lock()
	ad.perUnitEMA = 0.8*ad.perUnitEMA + 0.2*perUnit
	ad.mu.Unlock()
}

// retryAfter is the global-scope shed estimate; see retryAfterFor.
func (ad *admission) retryAfter() time.Duration {
	return ad.retryAfterFor(DefaultTenant, shedGlobal)
}

// depths reports (requests queued or running, running, reserved cost).
func (ad *admission) depths() (requests, running int, reservedCost int64) {
	ad.mu.Lock()
	requests, running, reservedCost = ad.requests, ad.running, ad.reserved
	ad.mu.Unlock()
	return requests, running, reservedCost
}

// Cost units for estimateCost: an analytic radius is a handful of
// closed-form evaluations; a numeric level-set search costs hundreds of
// impact evaluations and grows with the P-space dimension.
const (
	costAnalyticFeature = 4
	costNumericBase     = 256
	costNumericPerDim   = 64
)

// estimateCost prices one scenario in estimated impact evaluations — the
// unit the admission queue is bounded in and the EWMA is keyed to. The
// estimate only has to be proportionate, not exact: it decides how much
// concurrent work the daemon bites off, not how results are computed.
func estimateCost(doc scenario.AnalysisDoc) int64 {
	return estimateCostFeatures(doc, nil)
}

// estimateCostFeatures prices a feature subset of one scenario — the
// admission cost of a /v1/shard request, which evaluates only the listed
// features. nil means all features (= estimateCost).
func estimateCostFeatures(doc scenario.AnalysisDoc, features []int) int64 {
	dim := 0
	for _, p := range doc.Params {
		dim += len(p.Orig)
	}
	if features == nil {
		features = make([]int, len(doc.Features))
		for i := range features {
			features[i] = i
		}
	}
	var cost int64
	for _, i := range features {
		if i < 0 || i >= len(doc.Features) {
			continue // rejected later by validation; don't price it
		}
		f := doc.Features[i]
		if f.NumericTier() {
			sides := int64(0)
			if f.Min != nil {
				sides++
			}
			if f.Max != nil {
				sides++
			}
			if sides == 0 {
				sides = 1 // unbounded features are detected nearly for free
			}
			cost += sides * int64(costNumericBase+costNumericPerDim*dim)
		} else {
			cost += costAnalyticFeature
		}
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}
