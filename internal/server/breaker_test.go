package server

import (
	"math/rand"
	"testing"
	"time"

	"fepia/internal/scenario"
)

func queueingFeature() scenario.AnalysisFeature {
	return scenario.AnalysisFeature{
		Name: "mm1", Impact: scenario.ImpactQueueing, Max: f64(10),
		Wgts: [][]float64{{1, 1}}, Caps: [][]float64{{5, 5}}, Eps: 1e-6,
	}
}

func extraParam(name string, orig []float64) scenario.AnalysisParam {
	return scenario.AnalysisParam{Name: name, Unit: "u", Orig: orig}
}

// testClock is the injectable time source for breaker unit tests.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreakers(threshold int) (*breakerSet, *testClock) {
	clk := &testClock{t: time.Unix(0, 0)}
	bs := newBreakerSet(breakerConfig{
		threshold: threshold,
		backoff:   time.Second,
		now:       clk.now,
		rng:       rand.New(rand.NewSource(1)),
	})
	return bs, clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	bs, _ := newTestBreakers(3)
	const class = "queueing/d8"
	for i := 0; i < 2; i++ {
		if forced, _, _ := bs.route(class); forced {
			t.Fatalf("forced before trip (failure %d)", i)
		}
		bs.record(class, false, true)
	}
	// A success in between resets the consecutive count.
	bs.record(class, false, false)
	for i := 0; i < 2; i++ {
		bs.route(class)
		bs.record(class, false, true)
	}
	if forced, _, state := bs.route(class); forced || state != BreakerClosed {
		t.Fatalf("tripped after reset+2 failures: forced=%v state=%s", forced, state)
	}
	bs.record(class, false, true) // third consecutive: trip
	forced, probe, state := bs.route(class)
	if !forced || probe || state != BreakerOpen {
		t.Fatalf("after trip: forced=%v probe=%v state=%s", forced, probe, state)
	}
	if _, trips := bs.snapshot(); trips != 1 {
		t.Fatalf("trips = %d", trips)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	bs, clk := newTestBreakers(1)
	const class = "multiplicative/d4"
	bs.route(class)
	bs.record(class, false, true) // trip at threshold 1

	// Jitter is at most +25%, so 2× the base backoff is safely past it.
	clk.advance(2 * time.Second)
	forced, probe, state := bs.route(class)
	if forced || !probe || state != BreakerHalfOpen {
		t.Fatalf("first post-backoff route: forced=%v probe=%v state=%s", forced, probe, state)
	}
	// While the probe is in flight everyone else stays degraded.
	forced, probe, _ = bs.route(class)
	if !forced || probe {
		t.Fatalf("concurrent route during probe: forced=%v probe=%v", forced, probe)
	}
	bs.record(class, true, false) // probe succeeds
	forced, probe, state = bs.route(class)
	if forced || probe || state != BreakerClosed {
		t.Fatalf("after successful probe: forced=%v probe=%v state=%s", forced, probe, state)
	}
}

func TestBreakerProbeFailureDoublesBackoff(t *testing.T) {
	bs, clk := newTestBreakers(1)
	const class = "queueing/d2"
	bs.route(class)
	bs.record(class, false, true) // trip; backoff 1s

	clk.advance(2 * time.Second)
	if _, probe, _ := bs.route(class); !probe {
		t.Fatal("no probe offered after backoff")
	}
	bs.record(class, true, true) // probe fails; backoff doubles to 2s

	// Less than the un-jittered doubled backoff (2s × 0.75 min jitter =
	// 1.5s): must still be open with no probe.
	clk.advance(time.Second)
	forced, probe, state := bs.route(class)
	if !forced || probe || state != BreakerOpen {
		t.Fatalf("1s after failed probe: forced=%v probe=%v state=%s", forced, probe, state)
	}
	// Past the max jittered doubled backoff (2s × 1.25 = 2.5s).
	clk.advance(2 * time.Second)
	if _, probe, _ := bs.route(class); !probe {
		t.Fatal("no probe after doubled backoff elapsed")
	}
}

func TestBreakerClassesAreIndependent(t *testing.T) {
	bs, _ := newTestBreakers(1)
	bs.route("queueing/d2")
	bs.record("queueing/d2", false, true)
	if forced, _, _ := bs.route("queueing/d2"); !forced {
		t.Fatal("failed class not tripped")
	}
	if forced, _, _ := bs.route("multiplicative/d2"); forced {
		t.Fatal("healthy class tripped by sibling's failures")
	}
}

func TestClassify(t *testing.T) {
	analytic := analyticDoc()
	numeric := numericDoc()
	queueing := analyticDoc()
	queueing.Features = append(queueing.Features, queueingFeature())

	cases := []struct {
		name string
		doc  func() string
		want string
	}{
		{"analytic", func() string { return classify(analytic, false) }, "analytic/d2"},
		{"numeric", func() string { return classify(numeric, false) }, "multiplicative/d2"},
		{"chaos suffix", func() string { return classify(numeric, true) }, "multiplicative+chaos/d2"},
		{"queueing", func() string { return classify(queueing, false) }, "queueing/d2"},
	}
	for _, c := range cases {
		if got := c.doc(); got != c.want {
			t.Fatalf("%s: classify = %q, want %q", c.name, got, c.want)
		}
	}

	// Dimension buckets are powers of two: dims 3..4 share d4.
	wide := analyticDoc()
	wide.Params = append(wide.Params, extraParam("extra", []float64{1}))
	wide.Features[0].Coeffs = [][]float64{{2, 3}, {1}}
	if got := classify(wide, false); got != "analytic/d4" {
		t.Fatalf("3-dim doc: classify = %q, want analytic/d4", got)
	}
}

func TestEstimateCostOrdersWork(t *testing.T) {
	an, num := estimateCost(analyticDoc()), estimateCost(numericDoc())
	if an >= num {
		t.Fatalf("analytic cost %d not cheaper than numeric cost %d", an, num)
	}
	wide := numericDoc()
	wide.Params = append(wide.Params, extraParam("extra", []float64{1, 1, 1, 1}))
	wide.Features[0].Coeffs = [][]float64{{2, 3}, {1, 1, 1, 1}}
	wide.Features[1].Pows = [][]float64{{1, 1}, {1, 1, 1, 1}}
	if w := estimateCost(wide); w <= num {
		t.Fatalf("higher-dimensional numeric scenario cost %d not above %d", w, num)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	ad := newAdmission(2, 1<<20)
	if d := ad.retryAfter(); d != time.Second {
		t.Fatalf("empty-queue retry-after = %v, want 1s floor", d)
	}
	ad.reserve(1 << 40) // absurd backlog
	if d := ad.retryAfter(); d != time.Minute {
		t.Fatalf("huge-backlog retry-after = %v, want 60s ceiling", d)
	}
}

func TestAdmissionReserveSemantics(t *testing.T) {
	ad := newAdmission(1, 100)
	if !ad.reserve(1000) {
		t.Fatal("idle queue rejected oversize request")
	}
	if ad.reserve(1) {
		t.Fatal("overflowing queue admitted more work")
	}
	ad.release(1000)
	if !ad.reserve(1) {
		t.Fatal("released queue rejected small request")
	}
}
