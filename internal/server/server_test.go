package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"fepia/internal/core"
	"fepia/internal/scenario"
)

func f64(v float64) *float64 { return &v }

// analyticDoc is the cheapest valid scenario: one linear feature over a
// two-dimensional perturbation.
func analyticDoc() scenario.AnalysisDoc {
	return scenario.AnalysisDoc{
		Params: []scenario.AnalysisParam{
			{Name: "load", Unit: "jobs", Orig: []float64{1, 2}},
		},
		Features: []scenario.AnalysisFeature{
			{Name: "lat", Max: f64(40), Coeffs: [][]float64{{2, 3}}},
		},
	}
}

// numericDoc adds a multiplicative feature, forcing the numeric level-set
// tier (and giving the request a numeric breaker class).
func numericDoc() scenario.AnalysisDoc {
	doc := analyticDoc()
	doc.Features = append(doc.Features, scenario.AnalysisFeature{
		Name: "mult", Impact: scenario.ImpactMultiplicative,
		Max: f64(100), Scale: 1, Pows: [][]float64{{1, 1}},
	})
	return doc
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getStatz(t *testing.T, ts *httptest.Server) Statz {
	t.Helper()
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHealthReadyStatz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/statz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz while draining = %d, want 503", resp.StatusCode)
	}
}

func TestRobustnessMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	a, err := numericDoc().Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.RobustnessWith(context.Background(), core.Normalized{},
		core.EvalOptions{Workers: 1, DegradeOnNumeric: true, DegradeSeed: degradeSeed})
	if err != nil {
		t.Fatal(err)
	}
	if got.Robustness.Value == nil {
		t.Fatalf("server returned unbounded rho: %s", body)
	}
	if *got.Robustness.Value != want.Value {
		t.Fatalf("server rho = %v, library rho = %v", *got.Robustness.Value, want.Value)
	}
	if got.Robustness.Degraded || want.Degraded {
		t.Fatalf("unexpected degradation: server %v library %v", got.Robustness.Degraded, want.Degraded)
	}
	if got.Class != "multiplicative/d2" {
		t.Fatalf("class = %q", got.Class)
	}
	if got.Breaker != BreakerClosed {
		t.Fatalf("breaker = %q", got.Breaker)
	}
	if len(got.Robustness.PerFeature) != 2 {
		t.Fatalf("perFeature count = %d", len(got.Robustness.PerFeature))
	}
}

func TestRadiusMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/radius", RadiusRequest{Scenario: analyticDoc()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got RadiusResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Radii) != 1 {
		t.Fatalf("radii count = %d", len(got.Radii))
	}

	a, err := analyticDoc().Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.RobustnessSingleCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Radii[0].Value == nil || *got.Radii[0].Value != want.Value {
		t.Fatalf("radius = %v, want %v", got.Radii[0].Value, want.Value)
	}
	if !got.Radii[0].Analytic {
		t.Fatal("linear radius not flagged analytic")
	}

	// Out-of-range param selection is a 400, not a panic.
	bad := 7
	resp, body = postJSON(t, ts.URL+"/v1/radius", RadiusRequest{Scenario: analyticDoc(), Param: &bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range param: status = %d, body %s", resp.StatusCode, body)
	}
}

func TestBatchPreservesOrderAndWeighting(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{Items: []BatchItemRequest{
		{Scenario: analyticDoc()},
		{Scenario: numericDoc(), Weighting: "sensitivity"},
		{Scenario: analyticDoc()},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got BatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("results count = %d", len(got.Results))
	}
	for k, item := range got.Results {
		if item.Error != "" || item.Robustness == nil {
			t.Fatalf("item %d failed: %s / %s", k, item.Error, item.Kind)
		}
	}
	if v0, v2 := got.Results[0].Robustness.Value, got.Results[2].Robustness.Value; *v0 != *v2 {
		t.Fatalf("identical items disagree: %v vs %v", *v0, *v2)
	}
	if got.Results[1].Robustness.Weighting != "sensitivity" {
		t.Fatalf("item 1 weighting = %q", got.Results[1].Robustness.Weighting)
	}
	if got.Results[0].Class != "analytic/d2" || got.Results[1].Class != "multiplicative/d2" {
		t.Fatalf("classes = %q, %q", got.Results[0].Class, got.Results[1].Class)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // chaos disabled
	noFeatures := analyticDoc()
	noFeatures.Features = nil
	cases := []struct {
		name string
		body any
		raw  string
		want int
	}{
		{"malformed json", nil, "{not json", http.StatusBadRequest},
		{"invalid scenario", EvalRequest{Scenario: noFeatures}, "", http.StatusBadRequest},
		{"unknown weighting", EvalRequest{Scenario: analyticDoc(), Weighting: "harmonic"}, "", http.StatusBadRequest},
		{"bad timeout", EvalRequest{Scenario: analyticDoc(), Timeout: "soon"}, "", http.StatusBadRequest},
		{"chaos disabled", EvalRequest{Scenario: analyticDoc(),
			Chaos: []ChaosSpec{{Feature: 0, Fault: "nan"}}}, "", http.StatusForbidden},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if c.raw != "" {
				r, err := http.Post(ts.URL+"/v1/robustness", "application/json", bytes.NewBufferString(c.raw))
				if err != nil {
					t.Fatal(err)
				}
				body, _ = io.ReadAll(r.Body)
				r.Body.Close()
				resp = r
			} else {
				resp, body = postJSON(t, ts.URL+"/v1/robustness", c.body)
			}
			if resp.StatusCode != c.want {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, c.want, body)
			}
		})
	}
	if st := getStatz(t, ts); st.BadRequests == 0 {
		t.Fatal("bad requests not counted")
	}
}

func TestUnknownChaosFaultRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableChaos: true})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{
		Scenario: analyticDoc(),
		Chaos:    []ChaosSpec{{Feature: 0, Fault: "gamma-ray"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

func TestSheddingReturns429WithRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueueCost: 8})
	// Simulate a resident request holding most of the queue budget; the
	// next reservation (cost ≥ 4) must then overflow the bound.
	if !s.adm.reserve(6) {
		t.Fatal("priming reservation rejected")
	}
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: analyticDoc()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != "overloaded" {
		t.Fatalf("shed body = %s", body)
	}
	if st := getStatz(t, ts); st.Shed != 1 {
		t.Fatalf("shed count = %d", st.Shed)
	}

	// Releasing the resident work reopens admission.
	s.adm.release(6)
	resp, body = postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: analyticDoc()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, body %s", resp.StatusCode, body)
	}
}

func TestOversizeScenarioAdmittedWhenIdle(t *testing.T) {
	// A single scenario larger than the whole queue budget must still be
	// servable when nothing else is queued.
	_, ts := newTestServer(t, Config{MaxQueueCost: 2})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

func TestDeadlineExceededMapsTo504(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableChaos: true})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{
		Scenario: numericDoc(),
		Timeout:  "150ms",
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "slow", DelayMs: 40}},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != "deadline-exceeded" {
		t.Fatalf("body = %s", body)
	}
	if st := getStatz(t, ts); st.ErrDeadline != 1 {
		t.Fatalf("deadline counter = %d", st.ErrDeadline)
	}
}

func TestTimeoutClampedToMax(t *testing.T) {
	// A huge requested timeout is clamped to MaxTimeout, so the slow
	// request still terminates promptly with 504.
	_, ts := newTestServer(t, Config{EnableChaos: true, MaxTimeout: 150 * time.Millisecond})
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{
		Scenario: numericDoc(),
		Timeout:  "10m",
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "slow", DelayMs: 40}},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("clamped request took %v", elapsed)
	}
}

func TestChaosPanicContainedAs500(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableChaos: true})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "panic"}},
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != "impact-panic" {
		t.Fatalf("body = %s", body)
	}
}

func TestChaosNaNDegradesTo200(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableChaos: true, DegradeSamples: 64})
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "nan", After: 4}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Robustness.Degraded {
		t.Fatalf("NaN-faulted numeric feature did not degrade: %s", body)
	}
	if st := getStatz(t, ts); st.CompletedDegr != 1 {
		t.Fatalf("degraded counter = %d", st.CompletedDegr)
	}
}

// TestBreakerTripsToDegradedAndRecovers is the end-to-end chaos exercise of
// the tentpole loop: injected panics fail a scenario class until its breaker
// trips, tripped traffic is served degraded (200, Monte-Carlo lower bounds)
// instead of erroring, and healthy probes close the breaker again.
func TestBreakerTripsToDegradedAndRecovers(t *testing.T) {
	threshold := 3
	_, ts := newTestServer(t, Config{
		EnableChaos:       true,
		BreakerThreshold:  threshold,
		BreakerBackoff:    300 * time.Millisecond,
		BreakerMaxBackoff: 600 * time.Millisecond,
		BreakerSeed:       7,
		DegradeSamples:    32,
	})
	faulty := EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "panic"}},
	}

	// Phase 1: consecutive panics are 500s until the class trips.
	for i := 0; i < threshold; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/robustness", faulty)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("pre-trip request %d: status = %d, body %s", i, resp.StatusCode, body)
		}
	}

	// Phase 2: the breaker is open — the same faulty request now succeeds
	// degraded, because the forced Monte-Carlo path contains the panic.
	resp, body := postJSON(t, ts.URL+"/v1/robustness", faulty)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-trip status = %d, body %s", resp.StatusCode, body)
	}
	var got EvalResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Robustness.Degraded {
		t.Fatalf("post-trip result not degraded: %s", body)
	}
	if got.Breaker != BreakerOpen {
		t.Fatalf("post-trip breaker = %q, want open", got.Breaker)
	}
	if st := getStatz(t, ts); st.BreakerTrips < 1 {
		t.Fatalf("breakerTrips = %d", st.BreakerTrips)
	}

	// Phase 3: once the fault clears, a half-open probe through the numeric
	// tier closes the breaker and certified results resume.
	healthy := EvalRequest{
		Scenario: numericDoc(),
		Chaos:    []ChaosSpec{{Feature: 1, Fault: "none"}}, // same class, no fault
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered")
		}
		resp, body := postJSON(t, ts.URL+"/v1/robustness", healthy)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovery request: status = %d, body %s", resp.StatusCode, body)
		}
		// Decode into a fresh struct: omitted omitempty fields must not
		// inherit phase 2's values.
		var cur EvalResponse
		if err := json.Unmarshal(body, &cur); err != nil {
			t.Fatal(err)
		}
		if cur.Breaker == BreakerClosed && !cur.Robustness.Degraded {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCacheStatsSurfaceInStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	st := getStatz(t, ts)
	if st.CacheHits+st.CacheMisses == 0 {
		t.Fatal("impact cache saw no traffic")
	}
	if st.CacheHitRate < 0 || st.CacheHitRate > 1 {
		t.Fatalf("cache hit rate = %v", st.CacheHitRate)
	}
	if st.Accepted != 3 || st.CompletedOK != 3 {
		t.Fatalf("accepted/completed = %d/%d", st.Accepted, st.CompletedOK)
	}
	// Shard rows only aggregate over the scenario cache's shared analyses;
	// with it disabled the section must be omitted, not zero-filled.
	if st.CacheShards != nil {
		t.Fatalf("cacheShards = %+v with the scenario cache disabled", st.CacheShards)
	}
}

// TestCacheShardStatsSurfaceInStatz drives repeated traffic for one scenario
// through the scenario cache and checks the per-shard breakdown: the shard
// rows must sum back to the aggregate counters and surface in /metrics.
func TestCacheShardStatsSurfaceInStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{ScenarioCacheCap: 4, CacheShards: 4})
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
	}
	st := getStatz(t, ts)
	if len(st.CacheShards) != 4 {
		t.Fatalf("cacheShards has %d rows, want 4", len(st.CacheShards))
	}
	var hits, misses uint64
	entries := 0
	for i, sh := range st.CacheShards {
		if sh.Shard != i {
			t.Fatalf("row %d labelled shard %d", i, sh.Shard)
		}
		if sh.HitRate < 0 || sh.HitRate > 1 {
			t.Fatalf("shard %d hit rate = %v", i, sh.HitRate)
		}
		hits += sh.Hits
		misses += sh.Misses
		entries += sh.Entries
	}
	// All traffic hit one shared analysis, so the shard rows must sum back
	// to the request-attributed aggregate exactly.
	if hits != st.CacheHits || misses != st.CacheMisses {
		t.Fatalf("shard sums %d/%d != aggregate %d/%d", hits, misses, st.CacheHits, st.CacheMisses)
	}
	if entries == 0 {
		t.Fatal("no shard holds any cached impact value after traffic")
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fepiad_cache_shard_hits_total{shard="0"}`,
		`fepiad_cache_shard_hit_rate{shard="3"}`,
	} {
		if !bytes.Contains(mbody, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: analyticDoc()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Kind != "draining" {
		t.Fatalf("body = %s", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
}

func TestStatzClassSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, body := postJSON(t, ts.URL+"/v1/robustness", EvalRequest{Scenario: numericDoc()}); len(body) == 0 {
		t.Fatal("empty response")
	}
	st := getStatz(t, ts)
	if len(st.Breakers) != 1 || st.Breakers[0].Class != "multiplicative/d2" {
		t.Fatalf("breakers = %+v", st.Breakers)
	}
	if st.Breakers[0].State != BreakerClosed {
		t.Fatalf("state = %q", st.Breakers[0].State)
	}
}

// failingImpactExample documents the typed-error contract end to end: the
// table in docs/failure-semantics.md §server is backed by these assertions.
func TestErrorKindMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		kind   string
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline-exceeded"},
		{context.Canceled, http.StatusServiceUnavailable, "cancelled"},
		{fmt.Errorf("wrap: %w", core.ErrImpactPanic), http.StatusInternalServerError, "impact-panic"},
		{fmt.Errorf("wrap: %w", core.ErrNumeric), http.StatusInternalServerError, "numeric"},
		{fmt.Errorf("novel"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		status, kind := errKind(c.err)
		if status != c.status || kind != c.kind {
			t.Fatalf("errKind(%v) = (%d, %q), want (%d, %q)", c.err, status, kind, c.status, c.kind)
		}
	}
}
