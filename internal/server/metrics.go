package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus exposition, hand-rolled. The daemon's observable state already
// lives in the /statz JSON document; /metrics is the same counters rendered
// in the text exposition format (version 0.0.4) so a Prometheus scraper can
// consume them without a sidecar translator. No client library: the format
// is a handful of lines, and keeping the dependency surface at zero is a
// repo constraint.

// PromContentType is the exposition-format content type.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromBuf accumulates text-format metrics; the cluster coordinator reuses
// it for its own /metrics.
type PromBuf struct {
	b bytes.Buffer
}

// Header emits the # HELP / # TYPE preamble for a metric family.
func (p *PromBuf) Header(name, typ, help string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Metric emits one sample. labels come as key, value pairs and are emitted
// in the given order (callers pass them sorted or naturally stable).
func (p *PromBuf) Metric(name string, value float64, labels ...string) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, labels[i], escapeLabel(labels[i+1]))
		}
		p.b.WriteByte('}')
	}
	fmt.Fprintf(&p.b, " %v\n", value)
}

// WriteTo sends the accumulated exposition body.
func (p *PromBuf) WriteTo(w http.ResponseWriter) {
	w.Header().Set("Content-Type", PromContentType)
	_, _ = w.Write(p.b.Bytes())
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// breakerStateValue maps a breaker state name onto a numeric gauge
// (closed=0, half-open=1, open=2) for alerting thresholds.
func breakerStateValue(state string) float64 {
	switch state {
	case "open":
		return 2
	case "half-open":
		return 1
	default:
		return 0
	}
}

// handleMetrics renders the /statz snapshot as Prometheus metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.statz()
	var p PromBuf

	p.Header("fepiad_uptime_seconds", "gauge", "Daemon uptime.")
	p.Metric("fepiad_uptime_seconds", float64(st.UptimeMs)/1000)
	p.Header("fepiad_draining", "gauge", "1 while graceful drain is in progress.")
	p.Metric("fepiad_draining", b2f(st.Draining))

	p.Header("fepiad_inflight", "gauge", "Accepted requests not yet answered.")
	p.Metric("fepiad_inflight", float64(st.Inflight))
	p.Header("fepiad_running", "gauge", "Requests holding an evaluation slot.")
	p.Metric("fepiad_running", float64(st.Running))
	p.Header("fepiad_queued_cost", "gauge", "Reserved admission cost units (queued + running).")
	p.Metric("fepiad_queued_cost", float64(st.QueuedCost))
	p.Header("fepiad_max_queue_cost", "gauge", "Admission queue cost bound.")
	p.Metric("fepiad_max_queue_cost", float64(st.MaxQueueCost))
	p.Header("fepiad_slots", "gauge", "Evaluation slot count.")
	p.Metric("fepiad_slots", float64(st.Slots))

	p.Header("fepiad_accepted_total", "counter", "Requests admitted past the queue bound.")
	p.Metric("fepiad_accepted_total", float64(st.Accepted))
	p.Header("fepiad_shed_total", "counter", "Requests shed with 429 (global bound and tenant quotas).")
	p.Metric("fepiad_shed_total", float64(st.Shed))
	p.Header("fepiad_rejected_draining_total", "counter", "Requests rejected because drain had begun.")
	p.Metric("fepiad_rejected_draining_total", float64(st.RejectedDraining))
	p.Header("fepiad_bad_requests_total", "counter", "Malformed or invalid requests (400).")
	p.Metric("fepiad_bad_requests_total", float64(st.BadRequests))
	p.Header("fepiad_completed_ok_total", "counter", "Certified (non-degraded) 200 responses.")
	p.Metric("fepiad_completed_ok_total", float64(st.CompletedOK))
	p.Header("fepiad_completed_degraded_total", "counter", "200 responses carrying at least one degraded radius.")
	p.Metric("fepiad_completed_degraded_total", float64(st.CompletedDegr))
	p.Header("fepiad_deadline_exceeded_total", "counter", "504 responses.")
	p.Metric("fepiad_deadline_exceeded_total", float64(st.ErrDeadline))
	p.Header("fepiad_cancelled_total", "counter", "503 responses from drain or client cancellation mid-flight.")
	p.Metric("fepiad_cancelled_total", float64(st.ErrCancelled))
	p.Header("fepiad_internal_errors_total", "counter", "500 responses.")
	p.Metric("fepiad_internal_errors_total", float64(st.ErrInternal))

	p.Header("fepiad_breaker_trips_total", "counter", "Circuit-breaker trips across all classes.")
	p.Metric("fepiad_breaker_trips_total", float64(st.BreakerTrips))

	p.Header("fepiad_cache_hits_total", "counter", "Impact-cache hits.")
	p.Metric("fepiad_cache_hits_total", float64(st.CacheHits))
	p.Header("fepiad_cache_misses_total", "counter", "Impact-cache misses.")
	p.Metric("fepiad_cache_misses_total", float64(st.CacheMisses))
	p.Header("fepiad_cache_hit_rate", "gauge", "Impact-cache hit rate (0 with no lookups).")
	p.Metric("fepiad_cache_hit_rate", st.CacheHitRate)

	if len(st.CacheShards) > 0 {
		p.Header("fepiad_cache_shard_hits_total", "counter", "Per-shard impact-cache hits (scenario-cache analyses).")
		p.Header("fepiad_cache_shard_misses_total", "counter", "Per-shard impact-cache misses (scenario-cache analyses).")
		p.Header("fepiad_cache_shard_entries", "gauge", "Per-shard cached impact values.")
		p.Header("fepiad_cache_shard_hit_rate", "gauge", "Per-shard hit rate; a lagging shard signals probe-key skew.")
		for _, sh := range st.CacheShards {
			label := strconv.Itoa(sh.Shard)
			p.Metric("fepiad_cache_shard_hits_total", float64(sh.Hits), "shard", label)
			p.Metric("fepiad_cache_shard_misses_total", float64(sh.Misses), "shard", label)
			p.Metric("fepiad_cache_shard_entries", float64(sh.Entries), "shard", label)
			p.Metric("fepiad_cache_shard_hit_rate", sh.HitRate, "shard", label)
		}
	}

	if len(st.Tenants) > 0 {
		p.Header("fepiad_tenant_weight", "gauge", "Tenant weight in the fair-admission discipline.")
		p.Header("fepiad_tenant_quota_cost", "gauge", "Tenant reserved-cost quota.")
		p.Header("fepiad_tenant_reserved_cost", "gauge", "Tenant cost units reserved (queued + running).")
		p.Header("fepiad_tenant_accepted_total", "counter", "Requests admitted for the tenant.")
		p.Header("fepiad_tenant_shed_total", "counter", "Requests shed against the tenant (quota or global bound).")
		for _, ten := range st.Tenants {
			p.Metric("fepiad_tenant_weight", ten.Weight, "tenant", ten.Tenant)
			p.Metric("fepiad_tenant_quota_cost", float64(ten.QuotaCost), "tenant", ten.Tenant)
			p.Metric("fepiad_tenant_reserved_cost", float64(ten.ReservedCost), "tenant", ten.Tenant)
			p.Metric("fepiad_tenant_accepted_total", float64(ten.Accepted), "tenant", ten.Tenant)
			p.Metric("fepiad_tenant_shed_total", float64(ten.Shed), "tenant", ten.Tenant)
		}
	}

	if st.Store != nil {
		p.Header("fepiad_store_puts_total", "counter", "Scenario documents persisted.")
		p.Metric("fepiad_store_puts_total", float64(st.Store.Puts))
		p.Header("fepiad_store_put_errors_total", "counter", "Failed persistence writes.")
		p.Metric("fepiad_store_put_errors_total", float64(st.Store.PutErrors))
		p.Header("fepiad_store_corrupt_skipped_total", "counter", "Corrupt store files skipped and quarantined.")
		p.Metric("fepiad_store_corrupt_skipped_total", float64(st.Store.CorruptSkipped))
		p.Header("fepiad_store_warm_loaded", "gauge", "Scenarios warm-started from the store at startup.")
		p.Metric("fepiad_store_warm_loaded", float64(st.Store.WarmLoaded))
		p.Header("fepiad_store_warm_skipped", "gauge", "Store files skipped during warm start.")
		p.Metric("fepiad_store_warm_skipped", float64(st.Store.WarmSkipped))
		p.Header("fepiad_store_warm_hits_total", "counter", "Scenario-cache hits served by warm-started entries.")
		p.Metric("fepiad_store_warm_hits_total", float64(st.Store.WarmHits))
		p.Header("fepiad_store_hit_rate", "gauge", "Warm-started share of scenario-cache lookups (0 with no lookups).")
		p.Metric("fepiad_store_hit_rate", st.Store.HitRate)
		p.Header("fepiad_store_evictions_total", "counter", "Store entries evicted by the size bound's LRU sweep.")
		p.Metric("fepiad_store_evictions_total", float64(st.Store.Evictions))
		p.Header("fepiad_store_size_bytes", "gauge", "Indexed on-disk footprint of the scenario store.")
		p.Metric("fepiad_store_size_bytes", float64(st.Store.SizeBytes))
	}

	if st.Checkpoints != nil {
		p.Header("fepiad_checkpoint_saves_total", "counter", "Search checkpoints persisted.")
		p.Metric("fepiad_checkpoint_saves_total", float64(st.Checkpoints.Saves))
		p.Header("fepiad_checkpoint_save_errors_total", "counter", "Failed checkpoint writes.")
		p.Metric("fepiad_checkpoint_save_errors_total", float64(st.Checkpoints.SaveErrors))
		p.Header("fepiad_checkpoint_loaded_total", "counter", "Checkpoints loaded for resume.")
		p.Metric("fepiad_checkpoint_loaded_total", float64(st.Checkpoints.Loaded))
		p.Header("fepiad_checkpoint_corrupt_skipped_total", "counter", "Corrupt checkpoint files skipped and quarantined.")
		p.Metric("fepiad_checkpoint_corrupt_skipped_total", float64(st.Checkpoints.CorruptSkipped))
		p.Header("fepiad_checkpoint_deletes_total", "counter", "Checkpoints deleted after clean completion.")
		p.Metric("fepiad_checkpoint_deletes_total", float64(st.Checkpoints.Deletes))
	}

	watchMetrics(&p, st.Watches)

	if len(st.Classes) > 0 {
		p.Header("fepiad_class_cache_hit_rate", "gauge", "Per-class impact-cache hit rate.")
		p.Header("fepiad_class_breaker_state", "gauge", "Per-class breaker state (0 closed, 1 half-open, 2 open).")
		p.Header("fepiad_class_breaker_trips_total", "counter", "Per-class breaker trips.")
		for _, cl := range st.Classes {
			p.Metric("fepiad_class_cache_hit_rate", cl.CacheHitRate, "class", cl.Class)
			if cl.BreakerState != "" {
				p.Metric("fepiad_class_breaker_state", breakerStateValue(cl.BreakerState), "class", cl.Class)
				p.Metric("fepiad_class_breaker_trips_total", float64(cl.BreakerTrips), "class", cl.Class)
			}
		}
	}

	p.WriteTo(w)
}
