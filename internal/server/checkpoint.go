package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"fepia/internal/durable"
	"fepia/internal/sched"
)

// This file is the search checkpoint store: one file per search id under
// <state-dir>/searches, each holding the original request plus the
// sched.Checkpoint of the last completed generation. It follows the
// scenario store's durability discipline (internal/durable): atomic
// temp+fsync+rename writes, a checksum over the payload, and
// quarantine-not-fatal reads — a corrupt checkpoint costs that search's
// resumability, never the daemon. A restarted daemon lists the surviving
// checkpoints as "resumable" rows in /statz, and POST /v1/search with
// {"resumeId": <id>} continues the run bit-identically.

const (
	checkpointKind    = "fepia-search-checkpoint"
	checkpointVersion = 1
	checkpointSuffix  = ".ckpt.json"
)

// ErrNoCheckpoint reports a resume id with no loadable checkpoint — never
// saved, already consumed, or quarantined as corrupt. Mapped to HTTP 404
// kind "resume-not-found".
var ErrNoCheckpoint = errors.New("server: no checkpoint for search id")

// checkpointEnvelope is the on-disk shape of one checkpoint file.
type checkpointEnvelope struct {
	Kind    string `json:"kind"`
	Version int    `json:"version"`
	ID      string `json:"id"`
	// Checksum is FNV-1a/64 of the raw Payload bytes, hex-encoded.
	Checksum string          `json:"checksum"`
	Payload  json.RawMessage `json:"payload"`
}

// CheckpointPayload is what a checkpoint file carries: the request that
// started the search (so a bare resumeId reconstructs instance and options)
// and the serialized search state.
type CheckpointPayload struct {
	Request SearchRequest    `json:"request"`
	State   sched.Checkpoint `json:"state"`
}

// CheckpointStats are the checkpoint store's monotonic counters.
type CheckpointStats struct {
	Saves          uint64 `json:"saves"`
	SaveErrors     uint64 `json:"saveErrors"`
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	Deletes        uint64 `json:"deletes"`
}

// CheckpointStore persists search checkpoints in a directory. All methods
// are safe for concurrent use.
type CheckpointStore struct {
	dir string

	mu    sync.Mutex
	stats CheckpointStats
}

// OpenCheckpointStore opens (creating if needed) a checkpoint store rooted
// at dir.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("server: checkpoint dir is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: opening checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (cs *CheckpointStore) Dir() string { return cs.dir }

// Stats snapshots the store's counters.
func (cs *CheckpointStore) Stats() CheckpointStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stats
}

// path names id's file: a hash of the id, so arbitrary client-chosen search
// ids never become path components.
func (cs *CheckpointStore) path(id string) string {
	h := fnv.New64a()
	h.Write([]byte(id))
	return filepath.Join(cs.dir, strconv.FormatUint(h.Sum64(), 16)+checkpointSuffix)
}

// Save atomically replaces id's checkpoint. Best-effort at the call sites:
// a failed save costs resumability from this generation, not the search.
func (cs *CheckpointStore) Save(id string, p CheckpointPayload) error {
	raw, err := json.Marshal(p)
	if err != nil {
		cs.countSaveErr()
		return fmt.Errorf("server: checkpoint save: %w", err)
	}
	env := checkpointEnvelope{
		Kind:     checkpointKind,
		Version:  checkpointVersion,
		ID:       id,
		Checksum: durable.Checksum(raw),
		Payload:  raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		cs.countSaveErr()
		return fmt.Errorf("server: checkpoint save: %w", err)
	}
	if err := durable.WriteFileAtomic(cs.path(id), data, ".ckpt-*"); err != nil {
		cs.countSaveErr()
		return fmt.Errorf("server: checkpoint save: %w", err)
	}
	cs.mu.Lock()
	cs.stats.Saves++
	cs.mu.Unlock()
	return nil
}

func (cs *CheckpointStore) countSaveErr() {
	cs.mu.Lock()
	cs.stats.SaveErrors++
	cs.mu.Unlock()
}

// decodeCheckpoint verifies one checkpoint file end to end.
func decodeCheckpoint(data []byte) (string, CheckpointPayload, error) {
	var env checkpointEnvelope
	var p CheckpointPayload
	if err := json.Unmarshal(data, &env); err != nil {
		return "", p, fmt.Errorf("server: checkpoint file: %w", err)
	}
	if env.Kind != checkpointKind || env.Version != checkpointVersion {
		return "", p, fmt.Errorf("server: checkpoint file kind/version %q/%d, want %q/%d", env.Kind, env.Version, checkpointKind, checkpointVersion)
	}
	if got := durable.Checksum(env.Payload); got != env.Checksum {
		return "", p, fmt.Errorf("server: checkpoint file checksum %s, recorded %s", got, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, &p); err != nil {
		return "", p, fmt.Errorf("server: checkpoint payload: %w", err)
	}
	return env.ID, p, nil
}

// Load retrieves id's checkpoint. A missing file returns ErrNoCheckpoint; a
// corrupt one is quarantined (removed, counted) and reported as
// ErrNoCheckpoint too — the caller cannot resume either way.
func (cs *CheckpointStore) Load(id string) (CheckpointPayload, error) {
	path := cs.path(id)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return CheckpointPayload{}, fmt.Errorf("%w: %q", ErrNoCheckpoint, id)
		}
		return CheckpointPayload{}, fmt.Errorf("server: checkpoint load: %w", err)
	}
	gotID, p, err := decodeCheckpoint(data)
	if err == nil && gotID != id {
		err = fmt.Errorf("server: checkpoint file for id %q found under %q's name", gotID, id)
	}
	if err != nil {
		cs.quarantine(path)
		return CheckpointPayload{}, fmt.Errorf("%w: %q (%v)", ErrNoCheckpoint, id, err)
	}
	cs.mu.Lock()
	cs.stats.Loaded++
	cs.mu.Unlock()
	return p, nil
}

// Delete removes id's checkpoint (a completed search needs no resume).
func (cs *CheckpointStore) Delete(id string) {
	if err := os.Remove(cs.path(id)); err != nil {
		return
	}
	cs.mu.Lock()
	cs.stats.Deletes++
	cs.mu.Unlock()
}

// quarantine removes a file Load refused, best-effort, and counts it.
func (cs *CheckpointStore) quarantine(path string) {
	_ = os.Remove(path)
	cs.mu.Lock()
	cs.stats.CorruptSkipped++
	cs.mu.Unlock()
}

// CheckpointRecord is one resumable search found on disk.
type CheckpointRecord struct {
	ID      string
	Payload CheckpointPayload
}

// List returns every intact checkpoint, sorted by search id. Corrupt files
// are quarantined and skipped, never fatal.
func (cs *CheckpointStore) List() []CheckpointRecord {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		return nil
	}
	var out []CheckpointRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), checkpointSuffix) {
			continue
		}
		path := filepath.Join(cs.dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			cs.quarantine(path)
			continue
		}
		id, p, err := decodeCheckpoint(data)
		if err != nil {
			cs.quarantine(path)
			continue
		}
		out = append(out, CheckpointRecord{ID: id, Payload: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// CheckpointStatz is the checkpoint store's section of /statz.
type CheckpointStatz struct {
	Dir            string `json:"dir"`
	Saves          uint64 `json:"saves"`
	SaveErrors     uint64 `json:"saveErrors"`
	Loaded         uint64 `json:"loaded"`
	CorruptSkipped uint64 `json:"corruptSkipped"`
	Deletes        uint64 `json:"deletes"`
}

// checkpointStatz snapshots the checkpoint section; nil when no state dir
// is configured.
func checkpointStatz(cs *CheckpointStore) *CheckpointStatz {
	if cs == nil {
		return nil
	}
	st := cs.Stats()
	return &CheckpointStatz{
		Dir:            cs.dir,
		Saves:          st.Saves,
		SaveErrors:     st.SaveErrors,
		Loaded:         st.Loaded,
		CorruptSkipped: st.CorruptSkipped,
		Deletes:        st.Deletes,
	}
}

// ResumableRow converts one checkpoint record into its /statz row: state
// "resumable", progress from the serialized state, best allocation included
// so an operator can inspect (or fall back to plain resume seeding).
func (rec CheckpointRecord) ResumableRow() SearchStatz {
	st := rec.Payload.State
	algo := st.Algo
	obj := st.Objective
	return SearchStatz{
		ID:           rec.ID,
		Algo:         algo,
		Objective:    obj,
		State:        "resumable",
		Generation:   st.Generation,
		BestRho:      st.Best.Rho,
		BestMakespan: st.Best.Makespan,
		BestAlloc:    append([]int(nil), st.Best.Alloc...),
		Candidates:   st.Candidates,
		RadiusEvals:  st.RadiusEvals,
	}
}
