package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// Request-ID propagation: every request handled by fepiad (worker or
// coordinator) carries a correlation ID — taken from the client's
// X-Request-ID header, or generated when absent — that appears in the
// response header, in every JSON response and error body (the "requestId"
// field), and in every log line about the request. The cluster coordinator
// forwards the same ID on its worker hops, so one evaluation can be
// followed across nodes with a single grep.

// HeaderRequestID is the correlation header, read from requests and echoed
// on every response.
const HeaderRequestID = "X-Request-ID"

type requestIDKey struct{}

// maxRequestIDLen bounds accepted client-supplied IDs; longer values are
// replaced, not truncated, so logs never carry attacker-sized strings.
const maxRequestIDLen = 128

// NewRequestID generates a fresh 16-hex-char correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is practically unreachable; a fixed fallback
		// still yields a valid (if non-unique) ID rather than an error path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID is the middleware that resolves the request's correlation
// ID (header or generated), stores it in the request context, and sets the
// response header. Shared by the worker daemon and the cluster coordinator.
func WithRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(HeaderRequestID)
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = NewRequestID()
		}
		w.Header().Set(HeaderRequestID, rid)
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, rid)))
	})
}

// RequestIDFrom returns the correlation ID stored by WithRequestID ("" when
// the middleware did not run).
func RequestIDFrom(ctx context.Context) string {
	rid, _ := ctx.Value(requestIDKey{}).(string)
	return rid
}
