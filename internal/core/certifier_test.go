package core

import (
	"math"
	"testing"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

func TestCertifierAgreesWithTolerable(t *testing.T) {
	a := twoParamLinear(t)
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource(5)
	for trial := 0; trial < 500; trial++ {
		vals := []vec.V{
			vec.Of(1*src.Uniform(0.3, 1.8), 2*src.Uniform(0.3, 1.8)),
			vec.Of(4 * src.Uniform(0.3, 1.8)),
		}
		slow, err := a.Tolerable(vals, Normalized{})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := c.Check(vals)
		if err != nil {
			t.Fatal(err)
		}
		if slow != fast {
			t.Fatalf("trial %d: Tolerable=%v Certifier=%v at %v", trial, slow, fast, vals)
		}
	}
}

func TestCertifierRho(t *testing.T) {
	a := twoParamLinear(t)
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Rho()-rho.Value) > 1e-12 {
		t.Errorf("certifier rho %v vs analysis rho %v", c.Rho(), rho.Value)
	}
	if c.Weighting() != "normalized" {
		t.Errorf("weighting = %q", c.Weighting())
	}
}

func TestCertifierDropsUnviolableFeatures(t *testing.T) {
	// Second feature ignores everything except an unbounded direction —
	// actually make it truly unviolable: infinite bound.
	a, err := NewAnalysis([]Feature{
		{Name: "real", Bounds: MaxOnly(10), Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}}},
		{Name: "free", Bounds: Bounds{Min: math.Inf(-1), Max: math.Inf(1)},
			Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}}},
	}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.feats) != 1 || c.feats[0] != 0 {
		t.Errorf("retained features = %v, want [0]", c.feats)
	}
	ok, err := c.Check([]vec.V{vec.Of(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("point inside the only real constraint must pass")
	}
}

func TestCertifierShapeErrors(t *testing.T) {
	a := twoParamLinear(t)
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Check([]vec.V{vec.Of(1, 2)}); err == nil {
		t.Error("wrong parameter count must error")
	}
	if _, err := c.Check([]vec.V{vec.Of(1), vec.Of(4)}); err == nil {
		t.Error("wrong parameter dim must error")
	}
	if _, _, err := c.CriticalMargin([]vec.V{vec.Of(1)}); err == nil {
		t.Error("CriticalMargin shape error expected")
	}
}

func TestCertifierCriticalMargin(t *testing.T) {
	a := twoParamLinear(t)
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	// At the original point the margin equals rho.
	m, feat, err := c.CriticalMargin(a.OrigValues())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m-c.Rho()) > 1e-12 || feat != 0 {
		t.Errorf("margin at orig = %v (feature %d), want rho = %v", m, feat, c.Rho())
	}
	// Far away the margin is negative.
	m, _, err = c.CriticalMargin([]vec.V{vec.Of(50, 50), vec.Of(200)})
	if err != nil {
		t.Fatal(err)
	}
	if m >= 0 {
		t.Errorf("far point margin = %v, want negative", m)
	}
}

func TestCertifierSensitivityWeighting(t *testing.T) {
	// The certifier must also compile the per-feature sensitivity scales.
	a, err := LinearOneElemAnalysis(vec.Of(2, 3), vec.Of(1, 2), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.NewCertifier(Sensitivity{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Check([]vec.V{vec.Of(1.001), vec.Of(2.001)})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("tiny drift must pass under sensitivity weighting too")
	}
}
