package core

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

func TestRadiusSingleNormL2AgreesWithRadiusSingle(t *testing.T) {
	a := twoParamLinear(t)
	for j := 0; j < 2; j++ {
		r2, err := a.RadiusSingle(0, j)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := a.RadiusSingleNorm(0, j, L2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r2.Value-rn.Value) > 1e-12 {
			t.Errorf("param %d: L2 norm radius %v != RadiusSingle %v", j, rn.Value, r2.Value)
		}
	}
}

func TestRadiusSingleNormKnownValues(t *testing.T) {
	// Boundary for param 0 of the fixture: 2x + 3y = 22 from (1, 2).
	// gap = 22 − 8 = 14.
	a := twoParamLinear(t)
	cases := []struct {
		norm Norm
		want float64
	}{
		{L2, 14 / math.Sqrt(13)}, // dual l2
		{L1, 14.0 / 3},           // dual l-inf: max|k| = 3
		{LInf, 14.0 / 5},         // dual l1: |2|+|3| = 5
	}
	for _, c := range cases {
		r, err := a.RadiusSingleNorm(0, 0, c.norm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Value-c.want) > 1e-12 {
			t.Errorf("%v radius = %v, want %v", c.norm, r.Value, c.want)
		}
		if !r.Analytic || r.Side != SideMax {
			t.Errorf("%v metadata wrong: %+v", c.norm, r)
		}
		// The returned point must lie on the boundary.
		vals := []vec.V{r.Point, a.Params[1].Orig}
		if got := a.FeatureValue(0, vals); math.Abs(got-42) > 1e-9 {
			t.Errorf("%v boundary point maps to %v, want 42", c.norm, got)
		}
	}
}

func TestNormOrderingProperty(t *testing.T) {
	// ‖·‖∞ ≤ ‖·‖₂ ≤ ‖·‖₁ implies r_l1 ≥ r_l2 ≥ r_linf for the same
	// boundary (bigger norm → smaller distances → smaller radius... and
	// inversely for the radius as a minimum of the norm). Verify on random
	// linear systems.
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		n := src.Intn(5) + 2
		k := make(vec.V, n)
		orig := make(vec.V, n)
		for i := range k {
			k[i] = src.Uniform(0.1, 10)
			orig[i] = src.Uniform(0.1, 10)
		}
		a, err := LinearOneElemAnalysis(k, orig, 1.1+src.Float64())
		if err != nil {
			return false
		}
		// The Section 3.1 system has one-element parameters; use a single
		// multi-element system instead for a meaningful norm comparison.
		multi, err := NewAnalysis([]Feature{{
			Name:   "phi",
			Bounds: a.Features[0].Bounds,
			Linear: &LinearImpact{Coeffs: []vec.V{k}},
		}}, []Perturbation{{Name: "pi", Orig: orig}})
		if err != nil {
			return false
		}
		r1, err := multi.RadiusSingleNorm(0, 0, L1)
		if err != nil {
			return false
		}
		r2, err := multi.RadiusSingleNorm(0, 0, L2)
		if err != nil {
			return false
		}
		rInf, err := multi.RadiusSingleNorm(0, 0, LInf)
		if err != nil {
			return false
		}
		return r1.Value >= r2.Value-1e-12 && r2.Value >= rInf.Value-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRobustnessSingleNorm(t *testing.T) {
	params := []Perturbation{{Name: "x", Orig: vec.Of(1, 1)}}
	mk := func(maxVal float64, k vec.V) Feature {
		return Feature{Name: "phi", Bounds: MaxOnly(maxVal),
			Linear: &LinearImpact{Coeffs: []vec.V{k}}}
	}
	a, err := NewAnalysis([]Feature{
		mk(10, vec.Of(1, 1)), // gap 8, l1 radius 8
		mk(4, vec.Of(1, 0)),  // gap 3, l1 radius 3
	}, params)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RobustnessSingleNorm(0, L1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-3) > 1e-12 || r.Feature != 1 {
		t.Errorf("rho_l1 = %v via feature %d, want 3 via 1", r.Value, r.Feature)
	}
}

func TestRadiusSingleNormErrors(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := a.RadiusSingleNorm(9, 0, L2); err == nil {
		t.Error("bad feature index must error")
	}
	if _, err := a.RadiusSingleNorm(0, 9, L2); err == nil {
		t.Error("bad param index must error")
	}
	if _, err := a.RobustnessSingleNorm(-1, L2); err == nil {
		t.Error("bad param index must error")
	}
	// Non-linear features are rejected.
	aNum, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Impact: func(vs []vec.V) float64 { return vs[0][0] },
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aNum.RadiusSingleNorm(0, 0, L1); err == nil {
		t.Error("non-linear feature must be rejected")
	}
	if _, err := a.RadiusSingleNorm(0, 0, Norm(9)); err == nil {
		t.Error("unknown norm must error")
	}
}

func TestNormUnreachableBoundary(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(0)}},
	}}, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, norm := range []Norm{L1, L2, LInf} {
		r, err := a.RadiusSingleNorm(0, 1, norm)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(r.Value, 1) {
			t.Errorf("%v: unreachable boundary should give +Inf, got %v", norm, r.Value)
		}
	}
}

func TestNormString(t *testing.T) {
	if L2.String() != "l2" || L1.String() != "l1" || LInf.String() != "linf" {
		t.Error("norm names wrong")
	}
	if Norm(7).String() == "" {
		t.Error("unknown norm must render")
	}
}
