package core

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"testing"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// prodAnalysis builds a one-feature analysis whose impact is the product of
// n one-element parameters — nonlinear, so radii go through the numeric
// level-set tier (the path the cache accelerates).
func prodAnalysis(t testing.TB, n int, bound float64) *Analysis {
	t.Helper()
	params := make([]Perturbation, n)
	for j := range params {
		params[j] = Perturbation{Name: "p", Orig: vec.Of(1)}
	}
	a, err := NewAnalysis([]Feature{{
		Name:   "product",
		Bounds: MaxOnly(bound),
		Impact: func(vs []vec.V) float64 {
			p := 1.0
			for _, v := range vs {
				p *= v[0]
			}
			return p
		},
	}}, params)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// The sharded cache evicts by generation: when a shard's hot map fills, hot
// freezes to g1, g1 to g2, and the old g2 is dropped. With one shard and
// capacity 6 (hot generation of 2), six inserts fill all three generations
// and the seventh pair drops the first.
func TestImpactCacheGenerationalEviction(t *testing.T) {
	c := newImpactCache(CacheOptions{Capacity: 6, Shards: 1})
	key := func(i int) []byte {
		return binary.LittleEndian.AppendUint64(nil, uint64(i))
	}
	for i := 0; i < 6; i++ {
		c.put(key(i), float64(i))
	}
	st := c.statsLocked()
	// Three rotations: {0,1}→g1, then →g2, then dropped when {4,5} froze.
	if st.Entries != 4 || st.Evictions != 2 || st.Stores != 6 {
		t.Fatalf("after 6 puts into cap-6 single-shard cache: %+v", st)
	}
	if _, ok := c.get(key(0)); ok {
		t.Fatal("oldest generation survived eviction")
	}
	for _, i := range []int{2, 3, 4, 5} {
		if v, ok := c.get(key(i)); !ok || v != float64(i) {
			t.Fatalf("get(%d) = %v, %v; surviving generations should hit", i, v, ok)
		}
	}
	// An evicted key is re-stored on its next put and hits again.
	c.put(key(0), 0)
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("re-stored key missed")
	}
	// The total never exceeds the configured capacity, no matter how many
	// distinct keys pass through.
	for i := 10; i < 110; i++ {
		c.put(key(i), float64(i))
	}
	st = c.statsLocked()
	if st.Entries > 6 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
	if st.Entries != int(st.Stores)-int(st.Evictions) {
		t.Fatalf("entry bookkeeping inconsistent: %+v", st)
	}
}

func TestImpactCacheNeverStoresNonFinite(t *testing.T) {
	c := newImpactCache(CacheOptions{Capacity: 8, Shards: 1})
	key := []byte("k")
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c.put(key, v)
	}
	st := c.statsLocked()
	if st.Stores != 0 || st.Entries != 0 {
		t.Fatalf("non-finite values were stored: %+v", st)
	}
	if _, ok := c.get(key); ok {
		t.Fatal("lookup of never-stored key succeeded")
	}
}

// TestCacheNeverCachesFaultyEvaluations drives the integration path: an
// impact function that is finite only near the original point fails every
// numeric search with ErrNumeric. The fault must re-fire on a repeat run (a
// cached NaN would turn a contained failure into a silent one), and no
// non-finite value may ever appear among the cached entries.
func TestCacheNeverCachesFaultyEvaluations(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name:   "poison",
		Bounds: MaxOnly(2),
		Impact: func(vs []vec.V) float64 {
			x := vs[0][0]
			if math.Abs(x-1) > 0.05 {
				return math.NaN() // poisoned everywhere the search must go
			}
			return x * x
		},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	a.EnableImpactCache(64)
	for trial := 0; trial < 2; trial++ {
		_, rerr := a.CombinedRadius(0, Normalized{})
		if !errors.Is(rerr, ErrNumeric) {
			t.Fatalf("trial %d: err = %v, want ErrNumeric", trial, rerr)
		}
	}
	st := a.CacheStats()
	if st.Misses == 0 {
		t.Fatal("expected cache lookups to have happened")
	}
	// Whatever was cached (the finite evaluations near the origin) must be
	// finite; the NaN region must never have been stored.
	a.cache.forEachValue(func(v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v found in cache", v)
		}
	})
	if st.Entries != int(st.Stores)-int(st.Evictions) {
		t.Fatalf("entry bookkeeping inconsistent: %+v", st)
	}
}

func TestCachedRadiusMatchesUncachedAndHits(t *testing.T) {
	a := prodAnalysis(t, 3, 4)
	cold, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	a.EnableImpactCache(0)
	warmup, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(cold.Value - warmup.Value); d > 1e-9 {
		t.Fatalf("uncached %.15g vs first cached %.15g differ by %g", cold.Value, warmup.Value, d)
	}
	if d := math.Abs(cold.Value - cached.Value); d > 1e-9 {
		t.Fatalf("uncached %.15g vs warm cached %.15g differ by %g", cold.Value, cached.Value, d)
	}
	st := a.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("repeat of an identical search produced no cache hits: %+v", st)
	}
	if st.Stores == 0 {
		t.Fatalf("no evaluations were stored: %+v", st)
	}
}

func TestScalesMemo(t *testing.T) {
	k := vec.Of(2, 3, 5)
	orig := vec.Of(1, 2, 4)
	a, err := LinearOneElemAnalysis(k, orig, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	a.EnableImpactCache(0)

	// Sensitivity{} is comparable: the second query must be a memo hit.
	d1, err := a.scalesFor(Sensitivity{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.scalesFor(Sensitivity{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.V(d1).EqualApprox(d2, 0) {
		t.Fatalf("memoized scales differ: %v vs %v", d1, d2)
	}
	st := a.CacheStats()
	if st.ScaleHits != 1 || st.ScaleMisses != 1 {
		t.Fatalf("scale memo counters: %+v", st)
	}

	// Custom carries a slice (not comparable): computed fresh each time, no
	// memo traffic, and crucially no key collision between two different
	// alpha vectors sharing the name "custom".
	ca, err := a.scalesFor(Custom{Alphas: vec.Of(1, 1, 1)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := a.scalesFor(Custom{Alphas: vec.Of(2, 2, 2)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ca[0] == cb[0] {
		t.Fatal("distinct Custom weightings returned identical scales (memo collision)")
	}
	if st := a.CacheStats(); st.ScaleHits != 1 {
		t.Fatalf("Custom weighting went through the memo: %+v", st)
	}
}

func TestQuantizeResolution(t *testing.T) {
	// Values closer than ~4e-13 relative collapse onto one key…
	if quantize(1.0) != quantize(1.0+1e-14) {
		t.Fatal("quantize failed to collapse values 1e-14 apart")
	}
	// …while values the search can distinguish stay distinct.
	if quantize(1.0) == quantize(1.0+1e-9) {
		t.Fatal("quantize collapsed values 1e-9 apart")
	}
}

// TestQuantizeSignZeroCanonical is the regression fixture for the signed-
// zero key split: mantissa-bit masking alone maps +0.0 and −0.0 (and any
// tiny value whose magnitude bits vanish under the mask) to two distinct
// keys even though the search cannot distinguish them, so cache behavior
// depended on which side of zero an evaluation approached from.
func TestQuantizeSignZeroCanonical(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if quantize(negZero) != quantize(0.0) {
		t.Fatalf("quantize(−0.0)=%#x != quantize(+0.0)=%#x", quantize(negZero), quantize(0.0))
	}
	// Subnormals whose magnitude bits are entirely inside the masked low 12
	// bits land in the zero bucket; their signed variants must share it.
	tiny := math.Float64frombits(0x7FF) // smallest masked-away magnitude
	if quantize(-tiny) != quantize(tiny) {
		t.Fatalf("quantize(−tiny)=%#x != quantize(+tiny)=%#x", quantize(-tiny), quantize(tiny))
	}
	if quantize(tiny) != quantize(0.0) {
		t.Fatalf("masked-away magnitude %#x should share the zero bucket", quantize(tiny))
	}
	// Ordinary nonzero values must keep their sign distinct: −1 and +1 are
	// different inputs and must never share a key.
	if quantize(-1.0) == quantize(1.0) {
		t.Fatal("quantize collapsed −1.0 and +1.0")
	}
}

// TestCachedRadiusAcrossSignBoundary is the satellite property test: on
// impact functions whose level-set searches evaluate points on both sides
// of zero (|·|-shaped impacts centered near the origin, which generate
// −0.0 and sign-straddling coordinates inside the search), cached and
// uncached radii agree to 1e-9.
func TestCachedRadiusAcrossSignBoundary(t *testing.T) {
	src := stats.NewSource(1234)
	for trial := 0; trial < 20; trial++ {
		n := 1 + trial%3
		wv := make(vec.V, n)
		orig := make(vec.V, n)
		for i := 0; i < n; i++ {
			wv[i] = src.Uniform(0.5, 2)
			// Originals close to zero so boundary searches straddle it.
			orig[i] = src.Uniform(0.02, 0.3)
		}
		impact := func(vs []vec.V) float64 {
			s := 0.0
			for i, x := range vs[0] {
				s += wv[i] * math.Abs(x)
			}
			return s
		}
		bound := impact([]vec.V{orig}) * src.Uniform(1.5, 4)
		a, err := NewAnalysis([]Feature{{
			Name: "abs", Bounds: MaxOnly(bound), Impact: impact,
		}}, []Perturbation{{Name: "x", Orig: orig}})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := a.CombinedRadius(0, Normalized{})
		if err != nil {
			t.Fatalf("trial %d uncached: %v", trial, err)
		}
		a.EnableImpactCache(0)
		warm, err := a.CombinedRadius(0, Normalized{})
		if err != nil {
			t.Fatalf("trial %d cached: %v", trial, err)
		}
		if d := math.Abs(cold.Value - warm.Value); d > 1e-9 {
			t.Fatalf("trial %d: uncached %.15g vs cached %.15g differ by %g across sign boundary",
				trial, cold.Value, warm.Value, d)
		}
	}
}

// TestCacheEvictionRaceHammer drives LRU eviction from concurrent batch
// workers (run under -race in CI): a deliberately tiny cache forces
// eviction on nearly every store while many goroutines search the same
// analysis, then the documented mutation recipe (mutate the frozen
// analysis, re-enable the cache) must produce radii and weighting scales
// identical to a fresh uncached analysis — never a stale memo.
func TestCacheEvictionRaceHammer(t *testing.T) {
	a := prodAnalysis(t, 3, 6)
	a.EnableImpactCache(8) // tiny: evicts on almost every store
	ws := make([]Weighting, 8)
	for i := range ws {
		ws[i] = Custom{Alphas: vec.Of(1+float64(i)*0.1, 1, 1), Label: "w"}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs := a.RobustnessBatch(ws, EvalOptions{Workers: 4})
			for _, err := range errs {
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	if st := a.CacheStats(); st.Evictions == 0 {
		t.Fatalf("hammer produced no evictions (cache too large for the test): %+v", st)
	}

	// Mutation recipe: change the analysis, re-enable the cache. Radii and
	// sensitivity scales must match a fresh analysis with no cache at all.
	a.Params[0].Orig = vec.Of(1.5)
	a.EnableImpactCache(8)
	got, err := a.Robustness(Sensitivity{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := prodAnalysis(t, 3, 6)
	fresh.Params[0].Orig = vec.Of(1.5)
	want, err := fresh.Robustness(Sensitivity{})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(got.Value - want.Value); d > 1e-9 {
		t.Fatalf("stale memo after mutation + re-enable: got %.15g, fresh %.15g (Δ %g)",
			got.Value, want.Value, d)
	}
}

func TestCacheDisabledStatsZero(t *testing.T) {
	a := prodAnalysis(t, 2, 4)
	if st := a.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("stats without a cache: %+v", st)
	}
	a.EnableImpactCache(16)
	if _, err := a.CombinedRadius(0, Normalized{}); err != nil {
		t.Fatal(err)
	}
	if st := a.CacheStats(); st.Misses == 0 {
		t.Fatalf("enabled cache saw no traffic: %+v", st)
	}
	a.DisableImpactCache()
	if st := a.CacheStats(); st != (CacheStats{}) {
		t.Fatalf("stats after disable: %+v", st)
	}
}

// TestCacheSharedAcrossTiers verifies that single-parameter and combined
// searches of the same feature share cache entries: both key on the full
// quantized native vector.
func TestCacheSharedAcrossTiers(t *testing.T) {
	a := prodAnalysis(t, 2, 4)
	a.EnableImpactCache(0)
	if _, err := a.CombinedRadius(0, Normalized{}); err != nil {
		t.Fatal(err)
	}
	afterCombined := a.CacheStats()
	if _, err := a.RadiusSingle(0, 0); err != nil {
		t.Fatal(err)
	}
	afterSingle := a.CacheStats()
	if afterSingle.Hits <= afterCombined.Hits {
		t.Fatalf("single-parameter search reused no combined-search entries: %+v -> %+v",
			afterCombined, afterSingle)
	}
}

// TestCachedNumericAgreesOnRandomizedImpacts is the property test of the
// acceptance criteria: on randomized quadratic impacts evaluated through
// the *numeric* tier (the quadratic form is deliberately not declared Quad)
// and under both Normalized and Custom weightings, cached and uncached
// radii agree to 1e-9.
func TestCachedNumericAgreesOnRandomizedImpacts(t *testing.T) {
	src := stats.NewSource(42)
	for trial := 0; trial < 25; trial++ {
		n := 2 + trial%3
		av := make(vec.V, n)
		cv := make(vec.V, n)
		orig := make(vec.V, n)
		for i := 0; i < n; i++ {
			av[i] = src.Uniform(0.5, 2)
			cv[i] = src.Uniform(-0.5, 0.5)
			orig[i] = cv[i] + src.Uniform(0.3, 1)
		}
		impact := func(vs []vec.V) float64 {
			s := 0.0
			for i, x := range vs[0] {
				d := x - cv[i]
				s += av[i] * d * d
			}
			return s
		}
		bound := impact([]vec.V{orig}) * src.Uniform(1.2, 2)
		a, err := NewAnalysis([]Feature{{
			Name: "quad", Bounds: MaxOnly(bound), Impact: impact,
		}}, []Perturbation{{Name: "x", Orig: orig}})
		if err != nil {
			t.Fatal(err)
		}
		ws := []Weighting{Normalized{}, Custom{Alphas: vec.Of(src.Uniform(0.5, 2))}}
		for _, w := range ws {
			cold, err := a.CombinedRadius(0, w)
			if err != nil {
				t.Fatalf("trial %d (%s) uncached: %v", trial, w.Name(), err)
			}
			a.EnableImpactCache(0)
			for rep := 0; rep < 2; rep++ {
				warm, err := a.CombinedRadius(0, w)
				if err != nil {
					t.Fatalf("trial %d (%s) cached rep %d: %v", trial, w.Name(), rep, err)
				}
				if d := math.Abs(cold.Value - warm.Value); d > 1e-9 {
					t.Fatalf("trial %d (%s): uncached %.15g vs cached %.15g differ by %g",
						trial, w.Name(), cold.Value, warm.Value, d)
				}
			}
			a.DisableImpactCache()
		}
	}
}

// TestShardedCacheRaceHammer is the regression race test for the lock-free
// read path (run under -race in CI): goroutines hammer gets and puts over a
// shared keyspace with values derived from the key, interleaved with stats
// snapshots. Every hit must return exactly the key's value — a torn read,
// a reused map, or a publish without the atomic pointer would either trip
// the race detector or return a mismatched value.
func TestShardedCacheRaceHammer(t *testing.T) {
	c := newImpactCache(CacheOptions{Capacity: 384, Shards: 4})
	const keys = 200
	key := func(i int) []byte {
		return binary.LittleEndian.AppendUint64(nil, uint64(i)*2654435761)
	}
	val := func(i int) float64 { return float64(i)*1.5 + 0.25 }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 8)
			for op := 0; op < 4000; op++ {
				i := (op*7 + g*13) % keys
				buf = append(buf[:0], key(i)...)
				if v, ok := c.get(buf); ok {
					if v != val(i) {
						panic("cache hit returned a foreign value")
					}
				} else {
					c.put(buf, val(i))
				}
				if op%512 == 0 {
					c.statsLocked()
					c.shardStats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.statsLocked()
	if st.Hits+st.Misses != 8*4000 {
		t.Fatalf("lookup counters lost updates: %+v", st)
	}
	if st.Entries != int(st.Stores)-int(st.Evictions) {
		t.Fatalf("entry bookkeeping inconsistent after hammer: %+v", st)
	}
}

// TestShardedCacheEvictionUnderConcurrentWriters drives generation rotation
// from many concurrent writers on a deliberately tiny cache (satellite
// coverage, run under -race): every shard must evict, the total must stay
// within capacity, and the quiescent counters must reconcile.
func TestShardedCacheEvictionUnderConcurrentWriters(t *testing.T) {
	opt := CacheOptions{Capacity: 48, Shards: 2}
	c := newImpactCache(opt)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 0, 8)
			for i := 0; i < 3000; i++ {
				buf = binary.LittleEndian.AppendUint64(buf[:0], uint64(g*100000+i))
				c.put(buf, float64(i))
			}
		}(g)
	}
	wg.Wait()
	st := c.statsLocked()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under write pressure: %+v", st)
	}
	if st.Entries > opt.Capacity {
		t.Fatalf("capacity bound violated: %d entries > %d: %+v", st.Entries, opt.Capacity, st)
	}
	if st.Entries != int(st.Stores)-int(st.Evictions) {
		t.Fatalf("entry bookkeeping inconsistent: %+v", st)
	}
	for i, sh := range c.shardStats() {
		if sh.Evictions == 0 {
			t.Errorf("shard %d never rotated: %+v", i, sh)
		}
	}
}

// Per-shard stats must sum to the aggregate, and shard counts round up to a
// power of two.
func TestCacheShardStatsAggregate(t *testing.T) {
	a := prodAnalysis(t, 3, 4)
	a.EnableImpactCacheWith(CacheOptions{Capacity: 1 << 12, Shards: 3})
	if _, err := a.CombinedRadius(0, Normalized{}); err != nil {
		t.Fatal(err)
	}
	shards := a.CacheShardStats()
	if len(shards) != 4 {
		t.Fatalf("shard count 3 should round up to 4, got %d", len(shards))
	}
	var sum CacheStats
	for _, sh := range shards {
		sum.Hits += sh.Hits
		sum.Misses += sh.Misses
		sum.Stores += sh.Stores
		sum.Evictions += sh.Evictions
		sum.Entries += sh.Entries
	}
	st := a.CacheStats()
	if sum.Hits != st.Hits || sum.Misses != st.Misses || sum.Stores != st.Stores ||
		sum.Evictions != st.Evictions || sum.Entries != st.Entries {
		t.Fatalf("shard stats %+v do not sum to aggregate %+v", sum, st)
	}
	if a.CacheShardStats() == nil {
		t.Fatal("enabled cache reported nil shard stats")
	}
	a.DisableImpactCache()
	if a.CacheShardStats() != nil {
		t.Fatal("disabled cache reported shard stats")
	}
}
