package core

import (
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// k-probe bridge: adapts a Feature.ImpactK batch evaluator to the
// optimize.FuncK the level-set search feeds probe blocks through. Each
// incoming probe (a P-space point for combined searches, a single parameter
// block for single-parameter searches) is converted to a full native
// vector; probes answered by the impact cache are filtered out and only the
// misses reach ImpactK, batched in one call. Values are bit-identical to
// the scalar path by the ImpactK contract (Validate spot-checks it), so
// k-probe searches return exactly the radii scalar searches do.

// impactFK builds the FuncK for one boundary search of feature i.
//
// Combined mode (d non-nil): probes are P-space points of dimension
// TotalDim; native = probe / d elementwise. Single-parameter mode (d nil):
// probes are blocks of parameter j; template holds the full native vector
// with every other block frozen at π^orig, and blockOff is block j's offset
// in it. The returned closure owns growable row buffers sized on first use
// (the search calls it with up to KBlock scan probes, or 2n gradient
// probes) and reuses them for every call of the search.
func (a *Analysis) impactFK(g *guard, i int, d vec.V, blockOff int, template vec.V) optimize.FuncK {
	fk := g.wrapK(a.Features[i].ImpactK)
	cache := a.cache
	n := a.TotalDim()
	var (
		back     []float64
		rows     []vec.V
		kout     []float64
		keys     [][]byte
		miss     []int
		missRows []vec.V
	)
	return func(xs [][]float64, out []float64) {
		k := len(xs)
		if len(rows) < k {
			back = make([]float64, k*n)
			rows = make([]vec.V, k)
			for p := range rows {
				rows[p] = vec.V(back[p*n : (p+1)*n])
				if template != nil {
					copy(rows[p], template)
				}
			}
			kout = make([]float64, k)
			keys = make([][]byte, k)
			if cache != nil {
				for p := range keys {
					keys[p] = make([]byte, 0, 4+8*n)
				}
			}
		}
		miss, missRows = miss[:0], missRows[:0]
		for p := 0; p < k; p++ {
			nat := rows[p]
			if d != nil {
				vec.DivInto(nat, vec.V(xs[p]), d)
			} else {
				copy(nat[blockOff:blockOff+len(xs[p])], xs[p])
			}
			if cache != nil {
				keys[p] = appendKey(keys[p], i, nat)
				if v, ok := cache.get(keys[p]); ok {
					out[p] = v
					continue
				}
			}
			miss = append(miss, p)
			missRows = append(missRows, nat)
		}
		if len(miss) == 0 {
			return
		}
		ko := kout[:len(miss)]
		fk(missRows, ko)
		for q, p := range miss {
			out[p] = ko[q]
			if cache != nil {
				cache.put(keys[p], ko[q]) // refuses NaN/Inf: faults are never cached
			}
		}
	}
}
