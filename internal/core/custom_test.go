package core

import (
	"math"
	"testing"

	"fepia/internal/vec"
)

func TestCustomName(t *testing.T) {
	if (Custom{}).Name() != "custom" {
		t.Error("default name wrong")
	}
	if (Custom{Label: "unit-adjusted"}).Name() != "unit-adjusted" {
		t.Error("label not used")
	}
}

func TestCustomScalesShape(t *testing.T) {
	a := twoParamLinear(t) // dims 2 + 1
	d, err := Custom{Alphas: vec.Of(2, 0.5)}.Scales(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.EqualApprox(vec.Of(2, 2, 0.5), 0) {
		t.Errorf("scales = %v", d)
	}
}

func TestCustomErrors(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := (Custom{Alphas: vec.Of(1)}).Scales(a, 0); err == nil {
		t.Error("alpha count mismatch must error")
	}
	if _, err := (Custom{Alphas: vec.Of(1, 0)}).Scales(a, 0); err == nil {
		t.Error("zero alpha must error")
	}
	if _, err := (Custom{Alphas: vec.Of(1, math.NaN())}).Scales(a, 0); err == nil {
		t.Error("NaN alpha must error")
	}
}

func TestCustomMatchesSensitivityWhenAlphasAreReciprocalRadii(t *testing.T) {
	// Setting α_j = 1/r_μ(φ, π_j) by hand must reproduce the sensitivity
	// weighting's combined radius exactly — the two paths implement the
	// same P construction.
	a, err := LinearOneElemAnalysis(vec.Of(2, 3, 5), vec.Of(1, 2, 4), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	alphas := make(vec.V, 3)
	for j := 0; j < 3; j++ {
		r, err := a.RadiusSingle(0, j)
		if err != nil {
			t.Fatal(err)
		}
		alphas[j] = 1 / r.Value
	}
	rc, err := a.CombinedRadius(0, Custom{Alphas: alphas})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := a.CombinedRadius(0, Sensitivity{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rc.Value-rs.Value) > 1e-12 {
		t.Errorf("custom %v vs sensitivity %v", rc.Value, rs.Value)
	}
}

func TestCustomRadiusScaleBehavior(t *testing.T) {
	// Up-weighting a parameter (larger alpha) stretches its axis in
	// P-space, so boundary points that move along it get FARTHER and the
	// radius vs that direction grows; the minimum radius shifts to the
	// other kind. Verify the qualitative direction on the fixture.
	a := twoParamLinear(t)
	base, err := a.CombinedRadius(0, Custom{Alphas: vec.Of(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := a.CombinedRadius(0, Custom{Alphas: vec.Of(100, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Value <= base.Value {
		t.Errorf("up-weighting exec-times should raise the radius: %v -> %v", base.Value, heavy.Value)
	}
}

func TestCustomTolerableRoundTrip(t *testing.T) {
	a := twoParamLinear(t)
	w := Custom{Alphas: vec.Of(1, 1e-3), Label: "bytes-to-kb"}
	ok, err := a.Tolerable(a.OrigValues(), w)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("orig point must be tolerable under any valid weighting")
	}
	vals := []vec.V{vec.Of(1.01, 2.01), vec.Of(4.01)}
	p, err := ToP(a, w, 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromP(a, w, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vals {
		if !back[j].EqualApprox(vals[j], 1e-12) {
			t.Errorf("round trip block %d: %v -> %v", j, vals[j], back[j])
		}
	}
}
