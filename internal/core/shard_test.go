package core

import (
	"context"
	"math"
	"testing"

	"fepia/internal/vec"
)

// shardTestAnalysis builds a mixed-tier analysis: an analytic linear
// feature, an analytic quadratic feature, and a numeric multiplicative
// feature, over two perturbation parameters.
func shardTestAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a, err := NewAnalysis(
		[]Feature{
			{
				Name:   "lat",
				Bounds: MaxOnly(40),
				Linear: &LinearImpact{Coeffs: []vec.V{{2, 3}, {1}}, Const: 1},
			},
			{
				Name:   "quad",
				Bounds: Band(0, 30),
				Quad: &QuadImpact{
					A: []vec.V{{1, 0.5}, {2}},
					C: []vec.V{{0.5, 1}, {1.5}},
				},
			},
			{
				Name:   "mult",
				Bounds: MaxOnly(90),
				Impact: func(vs []vec.V) float64 {
					return 1 + 2*math.Abs(vs[0][0])*math.Abs(vs[0][1])*math.Abs(vs[1][0])
				},
			},
		},
		[]Perturbation{
			{Name: "exec", Unit: "s", Orig: vec.V{1, 2}},
			{Name: "load", Unit: "req", Orig: vec.V{3}},
		},
	)
	if err != nil {
		t.Fatalf("NewAnalysis: %v", err)
	}
	return a
}

func TestShardFeatures(t *testing.T) {
	cases := []struct {
		n, shards int
		want      [][]int
	}{
		{0, 3, nil},
		{3, 0, nil},
		{1, 1, [][]int{{0}}},
		{2, 5, [][]int{{0}, {1}}},
		{5, 2, [][]int{{0, 1, 2}, {3, 4}}},
		{6, 3, [][]int{{0, 1}, {2, 3}, {4, 5}}},
		{7, 3, [][]int{{0, 1, 2}, {3, 4}, {5, 6}}},
	}
	for _, c := range cases {
		got := ShardFeatures(c.n, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("ShardFeatures(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
		}
		for s := range got {
			if len(got[s]) != len(c.want[s]) {
				t.Fatalf("ShardFeatures(%d, %d)[%d] = %v, want %v", c.n, c.shards, s, got[s], c.want[s])
			}
			for q := range got[s] {
				if got[s][q] != c.want[s][q] {
					t.Fatalf("ShardFeatures(%d, %d) = %v, want %v", c.n, c.shards, got, c.want)
				}
			}
		}
	}
	// Every partition must cover 0…n−1 exactly once, in order.
	for n := 1; n <= 9; n++ {
		for shards := 1; shards <= 5; shards++ {
			next := 0
			for _, sh := range ShardFeatures(n, shards) {
				if len(sh) == 0 {
					t.Fatalf("ShardFeatures(%d, %d) has an empty shard", n, shards)
				}
				for _, i := range sh {
					if i != next {
						t.Fatalf("ShardFeatures(%d, %d) skips/duplicates: saw %d, want %d", n, shards, i, next)
					}
					next++
				}
			}
			if next != n {
				t.Fatalf("ShardFeatures(%d, %d) covers %d features", n, shards, next)
			}
		}
	}
}

// shardAndFold evaluates the analysis sliced into `shards` shards and folds
// the result; fresh analyses per shard mimic independent worker processes.
func shardAndFold(t *testing.T, build func() *Analysis, w Weighting, opt EvalOptions, shards int) (Robustness, []error) {
	t.Helper()
	ref := build()
	n := len(ref.Features)
	radii := make([]Radius, n)
	errs := make([]error, n)
	for _, sh := range ShardFeatures(n, shards) {
		a := build() // each shard evaluates on its own analysis (own cache)
		rr, ee := a.RobustnessShardCtx(context.Background(), sh, w, opt)
		for q, i := range sh {
			radii[i], errs[i] = rr[q], ee[q]
		}
	}
	return FoldRadii(w.Name(), radii), errs
}

// assertSameRobustness requires bit-identical values, criticals, and flags.
func assertSameRobustness(t *testing.T, got, want Robustness) {
	t.Helper()
	if math.Float64bits(got.Value) != math.Float64bits(want.Value) {
		t.Fatalf("Value = %v (bits %x), want %v (bits %x)",
			got.Value, math.Float64bits(got.Value), want.Value, math.Float64bits(want.Value))
	}
	if got.Critical != want.Critical {
		t.Fatalf("Critical = %d, want %d", got.Critical, want.Critical)
	}
	if got.Degraded != want.Degraded {
		t.Fatalf("Degraded = %v, want %v", got.Degraded, want.Degraded)
	}
	if got.Weighting != want.Weighting {
		t.Fatalf("Weighting = %q, want %q", got.Weighting, want.Weighting)
	}
	if len(got.PerFeature) != len(want.PerFeature) {
		t.Fatalf("PerFeature has %d radii, want %d", len(got.PerFeature), len(want.PerFeature))
	}
	for i := range want.PerFeature {
		g, w := got.PerFeature[i], want.PerFeature[i]
		if math.Float64bits(g.Value) != math.Float64bits(w.Value) ||
			g.Feature != w.Feature || g.Side != w.Side || g.Degraded != w.Degraded {
			t.Fatalf("PerFeature[%d] = %+v, want %+v", i, g, w)
		}
	}
}

func TestShardEquivalence(t *testing.T) {
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSeed: 1}
	for _, w := range []Weighting{Normalized{}, Sensitivity{}} {
		want, err := shardTestAnalysis(t).RobustnessWith(context.Background(), w, opt)
		if err != nil {
			t.Fatalf("RobustnessWith(%s): %v", w.Name(), err)
		}
		for shards := 1; shards <= 4; shards++ {
			got, errs := shardAndFold(t, func() *Analysis { return shardTestAnalysis(t) }, w, opt, shards)
			for i, e := range errs {
				if e != nil {
					t.Fatalf("%s/%d shards: feature %d: %v", w.Name(), shards, i, e)
				}
			}
			assertSameRobustness(t, got, want)
		}
	}
}

func TestShardEquivalenceWithCache(t *testing.T) {
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSeed: 1}
	build := func() *Analysis {
		a := shardTestAnalysis(t)
		a.EnableImpactCache(0)
		return a
	}
	ref := build()
	want, err := ref.RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatalf("RobustnessWith: %v", err)
	}
	got, errs := shardAndFold(t, build, Normalized{}, opt, 3)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("feature %d: %v", i, e)
		}
	}
	assertSameRobustness(t, got, want)
}

// poisonedShardAnalysis wraps the numeric feature's impact to return NaN, so
// it fails with ErrNumeric and degrades to the Monte-Carlo fallback.
func poisonedShardAnalysis(t *testing.T) *Analysis {
	a := shardTestAnalysis(t)
	inner := a.Features[2].Impact
	a.Features[2].Impact = func(vs []vec.V) float64 {
		if v := inner(vs); v < 60 {
			return v
		}
		return math.NaN()
	}
	return a
}

func TestShardDegradedEquivalence(t *testing.T) {
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSamples: 64, DegradeSeed: 7}
	want, err := poisonedShardAnalysis(t).RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatalf("RobustnessWith: %v", err)
	}
	if !want.Degraded {
		t.Fatalf("reference result is not degraded; the poison did not bite")
	}
	for shards := 1; shards <= 3; shards++ {
		got, errs := shardAndFold(t, func() *Analysis { return poisonedShardAnalysis(t) }, Normalized{}, opt, shards)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("%d shards: feature %d: %v", shards, i, e)
			}
		}
		assertSameRobustness(t, got, want)
	}
}

func TestShardForceDegradedEquivalence(t *testing.T) {
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSamples: 64, DegradeSeed: 3, ForceDegraded: true}
	want, err := shardTestAnalysis(t).RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatalf("RobustnessWith: %v", err)
	}
	got, errs := shardAndFold(t, func() *Analysis { return shardTestAnalysis(t) }, Normalized{}, opt, 2)
	for i, e := range errs {
		if e != nil {
			t.Fatalf("feature %d: %v", i, e)
		}
	}
	assertSameRobustness(t, got, want)
}

func TestShardErrorParity(t *testing.T) {
	build := func() *Analysis {
		a := shardTestAnalysis(t)
		a.Features[2].Impact = func([]vec.V) float64 { panic("boom") }
		return a
	}
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSeed: 1}
	_, wantErr := build().RobustnessWith(context.Background(), Normalized{}, opt)
	if wantErr == nil {
		t.Fatalf("reference evaluation did not fail")
	}
	a := build()
	rr, ee := a.RobustnessShardCtx(context.Background(), []int{2}, Normalized{}, opt)
	if ee[0] == nil {
		t.Fatalf("shard evaluation did not fail; radius %+v", rr[0])
	}
	if ee[0].Error() != wantErr.Error() {
		t.Fatalf("shard error %q, want %q", ee[0].Error(), wantErr.Error())
	}
	// The other features still answer on their own shard.
	rr, ee = a.RobustnessShardCtx(context.Background(), []int{0, 1}, Normalized{}, opt)
	for q := range rr {
		if ee[q] != nil {
			t.Fatalf("healthy feature %d failed: %v", q, ee[q])
		}
		if rr[q].Feature != q {
			t.Fatalf("radius carries feature %d, want %d", rr[q].Feature, q)
		}
	}
}

func TestFoldRadiiTieBreaking(t *testing.T) {
	radii := []Radius{
		{Value: 2, Feature: 0},
		{Value: 1, Feature: 1},
		{Value: 1, Feature: 2}, // tie: the lower index must win
	}
	res := FoldRadii("normalized", radii)
	if res.Critical != 1 || res.Value != 1 {
		t.Fatalf("fold = (value %v, critical %d), want (1, 1)", res.Value, res.Critical)
	}
	inf := []Radius{
		{Value: math.Inf(1), Feature: 0},
		{Value: math.Inf(1), Feature: 1},
	}
	res = FoldRadii("normalized", inf)
	if res.Critical != -1 || !math.IsInf(res.Value, 1) {
		t.Fatalf("all-infinite fold = (value %v, critical %d), want (+Inf, -1)", res.Value, res.Critical)
	}
	deg := []Radius{{Value: 3, Feature: 0}, {Value: 5, Feature: 1, Degraded: true}}
	if res := FoldRadii("normalized", deg); !res.Degraded {
		t.Fatalf("fold of a degraded radius is not flagged Degraded")
	}
}
