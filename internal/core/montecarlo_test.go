package core

import (
	"math"
	"testing"

	"fepia/internal/vec"
)

func TestMonteCarloUniformBallInsideRadiusIsSafe(t *testing.T) {
	// The defining relationship: sampling uniformly from the P-ball of
	// radius rho (the normalized combined radius) must produce ZERO
	// violations — the ball is the certified region.
	a := twoParamLinear(t)
	rho, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.MonteCarlo(MCOptions{
		Model:   MCUniformBall,
		Spread:  rho.Value * 0.999,
		Samples: 5000,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Errorf("violations inside the certified ball: %d", res.Violations)
	}
	if res.MaxPDist >= rho.Value {
		t.Errorf("sampled distance %v exceeded requested ball %v", res.MaxPDist, rho.Value*0.999)
	}
	if res.CriticalFeature != -1 {
		t.Errorf("critical feature should be -1 with no violations, got %d", res.CriticalFeature)
	}
}

func TestMonteCarloBeyondRadiusFindsViolations(t *testing.T) {
	a := twoParamLinear(t)
	rho, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.MonteCarlo(MCOptions{
		Model:   MCUniformBall,
		Spread:  rho.Value * 3,
		Samples: 5000,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Error("a ball 3x the radius must contain violating points")
	}
	if res.CriticalFeature != 0 {
		t.Errorf("critical feature = %d, want 0 (the only feature)", res.CriticalFeature)
	}
	if res.ViolationRate != float64(res.Violations)/float64(res.Samples) {
		t.Error("rate inconsistent with counts")
	}
}

func TestMonteCarloRelativeNormalRateGrowsWithSpread(t *testing.T) {
	a := twoParamLinear(t)
	var prev float64
	for _, sigma := range []float64{0.05, 0.2, 0.5} {
		res, err := a.MonteCarlo(MCOptions{Model: MCRelativeNormal, Spread: sigma, Samples: 4000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolationRate < prev {
			t.Errorf("violation rate not monotone in spread: %v after %v", res.ViolationRate, prev)
		}
		prev = res.ViolationRate
	}
	if prev == 0 {
		t.Error("sigma=0.5 should produce some violations on this system")
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	a := twoParamLinear(t)
	opt := MCOptions{Model: MCRelativeNormal, Spread: 0.3, Samples: 1000, Seed: 42}
	r1, err := a.MonteCarlo(opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.MonteCarlo(opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("Monte-Carlo must be deterministic for a fixed seed")
	}
}

func TestMonteCarloOptionErrors(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := a.MonteCarlo(MCOptions{Spread: 0}); err == nil {
		t.Error("zero spread must error")
	}
	if _, err := a.MonteCarlo(MCOptions{Spread: math.NaN()}); err == nil {
		t.Error("NaN spread must error")
	}
	if _, err := a.MonteCarlo(MCOptions{Spread: 0.1, Model: MCModel(99)}); err == nil {
		t.Error("unknown model must error")
	}
}

func TestMonteCarloNeedsPositiveOriginals(t *testing.T) {
	aNeg, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(-1)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aNeg.MonteCarlo(MCOptions{Spread: 0.1}); err == nil {
		t.Error("negative originals must be rejected")
	}
}

func TestMonteCarloDefaultSamples(t *testing.T) {
	a := twoParamLinear(t)
	res, err := a.MonteCarlo(MCOptions{Model: MCRelativeNormal, Spread: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 10000 {
		t.Errorf("default samples = %d, want 10000", res.Samples)
	}
}

func TestMCModelString(t *testing.T) {
	if MCRelativeNormal.String() != "relative-normal" || MCUniformBall.String() != "uniform-P-ball" {
		t.Error("model names wrong")
	}
	if MCModel(9).String() == "" {
		t.Error("unknown model must still render")
	}
}
