package core

// Hardened-runtime tests: panic isolation, numeric-failure containment,
// cooperative cancellation, evaluation budgets, graceful degradation, and
// early termination of the concurrent pool — driven by the fault-injection
// harness in internal/chaos.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"fepia/internal/chaos"
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// prodXY is a benign nonlinear (numeric-tier) impact over two 1-D params.
func prodXY(vs []vec.V) float64 { return vs[0][0] * vs[1][0] }

// twoParamAnalysis builds a numeric-tier analysis with one feature whose
// impact is replaced by `impact` after validation (so injected faults do
// not trip NewAnalysis).
func twoParamAnalysis(t *testing.T, impact ImpactFunc) *Analysis {
	t.Helper()
	a, err := NewAnalysis(
		[]Feature{{Name: "phi", Bounds: MaxOnly(4), Impact: prodXY}},
		[]Perturbation{
			{Name: "x", Orig: vec.Of(1)},
			{Name: "y", Orig: vec.Of(1)},
		})
	if err != nil {
		t.Fatal(err)
	}
	if impact != nil {
		a.Features[0].Impact = impact
	}
	return a
}

func TestPanickingImpactIsContained(t *testing.T) {
	in := chaos.Injector{Fault: chaos.PanicFault}
	a := twoParamAnalysis(t, in.Wrap(prodXY))

	_, err := a.Robustness(Normalized{})
	if !errors.Is(err, ErrImpactPanic) {
		t.Fatalf("Robustness error = %v, want ErrImpactPanic", err)
	}
	var pe *ImpactPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry *ImpactPanicError", err)
	}
	if pe.Feature != 0 {
		t.Fatalf("panic attributed to feature %d, want 0", pe.Feature)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}

	if _, err := a.RadiusSingle(0, 0); !errors.Is(err, ErrImpactPanic) {
		t.Fatalf("RadiusSingle error = %v, want ErrImpactPanic", err)
	}
	if _, err := a.MonteCarlo(MCOptions{Spread: 0.1, Samples: 16}); !errors.Is(err, ErrImpactPanic) {
		t.Fatalf("MonteCarlo error = %v, want ErrImpactPanic", err)
	}
}

func TestCorruptedDimsPanicIsContained(t *testing.T) {
	// The corrupted vectors make prodXY index out of range; the runtime
	// must convert that panic into ErrImpactPanic, not crash.
	in := chaos.Injector{Fault: chaos.CorruptDimsFault}
	a := twoParamAnalysis(t, in.Wrap(prodXY))
	_, err := a.Robustness(Normalized{})
	if !errors.Is(err, ErrImpactPanic) {
		t.Fatalf("error = %v, want ErrImpactPanic", err)
	}
}

func TestNonFiniteImpactYieldsErrNumeric(t *testing.T) {
	for _, fault := range []chaos.Fault{chaos.NaNFault, chaos.PosInfFault, chaos.NegInfFault} {
		t.Run(fault.String(), func(t *testing.T) {
			in := chaos.Injector{Fault: fault}
			a := twoParamAnalysis(t, in.Wrap(prodXY))
			_, err := a.Robustness(Normalized{})
			if !errors.Is(err, ErrNumeric) {
				t.Fatalf("Robustness error = %v, want ErrNumeric", err)
			}
			var ne *NumericError
			if !errors.As(err, &ne) {
				t.Fatalf("error %v does not carry *NumericError", err)
			}
			if ne.Feature != 0 {
				t.Fatalf("numeric failure attributed to feature %d, want 0", ne.Feature)
			}
		})
	}
}

func TestMonteCarloNaNYieldsErrNumericNotSilentViolation(t *testing.T) {
	in := chaos.Injector{Fault: chaos.NaNFault}
	a := twoParamAnalysis(t, in.Wrap(prodXY))
	_, err := a.MonteCarlo(MCOptions{Spread: 0.05, Samples: 64})
	if !errors.Is(err, ErrNumeric) {
		t.Fatalf("MonteCarlo error = %v, want ErrNumeric", err)
	}
}

func TestRobustnessCtxCancellationIsPrompt(t *testing.T) {
	in := chaos.Injector{Fault: chaos.SlowFault, Delay: 5 * time.Millisecond}
	a := twoParamAnalysis(t, in.Wrap(prodXY))
	o := chaos.ProbeCancel(30*time.Millisecond, 100*time.Millisecond, func(ctx context.Context) error {
		_, err := a.RobustnessCtx(ctx, Normalized{})
		return err
	})
	if o.TimedOut {
		t.Fatalf("RobustnessCtx did not return within 100ms of cancellation (elapsed %v)", o.Elapsed)
	}
	if o.Panicked() {
		t.Fatalf("RobustnessCtx panicked: %v", o.Panic)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.Err)
	}
}

func TestRobustnessCtxDeadline(t *testing.T) {
	in := chaos.Injector{Fault: chaos.SlowFault, Delay: 5 * time.Millisecond}
	a := twoParamAnalysis(t, in.Wrap(prodXY))
	o := chaos.Probe(30*time.Millisecond, 100*time.Millisecond, func(ctx context.Context) error {
		_, err := a.RobustnessConcurrentCtx(ctx, Normalized{}, 4)
		return err
	})
	if o.TimedOut {
		t.Fatalf("RobustnessConcurrentCtx overran its deadline (elapsed %v)", o.Elapsed)
	}
	if !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", o.Err)
	}
}

func TestMonteCarloCtxCancellationIsPrompt(t *testing.T) {
	in := chaos.Injector{Fault: chaos.SlowFault, Delay: 5 * time.Millisecond}
	a := twoParamAnalysis(t, in.Wrap(prodXY))
	o := chaos.ProbeCancel(30*time.Millisecond, 100*time.Millisecond, func(ctx context.Context) error {
		_, err := a.MonteCarloCtx(ctx, MCOptions{Spread: 0.1, Samples: 1 << 20})
		return err
	})
	if o.TimedOut {
		t.Fatalf("MonteCarloCtx did not return within 100ms of cancellation (elapsed %v)", o.Elapsed)
	}
	if !errors.Is(o.Err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", o.Err)
	}
}

func TestLevelSetEvalBudget(t *testing.T) {
	a := twoParamAnalysis(t, nil)
	a.NumOpts.MaxEvals = 10 // far too few to converge
	_, err := a.Robustness(Normalized{})
	if !errors.Is(err, optimize.ErrEvalBudget) {
		t.Fatalf("error = %v, want optimize.ErrEvalBudget", err)
	}
}

// nanBeyond is finite (2x) for x ≤ 1.5 and NaN past it: the numeric tier
// must refuse to produce a radius (the NaN region could hide the boundary),
// while the Monte-Carlo fallback treats NaN as a violation and recovers a
// lower-bound estimate of 0.5.
func nanBeyond(vs []vec.V) float64 {
	x := vs[0][0]
	if x > 1.5 || x < -1.5 {
		return math.NaN()
	}
	return 2 * x
}

func nanAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a, err := NewAnalysis(
		[]Feature{{Name: "phi", Bounds: MaxOnly(3), Impact: nanBeyond}},
		[]Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDegradedMonteCarloFallback(t *testing.T) {
	a := nanAnalysis(t)

	// Without degradation: a typed numeric error, never a silent radius.
	if _, err := a.Robustness(Normalized{}); !errors.Is(err, ErrNumeric) {
		t.Fatalf("exact tier error = %v, want ErrNumeric", err)
	}

	// With degradation: a flagged lower-bound estimate near the true 0.5.
	rho, err := a.RobustnessWith(context.Background(), Normalized{},
		EvalOptions{DegradeOnNumeric: true, DegradeSamples: 512, DegradeSeed: 7})
	if err != nil {
		t.Fatalf("degraded Robustness: %v", err)
	}
	if !rho.Degraded {
		t.Fatal("result not flagged Degraded")
	}
	if !rho.PerFeature[0].Degraded {
		t.Fatal("per-feature radius not flagged Degraded")
	}
	if rho.Value <= 0.3 || rho.Value > 0.55 {
		t.Fatalf("degraded rho = %g, want an estimate near 0.5", rho.Value)
	}
}

func TestDegradedFallbackConcurrent(t *testing.T) {
	// Degradation must also hold on the worker-pool path, alongside
	// healthy features.
	feats := []Feature{
		{Name: "bad", Bounds: MaxOnly(3), Impact: func(vs []vec.V) float64 { return nanBeyond(vs[:1]) }},
		{Name: "good", Bounds: MaxOnly(9), Linear: &LinearImpact{Coeffs: []vec.V{{2}, {3}}}},
	}
	a, err := NewAnalysis(feats, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.RobustnessWith(context.Background(), Normalized{},
		EvalOptions{Workers: 4, DegradeOnNumeric: true, DegradeSamples: 512, DegradeSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !rho.Degraded || !rho.PerFeature[0].Degraded || rho.PerFeature[1].Degraded {
		t.Fatalf("degradation flags wrong: %+v", rho)
	}
	if rho.PerFeature[1].Value <= 0 || rho.PerFeature[1].Degraded {
		t.Fatalf("healthy feature corrupted: %+v", rho.PerFeature[1])
	}
}

func TestConcurrentEarlyStopAndLowestIndexError(t *testing.T) {
	// Feature 2 panics on its first evaluation; feature 5 is slow and only
	// faults after several delayed calls; the rest are benign numeric-tier
	// features. The pool must stop early and deterministically report
	// feature 2's panic.
	slowPanic := chaos.Injector{Fault: chaos.PanicFault, After: 5}
	slow := chaos.Injector{Fault: chaos.SlowFault, Delay: 2 * time.Millisecond}
	features := make([]Feature, 8)
	for i := range features {
		features[i] = Feature{Name: "f", Bounds: MaxOnly(4), Impact: prodXY}
	}
	a, err := NewAnalysis(features, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	fastPanic := chaos.Injector{Fault: chaos.PanicFault}
	a.Features[2].Impact = fastPanic.Wrap(prodXY)
	a.Features[5].Impact = slow.Wrap(slowPanic.Wrap(prodXY))

	for run := 0; run < 3; run++ {
		_, err = a.RobustnessConcurrent(Normalized{}, 4)
		var pe *ImpactPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("run %d: error = %v, want *ImpactPanicError", run, err)
		}
		if pe.Feature != 2 {
			t.Fatalf("run %d: reported feature %d, want lowest-index 2", run, pe.Feature)
		}
	}
}

func TestConcurrentCleanMatchesSerialWithCtx(t *testing.T) {
	a := manyFeatures(t, 10)
	serial, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := a.RobustnessConcurrentCtx(context.Background(), Normalized{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Value-conc.Value) > 1e-12 || serial.Critical != conc.Critical {
		t.Fatalf("ctx pool rho = %g/%d, serial %g/%d",
			conc.Value, conc.Critical, serial.Value, serial.Critical)
	}
	if conc.Degraded {
		t.Fatal("clean run flagged Degraded")
	}
}

func TestCriticalMarginDimValidation(t *testing.T) {
	a, err := NewAnalysis(
		[]Feature{{Name: "lat", Bounds: MaxOnly(42), Linear: &LinearImpact{Coeffs: []vec.V{{2, 3}, {5}}}}},
		[]Perturbation{
			{Name: "t", Orig: vec.Of(1, 2)},
			{Name: "m", Orig: vec.Of(4)},
		})
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.NewCertifier(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	// Regression: a wrong-shaped block used to panic inside Mul/Dist2.
	o := chaos.Probe(time.Second, time.Second, func(context.Context) error {
		_, _, err := c.CriticalMargin([]vec.V{{1}, {4}}) // block 0 truncated
		return err
	})
	if o.Panicked() {
		t.Fatalf("CriticalMargin panicked: %v", o.Panic)
	}
	if !errors.Is(o.Err, vec.ErrDimMismatch) {
		t.Fatalf("err = %v, want vec.ErrDimMismatch", o.Err)
	}
	// The happy path still works.
	m, feat, err := c.CriticalMargin([]vec.V{{1, 2}, {4}})
	if err != nil || feat != 0 {
		t.Fatalf("CriticalMargin = %g, %d, %v", m, feat, err)
	}
	if m <= 0 {
		t.Fatalf("margin at the original point = %g, want positive", m)
	}
}
