package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// Warm-start registry: per-(feature, parameter) slots holding the
// optimize.WarmState of the most recent numeric boundary search. A
// WarmState memoizes the probe directions, the raw impact values along
// every scan ray, and the converged bracket of each (level, ray) pair; the
// next search of the same feature revalidates and reuses them (see
// internal/optimize/warm.go for the bit-identity contract).
//
// A WarmState is single-owner, so the registry hands states out through
// atomic checkout: a search Swaps the slot to nil, runs with exclusive
// ownership, and Stores the state back when done. Two concurrent searches
// of the same feature race for the checkout; the loser sees nil, runs cold
// (building a fresh state), and the last finisher's state wins the slot.
// Results are identical either way — warm starts change cost, never values.

type warmKey struct {
	feat  int
	param int // -1 for combined P-space searches
}

type warmSlot struct {
	p atomic.Pointer[optimize.WarmState]
}

type warmReg struct {
	mu    sync.Mutex
	slots map[warmKey]*warmSlot
}

func (r *warmReg) slot(k warmKey) *warmSlot {
	r.mu.Lock()
	s := r.slots[k]
	if s == nil {
		s = &warmSlot{}
		r.slots[k] = s
	}
	r.mu.Unlock()
	return s
}

// checkout takes exclusive ownership of the slot's state, discarding it for
// a fresh one when the identity vector (everything the search objective
// closes over: the origin point and, for combined searches, the weighting
// scales) does not match bit-for-bit. Never returns nil.
func (r *warmReg) checkout(k warmKey, ident []float64) *optimize.WarmState {
	st := r.slot(k).p.Swap(nil)
	if st == nil || !st.Valid(ident) {
		st = optimize.NewWarmState(ident)
	}
	return st
}

// publish returns ownership of the state to the slot.
func (r *warmReg) publish(k warmKey, st *optimize.WarmState) {
	r.slot(k).p.Store(st)
}

// EnableWarmStart turns on warm-started boundary searches: the numeric
// level-set tier records each feature's converged brackets, probe
// directions, and raw impact values, and subsequent searches of the same
// feature — the two boundary sides of one radius, repeated radii as a
// service re-checks an operating point, co-scheduled units of the batch
// engine — revalidate and reuse them instead of starting from scratch.
//
// Warm starts never change results: memoized values are the raw impact
// values a cold search would compute at bit-identical probe positions, and
// reused brackets are revalidated against the live objective (a mismatch —
// e.g. a mutated analysis — discards the state and re-runs cold). Combined
// with the impact cache, revalidation can observe quantized cache hits and
// occasionally invalidate; that costs a cold re-run, not correctness.
//
// Like the impact cache, warm start assumes a frozen analysis. Enable it
// from a single goroutine before concurrent use; searches then check states
// in and out of per-feature atomic slots, so concurrent searches of the
// same feature race for the state and losers simply run cold.
func (a *Analysis) EnableWarmStart() {
	a.warm = &warmReg{slots: make(map[warmKey]*warmSlot)}
}

// WarmRegistry is an exported handle on a warm-start registry, letting a
// caller detach the registry from one Analysis's lifetime and attach it to a
// later rebuild of the *same* scenario (same features, parameters, and
// origin point — e.g. keyed by AnalysisDoc.Fingerprint). Checked-out states
// revalidate their identity vector bit-for-bit before reuse, so attaching a
// registry to a mismatched analysis costs cold re-runs, never correctness.
type WarmRegistry struct {
	reg *warmReg
}

// NewWarmRegistry returns an empty registry for use with
// EnableWarmStartWith.
func NewWarmRegistry() *WarmRegistry {
	return &WarmRegistry{reg: &warmReg{slots: make(map[warmKey]*warmSlot)}}
}

// EnableWarmStartWith is EnableWarmStart backed by a caller-owned registry,
// so the recorded brackets, grid memos, and step scales survive this
// Analysis being dropped and rebuilt: pass the same registry to the rebuilt
// analysis and its searches start warm. A nil registry behaves like
// EnableWarmStart. The same single-goroutine enabling rule applies.
func (a *Analysis) EnableWarmStartWith(r *WarmRegistry) {
	if r == nil || r.reg == nil {
		a.EnableWarmStart()
		return
	}
	a.warm = r.reg
}

// DisableWarmStart drops all recorded warm-start state.
func (a *Analysis) DisableWarmStart() { a.warm = nil }

// WarmStats aggregates the reuse counters of every currently checked-in
// warm state (states owned by in-flight searches are not counted). Zero
// when warm start is disabled.
func (a *Analysis) WarmStats() optimize.WarmStats {
	var out optimize.WarmStats
	r := a.warm
	if r == nil {
		return out
	}
	r.mu.Lock()
	slots := make([]*warmSlot, 0, len(r.slots))
	for _, s := range r.slots {
		slots = append(slots, s)
	}
	r.mu.Unlock()
	for _, s := range slots {
		if st := s.p.Load(); st != nil {
			ws := st.Stats()
			out.Searches += ws.Searches
			out.MemoHits += ws.MemoHits
			out.RayReuses += ws.RayReuses
			out.Invalidations += ws.Invalidations
		}
	}
	return out
}

// wireWarmRegistry is the serialized form of a WarmRegistry: one entry per
// checked-in slot, sorted by (feat, param) so snapshots are deterministic.
type wireWarmRegistry struct {
	Slots []wireWarmSlot `json:"slots"`
}

type wireWarmSlot struct {
	Feat  int             `json:"feat"`
	Param int             `json:"param"`
	State json.RawMessage `json:"state"`
}

// Snapshot serializes every checked-in warm state for later
// RestoreWarmRegistry — the mechanism that carries warm-start state across
// scenario-store reload generations (a daemon restart, a store GC and
// rebuild). Each state is briefly checked out of its slot while serialized,
// honoring the single-owner rule; states owned by in-flight searches are
// skipped, costing those (feature, parameter) pairs a cold start after
// restore, never correctness.
func (r *WarmRegistry) Snapshot() ([]byte, error) {
	if r == nil || r.reg == nil {
		return json.Marshal(wireWarmRegistry{})
	}
	r.reg.mu.Lock()
	keys := make([]warmKey, 0, len(r.reg.slots))
	for k := range r.reg.slots {
		keys = append(keys, k)
	}
	r.reg.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].feat != keys[j].feat {
			return keys[i].feat < keys[j].feat
		}
		return keys[i].param < keys[j].param
	})
	var wire wireWarmRegistry
	for _, k := range keys {
		slot := r.reg.slot(k)
		st := slot.p.Swap(nil)
		if st == nil {
			continue // checked out by a live search: skip
		}
		raw, err := st.Snapshot()
		slot.p.Store(st)
		if err != nil {
			return nil, fmt.Errorf("core: warm registry snapshot (feature %d, param %d): %w", k.feat, k.param, err)
		}
		wire.Slots = append(wire.Slots, wireWarmSlot{Feat: k.feat, Param: k.param, State: raw})
	}
	return json.Marshal(wire)
}

// RestoreWarmRegistry rebuilds a registry from a Snapshot. Restored states
// pass through the full checkout validation (bit-compared identity, bracket
// revalidation against the live objective), so restoring a snapshot against
// a changed scenario degrades to cold searches instead of wrong answers.
func RestoreWarmRegistry(data []byte) (*WarmRegistry, error) {
	var wire wireWarmRegistry
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("core: restoring warm registry: %w", err)
	}
	r := NewWarmRegistry()
	for _, ws := range wire.Slots {
		st, err := optimize.RestoreWarmState(ws.State)
		if err != nil {
			return nil, fmt.Errorf("core: restoring warm registry (feature %d, param %d): %w", ws.Feat, ws.Param, err)
		}
		r.reg.publish(warmKey{feat: ws.Feat, param: ws.Param}, st)
	}
	return r, nil
}

// warmIdent builds the identity fingerprint of a combined search's
// objective: the P-space origin concatenated with the weighting scales
// (the two vectors the search closure closes over).
func warmIdent(pOrig, d vec.V) []float64 {
	out := make([]float64, 0, len(pOrig)+len(d))
	out = append(out, pOrig...)
	return append(out, d...)
}
