package core

import (
	"sync"
	"sync/atomic"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// Warm-start registry: per-(feature, parameter) slots holding the
// optimize.WarmState of the most recent numeric boundary search. A
// WarmState memoizes the probe directions, the raw impact values along
// every scan ray, and the converged bracket of each (level, ray) pair; the
// next search of the same feature revalidates and reuses them (see
// internal/optimize/warm.go for the bit-identity contract).
//
// A WarmState is single-owner, so the registry hands states out through
// atomic checkout: a search Swaps the slot to nil, runs with exclusive
// ownership, and Stores the state back when done. Two concurrent searches
// of the same feature race for the checkout; the loser sees nil, runs cold
// (building a fresh state), and the last finisher's state wins the slot.
// Results are identical either way — warm starts change cost, never values.

type warmKey struct {
	feat  int
	param int // -1 for combined P-space searches
}

type warmSlot struct {
	p atomic.Pointer[optimize.WarmState]
}

type warmReg struct {
	mu    sync.Mutex
	slots map[warmKey]*warmSlot
}

func (r *warmReg) slot(k warmKey) *warmSlot {
	r.mu.Lock()
	s := r.slots[k]
	if s == nil {
		s = &warmSlot{}
		r.slots[k] = s
	}
	r.mu.Unlock()
	return s
}

// checkout takes exclusive ownership of the slot's state, discarding it for
// a fresh one when the identity vector (everything the search objective
// closes over: the origin point and, for combined searches, the weighting
// scales) does not match bit-for-bit. Never returns nil.
func (r *warmReg) checkout(k warmKey, ident []float64) *optimize.WarmState {
	st := r.slot(k).p.Swap(nil)
	if st == nil || !st.Valid(ident) {
		st = optimize.NewWarmState(ident)
	}
	return st
}

// publish returns ownership of the state to the slot.
func (r *warmReg) publish(k warmKey, st *optimize.WarmState) {
	r.slot(k).p.Store(st)
}

// EnableWarmStart turns on warm-started boundary searches: the numeric
// level-set tier records each feature's converged brackets, probe
// directions, and raw impact values, and subsequent searches of the same
// feature — the two boundary sides of one radius, repeated radii as a
// service re-checks an operating point, co-scheduled units of the batch
// engine — revalidate and reuse them instead of starting from scratch.
//
// Warm starts never change results: memoized values are the raw impact
// values a cold search would compute at bit-identical probe positions, and
// reused brackets are revalidated against the live objective (a mismatch —
// e.g. a mutated analysis — discards the state and re-runs cold). Combined
// with the impact cache, revalidation can observe quantized cache hits and
// occasionally invalidate; that costs a cold re-run, not correctness.
//
// Like the impact cache, warm start assumes a frozen analysis. Enable it
// from a single goroutine before concurrent use; searches then check states
// in and out of per-feature atomic slots, so concurrent searches of the
// same feature race for the state and losers simply run cold.
func (a *Analysis) EnableWarmStart() {
	a.warm = &warmReg{slots: make(map[warmKey]*warmSlot)}
}

// WarmRegistry is an exported handle on a warm-start registry, letting a
// caller detach the registry from one Analysis's lifetime and attach it to a
// later rebuild of the *same* scenario (same features, parameters, and
// origin point — e.g. keyed by AnalysisDoc.Fingerprint). Checked-out states
// revalidate their identity vector bit-for-bit before reuse, so attaching a
// registry to a mismatched analysis costs cold re-runs, never correctness.
type WarmRegistry struct {
	reg *warmReg
}

// NewWarmRegistry returns an empty registry for use with
// EnableWarmStartWith.
func NewWarmRegistry() *WarmRegistry {
	return &WarmRegistry{reg: &warmReg{slots: make(map[warmKey]*warmSlot)}}
}

// EnableWarmStartWith is EnableWarmStart backed by a caller-owned registry,
// so the recorded brackets, grid memos, and step scales survive this
// Analysis being dropped and rebuilt: pass the same registry to the rebuilt
// analysis and its searches start warm. A nil registry behaves like
// EnableWarmStart. The same single-goroutine enabling rule applies.
func (a *Analysis) EnableWarmStartWith(r *WarmRegistry) {
	if r == nil || r.reg == nil {
		a.EnableWarmStart()
		return
	}
	a.warm = r.reg
}

// DisableWarmStart drops all recorded warm-start state.
func (a *Analysis) DisableWarmStart() { a.warm = nil }

// WarmStats aggregates the reuse counters of every currently checked-in
// warm state (states owned by in-flight searches are not counted). Zero
// when warm start is disabled.
func (a *Analysis) WarmStats() optimize.WarmStats {
	var out optimize.WarmStats
	r := a.warm
	if r == nil {
		return out
	}
	r.mu.Lock()
	slots := make([]*warmSlot, 0, len(r.slots))
	for _, s := range r.slots {
		slots = append(slots, s)
	}
	r.mu.Unlock()
	for _, s := range slots {
		if st := s.p.Load(); st != nil {
			ws := st.Stats()
			out.Searches += ws.Searches
			out.MemoHits += ws.MemoHits
			out.RayReuses += ws.RayReuses
			out.Invalidations += ws.Invalidations
		}
	}
	return out
}

// warmIdent builds the identity fingerprint of a combined search's
// objective: the P-space origin concatenated with the weighting scales
// (the two vectors the search closure closes over).
func warmIdent(pOrig, d vec.V) []float64 {
	out := make([]float64, 0, len(pOrig)+len(d))
	out = append(out, pOrig...)
	return append(out, d...)
}
