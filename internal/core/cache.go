package core

import (
	"encoding/binary"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"fepia/internal/vec"
)

// This file implements the memoizing impact-evaluation cache of the
// high-throughput evaluation engine. The numeric radius tier evaluates the
// impact function thousands of times per boundary search, and production
// callers re-run searches near the same boundary continuously (admission
// loops, candidate ranking, periodic re-analysis as workloads drift). The
// cache memoizes impact values keyed on the *quantized native* parameter
// vector, so repeated searches — same weighting, a different weighting that
// visits the same native points, or a whole batch of evaluations — reuse
// each evaluation instead of recomputing it.
//
// Structure: the cache is split into power-of-two many shards selected by a
// hash of the quantized key, and each shard keeps three generations of
// entries — a mutex-guarded "hot" write map plus two frozen generations
// published through an atomic pointer. Reads probe the frozen generations
// without taking any lock (immutable maps are safe for concurrent readers),
// so at high QPS the common warm-cache hit costs two map probes and zero
// mutex operations; only writes and cold hits touch the shard mutex, and
// contention on it is divided by the shard count. When a shard's hot map
// reaches a third of the shard's capacity it is frozen: hot becomes
// generation 1, generation 1 becomes generation 2, and the old generation 2
// is dropped (its entries counted as evictions). The scheme approximates
// LRU with insertion generations: a hot entry survives two rotations
// (~two-thirds of the shard's capacity in intervening stores) and is then
// re-stored on its next miss.
//
// Safety rules (docs/architecture.md §cache):
//
//   - Keys quantize each coordinate by zeroing the low 12 mantissa bits
//     (~4e-13 relative), far below the level-set search tolerance, so a hit
//     returns a value whose input differs from the query by less than the
//     search can resolve. Cached and uncached radii agree to well under
//     1e-9 (property-tested in cache_test.go / batch_test.go).
//   - A poisoned evaluation — NaN/Inf result, or the NaN substituted by the
//     panic guard of failure.go — is NEVER stored. Faults must re-fire on
//     every evaluation so the containment layer of PR 1 keeps reporting
//     them; a cached NaN would also defeat DegradeOnNumeric retries.
//   - The cache is bounded: each shard holds at most three generations of
//     a third of its capacity, so the total never exceeds the configured
//     capacity (plus integer-division slack).
//
// The same structure memoizes Weighting.Scales vectors for comparable
// weighting values (Normalized{}, Sensitivity{}, …). Sensitivity scales
// recompute every single-parameter radius of the feature on each call, so
// this memo alone removes an O(|Φ|·|Π|) radius recomputation from every
// combined-radius query.

// CacheStats is a snapshot of the impact cache's aggregate counters.
// Per-shard counters are reported by Analysis.CacheShardStats.
type CacheStats struct {
	// Hits and Misses count impact-evaluation lookups.
	Hits, Misses uint64
	// Stores counts insertions (finite values only).
	Stores uint64
	// Evictions counts entries dropped by generation rotation.
	Evictions uint64
	// Entries is the current number of cached impact values across all
	// generations of all shards.
	Entries int
	// ScaleHits and ScaleMisses count Weighting.Scales memo lookups.
	ScaleHits, ScaleMisses uint64
}

// CacheShardStats is one shard's counters. A healthy cache spreads traffic
// roughly evenly; one shard drawing a large share of the misses while
// others sit idle indicates key skew (see docs/operations.md §performance
// troubleshooting).
type CacheShardStats struct {
	Hits, Misses, Stores, Evictions uint64
	Entries                         int
}

// DefaultCacheSize is the entry capacity EnableImpactCache uses when given
// a non-positive capacity. At 16 bytes of value plus ~64 bytes of key and
// bookkeeping per entry, the default stays in the low tens of megabytes.
const DefaultCacheSize = 1 << 16

// CacheOptions configure EnableImpactCacheWith.
type CacheOptions struct {
	// Capacity bounds the total entries across all shards. Non-positive
	// selects DefaultCacheSize.
	Capacity int
	// Shards is the shard count, rounded up to a power of two and capped at
	// 256. Non-positive derives it from GOMAXPROCS, clamped to [8, 64].
	// More shards divide write contention further at the cost of slightly
	// coarser per-shard capacity granularity.
	Shards int
}

// impactCache is the sharded, bounded, thread-safe memo behind
// EnableImpactCache.
type impactCache struct {
	shards []cacheShard
	mask   uint32
	genCap int // per-shard hot-generation capacity (capacity/shards/3)

	scalesMu    sync.Mutex
	scales      map[scalesKey]scalesVal
	scaleHits   atomic.Uint64
	scaleMisses atomic.Uint64
}

// frozenGens is an immutable pair of entry generations. g1 is the most
// recently frozen; g2 is dropped at the next rotation. Published via an
// atomic pointer, never mutated after publication — that immutability is
// what makes the read path lock-free.
type frozenGens struct {
	g1, g2 map[string]float64
}

type cacheShard struct {
	mu     sync.Mutex
	hot    map[string]float64
	frozen atomic.Pointer[frozenGens]

	hits, misses, stores, evictions atomic.Uint64
}

type scalesKey struct {
	w    Weighting
	feat int
}

type scalesVal struct {
	d   vec.V
	err error
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newImpactCache(opt CacheOptions) *impactCache {
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultCacheSize
	}
	if opt.Shards <= 0 {
		opt.Shards = nextPow2(runtime.GOMAXPROCS(0))
		if opt.Shards < 8 {
			opt.Shards = 8
		}
		if opt.Shards > 64 {
			opt.Shards = 64
		}
	} else {
		opt.Shards = nextPow2(opt.Shards)
		if opt.Shards > 256 {
			opt.Shards = 256
		}
	}
	genCap := opt.Capacity / opt.Shards / 3
	if genCap < 1 {
		genCap = 1
	}
	c := &impactCache{
		shards: make([]cacheShard, opt.Shards),
		mask:   uint32(opt.Shards - 1),
		genCap: genCap,
		scales: make(map[scalesKey]scalesVal),
	}
	empty := &frozenGens{}
	for i := range c.shards {
		c.shards[i].hot = make(map[string]float64, genCap)
		c.shards[i].frozen.Store(empty)
	}
	return c
}

// quantize zeroes the low 12 mantissa bits of x, collapsing points within
// ~4.4e-13 relative distance onto one key. Quantization only widens the set
// of queries that share a key — the stored value is always a genuinely
// computed impact value, just at an input the search cannot distinguish
// from the query.
//
// Sign/zero canonicalization: plain mantissa masking maps +0.0 and −0.0 —
// and any tiny value whose magnitude bits vanish under the mask — to two
// distinct keys that both mean "zero as far as the search can resolve".
// IEEE-754 arithmetic produces −0.0 routinely (a sign-flipping multiply, a
// downward rounding at a sign boundary), so the split key made cache
// behavior depend on which side of zero an evaluation approached from:
// never a wrong value, but a spurious miss that defeated the memo exactly
// where boundary searches oscillate. Both patterns canonicalize to the
// +0.0 key. NaNs keep their (masked) payload but are never stored by put,
// so a NaN key can only ever miss.
func quantize(x float64) uint64 {
	b := math.Float64bits(x) &^ 0xFFF
	if b == 1<<63 { // −0.0 after masking: same bucket as +0.0
		b = 0
	}
	return b
}

// appendKey encodes (feature, quantized x) into buf and returns it. The
// caller reuses buf across evaluations; the encoded form only becomes a
// persistent string on store.
func appendKey(buf []byte, feature int, x vec.V) []byte {
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(feature))
	for _, v := range x {
		buf = binary.LittleEndian.AppendUint64(buf, quantize(v))
	}
	return buf
}

// shardOf hashes the encoded key (FNV-1a, high bits folded in) to a shard
// index. Keys differ mostly in the low mantissa-adjacent bytes of a few
// coordinates; FNV-1a mixes every byte, and the fold keeps the masked
// index sensitive to the high half.
func (c *impactCache) shardOf(key []byte) *cacheShard {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return &c.shards[(h^h>>16)&c.mask]
}

// get looks up an impact value. key is the appendKey encoding; the lookup
// does not retain or allocate from it. Hits in the frozen generations take
// no lock at all.
func (c *impactCache) get(key []byte) (float64, bool) {
	s := c.shardOf(key)
	fg := s.frozen.Load()
	if v, ok := fg.g1[string(key)]; ok { // compiler-optimized: no string alloc
		s.hits.Add(1)
		return v, true
	}
	if v, ok := fg.g2[string(key)]; ok {
		s.hits.Add(1)
		return v, true
	}
	s.mu.Lock()
	v, ok := s.hot[string(key)]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		return v, true
	}
	s.misses.Add(1)
	return 0, false
}

// put stores a finite impact value, rotating the shard's generations when
// the hot map fills (the oldest generation's entries are the evictions).
// Non-finite values are dropped: a NaN/Inf (including the NaN a recovered
// panic substitutes) is a fault, and faults must re-fire.
func (c *impactCache) put(key []byte, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	if _, ok := s.hot[string(key)]; ok {
		s.hot[string(key)] = v
		s.mu.Unlock()
		return
	}
	s.hot[string(key)] = v
	s.stores.Add(1)
	if len(s.hot) >= c.genCap {
		// Freeze the hot generation. The ex-hot map is published before a
		// fresh map replaces it and is never written again, so lock-free
		// readers that acquire the new pointer observe a fully built map.
		fg := s.frozen.Load()
		s.frozen.Store(&frozenGens{g1: s.hot, g2: fg.g1})
		s.evictions.Add(uint64(len(fg.g2)))
		s.hot = make(map[string]float64, c.genCap)
	}
	s.mu.Unlock()
}

// statsLocked snapshots and aggregates the shard counters.
func (c *impactCache) statsLocked() CacheStats {
	var st CacheStats
	for _, sh := range c.shardStats() {
		st.Hits += sh.Hits
		st.Misses += sh.Misses
		st.Stores += sh.Stores
		st.Evictions += sh.Evictions
		st.Entries += sh.Entries
	}
	st.ScaleHits = c.scaleHits.Load()
	st.ScaleMisses = c.scaleMisses.Load()
	return st
}

// shardStats snapshots each shard's counters.
func (c *impactCache) shardStats() []CacheShardStats {
	out := make([]CacheShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hotLen := len(s.hot)
		s.mu.Unlock()
		fg := s.frozen.Load()
		out[i] = CacheShardStats{
			Hits:      s.hits.Load(),
			Misses:    s.misses.Load(),
			Stores:    s.stores.Load(),
			Evictions: s.evictions.Load(),
			Entries:   hotLen + len(fg.g1) + len(fg.g2),
		}
	}
	return out
}

// forEachValue visits every cached impact value (test support).
func (c *impactCache) forEachValue(fn func(float64)) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for _, v := range s.hot {
			fn(v)
		}
		s.mu.Unlock()
		fg := s.frozen.Load()
		for _, v := range fg.g1 {
			fn(v)
		}
		for _, v := range fg.g2 {
			fn(v)
		}
	}
}

// EnableImpactCache attaches a bounded memoizing cache to the analysis:
// impact evaluations of the numeric radius tier are reused across repeated
// and batched searches, and Weighting.Scales vectors of comparable
// weighting values are memoized per feature. capacity ≤ 0 selects
// DefaultCacheSize entries. The shard count is derived from GOMAXPROCS;
// use EnableImpactCacheWith to set it explicitly.
//
// Enable the cache when the same analysis is queried repeatedly — service
// loops re-checking robustness as estimates drift, RobustnessBatch over
// many weightings, Tolerable/Certifier traffic — and the impact function is
// expensive (DES-backed, queueing models, anything beyond a few arithmetic
// ops). For one-shot analyses of cheap linear impacts the lookup overhead
// exceeds the evaluation cost; see docs/performance.md for measurements.
//
// The cache assumes the analysis is frozen: mutating Features, Params, or a
// weighting's underlying data after enabling invalidates cached values
// silently. Enable (or Disable) only from a single goroutine, before
// concurrent use; the cache itself is safe for concurrent readers and
// writers, and warm reads through the frozen generations take no lock.
// Faulty evaluations are never cached — see docs/architecture.md for how
// caching composes with the failure semantics of docs/failure-semantics.md.
func (a *Analysis) EnableImpactCache(capacity int) {
	a.cache = newImpactCache(CacheOptions{Capacity: capacity})
}

// EnableImpactCacheWith attaches a cache with explicit capacity and shard
// count. See EnableImpactCache for the usage contract.
func (a *Analysis) EnableImpactCacheWith(opt CacheOptions) {
	a.cache = newImpactCache(opt)
}

// DisableImpactCache detaches (and drops) the cache.
func (a *Analysis) DisableImpactCache() { a.cache = nil }

// CacheStats reports the cache's aggregate counters; the zero CacheStats
// when no cache is enabled.
func (a *Analysis) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.statsLocked()
}

// CacheShardStats reports per-shard counters (hit/miss/store/eviction and
// current entries), or nil when no cache is enabled. Shard imbalance —
// one shard much hotter than the rest — indicates key skew; see
// docs/operations.md.
func (a *Analysis) CacheShardStats() []CacheShardStats {
	if a.cache == nil {
		return nil
	}
	return a.cache.shardStats()
}

// scalesFor returns w.Scales(a, featIdx), memoized when the cache is
// enabled and the weighting value is comparable (usable as a map key —
// true for Normalized{}, Sensitivity{}, and other field-free or
// scalar-field weightings; Custom carries a slice and is computed afresh).
// The returned vector is shared: callers must not mutate it.
func (a *Analysis) scalesFor(w Weighting, featIdx int) (vec.V, error) {
	c := a.cache
	if c == nil || w == nil || !reflect.TypeOf(w).Comparable() {
		return w.Scales(a, featIdx)
	}
	k := scalesKey{w: w, feat: featIdx}
	c.scalesMu.Lock()
	if v, ok := c.scales[k]; ok {
		c.scaleHits.Add(1)
		c.scalesMu.Unlock()
		return v.d, v.err
	}
	c.scaleMisses.Add(1)
	c.scalesMu.Unlock()
	// Compute outside the lock: Sensitivity scales run whole radius
	// computations. Concurrent first queries may duplicate the work; the
	// last store wins and all results are identical for a frozen analysis.
	d, err := w.Scales(a, featIdx)
	c.scalesMu.Lock()
	c.scales[k] = scalesVal{d: d, err: err}
	c.scalesMu.Unlock()
	return d, err
}
