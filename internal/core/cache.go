package core

import (
	"container/list"
	"encoding/binary"
	"math"
	"reflect"
	"sync"

	"fepia/internal/vec"
)

// This file implements the memoizing impact-evaluation cache of the
// high-throughput evaluation engine. The numeric radius tier evaluates the
// impact function thousands of times per boundary search, and production
// callers re-run searches near the same boundary continuously (admission
// loops, candidate ranking, periodic re-analysis as workloads drift). The
// cache memoizes impact values keyed on the *quantized native* parameter
// vector, so repeated searches — same weighting, a different weighting that
// visits the same native points, or a whole batch of evaluations — reuse
// each evaluation instead of recomputing it.
//
// Safety rules (docs/architecture.md §cache):
//
//   - Keys quantize each coordinate by zeroing the low 12 mantissa bits
//     (~4e-13 relative), far below the level-set search tolerance, so a hit
//     returns a value whose input differs from the query by less than the
//     search can resolve. Cached and uncached radii agree to well under
//     1e-9 (property-tested in cache_test.go / batch_test.go).
//   - A poisoned evaluation — NaN/Inf result, or the NaN substituted by the
//     panic guard of failure.go — is NEVER stored. Faults must re-fire on
//     every evaluation so the containment layer of PR 1 keeps reporting
//     them; a cached NaN would also defeat DegradeOnNumeric retries.
//   - The cache is bounded (LRU) and thread-safe: one mutex guards the map
//     and recency list. Batch workers hammer it concurrently; the critical
//     section is a map probe plus a list splice.
//
// The same structure memoizes Weighting.Scales vectors for comparable
// weighting values (Normalized{}, Sensitivity{}, …). Sensitivity scales
// recompute every single-parameter radius of the feature on each call, so
// this memo alone removes an O(|Φ|·|Π|) radius recomputation from every
// combined-radius query.

// CacheStats is a snapshot of the impact cache's counters.
type CacheStats struct {
	// Hits and Misses count impact-evaluation lookups.
	Hits, Misses uint64
	// Stores counts insertions (finite values only).
	Stores uint64
	// Evictions counts LRU evictions after the cache filled.
	Evictions uint64
	// Entries is the current number of cached impact values.
	Entries int
	// ScaleHits and ScaleMisses count Weighting.Scales memo lookups.
	ScaleHits, ScaleMisses uint64
}

// DefaultCacheSize is the entry capacity EnableImpactCache uses when given
// a non-positive capacity. At 16 bytes of value plus ~64 bytes of key and
// bookkeeping per entry, the default stays in the low tens of megabytes.
const DefaultCacheSize = 1 << 16

// impactCache is the bounded, thread-safe memo behind EnableImpactCache.
type impactCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	ll  *list.List // front = most recently used

	scales map[scalesKey]scalesVal

	hits, misses, stores, evictions uint64
	scaleHits, scaleMisses          uint64
}

type cacheEntry struct {
	key string
	val float64
}

type scalesKey struct {
	w    Weighting
	feat int
}

type scalesVal struct {
	d   vec.V
	err error
}

func newImpactCache(capacity int) *impactCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &impactCache{
		cap:    capacity,
		m:      make(map[string]*list.Element, capacity/4),
		ll:     list.New(),
		scales: make(map[scalesKey]scalesVal),
	}
}

// quantize zeroes the low 12 mantissa bits of x, collapsing points within
// ~4.4e-13 relative distance onto one key. Quantization only widens the set
// of queries that share a key — the stored value is always a genuinely
// computed impact value, just at an input the search cannot distinguish
// from the query.
//
// Sign/zero canonicalization: plain mantissa masking maps +0.0 and −0.0 —
// and any tiny value whose magnitude bits vanish under the mask — to two
// distinct keys that both mean "zero as far as the search can resolve".
// IEEE-754 arithmetic produces −0.0 routinely (a sign-flipping multiply, a
// downward rounding at a sign boundary), so the split key made cache
// behavior depend on which side of zero an evaluation approached from:
// never a wrong value, but a spurious miss that defeated the memo exactly
// where boundary searches oscillate. Both patterns canonicalize to the
// +0.0 key. NaNs keep their (masked) payload but are never stored by put,
// so a NaN key can only ever miss.
func quantize(x float64) uint64 {
	b := math.Float64bits(x) &^ 0xFFF
	if b == 1<<63 { // −0.0 after masking: same bucket as +0.0
		b = 0
	}
	return b
}

// appendKey encodes (feature, quantized x) into buf and returns it. The
// caller reuses buf across evaluations; the encoded form only becomes a
// persistent string on store.
func appendKey(buf []byte, feature int, x vec.V) []byte {
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(feature))
	for _, v := range x {
		buf = binary.LittleEndian.AppendUint64(buf, quantize(v))
	}
	return buf
}

// get looks up an impact value. key is the appendKey encoding; the lookup
// does not retain or allocate from it.
func (c *impactCache) get(key []byte) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[string(key)]; ok { // compiler-optimized: no string alloc
		c.hits++
		c.ll.MoveToFront(e)
		return e.Value.(*cacheEntry).val, true
	}
	c.misses++
	return 0, false
}

// put stores a finite impact value, evicting the least-recently-used entry
// at capacity. Non-finite values are dropped: a NaN/Inf (including the NaN
// a recovered panic substitutes) is a fault, and faults must re-fire.
func (c *impactCache) put(key []byte, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[string(key)]; ok {
		e.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(e)
		return
	}
	if c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	k := string(key)
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	c.stores++
}

// stats snapshots the counters.
func (c *impactCache) statsLocked() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Stores: c.stores,
		Evictions: c.evictions, Entries: c.ll.Len(),
		ScaleHits: c.scaleHits, ScaleMisses: c.scaleMisses,
	}
}

// EnableImpactCache attaches a bounded memoizing cache to the analysis:
// impact evaluations of the numeric radius tier are reused across repeated
// and batched searches, and Weighting.Scales vectors of comparable
// weighting values are memoized per feature. capacity ≤ 0 selects
// DefaultCacheSize entries.
//
// Enable the cache when the same analysis is queried repeatedly — service
// loops re-checking robustness as estimates drift, RobustnessBatch over
// many weightings, Tolerable/Certifier traffic — and the impact function is
// expensive (DES-backed, queueing models, anything beyond a few arithmetic
// ops). For one-shot analyses of cheap linear impacts the lookup overhead
// exceeds the evaluation cost; see docs/performance.md for measurements.
//
// The cache assumes the analysis is frozen: mutating Features, Params, or a
// weighting's underlying data after enabling invalidates cached values
// silently. Enable (or Disable) only from a single goroutine, before
// concurrent use; the cache itself is safe for concurrent readers and
// writers. Faulty evaluations are never cached — see docs/architecture.md
// for how caching composes with the failure semantics of
// docs/failure-semantics.md.
func (a *Analysis) EnableImpactCache(capacity int) {
	a.cache = newImpactCache(capacity)
}

// DisableImpactCache detaches (and drops) the cache.
func (a *Analysis) DisableImpactCache() { a.cache = nil }

// CacheStats reports the cache's counters; the zero CacheStats when no
// cache is enabled.
func (a *Analysis) CacheStats() CacheStats {
	if a.cache == nil {
		return CacheStats{}
	}
	return a.cache.statsLocked()
}

// scalesFor returns w.Scales(a, featIdx), memoized when the cache is
// enabled and the weighting value is comparable (usable as a map key —
// true for Normalized{}, Sensitivity{}, and other field-free or
// scalar-field weightings; Custom carries a slice and is computed afresh).
// The returned vector is shared: callers must not mutate it.
func (a *Analysis) scalesFor(w Weighting, featIdx int) (vec.V, error) {
	c := a.cache
	if c == nil || w == nil || !reflect.TypeOf(w).Comparable() {
		return w.Scales(a, featIdx)
	}
	k := scalesKey{w: w, feat: featIdx}
	c.mu.Lock()
	if v, ok := c.scales[k]; ok {
		c.scaleHits++
		c.mu.Unlock()
		return v.d, v.err
	}
	c.scaleMisses++
	c.mu.Unlock()
	// Compute outside the lock: Sensitivity scales run whole radius
	// computations. Concurrent first queries may duplicate the work; the
	// last store wins and all results are identical for a frozen analysis.
	d, err := w.Scales(a, featIdx)
	c.mu.Lock()
	c.scales[k] = scalesVal{d: d, err: err}
	c.mu.Unlock()
	return d, err
}
