package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/vec"
)

// The paper defines the robustness radius with the Euclidean (ℓ2) norm; the
// choice encodes an assumption about how perturbations combine. This file
// adds the two other standard choices for linear impact functions, enabling
// the norm-ablation experiment (E10):
//
//   - ℓ1 radius — "total budget": the smallest total absolute drift, spent
//     however adversarially, that violates a bound. The nearest boundary
//     point moves a single coordinate (the most effective one).
//   - ℓ∞ radius — "uniform drift": the smallest per-element drift, applied
//     to every element at once in the worst signs, that violates a bound.
//
// For a hyperplane {x : k·x = b}, min ‖x − x0‖_p subject to k·x = b equals
// |k·x0 − b| / ‖k‖_q with 1/p + 1/q = 1 (dual norm), so every variant stays
// closed-form.

// Norm selects the distance notion for the robustness radius.
type Norm int

const (
	// L2 is the paper's Euclidean radius.
	L2 Norm = iota
	// L1 is the total-absolute-drift radius (dual ℓ∞).
	L1
	// LInf is the uniform-per-element radius (dual ℓ1).
	LInf
)

// String names the norm.
func (n Norm) String() string {
	switch n {
	case L2:
		return "l2"
	case L1:
		return "l1"
	case LInf:
		return "linf"
	default:
		return fmt.Sprintf("Norm(%d)", int(n))
	}
}

// ErrNeedLinear is returned when a norm-generalized radius is requested for
// a feature without a declared linear impact.
var ErrNeedLinear = errors.New("core: norm-generalized radii require a linear impact function")

// RadiusSingleNorm computes r_μ(φ_i, π_j) under the given norm for a
// linear feature. With Norm == L2 it agrees with RadiusSingle.
func (a *Analysis) RadiusSingleNorm(i, j int, norm Norm) (Radius, error) {
	if i < 0 || i >= len(a.Features) {
		return Radius{}, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
	}
	if j < 0 || j >= len(a.Params) {
		return Radius{}, fmt.Errorf("%w: parameter %d of %d", ErrBadIndex, j, len(a.Params))
	}
	switch norm {
	case L1, L2, LInf:
	default:
		return Radius{}, fmt.Errorf("core: unknown norm %v", norm)
	}
	f := a.Features[i]
	if f.Linear == nil {
		return Radius{}, fmt.Errorf("%w: feature %q", ErrNeedLinear, f.Name)
	}
	orig := a.OrigValues()
	rest := f.Linear.Const
	for m, k := range f.Linear.Coeffs {
		if m != j {
			rest += k.Dot(orig[m])
		}
	}
	kj := f.Linear.Coeffs[j]
	x0 := a.Params[j].Orig
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: j, Analytic: true}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		pt, d, err := nearestLp(kj, side.beta-rest, x0, norm)
		if err != nil {
			continue // degenerate (zero coefficients): bound unreachable
		}
		if d < best.Value {
			best.Value, best.Point, best.Side = d, pt, side.side
		}
	}
	return best, nil
}

// RobustnessSingleNorm is min over features of RadiusSingleNorm.
func (a *Analysis) RobustnessSingleNorm(j int, norm Norm) (Radius, error) {
	if j < 0 || j >= len(a.Params) {
		return Radius{}, fmt.Errorf("%w: parameter %d of %d", ErrBadIndex, j, len(a.Params))
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: -1, Param: j}
	for i := range a.Features {
		r, err := a.RadiusSingleNorm(i, j, norm)
		if err != nil {
			return Radius{}, err
		}
		if r.Value < best.Value {
			best = r
		}
	}
	return best, nil
}

// nearestLp solves min ‖x − x0‖_p s.t. k·x = b for p ∈ {1, 2, ∞}.
func nearestLp(k vec.V, b float64, x0 vec.V, norm Norm) (vec.V, float64, error) {
	if len(k) != len(x0) {
		return nil, 0, fmt.Errorf("core: nearestLp: %w", vec.ErrDimMismatch)
	}
	gap := b - k.Dot(x0)
	switch norm {
	case L2:
		n2 := k.Dot(k)
		if n2 == 0 {
			return nil, 0, ErrNeedLinear
		}
		pt := x0.AddScaled(gap/n2, k)
		return pt, math.Abs(gap) / math.Sqrt(n2), nil
	case L1:
		// Spend the whole budget on the most effective coordinate.
		e, mag := -1, 0.0
		for idx, ke := range k {
			if a := math.Abs(ke); a > mag {
				e, mag = idx, a
			}
		}
		if e < 0 {
			return nil, 0, ErrNeedLinear
		}
		pt := x0.Clone()
		pt[e] += gap / k[e]
		return pt, math.Abs(gap) / mag, nil
	case LInf:
		n1 := k.Norm1()
		if n1 == 0 {
			return nil, 0, ErrNeedLinear
		}
		t := gap / n1
		pt := x0.Clone()
		for idx, ke := range k {
			if ke > 0 {
				pt[idx] += t
			} else if ke < 0 {
				pt[idx] -= t
			}
		}
		return pt, math.Abs(t), nil
	default:
		return nil, 0, fmt.Errorf("core: unknown norm %v", norm)
	}
}
