package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fepia/internal/vec"
)

func TestSensitivityDegeneracyExact(t *testing.T) {
	// The paper's Section 3.1 result: for linear one-element systems the
	// sensitivity-weighted combined radius is 1/√n regardless of k, β, orig.
	cases := []struct {
		k, orig vec.V
		beta    float64
	}{
		{vec.Of(1, 1), vec.Of(1, 1), 1.2},
		{vec.Of(2, 3, 5), vec.Of(1, 2, 4), 1.5},
		{vec.Of(10, 0.1), vec.Of(0.5, 100), 3},
		{vec.Of(1, 2, 3, 4, 5), vec.Of(5, 4, 3, 2, 1), 1.01},
	}
	for _, c := range cases {
		a, err := LinearOneElemAnalysis(c.k, c.orig, c.beta)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.CombinedRadius(0, Sensitivity{})
		if err != nil {
			t.Fatal(err)
		}
		want := SensitivityRadiusLinear(len(c.k))
		if math.Abs(r.Value-want) > 1e-10 {
			t.Errorf("k=%v beta=%v: sensitivity radius = %v, want 1/sqrt(n) = %v",
				c.k, c.beta, r.Value, want)
		}
	}
}

func TestPropSensitivityDegeneracy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 2
		k := make(vec.V, n)
		orig := make(vec.V, n)
		for i := range k {
			k[i] = 0.1 + rng.Float64()*10
			orig[i] = 0.1 + rng.Float64()*10
		}
		beta := 1.01 + rng.Float64()*3
		a, err := LinearOneElemAnalysis(k, orig, beta)
		if err != nil {
			return false
		}
		r, err := a.CombinedRadius(0, Sensitivity{})
		if err != nil {
			return false
		}
		return math.Abs(r.Value-1/math.Sqrt(float64(n))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedRadiusMatchesClosedForm(t *testing.T) {
	cases := []struct {
		k, orig vec.V
		beta    float64
	}{
		{vec.Of(1, 1), vec.Of(1, 1), 1.2},
		{vec.Of(2, 3, 5), vec.Of(1, 2, 4), 1.5},
		{vec.Of(10, 0.1), vec.Of(0.5, 100), 3},
	}
	for _, c := range cases {
		a, err := LinearOneElemAnalysis(c.k, c.orig, c.beta)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.CombinedRadius(0, Normalized{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := NormalizedRadiusLinear(c.k, c.orig, c.beta)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Value-want) > 1e-10*(1+want) {
			t.Errorf("k=%v: normalized radius = %v, want %v", c.k, r.Value, want)
		}
	}
}

func TestPropNormalizedDependsOnInputsSensitivityDoesNot(t *testing.T) {
	// The paper's comparison: scaling β up must increase the normalized
	// radius but leave the sensitivity radius at 1/√n.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		k := make(vec.V, n)
		orig := make(vec.V, n)
		for i := range k {
			k[i] = 0.1 + rng.Float64()*5
			orig[i] = 0.1 + rng.Float64()*5
		}
		b1 := 1.1 + rng.Float64()
		b2 := b1 + 0.5 + rng.Float64()
		a1, err := LinearOneElemAnalysis(k, orig, b1)
		if err != nil {
			return false
		}
		a2, err := LinearOneElemAnalysis(k, orig, b2)
		if err != nil {
			return false
		}
		n1, err := a1.CombinedRadius(0, Normalized{})
		if err != nil {
			return false
		}
		n2, err := a2.CombinedRadius(0, Normalized{})
		if err != nil {
			return false
		}
		s1, err := a1.CombinedRadius(0, Sensitivity{})
		if err != nil {
			return false
		}
		s2, err := a2.CombinedRadius(0, Sensitivity{})
		if err != nil {
			return false
		}
		return n2.Value > n1.Value+1e-12 && math.Abs(s1.Value-s2.Value) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCombinedNumericMatchesAnalytic(t *testing.T) {
	// Multi-element blocks, normalized weighting: the numeric P-space search
	// must reproduce the hyperplane distance.
	params := []Perturbation{
		{Name: "exec", Unit: "s", Orig: vec.Of(1, 2)},
		{Name: "msg", Unit: "bytes", Orig: vec.Of(4)},
	}
	impact := func(vs []vec.V) float64 { return 2*vs[0][0] + 3*vs[0][1] + 5*vs[1][0] }
	lin := &LinearImpact{Coeffs: []vec.V{vec.Of(2, 3), vec.Of(5)}}

	aLin, err := NewAnalysis([]Feature{{Name: "phi", Bounds: MaxOnly(42), Linear: lin}}, params)
	if err != nil {
		t.Fatal(err)
	}
	aNum, err := NewAnalysis([]Feature{{Name: "phi", Bounds: MaxOnly(42), Impact: impact}}, params)
	if err != nil {
		t.Fatal(err)
	}
	rLin, err := aLin.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	rNum, err := aNum.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !rLin.Analytic || rNum.Analytic {
		t.Errorf("tier flags wrong: lin=%v num=%v", rLin.Analytic, rNum.Analytic)
	}
	if math.Abs(rLin.Value-rNum.Value) > 1e-4*(1+rLin.Value) {
		t.Errorf("numeric %v vs analytic %v", rNum.Value, rLin.Value)
	}
}

func TestCombinedRadiusBoundaryPointFeasible(t *testing.T) {
	a := twoParamLinear(t)
	r, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	// The returned P-space point must lie on the β^max boundary when mapped
	// back to native values.
	vals, err := FromP(a, Normalized{}, 0, r.Point)
	if err != nil {
		t.Fatal(err)
	}
	phi := a.FeatureValue(0, vals)
	if math.Abs(phi-42) > 1e-8 {
		t.Errorf("boundary point maps to phi = %v, want 42", phi)
	}
}

func TestRobustnessMinOverFeatures(t *testing.T) {
	params := []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	}
	tight := Feature{Name: "tight", Bounds: MaxOnly(2.2),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(1)}}}
	loose := Feature{Name: "loose", Bounds: MaxOnly(20),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(1)}}}
	a, err := NewAnalysis([]Feature{loose, tight}, params)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if rho.Critical != 1 {
		t.Errorf("critical feature = %d, want 1 (the tight one)", rho.Critical)
	}
	if len(rho.PerFeature) != 2 || rho.PerFeature[1].Value != rho.Value {
		t.Errorf("per-feature breakdown inconsistent: %+v", rho)
	}
	if rho.Weighting != "normalized" {
		t.Errorf("weighting label = %q", rho.Weighting)
	}
}

func TestTolerableRecipe(t *testing.T) {
	a := twoParamLinear(t)
	// The original point is trivially tolerable.
	ok, err := a.Tolerable(a.OrigValues(), Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("original operating point must be tolerable")
	}
	// Soundness: any point declared tolerable must not violate the bounds.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		vals := []vec.V{
			vec.Of(1+rng.NormFloat64(), 2+rng.NormFloat64()),
			vec.Of(4 + rng.NormFloat64()*2),
		}
		ok, err := a.Tolerable(vals, Normalized{})
		if err != nil {
			t.Fatal(err)
		}
		if ok && a.Violates(vals) {
			t.Fatalf("unsound verdict: %v declared tolerable but violates", vals)
		}
	}
	// A grossly violating point must be rejected.
	ok, err = a.Tolerable([]vec.V{vec.Of(100, 100), vec.Of(100)}, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("violating point declared tolerable")
	}
}

func TestTolerableShapeErrors(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := a.Tolerable([]vec.V{vec.Of(1, 2)}, Normalized{}); err == nil {
		t.Error("wrong parameter count must error")
	}
	if _, err := a.Tolerable([]vec.V{vec.Of(1), vec.Of(4)}, Normalized{}); err == nil {
		t.Error("wrong parameter dim must error")
	}
}

func TestNormalizedRejectsZeroOrig(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CombinedRadius(0, Normalized{}); err == nil {
		t.Error("zero original value must make normalized weighting error")
	}
}

func TestSensitivityRejectsInfiniteSingleRadius(t *testing.T) {
	// Second parameter cannot affect the feature → r single = +Inf → no α.
	a, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(0)}},
	}}, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CombinedRadius(0, Sensitivity{}); err == nil {
		t.Error("infinite single-parameter radius must make sensitivity weighting error")
	}
}

func TestToPFromPRoundTrip(t *testing.T) {
	a := twoParamLinear(t)
	vals := []vec.V{vec.Of(1.5, 2.5), vec.Of(5)}
	p, err := ToP(a, Normalized{}, 0, vals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromP(a, Normalized{}, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range vals {
		if !back[j].EqualApprox(vals[j], 1e-12) {
			t.Errorf("round trip block %d: %v -> %v", j, vals[j], back[j])
		}
	}
	// P^orig under normalization is all ones.
	pOrig, err := POrig(a, Normalized{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !pOrig.EqualApprox(vec.Ones(3), 1e-12) {
		t.Errorf("P^orig = %v, want ones", pOrig)
	}
}

func TestPaperFormulaErrors(t *testing.T) {
	if _, err := SingleParamRadiusLinear(vec.Of(1), vec.Of(1, 2), 0, 1.5); err == nil {
		t.Error("dim mismatch must error")
	}
	if _, err := SingleParamRadiusLinear(vec.Of(1, 2), vec.Of(1, 2), 5, 1.5); err == nil {
		t.Error("bad index must error")
	}
	if _, err := SingleParamRadiusLinear(vec.Of(0, 2), vec.Of(1, 2), 0, 1.5); err == nil {
		t.Error("zero coefficient must error")
	}
	if _, err := NormalizedRadiusLinear(vec.Of(1), vec.Of(1, 2), 1.5); err == nil {
		t.Error("dim mismatch must error")
	}
	if _, err := NormalizedRadiusLinear(vec.Of(0, 0), vec.Of(1, 1), 1.5); err == nil {
		t.Error("all-zero products must error")
	}
	if _, err := LinearOneElemAnalysis(vec.Of(1), vec.Of(1), 0.9); err == nil {
		t.Error("beta <= 1 must error")
	}
	if _, err := LinearOneElemAnalysis(vec.Of(1, 2), vec.Of(1), 1.5); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestSingleParamRadiusLinearMatchesEngine(t *testing.T) {
	k := vec.Of(2, 3, 5)
	orig := vec.Of(1, 2, 4)
	const beta = 1.5
	a, err := LinearOneElemAnalysis(k, orig, beta)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		want, err := SingleParamRadiusLinear(k, orig, j, beta)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.RadiusSingle(0, j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Value-want) > 1e-10*(1+want) {
			t.Errorf("j=%d: engine %v vs paper formula %v", j, got.Value, want)
		}
	}
}

func TestBoundarySideString(t *testing.T) {
	if SideMax.String() != "beta-max" || SideMin.String() != "beta-min" || SideNone.String() != "none" {
		t.Error("BoundarySide strings wrong")
	}
}
