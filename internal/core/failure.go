package core

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"fepia/internal/vec"
)

// This file is the failure-containment layer of the hardened evaluation
// runtime. The analysis calls arbitrary caller-supplied impact functions in
// tight loops (level-set searches, Monte-Carlo sampling); as a long-running
// service component it must survive the faults it measures:
//
//   - a panicking ImpactFunc fails its own radius with a typed
//     *ImpactPanicError instead of taking down the process;
//   - NaN/Inf leaking out of an impact function (or produced by the numeric
//     root-finding) becomes a typed *NumericError instead of silently
//     corrupting a radius;
//   - context cancellation and evaluation budgets propagate out of the
//     numeric tier as wrapped ctx.Err() / optimize.ErrEvalBudget.
//
// docs/failure-semantics.md describes the full taxonomy.

// Containment sentinels. Match them with errors.Is; retrieve the carried
// detail (feature index, panic value, stack) with errors.As on the concrete
// *ImpactPanicError / *NumericError types.
var (
	// ErrImpactPanic matches any error caused by a panic inside a
	// caller-supplied impact function.
	ErrImpactPanic = errors.New("core: impact function panicked")
	// ErrNumeric matches any error caused by a non-finite (NaN/Inf) value
	// observed while evaluating an impact function or a radius.
	ErrNumeric = errors.New("core: non-finite value in robustness evaluation")
)

// ImpactPanicError reports a panic recovered from a caller-supplied impact
// function. It satisfies errors.Is(err, ErrImpactPanic).
type ImpactPanicError struct {
	// Feature is the index of the feature whose impact function panicked.
	Feature int
	// Param is the perturbation-parameter index of the enclosing
	// single-parameter radius, or −1 for combined-P-space and sampling
	// evaluations.
	Param int
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *ImpactPanicError) Error() string {
	return fmt.Sprintf("core: impact function of feature %d panicked: %v", e.Feature, e.Value)
}

// Unwrap makes errors.Is(err, ErrImpactPanic) true.
func (e *ImpactPanicError) Unwrap() error { return ErrImpactPanic }

// NumericError reports a NaN or Inf observed during a robustness
// evaluation. It satisfies errors.Is(err, ErrNumeric).
type NumericError struct {
	// Feature is the index of the affected feature (−1 when unknown).
	Feature int
	// Op names the computation that observed the value, e.g.
	// "combined radius" or "Monte-Carlo sample".
	Op string
	// Value is the offending value (NaN, +Inf or −Inf).
	Value float64
}

// Error implements error.
func (e *NumericError) Error() string {
	return fmt.Sprintf("core: %s of feature %d produced non-finite value %g", e.Op, e.Feature, e.Value)
}

// Unwrap makes errors.Is(err, ErrNumeric) true.
func (e *NumericError) Unwrap() error { return ErrNumeric }

// guard wraps the evaluations of one feature's impact function during one
// radius computation or sampling run. It converts panics into a recorded
// *ImpactPanicError (the evaluation itself yields NaN so the enclosing
// search degrades instead of crashing) and records any non-finite value the
// impact produces. After the computation, err() reports the dominant typed
// error. A guard is used by a single goroutine.
type guard struct {
	feature   int
	param     int
	op        string
	panicErr  *ImpactPanicError
	nonFinite float64 // first non-finite value observed (0 when none)
	sawBad    bool
}

// wrap returns f with panic recovery and non-finite tracking.
func (g *guard) wrap(f ImpactFunc) ImpactFunc {
	return func(vals []vec.V) (out float64) {
		defer func() {
			if r := recover(); r != nil {
				if g.panicErr == nil {
					g.panicErr = &ImpactPanicError{
						Feature: g.feature,
						Param:   g.param,
						Value:   r,
						Stack:   debug.Stack(),
					}
				}
				out = math.NaN()
			}
		}()
		out = f(vals)
		if !g.sawBad && (math.IsNaN(out) || math.IsInf(out, 0)) {
			g.sawBad, g.nonFinite = true, out
		}
		return out
	}
}

// wrapK returns a batch impact evaluator with the same containment as wrap:
// a panic is recorded once and every probe of the failing call yields NaN
// (degrading the whole block, exactly as the scalar path degrades one
// evaluation), and non-finite outputs are tracked per probe.
func (g *guard) wrapK(fk func(probes []vec.V, out []float64)) func(probes []vec.V, out []float64) {
	return func(probes []vec.V, out []float64) {
		defer func() {
			if r := recover(); r != nil {
				if g.panicErr == nil {
					g.panicErr = &ImpactPanicError{
						Feature: g.feature,
						Param:   g.param,
						Value:   r,
						Stack:   debug.Stack(),
					}
				}
				for p := range probes {
					out[p] = math.NaN()
				}
			}
		}()
		fk(probes, out)
		if !g.sawBad {
			for _, v := range out[:len(probes)] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					g.sawBad, g.nonFinite = true, v
					break
				}
			}
		}
	}
}

// err folds the guard's observations into the enclosing computation's
// outcome. A recovered panic dominates; any observed non-finite value turns
// an otherwise-successful search into a *NumericError, because a NaN/Inf
// region can hide a nearer boundary and must never yield a silently wrong
// radius. searchErr is the error (possibly nil) of the enclosing search.
func (g *guard) err(searchErr error) error {
	if g.panicErr != nil {
		return g.panicErr
	}
	if g.sawBad {
		return &NumericError{Feature: g.feature, Op: g.op, Value: g.nonFinite}
	}
	return searchErr
}

// safeEval evaluates one impact function with panic containment, for
// call-once sites (validation, sampling) outside a search loop.
func safeEval(feature int, f ImpactFunc, vals []vec.V) (v float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ImpactPanicError{Feature: feature, Param: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	return f(vals), nil
}

// safeEvalK evaluates a batch impact function with panic containment, for
// call-once sites (validation) outside a search loop.
func safeEvalK(feature int, fk func(probes []vec.V, out []float64), probes []vec.V, out []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &ImpactPanicError{Feature: feature, Param: -1, Value: r, Stack: debug.Stack()}
		}
	}()
	fk(probes, out)
	return nil
}
