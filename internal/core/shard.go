package core

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// This file is the shard-slicing layer of the batch evaluation engine: the
// primitives a distributed coordinator (internal/cluster) uses to split one
// robustness evaluation into per-feature shards, evaluate each shard on a
// different machine, and min-fold the shards back into the exact result a
// single node would have produced.
//
// The decomposition is exact because the metric is: ρ_μ(Φ, P) =
// min_i r_μ(φ_i, P) is a min-fold over per-feature radii that never share
// state — each radius depends only on its own feature's impact function,
// bounds, and scales. The one subtlety is indexing: degraded Monte-Carlo
// fallbacks derive their sample streams from (DegradeSeed, feature index)
// and error messages carry the feature index, so a shard MUST evaluate
// features under their original (global) indices. RobustnessShardCtx
// therefore takes a subset of indices into the full analysis rather than a
// re-numbered sub-analysis; building a smaller Analysis out of a feature
// subset would silently change every degraded value and error string.

// ShardFeatures partitions the feature indices 0…n−1 into at most `shards`
// contiguous, size-balanced slices (sizes differ by at most one, earlier
// shards take the extra features). It never returns empty shards: fewer
// features than shards yields one single-feature shard per feature.
// The partition is deterministic — same (n, shards) in, same slices out —
// which is what makes shard-to-worker placement stable across retries.
func ShardFeatures(n, shards int) [][]int {
	if n <= 0 || shards <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	out := make([][]int, 0, shards)
	base, extra := n/shards, n%shards
	next := 0
	for s := 0; s < shards; s++ {
		size := base
		if s < extra {
			size++
		}
		shard := make([]int, size)
		for q := range shard {
			shard[q] = next
			next++
		}
		out = append(out, shard)
	}
	return out
}

// RobustnessShardCtx evaluates only the listed features of the analysis and
// returns their radii and errors (both parallel to features, exactly one
// set per slot). Feature indices are global: radii carry them in
// Radius.Feature, degraded Monte-Carlo fallbacks derive their streams from
// deriveSeed(opt.DegradeSeed, global index), and errors are wrapped
// "core: feature %d" with the global index — so a shard's slot q is
// bit-identical (value and error string) to what RobustnessWith over the
// full analysis would have produced for feature features[q], and min-folding
// any partition of shards reproduces the single-node result exactly
// (FoldRadii). Unlike RobustnessWith there is no cross-feature early stop:
// every listed feature reports its own outcome, which is what a gather layer
// needs to pick the lowest-index error deterministically.
func (a *Analysis) RobustnessShardCtx(ctx context.Context, features []int, w Weighting, opt EvalOptions) ([]Radius, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	radii := make([]Radius, len(features))
	errs := make([]error, len(features))

	degrade := func(q, i int, cause error) {
		lb, derr := a.mcRadiusLowerBound(ctx, i, w, opt.DegradeSamples, deriveSeed(opt.DegradeSeed, i))
		switch {
		case derr == nil:
			radii[q] = Radius{Value: lb, Side: SideNone, Feature: i, Param: -1, Degraded: true}
		case cause == nil:
			errs[q] = fmt.Errorf("core: feature %d: forced degradation failed: %w", i, derr)
		default:
			errs[q] = fmt.Errorf("core: feature %d: %w (Monte-Carlo fallback also failed: %v)", i, cause, derr)
		}
	}

	if opt.ForceDegraded {
		for q, i := range features {
			if i < 0 || i >= len(a.Features) {
				errs[q] = fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
				continue
			}
			degrade(q, i, nil)
		}
		return radii, errs
	}

	rr, ee := a.CombinedRadiusBatchCtx(ctx, w, features, opt)
	if err := ctxErr(ctx); err != nil {
		// The caller's own cancellation dominates per-feature fallout, as in
		// RobustnessBatch: report it raw on every slot.
		for q := range errs {
			errs[q] = err
		}
		return radii, errs
	}
	for q, i := range features {
		switch {
		case ee[q] == nil:
			radii[q] = rr[q]
		case opt.DegradeOnNumeric && errors.Is(ee[q], ErrNumeric):
			degrade(q, i, ee[q])
		default:
			errs[q] = fmt.Errorf("core: feature %d: %w", i, ee[q])
		}
	}
	return radii, errs
}

// FoldRadii reassembles the system-level Robustness from a complete set of
// per-feature radii ordered by feature index — the gather half of a
// scatter/gather evaluation, once every shard's radii have been merged back
// into feature order. It replicates foldRobustness's tie-breaking exactly:
// strict less-than, so the lowest-index feature attaining the minimum is
// Critical, and Critical is −1 when every radius is infinite. Degraded is
// set when any radius was produced by the Monte-Carlo fallback.
func FoldRadii(weighting string, radii []Radius) Robustness {
	out := Robustness{Value: math.Inf(1), Critical: -1, Weighting: weighting, PerFeature: radii}
	for i := range radii {
		if radii[i].Degraded {
			out.Degraded = true
		}
		if radii[i].Value < out.Value {
			out.Value, out.Critical = radii[i].Value, i
		}
	}
	return out
}
