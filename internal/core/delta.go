package core

import (
	"fmt"
	"sort"

	"context"
)

// Incremental re-evaluation. The robustness metric is a min-fold over
// per-feature radii that never share state (see shard.go for the full
// argument), so when a new version of an analysis differs from an already
// evaluated ancestor in ways that only affect a subset of features — the
// "dirty" set — re-searching just those features and reusing the ancestor's
// radii for the rest reproduces the cold full evaluation exactly.
//
// Deciding WHICH features are clean is the caller's job (internal/delta
// classifies versioned AnalysisDocs structurally); this file only performs
// the splice-and-fold, under the same global-index discipline as the shard
// layer: dirty features are evaluated at their original indices, so degraded
// Monte-Carlo streams (deriveSeed) and error strings are bit-identical to
// what a full evaluation would produce for them.

// RobustnessDelta computes the robustness metric incrementally: only the
// features listed in dirty are re-evaluated (through the same engine as
// RobustnessShardCtx, at their global indices); every other feature reuses
// its radius from prior, which must hold a complete set of per-feature radii
// from a successful ancestor evaluation under the same weighting (e.g. the
// PerFeature slice of its Robustness). The spliced radii are min-folded with
// FoldRadii, so the result — Value, Critical, Degraded, and each PerFeature
// slot — is bit-identical to a cold RobustnessWith of this analysis,
// PROVIDED the clean features' radii really are unchanged between the
// ancestor and this analysis. That soundness condition is exactly what
// internal/delta's conservative classification guarantees; passing an
// understated dirty set silently reuses stale radii.
//
// Error reporting matches the engine's determinism contract: the
// lowest-index dirty feature that fails non-tolerably is reported (wrapped
// "core: feature %d"), and the caller's own cancellation dominates.
func (a *Analysis) RobustnessDelta(ctx context.Context, w Weighting, opt EvalOptions, prior []Radius, dirty []int) (Robustness, error) {
	n := len(a.Features)
	if len(prior) != n {
		return Robustness{}, fmt.Errorf("core: delta: prior has %d radii, want one per feature (%d)", len(prior), n)
	}
	ds := append([]int(nil), dirty...)
	sort.Ints(ds)
	m := 0
	for _, i := range ds {
		if i < 0 || i >= n {
			return Robustness{}, fmt.Errorf("%w: dirty feature %d of %d", ErrBadIndex, i, n)
		}
		if m > 0 && ds[m-1] == i {
			continue
		}
		ds[m] = i
		m++
	}
	ds = ds[:m]

	radii := make([]Radius, n)
	copy(radii, prior)
	if len(ds) > 0 {
		rr, errs := a.RobustnessShardCtx(ctx, ds, w, opt)
		if err := ctxErr(ctx); err != nil {
			return Robustness{}, err
		}
		// ds is sorted, so the first error seen is the lowest-index one —
		// the same deterministic choice the full engine makes.
		for q := range ds {
			if errs[q] != nil {
				return Robustness{}, errs[q]
			}
		}
		for q, i := range ds {
			radii[i] = rr[q]
		}
	}
	return FoldRadii(w.Name(), radii), nil
}
