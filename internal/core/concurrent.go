package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// RobustnessConcurrent computes the same result as Robustness but evaluates
// the per-feature combined radii on a bounded worker pool. For analyses
// whose features need the numeric level-set tier (bilinear HiPer-D
// utilizations, arbitrary ImpactFuncs) the per-feature cost dominates and
// the speedup is near-linear in cores; for all-linear analyses the radii
// are microseconds each and the serial path is preferable.
//
// workers ≤ 0 selects GOMAXPROCS. The result is identical to the serial
// computation (each feature's radius is deterministic and features are
// independent).
func (a *Analysis) RobustnessConcurrent(w Weighting, workers int) (Robustness, error) {
	n := len(a.Features)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return a.Robustness(w)
	}

	radii := make([]Radius, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				radii[i], errs[i] = a.CombinedRadius(i, w)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	out := Robustness{Value: math.Inf(1), Critical: -1, Weighting: w.Name(), PerFeature: radii}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return Robustness{}, fmt.Errorf("core: feature %d: %w", i, errs[i])
		}
		if radii[i].Value < out.Value {
			out.Value, out.Critical = radii[i].Value, i
		}
	}
	return out, nil
}
