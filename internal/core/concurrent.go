package core

import (
	"context"
	"runtime"
)

// RobustnessConcurrent computes the same result as Robustness but evaluates
// the per-feature combined radii on a bounded worker pool. For analyses
// whose features need the numeric level-set tier (bilinear HiPer-D
// utilizations, arbitrary ImpactFuncs) the per-feature cost dominates and
// the speedup is near-linear in cores; for all-linear analyses the radii
// are microseconds each and the serial path is preferable.
//
// workers ≤ 0 selects GOMAXPROCS. The result is identical to the serial
// computation (each feature's radius is deterministic and features are
// independent). A feature error stops the remaining work early — workers
// share a cancel signal, so in-flight radii abort at their next impact
// evaluation — and the lowest-index observed error is reported
// deterministically.
func (a *Analysis) RobustnessConcurrent(w Weighting, workers int) (Robustness, error) {
	return a.RobustnessConcurrentCtx(context.Background(), w, workers)
}

// RobustnessConcurrentCtx is RobustnessConcurrent with cooperative
// cancellation: ctx is checked between features and before every
// impact-function evaluation of the numeric tier, on every worker.
func (a *Analysis) RobustnessConcurrentCtx(ctx context.Context, w Weighting, workers int) (Robustness, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return a.RobustnessWith(ctx, w, EvalOptions{Workers: workers})
}
