package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/vec"
)

// Weighting converts between native perturbation values π_1, …, π_|Π| and the
// combined dimensionless vector P of Section 3 of the paper. Both weightings
// the paper analyzes are diagonal: P = D·(π_1 ⋆ … ⋆ π_|Π|) element-wise, so a
// weighting is fully described by its scale vector.
//
// The scale may depend on the feature (sensitivity weighting uses
// α_j = 1/r_μ(φ_i, π_j), which varies with φ_i), hence the featIdx argument.
type Weighting interface {
	// Name identifies the weighting in reports.
	Name() string
	// Scales returns the element-wise factors D (length TotalDim) applied
	// to the concatenated native values for feature featIdx.
	Scales(a *Analysis, featIdx int) (vec.V, error)
}

// weighting errors.
var (
	// ErrDegenerateWeighting is returned when a weighting cannot be formed,
	// e.g. a sensitivity weight 1/r with r zero or infinite, or a normalized
	// weight with a zero original value.
	ErrDegenerateWeighting = errors.New("core: degenerate weighting")
)

// ToP converts native parameter values to P-space under w for feature i.
// It performs a single allocation (the returned vector); the weighting
// scales are memoized when the analysis has an impact cache enabled.
func ToP(a *Analysis, w Weighting, featIdx int, values []vec.V) (vec.V, error) {
	d, err := a.scalesFor(w, featIdx)
	if err != nil {
		return nil, err
	}
	var total int
	for _, v := range values {
		total += len(v)
	}
	if total != len(d) {
		return nil, fmt.Errorf("core: ToP: values dim %d vs scales dim %d: %w", total, len(d), vec.ErrDimMismatch)
	}
	out := make(vec.V, total)
	vec.ConcatInto(out, values...)
	return vec.MulInto(out, out, d), nil
}

// FromP converts a P-space vector back to native parameter values.
func FromP(a *Analysis, w Weighting, featIdx int, p vec.V) ([]vec.V, error) {
	d, err := a.scalesFor(w, featIdx)
	if err != nil {
		return nil, err
	}
	if len(p) != len(d) {
		return nil, fmt.Errorf("core: FromP: P dim %d vs scales dim %d: %w", len(p), len(d), vec.ErrDimMismatch)
	}
	native := make(vec.V, len(p))
	return a.split(vec.DivInto(native, p, d))
}

// POrig returns P^orig = scales ∘ concat(π^orig) for feature featIdx.
func POrig(a *Analysis, w Weighting, featIdx int) (vec.V, error) {
	return ToP(a, w, featIdx, a.OrigValues())
}

// ---------------------------------------------------------------------------
// Normalized weighting (Section 3.2 — the paper's proposal)
// ---------------------------------------------------------------------------

// Normalized is the paper's proposed weighting: every element is divided by
// its own original value, P_jk = π_jk / π_jk^orig (Eq. 5), so P^orig is the
// all-ones vector, P is dimensionless, and — unlike the sensitivity
// weighting — the resulting radius depends on the coefficients, the
// requirement β, and the original values. Original values must be nonzero.
type Normalized struct{}

// Name implements Weighting.
func (Normalized) Name() string { return "normalized" }

// Scales implements Weighting: D = 1 / concat(π^orig). The feature index is
// ignored — the normalization is feature-independent, which is what lets a
// single P-space serve the whole feature set.
func (Normalized) Scales(a *Analysis, _ int) (vec.V, error) {
	x := concat(a.OrigValues())
	d := make(vec.V, len(x))
	for i, v := range x {
		if v == 0 {
			return nil, fmt.Errorf("%w: normalized weighting needs nonzero original values (element %d is 0)",
				ErrDegenerateWeighting, i)
		}
		d[i] = 1 / v
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Unweighted (identity) weighting — native units
// ---------------------------------------------------------------------------

// Unweighted is the identity weighting: P = concat(π), every scale is 1, so
// radii come out in the parameters' native units. It exists for workloads
// whose features share one parameter in one unit — the makespan family,
// where the TPDS 2004 closed form (τ·M^orig − F_j)/√n_j is stated in native
// execution-time units — and for those it makes the engine's combined radius
// coincide exactly with the closed form (multiplying by a scale of 1.0 and
// dividing by 1.0 are bit-exact identities in IEEE arithmetic). The
// allocation-search service relies on that coincidence for its fast path.
//
// Never use it across parameters with incomparable units; that is precisely
// the failure mode Section 3.2's normalized weighting exists to fix.
type Unweighted struct{}

// Name implements Weighting.
func (Unweighted) Name() string { return "unweighted" }

// Scales implements Weighting: the all-ones vector, feature-independent.
func (Unweighted) Scales(a *Analysis, _ int) (vec.V, error) {
	d := make(vec.V, a.TotalDim())
	for i := range d {
		d[i] = 1
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Sensitivity weighting (Section 3.1 — the scheme shown to degenerate)
// ---------------------------------------------------------------------------

// Sensitivity is the preliminary weighting proposed in the TPDS 2004 paper
// and analyzed (negatively) in Section 3.1: each parameter block is scaled by
// α_j = 1/r_μ(φ_i, π_j), the reciprocal of its single-parameter robustness
// radius against the feature under study. The scale is per-feature.
//
// The paper proves that for linear features over one-element parameters the
// resulting combined radius is always 1/√n — the weighting erases exactly
// the information a robustness metric must preserve. It is implemented here
// both for completeness and because reproducing that degeneracy is
// experiment E3.
type Sensitivity struct{}

// Name implements Weighting.
func (Sensitivity) Name() string { return "sensitivity" }

// Scales implements Weighting: block j of D is α_j = 1/r_μ(φ_i, π_j)
// repeated across the block. A zero or infinite single-parameter radius
// makes the weighting degenerate and is reported as an error.
func (Sensitivity) Scales(a *Analysis, featIdx int) (vec.V, error) {
	if featIdx < 0 || featIdx >= len(a.Features) {
		return nil, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, featIdx, len(a.Features))
	}
	d := make(vec.V, 0, a.TotalDim())
	for j, p := range a.Params {
		r, err := a.RadiusSingle(featIdx, j)
		if err != nil {
			return nil, err
		}
		if r.Value == 0 || math.IsInf(r.Value, 0) || math.IsNaN(r.Value) {
			return nil, fmt.Errorf("%w: r_mu(phi_%d, pi_%d) = %g gives no usable alpha",
				ErrDegenerateWeighting, featIdx, j, r.Value)
		}
		alpha := 1 / r.Value
		for k := 0; k < p.Dim(); k++ {
			d = append(d, alpha)
		}
	}
	return d, nil
}
