package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"fepia/internal/vec"
)

// quadNumericAnalysis builds a two-parameter analysis whose quadratic impact
// is deliberately NOT declared Quad, so radii run through the numeric
// level-set tier, with a matching ImpactK for the k-probe path.
func quadNumericAnalysis(t testing.TB) *Analysis {
	t.Helper()
	curv := []vec.V{{1, 0.5}, {2}}
	center := []vec.V{{0.1, -0.2}, {0.3}}
	impact := func(vs []vec.V) float64 {
		s := 0.5
		for j := range curv {
			for e := range curv[j] {
				d := vs[j][e] - center[j][e]
				s += curv[j][e] * d * d
			}
		}
		return s
	}
	impactK := func(probes []vec.V, out []float64) {
		for p, v := range probes {
			s := 0.5
			off := 0
			for j := range curv {
				for e := range curv[j] {
					d := v[off+e] - center[j][e]
					s += curv[j][e] * d * d
				}
				off += len(curv[j])
			}
			out[p] = s
		}
	}
	a, err := NewAnalysis([]Feature{{
		Name:    "quad",
		Bounds:  MaxOnly(9),
		Impact:  impact,
		ImpactK: impactK,
	}}, []Perturbation{
		{Name: "u", Orig: vec.Of(1, 0.6)},
		{Name: "v", Orig: vec.Of(0.9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func radiiBitsEqual(a, b Robustness) bool {
	if math.Float64bits(a.Value) != math.Float64bits(b.Value) || len(a.PerFeature) != len(b.PerFeature) {
		return false
	}
	for i := range a.PerFeature {
		if math.Float64bits(a.PerFeature[i].Value) != math.Float64bits(b.PerFeature[i].Value) {
			return false
		}
	}
	return true
}

// Warm-started evaluations must be bit-identical to cold ones, and repeats
// must actually reuse recorded rays.
func TestWarmStartRobustnessBitIdentical(t *testing.T) {
	cold := quadNumericAnalysis(t)
	want, err := cold.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	a := quadNumericAnalysis(t)
	a.EnableWarmStart()
	for rep := 0; rep < 3; rep++ {
		got, err := a.Robustness(Normalized{})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !radiiBitsEqual(got, want) {
			t.Fatalf("rep %d: warm %.17g != cold %.17g", rep, got.Value, want.Value)
		}
	}
	ws := a.WarmStats()
	if ws.RayReuses == 0 || ws.MemoHits == 0 {
		t.Fatalf("warm repeats reused nothing: %+v", ws)
	}
	if ws.Invalidations != 0 {
		t.Fatalf("unexpected invalidations on a frozen analysis: %+v", ws)
	}
	// Single-parameter radii warm-start through their own slots.
	r1, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1.Value) != math.Float64bits(r2.Value) {
		t.Fatalf("repeated single radius diverged: %v vs %v", r1.Value, r2.Value)
	}
}

// The k-probe path must return bit-identical radii to the scalar path, for
// combined and single-parameter searches.
func TestKProbeRadiiBitIdentical(t *testing.T) {
	a := quadNumericAnalysis(t)
	scalar, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 8} {
		got, err := a.CombinedRadiusWith(context.Background(), 0, Normalized{}, EvalOptions{KProbe: k})
		if err != nil {
			t.Fatalf("KProbe=%d: %v", k, err)
		}
		if math.Float64bits(got.Value) != math.Float64bits(scalar.Value) {
			t.Fatalf("KProbe=%d diverged: %.17g vs %.17g", k, got.Value, scalar.Value)
		}
	}
	// KProbe on a feature without ImpactK silently uses the scalar path.
	b := prodAnalysis(t, 2, 4)
	sr, err := b.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	kr, err := b.CombinedRadiusWith(context.Background(), 0, Normalized{}, EvalOptions{KProbe: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(kr.Value) != math.Float64bits(sr.Value) {
		t.Fatalf("scalar fallback diverged: %v vs %v", kr.Value, sr.Value)
	}
}

// Warm start, k-probe, and the impact cache compose across the serial,
// concurrent, and batch engines without changing results beyond the cache's
// documented 1e-9 agreement.
func TestWarmKProbeCacheAcrossEngines(t *testing.T) {
	cold := quadNumericAnalysis(t)
	want, err := cold.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	a := quadNumericAnalysis(t)
	a.EnableWarmStart()
	a.EnableImpactCache(1 << 12)
	opt := EvalOptions{KProbe: 8}
	for rep := 0; rep < 2; rep++ {
		got, err := a.RobustnessWith(context.Background(), Normalized{}, opt)
		if err != nil {
			t.Fatalf("serial rep %d: %v", rep, err)
		}
		if d := math.Abs(got.Value - want.Value); d > 1e-9 {
			t.Fatalf("serial rep %d off by %g", rep, d)
		}
	}
	copt := opt
	copt.Workers = 4
	got, err := a.RobustnessWith(context.Background(), Normalized{}, copt)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(got.Value - want.Value); d > 1e-9 {
		t.Fatalf("concurrent off by %g", d)
	}
	outs, errs := a.RobustnessBatch([]Weighting{Normalized{}, Normalized{}}, copt)
	for i, berr := range errs {
		if berr != nil {
			t.Fatalf("batch item %d: %v", i, berr)
		}
		if d := math.Abs(outs[i].Value - want.Value); d > 1e-9 {
			t.Fatalf("batch item %d off by %g", i, d)
		}
	}
}

// Concurrent searches race for warm-state checkout; losers must run cold
// and results must stay bit-identical (run under -race in CI).
func TestWarmStartConcurrentCheckout(t *testing.T) {
	cold := quadNumericAnalysis(t)
	want, err := cold.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	a := quadNumericAnalysis(t)
	a.EnableWarmStart()
	var wg sync.WaitGroup
	results := make([]Radius, 16)
	errs := make([]error, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = a.CombinedRadius(0, Normalized{})
		}(g)
	}
	wg.Wait()
	for g := range results {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if math.Float64bits(results[g].Value) != math.Float64bits(want.Value) {
			t.Fatalf("goroutine %d diverged: %.17g vs %.17g", g, results[g].Value, want.Value)
		}
	}
}

// Validate must reject an ImpactK that disagrees with the scalar impact.
func TestValidateImpactKMismatch(t *testing.T) {
	_, err := NewAnalysis([]Feature{{
		Name:   "bad",
		Bounds: MaxOnly(10),
		Impact: func(vs []vec.V) float64 { return vs[0][0] },
		ImpactK: func(probes []vec.V, out []float64) {
			for p, v := range probes {
				out[p] = v[0] + 1e-12 // off by one ulp-scale nudge: must be caught
			}
		},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err == nil {
		t.Fatal("disagreeing ImpactK passed validation")
	}
}

// MaxEvals must bound a numeric search through the public options.
func TestEvalOptionsMaxEvals(t *testing.T) {
	a := prodAnalysis(t, 3, 1e9) // far boundary: the search needs many probes
	_, err := a.CombinedRadiusWith(context.Background(), 0, Normalized{}, EvalOptions{MaxEvals: 10})
	if err == nil {
		t.Fatal("a 10-evaluation budget satisfied a far-boundary search")
	}
}
