package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// mixedAnalysis builds an analysis exercising all three radius tiers: a
// linear feature (hyperplane tier), a quadratic feature (ellipsoid tier),
// and a nonlinear product feature (numeric level-set tier).
func mixedAnalysis(t testing.TB) *Analysis {
	t.Helper()
	quad := &QuadImpact{A: []vec.V{{1, 0.5}, {2}}, C: []vec.V{{0, 0}, {0}}}
	a, err := NewAnalysis(
		[]Feature{
			{
				Name:   "lin",
				Bounds: MaxOnly(20),
				Linear: &LinearImpact{Coeffs: []vec.V{{2, 3}, {5}}},
			},
			{
				Name:   "quad",
				Bounds: MaxOnly(30),
				Quad:   quad,
			},
			{
				Name:   "prod",
				Bounds: Band(0.05, 15),
				Impact: func(vs []vec.V) float64 {
					return vs[0][0] * vs[0][1] * vs[1][0]
				},
			},
		},
		[]Perturbation{
			{Name: "exec", Unit: "s", Orig: vec.Of(1, 2)},
			{Name: "msg", Unit: "bytes", Orig: vec.Of(1.5)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRobustnessBatchMatchesSerial(t *testing.T) {
	a := mixedAnalysis(t)
	ws := []Weighting{Normalized{}, Custom{Alphas: vec.Of(1, 2)}, Custom{Alphas: vec.Of(0.5, 3)}}
	want := make([]Robustness, len(ws))
	for i, w := range ws {
		var err error
		want[i], err = a.RobustnessWith(context.Background(), w, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		got, errs := a.RobustnessBatchCtx(context.Background(), ws, EvalOptions{Workers: workers})
		if len(got) != len(ws) || len(errs) != len(ws) {
			t.Fatalf("workers=%d: got %d results, %d errors for %d items", workers, len(got), len(errs), len(ws))
		}
		for i := range ws {
			if errs[i] != nil {
				t.Fatalf("workers=%d item %d: %v", workers, i, errs[i])
			}
			if !vec.ScalarEqualApprox(got[i].Value, want[i].Value, 1e-12) {
				t.Fatalf("workers=%d item %d: batch %.15g vs serial %.15g", workers, i, got[i].Value, want[i].Value)
			}
			if got[i].Critical != want[i].Critical {
				t.Fatalf("workers=%d item %d: critical %d vs %d", workers, i, got[i].Critical, want[i].Critical)
			}
			for f := range want[i].PerFeature {
				if !vec.ScalarEqualApprox(got[i].PerFeature[f].Value, want[i].PerFeature[f].Value, 1e-12) {
					t.Fatalf("workers=%d item %d feature %d: batch %.15g vs serial %.15g",
						workers, i, f, got[i].PerFeature[f].Value, want[i].PerFeature[f].Value)
				}
			}
		}
	}
}

func TestRobustnessBatchValidation(t *testing.T) {
	a := mixedAnalysis(t)
	out, errs := RobustnessBatch(context.Background(), []BatchItem{
		{A: nil, W: Normalized{}},
		{A: a, W: nil},
		{A: a, W: Normalized{}},
	}, EvalOptions{})
	if len(out) != 3 || len(errs) != 3 {
		t.Fatalf("got %d results, %d errors", len(out), len(errs))
	}
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("invalid items accepted: %v, %v", errs[0], errs[1])
	}
	if errs[2] != nil {
		t.Fatalf("valid item rejected: %v", errs[2])
	}
	if out[2].Critical < 0 {
		t.Fatalf("valid item produced no result: %+v", out[2])
	}
}

// TestRobustnessBatchItemIsolation checks that one item failing (panicking
// impact function) does not disturb its batch siblings.
func TestRobustnessBatchItemIsolation(t *testing.T) {
	bad, err := NewAnalysis([]Feature{{
		Name:   "boom",
		Bounds: MaxOnly(2),
		Impact: func(vs []vec.V) float64 {
			if vs[0][0] != 1 {
				panic("injected") // fires on the first search step off-origin
			}
			return 1
		},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	good := mixedAnalysis(t)
	out, errs := RobustnessBatch(context.Background(), []BatchItem{
		{A: bad, W: Normalized{}},
		{A: good, W: Normalized{}},
	}, EvalOptions{Workers: 4})
	if !errors.Is(errs[0], ErrImpactPanic) {
		t.Fatalf("errs[0] = %v, want ErrImpactPanic", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("healthy sibling failed: %v", errs[1])
	}
	if math.IsInf(out[1].Value, 1) || out[1].Value <= 0 {
		t.Fatalf("healthy sibling result: %+v", out[1])
	}
}

// TestRobustnessBatchDegrade mirrors the serial DegradeOnNumeric semantics:
// a numeric fault degrades the feature to a Monte-Carlo lower bound instead
// of failing the item.
func TestRobustnessBatchDegrade(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name:   "patchy",
		Bounds: MaxOnly(4),
		Impact: func(vs []vec.V) float64 {
			x := vs[0][0]
			if x > 1.6 {
				return math.NaN() // numeric fault region before the boundary
			}
			return x * x
		},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSamples: 64, DegradeSeed: 7}
	want, err := a.RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 4
	out, errs := a.RobustnessBatchCtx(context.Background(), []Weighting{Normalized{}}, opt)
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if !out[0].Degraded {
		t.Fatalf("batch result not degraded: %+v", out[0])
	}
	if !vec.ScalarEqualApprox(out[0].Value, want.Value, 1e-12) {
		t.Fatalf("degraded batch %.15g vs serial %.15g", out[0].Value, want.Value)
	}
}

func TestCombinedRadiusBatchMatchesSerial(t *testing.T) {
	a := mixedAnalysis(t)
	w := Normalized{}
	radii, errs := a.CombinedRadiusBatchCtx(context.Background(), w, nil, EvalOptions{Workers: 4})
	if len(radii) != len(a.Features) {
		t.Fatalf("nil features gave %d radii, want %d", len(radii), len(a.Features))
	}
	for i := range a.Features {
		if errs[i] != nil {
			t.Fatalf("feature %d: %v", i, errs[i])
		}
		want, err := a.CombinedRadius(i, w)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.ScalarEqualApprox(radii[i].Value, want.Value, 1e-12) {
			t.Fatalf("feature %d: batch %.15g vs serial %.15g", i, radii[i].Value, want.Value)
		}
		if radii[i].Side != want.Side || radii[i].Feature != want.Feature {
			t.Fatalf("feature %d: batch %+v vs serial %+v", i, radii[i], want)
		}
	}
	// Out-of-range features report per-entry errors without disturbing others.
	radii, errs = a.CombinedRadiusBatch(w, []int{0, 99}, EvalOptions{})
	if errs[0] != nil || !errors.Is(errs[1], ErrBadIndex) {
		t.Fatalf("index validation: %v, %v", errs[0], errs[1])
	}
	if radii[0].Value <= 0 {
		t.Fatalf("valid entry not computed: %+v", radii[0])
	}
}

func TestRobustnessBatchCancellation(t *testing.T) {
	a := mixedAnalysis(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := a.RobustnessBatchCtx(ctx, []Weighting{Normalized{}, Normalized{}}, EvalOptions{Workers: 2})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, err)
		}
	}
}

// TestBatchCachedAgreesWithSerialUncached is the batch half of the
// cached-vs-uncached property: randomized nonlinear analyses evaluated
// through the cached batch path must agree with the uncached serial path to
// 1e-9.
func TestBatchCachedAgreesWithSerialUncached(t *testing.T) {
	src := stats.NewSource(99)
	for trial := 0; trial < 10; trial++ {
		n := 2 + trial%2
		av := make(vec.V, n)
		orig := make(vec.V, n)
		for i := 0; i < n; i++ {
			av[i] = src.Uniform(0.5, 2)
			orig[i] = src.Uniform(0.5, 1.5)
		}
		impact := func(vs []vec.V) float64 {
			s := 0.0
			for i, x := range vs[0] {
				s += av[i] * x * x
			}
			return s
		}
		bound := impact([]vec.V{orig}) * src.Uniform(1.3, 2)
		a, err := NewAnalysis([]Feature{{
			Name: "quad", Bounds: MaxOnly(bound), Impact: impact,
		}}, []Perturbation{{Name: "x", Orig: orig}})
		if err != nil {
			t.Fatal(err)
		}
		ws := []Weighting{Normalized{}, Custom{Alphas: vec.Of(src.Uniform(0.5, 2))}}
		want := make([]Robustness, len(ws))
		for i, w := range ws {
			if want[i], err = a.RobustnessWith(context.Background(), w, EvalOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		a.EnableImpactCache(0)
		got, errs := a.RobustnessBatchCtx(context.Background(), ws, EvalOptions{Workers: 4})
		for i := range ws {
			if errs[i] != nil {
				t.Fatalf("trial %d item %d: %v", trial, i, errs[i])
			}
			if d := math.Abs(got[i].Value - want[i].Value); d > 1e-9 {
				t.Fatalf("trial %d item %d: cached batch %.15g vs uncached serial %.15g differ by %g",
					trial, i, got[i].Value, want[i].Value, d)
			}
		}
	}
}

// TestBatchRaceHammer drives one cache-enabled Analysis through the batch
// path from several goroutines at once. Its value is under `go test -race`:
// the cache mutex, the per-feature sync.Once setups, and the per-side result
// slots must all be data-race-free.
func TestBatchRaceHammer(t *testing.T) {
	a := mixedAnalysis(t)
	a.EnableImpactCache(1 << 10)
	ws := []Weighting{
		Normalized{},
		Custom{Alphas: vec.Of(1, 2)},
		Custom{Alphas: vec.Of(2, 0.5)},
	}
	var wg sync.WaitGroup
	fail := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				out, errs := a.RobustnessBatchCtx(context.Background(), ws, EvalOptions{Workers: 3})
				for i, err := range errs {
					if err != nil {
						fail <- err
						return
					}
					if out[i].Value <= 0 {
						fail <- errors.New("non-positive robustness under race hammer")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if st := a.CacheStats(); st.Hits == 0 {
		t.Fatalf("hammer produced no cache hits: %+v", st)
	}
}

// TestBatchWorkersResolution pins the pool-sizing rules the batch entry
// points rely on: an empty unit list resolves to zero workers, negative and
// zero option values select GOMAXPROCS, and the pool never exceeds the unit
// count.
func TestBatchWorkersResolution(t *testing.T) {
	maxProcs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, n, want int
	}{
		{0, 0, 0},
		{8, 0, 0},
		{-3, 0, 0},
		{100, 3, 3},
		{2, 3, 2},
		{1, 1, 1},
	}
	for _, c := range cases {
		if got := batchWorkers(c.workers, c.n); got != c.want {
			t.Errorf("batchWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
	// GOMAXPROCS defaults stay within [1, min(GOMAXPROCS, n)].
	for _, w := range []int{0, -1, -100} {
		got := batchWorkers(w, 64)
		if got < 1 || got > maxProcs || got > 64 {
			t.Errorf("batchWorkers(%d, 64) = %d out of range [1, %d]", w, got, maxProcs)
		}
	}
}

// TestRunPoolEdgeCases is the regression fixture for the pool edge cases:
// zero units must return without touching a channel or calling exec, and a
// worker request beyond the unit count must not spawn goroutines that have
// no unit to run.
func TestRunPoolEdgeCases(t *testing.T) {
	// n = 0 with a large worker request: exec must never run, and no
	// goroutines may be spawned (the count is exact because runPool is
	// synchronous and the early return creates nothing).
	before := runtime.NumGoroutine()
	runPool(64, 0, func(int) { t.Error("exec called for empty pool") })
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("runPool(64, 0) grew goroutines: %d -> %d", before, after)
	}

	// workers > n: every unit still runs exactly once.
	var mu sync.Mutex
	seen := map[int]int{}
	runPool(16, 3, func(q int) {
		mu.Lock()
		seen[q]++
		mu.Unlock()
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 1 || seen[2] != 1 {
		t.Errorf("runPool(16, 3) coverage: %v", seen)
	}

	// workers ≤ 0 runs serially and completely.
	count := 0
	runPool(-2, 5, func(int) { count++ })
	if count != 5 {
		t.Errorf("runPool(-2, 5) ran %d units, want 5", count)
	}
}

// TestBatchEmptyAndDegenerateInputs drives the exported batch entry points
// through their n = 0 / workers > n / workers ≤ 0 edge cases: every
// combination must return empty (or fully populated) parallel slices and
// never panic or deadlock.
func TestBatchEmptyAndDegenerateInputs(t *testing.T) {
	a := mixedAnalysis(t)
	for _, workers := range []int{-4, 0, 1, 3, 100} {
		opt := EvalOptions{Workers: workers}

		out, errs := RobustnessBatch(context.Background(), nil, opt)
		if len(out) != 0 || len(errs) != 0 {
			t.Fatalf("workers=%d: nil items gave %d/%d results", workers, len(out), len(errs))
		}
		out, errs = RobustnessBatch(context.Background(), []BatchItem{}, opt)
		if len(out) != 0 || len(errs) != 0 {
			t.Fatalf("workers=%d: empty items gave %d/%d results", workers, len(out), len(errs))
		}

		out, errs = a.RobustnessBatchCtx(context.Background(), nil, opt)
		if len(out) != 0 || len(errs) != 0 {
			t.Fatalf("workers=%d: empty weightings gave %d/%d results", workers, len(out), len(errs))
		}

		radii, rerrs := a.CombinedRadiusBatch(Normalized{}, []int{}, opt)
		if len(radii) != 0 || len(rerrs) != 0 {
			t.Fatalf("workers=%d: empty features gave %d/%d results", workers, len(radii), len(rerrs))
		}

		// One real item across every worker setting must match the serial
		// reference bit-for-bit.
		ref, err := a.Robustness(Normalized{})
		if err != nil {
			t.Fatal(err)
		}
		out, errs = RobustnessBatch(context.Background(), []BatchItem{{A: a, W: Normalized{}}}, opt)
		if errs[0] != nil {
			t.Fatalf("workers=%d: batch error %v", workers, errs[0])
		}
		if out[0].Value != ref.Value || out[0].Critical != ref.Critical {
			t.Fatalf("workers=%d: batch %v vs serial %v", workers, out[0].Value, ref.Value)
		}
	}
}

// degradedPairAnalysis builds an analysis with two faulty numeric features
// (NaN beyond |x| = 1.5, boundary at 1.5 of the respective block) and one
// healthy linear feature, for exercising the Monte-Carlo degraded fallback
// across evaluation paths.
func degradedPairAnalysis(t *testing.T) *Analysis {
	t.Helper()
	nanBlock := func(j int) ImpactFunc {
		return func(vs []vec.V) float64 {
			x := vs[j][0]
			if x > 1.5 || x < -1.5 {
				return math.NaN()
			}
			return 2 * x
		}
	}
	a, err := NewAnalysis(
		[]Feature{
			{Name: "bad-x", Bounds: MaxOnly(3), Impact: nanBlock(0)},
			{Name: "bad-y", Bounds: MaxOnly(3), Impact: nanBlock(1)},
			{Name: "good", Bounds: MaxOnly(9), Linear: &LinearImpact{Coeffs: []vec.V{{2}, {3}}}},
		},
		[]Perturbation{
			{Name: "x", Orig: vec.Of(1)},
			{Name: "y", Orig: vec.Of(1)},
		})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDegradedDeterministicAcrossPaths is the regression fixture for the
// shared-stream degradation bug: the Monte-Carlo fallback must report
// bit-identical lower bounds through the serial, concurrent, and batch
// paths, for any worker count, because each degraded feature derives its
// own seed from (DegradeSeed, feature index) rather than consuming a
// stream whose position depends on scheduling.
func TestDegradedDeterministicAcrossPaths(t *testing.T) {
	opt := EvalOptions{DegradeOnNumeric: true, DegradeSamples: 256, DegradeSeed: 11}

	ref, err := degradedPairAnalysis(t).RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Degraded || !ref.PerFeature[0].Degraded || !ref.PerFeature[1].Degraded {
		t.Fatalf("reference run not degraded as expected: %+v", ref)
	}

	for _, workers := range []int{1, 2, 8} {
		o := opt
		o.Workers = workers
		got, err := degradedPairAnalysis(t).RobustnessWith(context.Background(), Normalized{}, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ref.PerFeature {
			if got.PerFeature[i].Value != ref.PerFeature[i].Value {
				t.Fatalf("workers=%d feature %d: %.17g != serial %.17g",
					workers, i, got.PerFeature[i].Value, ref.PerFeature[i].Value)
			}
		}

		items := []BatchItem{
			{A: degradedPairAnalysis(t), W: Normalized{}},
			{A: degradedPairAnalysis(t), W: Normalized{}},
		}
		outs, errs := RobustnessBatch(context.Background(), items, o)
		for k := range items {
			if errs[k] != nil {
				t.Fatalf("workers=%d item %d: %v", workers, k, errs[k])
			}
			for i := range ref.PerFeature {
				if outs[k].PerFeature[i].Value != ref.PerFeature[i].Value {
					t.Fatalf("workers=%d batch item %d feature %d: %.17g != serial %.17g",
						workers, k, i, outs[k].PerFeature[i].Value, ref.PerFeature[i].Value)
				}
			}
		}
	}
}

// TestDegradedStreamsIndependentPerFeature is the second half of the same
// regression: two geometrically identical faulty features must not share
// one probe stream. Before the per-feature seed derivation, both consumed
// the same stream from the same position and reported bit-identical
// estimates — masking any bug that would swap or alias feature indices in
// the fallback.
func TestDegradedStreamsIndependentPerFeature(t *testing.T) {
	rho, err := degradedPairAnalysis(t).RobustnessWith(context.Background(), Normalized{},
		EvalOptions{DegradeOnNumeric: true, DegradeSamples: 256, DegradeSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := rho.PerFeature[0].Value, rho.PerFeature[1].Value
	if b0 == b1 {
		t.Fatalf("identical faulty features share one probe stream: both report %.17g", b0)
	}
	// Both streams must still land near the true boundary distance 0.5.
	for i, b := range []float64{b0, b1} {
		if b <= 0.3 || b > 0.55 {
			t.Fatalf("feature %d degraded bound %.17g implausible (true radius 0.5)", i, b)
		}
	}
}
