package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// This file adds directional diagnostics to the radius machinery. Figure 1
// of the paper shows "some possible directions of increase of the
// perturbation parameter" — the radius is the minimum over all of them, but
// operators frequently know the likely drift direction (e.g. "sensor loads
// only ever grow") and want the slack along it.

// ErrBadDirection reports an unusable direction vector.
var ErrBadDirection = errors.New("core: invalid direction")

// DirectionalRadius computes how far the single parameter π_j can move from
// π_j^orig along the given direction before feature φ_i leaves its bounds:
//
//	sup{ t ≥ 0 : f(π^orig + t·d̂) within bounds },  d̂ = dir/‖dir‖₂.
//
// It returns +Inf when the feature never leaves its bounds along the ray
// (within a large search span). By definition the result is ≥ the
// (direction-free) robustness radius r_μ(φ_i, π_j).
func (a *Analysis) DirectionalRadius(i, j int, dir vec.V) (float64, error) {
	if i < 0 || i >= len(a.Features) {
		return 0, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
	}
	if j < 0 || j >= len(a.Params) {
		return 0, fmt.Errorf("%w: parameter %d of %d", ErrBadIndex, j, len(a.Params))
	}
	if len(dir) != a.Params[j].Dim() {
		return 0, fmt.Errorf("%w: dim %d, want %d", ErrBadDirection, len(dir), a.Params[j].Dim())
	}
	n := dir.Norm2()
	if n == 0 || !dir.AllFinite() {
		return 0, fmt.Errorf("%w: zero or non-finite direction", ErrBadDirection)
	}
	unit := dir.Scale(1 / n)

	f := a.Features[i]
	impact := f.impact()
	orig := a.OrigValues()
	value := func(t float64) float64 {
		vals := make([]vec.V, len(orig))
		copy(vals, orig)
		vals[j] = a.Params[j].Orig.AddScaled(t, unit)
		return impact(vals)
	}
	// The feature satisfies its bounds at t = 0 (Validate enforces this).
	// March outward to bracket the first bound crossing of either side.
	inBounds := func(t float64) bool { return f.Bounds.Contains(value(t)) }
	span := 1e6 * (1 + a.Params[j].Orig.NormInf())
	g := func(t float64) float64 {
		if inBounds(t) {
			return -1
		}
		return 1
	}
	lo, hi, err := optimize.BracketRoot(g, 0, 1e-3*(1+a.Params[j].Orig.NormInf()), span)
	if err != nil {
		return math.Inf(1), nil // never leaves bounds along this ray
	}
	// Refine the step boundary by bisection on the indicator.
	for iter := 0; iter < 200 && hi-lo > 1e-12*(1+hi); iter++ {
		mid := 0.5 * (lo + hi)
		if inBounds(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// CriticalDirection returns, for feature i and parameter j, the unit
// direction from π_j^orig to the nearest boundary point π_j*(φ_i) — the
// "direction of the smallest increase" highlighted in Figure 1. It returns
// an error when the radius is zero or unreachable.
func (a *Analysis) CriticalDirection(i, j int) (vec.V, error) {
	r, err := a.RadiusSingle(i, j)
	if err != nil {
		return nil, err
	}
	if r.Side == SideNone || r.Point == nil {
		return nil, fmt.Errorf("%w: no reachable boundary for feature %d / param %d", ErrBadDirection, i, j)
	}
	d := r.Point.Sub(a.Params[j].Orig)
	n := d.Norm2()
	if n == 0 {
		return nil, fmt.Errorf("%w: already on the boundary", ErrBadDirection)
	}
	return d.Scale(1 / n), nil
}
