package core

import (
	"fmt"
	"math"

	"fepia/internal/vec"
)

// This file carries the paper's closed-form results as standalone formulas.
// The experiments compare the analysis engine's output against these
// expressions; they are the "expected" column of EXPERIMENTS.md.

// SingleParamRadiusLinear is the paper's Step-1 closed form (Section 3.1):
// for a linear feature φ = Σ_m k_m·π_m over n one-element parameters with
// original values π^orig and requirement β^max = β·φ^orig (β > 1), the
// single-parameter robustness radius with respect to π_j is
//
//	r_μ(φ, π_j) = (β − 1)/k_j · Σ_m k_m·π_m^orig.
//
// k_j must be nonzero.
func SingleParamRadiusLinear(k, orig vec.V, j int, beta float64) (float64, error) {
	if len(k) != len(orig) {
		return 0, fmt.Errorf("core: SingleParamRadiusLinear: %w", vec.ErrDimMismatch)
	}
	if j < 0 || j >= len(k) {
		return 0, fmt.Errorf("%w: j=%d of %d", ErrBadIndex, j, len(k))
	}
	if k[j] == 0 {
		return 0, fmt.Errorf("%w: k[%d] = 0", ErrDegenerateWeighting, j)
	}
	return (beta - 1) / k[j] * k.Dot(orig), nil
}

// SensitivityRadiusLinear is the paper's Section 3.1 degeneracy result: with
// sensitivity-based weighting α_j = 1/r_μ(φ, π_j), the combined-space radius
// for the same linear setting is
//
//	r_μ(φ, P) = 1/√n
//
// for *every* choice of k, β, and original values — the flaw that motivates
// the paper. n is the number of (one-element) perturbation parameters.
func SensitivityRadiusLinear(n int) float64 {
	return 1 / math.Sqrt(float64(n))
}

// NormalizedRadiusLinear is the paper's Section 3.2 closed form: with the
// proposed normalization P_j = π_j/π_j^orig, the combined-space radius for
// the linear setting is
//
//	r_μ(φ, P) = (β − 1) · |Σ_j k_j·π_j^orig| / √(Σ_m (k_m·π_m^orig)²),
//
// which depends — as a usable metric must — on the coefficients, the
// requirement, and the original values.
func NormalizedRadiusLinear(k, orig vec.V, beta float64) (float64, error) {
	if len(k) != len(orig) {
		return 0, fmt.Errorf("core: NormalizedRadiusLinear: %w", vec.ErrDimMismatch)
	}
	prod := k.Mul(orig)
	den := prod.Norm2()
	if den == 0 {
		return 0, fmt.Errorf("%w: all k_m·π_m^orig are zero", ErrDegenerateWeighting)
	}
	return (beta - 1) * math.Abs(prod.Sum()) / den, nil
}

// LinearOneElemAnalysis builds the exact system Section 3.1 analyzes: a
// single feature φ = Σ k_j·π_j over n one-element perturbation parameters
// (each of a different "kind"), with bound β^max = β·φ^orig. It is the
// shared fixture of experiments E2, E3, E4, and E8.
func LinearOneElemAnalysis(k, orig vec.V, beta float64) (*Analysis, error) {
	if len(k) != len(orig) {
		return nil, fmt.Errorf("core: LinearOneElemAnalysis: %w", vec.ErrDimMismatch)
	}
	if beta <= 1 {
		return nil, fmt.Errorf("core: LinearOneElemAnalysis: beta = %g, want > 1", beta)
	}
	n := len(k)
	params := make([]Perturbation, n)
	coeffs := make([]vec.V, n)
	for j := 0; j < n; j++ {
		params[j] = Perturbation{
			Name: fmt.Sprintf("pi_%d", j+1),
			Unit: fmt.Sprintf("kind-%d", j+1),
			Orig: vec.Of(orig[j]),
		}
		coeffs[j] = vec.Of(k[j])
	}
	lin := &LinearImpact{Coeffs: coeffs}
	phiOrig := lin.Eval(paramsOrig(params))
	feature := Feature{
		Name:   "phi",
		Bounds: MaxOnly(beta * phiOrig),
		Linear: lin,
	}
	return NewAnalysis([]Feature{feature}, params)
}

func paramsOrig(ps []Perturbation) []vec.V {
	out := make([]vec.V, len(ps))
	for i, p := range ps {
		out[i] = p.Orig
	}
	return out
}
