package core

import (
	"fmt"
	"math"

	"fepia/internal/vec"
)

// Certifier is the operating-point recipe compiled for repeated use: all
// combined radii, weighting scales, and P^orig vectors are computed once at
// construction, so each Check is a handful of vector operations. This is the
// form an online resource manager runs in its admission loop — the paper's
// recipe ((a) convert to P, (b) measure distance, (c) compare with the
// radius) evaluated thousands of times per second against a fixed
// allocation.
type Certifier struct {
	analysis *Analysis
	wname    string
	dims     []int
	// Per feature with a finite radius:
	radii  []float64
	scales []vec.V
	porigs []vec.V
	feats  []int // feature indices retained
	// rho is the minimum retained radius (+Inf when none).
	rho float64
}

// NewCertifier precomputes the recipe for the analysis under w. Features
// whose combined radius is infinite (unviolable) are dropped from the fast
// path. Construction cost equals one Robustness call; Check cost is O(total
// dimension) per retained feature.
func (a *Analysis) NewCertifier(w Weighting) (*Certifier, error) {
	c := &Certifier{
		analysis: a,
		wname:    w.Name(),
		dims:     a.Dims(),
		rho:      math.Inf(1),
	}
	for i := range a.Features {
		r, err := a.CombinedRadius(i, w)
		if err != nil {
			return nil, err
		}
		if math.IsInf(r.Value, 1) {
			continue
		}
		scales, err := w.Scales(a, i)
		if err != nil {
			return nil, err
		}
		porig, err := POrig(a, w, i)
		if err != nil {
			return nil, err
		}
		c.radii = append(c.radii, r.Value)
		c.scales = append(c.scales, scales)
		c.porigs = append(c.porigs, porig)
		c.feats = append(c.feats, i)
		if r.Value < c.rho {
			c.rho = r.Value
		}
	}
	return c, nil
}

// Rho returns the combined robustness ρ_μ(Φ, P) the certifier was built
// with.
func (c *Certifier) Rho() float64 { return c.rho }

// Weighting names the scheme the certifier compiled.
func (c *Certifier) Weighting() string { return c.wname }

// Check applies the recipe to one operating point: true means every
// feature's P-space distance is strictly inside its radius, so no constraint
// can be violated. Like Analysis.Tolerable, false means "not guaranteed",
// not "violating".
func (c *Certifier) Check(values []vec.V) (bool, error) {
	if len(values) != len(c.dims) {
		return false, fmt.Errorf("core: Certifier.Check: %d parameter values, want %d", len(values), len(c.dims))
	}
	for j, v := range values {
		if len(v) != c.dims[j] {
			return false, fmt.Errorf("core: Certifier.Check: parameter %d has dim %d, want %d: %w",
				j, len(v), c.dims[j], vec.ErrDimMismatch)
		}
	}
	flat := concat(values)
	for k := range c.feats {
		p := flat.Mul(c.scales[k])
		if p.Dist2(c.porigs[k]) >= c.radii[k] {
			return false, nil
		}
	}
	return true, nil
}

// CriticalMargin returns, for one operating point, the smallest slack
// radius − ‖P − P^orig‖₂ over all retained features and the index of the
// feature attaining it (−1 when no feature is retained). Negative margins
// mean the point is outside that feature's certified ball.
func (c *Certifier) CriticalMargin(values []vec.V) (float64, int, error) {
	if len(values) != len(c.dims) {
		return 0, -1, fmt.Errorf("core: CriticalMargin: %d parameter values, want %d", len(values), len(c.dims))
	}
	for j, v := range values {
		if len(v) != c.dims[j] {
			return 0, -1, fmt.Errorf("core: CriticalMargin: parameter %d has dim %d, want %d: %w",
				j, len(v), c.dims[j], vec.ErrDimMismatch)
		}
	}
	flat := concat(values)
	margin := math.Inf(1)
	feat := -1
	for k := range c.feats {
		p := flat.Mul(c.scales[k])
		m := c.radii[k] - p.Dist2(c.porigs[k])
		if m < margin {
			margin, feat = m, c.feats[k]
		}
	}
	return margin, feat, nil
}
