package core

import (
	"math"
	"testing"

	"fepia/internal/vec"
)

// twoParamLinear builds a small mixed-kind analysis used across tests:
// φ1 = 2·e1 + 3·e2 + 5·m1 (exec times in seconds, message length in bytes).
func twoParamLinear(t *testing.T) *Analysis {
	t.Helper()
	params := []Perturbation{
		{Name: "exec-times", Unit: "s", Orig: vec.Of(1, 2)},
		{Name: "msg-len", Unit: "bytes", Orig: vec.Of(4)},
	}
	lin := &LinearImpact{Coeffs: []vec.V{vec.Of(2, 3), vec.Of(5)}}
	phiOrig := lin.Eval([]vec.V{vec.Of(1, 2), vec.Of(4)}) // 2+6+20 = 28
	if phiOrig != 28 {
		t.Fatalf("fixture: phiOrig = %v", phiOrig)
	}
	a, err := NewAnalysis([]Feature{{
		Name:   "phi1",
		Bounds: MaxOnly(1.5 * phiOrig), // 42
		Linear: lin,
	}}, params)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestValidateErrors(t *testing.T) {
	lin := &LinearImpact{Coeffs: []vec.V{vec.Of(1)}}
	okFeat := Feature{Name: "f", Bounds: MaxOnly(10), Linear: lin}
	okParam := Perturbation{Name: "p", Orig: vec.Of(1)}

	cases := []struct {
		name     string
		features []Feature
		params   []Perturbation
	}{
		{"no features", nil, []Perturbation{okParam}},
		{"no params", []Feature{okFeat}, nil},
		{"empty param", []Feature{okFeat}, []Perturbation{{Name: "p"}}},
		{"non-finite orig", []Feature{okFeat}, []Perturbation{{Name: "p", Orig: vec.Of(math.NaN())}}},
		{"no impact", []Feature{{Name: "f", Bounds: MaxOnly(10)}}, []Perturbation{okParam}},
		{"inverted bounds", []Feature{{Name: "f", Bounds: Band(5, 1), Linear: lin}}, []Perturbation{okParam}},
		{"linear block count", []Feature{{Name: "f", Bounds: MaxOnly(10),
			Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(1)}}}}, []Perturbation{okParam}},
		{"linear block dim", []Feature{{Name: "f", Bounds: MaxOnly(10),
			Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1, 2)}}}}, []Perturbation{okParam}},
		{"orig violates bounds", []Feature{{Name: "f", Bounds: MaxOnly(0.5), Linear: lin}}, []Perturbation{okParam}},
		{"impact disagrees with linear", []Feature{{Name: "f", Bounds: MaxOnly(10), Linear: lin,
			Impact: func(vs []vec.V) float64 { return 99 }}}, []Perturbation{okParam}},
	}
	for _, c := range cases {
		if _, err := NewAnalysis(c.features, c.params); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateAcceptsConsistent(t *testing.T) {
	a := twoParamLinear(t)
	if a.TotalDim() != 3 {
		t.Errorf("TotalDim = %d", a.TotalDim())
	}
	dims := a.Dims()
	if dims[0] != 2 || dims[1] != 1 {
		t.Errorf("Dims = %v", dims)
	}
}

func TestBoundsHelpers(t *testing.T) {
	b := MaxOnly(5)
	if !b.Contains(4.9) || b.Contains(5.1) || !b.Contains(-1e300) {
		t.Error("MaxOnly semantics wrong")
	}
	b = MinOnly(2)
	if b.Contains(1.9) || !b.Contains(1e300) {
		t.Error("MinOnly semantics wrong")
	}
	b = Band(1, 3)
	if b.Contains(0.5) || !b.Contains(2) || b.Contains(3.5) {
		t.Error("Band semantics wrong")
	}
}

func TestFeatureValueAndViolates(t *testing.T) {
	a := twoParamLinear(t)
	orig := a.OrigValues()
	if got := a.FeatureValue(0, orig); got != 28 {
		t.Errorf("FeatureValue at orig = %v, want 28", got)
	}
	if a.Violates(orig) {
		t.Error("original point must not violate")
	}
	// Push exec times far up: 2·10 + 3·20 + 5·4 = 100 > 42.
	if !a.Violates([]vec.V{vec.Of(10, 20), vec.Of(4)}) {
		t.Error("clearly violating point not flagged")
	}
}

func TestOrigValuesIsCopy(t *testing.T) {
	a := twoParamLinear(t)
	vs := a.OrigValues()
	vs[0][0] = 999
	if a.Params[0].Orig[0] == 999 {
		t.Error("OrigValues must deep-copy")
	}
}

func TestRadiusSingleLinearMatchesHandComputation(t *testing.T) {
	a := twoParamLinear(t)
	// Param 0 (exec-times): boundary 2e1 + 3e2 = 42 − 20 = 22 from (1, 2);
	// distance |2 + 6 − 22|/√13 = 14/√13.
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 14 / math.Sqrt(13)
	if math.Abs(r.Value-want) > 1e-12 {
		t.Errorf("r(phi, exec) = %v, want %v", r.Value, want)
	}
	if !r.Analytic || r.Side != SideMax {
		t.Errorf("radius metadata wrong: %+v", r)
	}
	// Param 1 (msg-len): boundary 5m = 42 − 8 = 34 from 4: |20 − 34|/5 = 2.8.
	r, err = a.RadiusSingle(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-2.8) > 1e-12 {
		t.Errorf("r(phi, msg) = %v, want 2.8", r.Value)
	}
}

func TestRadiusSingleNumericMatchesLinear(t *testing.T) {
	// Same system expressed only as a general Impact: numeric tier must
	// agree with the analytic tier.
	params := []Perturbation{
		{Name: "exec-times", Unit: "s", Orig: vec.Of(1, 2)},
		{Name: "msg-len", Unit: "bytes", Orig: vec.Of(4)},
	}
	a, err := NewAnalysis([]Feature{{
		Name:   "phi1",
		Bounds: MaxOnly(42),
		Impact: func(vs []vec.V) float64 { return 2*vs[0][0] + 3*vs[0][1] + 5*vs[1][0] },
	}}, params)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 14 / math.Sqrt(13)
	if math.Abs(r.Value-want) > 1e-5 {
		t.Errorf("numeric r = %v, want %v", r.Value, want)
	}
	if r.Analytic {
		t.Error("numeric tier must not be marked analytic")
	}
}

func TestRadiusSingleBothBounds(t *testing.T) {
	// Feature with a band: φ = x with 0.5 ≤ φ ≤ 4, orig x = 1. The min
	// boundary (distance 0.5) is nearer than the max (distance 3).
	a, err := NewAnalysis([]Feature{{
		Name:   "phi",
		Bounds: Band(0.5, 4),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1)}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-0.5) > 1e-12 || r.Side != SideMin {
		t.Errorf("band radius = %v side %v, want 0.5 on beta-min", r.Value, r.Side)
	}
}

func TestRadiusSingleUnreachable(t *testing.T) {
	// Feature ignores the parameter entirely: infinitely robust.
	a, err := NewAnalysis([]Feature{{
		Name:   "phi",
		Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(0)}},
	}}, []Perturbation{
		{Name: "used", Orig: vec.Of(1)},
		{Name: "ignored", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Value, 1) || r.Side != SideNone {
		t.Errorf("unreachable radius = %+v, want +Inf/none", r)
	}
}

func TestRadiusSingleBadIndex(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := a.RadiusSingle(5, 0); err == nil {
		t.Error("bad feature index must error")
	}
	if _, err := a.RadiusSingle(0, 5); err == nil {
		t.Error("bad param index must error")
	}
	if _, err := a.RobustnessSingle(-1); err == nil {
		t.Error("bad param index must error")
	}
}

func TestRobustnessSingleTakesMinOverFeatures(t *testing.T) {
	params := []Perturbation{{Name: "x", Orig: vec.Of(1)}}
	mk := func(maxVal float64) Feature {
		return Feature{
			Name:   "phi",
			Bounds: MaxOnly(maxVal),
			Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
		}
	}
	a, err := NewAnalysis([]Feature{mk(10), mk(3), mk(7)}, params)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RobustnessSingle(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-2) > 1e-12 || r.Feature != 1 {
		t.Errorf("rho = %v via feature %d, want 2 via feature 1", r.Value, r.Feature)
	}
}
