package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"fepia/internal/vec"
)

// This file is the batch evaluation engine: many robustness analyses (for
// example the candidate allocations of an optimization sweep, or one
// allocation under many weightings) evaluated over a single shared worker
// pool. Instead of parallelizing per feature like RobustnessWith, the batch
// scheduler splits every numeric combined radius into independent
// (item, feature, boundary-side) work units, so workers steal across both
// features and the two level-set searches of a feature. The two side units
// of a feature share their weighting scales and P^orig through a sync.Once,
// and all units of one Analysis share its impact cache when enabled.

// BatchItem pairs one candidate analysis (e.g. a resource allocation under
// study) with the weighting to evaluate it under.
type BatchItem struct {
	A *Analysis
	W Weighting
}

// Work-unit kinds: analytic features run whole (the closed forms are too
// cheap to split); numeric features run one unit per finite boundary side.
const (
	unitWhole = -1
	unitMax   = 0 // the β^max level-set search
	unitMin   = 1 // the β^min level-set search
)

type batchUnit struct {
	item, feat, side int
}

// featureSlot holds the shared setup and per-side partial results of one
// numeric feature of one item. Whichever side unit runs first computes the
// weighting scales and P^orig for both (setup); each side then writes only
// its own r/err element, so the two units never contend.
type featureSlot struct {
	setup    sync.Once
	d, pOrig vec.V
	setupErr error
	has      [2]bool
	r        [2]Radius
	err      [2]error
}

// RobustnessBatch evaluates every (analysis, weighting) candidate of items
// over one shared worker pool and returns per-item results and errors (both
// slices are parallel to items; exactly one of out[k], errs[k] is set).
//
// opt.Workers sizes the pool; values ≤ 0 select runtime.GOMAXPROCS(0) —
// unlike RobustnessWith, whose zero value is serial, a batch exists to keep
// a pool busy. Failure semantics per item match RobustnessWith exactly: the
// first non-tolerable feature error cancels that item's remaining units
// (other items are unaffected), the reported error is the lowest-index
// genuine failure, and with opt.DegradeOnNumeric numeric failures degrade
// to Monte-Carlo lower bounds instead of failing the item. Cancelling ctx
// aborts the whole batch.
func RobustnessBatch(ctx context.Context, items []BatchItem, opt EvalOptions) ([]Robustness, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.ForceDegraded {
		return batchForcedDegraded(ctx, items, opt)
	}
	tolerable := func(err error) bool {
		return err != nil && opt.DegradeOnNumeric && errors.Is(err, ErrNumeric)
	}

	out := make([]Robustness, len(items))
	errsOut := make([]error, len(items))
	radii := make([][]Radius, len(items))
	ferrs := make([][]error, len(items))
	slots := make([][]*featureSlot, len(items))
	ictxs := make([]context.Context, len(items))
	cancels := make([]context.CancelFunc, len(items))

	var units []batchUnit
	for k, it := range items {
		switch {
		case it.A == nil:
			errsOut[k] = fmt.Errorf("core: batch item %d: nil Analysis", k)
			continue
		case it.W == nil:
			errsOut[k] = fmt.Errorf("core: batch item %d: nil Weighting", k)
			continue
		}
		n := len(it.A.Features)
		radii[k] = make([]Radius, n)
		ferrs[k] = make([]error, n)
		slots[k] = make([]*featureSlot, n)
		ictxs[k], cancels[k] = context.WithCancel(ctx)
		for i, f := range it.A.Features {
			if f.Linear != nil || f.Quad != nil {
				units = append(units, batchUnit{k, i, unitWhole})
				continue
			}
			s := &featureSlot{has: [2]bool{
				!math.IsInf(f.Bounds.Max, 0),
				!math.IsInf(f.Bounds.Min, 0),
			}}
			if !s.has[unitMax] && !s.has[unitMin] {
				// No finite bound at all: infinitely robust, no search needed.
				radii[k][i] = Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1}
				continue
			}
			slots[k][i] = s
			if s.has[unitMax] {
				units = append(units, batchUnit{k, i, unitMax})
			}
			if s.has[unitMin] {
				units = append(units, batchUnit{k, i, unitMin})
			}
		}
	}
	defer func() {
		for _, cancel := range cancels {
			if cancel != nil {
				cancel()
			}
		}
	}()

	exec := func(u batchUnit) {
		it := items[u.item]
		ictx := ictxs[u.item]
		if u.side == unitWhole {
			r, err := it.A.CombinedRadiusWith(ictx, u.feat, it.W, opt)
			radii[u.item][u.feat], ferrs[u.item][u.feat] = r, err
			if err != nil && !tolerable(err) {
				cancels[u.item]() // early stop: this item already failed
			}
			return
		}
		s := slots[u.item][u.feat]
		if err := ctxErr(ictx); err != nil {
			s.err[u.side] = err
			return
		}
		s.setup.Do(func() {
			s.d, s.setupErr = it.A.scalesFor(it.W, u.feat)
			if s.setupErr == nil {
				s.pOrig, s.setupErr = POrig(it.A, it.W, u.feat)
			}
		})
		if s.setupErr != nil {
			s.err[u.side] = s.setupErr
			cancels[u.item]()
			return
		}
		f := it.A.Features[u.feat]
		beta, bside := f.Bounds.Max, SideMax
		if u.side == unitMin {
			beta, bside = f.Bounds.Min, SideMin
		}
		r, err := it.A.combinedNumericSide(ictx, u.feat, s.d, s.pOrig, beta, bside, opt)
		s.r[u.side], s.err[u.side] = r, err
		if err != nil && !tolerable(err) {
			cancels[u.item]()
		}
	}
	runPool(batchWorkers(opt.Workers, len(units)), len(units), func(q int) { exec(units[q]) })

	for k, it := range items {
		if errsOut[k] != nil {
			continue // rejected during validation
		}
		if err := ctxErr(ctx); err != nil {
			errsOut[k] = err // the caller's own cancellation dominates
			continue
		}
		// Fold the per-side partial results back into per-feature radii,
		// preferring the β^max side's error like the serial path (which
		// searches β^max first and stops on its failure).
		for i, s := range slots[k] {
			if s == nil {
				continue
			}
			if s.err[unitMax] != nil {
				ferrs[k][i] = s.err[unitMax]
			} else if s.err[unitMin] != nil {
				ferrs[k][i] = s.err[unitMin]
			} else {
				best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1}
				for sd := range s.r {
					if s.has[sd] && s.r[sd].Value < best.Value {
						best = s.r[sd]
					}
				}
				radii[k][i] = best
			}
		}
		// Deterministic error reporting, as in radiiConcurrent: the
		// lowest-index genuine failure wins; cancellations induced by the
		// item's own early stop are bycatch.
		for i, err := range ferrs[k] {
			if err == nil || tolerable(err) || errors.Is(err, context.Canceled) {
				continue
			}
			errsOut[k] = fmt.Errorf("core: feature %d: %w", i, err)
			break
		}
		if errsOut[k] == nil {
			for i, err := range ferrs[k] {
				if err != nil && !tolerable(err) {
					errsOut[k] = fmt.Errorf("core: feature %d: %w", i, err)
					break
				}
			}
		}
		if errsOut[k] != nil {
			continue
		}
		out[k], errsOut[k] = it.A.foldRobustness(ctx, it.W, opt, radii[k], ferrs[k])
	}
	return out, errsOut
}

// RobustnessBatchCtx evaluates this analysis under every weighting of ws on
// the shared batch pool. It is equivalent to calling RobustnessWith once per
// weighting, but the level-set searches of all weightings interleave on one
// pool and share the impact cache (when enabled), so repeated evaluations at
// nearby operating points are answered from memory.
func (a *Analysis) RobustnessBatchCtx(ctx context.Context, ws []Weighting, opt EvalOptions) ([]Robustness, []error) {
	items := make([]BatchItem, len(ws))
	for i, w := range ws {
		items[i] = BatchItem{A: a, W: w}
	}
	return RobustnessBatch(ctx, items, opt)
}

// RobustnessBatch is RobustnessBatchCtx without cancellation.
func (a *Analysis) RobustnessBatch(ws []Weighting, opt EvalOptions) ([]Robustness, []error) {
	return a.RobustnessBatchCtx(context.Background(), ws, opt)
}

// CombinedRadiusBatchCtx computes the combined radius of each listed feature
// under w on the shared batch pool, splitting each numeric feature into its
// two boundary-side searches. A nil features slice means all features. The
// returned slices are parallel to features; unlike RobustnessBatch there is
// no early stop — every feature reports its own radius or error, which is
// what an experiment sweep wants when it tabulates per-feature results.
func (a *Analysis) CombinedRadiusBatchCtx(ctx context.Context, w Weighting, features []int, opt EvalOptions) ([]Radius, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if features == nil {
		features = make([]int, len(a.Features))
		for i := range features {
			features[i] = i
		}
	}
	radii := make([]Radius, len(features))
	errs := make([]error, len(features))
	slots := make([]*featureSlot, len(features))

	var units []batchUnit
	for q, i := range features {
		if i < 0 || i >= len(a.Features) {
			errs[q] = fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
			continue
		}
		f := a.Features[i]
		if f.Linear != nil || f.Quad != nil {
			units = append(units, batchUnit{q, i, unitWhole})
			continue
		}
		s := &featureSlot{has: [2]bool{
			!math.IsInf(f.Bounds.Max, 0),
			!math.IsInf(f.Bounds.Min, 0),
		}}
		if !s.has[unitMax] && !s.has[unitMin] {
			radii[q] = Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1}
			continue
		}
		slots[q] = s
		if s.has[unitMax] {
			units = append(units, batchUnit{q, i, unitMax})
		}
		if s.has[unitMin] {
			units = append(units, batchUnit{q, i, unitMin})
		}
	}

	exec := func(u batchUnit) {
		if u.side == unitWhole {
			radii[u.item], errs[u.item] = a.CombinedRadiusWith(ctx, u.feat, w, opt)
			return
		}
		s := slots[u.item]
		if err := ctxErr(ctx); err != nil {
			s.err[u.side] = err
			return
		}
		s.setup.Do(func() {
			s.d, s.setupErr = a.scalesFor(w, u.feat)
			if s.setupErr == nil {
				s.pOrig, s.setupErr = POrig(a, w, u.feat)
			}
		})
		if s.setupErr != nil {
			s.err[u.side] = s.setupErr
			return
		}
		f := a.Features[u.feat]
		beta, bside := f.Bounds.Max, SideMax
		if u.side == unitMin {
			beta, bside = f.Bounds.Min, SideMin
		}
		s.r[u.side], s.err[u.side] = a.combinedNumericSide(ctx, u.feat, s.d, s.pOrig, beta, bside, opt)
	}
	runPool(batchWorkers(opt.Workers, len(units)), len(units), func(q int) { exec(units[q]) })

	for q, s := range slots {
		if s == nil {
			continue
		}
		if s.err[unitMax] != nil {
			errs[q] = s.err[unitMax]
		} else if s.err[unitMin] != nil {
			errs[q] = s.err[unitMin]
		} else {
			best := Radius{Value: math.Inf(1), Side: SideNone, Feature: features[q], Param: -1}
			for sd := range s.r {
				if s.has[sd] && s.r[sd].Value < best.Value {
					best = s.r[sd]
				}
			}
			radii[q] = best
		}
	}
	return radii, errs
}

// CombinedRadiusBatch is CombinedRadiusBatchCtx without cancellation.
func (a *Analysis) CombinedRadiusBatch(w Weighting, features []int, opt EvalOptions) ([]Radius, []error) {
	return a.CombinedRadiusBatchCtx(context.Background(), w, features, opt)
}

// batchForcedDegraded is the ForceDegraded batch path: no boundary-search
// units exist, so the unit of scheduling is the whole item — each item's
// Monte-Carlo lower bounds run on one pool slot. Per-item results are
// bit-identical to the same item evaluated through RobustnessWith with the
// same options (the fallback estimate depends only on seed and feature
// index, never on scheduling).
func batchForcedDegraded(ctx context.Context, items []BatchItem, opt EvalOptions) ([]Robustness, []error) {
	out := make([]Robustness, len(items))
	errsOut := make([]error, len(items))
	itemOpt := opt
	itemOpt.Workers = 0 // parallelism is across items here, not features
	runPool(batchWorkers(opt.Workers, len(items)), len(items), func(k int) {
		switch {
		case items[k].A == nil:
			errsOut[k] = fmt.Errorf("core: batch item %d: nil Analysis", k)
		case items[k].W == nil:
			errsOut[k] = fmt.Errorf("core: batch item %d: nil Weighting", k)
		default:
			out[k], errsOut[k] = items[k].A.RobustnessWith(ctx, items[k].W, itemOpt)
		}
	})
	return out, errsOut
}

// batchWorkers resolves the pool size for n units: ≤ 0 (the EvalOptions
// zero value, or any negative setting) means GOMAXPROCS, and there is never
// a reason to run more workers than units. An empty batch (n ≤ 0) resolves
// to zero workers, which runPool treats as "nothing to do".
func batchWorkers(workers, n int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// runPool executes exec(0) … exec(n−1) on `workers` goroutines pulling from
// a shared channel (the work-stealing happens implicitly: whichever worker
// is free takes the next unit). workers ≤ 1 runs serially on the caller's
// goroutine — no pool overhead for tiny batches or single-core machines.
//
// The pool is defensive about its own sizing even though batchWorkers
// already clamps: n ≤ 0 returns immediately without touching a channel, and
// workers is re-clamped to n so a direct caller can never spawn goroutines
// that have no unit to run (an idle worker would be harmless but shows up
// in goroutine profiles and leak detectors as noise).
func runPool(workers, n int, exec func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for q := 0; q < n; q++ {
			exec(q)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range next {
				exec(q)
			}
		}()
	}
	for q := 0; q < n; q++ {
		next <- q
	}
	close(next)
	wg.Wait()
}
