package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// This file is the hardened evaluation engine behind Robustness,
// RobustnessCtx, RobustnessConcurrent(Ctx) and RobustnessWith: one code
// path that computes all per-feature combined radii serially or on a worker
// pool, with cooperative cancellation, early termination on failure,
// deterministic error reporting, and optional graceful degradation of
// numeric failures to a Monte-Carlo lower-bound estimate.

// EvalOptions tune the hardened robustness evaluation (RobustnessWith).
// The zero value reproduces the plain serial exact computation.
type EvalOptions struct {
	// Workers sets the size of the per-feature worker pool; values ≤ 1
	// select the serial path. Use RobustnessConcurrentCtx for the
	// GOMAXPROCS default.
	Workers int
	// DegradeOnNumeric enables graceful degradation: a feature whose radius
	// fails with ErrNumeric (NaN/Inf from its impact function or from the
	// root-finding) falls back to a Monte-Carlo lower-bound estimate
	// instead of failing the whole analysis. Degraded radii are flagged
	// Radius.Degraded and the result Robustness.Degraded; they are
	// empirical estimates, not certified radii. Panics (ErrImpactPanic)
	// still fail the analysis with their typed error.
	DegradeOnNumeric bool
	// DegradeSamples is the number of random probes per bisection round of
	// the fallback estimator (default 256).
	DegradeSamples int
	// DegradeSeed drives the fallback's deterministic sample streams. Each
	// degraded feature derives its own independent stream from this base
	// seed and its feature index (see deriveSeed), so the reported lower
	// bound of a feature is identical across the serial, concurrent, and
	// batch evaluation paths for any worker count or scheduling order.
	DegradeSeed int64
	// MaxEvals bounds the impact evaluations of each numeric boundary-side
	// search; an exhausted budget fails that search with
	// optimize.ErrEvalBudget. The budget error is not ErrNumeric, so it is
	// never degraded away by DegradeOnNumeric — use MaxEvals to bound tail
	// latency deliberately, not as a degradation trigger. 0 means
	// unlimited. k-probe searches may overshoot by at most one probe block.
	MaxEvals int
	// KProbe enables the vectorized k-probe path for features that declare
	// ImpactK: the level-set search hands the impact function blocks of up
	// to KProbe probes per call (scan windows, gradient stencils) instead
	// of one point at a time. Results are bit-identical to the scalar path;
	// only the call count changes. 0 disables; features without ImpactK
	// always use the scalar path. 8 is a good default width (see
	// docs/performance.md §tuning).
	KProbe int
	// KProbeMax caps the adaptive widening of the k-probe block: a ray
	// scan that walks deep into the probe grid (a far-away boundary)
	// doubles its block geometrically from KProbe up to this cap, cutting
	// the number of ImpactK calls without moving a single probe — the
	// blocks stay scan-stop independent, so widened results are
	// bit-identical to fixed-block and scalar searches. Zero selects
	// 8×KProbe; negative pins the block at KProbe (no widening). Ignored
	// when KProbe is 0.
	KProbeMax int
	// ForceDegraded skips the exact and numeric tiers entirely and
	// estimates every radius with the Monte-Carlo lower-bound fallback,
	// flagged Degraded. It bounds the cost of one evaluation to the
	// sampling budget regardless of how pathological the boundary geometry
	// is — the escape hatch a circuit breaker uses once the numeric
	// level-set tier has been failing for a scenario class (see
	// internal/server). Forced results carry the same determinism
	// guarantee as DegradeOnNumeric: the value depends only on
	// (DegradeSeed, feature index), never on scheduling.
	ForceDegraded bool
}

// kprobeMax resolves EvalOptions.KProbeMax: explicit cap, disabled (pinned
// at KProbe), or the 8×KProbe default.
func (eo EvalOptions) kprobeMax() int {
	switch {
	case eo.KProbeMax > 0:
		return eo.KProbeMax
	case eo.KProbeMax < 0:
		return eo.KProbe
	default:
		return 8 * eo.KProbe
	}
}

// errForcedDegrade marks a radius slot whose degradation was requested by
// EvalOptions.ForceDegraded rather than caused by an observed failure.
var errForcedDegrade = errors.New("core: degradation forced by EvalOptions.ForceDegraded")

// RobustnessWith computes the robustness metric through the hardened
// evaluation engine: per-feature radii run serially or on opt.Workers
// goroutines, ctx cancels the computation within one impact-function
// evaluation, a failing feature stops the remaining work early, and — with
// opt.DegradeOnNumeric — numeric failures degrade to Monte-Carlo
// lower-bound estimates instead of failing the analysis.
//
// Error reporting is deterministic: among the features that failed before
// the early stop, the lowest-index error is returned (cancellations induced
// by the early stop itself are not reported as feature errors).
func (a *Analysis) RobustnessWith(ctx context.Context, w Weighting, opt EvalOptions) (Robustness, error) {
	n := len(a.Features)
	radii := make([]Radius, n)
	errs := make([]error, n)
	tolerable := func(err error) bool {
		return err != nil && opt.DegradeOnNumeric && errors.Is(err, ErrNumeric)
	}

	if opt.ForceDegraded {
		for i := range errs {
			errs[i] = errForcedDegrade
		}
		return a.foldRobustness(ctx, w, opt, radii, errs)
	}

	if opt.Workers <= 1 || n <= 1 {
		for i := range a.Features {
			radii[i], errs[i] = a.CombinedRadiusWith(ctx, i, w, opt)
			if errs[i] != nil && !tolerable(errs[i]) {
				return Robustness{}, fmt.Errorf("core: feature %d: %w", i, errs[i])
			}
		}
	} else {
		if err := a.radiiConcurrent(ctx, w, opt, radii, errs, tolerable); err != nil {
			return Robustness{}, err
		}
	}

	return a.foldRobustness(ctx, w, opt, radii, errs)
}

// foldRobustness assembles the final Robustness from per-feature radii and
// errors. Every non-nil error must already be tolerable (numeric, with
// degradation enabled): each such feature is re-estimated by the
// Monte-Carlo lower bound and flagged Degraded. Shared by the serial,
// concurrent, and batch evaluation paths.
func (a *Analysis) foldRobustness(ctx context.Context, w Weighting, opt EvalOptions, radii []Radius, errs []error) (Robustness, error) {
	out := Robustness{Value: math.Inf(1), Critical: -1, Weighting: w.Name(), PerFeature: radii}
	for i := range radii {
		if errs[i] != nil {
			lb, derr := a.mcRadiusLowerBound(ctx, i, w, opt.DegradeSamples, deriveSeed(opt.DegradeSeed, i))
			if derr != nil {
				if errors.Is(errs[i], errForcedDegrade) {
					// Nothing genuinely failed before the fallback; the
					// fallback's own error (typically cancellation) is the
					// one the caller must see typed.
					return Robustness{}, fmt.Errorf("core: feature %d: forced degradation failed: %w", i, derr)
				}
				return Robustness{}, fmt.Errorf("core: feature %d: %w (Monte-Carlo fallback also failed: %v)", i, errs[i], derr)
			}
			radii[i] = Radius{Value: lb, Side: SideNone, Feature: i, Param: -1, Degraded: true}
			out.Degraded = true
		}
		if radii[i].Value < out.Value {
			out.Value, out.Critical = radii[i].Value, i
		}
	}
	return out, nil
}

// radiiConcurrent fills radii/errs on a bounded worker pool. The first
// non-tolerable feature error cancels the remaining work: in-flight
// searches abort at their next impact evaluation and undispatched features
// are skipped. After the join, the lowest-index non-tolerable error is
// returned (deterministic regardless of which worker observed its failure
// first); errors caused by the early-stop cancellation itself are ignored.
func (a *Analysis) radiiConcurrent(ctx context.Context, w Weighting, opt EvalOptions,
	radii []Radius, errs []error, tolerable func(error) bool) error {
	n := len(a.Features)
	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	next := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctxErr(ictx); err != nil {
					errs[i] = err
					continue
				}
				radii[i], errs[i] = a.CombinedRadiusWith(ictx, i, w, opt)
				if errs[i] != nil && !tolerable(errs[i]) {
					cancel() // early stop: no point finishing the other radii
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	// The caller's own cancellation dominates any per-feature fallout.
	if err := ctxErr(ctx); err != nil {
		return err
	}
	// Lowest-index genuine failure; induced cancellations are bycatch.
	for i, err := range errs {
		if err == nil || tolerable(err) || errors.Is(err, context.Canceled) {
			continue
		}
		return fmt.Errorf("core: feature %d: %w", i, err)
	}
	// Defensive: a cancellation error without a triggering failure (should
	// be unreachable) must not be silently dropped.
	for i, err := range errs {
		if err != nil && !tolerable(err) {
			return fmt.Errorf("core: feature %d: %w", i, err)
		}
	}
	return nil
}

// deriveSeed expands the caller's base degradation seed into an independent
// per-feature stream seed (a SplitMix64 round over base and the feature
// index). Deriving — instead of sharing one stream across features, items,
// and workers — pins the fallback estimate of every feature to a value that
// depends only on (base seed, feature index): the serial, concurrent, and
// batch evaluation paths report bit-identical degraded lower bounds
// regardless of scheduling order or worker count, and distinct features no
// longer probe along correlated directions.
func deriveSeed(base int64, feature int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(feature+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// mcRadiusLowerBound estimates a lower bound on feature i's combined radius
// by Monte-Carlo probing when the exact/numeric tiers cannot produce one:
// it bisects on the P-space ball radius, sampling `samples` points per
// round, and returns the largest radius at which no sampled point violates
// the feature. Panics and non-finite impact values count as violations
// (conservative), so the estimate shrinks — never grows — under faults. The
// result is an empirical estimate, not a certified radius; callers flag it
// Degraded.
func (a *Analysis) mcRadiusLowerBound(ctx context.Context, i int, w Weighting, samples int, seed int64) (float64, error) {
	if samples <= 0 {
		samples = 256
	}
	f := a.Features[i]
	d, err := w.Scales(a, i)
	if err != nil {
		return 0, err
	}
	pOrig, err := POrig(a, w, i)
	if err != nil {
		return 0, err
	}
	g := &guard{feature: i, param: -1, op: "degraded radius probe"}
	impact := g.wrap(f.impact())
	dim := len(pOrig)
	// Scratch vectors are reused across all samples of the estimation; the
	// random probe points never repeat, so the impact cache is deliberately
	// bypassed here (random keys would only evict useful entries).
	native := vec.GetScratch(len(d))
	defer vec.PutScratch(native)
	vals := vec.Views(nil, native, a.Dims()...)
	probe := vec.GetScratch(dim)
	defer vec.PutScratch(probe)
	dir := vec.GetScratch(dim)
	defer vec.PutScratch(dir)
	violated := func(p vec.V) bool {
		vec.DivInto(native, p, d)
		v := impact(vals)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true // non-finite (or panicking) impact: assume the worst
		}
		return !f.Bounds.Contains(v)
	}
	src := stats.NewSource(seed ^ 0x0dd5eed)
	anyViolation := func(r float64) (bool, error) {
		for s := 0; s < samples; s++ {
			if err := ctxErr(ctx); err != nil {
				return false, err
			}
			var nrm float64
			for e := range dir {
				dir[e] = src.Normal(0, 1)
				nrm += dir[e] * dir[e]
			}
			if nrm > 0 {
				scale := 1 / math.Sqrt(nrm)
				for e := range dir {
					dir[e] *= scale
				}
			}
			rr := r * math.Pow(src.Float64(), 1/float64(dim))
			if violated(vec.AddScaledInto(probe, pOrig, rr, dir)) {
				return true, nil
			}
		}
		return false, nil
	}
	// Bracket the first violating ball radius by doubling, then bisect.
	lo, hi := 0.0, 0.0
	for r := 1.0 / 1024; r <= 1e9; r *= 2 {
		v, err := anyViolation(r)
		if err != nil {
			return 0, err
		}
		if v {
			hi = r
			break
		}
		lo = r
	}
	if hi == 0 {
		return math.Inf(1), nil // no violation observed anywhere probed
	}
	for it := 0; it < 30 && hi-lo > 1e-9*(1+hi); it++ {
		mid := 0.5 * (lo + hi)
		v, err := anyViolation(mid)
		if err != nil {
			return 0, err
		}
		if v {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
