package core

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

func TestDirectionalRadiusAxisAligned(t *testing.T) {
	// φ = 2e1 + 3e2 + 5m, bound 42, orig (1,2),(4) → φ^orig = 28.
	a := twoParamLinear(t)
	// Along +e1 only: 2(1+t) + 6 + 20 = 42 → t = 7.
	d, err := a.DirectionalRadius(0, 0, vec.Of(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-7) > 1e-9 {
		t.Errorf("directional radius = %v, want 7", d)
	}
	// Along +e2 only: 3t = 14 → t = 14/3.
	d, err = a.DirectionalRadius(0, 0, vec.Of(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-14.0/3) > 1e-9 {
		t.Errorf("directional radius = %v, want 14/3", d)
	}
	// Along the message-length parameter: 5t = 14 → 2.8.
	d, err = a.DirectionalRadius(0, 1, vec.Of(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-2.8) > 1e-9 {
		t.Errorf("msg directional radius = %v, want 2.8", d)
	}
}

func TestDirectionalRadiusScaleInvariant(t *testing.T) {
	a := twoParamLinear(t)
	d1, err := a.DirectionalRadius(0, 0, vec.Of(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.DirectionalRadius(0, 0, vec.Of(10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("direction scaling changed the radius: %v vs %v", d1, d2)
	}
}

func TestDirectionalRadiusDecreasingDirectionIsInf(t *testing.T) {
	// Moving in the direction that decreases φ never violates a MaxOnly
	// bound: infinite slack.
	a := twoParamLinear(t)
	d, err := a.DirectionalRadius(0, 0, vec.Of(-1, -1))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("decreasing direction should be infinitely tolerable, got %v", d)
	}
}

func TestDirectionalAtLeastRadius(t *testing.T) {
	// Property: every directional radius ≥ the direction-free radius.
	a := twoParamLinear(t)
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		dir := vec.Of(src.Normal(0, 1), src.Normal(0, 1))
		if dir.Norm2() < 1e-6 {
			return true
		}
		d, err := a.DirectionalRadius(0, 0, dir)
		if err != nil {
			return false
		}
		return d >= r.Value-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDirectionalRadiusErrors(t *testing.T) {
	a := twoParamLinear(t)
	if _, err := a.DirectionalRadius(9, 0, vec.Of(1, 0)); err == nil {
		t.Error("bad feature index must error")
	}
	if _, err := a.DirectionalRadius(0, 9, vec.Of(1, 0)); err == nil {
		t.Error("bad param index must error")
	}
	if _, err := a.DirectionalRadius(0, 0, vec.Of(1)); err == nil {
		t.Error("dim mismatch must error")
	}
	if _, err := a.DirectionalRadius(0, 0, vec.Of(0, 0)); err == nil {
		t.Error("zero direction must error")
	}
	if _, err := a.DirectionalRadius(0, 0, vec.Of(math.NaN(), 1)); err == nil {
		t.Error("NaN direction must error")
	}
}

func TestCriticalDirection(t *testing.T) {
	a := twoParamLinear(t)
	dir, err := a.CriticalDirection(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// For the hyperplane 2x + 3y = 22 the critical direction is the unit
	// normal (2, 3)/√13.
	want := vec.Of(2, 3).Normalize()
	if !dir.EqualApprox(want, 1e-9) {
		t.Errorf("critical direction = %v, want %v", dir, want)
	}
	// The directional radius along the critical direction equals the
	// direction-free radius.
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.DirectionalRadius(0, 0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-r.Value) > 1e-6 {
		t.Errorf("critical-direction slack %v != radius %v", d, r.Value)
	}
}

func TestCriticalDirectionUnreachable(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1), vec.Of(0)}},
	}}, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.CriticalDirection(0, 1); err == nil {
		t.Error("unreachable boundary must error")
	}
}
