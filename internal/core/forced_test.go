package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"fepia/internal/vec"
)

// forcedTestAnalysis builds a healthy numeric-tier analysis whose exact
// combined radius is known: φ = 2x over orig x = 1 with φ ≤ 4 gives a
// normalized-P radius of exactly 1 (x may double before violating).
func forcedTestAnalysis(t *testing.T) *Analysis {
	t.Helper()
	a, err := NewAnalysis(
		[]Feature{{Name: "phi", Bounds: MaxOnly(4), Impact: func(vs []vec.V) float64 {
			return 2 * vs[0][0]
		}}},
		[]Perturbation{{Name: "x", Unit: "s", Orig: vec.V{1}}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestForceDegradedSkipsExactTiers(t *testing.T) {
	a := forcedTestAnalysis(t)
	opt := EvalOptions{ForceDegraded: true, DegradeSeed: 7}
	rho, err := a.RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rho.Degraded {
		t.Fatal("forced result not flagged Degraded")
	}
	for i, r := range rho.PerFeature {
		if !r.Degraded {
			t.Fatalf("per-feature radius %d not flagged Degraded", i)
		}
	}
	// The Monte-Carlo fallback is an empirical lower-bound estimate of the
	// true radius (1.0 here); it must land near it for this benign
	// geometry (small sampling overshoot past the boundary is possible).
	if rho.Value > 1.05 || rho.Value < 0.5 {
		t.Fatalf("forced degraded rho = %g, want an estimate near 1", rho.Value)
	}
}

func TestForceDegradedDeterministicAcrossPaths(t *testing.T) {
	opt := EvalOptions{ForceDegraded: true, DegradeSeed: 42, DegradeSamples: 64}

	a := forcedTestAnalysis(t)
	serial, err := a.RobustnessWith(context.Background(), Normalized{}, opt)
	if err != nil {
		t.Fatal(err)
	}

	optConc := opt
	optConc.Workers = 4
	conc, err := forcedTestAnalysis(t).RobustnessWith(context.Background(), Normalized{}, optConc)
	if err != nil {
		t.Fatal(err)
	}

	items := []BatchItem{
		{A: forcedTestAnalysis(t), W: Normalized{}},
		{A: forcedTestAnalysis(t), W: Normalized{}},
		{A: forcedTestAnalysis(t), W: Normalized{}},
	}
	batch, berrs := RobustnessBatch(context.Background(), items, opt)
	for k, e := range berrs {
		if e != nil {
			t.Fatalf("batch item %d: %v", k, e)
		}
	}

	for _, got := range append([]Robustness{conc}, batch...) {
		if got.Value != serial.Value {
			t.Fatalf("forced degraded value differs across paths: serial %v vs %v",
				serial.Value, got.Value)
		}
		if !got.Degraded {
			t.Fatal("forced batch/concurrent result not flagged Degraded")
		}
	}
}

func TestForceDegradedSurvivesHostileImpact(t *testing.T) {
	// An impact that panics away from the operating point: the exact and
	// numeric tiers would fail with ErrImpactPanic, but the forced
	// Monte-Carlo fallback treats panics as violations and still reports a
	// finite, conservative lower bound.
	a, err := NewAnalysis(
		[]Feature{{Name: "phi", Bounds: MaxOnly(4), Impact: func(vs []vec.V) float64 {
			x := vs[0][0]
			if x > 1.5 || x < 0.5 {
				panic("hostile impact")
			}
			return 2 * x
		}}},
		[]Perturbation{{Name: "x", Unit: "s", Orig: vec.V{1}}})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := a.RobustnessWith(context.Background(), Normalized{},
		EvalOptions{ForceDegraded: true, DegradeSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rho.Degraded {
		t.Fatal("result not flagged Degraded")
	}
	if math.IsInf(rho.Value, 0) || rho.Value <= 0 || rho.Value > 0.55 {
		t.Fatalf("forced degraded rho = %g, want a conservative estimate in (0, 0.55]", rho.Value)
	}
}

func TestForceDegradedHonorsCancellation(t *testing.T) {
	a := forcedTestAnalysis(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.RobustnessWith(ctx, Normalized{}, EvalOptions{ForceDegraded: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
