// Package core implements the FePIA robustness analysis of Ali et al. (TPDS
// 2004) and its extension to multiple kinds of perturbation parameters from
// Eslamnour & Ali (IPDPS 2005) — the paper this repository reproduces.
//
// The four FePIA steps map onto the types here:
//
//  1. Performance features φ_i with tolerable bounds ⟨β_i^min, β_i^max⟩
//     → Feature, Bounds.
//  2. Perturbation parameters π_j (vectors, one per *kind* of uncertainty)
//     → Perturbation.
//  3. Impact functions φ_i = f_i(π_1, …, π_|Π|) → ImpactFunc / LinearImpact.
//  4. The analysis: robustness radii (Eq. 1 per single parameter, Eq. 2 in
//     combined P-space) and the robustness metric ρ = min_i r_i
//     → Analysis.RadiusSingle, Analysis.CombinedRadius, Analysis.Robustness.
//
// Radii are computed through three tiers: exact hyperplane geometry for
// linear impact functions (the case the paper derives in closed form), exact
// KKT solves for axis-aligned quadratic impacts, and a numeric
// nearest-point-on-level-set search for everything else. Tests cross-check
// the tiers against each other and against the paper's formulas.
package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// Perturbation is one perturbation parameter π_j: a named vector of system
// or environment values of a single kind (all elements share a unit). The
// paper's examples: a vector of task execution times (seconds), a vector of
// message lengths (bytes), a vector of sensor loads (objects per data set).
type Perturbation struct {
	// Name identifies the parameter in reports, e.g. "exec-times".
	Name string
	// Unit is the common unit of every element, e.g. "s" or "bytes". Units
	// are what make naive concatenation of different π_j meaningless and
	// motivate the paper's dimensionless P-space.
	Unit string
	// Orig is π_j^orig — the assumed (estimated) value the system was
	// configured for. Its length fixes the dimension n_{π_j}.
	Orig vec.V
}

// Dim returns n_{π_j}, the number of elements of the parameter.
func (p Perturbation) Dim() int { return len(p.Orig) }

// Bounds is the tolerable variation ⟨β^min, β^max⟩ of a feature. Use
// math.Inf(-1) / math.Inf(1) for one-sided requirements.
type Bounds struct {
	Min, Max float64
}

// MaxOnly is the common one-sided requirement φ ≤ max (e.g. "makespan must
// not exceed 1.2× its original value").
func MaxOnly(max float64) Bounds { return Bounds{Min: math.Inf(-1), Max: max} }

// MinOnly is the one-sided requirement φ ≥ min (e.g. "throughput must not
// drop below 80% of nominal").
func MinOnly(min float64) Bounds { return Bounds{Min: min, Max: math.Inf(1)} }

// Band is the two-sided requirement min ≤ φ ≤ max.
func Band(min, max float64) Bounds { return Bounds{Min: min, Max: max} }

// Contains reports whether v satisfies the bounds.
func (b Bounds) Contains(v float64) bool { return v >= b.Min && v <= b.Max }

// ImpactFunc is an impact function f_i: it maps the values of all
// perturbation parameters (in analysis order, block j having the dimension
// of π_j) to the feature value φ_i.
//
// The engine calls impact functions in tight evaluation loops and reuses
// the argument buffers between calls: an ImpactFunc must treat params (and
// the vectors inside it) as read-only and must not retain them after
// returning. Copy anything that needs to outlive the call.
type ImpactFunc func(params []vec.V) float64

// LinearImpact is the analytically tractable impact form the paper derives
// closed forms for:
//
//	φ = Const + Σ_j Coeffs[j]·π_j.
//
// When a Feature carries a LinearImpact, radii are computed by exact
// hyperplane projection instead of numeric search.
type LinearImpact struct {
	// Coeffs holds one coefficient vector per perturbation parameter,
	// Coeffs[j] matching the dimension of π_j.
	Coeffs []vec.V
	// Const is the affine offset.
	Const float64
}

// Eval computes the linear impact at the given parameter values.
func (l LinearImpact) Eval(params []vec.V) float64 {
	s := l.Const
	for j, k := range l.Coeffs {
		s += k.Dot(params[j])
	}
	return s
}

// Func adapts the linear impact to an ImpactFunc.
func (l LinearImpact) Func() ImpactFunc { return l.Eval }

// Feature is one QoS performance feature φ_i that must stay within Bounds
// despite perturbations.
type Feature struct {
	// Name identifies the feature in reports, e.g. "makespan" or
	// "latency(path-3)".
	Name string
	// Bounds is the tolerable variation ⟨β^min, β^max⟩.
	Bounds Bounds
	// Impact is the general impact function f_i. It may be nil when Linear
	// is set.
	Impact ImpactFunc
	// Linear, when non-nil, declares the impact to be affine and unlocks
	// the exact closed-form tier. If both Linear and Impact are set, they
	// must agree; Validate spot-checks this at π^orig.
	Linear *LinearImpact
	// Quad, when non-nil, declares a separable quadratic impact (see
	// QuadImpact) and unlocks the exact ellipsoid tier. At most one of
	// Linear and Quad may be set.
	Quad *QuadImpact
	// ImpactK, when non-nil, evaluates the impact at a block of probe
	// points in one call: out[p] = f(probes[p]), where probes[p] is the
	// FULL concatenated native vector π_1 ⧺ π_2 ⧺ … (dimension TotalDim) —
	// unlike Impact, which receives per-parameter blocks. The numeric tier
	// uses it, when EvalOptions.KProbe is set, to evaluate whole scan
	// windows and gradient stencils of the level-set search in one call
	// (see internal/vec's k-probe kernels for the four analytic families).
	//
	// Contract: ImpactK must agree with Impact bit-for-bit at every point
	// (same accumulation order, not merely approximately — Validate
	// spot-checks this at π^orig), and must treat probes and their backing
	// arrays as read-only, without retaining probes or out after returning.
	ImpactK func(probes []vec.V, out []float64)
}

// impact returns the callable impact function, preferring the explicit one.
func (f Feature) impact() ImpactFunc {
	if f.Impact != nil {
		return f.Impact
	}
	if f.Linear != nil {
		return f.Linear.Eval
	}
	if f.Quad != nil {
		return f.Quad.Eval
	}
	return nil
}

// Analysis is a complete FePIA robustness analysis: the feature set Φ, the
// perturbation parameter set Π, and numeric settings. Construct it with
// NewAnalysis and query radii and metrics through its methods.
type Analysis struct {
	Features []Feature
	Params   []Perturbation

	// NumOpts tunes the numeric nearest-point searches used for nonlinear
	// impact functions. The zero value is sensible.
	NumOpts optimize.LevelSetOptions

	// cache, when non-nil, memoizes impact evaluations and weighting
	// scales across searches. See EnableImpactCache (cache.go).
	cache *impactCache

	// warm, when non-nil, holds per-(feature, parameter) warm-start slots
	// for the numeric boundary searches. See EnableWarmStart (warm.go).
	warm *warmReg
}

// NewAnalysis assembles and validates an analysis.
func NewAnalysis(features []Feature, params []Perturbation) (*Analysis, error) {
	a := &Analysis{Features: features, Params: params}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Validation errors.
var (
	ErrNoFeatures = errors.New("core: analysis has no performance features")
	ErrNoParams   = errors.New("core: analysis has no perturbation parameters")
)

// Validate checks structural consistency: non-empty feature and parameter
// sets, impact functions present, linear declarations dimensionally
// consistent and agreeing with the general impact at π^orig, and bounds that
// admit the original operating point.
func (a *Analysis) Validate() error {
	if len(a.Features) == 0 {
		return ErrNoFeatures
	}
	if len(a.Params) == 0 {
		return ErrNoParams
	}
	for j, p := range a.Params {
		if p.Dim() == 0 {
			return fmt.Errorf("core: perturbation %d (%q) has no elements", j, p.Name)
		}
		if !p.Orig.AllFinite() {
			return fmt.Errorf("core: perturbation %q has non-finite original values %v", p.Name, p.Orig)
		}
	}
	orig := a.OrigValues()
	for i, f := range a.Features {
		if f.impact() == nil {
			return fmt.Errorf("core: feature %d (%q) has no impact function", i, f.Name)
		}
		if f.Bounds.Min > f.Bounds.Max {
			return fmt.Errorf("core: feature %q has inverted bounds [%g, %g]", f.Name, f.Bounds.Min, f.Bounds.Max)
		}
		if f.Linear != nil && f.Quad != nil {
			return fmt.Errorf("core: feature %q declares both Linear and Quad impacts", f.Name)
		}
		if f.Quad != nil {
			if err := a.validateQuad(i); err != nil {
				return err
			}
			if f.Impact != nil {
				got, err := safeEval(i, f.Impact, orig)
				if err != nil {
					return fmt.Errorf("core: feature %q: %w", f.Name, err)
				}
				want := f.Quad.Eval(orig)
				if !vec.ScalarEqualApprox(got, want, 1e-6) {
					return fmt.Errorf("core: feature %q: Impact(pi_orig)=%g disagrees with Quad(pi_orig)=%g",
						f.Name, got, want)
				}
			}
		}
		if f.Linear != nil {
			if len(f.Linear.Coeffs) != len(a.Params) {
				return fmt.Errorf("core: feature %q linear impact has %d coefficient blocks, want %d",
					f.Name, len(f.Linear.Coeffs), len(a.Params))
			}
			for j, k := range f.Linear.Coeffs {
				if len(k) != a.Params[j].Dim() {
					return fmt.Errorf("core: feature %q linear block %d has dim %d, want %d",
						f.Name, j, len(k), a.Params[j].Dim())
				}
			}
			if f.Impact != nil {
				got, err := safeEval(i, f.Impact, orig)
				if err != nil {
					return fmt.Errorf("core: feature %q: %w", f.Name, err)
				}
				want := f.Linear.Eval(orig)
				if !vec.ScalarEqualApprox(got, want, 1e-6) {
					return fmt.Errorf("core: feature %q: Impact(π^orig)=%g disagrees with Linear(π^orig)=%g",
						f.Name, got, want)
				}
			}
		}
		v, err := safeEval(i, f.impact(), orig)
		if err != nil {
			return fmt.Errorf("core: feature %q: %w", f.Name, err)
		}
		if f.ImpactK != nil {
			var kv [1]float64
			if err := safeEvalK(i, f.ImpactK, []vec.V{concat(orig)}, kv[:]); err != nil {
				return fmt.Errorf("core: feature %q: %w", f.Name, err)
			}
			if math.Float64bits(kv[0]) != math.Float64bits(v) {
				return fmt.Errorf("core: feature %q: ImpactK(π^orig)=%.17g disagrees bit-for-bit with the scalar impact %.17g",
					f.Name, kv[0], v)
			}
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: feature %q at the original operating point: %w",
				f.Name, &NumericError{Feature: i, Op: "validation", Value: v})
		}
		if !f.Bounds.Contains(v) {
			return fmt.Errorf("core: feature %q = %g already violates bounds [%g, %g] at π^orig",
				f.Name, v, f.Bounds.Min, f.Bounds.Max)
		}
	}
	return nil
}

// OrigValues returns a copy of the original parameter values π_j^orig in
// analysis order.
func (a *Analysis) OrigValues() []vec.V {
	out := make([]vec.V, len(a.Params))
	for j, p := range a.Params {
		out[j] = p.Orig.Clone()
	}
	return out
}

// Dims returns the per-parameter dimensions n_{π_j}.
func (a *Analysis) Dims() []int {
	out := make([]int, len(a.Params))
	for j, p := range a.Params {
		out[j] = p.Dim()
	}
	return out
}

// TotalDim returns Σ_j n_{π_j}, the dimension of the combined P-space.
func (a *Analysis) TotalDim() int {
	var n int
	for _, p := range a.Params {
		n += p.Dim()
	}
	return n
}

// FeatureValue evaluates φ_i at the given parameter values.
func (a *Analysis) FeatureValue(i int, values []vec.V) float64 {
	return a.Features[i].impact()(values)
}

// Violates reports whether any feature violates its bounds at the given
// parameter values — the ground-truth check the operating-point recipe is
// validated against in the experiments.
func (a *Analysis) Violates(values []vec.V) bool {
	for i, f := range a.Features {
		if !f.Bounds.Contains(a.FeatureValue(i, values)) {
			return true
		}
	}
	return false
}

// concat flattens parameter values into one vector in block order.
func concat(values []vec.V) vec.V { return vec.Concat(values...) }

// split reverses concat for this analysis' dimensions.
func (a *Analysis) split(x vec.V) ([]vec.V, error) {
	return vec.Split(x, a.Dims()...)
}
