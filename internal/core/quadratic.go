package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/geom"
	"fepia/internal/vec"
)

// QuadImpact declares a separable quadratic impact function:
//
//	φ = Const + Σ_j Σ_e A[j][e]·(π_j[e] − C[j][e])²,  A[j][e] ≥ 0.
//
// Quadratic features appear whenever a cost grows with the square of a
// drift — dynamic power versus frequency, variance-style penalty terms,
// quadratic queueing approximations near an operating point. Like the
// linear case, the boundary {φ = β} is analytically tractable: it is an
// axis-aligned ellipsoid, and the nearest-point problem is an exact
// single-multiplier KKT solve (geom.AxisEllipsoid). Both weightings keep
// the form (a diagonal rescaling of an axis-aligned quadratic is an
// axis-aligned quadratic), so combined P-space radii stay exact too.
type QuadImpact struct {
	// A holds non-negative curvature blocks aligned with the parameters.
	A []vec.V
	// C holds the center blocks aligned with the parameters.
	C []vec.V
	// Const is the additive offset.
	Const float64
}

// Eval computes the quadratic impact at the given parameter values.
func (q QuadImpact) Eval(params []vec.V) float64 {
	s := q.Const
	for j := range q.A {
		for e := range q.A[j] {
			d := params[j][e] - q.C[j][e]
			s += q.A[j][e] * d * d
		}
	}
	return s
}

// Func adapts the quadratic impact to an ImpactFunc.
func (q QuadImpact) Func() ImpactFunc { return q.Eval }

// ErrQuadShape reports a malformed quadratic declaration.
var ErrQuadShape = errors.New("core: malformed quadratic impact")

// validateQuad checks block shapes and curvature signs against the
// analysis' parameters.
func (a *Analysis) validateQuad(fi int) error {
	f := a.Features[fi]
	q := f.Quad
	if len(q.A) != len(a.Params) || len(q.C) != len(a.Params) {
		return fmt.Errorf("%w: feature %q has %d/%d blocks, want %d",
			ErrQuadShape, f.Name, len(q.A), len(q.C), len(a.Params))
	}
	for j := range q.A {
		if len(q.A[j]) != a.Params[j].Dim() || len(q.C[j]) != a.Params[j].Dim() {
			return fmt.Errorf("%w: feature %q block %d dims A=%d C=%d, want %d",
				ErrQuadShape, f.Name, j, len(q.A[j]), len(q.C[j]), a.Params[j].Dim())
		}
		for e, av := range q.A[j] {
			if av < 0 || math.IsNaN(av) {
				return fmt.Errorf("%w: feature %q curvature A[%d][%d] = %g",
					ErrQuadShape, f.Name, j, e, av)
			}
		}
	}
	return nil
}

// radiusSingleQuad solves Eq. 1 exactly for a quadratic feature: with other
// parameters frozen at their originals, the boundary in π_j-space is the
// axis-aligned ellipsoid Σ_e A[j][e]·(x_e − C[j][e])² = β − rest. Elements
// with zero curvature cannot influence the feature and are held fixed.
func (a *Analysis) radiusSingleQuad(i, j int) (Radius, error) {
	f := a.Features[i]
	q := f.Quad
	orig := a.OrigValues()
	rest := q.Const
	for m := range q.A {
		if m == j {
			continue
		}
		for e := range q.A[m] {
			d := orig[m][e] - q.C[m][e]
			rest += q.A[m][e] * d * d
		}
	}
	// Active sub-dimensions of block j.
	var act []int
	for e, av := range q.A[j] {
		if av > 0 {
			act = append(act, e)
		}
	}
	x0 := a.Params[j].Orig
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: j, Analytic: true}
	if len(act) == 0 {
		return best, nil // feature insensitive to this parameter
	}
	subA := make(vec.V, len(act))
	subC := make(vec.V, len(act))
	subX := make(vec.V, len(act))
	for s, e := range act {
		subA[s] = q.A[j][e]
		subC[s] = q.C[j][e]
		subX[s] = x0[e]
	}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		level := side.beta - rest
		if level <= 0 {
			// The quadratic part is non-negative: a non-positive level is
			// reachable only at level == 0 (the center itself).
			if level == 0 {
				d := subX.Sub(subC)
				// Distance to the center point in the active subspace.
				pt := x0.Clone()
				for _, e := range act {
					pt[e] = q.C[j][e]
				}
				if dist := d.Norm2(); dist < best.Value {
					best.Value, best.Point, best.Side = dist, pt, side.side
				}
			}
			continue
		}
		ell := geom.AxisEllipsoid{A: subA, C: subC, R: level}
		sub, dist, err := ell.Nearest(subX)
		if err != nil {
			return Radius{}, fmt.Errorf("core: quadratic radius of %q: %w", f.Name, err)
		}
		if dist < best.Value {
			pt := x0.Clone()
			for s, e := range act {
				pt[e] = sub[s]
			}
			best.Value, best.Point, best.Side = dist, pt, side.side
		}
	}
	return best, nil
}

// combinedQuad solves Eq. 2 exactly: under a diagonal weighting with scales
// d (P = d ∘ x element-wise), the boundary in P-space is
// Σ_e (A_e/d_e²)·(P_e − d_e·C_e)² = β − Const — still an axis-aligned
// ellipsoid.
func (a *Analysis) combinedQuad(i int, d, pOrig vec.V) (Radius, error) {
	f := a.Features[i]
	q := f.Quad
	aFlat := concat(q.A)
	cFlat := concat(q.C)
	var act []int
	for e, av := range aFlat {
		if av > 0 {
			act = append(act, e)
		}
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1, Analytic: true}
	if len(act) == 0 {
		return best, nil
	}
	subA := make(vec.V, len(act))
	subC := make(vec.V, len(act))
	subP := make(vec.V, len(act))
	for s, e := range act {
		if d[e] == 0 {
			return Radius{}, fmt.Errorf("%w: zero scale for element %d", ErrDegenerateWeighting, e)
		}
		subA[s] = aFlat[e] / (d[e] * d[e])
		subC[s] = d[e] * cFlat[e]
		subP[s] = pOrig[e]
	}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		level := side.beta - q.Const
		if level <= 0 {
			if level == 0 {
				pt := pOrig.Clone()
				for s, e := range act {
					pt[e] = subC[s]
				}
				if dist := subP.Dist2(subC); dist < best.Value {
					best.Value, best.Point, best.Side = dist, pt, side.side
				}
			}
			continue
		}
		ell := geom.AxisEllipsoid{A: subA, C: subC, R: level}
		sub, dist, err := ell.Nearest(subP)
		if err != nil {
			return Radius{}, fmt.Errorf("core: combined quadratic radius of %q: %w", f.Name, err)
		}
		if dist < best.Value {
			pt := pOrig.Clone()
			for s, e := range act {
				pt[e] = sub[s]
			}
			best.Value, best.Point, best.Side = dist, pt, side.side
		}
	}
	return best, nil
}
