package core

import (
	"fmt"
	"math"
	"testing"

	"fepia/internal/vec"
)

// manyFeatures builds an analysis with numFeatures nonlinear (numeric-tier)
// features over two parameters.
func manyFeatures(t *testing.T, numFeatures int) *Analysis {
	t.Helper()
	features := make([]Feature, numFeatures)
	for i := range features {
		scale := 1 + float64(i)*0.25
		features[i] = Feature{
			Name:   fmt.Sprintf("f%d", i),
			Bounds: MaxOnly(4 * scale),
			Impact: func(vs []vec.V) float64 { return scale * vs[0][0] * vs[1][0] },
		}
	}
	a, err := NewAnalysis(features, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRobustnessConcurrentMatchesSerial(t *testing.T) {
	a := manyFeatures(t, 12)
	serial, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		conc, err := a.RobustnessConcurrent(Normalized{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(conc.Value-serial.Value) > 1e-12 {
			t.Errorf("workers=%d: %v vs serial %v", workers, conc.Value, serial.Value)
		}
		if conc.Critical != serial.Critical {
			t.Errorf("workers=%d: critical %d vs %d", workers, conc.Critical, serial.Critical)
		}
		if len(conc.PerFeature) != len(serial.PerFeature) {
			t.Fatalf("workers=%d: per-feature breakdown missing", workers)
		}
		for i := range conc.PerFeature {
			if math.Abs(conc.PerFeature[i].Value-serial.PerFeature[i].Value) > 1e-12 {
				t.Errorf("workers=%d feature %d differs", workers, i)
			}
		}
	}
}

func TestRobustnessConcurrentLinear(t *testing.T) {
	// All-linear analyses route identically (and correctly).
	a := twoParamLinear(t)
	serial, err := a.Robustness(Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := a.RobustnessConcurrent(Normalized{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Value != serial.Value {
		t.Errorf("linear: %v vs %v", conc.Value, serial.Value)
	}
}

func TestRobustnessConcurrentPropagatesErrors(t *testing.T) {
	// Zero original value makes the normalized weighting fail; the error
	// must surface, not hang or be dropped.
	a, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(10),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(0)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RobustnessConcurrent(Normalized{}, 4); err == nil {
		t.Error("expected weighting error to propagate")
	}
}
