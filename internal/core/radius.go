package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/geom"
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// BoundarySide says which bound of ⟨β^min, β^max⟩ the nearest boundary point
// lies on.
type BoundarySide int

const (
	// SideNone means no reachable boundary exists (infinite radius).
	SideNone BoundarySide = iota
	// SideMax means the β^max boundary is the nearest.
	SideMax
	// SideMin means the β^min boundary is the nearest.
	SideMin
)

// String renders the side for reports.
func (s BoundarySide) String() string {
	switch s {
	case SideMax:
		return "beta-max"
	case SideMin:
		return "beta-min"
	default:
		return "none"
	}
}

// Radius is the outcome of a robustness-radius computation (Eq. 1 for a
// single parameter, Eq. 2 in combined P-space).
type Radius struct {
	// Value is the radius r_μ. math.Inf(1) means no boundary is reachable:
	// the feature can never leave its bounds along the analyzed directions.
	Value float64
	// Point is the nearest boundary point (π_j*(φ_i), or P*(φ_i) in
	// combined space). Nil when Value is infinite.
	Point vec.V
	// Side identifies which bound the nearest point sits on.
	Side BoundarySide
	// Feature is the index of the feature the radius belongs to.
	Feature int
	// Param is the index of the perturbation parameter (single-parameter
	// radii only; −1 for combined P-space radii).
	Param int
	// Analytic reports whether a closed-form tier produced the value (true)
	// or the numeric search did (false).
	Analytic bool
	// Degraded marks a radius that the exact/numeric tiers could not
	// produce and that was instead estimated by the Monte-Carlo
	// lower-bound fallback (see EvalOptions.DegradeOnNumeric). A degraded
	// value is an empirical estimate, not a certified radius.
	Degraded bool
}

// ErrBadIndex reports an out-of-range feature or parameter index.
var ErrBadIndex = errors.New("core: index out of range")

// RadiusSingle computes r_μ(φ_i, π_j) — Eq. 1 of the paper: the smallest
// Euclidean distance from π_j^orig to a point where φ_i meets β^min or
// β^max, all other parameters held at their original values.
//
// Linear impact functions use exact hyperplane projection; everything else
// uses the numeric nearest-point search. An unreachable boundary yields
// Value = +Inf with Side = SideNone (not an error): the allocation is
// infinitely robust with respect to that feature/parameter pair.
func (a *Analysis) RadiusSingle(i, j int) (Radius, error) {
	return a.RadiusSingleCtx(context.Background(), i, j)
}

// RadiusSingleCtx is RadiusSingle with cooperative cancellation: ctx is
// checked before every impact-function evaluation of the numeric tier, so a
// cancelled or expired context aborts the computation within one evaluation.
// Panics and non-finite values from the impact function are contained as
// *ImpactPanicError / *NumericError.
func (a *Analysis) RadiusSingleCtx(ctx context.Context, i, j int) (Radius, error) {
	if i < 0 || i >= len(a.Features) {
		return Radius{}, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
	}
	if j < 0 || j >= len(a.Params) {
		return Radius{}, fmt.Errorf("%w: parameter %d of %d", ErrBadIndex, j, len(a.Params))
	}
	if err := ctxErr(ctx); err != nil {
		return Radius{}, err
	}
	f := a.Features[i]
	if f.Linear != nil {
		return a.radiusSingleLinear(i, j)
	}
	if f.Quad != nil {
		return a.radiusSingleQuad(i, j)
	}
	return a.radiusSingleNumeric(ctx, i, j, EvalOptions{})
}

// ctxErr reports a cancelled context as a wrapped error; a nil context means
// "no cancellation".
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: evaluation cancelled: %w", err)
	}
	return nil
}

// searchOpts threads the caller's context into the numeric tier's options.
func (a *Analysis) searchOpts(ctx context.Context) optimize.LevelSetOptions {
	opts := a.NumOpts
	if ctx != nil {
		opts.Ctx = ctx
	}
	return opts
}

// radiusSingleLinear solves Eq. 1 exactly: with other parameters frozen, the
// boundary {π_j : f(π) = β} is the hyperplane K_j·π_j = β − Const −
// Σ_{m≠j} K_m·π_m^orig.
func (a *Analysis) radiusSingleLinear(i, j int) (Radius, error) {
	f := a.Features[i]
	orig := a.OrigValues()
	rest := f.Linear.Const
	for m, k := range f.Linear.Coeffs {
		if m != j {
			rest += k.Dot(orig[m])
		}
	}
	kj := f.Linear.Coeffs[j]
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: j, Analytic: true}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		h := geom.Hyperplane{K: kj, B: side.beta - rest}
		pt, d, err := h.Nearest(a.Params[j].Orig)
		if err != nil {
			if errors.Is(err, geom.ErrDegenerate) {
				continue // zero coefficients: this bound is unreachable via π_j
			}
			return Radius{}, fmt.Errorf("core: feature %q / param %q: %w", f.Name, a.Params[j].Name, err)
		}
		if d < best.Value {
			best.Value, best.Point, best.Side = d, pt, side.side
		}
	}
	return best, nil
}

// radiusSingleNumeric solves Eq. 1 with the level-set search in the
// n_{π_j}-dimensional space of the single parameter. The caller-supplied
// impact function runs behind a guard: panics and non-finite values are
// contained as typed errors instead of escaping or silently corrupting the
// radius, and ctx cancels the search between evaluations. The full native
// point (frozen blocks + the moving block j) lives in one pooled scratch
// vector, so evaluations share cache entries with the combined-space
// searches of the same feature and allocate nothing per call. eo threads
// the per-search evaluation options (budget, k-probe) and — with
// EnableWarmStart — the per-(feature, parameter) warm state.
func (a *Analysis) radiusSingleNumeric(ctx context.Context, i, j int, eo EvalOptions) (Radius, error) {
	f := a.Features[i]
	g := &guard{feature: i, param: j, op: "single-parameter radius"}
	impact := g.wrap(f.impact())
	native := vec.GetScratch(a.TotalDim())
	defer vec.PutScratch(native)
	vec.ConcatInto(native, a.OrigValues()...)
	vals := vec.Views(nil, native, a.Dims()...)
	blk := vals[j]
	cache := a.cache
	var keyBuf []byte
	if cache != nil {
		keyBuf = make([]byte, 0, 4+8*len(native))
	}
	restrict := func(x []float64) float64 {
		copy(blk, x)
		if cache != nil {
			keyBuf = appendKey(keyBuf, i, native)
			if v, ok := cache.get(keyBuf); ok {
				return v
			}
		}
		v := impact(vals)
		if cache != nil {
			cache.put(keyBuf, v) // refuses NaN/Inf: faults are never cached
		}
		return v
	}
	opts := a.searchOpts(ctx)
	if eo.MaxEvals > 0 {
		opts.MaxEvals = eo.MaxEvals
	}
	if eo.KProbe > 0 && f.ImpactK != nil {
		blockOff := 0
		for _, dim := range a.Dims()[:j] {
			blockOff += dim
		}
		opts.FK = a.impactFK(g, i, nil, blockOff, native)
		opts.KBlock = eo.KProbe
		opts.KBlockMax = eo.kprobeMax()
	}
	if a.warm != nil {
		key := warmKey{feat: i, param: j}
		opts.Warm = a.warm.checkout(key, a.Params[j].Orig)
		defer a.warm.publish(key, opts.Warm)
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: j}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		res, err := optimize.NearestOnLevelSet(restrict, side.beta, a.Params[j].Orig, opts)
		if err != nil && errors.Is(err, optimize.ErrNoBoundary) {
			err = nil // unreachable bound: not a failure
			res.Dist = math.Inf(1)
		}
		if err = g.err(err); err != nil {
			return Radius{}, fmt.Errorf("core: feature %q / param %q: %w", f.Name, a.Params[j].Name, err)
		}
		if res.Dist < best.Value {
			best.Value, best.Point, best.Side = res.Dist, vec.V(res.Point), side.side
		}
	}
	return best, nil
}

// RobustnessSingle computes ρ_μ(Φ, π_j) = min_i r_μ(φ_i, π_j): the
// robustness of the allocation against the single parameter π_j across the
// whole feature set. The returned Radius identifies the critical feature.
func (a *Analysis) RobustnessSingle(j int) (Radius, error) {
	return a.RobustnessSingleCtx(context.Background(), j)
}

// RobustnessSingleCtx is RobustnessSingle with cooperative cancellation
// (see RadiusSingleCtx).
func (a *Analysis) RobustnessSingleCtx(ctx context.Context, j int) (Radius, error) {
	if j < 0 || j >= len(a.Params) {
		return Radius{}, fmt.Errorf("%w: parameter %d of %d", ErrBadIndex, j, len(a.Params))
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: -1, Param: j}
	for i := range a.Features {
		r, err := a.RadiusSingleCtx(ctx, i, j)
		if err != nil {
			return Radius{}, err
		}
		if r.Value < best.Value {
			best = r
		}
	}
	return best, nil
}
