package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// This file implements a Monte-Carlo complement to the worst-case radius.
// The robustness radius answers "how far can the parameters move in the
// WORST direction before a violation?"; operators often also want "if the
// parameters drift randomly with a given spread, how likely is a
// violation?" Comparing the two on the same system quantifies how
// conservative the radius is for a given uncertainty model — experiment E11.

// MCModel selects the random perturbation model for Monte-Carlo estimation.
type MCModel int

const (
	// MCRelativeNormal perturbs every element multiplicatively:
	// π_e = π_e^orig · (1 + σ·Z), truncated at a small positive floor.
	// This matches the normalized P-space geometry (spread is relative).
	MCRelativeNormal MCModel = iota
	// MCUniformBall draws uniformly from the normalized-P-space ball of
	// radius σ around P^orig (direction uniform on the sphere, radius
	// ∝ U^{1/d}); with σ equal to the robustness radius the violation
	// probability must be exactly zero.
	MCUniformBall
)

// String names the model.
func (m MCModel) String() string {
	switch m {
	case MCRelativeNormal:
		return "relative-normal"
	case MCUniformBall:
		return "uniform-P-ball"
	default:
		return fmt.Sprintf("MCModel(%d)", int(m))
	}
}

// MCOptions configure MonteCarlo.
type MCOptions struct {
	// Model selects the perturbation distribution.
	Model MCModel
	// Spread is the model's scale: σ of the relative-normal model, or the
	// P-space ball radius of the uniform-ball model. Must be positive.
	Spread float64
	// Samples is the number of random operating points (default 10000).
	Samples int
	// Seed drives the deterministic sample stream.
	Seed int64
}

// MCResult summarizes a Monte-Carlo robustness estimation.
type MCResult struct {
	// Samples actually evaluated.
	Samples int
	// Violations counts samples at which some feature left its bounds.
	Violations int
	// ViolationRate is Violations/Samples.
	ViolationRate float64
	// MeanPDist and MaxPDist describe the sampled ‖P − P^orig‖₂ (normalized
	// weighting) for cross-reading against the robustness radius.
	MeanPDist, MaxPDist float64
	// CriticalFeature is the feature index that violated most often (−1 if
	// no violations).
	CriticalFeature int
}

// ErrBadMC reports invalid Monte-Carlo options.
var ErrBadMC = errors.New("core: invalid Monte-Carlo options")

// MonteCarlo estimates the violation probability of the allocation under
// random parameter drift. It requires strictly positive original values
// (the perturbation models are relative). The returned statistics are
// deterministic for a fixed seed.
func (a *Analysis) MonteCarlo(opt MCOptions) (MCResult, error) {
	return a.MonteCarloCtx(context.Background(), opt)
}

// MonteCarloCtx is MonteCarlo with hardened evaluation: ctx is checked every
// sample (a cancelled or expired context aborts within one impact-function
// evaluation), a panicking impact function yields a typed *ImpactPanicError,
// and a non-finite (NaN/Inf) feature value yields a typed *NumericError
// instead of being silently counted as a violation.
func (a *Analysis) MonteCarloCtx(ctx context.Context, opt MCOptions) (MCResult, error) {
	if opt.Spread <= 0 || math.IsNaN(opt.Spread) {
		return MCResult{}, fmt.Errorf("%w: spread %g", ErrBadMC, opt.Spread)
	}
	if opt.Samples <= 0 {
		opt.Samples = 10000
	}
	origFlat := concat(a.OrigValues())
	if !origFlat.AllPositive() {
		return MCResult{}, fmt.Errorf("%w: relative models need positive originals", ErrBadMC)
	}
	d := len(origFlat)
	src := stats.NewSource(opt.Seed ^ 0x6dc5a7)
	dims := a.Dims()

	var res MCResult
	violBy := make([]int, len(a.Features))
	var sumDist float64
	for s := 0; s < opt.Samples; s++ {
		if err := ctxErr(ctx); err != nil {
			return MCResult{}, fmt.Errorf("core: Monte-Carlo after %d samples: %w", s, err)
		}
		// Draw the relative factor vector p (P-space point).
		p := make(vec.V, d)
		switch opt.Model {
		case MCRelativeNormal:
			for e := range p {
				f := 1 + opt.Spread*src.Normal(0, 1)
				if f < 1e-9 {
					f = 1e-9
				}
				p[e] = f
			}
		case MCUniformBall:
			dir := make(vec.V, d)
			for e := range dir {
				dir[e] = src.Normal(0, 1)
			}
			dir = dir.Normalize()
			r := opt.Spread * math.Pow(src.Float64(), 1/float64(d))
			for e := range p {
				p[e] = 1 + r*dir[e]
				if p[e] < 1e-9 {
					p[e] = 1e-9
				}
			}
		default:
			return MCResult{}, fmt.Errorf("%w: unknown model %d", ErrBadMC, int(opt.Model))
		}
		dist := p.Dist2(vec.Ones(d))
		sumDist += dist
		if dist > res.MaxPDist {
			res.MaxPDist = dist
		}
		native := origFlat.Mul(p)
		vals, err := vec.Split(native, dims...)
		if err != nil {
			return MCResult{}, err
		}
		violated := false
		for i, f := range a.Features {
			v, err := safeEval(i, f.impact(), vals)
			if err != nil {
				return MCResult{}, fmt.Errorf("core: Monte-Carlo sample %d: %w", s, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return MCResult{}, fmt.Errorf("core: Monte-Carlo sample %d: %w",
					s, &NumericError{Feature: i, Op: "Monte-Carlo sample", Value: v})
			}
			if !f.Bounds.Contains(v) {
				violBy[i]++
				violated = true
			}
		}
		if violated {
			res.Violations++
		}
	}
	res.Samples = opt.Samples
	res.ViolationRate = float64(res.Violations) / float64(opt.Samples)
	res.MeanPDist = sumDist / float64(opt.Samples)
	res.CriticalFeature = -1
	worst := 0
	for i, v := range violBy {
		if v > worst {
			worst, res.CriticalFeature = v, i
		}
	}
	return res, nil
}
