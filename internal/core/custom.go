package core

import (
	"fmt"

	"fepia/internal/vec"
)

// Custom is the paper's general weighted concatenation
// P = (α_1×π_1) ⋆ (α_2×π_2) ⋆ … with caller-chosen weighting constants α_j
// (one per perturbation parameter). The paper introduces this form before
// specializing it to the sensitivity and normalized schemes; exposing it
// lets users encode domain unit conversions directly (e.g. "one second of
// execution time matters as much as 100 KB of message traffic").
//
// The α_j must be nonzero and finite. Note the caveat the paper attaches to
// any such scheme: the combined radius is only meaningful relative to the
// chosen α's — two analyses are comparable only under the same weighting.
type Custom struct {
	// Alphas holds α_j per perturbation parameter, in analysis order.
	Alphas vec.V
	// Label optionally names the weighting in reports (default "custom").
	Label string
}

// Name implements Weighting.
func (c Custom) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "custom"
}

// Scales implements Weighting: block j of the diagonal is α_j repeated over
// the block's elements. The feature index is ignored (the weighting is
// feature-independent, like Normalized).
func (c Custom) Scales(a *Analysis, _ int) (vec.V, error) {
	if len(c.Alphas) != len(a.Params) {
		return nil, fmt.Errorf("%w: %d alphas for %d parameters",
			ErrDegenerateWeighting, len(c.Alphas), len(a.Params))
	}
	d := make(vec.V, 0, a.TotalDim())
	for j, p := range a.Params {
		alpha := c.Alphas[j]
		if alpha == 0 || !vec.Of(alpha).AllFinite() {
			return nil, fmt.Errorf("%w: alpha[%d] = %g", ErrDegenerateWeighting, j, alpha)
		}
		for k := 0; k < p.Dim(); k++ {
			d = append(d, alpha)
		}
	}
	return d, nil
}
