package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/geom"
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// CombinedRadius computes r_μ(φ_i, P) — Eq. 2 of the paper: the smallest
// Euclidean distance in the combined dimensionless P-space from P^orig to a
// point where φ_i meets β^min or β^max, with *all* perturbation parameters
// free to move simultaneously.
//
// Because both weightings are diagonal, a linear impact function stays
// linear in P-space and the radius is an exact hyperplane distance (the
// closed forms of Sections 3.1 and 3.2). Nonlinear impacts fall back to the
// numeric level-set search in P-space.
func (a *Analysis) CombinedRadius(i int, w Weighting) (Radius, error) {
	return a.CombinedRadiusCtx(context.Background(), i, w)
}

// CombinedRadiusCtx is CombinedRadius with cooperative cancellation: ctx is
// checked before every impact-function evaluation of the numeric tier.
// Panics and non-finite values from the impact function are contained as
// *ImpactPanicError / *NumericError.
func (a *Analysis) CombinedRadiusCtx(ctx context.Context, i int, w Weighting) (Radius, error) {
	return a.CombinedRadiusWith(ctx, i, w, EvalOptions{})
}

// CombinedRadiusWith is CombinedRadiusCtx with per-search evaluation
// options: opt.MaxEvals bounds the numeric searches and opt.KProbe selects
// the vectorized k-probe path for features that declare ImpactK. Other
// EvalOptions fields (Workers, degradation) concern whole-analysis
// evaluations and are ignored here.
func (a *Analysis) CombinedRadiusWith(ctx context.Context, i int, w Weighting, opt EvalOptions) (Radius, error) {
	if i < 0 || i >= len(a.Features) {
		return Radius{}, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
	}
	if err := ctxErr(ctx); err != nil {
		return Radius{}, err
	}
	d, err := a.scalesFor(w, i)
	if err != nil {
		return Radius{}, err
	}
	pOrig, err := POrig(a, w, i)
	if err != nil {
		return Radius{}, err
	}
	f := a.Features[i]
	if f.Linear != nil {
		return a.combinedLinear(i, d, pOrig)
	}
	if f.Quad != nil {
		return a.combinedQuad(i, d, pOrig)
	}
	return a.combinedNumeric(ctx, i, d, pOrig, opt)
}

// combinedLinear: in P-space, φ = Const + Σ (k_e / d_e)·P_e over flattened
// elements e — a hyperplane per bound.
func (a *Analysis) combinedLinear(i int, d, pOrig vec.V) (Radius, error) {
	f := a.Features[i]
	kFlat := concat(f.Linear.Coeffs)
	kP := make(vec.V, len(kFlat))
	for e := range kFlat {
		if d[e] == 0 {
			return Radius{}, fmt.Errorf("%w: zero scale for element %d", ErrDegenerateWeighting, e)
		}
		kP[e] = kFlat[e] / d[e]
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1, Analytic: true}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		h := geom.Hyperplane{K: kP, B: side.beta - f.Linear.Const}
		pt, dist, err := h.Nearest(pOrig)
		if err != nil {
			if errors.Is(err, geom.ErrDegenerate) {
				continue
			}
			return Radius{}, fmt.Errorf("core: combined radius of %q: %w", f.Name, err)
		}
		if dist < best.Value {
			best.Value, best.Point, best.Side = dist, pt, side.side
		}
	}
	return best, nil
}

// combinedNumeric runs the level-set search over P-space, one boundary
// side at a time (the batch engine dispatches the same per-side units
// independently across its worker pool — see batch.go).
func (a *Analysis) combinedNumeric(ctx context.Context, i int, d, pOrig vec.V, eo EvalOptions) (Radius, error) {
	f := a.Features[i]
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		r, err := a.combinedNumericSide(ctx, i, d, pOrig, side.beta, side.side, eo)
		if err != nil {
			return Radius{}, err
		}
		if r.Value < best.Value {
			best = r
		}
	}
	return best, nil
}

// combinedNumericSide searches the single boundary {φ_i = beta} for the
// nearest P-space point. The impact is evaluated at native values recovered
// via the inverse scaling, through the panic/NaN guard of failure.go and —
// when enabled — the impact cache. Scratch vectors (the native point and
// its per-parameter views) are allocated once per search, not per
// evaluation, and the native buffer itself comes from the shared pool.
//
// eo.MaxEvals bounds the search; eo.KProbe attaches the batched k-probe
// objective when the feature declares ImpactK; and with EnableWarmStart the
// feature's warm state is checked out of its atomic slot for the duration
// of the search (both boundary sides share one side-independent state —
// the WarmState keys its records per level).
func (a *Analysis) combinedNumericSide(ctx context.Context, i int, d, pOrig vec.V, beta float64, side BoundarySide, eo EvalOptions) (Radius, error) {
	f := a.Features[i]
	g := &guard{feature: i, param: -1, op: "combined radius"}
	impact := g.wrap(f.impact())
	native := vec.GetScratch(len(d))
	defer vec.PutScratch(native)
	vals := vec.Views(nil, native, a.Dims()...)
	cache := a.cache
	var keyBuf []byte
	if cache != nil {
		keyBuf = make([]byte, 0, 4+8*len(d))
	}
	inP := func(x []float64) float64 {
		vec.DivInto(native, vec.V(x), d)
		if cache != nil {
			keyBuf = appendKey(keyBuf, i, native)
			if v, ok := cache.get(keyBuf); ok {
				return v
			}
		}
		v := impact(vals)
		if cache != nil {
			cache.put(keyBuf, v) // refuses NaN/Inf: faults are never cached
		}
		return v
	}
	opts := a.searchOpts(ctx)
	if eo.MaxEvals > 0 {
		opts.MaxEvals = eo.MaxEvals
	}
	if eo.KProbe > 0 && f.ImpactK != nil {
		opts.FK = a.impactFK(g, i, d, 0, nil)
		opts.KBlock = eo.KProbe
		opts.KBlockMax = eo.kprobeMax()
	}
	if a.warm != nil {
		key := warmKey{feat: i, param: -1}
		opts.Warm = a.warm.checkout(key, warmIdent(pOrig, d))
		defer a.warm.publish(key, opts.Warm)
	}
	res, err := optimize.NearestOnLevelSet(inP, beta, pOrig, opts)
	if err != nil && errors.Is(err, optimize.ErrNoBoundary) {
		err = nil // unreachable bound: not a failure
		res.Dist = math.Inf(1)
	}
	if err = g.err(err); err != nil {
		return Radius{}, fmt.Errorf("core: combined radius of %q: %w", f.Name, err)
	}
	r := Radius{Value: res.Dist, Side: SideNone, Feature: i, Param: -1}
	if !math.IsInf(res.Dist, 1) {
		r.Point, r.Side = vec.V(res.Point), side
	}
	return r, nil
}

// Robustness is the system-level result ρ_μ(Φ, P) = min_i r_μ(φ_i, P),
// together with the per-feature breakdown.
type Robustness struct {
	// Value is ρ_μ(Φ, P).
	Value float64
	// Critical is the index of the feature attaining the minimum (−1 when
	// every radius is infinite).
	Critical int
	// PerFeature holds each feature's combined radius.
	PerFeature []Radius
	// Weighting names the scheme that produced the P-space.
	Weighting string
	// Degraded reports that at least one per-feature radius could not be
	// produced by the exact/numeric tiers and was estimated by the
	// Monte-Carlo lower-bound fallback instead (its Radius carries
	// Degraded: true). Only possible via EvalOptions.DegradeOnNumeric.
	Degraded bool
}

// Robustness computes the paper's headline metric: the robustness of the
// resource allocation with respect to the whole feature set Φ against the
// whole perturbation set Π, in the P-space induced by w.
func (a *Analysis) Robustness(w Weighting) (Robustness, error) {
	return a.RobustnessWith(context.Background(), w, EvalOptions{})
}

// RobustnessCtx is Robustness with cooperative cancellation: ctx is checked
// between features and before every impact-function evaluation of the
// numeric tier, so a cancelled or expired context aborts the analysis within
// one evaluation of the slowest impact function.
func (a *Analysis) RobustnessCtx(ctx context.Context, w Weighting) (Robustness, error) {
	return a.RobustnessWith(ctx, w, EvalOptions{})
}

// Tolerable implements the paper's operating-point recipe: to decide whether
// the system can run at the given parameter values without violating a
// constraint, (a) convert the values into P-space, (b) measure
// ‖P − P^orig‖₂, and (c) compare against the robustness radius. The check is
// performed per feature with that feature's own radius (and, for the
// sensitivity weighting, that feature's own scales); it returns true only
// when every feature's test passes.
//
// The test is sufficient, not necessary: points beyond the radius may still
// be feasible (the radius is the *nearest* boundary distance over all
// directions), so a false return means "not guaranteed", not "violating".
// Experiment E5 quantifies this conservatism.
func (a *Analysis) Tolerable(values []vec.V, w Weighting) (bool, error) {
	if len(values) != len(a.Params) {
		return false, fmt.Errorf("core: Tolerable: %d parameter values, want %d", len(values), len(a.Params))
	}
	for j, v := range values {
		if len(v) != a.Params[j].Dim() {
			return false, fmt.Errorf("core: Tolerable: parameter %d has dim %d, want %d: %w",
				j, len(v), a.Params[j].Dim(), vec.ErrDimMismatch)
		}
	}
	for i := range a.Features {
		r, err := a.CombinedRadius(i, w)
		if err != nil {
			return false, err
		}
		if math.IsInf(r.Value, 1) {
			continue // this feature can never be violated
		}
		p, err := ToP(a, w, i, values)
		if err != nil {
			return false, err
		}
		pOrig, err := POrig(a, w, i)
		if err != nil {
			return false, err
		}
		if p.Dist2(pOrig) >= r.Value {
			return false, nil
		}
	}
	return true, nil
}
