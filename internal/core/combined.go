package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/geom"
	"fepia/internal/optimize"
	"fepia/internal/vec"
)

// CombinedRadius computes r_μ(φ_i, P) — Eq. 2 of the paper: the smallest
// Euclidean distance in the combined dimensionless P-space from P^orig to a
// point where φ_i meets β^min or β^max, with *all* perturbation parameters
// free to move simultaneously.
//
// Because both weightings are diagonal, a linear impact function stays
// linear in P-space and the radius is an exact hyperplane distance (the
// closed forms of Sections 3.1 and 3.2). Nonlinear impacts fall back to the
// numeric level-set search in P-space.
func (a *Analysis) CombinedRadius(i int, w Weighting) (Radius, error) {
	if i < 0 || i >= len(a.Features) {
		return Radius{}, fmt.Errorf("%w: feature %d of %d", ErrBadIndex, i, len(a.Features))
	}
	d, err := w.Scales(a, i)
	if err != nil {
		return Radius{}, err
	}
	pOrig, err := POrig(a, w, i)
	if err != nil {
		return Radius{}, err
	}
	f := a.Features[i]
	if f.Linear != nil {
		return a.combinedLinear(i, d, pOrig)
	}
	if f.Quad != nil {
		return a.combinedQuad(i, d, pOrig)
	}
	return a.combinedNumeric(i, d, pOrig)
}

// combinedLinear: in P-space, φ = Const + Σ (k_e / d_e)·P_e over flattened
// elements e — a hyperplane per bound.
func (a *Analysis) combinedLinear(i int, d, pOrig vec.V) (Radius, error) {
	f := a.Features[i]
	kFlat := concat(f.Linear.Coeffs)
	kP := make(vec.V, len(kFlat))
	for e := range kFlat {
		if d[e] == 0 {
			return Radius{}, fmt.Errorf("%w: zero scale for element %d", ErrDegenerateWeighting, e)
		}
		kP[e] = kFlat[e] / d[e]
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1, Analytic: true}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		h := geom.Hyperplane{K: kP, B: side.beta - f.Linear.Const}
		pt, dist, err := h.Nearest(pOrig)
		if err != nil {
			if errors.Is(err, geom.ErrDegenerate) {
				continue
			}
			return Radius{}, fmt.Errorf("core: combined radius of %q: %w", f.Name, err)
		}
		if dist < best.Value {
			best.Value, best.Point, best.Side = dist, pt, side.side
		}
	}
	return best, nil
}

// combinedNumeric runs the level-set search over P-space: the impact is
// evaluated at native values recovered via the inverse scaling.
func (a *Analysis) combinedNumeric(i int, d, pOrig vec.V) (Radius, error) {
	f := a.Features[i]
	impact := f.impact()
	dims := a.Dims()
	inP := func(x []float64) float64 {
		native := vec.V(x).Div(d)
		vals, err := vec.Split(native, dims...)
		if err != nil {
			return math.NaN()
		}
		return impact(vals)
	}
	best := Radius{Value: math.Inf(1), Side: SideNone, Feature: i, Param: -1}
	for _, side := range []struct {
		beta float64
		side BoundarySide
	}{{f.Bounds.Max, SideMax}, {f.Bounds.Min, SideMin}} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		res, err := optimize.NearestOnLevelSet(inP, side.beta, pOrig, a.NumOpts)
		if err != nil {
			if errors.Is(err, optimize.ErrNoBoundary) {
				continue
			}
			return Radius{}, fmt.Errorf("core: combined radius of %q: %w", f.Name, err)
		}
		if res.Dist < best.Value {
			best.Value, best.Point, best.Side = res.Dist, vec.V(res.Point), side.side
		}
	}
	return best, nil
}

// Robustness is the system-level result ρ_μ(Φ, P) = min_i r_μ(φ_i, P),
// together with the per-feature breakdown.
type Robustness struct {
	// Value is ρ_μ(Φ, P).
	Value float64
	// Critical is the index of the feature attaining the minimum (−1 when
	// every radius is infinite).
	Critical int
	// PerFeature holds each feature's combined radius.
	PerFeature []Radius
	// Weighting names the scheme that produced the P-space.
	Weighting string
}

// Robustness computes the paper's headline metric: the robustness of the
// resource allocation with respect to the whole feature set Φ against the
// whole perturbation set Π, in the P-space induced by w.
func (a *Analysis) Robustness(w Weighting) (Robustness, error) {
	out := Robustness{Value: math.Inf(1), Critical: -1, Weighting: w.Name()}
	out.PerFeature = make([]Radius, len(a.Features))
	for i := range a.Features {
		r, err := a.CombinedRadius(i, w)
		if err != nil {
			return Robustness{}, err
		}
		out.PerFeature[i] = r
		if r.Value < out.Value {
			out.Value, out.Critical = r.Value, i
		}
	}
	return out, nil
}

// Tolerable implements the paper's operating-point recipe: to decide whether
// the system can run at the given parameter values without violating a
// constraint, (a) convert the values into P-space, (b) measure
// ‖P − P^orig‖₂, and (c) compare against the robustness radius. The check is
// performed per feature with that feature's own radius (and, for the
// sensitivity weighting, that feature's own scales); it returns true only
// when every feature's test passes.
//
// The test is sufficient, not necessary: points beyond the radius may still
// be feasible (the radius is the *nearest* boundary distance over all
// directions), so a false return means "not guaranteed", not "violating".
// Experiment E5 quantifies this conservatism.
func (a *Analysis) Tolerable(values []vec.V, w Weighting) (bool, error) {
	if len(values) != len(a.Params) {
		return false, fmt.Errorf("core: Tolerable: %d parameter values, want %d", len(values), len(a.Params))
	}
	for j, v := range values {
		if len(v) != a.Params[j].Dim() {
			return false, fmt.Errorf("core: Tolerable: parameter %d has dim %d, want %d: %w",
				j, len(v), a.Params[j].Dim(), vec.ErrDimMismatch)
		}
	}
	for i := range a.Features {
		r, err := a.CombinedRadius(i, w)
		if err != nil {
			return false, err
		}
		if math.IsInf(r.Value, 1) {
			continue // this feature can never be violated
		}
		p, err := ToP(a, w, i, values)
		if err != nil {
			return false, err
		}
		pOrig, err := POrig(a, w, i)
		if err != nil {
			return false, err
		}
		if p.Dist2(pOrig) >= r.Value {
			return false, nil
		}
	}
	return true, nil
}
