package core

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/stats"
	"fepia/internal/vec"
)

// quadFixture: φ = (x−0)² + (y−0)² over one 2-element parameter with
// orig (1, 1) and bound 9 → boundary is the circle of radius 3, radius
// 3 − √2.
func quadFixture(t *testing.T) *Analysis {
	t.Helper()
	a, err := NewAnalysis([]Feature{{
		Name:   "energy",
		Bounds: MaxOnly(9),
		Quad: &QuadImpact{
			A: []vec.V{vec.Of(1, 1)},
			C: []vec.V{vec.Of(0, 0)},
		},
	}}, []Perturbation{{Name: "freq", Unit: "GHz", Orig: vec.Of(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestQuadEval(t *testing.T) {
	q := QuadImpact{
		A:     []vec.V{vec.Of(2), vec.Of(3)},
		C:     []vec.V{vec.Of(1), vec.Of(-1)},
		Const: 5,
	}
	got := q.Eval([]vec.V{vec.Of(3), vec.Of(0)})
	// 5 + 2·(3−1)² + 3·(0+1)² = 5 + 8 + 3 = 16.
	if got != 16 {
		t.Errorf("Eval = %v, want 16", got)
	}
	if q.Func()([]vec.V{vec.Of(1), vec.Of(-1)}) != 5 {
		t.Error("Func at centers must return Const")
	}
}

func TestQuadRadiusSingleCircle(t *testing.T) {
	a := quadFixture(t)
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 - math.Sqrt2
	if math.Abs(r.Value-want) > 1e-10 {
		t.Errorf("radius = %v, want 3−√2 = %v", r.Value, want)
	}
	if !r.Analytic || r.Side != SideMax {
		t.Errorf("metadata: %+v", r)
	}
	// The boundary point is on the circle along (1,1): (3/√2, 3/√2).
	want2 := 3 / math.Sqrt2
	if math.Abs(r.Point[0]-want2) > 1e-8 || math.Abs(r.Point[1]-want2) > 1e-8 {
		t.Errorf("boundary point = %v", r.Point)
	}
}

func TestQuadBandBothSides(t *testing.T) {
	// Band(0.5, 9) from (1,1): distance to inner circle √0.5 is
	// √2 − √0.5 ≈ 0.707; to the outer 3 − √2 ≈ 1.586. Min is the inner.
	a, err := NewAnalysis([]Feature{{
		Name:   "energy",
		Bounds: Band(0.5, 9),
		Quad: &QuadImpact{
			A: []vec.V{vec.Of(1, 1)},
			C: []vec.V{vec.Of(0, 0)},
		},
	}}, []Perturbation{{Name: "freq", Orig: vec.Of(1, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt2 - math.Sqrt(0.5)
	if math.Abs(r.Value-want) > 1e-10 || r.Side != SideMin {
		t.Errorf("band radius = %v side %v, want %v on beta-min", r.Value, r.Side, want)
	}
}

func TestQuadMatchesNumericTier(t *testing.T) {
	// Same quadratic expressed as an opaque Impact: the numeric tier must
	// agree with the analytic ellipsoid solve, both single and combined.
	quad := QuadImpact{
		A:     []vec.V{vec.Of(2, 0.5), vec.Of(1)},
		C:     []vec.V{vec.Of(0.5, 1), vec.Of(2)},
		Const: 1,
	}
	params := []Perturbation{
		{Name: "a", Orig: vec.Of(1, 2)},
		{Name: "b", Orig: vec.Of(3)},
	}
	bound := quad.Eval([]vec.V{vec.Of(1, 2), vec.Of(3)}) * 2.5
	aQuad, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(bound), Quad: &quad,
	}}, params)
	if err != nil {
		t.Fatal(err)
	}
	aNum, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(bound), Impact: quad.Eval,
	}}, params)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		rq, err := aQuad.RadiusSingle(0, j)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := aNum.RadiusSingle(0, j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rq.Value-rn.Value) > 1e-4*(1+rq.Value) {
			t.Errorf("param %d: quad %v vs numeric %v", j, rq.Value, rn.Value)
		}
		if !rq.Analytic || rn.Analytic {
			t.Error("tier flags wrong")
		}
	}
	cq, err := aQuad.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := aNum.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cq.Value-cn.Value) > 1e-4*(1+cq.Value) {
		t.Errorf("combined: quad %v vs numeric %v", cq.Value, cn.Value)
	}
}

func TestQuadCombinedBoundaryFeasible(t *testing.T) {
	a := quadFixture(t)
	r, err := a.CombinedRadius(0, Normalized{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := FromP(a, Normalized{}, 0, r.Point)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.FeatureValue(0, vals); math.Abs(got-9) > 1e-8 {
		t.Errorf("combined boundary point maps to %v, want 9", got)
	}
}

func TestQuadZeroCurvatureElementsIgnored(t *testing.T) {
	// Second element has zero curvature: it cannot cause a violation, and
	// the nearest boundary point must keep it at its original value.
	a, err := NewAnalysis([]Feature{{
		Name:   "phi",
		Bounds: MaxOnly(4),
		Quad: &QuadImpact{
			A: []vec.V{vec.Of(1, 0)},
			C: []vec.V{vec.Of(0, 0)},
		},
	}}, []Perturbation{{Name: "x", Orig: vec.Of(1, 7)}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Value-1) > 1e-10 {
		t.Errorf("radius = %v, want 1 (x from 1 to 2)", r.Value)
	}
	if r.Point[1] != 7 {
		t.Errorf("inactive element moved: %v", r.Point)
	}
}

func TestQuadInsensitiveParameterInfinite(t *testing.T) {
	a, err := NewAnalysis([]Feature{{
		Name:   "phi",
		Bounds: MaxOnly(4),
		Quad: &QuadImpact{
			A: []vec.V{vec.Of(1), vec.Of(0)},
			C: []vec.V{vec.Of(0), vec.Of(0)},
		},
	}}, []Perturbation{
		{Name: "x", Orig: vec.Of(1)},
		{Name: "y", Orig: vec.Of(5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.RadiusSingle(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Value, 1) || r.Side != SideNone {
		t.Errorf("insensitive parameter radius = %+v", r)
	}
}

func TestQuadValidateErrors(t *testing.T) {
	param := Perturbation{Name: "x", Orig: vec.Of(1)}
	cases := []struct {
		name string
		q    *QuadImpact
	}{
		{"block count", &QuadImpact{A: []vec.V{vec.Of(1), vec.Of(1)}, C: []vec.V{vec.Of(0), vec.Of(0)}}},
		{"dim mismatch", &QuadImpact{A: []vec.V{vec.Of(1, 2)}, C: []vec.V{vec.Of(0, 0)}}},
		{"negative curvature", &QuadImpact{A: []vec.V{vec.Of(-1)}, C: []vec.V{vec.Of(0)}}},
	}
	for _, c := range cases {
		if _, err := NewAnalysis([]Feature{{Name: "phi", Bounds: MaxOnly(100), Quad: c.q}},
			[]Perturbation{param}); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	// Linear and Quad together are rejected.
	if _, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(100),
		Linear: &LinearImpact{Coeffs: []vec.V{vec.Of(1)}},
		Quad:   &QuadImpact{A: []vec.V{vec.Of(1)}, C: []vec.V{vec.Of(0)}},
	}}, []Perturbation{param}); err == nil {
		t.Error("Linear+Quad must be rejected")
	}
	// Impact disagreeing with Quad is rejected.
	if _, err := NewAnalysis([]Feature{{
		Name: "phi", Bounds: MaxOnly(100),
		Quad:   &QuadImpact{A: []vec.V{vec.Of(1)}, C: []vec.V{vec.Of(0)}},
		Impact: func(vs []vec.V) float64 { return 99 },
	}}, []Perturbation{param}); err == nil {
		t.Error("disagreeing Impact must be rejected")
	}
}

func TestPropQuadRadiusGuarantee(t *testing.T) {
	// Any perturbation with norm strictly below the quadratic radius keeps
	// the feature within bounds.
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		n := src.Intn(3) + 1
		av := make(vec.V, n)
		cv := make(vec.V, n)
		orig := make(vec.V, n)
		for i := range av {
			av[i] = src.Uniform(0.2, 3)
			cv[i] = src.Uniform(-1, 1)
			orig[i] = cv[i] + src.Uniform(-0.5, 0.5)
		}
		q := &QuadImpact{A: []vec.V{av}, C: []vec.V{cv}}
		bound := q.Eval([]vec.V{orig}) + src.Uniform(0.5, 5)
		a, err := NewAnalysis([]Feature{{Name: "phi", Bounds: MaxOnly(bound), Quad: q}},
			[]Perturbation{{Name: "x", Orig: orig}})
		if err != nil {
			return false
		}
		r, err := a.RadiusSingle(0, 0)
		if err != nil {
			return false
		}
		if math.IsInf(r.Value, 1) {
			return true
		}
		for trial := 0; trial < 20; trial++ {
			d := make(vec.V, n)
			for i := range d {
				d[i] = src.Normal(0, 1)
			}
			d = d.Normalize().Scale(r.Value * 0.999 * src.Float64())
			if q.Eval([]vec.V{orig.Add(d)}) > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropQuadCombinedMatchesNumeric(t *testing.T) {
	// Random multi-block quadratic systems: the exact ellipsoid tier in
	// P-space must agree with the generic level-set search.
	f := func(seed int64) bool {
		src := stats.NewSource(seed)
		n1 := src.Intn(2) + 1
		n2 := src.Intn(2) + 1
		mkBlock := func(n int) (a, c, orig vec.V) {
			a = make(vec.V, n)
			c = make(vec.V, n)
			orig = make(vec.V, n)
			for i := 0; i < n; i++ {
				a[i] = src.Uniform(0.3, 3)
				c[i] = src.Uniform(-1, 1)
				orig[i] = c[i] + src.Uniform(0.2, 1)
			}
			return
		}
		a1, c1, o1 := mkBlock(n1)
		a2, c2, o2 := mkBlock(n2)
		quad := &QuadImpact{A: []vec.V{a1, a2}, C: []vec.V{c1, c2}, Const: src.Uniform(0, 2)}
		params := []Perturbation{
			{Name: "p1", Orig: o1},
			{Name: "p2", Orig: o2},
		}
		bound := quad.Eval([]vec.V{o1, o2}) + src.Uniform(1, 6)
		aQ, err := NewAnalysis([]Feature{{Name: "q", Bounds: MaxOnly(bound), Quad: quad}}, params)
		if err != nil {
			return false
		}
		aN, err := NewAnalysis([]Feature{{Name: "q", Bounds: MaxOnly(bound), Impact: quad.Eval}}, params)
		if err != nil {
			return false
		}
		rQ, err := aQ.CombinedRadius(0, Normalized{})
		if err != nil {
			return false
		}
		rN, err := aN.CombinedRadius(0, Normalized{})
		if err != nil {
			return false
		}
		return math.Abs(rQ.Value-rN.Value) <= 2e-4*(1+rQ.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
