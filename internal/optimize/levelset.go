package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrNoBoundary is returned when no boundary crossing of the level set can be
// located from the starting point in any probed direction.
var ErrNoBoundary = errors.New("optimize: no level-set boundary found")

// ErrEvalBudget is returned when the search exceeds LevelSetOptions.MaxEvals
// objective evaluations before converging.
var ErrEvalBudget = errors.New("optimize: evaluation budget exhausted")

// LevelSetOptions configure NearestOnLevelSet.
type LevelSetOptions struct {
	// Directions is the number of additional random probe directions beyond
	// the deterministic ones (±eᵢ and ±∇f). Zero selects 4·n.
	Directions int
	// MaxSpan bounds how far rays are shot from the origin point. Zero
	// selects 1e6·(1 + ‖x0‖∞).
	MaxSpan float64
	// Tol is the boundary tolerance in f-units. Zero selects 1e-10.
	Tol float64
	// RefineIters bounds the tangential-descent refinement. Zero selects 200.
	RefineIters int
	// Seed seeds the random probe directions; the default (0) is fine —
	// the stream is deterministic either way.
	Seed int64
	// SkipPolish disables the final Nelder–Mead penalty polish. The polish
	// costs extra evaluations but rescues non-smooth boundaries (max-type
	// impact functions) where tangential descent stalls.
	SkipPolish bool
	// Ctx, when non-nil, makes the search cooperatively cancellable: it is
	// checked before every objective evaluation, so a cancelled or expired
	// context aborts the search within one evaluation of the impact
	// function. The returned error wraps ctx.Err().
	Ctx context.Context
	// MaxEvals, when positive, bounds the total number of objective
	// evaluations; exceeding it aborts the search with ErrEvalBudget. Zero
	// means unlimited.
	MaxEvals int
}

// searchAbort unwinds the search's deep call stacks (Brent brackets,
// Nelder–Mead, tangential descent) when the context is cancelled or the
// evaluation budget is exhausted. It is recovered at the NearestOnLevelSet
// boundary and converted into an ordinary error — it never escapes the
// package.
type searchAbort struct{ err error }

// Result is the outcome of a nearest-boundary-point search.
type Result struct {
	// Point is the boundary point nearest to the origin point.
	Point []float64
	// Dist is the Euclidean distance from the origin point to Point — the
	// robustness radius when f is an impact function and level its bound.
	Dist float64
	// Evals counts objective evaluations spent.
	Evals int
}

// NearestOnLevelSet finds (approximately) the point on {x : f(x) = level}
// nearest to x0 in the Euclidean norm:
//
//	min ‖x − x0‖₂  subject to  f(x) = level.
//
// This is exactly the robustness radius of the paper's Eq. 1 and Eq. 2 for a
// single constraint boundary. The search is derivative-free at its core and
// proceeds in three phases:
//
//  1. Ray shooting — cast rays from x0 along ± coordinate axes, ± the
//     numerical gradient, and a deterministic set of random directions;
//     bracket and solve the 1-D crossing with Brent's method. Every crossing
//     is a feasible boundary point and an upper bound on the radius.
//  2. Tangential descent — from the best crossings, repeatedly remove the
//     component of (x − x0) tangent to the boundary and re-project onto the
//     boundary, shrinking the distance monotonically (first-order optimality
//     on smooth boundaries).
//  3. Penalty polish — a short Nelder–Mead run on ‖x − x0‖² + w·(f(x) −
//     level)², which handles kinks in piecewise boundaries.
//
// The returned error is non-nil when no boundary crossing exists within
// MaxSpan in any probed direction (e.g. the constraint can never be violated;
// the paper would call such a system infinitely robust in that direction),
// when opt.Ctx is cancelled mid-search (the error wraps ctx.Err()), or when
// opt.MaxEvals is exhausted (the error wraps ErrEvalBudget).
func NearestOnLevelSet(f Func, level float64, x0 []float64, opt LevelSetOptions) (res Result, err error) {
	n := len(x0)
	if n == 0 {
		return Result{}, errors.New("optimize: empty origin point")
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.Directions <= 0 {
		opt.Directions = 4 * n
	}
	if opt.MaxSpan <= 0 {
		span := 1.0
		for _, x := range x0 {
			if a := math.Abs(x); a > span {
				span = a
			}
		}
		opt.MaxSpan = 1e6 * span
	}
	if opt.RefineIters <= 0 {
		opt.RefineIters = 200
	}

	evals := 0
	fr := getFrame(n)
	defer putFrame(fr)
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(searchAbort)
			if !ok {
				panic(r)
			}
			res, err = Result{Evals: evals}, ab.err
		}
	}()
	// Every objective evaluation — ray shooting, gradients, the polish —
	// flows through this wrapper, so cancellation and the budget are
	// enforced uniformly no matter which phase is running.
	inner := f
	f = func(x []float64) float64 {
		if opt.Ctx != nil {
			if cerr := opt.Ctx.Err(); cerr != nil {
				panic(searchAbort{fmt.Errorf("optimize: level-set search cancelled after %d evaluations: %w", evals, cerr)})
			}
		}
		if opt.MaxEvals > 0 && evals >= opt.MaxEvals {
			panic(searchAbort{fmt.Errorf("%w: %d evaluations", ErrEvalBudget, opt.MaxEvals)})
		}
		evals++
		return inner(x)
	}
	g := func(x []float64) float64 {
		return f(x) - level
	}

	g0 := g(x0)
	fscale := 1 + math.Abs(level)
	if math.Abs(g0) <= opt.Tol*fscale {
		return Result{Point: append([]float64(nil), x0...), Dist: 0, Evals: evals}, nil
	}

	// --- Phase 1: ray shooting -----------------------------------------
	dirs := probeDirections(f, x0, opt)
	best := Result{Dist: math.Inf(1)}
	var candidates [][]float64
	for _, d := range dirs {
		pt, ok := shootRay(g, x0, d, opt.MaxSpan, opt.Tol*fscale, fr.ray)
		if !ok {
			continue
		}
		dist := euclid(pt, x0)
		candidates = append(candidates, pt)
		if dist < best.Dist {
			best = Result{Point: pt, Dist: dist}
		}
	}
	if math.IsInf(best.Dist, 1) {
		// Descent fallback: none of the probed rays crossed the level set.
		// That happens when the sublevel region subtends a tiny solid angle
		// from x0 (a small or eccentric ellipsoid far away). Descend g
		// itself; any opposite-sign point found defines a ray from x0 that
		// is guaranteed to cross.
		sgn := 1.0
		if g0 < 0 {
			sgn = -1
		}
		xm, _ := NelderMead(func(x []float64) float64 { return sgn * g(x) }, x0, NMOptions{
			InitialStep: 0.1 * (1 + maxAbs(x0)),
			MaxEvals:    400 * n,
		})
		if sgn*g(xm) < 0 {
			if pt, ok := projectThroughOrigin(g, x0, xm, opt.MaxSpan, opt.Tol*fscale, fr); ok {
				candidates = append(candidates, pt)
				best = Result{Point: pt, Dist: euclid(pt, x0)}
			}
		}
	}
	if math.IsInf(best.Dist, 1) {
		return Result{Evals: evals}, fmt.Errorf("%w within span %g of %v", ErrNoBoundary, opt.MaxSpan, x0)
	}

	// --- Phase 2: tangential descent from the few best crossings -------
	refineFrom := topK(candidates, x0, 3)
	for _, start := range refineFrom {
		pt, dist := tangentialDescent(f, g, level, x0, start, opt, fr)
		if dist < best.Dist {
			best = Result{Point: pt, Dist: dist}
		}
	}

	// --- Phase 3: Nelder–Mead penalty polish ----------------------------
	if !opt.SkipPolish {
		w := 1e4 * (1 + best.Dist*best.Dist) / (fscale * fscale)
		penalty := func(x []float64) float64 {
			dx := euclid(x, x0)
			gv := f(x) - level
			return dx*dx + w*gv*gv
		}
		px, _ := NelderMead(penalty, best.Point, NMOptions{
			InitialStep: 0.05 * (best.Dist + 1e-9),
			MaxEvals:    400 * n,
		})
		// Re-project the polished point exactly onto the boundary along the
		// line through x0, so feasibility is not sacrificed for distance.
		if proj, ok := projectThroughOrigin(g, x0, px, opt.MaxSpan, opt.Tol*fscale, fr); ok {
			if d := euclid(proj, x0); d < best.Dist {
				best = Result{Point: proj, Dist: d}
			}
		}
	}

	best.Evals = evals
	return best, nil
}

// probeDirections builds the deterministic direction set: ± basis vectors,
// ± the gradient direction, and pseudo-random unit vectors.
func probeDirections(f Func, x0 []float64, opt LevelSetOptions) [][]float64 {
	n := len(x0)
	var dirs [][]float64
	for i := 0; i < n; i++ {
		dp := make([]float64, n)
		dp[i] = 1
		dm := make([]float64, n)
		dm[i] = -1
		dirs = append(dirs, dp, dm)
	}
	grad := Gradient(f, x0)
	if nrm := norm2(grad); nrm > 0 {
		gp := make([]float64, n)
		gm := make([]float64, n)
		for i := range grad {
			gp[i] = grad[i] / nrm
			gm[i] = -grad[i] / nrm
		}
		dirs = append(dirs, gp, gm)
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed1e7))
	for k := 0; k < opt.Directions; k++ {
		d := make([]float64, n)
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		if nrm := norm2(d); nrm > 0 {
			for i := range d {
				d[i] /= nrm
			}
			dirs = append(dirs, d)
		}
	}
	return dirs
}

// shootRay locates the first crossing of g along x0 + t·d, t > 0. scratch is
// the reusable line-evaluation point (length len(x0)); the returned crossing
// is freshly allocated.
func shootRay(g Func, x0, d []float64, maxSpan, tol float64, scratch []float64) ([]float64, bool) {
	line := func(t float64) float64 {
		x := scratch
		for i := range x {
			x[i] = x0[i] + t*d[i]
		}
		return g(x)
	}
	a, b, err := BracketRoot(line, 0, 1e-3*(1+maxAbs(x0)), maxSpan)
	if err != nil {
		return nil, false
	}
	t, err := Brent(line, a, b, tol*1e-3)
	if err != nil {
		return nil, false
	}
	// Brent converges to *a* root of the bracket, not necessarily the one
	// nearest x0: a wide (dip-refined) bracket can span a whole sublevel
	// window, and landing on its far edge overestimates the radius. While a
	// probe just below the current root still has the crossed sign, an
	// earlier crossing exists — re-solve in the earlier sub-bracket.
	ga := line(a)
	for range make([]struct{}, 16) {
		cut := t - 1e-6*(1+math.Abs(t))
		if cut <= a {
			break
		}
		gc := line(cut)
		if gc == 0 {
			t = cut
			continue
		}
		if (gc > 0) == (ga > 0) {
			break
		}
		t2, err2 := Brent(line, a, cut, tol)
		if err2 != nil {
			break
		}
		t = t2
	}
	pt := make([]float64, len(x0))
	for i := range pt {
		pt[i] = x0[i] + t*d[i]
	}
	return pt, true
}

// projectThroughOrigin re-projects x onto the boundary along the ray from x0
// through x.
func projectThroughOrigin(g Func, x0, x []float64, maxSpan, tol float64, fr *searchFrame) ([]float64, bool) {
	d := fr.dir
	for i := range d {
		d[i] = x[i] - x0[i]
	}
	nrm := norm2(d)
	if nrm == 0 {
		return nil, false
	}
	for i := range d {
		d[i] /= nrm
	}
	return shootRay(g, x0, d, maxSpan, tol, fr.ray)
}

// tangentialDescent slides a boundary point along the level set toward x0.
// At each step the tangential component of (x − x0) is removed and the point
// is re-projected onto the boundary along the local normal (falling back to
// the ray through x0).
func tangentialDescent(f Func, g Func, level float64, x0, start []float64, opt LevelSetOptions, fr *searchFrame) ([]float64, float64) {
	x := append([]float64(nil), start...)
	dist := euclid(x, x0)
	eta := 1.0
	fscale := 1 + math.Abs(level)
	for iter := 0; iter < opt.RefineIters; iter++ {
		grad := fr.grad
		GradientInto(grad, fr.gtmp, f, x)
		gn := norm2(grad)
		if gn == 0 {
			break
		}
		// r = x − x0; tangential residual r_t = r − (r·n̂)n̂.
		r := fr.r
		var rDotN float64
		for i := range r {
			r[i] = x[i] - x0[i]
			rDotN += r[i] * grad[i] / gn
		}
		rt := fr.rt
		var rtNorm float64
		for i := range rt {
			rt[i] = r[i] - rDotN*grad[i]/gn
			rtNorm += rt[i] * rt[i]
		}
		rtNorm = math.Sqrt(rtNorm)
		if rtNorm <= 1e-12*(1+dist) {
			break // first-order optimal: (x − x0) ∥ ∇f
		}
		// Trial step along −r_t, then re-project onto the boundary.
		improved := false
		for ; eta > 1e-10; eta *= 0.5 {
			trial := fr.trial
			for i := range trial {
				trial[i] = x[i] - eta*rt[i]
			}
			proj, ok := reprojectNormal(g, trial, grad, gn, opt.MaxSpan, opt.Tol*fscale, fr)
			if !ok {
				proj, ok = projectThroughOrigin(g, x0, trial, opt.MaxSpan, opt.Tol*fscale, fr)
			}
			if !ok {
				continue
			}
			if d := euclid(proj, x0); d < dist-1e-15*(1+dist) {
				x, dist = proj, d
				improved = true
				eta = math.Min(eta*2, 1)
				break
			}
		}
		if !improved {
			break
		}
	}
	return x, dist
}

// reprojectNormal root-finds along ± the normal direction from a near-
// boundary point to land exactly on the level set.
func reprojectNormal(g Func, x, grad []float64, gradNorm, maxSpan, tol float64, fr *searchFrame) ([]float64, bool) {
	d := fr.dir
	for i := range d {
		d[i] = grad[i] / gradNorm
	}
	line := func(t float64) float64 {
		y := fr.proj
		for i := range y {
			y[i] = x[i] + t*d[i]
		}
		return g(y)
	}
	g0 := line(0)
	if math.Abs(g0) <= tol {
		return append([]float64(nil), x...), true
	}
	// Search the side that reduces |g| first; the crossing is nearby, so
	// keep the bracket expansion tight.
	span := 0.1 * (1 + maxAbs(x))
	for _, sign := range []float64{-1, 1} {
		dir := func(t float64) float64 { return line(sign * t) }
		a, b, err := BracketRoot(dir, 0, 1e-6*(1+maxAbs(x)), span)
		if err != nil {
			continue
		}
		t, err := Brent(dir, a, b, tol*1e-3)
		if err != nil {
			continue
		}
		y := make([]float64, len(x))
		for i := range y {
			y[i] = x[i] + sign*t*d[i]
		}
		return y, true
	}
	return nil, false
}

// topK returns up to k candidate points nearest to x0.
func topK(cands [][]float64, x0 []float64, k int) [][]float64 {
	type scored struct {
		pt []float64
		d  float64
	}
	ss := make([]scored, len(cands))
	for i, c := range cands {
		ss[i] = scored{c, euclid(c, x0)}
	}
	// Simple selection of the k smallest — candidate counts are tiny.
	out := make([][]float64, 0, k)
	for len(out) < k && len(ss) > 0 {
		bi := 0
		for i := range ss {
			if ss[i].d < ss[bi].d {
				bi = i
			}
		}
		out = append(out, ss[bi].pt)
		ss = append(ss[:bi], ss[bi+1:]...)
	}
	return out
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func norm2(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}
